package stmaker

import (
	"strings"
	"sync"
	"testing"
	"time"

	"stmaker/internal/feature"
	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/summarize"
	"stmaker/internal/traj"
)

// newWorld builds a small simulated city and a summarizer trained on a
// calm corpus, shared by the integration tests.
func newWorld(t testing.TB, cfgMut func(*Config)) (*simulate.City, *Summarizer) {
	t.Helper()
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, BlockMeters: 500, Seed: 21})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 22})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})

	cfg := Config{Graph: city.Graph, Landmarks: city.Landmarks}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 120, Seed: 23, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	stats, err := s.Train(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Calibrated < len(corpus)/2 {
		t.Fatalf("only %d/%d corpus trips calibrated", stats.Calibrated, len(corpus))
	}
	if stats.Transitions == 0 {
		t.Fatal("empty historical feature map")
	}
	return city, s
}

func eventfulTrip(t testing.TB, city *simulate.City, seed int64) *simulate.Trip {
	t.Helper()
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 40, Seed: seed, FixedHour: 8,
	})
	for _, tr := range trips {
		if len(tr.Truth) > 0 {
			return tr
		}
	}
	t.Fatal("no eventful trip generated")
	return nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	city := simulate.NewCity(simulate.CityOptions{Rows: 4, Cols: 4, Seed: 1})
	if _, err := New(Config{Graph: city.Graph}); err == nil {
		t.Error("nil landmarks accepted")
	}
}

func TestSummarizeEndToEnd(t *testing.T) {
	city, s := newWorld(t, nil)
	trip := eventfulTrip(t, city, 31)
	sum, err := s.Summarize(trip.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TrajectoryID != trip.Raw.ID {
		t.Errorf("summary id = %q", sum.TrajectoryID)
	}
	if !strings.HasPrefix(sum.Text, "The car started from ") {
		t.Errorf("summary text = %q", sum.Text)
	}
	if !strings.HasSuffix(sum.Text, ".") {
		t.Errorf("summary must end with a period: %q", sum.Text)
	}
	if len(sum.Parts) == 0 {
		t.Fatal("no partitions")
	}
	// Partitions chain: each part's Dest is the next part's Source.
	for i := 1; i < len(sum.Parts); i++ {
		if sum.Parts[i-1].Dest != sum.Parts[i].Source {
			t.Fatalf("partition endpoints do not chain: %+v", sum.Parts)
		}
	}
	// The summary is dramatically smaller than the raw trajectory — the
	// paper's data-volume motivation.
	if len(sum.Text) > 40*len(trip.Raw.Samples) && len(trip.Raw.Samples) > 50 {
		t.Errorf("summary suspiciously long: %d chars for %d samples", len(sum.Text), len(trip.Raw.Samples))
	}
}

func TestSummarizeRequiresTraining(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, Seed: 3})
	s, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 5, Seed: 4, FixedHour: 10})
	if _, err := s.Summarize(trips[0].Raw); err != ErrNotTrained {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
}

func TestSummarizeKGranularity(t *testing.T) {
	city, s := newWorld(t, nil)
	trip := eventfulTrip(t, city, 37)
	sym, err := s.Calibrate(trip.Raw)
	if err != nil {
		t.Fatal(err)
	}
	maxK := sym.NumSegments()
	for k := 1; k <= 3 && k <= maxK; k++ {
		sum, err := s.SummarizeK(trip.Raw, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(sum.Parts) != k {
			t.Fatalf("k=%d produced %d parts", k, len(sum.Parts))
		}
	}
	// k beyond the segment count clamps instead of failing.
	sum, err := s.SummarizeK(trip.Raw, maxK+5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Parts) != maxK {
		t.Fatalf("clamped k produced %d parts, want %d", len(sum.Parts), maxK)
	}
}

func TestSummarizeInvalidTrajectory(t *testing.T) {
	_, s := newWorld(t, nil)
	bad := &traj.Raw{ID: "bad", Samples: []traj.Sample{
		{Pt: geo.Point{Lat: 39.8, Lng: 116.25}, T: time.Now()},
	}}
	if _, err := s.Summarize(bad); err == nil {
		t.Fatal("single-sample trajectory accepted")
	}
}

func TestCustomFeatureEndToEnd(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, BlockMeters: 500, Seed: 21})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 22})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})
	s, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterFeature(feature.NewSpeedChange(), nil); err != nil {
		t.Fatal(err) // SpeC has a default clause in the template set
	}
	if s.Registry().Len() != 7 {
		t.Fatalf("registry len = %d", s.Registry().Len())
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 80, Seed: 23, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		t.Fatal(err)
	}
	// Registration after training is rejected.
	if err := s.RegisterFeature(dummyFeature{}, nil); err == nil {
		t.Fatal("post-train registration accepted")
	}
	trip := eventfulTrip(t, city, 41)
	if _, err := s.Summarize(trip.Raw); err != nil {
		t.Fatal(err)
	}
}

type dummyFeature struct{}

func (dummyFeature) Descriptor() feature.Descriptor {
	return feature.Descriptor{Key: "Dummy", Name: "dummy", Class: feature.Moving, Numeric: true}
}
func (dummyFeature) Extract(traj.Segment, *feature.Context) float64 { return 0 }

func TestEventsSurfaceInSummaries(t *testing.T) {
	city, s := newWorld(t, nil)
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 120, Seed: 53, FixedHour: 8})
	var stayTrips, stayMentioned int
	for _, tr := range trips {
		if !tr.HasEvent(simulate.EventStay) {
			continue
		}
		stayTrips++
		// k=3 granularity, as in the paper's presentation examples; the
		// coarse optimal partition dilutes short events over long trips.
		sum, err := s.SummarizeK(tr.Raw, 3)
		if err != nil {
			continue
		}
		if sum.MentionsFeature(feature.KeyStayPoints) {
			stayMentioned++
		}
	}
	if stayTrips == 0 {
		t.Skip("no stay trips generated")
	}
	// The summarizer should surface stays in a solid majority of trips
	// whose ground truth contains them.
	if float64(stayMentioned) < 0.5*float64(stayTrips) {
		t.Fatalf("stays mentioned in %d/%d trips", stayMentioned, stayTrips)
	}
}

func TestCalmTripsSummarizeSmoothly(t *testing.T) {
	city, s := newWorld(t, nil)
	// Calm night trips on the training distribution: most should select
	// few or no features.
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 30, Seed: 61, FixedHour: 2, Calm: true})
	var smooth, total int
	for _, tr := range trips {
		sum, err := s.Summarize(tr.Raw)
		if err != nil {
			continue
		}
		total++
		if len(sum.FeatureKeys()) <= 2 {
			smooth++
		}
	}
	if total == 0 {
		t.Fatal("no summaries produced")
	}
	if float64(smooth) < 0.5*float64(total) {
		t.Fatalf("only %d/%d calm trips were near-smooth", smooth, total)
	}
}

func TestPartitionExposed(t *testing.T) {
	city, s := newWorld(t, nil)
	trip := eventfulTrip(t, city, 71)
	sym, err := s.Calibrate(trip.Raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Partition(sym, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 2 {
		t.Fatalf("parts = %d", len(res.Parts))
	}
	opt, err := s.Partition(sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Energy > res.Energy+1e-9 {
		t.Fatalf("optimal energy %v worse than k=2 energy %v", opt.Energy, res.Energy)
	}
}

func TestDescribe(t *testing.T) {
	sum := &summarize.Summary{
		Text: "The car moved smoothly.",
		Parts: []summarize.PartSummary{{
			Features: []summarize.SelectedFeature{{Key: "Spe", Rate: 0.4, Value: 30}},
		}},
	}
	out := Describe(sum)
	if !strings.Contains(out, "The car moved smoothly.") || !strings.Contains(out, "Spe") {
		t.Fatalf("Describe = %q", out)
	}
}

func TestConcurrentSummarize(t *testing.T) {
	city, s := newWorld(t, nil)
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 16, Seed: 91, FixedHour: 9})
	var wg sync.WaitGroup
	errs := make(chan error, len(trips)*4)
	for round := 0; round < 4; round++ {
		for _, tr := range trips {
			wg.Add(1)
			go func(r *traj.Raw) {
				defer wg.Done()
				if _, err := s.Summarize(r); err != nil {
					errs <- err
				}
			}(tr.Raw)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSummarizeWithHMMMatching(t *testing.T) {
	city, s := newWorld(t, func(c *Config) { c.UseHMMMatching = true })
	trip := eventfulTrip(t, city, 97)
	sum, err := s.SummarizeK(trip.Raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Parts) != 2 || sum.Text == "" {
		t.Fatalf("HMM summary = %+v", sum)
	}
	// Road types must still resolve under HMM matching.
	for _, p := range sum.Parts {
		if p.RoadType == "" {
			t.Fatalf("partition lost its road type under HMM matching: %+v", p)
		}
	}
}

// TestConcurrentHMMSummarizeSharedCache hammers the one shortest-path
// cache every HMM-matching request shares, from many goroutines at once.
// Run under -race by make check; the cache counters prove it was hit.
func TestConcurrentHMMSummarizeSharedCache(t *testing.T) {
	city, s := newWorld(t, func(c *Config) {
		c.UseHMMMatching = true
		c.SPCacheEntries = 8192
	})
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 8, Seed: 93, FixedHour: 9})

	// Golden serial results: the shared cache must not change what any
	// concurrent request returns.
	golden := make([]*summarize.Summary, len(trips))
	for i, tr := range trips {
		sum, err := s.Summarize(tr.Raw)
		if err != nil {
			t.Fatal(err)
		}
		golden[i] = sum
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(trips)*4)
	diverged := make(chan string, len(trips)*4)
	for round := 0; round < 4; round++ {
		for i, tr := range trips {
			wg.Add(1)
			go func(i int, r *traj.Raw) {
				defer wg.Done()
				sum, err := s.Summarize(r)
				if err != nil {
					errs <- err
					return
				}
				if sum.Text != golden[i].Text {
					diverged <- sum.Text
				}
			}(i, tr.Raw)
		}
	}
	wg.Wait()
	close(errs)
	close(diverged)
	for err := range errs {
		t.Fatal(err)
	}
	for text := range diverged {
		t.Fatalf("concurrent summary diverged from serial result: %q", text)
	}

	snap := s.Metrics().Snapshot()
	if snap.Counters[MetricSPCacheHits] == 0 {
		t.Fatalf("shared SP cache never hit: %+v", snap.Counters)
	}
	if snap.Counters[MetricSPCacheMisses] == 0 {
		t.Fatalf("shared SP cache never missed: %+v", snap.Counters)
	}
}

// TestHMMSPCacheDisabled pins the Config escape hatch: a negative
// SPCacheEntries turns the cache off entirely, so its counters never
// register while HMM matching keeps working.
func TestHMMSPCacheDisabled(t *testing.T) {
	city, s := newWorld(t, func(c *Config) {
		c.UseHMMMatching = true
		c.SPCacheEntries = -1
	})
	trip := eventfulTrip(t, city, 97)
	if _, err := s.Summarize(trip.Raw); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	for _, name := range []string{MetricSPCacheHits, MetricSPCacheMisses, MetricSPCacheEvictions} {
		if _, ok := snap.Counters[name]; ok {
			t.Fatalf("disabled cache registered counter %s: %+v", name, snap.Counters)
		}
	}
}

func TestAccessorsAndClones(t *testing.T) {
	city, s := newWorld(t, nil)
	if !s.Trained() {
		t.Fatal("Trained should be true")
	}
	if s.Popular() == nil || s.FeatureMap() == nil {
		t.Fatal("trained knowledge accessors returned nil")
	}
	if s.Templates() == nil {
		t.Fatal("Templates returned nil")
	}

	trip := eventfulTrip(t, city, 63)
	base, err := s.SummarizeK(trip.Raw, 2)
	if err != nil {
		t.Fatal(err)
	}

	// WithWeights shares trained knowledge; a huge speed weight must not
	// reduce what is selected.
	boosted := s.WithWeights(feature.Weights{feature.KeySpeed: 5})
	if !boosted.Trained() {
		t.Fatal("clone lost training")
	}
	bsum, err := boosted.SummarizeK(trip.Raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bsum.MentionsFeature(feature.KeySpeed) && base.MentionsFeature(feature.KeySpeed) {
		t.Fatal("boosted weights dropped the speed feature")
	}

	// WithThreshold at an absurdly high η selects nothing.
	strict := s.WithThreshold(50)
	ssum, err := strict.SummarizeK(trip.Raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if keys := ssum.FeatureKeys(); len(keys) != 0 {
		t.Fatalf("strict threshold still selected %v", keys)
	}
	// The original summarizer is unaffected by the clones.
	again, err := s.SummarizeK(trip.Raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Text != base.Text {
		t.Fatal("clone mutated the original summarizer")
	}
}

func TestFlattenHistoryForAblationOnSummarizer(t *testing.T) {
	_, s := newWorld(t, nil)
	before := s.FeatureMap().NumEdges()
	s.FlattenHistoryForAblation()
	if s.FeatureMap().NumEdges() != before {
		t.Fatal("flattening changed the edge set")
	}
	// Every transition now carries the identical regular vector.
	var first []float64
	count := 0
	for a := 0; a < 50 && count < 3; a++ {
		for b := 0; b < 50 && count < 3; b++ {
			r, ok := s.FeatureMap().Regular(a, b)
			if !ok {
				continue
			}
			if first == nil {
				first = r
			} else {
				for j := range r {
					if r[j] != first[j] {
						t.Fatalf("flattened regulars differ: %v vs %v", r, first)
					}
				}
			}
			count++
		}
	}
	if count < 2 {
		t.Skip("not enough transitions found to compare")
	}
}

func TestTrainEmptyAndHopelessCorpus(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, Seed: 3})
	s, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train(nil); err == nil {
		t.Error("empty corpus accepted")
	}
	// A corpus of structurally invalid trajectories is all skipped.
	bad := []*traj.Raw{{ID: "x"}, {ID: "y"}}
	stats, err := s.Train(bad)
	if err == nil {
		t.Error("hopeless corpus accepted")
	}
	if stats.Skipped != 2 || stats.Calibrated != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestTrainParallelMatchesSerial proves the parallel corpus calibration is
// deterministic: any worker count learns exactly the same knowledge as the
// serial baseline, and summaries come out identical. Run under -race it
// also exercises the worker pool for data races.
func TestTrainParallelMatchesSerial(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, BlockMeters: 500, Seed: 21})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 22})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})
	train := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 80, Seed: 23, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	trip := eventfulTrip(t, city, 24)

	summarizers := map[int]*Summarizer{}
	var serialStats TrainStats
	for _, workers := range []int{1, 4} {
		s, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks, TrainWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := s.Train(corpus)
		if err != nil {
			t.Fatal(err)
		}
		// Overlay build time is wall clock, the one legitimately
		// non-deterministic field; everything else must match exactly.
		stats.OverlayBuildSeconds = 0
		if workers == 1 {
			serialStats = stats
		} else if stats != serialStats {
			t.Errorf("workers=%d stats = %+v, serial = %+v", workers, stats, serialStats)
		}
		summarizers[workers] = s
	}
	sumSerial, err := summarizers[1].SummarizeK(trip.Raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	sumParallel, err := summarizers[4].SummarizeK(trip.Raw, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sumSerial.Text != sumParallel.Text {
		t.Errorf("parallel training changed the summary:\nserial:   %s\nparallel: %s",
			sumSerial.Text, sumParallel.Text)
	}
}

// TestStageMetricsRecorded checks the per-stage histograms and pipeline
// counters fill in as the pipeline runs (docs/OBSERVABILITY.md documents
// the names asserted here).
func TestStageMetricsRecorded(t *testing.T) {
	city, s := newWorld(t, nil)
	snap := s.Metrics().Snapshot()
	if snap.Histograms[MetricTrain].Count != 1 {
		t.Errorf("%s count = %d, want 1", MetricTrain, snap.Histograms[MetricTrain].Count)
	}
	if snap.Counters[MetricTrainCalibrated] == 0 {
		t.Errorf("%s = 0 after Train", MetricTrainCalibrated)
	}
	calibrations := snap.Histograms[MetricStageCalibrate].Count
	if calibrations == 0 {
		t.Errorf("%s empty after Train", MetricStageCalibrate)
	}

	trip := eventfulTrip(t, city, 25)
	if _, err := s.Summarize(trip.Raw); err != nil {
		t.Fatal(err)
	}
	snap = s.Metrics().Snapshot()
	for _, name := range []string{
		MetricStageCalibrate, MetricStageExtract, MetricStagePartition,
		MetricStageSelect, MetricStageRender, MetricSummarize,
	} {
		h := snap.Histograms[name]
		if h.Count == 0 {
			t.Errorf("histogram %s not recorded", name)
		}
		if h.Sum < 0 || h.Max < h.Min {
			t.Errorf("histogram %s inconsistent: %+v", name, h)
		}
	}
	if snap.Histograms[MetricStageCalibrate].Count != calibrations+1 {
		t.Errorf("calibrate count = %d, want %d",
			snap.Histograms[MetricStageCalibrate].Count, calibrations+1)
	}
	if snap.Counters[MetricSummaries] != 1 {
		t.Errorf("%s = %d, want 1", MetricSummaries, snap.Counters[MetricSummaries])
	}

	// Errors are counted, not timed.
	if _, err := s.Summarize(&traj.Raw{ID: "bad"}); err == nil {
		t.Fatal("invalid trajectory accepted")
	}
	snap = s.Metrics().Snapshot()
	if snap.Counters[MetricSummarizeErrors] == 0 {
		t.Errorf("%s = 0 after failed Summarize", MetricSummarizeErrors)
	}
}
