module stmaker

go 1.22
