package stmaker

import (
	"stmaker/internal/feature"
	"stmaker/internal/history"
	"stmaker/internal/traj"
)

// HistoryAccumulator is the mutable cumulative form of the trained
// knowledge, for streaming ingestion: closed trips are folded in one at a
// time with AccumulateHistory, and a compaction periodically freezes the
// accumulated state into an immutable Model (BuildIncrementalModel) that
// is published through the same atomic swap a batch Train uses. It holds
// exactly the state a Model serializes — the corpus landmark sequences
// and the historical feature map — so a model built from an accumulator
// seeded with N trips is identical to one trained on those N trips in a
// batch.
//
// An accumulator is not safe for concurrent use; the ingestion layer
// serializes folds and freezes under its own lock.
type HistoryAccumulator struct {
	seqs    [][]int
	featMap *history.FeatureMap
	trips   int
}

// NewHistoryAccumulator creates an accumulator for this summarizer's
// feature registry. With a nil base it starts empty (cold start); with a
// base Model — which must match the summarizer's configuration, same
// check as LoadModel — it is seeded with a deep copy of the model's
// knowledge, so ingestion extends a warm-started corpus instead of
// forgetting it.
func (s *Summarizer) NewHistoryAccumulator(base *Model) (*HistoryAccumulator, error) {
	if base != nil {
		if err := s.checkCompatible(base); err != nil {
			return nil, err
		}
		seqs := base.popular.Sequences()
		return &HistoryAccumulator{
			seqs:    seqs,
			featMap: base.featMap.Clone(),
			trips:   len(seqs),
		}, nil
	}
	descs := s.registry.Descriptors()
	fm := history.NewFeatureMap(len(descs))
	for j, d := range descs {
		if !d.Numeric {
			fm.MarkCategorical(j)
		}
	}
	return &HistoryAccumulator{featMap: fm}, nil
}

// Trips returns the number of trips folded in, including any carried
// from the seed model.
func (a *HistoryAccumulator) Trips() int { return a.trips }

// Transitions returns the number of annotated landmark transitions in
// the cumulative feature map.
func (a *HistoryAccumulator) Transitions() int { return a.featMap.NumEdges() }

// Clone returns an independent deep copy. This is the compaction freeze:
// the clone is taken under the ingestion lock (cheap relative to a model
// build), then handed to BuildIncrementalModel outside it while the
// original keeps absorbing new trips.
func (a *HistoryAccumulator) Clone() *HistoryAccumulator {
	return &HistoryAccumulator{
		// Inner sequence slices are never mutated after being appended, so
		// copying the outer slice is a full freeze.
		seqs:    append([][]int(nil), a.seqs...),
		featMap: a.featMap.Clone(),
		trips:   a.trips,
	}
}

// AccumulateHistory folds one calibrated trip into acc: each segment's
// feature vector joins the cumulative feature map and the landmark
// sequence joins the popular-route corpus. Extraction runs in a private
// feature context sharing the serving context's map resources (the same
// discipline as trainSymbolic), so folded trips never grow the long-lived
// serving edge cache.
func (s *Summarizer) AccumulateHistory(acc *HistoryAccumulator, sym *traj.Symbolic) {
	tctx := feature.NewContext(s.ctx.Graph, s.ctx.Matcher, s.ctx.Landmarks)
	tctx.HMM = s.ctx.HMM
	tctx.MatchRadiusMeters = s.ctx.MatchRadiusMeters
	for _, seg := range sym.Segments() {
		v := s.registry.Extract(seg, tctx)
		acc.featMap.Add(seg.From.Landmark, seg.To.Landmark, v)
	}
	acc.seqs = append(acc.seqs, sym.LandmarkIDs())
	acc.trips++
}

// BuildIncrementalModel materializes an immutable Model from the
// accumulator's current knowledge without publishing it: the caller
// persists it, publishes it via LoadModel, or both. The returned model
// takes ownership of acc's state — do not mutate acc afterwards; when
// accumulation must continue, freeze a Clone under the ingestion lock
// and build from the clone.
func (s *Summarizer) BuildIncrementalModel(acc *HistoryAccumulator) *Model {
	stats := TrainStats{
		Calibrated:  acc.trips,
		Transitions: acc.featMap.NumEdges(),
	}
	// Compactions run continuously, so the overlay (a function of the
	// graph alone) is carried forward from the serving model; only the
	// very first compaction after a cold start pays the build.
	overlay := s.routingOverlay(&stats)
	return &Model{
		featureKeys:             s.featureKeys(),
		calibrationRadiusMeters: s.cfg.CalibrationRadiusMeters,
		minAnchorSpacingMeters:  s.cfg.MinAnchorSpacingMeters,
		stats:                   stats,
		popular:                 history.BuildPopularFromSequences(acc.seqs),
		featMap:                 acc.featMap,
		overlay:                 overlay,
	}
}
