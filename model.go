package stmaker

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"

	"stmaker/internal/history"
	"stmaker/internal/modelio"
	"stmaker/internal/roadnet"
)

// ErrModelMismatch is returned by LoadModel when a model was built under
// a different configuration than the receiving Summarizer: a different
// feature registry (keys, order or numeric-vs-categorical kinds) or
// different calibration parameters. Serving with such a model would
// silently misinterpret every feature vector, so the load is refused.
var ErrModelMismatch = errors.New("stmaker: model does not match summarizer configuration")

// ErrInvalidModel marks a structurally invalid model file: bad magic,
// checksum mismatch, truncation, or a payload violating the format's
// invariants. It is the model-file analogue of ErrInvalidInput.
var ErrInvalidModel = modelio.ErrInvalidModel

// ErrModelNotFound is returned by LoadModelFile when the model file does
// not exist. Callers that serve models over HTTP use it to distinguish
// "no such model" (404) from "model present but unusable" (ErrInvalidModel
// or ErrModelMismatch, a 500-class failure).
var ErrModelNotFound = errors.New("stmaker: model file not found")

// Model is an immutable snapshot of everything Train produces (§V): the
// historical feature map, the popular-route statistics, the feature
// registry fingerprint and the calibration parameters the corpus was
// rewritten under, plus corpus statistics and a monotonically increasing
// version. A Summarizer holds its current Model behind an atomic pointer:
// Train and LoadModel build a complete replacement off to the side and
// publish it in one swap, so concurrent Summarize calls always see one
// consistent knowledge snapshot and re-training while serving is a
// supported, race-free operation.
//
// Models are immutable after publication — treat everything reachable
// from the accessors as read-only. They serialize to a versioned,
// checksummed binary format via WriteTo and ReadModelFrom (see
// internal/modelio), which is what stmakerd's -model / -save-model
// warm-start path uses.
type Model struct {
	version                 uint64
	featureKeys             []string
	calibrationRadiusMeters float64
	minAnchorSpacingMeters  float64
	stats                   TrainStats
	popular                 *history.Popular
	featMap                 *history.FeatureMap
	// overlay is the precomputed ALT routing overlay (nil when disabled
	// or when the model came from a pre-overlay file — serving then falls
	// back to plain Dijkstra, never an error).
	overlay *roadnet.Overlay
}

// Version is the model's publish sequence number: assigned when the
// model is published into a Summarizer, strictly increasing across
// publishes within a process (a model loaded from disk keeps its saved
// version when that is already ahead). Exported as the `model_version`
// gauge.
func (m *Model) Version() uint64 { return m.version }

// FeatureKeys returns the feature registry fingerprint the model was
// built under: every feature key in vector order.
func (m *Model) FeatureKeys() []string {
	return append([]string(nil), m.featureKeys...)
}

// Stats returns the corpus statistics of the Train call that built the
// model (zeroes for models assembled via TrainSymbolic, except
// Transitions).
func (m *Model) Stats() TrainStats { return m.stats }

// NumTransitions returns the number of annotated landmark transitions in
// the historical feature map.
func (m *Model) NumTransitions() int { return m.featMap.NumEdges() }

// CalibrationRadiusMeters is the anchor radius the training corpus was
// calibrated with.
func (m *Model) CalibrationRadiusMeters() float64 { return m.calibrationRadiusMeters }

// MinAnchorSpacingMeters is the anchor-thinning spacing the training
// corpus was calibrated with.
func (m *Model) MinAnchorSpacingMeters() float64 { return m.minAnchorSpacingMeters }

// Popular exposes the popular-route knowledge. Read-only.
func (m *Model) Popular() *history.Popular { return m.popular }

// FeatureMap exposes the historical feature map. Read-only.
func (m *Model) FeatureMap() *history.FeatureMap { return m.featMap }

// RoutingOverlay exposes the precomputed ALT routing overlay, or nil when
// the model carries none (Config.OverlayLandmarks < 0, or the model was
// loaded from a file written before the overlay existed — both serve
// through the plain Dijkstra engine). Read-only.
func (m *Model) RoutingOverlay() *roadnet.Overlay { return m.overlay }

// WriteTo serializes the model in the versioned, CRC-checksummed binary
// format of internal/modelio, implementing io.WriterTo. The encoding is
// deterministic: writing the same model twice produces identical bytes.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	data := &modelio.Model{
		Version:                 m.version,
		FeatureKeys:             m.FeatureKeys(),
		CalibrationRadiusMeters: m.calibrationRadiusMeters,
		MinAnchorSpacingMeters:  m.minAnchorSpacingMeters,
		Stats: modelio.Stats{
			Calibrated: m.stats.Calibrated,
			Skipped:    m.stats.Skipped,
			Repaired:   m.stats.Repaired,
			Repairs:    m.stats.Repairs,
		},
		PopularSeqs: m.popular.Sequences(),
		Categorical: m.featMap.CategoricalDims(),
	}
	for _, e := range m.featMap.EdgesSorted() {
		n, sums, cats, ok := m.featMap.Aggregate(e[0], e[1])
		if !ok {
			continue // unreachable: EdgesSorted only lists annotated edges
		}
		edge := modelio.Edge{From: e[0], To: e[1], N: n, Sums: sums}
		for j, counts := range cats {
			if counts == nil {
				continue
			}
			cd := modelio.CatDim{Dim: j}
			for v, c := range counts {
				cd.Values = append(cd.Values, modelio.ValueCount{Value: v, Count: c})
			}
			edge.Cats = append(edge.Cats, cd)
		}
		data.Edges = append(data.Edges, edge)
	}
	if m.overlay != nil && m.overlay.NumLandmarks() > 0 {
		fwd, bwd := m.overlay.Tables()
		ov := &modelio.Overlay{NumNodes: m.overlay.NumNodes(), Fwd: fwd, Bwd: bwd}
		for _, id := range m.overlay.LandmarkNodes() {
			ov.Landmarks = append(ov.Landmarks, int(id))
		}
		data.Overlay = ov
	}
	return modelio.Write(w, data)
}

// ReadModelFrom deserializes a model written by WriteTo (or stmakerd
// -save-model). The input is treated as untrusted: structural problems
// return an error wrapping ErrInvalidModel, never a panic. The returned
// model is not yet attached to any Summarizer — pass it to LoadModel,
// which verifies it matches the summarizer's configuration.
func ReadModelFrom(r io.Reader) (*Model, error) {
	data, err := modelio.Read(r)
	if err != nil {
		return nil, err
	}
	featMap := history.NewFeatureMap(len(data.FeatureKeys))
	for j, c := range data.Categorical {
		if c {
			featMap.MarkCategorical(j)
		}
	}
	for _, e := range data.Edges {
		var cats []map[float64]int
		if len(e.Cats) > 0 {
			cats = make([]map[float64]int, len(data.FeatureKeys))
			for _, cd := range e.Cats {
				counts := make(map[float64]int, len(cd.Values))
				for _, vc := range cd.Values {
					counts[vc.Value] = vc.Count
				}
				cats[cd.Dim] = counts
			}
		}
		if err := featMap.AddAggregate(e.From, e.To, e.N, e.Sums, cats); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidModel, err)
		}
	}
	stats := TrainStats{
		Calibrated:  data.Stats.Calibrated,
		Skipped:     data.Stats.Skipped,
		Repaired:    data.Stats.Repaired,
		Repairs:     data.Stats.Repairs,
		Transitions: featMap.NumEdges(),
	}
	var overlay *roadnet.Overlay
	if ov := data.Overlay; ov != nil {
		landmarks := make([]roadnet.NodeID, len(ov.Landmarks))
		for i, id := range ov.Landmarks {
			landmarks[i] = roadnet.NodeID(id)
		}
		overlay, err = roadnet.NewOverlayFromTables(landmarks, ov.NumNodes, ov.Fwd, ov.Bwd)
		if err != nil {
			return nil, fmt.Errorf("%w: routing overlay: %v", ErrInvalidModel, err)
		}
	}
	return &Model{
		version:                 data.Version,
		featureKeys:             data.FeatureKeys,
		calibrationRadiusMeters: data.CalibrationRadiusMeters,
		minAnchorSpacingMeters:  data.MinAnchorSpacingMeters,
		stats:                   stats,
		popular:                 history.BuildPopularFromSequences(data.PopularSeqs),
		featMap:                 featMap,
		overlay:                 overlay,
	}, nil
}

// LoadModelFile reads a model file from disk, classifying failures so
// callers can map them to distinct responses: a missing file returns an
// error wrapping ErrModelNotFound, structural corruption wraps
// ErrInvalidModel (via ReadModelFrom), and anything else (permissions,
// I/O) is returned as-is. The returned model is not yet attached to any
// Summarizer — pass it to LoadModel.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %v", ErrModelNotFound, err)
		}
		return nil, err
	}
	defer f.Close()
	return ReadModelFrom(f)
}

// Model returns the currently-published knowledge snapshot, or nil before
// the first Train/LoadModel. The same pointer keeps serving even if a
// retrain publishes a successor, so a caller holding it sees a stable
// view.
func (s *Summarizer) Model() *Model { return s.model.Load() }

// SaveModel serializes the currently-published model to w (see
// Model.WriteTo). It returns ErrNotTrained when no model has been
// published yet.
func (s *Summarizer) SaveModel(w io.Writer) (int64, error) {
	m := s.model.Load()
	if m == nil {
		return 0, ErrNotTrained
	}
	return m.WriteTo(w)
}

// LoadModel verifies that m was built under this Summarizer's
// configuration and atomically publishes it, replacing any current model
// — the warm-start path that makes stmakerd boot in milliseconds instead
// of re-training. The model must carry exactly the summarizer's feature
// registry (same keys, same order, same numeric/categorical kinds) and
// the same calibration parameters; any disagreement returns
// ErrModelMismatch and leaves the serving model untouched. m itself is
// not mutated and may be loaded into several summarizers.
func (s *Summarizer) LoadModel(m *Model) error {
	if m == nil {
		return errors.New("stmaker: LoadModel called with nil model")
	}
	if err := s.checkCompatible(m); err != nil {
		return err
	}
	s.publish(*m)
	return nil
}

// checkCompatible verifies the model's fingerprint against the
// summarizer's registry and calibration configuration.
func (s *Summarizer) checkCompatible(m *Model) error {
	descs := s.registry.Descriptors()
	if len(m.featureKeys) != len(descs) {
		return fmt.Errorf("%w: model has %d features %v, registry has %d %v",
			ErrModelMismatch, len(m.featureKeys), m.featureKeys, len(descs), s.featureKeys())
	}
	categorical := m.featMap.CategoricalDims()
	for i, d := range descs {
		if m.featureKeys[i] != d.Key {
			return fmt.Errorf("%w: feature %d is %q in the model but %q in the registry",
				ErrModelMismatch, i, m.featureKeys[i], d.Key)
		}
		if categorical[i] == d.Numeric {
			return fmt.Errorf("%w: feature %q is categorical=%v in the model but numeric=%v in the registry",
				ErrModelMismatch, d.Key, categorical[i], d.Numeric)
		}
	}
	// Bit-exact comparison: the parameters are copied verbatim from the
	// resolved Config at build time, so any drift is a real config change.
	if math.Float64bits(m.calibrationRadiusMeters) != math.Float64bits(s.cfg.CalibrationRadiusMeters) {
		return fmt.Errorf("%w: model calibrated with radius %gm, summarizer uses %gm",
			ErrModelMismatch, m.calibrationRadiusMeters, s.cfg.CalibrationRadiusMeters)
	}
	if math.Float64bits(m.minAnchorSpacingMeters) != math.Float64bits(s.cfg.MinAnchorSpacingMeters) {
		return fmt.Errorf("%w: model calibrated with anchor spacing %gm, summarizer uses %gm",
			ErrModelMismatch, m.minAnchorSpacingMeters, s.cfg.MinAnchorSpacingMeters)
	}
	// The overlay's distance tables are keyed by node id, so a model whose
	// overlay was built over a different road graph would hand out bounds
	// for the wrong nodes. An absent overlay is always fine (plain-engine
	// fallback); a present one must cover exactly this graph.
	if m.overlay != nil && m.overlay.NumNodes() != s.cfg.Graph.NumNodes() {
		return fmt.Errorf("%w: model routing overlay covers %d road nodes, graph has %d",
			ErrModelMismatch, m.overlay.NumNodes(), s.cfg.Graph.NumNodes())
	}
	return nil
}

// featureKeys snapshots the registry fingerprint in vector order.
func (s *Summarizer) featureKeys() []string {
	descs := s.registry.Descriptors()
	keys := make([]string, len(descs))
	for i, d := range descs {
		keys[i] = d.Key
	}
	return keys
}

// publish installs a new model as the serving snapshot in one atomic
// swap, assigning it the next version. Publication is serialized (the
// mutex) but readers stay lock-free: a concurrent Summarize either sees
// the old complete model or the new complete model, never a mix. The
// model is passed by value so the published copy is owned here and the
// caller's Model (possibly shared or re-loaded elsewhere) is not mutated.
// This is the cell's sole designated publisher: `make lint` (atomiccell)
// rejects any other .Store/.Swap on the model cell, and (modelmut) any
// in-place write to a Model outside the builders.
func (s *Summarizer) publish(m Model) *Model {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	var prev uint64
	if cur := s.model.Load(); cur != nil {
		prev = cur.version
	}
	if m.version <= prev {
		m.version = prev + 1
	}
	s.model.Store(&m)
	// Re-point the HMM matcher's routing engine at the new model's
	// overlay (or back to plain Dijkstra when it has none). Engines are
	// exact — bit-identical distances — so requests in flight during the
	// swap are unaffected whichever engine answers them.
	if h := s.ctx.HMM; h != nil {
		if m.overlay != nil {
			h.SetRouter(roadnet.NewALTRouter(s.cfg.Graph, m.overlay))
		} else {
			h.SetRouter(nil)
		}
	}
	s.mx.Counter(MetricModelSwaps).Inc()
	gauge := s.mx.Counter(MetricModelVersion) //nolint:stmaker/metricnames -- model_version is a gauge (set to the serving model's version), so the _total counter suffix does not apply
	gauge.Add(int64(m.version) - gauge.Value())
	return &m
}
