// Benchmarks regenerating every evaluation figure of the paper (§VII),
// plus the kernel and ablation benches DESIGN.md calls out. Each
// BenchmarkFigN runs the corresponding harness from internal/experiments
// once per iteration and reports the headline statistic of that figure as
// a custom metric, so `go test -bench=.` both times the regeneration and
// surfaces the reproduced numbers.
package stmaker_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"stmaker"
	"stmaker/internal/calibrate"
	"stmaker/internal/experiments"
	"stmaker/internal/feature"
	"stmaker/internal/partition"
	"stmaker/internal/traj"
)

var (
	benchOnce  sync.Once
	benchWorld *experiments.World
	benchErr   error
)

// world lazily builds the shared benchmark world (small enough that every
// figure regenerates in about a second).
func world(b *testing.B) *experiments.World {
	b.Helper()
	benchOnce.Do(func() {
		benchWorld, benchErr = experiments.NewWorld(experiments.Options{
			CityRows: 8, CityCols: 8, TrainTrips: 300, TestTrips: 160, Seed: 5,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWorld
}

// BenchmarkSummarizeOptimal times the end-to-end kernel: calibrate,
// partition optimally, select features and render one trajectory.
func BenchmarkSummarizeOptimal(b *testing.B) {
	w := world(b)
	trips := w.Test
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Summarizer.Summarize(trips[i%len(trips)].Raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummarizeK3 times the kernel at the paper's presentation
// granularity.
func BenchmarkSummarizeK3(b *testing.B) {
	w := world(b)
	trips := w.Test
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Summarizer.SummarizeK(trips[i%len(trips)].Raw, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CaseStudy regenerates the Fig. 6 case study: one trajectory
// summarized at k = 1, 2, 3.
func BenchmarkFig6CaseStudy(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CaseStudy(w, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Compression regenerates the data-volume comparison and
// reports the measured compression ratio.
func BenchmarkFig7Compression(b *testing.B) {
	w := world(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CompressionStudy(w, 60)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "raw/summary")
}

// BenchmarkFig8FeatureFrequencyByTime regenerates the FF-by-time series
// and reports the daytime-vs-night contrast for the speed feature.
func BenchmarkFig8FeatureFrequencyByTime(b *testing.B) {
	w := world(b)
	var day, night float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.FeatureFrequencyByTime(w)
		if err != nil {
			b.Fatal(err)
		}
		day, night = res.DaytimeVsNight(feature.KeySpeed)
	}
	b.ReportMetric(day, "FF(Spe)-day")
	b.ReportMetric(night, "FF(Spe)-night")
}

// BenchmarkFig9LandmarkUsage regenerates the landmark-usage series and
// reports the top-decile share (the paper measures about 40%).
func BenchmarkFig9LandmarkUsage(b *testing.B) {
	w := world(b)
	var top float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.LandmarkUsageBySignificance(w)
		if err != nil {
			b.Fatal(err)
		}
		top = res.Usage[0]
	}
	b.ReportMetric(top*100, "top10%-share")
}

// BenchmarkFig10aWeightSweep regenerates the speed-weight sweep and
// reports the FF rise of Spe from w=0.5 to w=4.
func BenchmarkFig10aWeightSweep(b *testing.B) {
	w := world(b)
	var rise float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.FeatureWeightSweep(w, []float64{0.5, 1, 2, 4}, 60)
		if err != nil {
			b.Fatal(err)
		}
		col := res.ColumnFF(feature.KeySpeed)
		rise = col[len(col)-1] - col[0]
	}
	b.ReportMetric(rise, "FF(Spe)-rise")
}

// BenchmarkFig10bPartitionSweep regenerates the k sweep and reports the
// moving-feature FF rise from k=1 to k=7.
func BenchmarkFig10bPartitionSweep(b *testing.B) {
	w := world(b)
	var rise float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.PartitionSizeSweep(w, []int{1, 3, 5, 7}, 60)
		if err != nil {
			b.Fatal(err)
		}
		first := res.ColumnFF(feature.KeyStayPoints)[0] + res.ColumnFF(feature.KeySpeed)[0]
		last := res.ColumnFF(feature.KeyStayPoints)[3] + res.ColumnFF(feature.KeySpeed)[3]
		rise = last - first
	}
	b.ReportMetric(rise, "movingFF-rise")
}

// BenchmarkFig11UserStudy regenerates the surrogate user study and reports
// the level-3+4 share (the paper measures about 80%).
func BenchmarkFig11UserStudy(b *testing.B) {
	w := world(b)
	var intuitive float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.UserStudy(w, 150)
		if err != nil {
			b.Fatal(err)
		}
		intuitive = res.FractionAtLeast(3)
	}
	b.ReportMetric(intuitive*100, "level3+4%")
}

// BenchmarkFig12aTimingBySize regenerates the time-vs-|T| study.
func BenchmarkFig12aTimingBySize(b *testing.B) {
	w := world(b)
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TimingByTrajectorySize(w, 3)
		if err != nil {
			b.Fatal(err)
		}
		worst = res.MeanMs[len(res.MeanMs)-1]
	}
	b.ReportMetric(worst, "largest|T|-ms")
}

// BenchmarkFig12bTimingByK regenerates the time-vs-k study.
func BenchmarkFig12bTimingByK(b *testing.B) {
	w := world(b)
	var atK7 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.TimingByPartitionSize(w, []int{1, 4, 7}, 40)
		if err != nil {
			b.Fatal(err)
		}
		atK7 = res.MeanMs[len(res.MeanMs)-1]
	}
	b.ReportMetric(atK7, "k7-ms")
}

// randomInput builds a synthetic partition input of n segments.
func randomInput(n int, seed int64) partition.Input {
	rng := rand.New(rand.NewSource(seed))
	in := partition.Input{
		Features:     make([][]float64, n),
		Significance: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		in.Features[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		in.Significance[i] = rng.Float64()
	}
	return in
}

// BenchmarkAblationDPPartition times the exact-k DP partitioner on a
// 200-segment trajectory.
func BenchmarkAblationDPPartition(b *testing.B) {
	in := randomInput(200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.KPartition(in, 7, partition.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyPartition times the greedy equivalent; on this
// separable potential it reaches the same energy (see partition tests).
func BenchmarkAblationGreedyPartition(b *testing.B) {
	in := randomInput(200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.GreedyK(in, 7, partition.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUniformPartition times the naive equal-split baseline
// and reports its energy excess over the DP optimum.
func BenchmarkAblationUniformPartition(b *testing.B) {
	in := randomInput(200, 1)
	dp, err := partition.KPartition(in, 7, partition.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var excess float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		un, err := partition.UniformK(in, 7, partition.Options{})
		if err != nil {
			b.Fatal(err)
		}
		excess = un.Energy - dp.Energy
	}
	b.ReportMetric(excess, "energy-excess")
}

// BenchmarkAblationCosineSimilarity times the paper's Eq. (3) measure.
func BenchmarkAblationCosineSimilarity(b *testing.B) {
	in := randomInput(2, 3)
	u, v := in.Features[0], in.Features[1]
	w := []float64{1, 1, 1, 1, 1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Similarity(u, v, w)
	}
}

// BenchmarkAblationL1Similarity times the L1 alternative and, as a side
// metric, the cut disagreement it causes against the cosine partition.
func BenchmarkAblationL1Similarity(b *testing.B) {
	in := randomInput(2, 3)
	u, v := in.Features[0], in.Features[1]
	w := []float64{1, 1, 1, 1, 1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.L1Similarity(u, v, w)
	}
	b.StopTimer()
	big := randomInput(400, 4)
	cos, err := partition.Optimal(big, partition.Options{})
	if err != nil {
		b.Fatal(err)
	}
	l1, err := partition.Optimal(big, partition.Options{SimilarityFunc: partition.L1Similarity})
	if err != nil {
		b.Fatal(err)
	}
	var disagree float64
	for i := range cos.Cuts {
		if cos.Cuts[i] != l1.Cuts[i] {
			disagree++
		}
	}
	b.ReportMetric(disagree/float64(len(cos.Cuts))*100, "cut-disagree%")
}

// BenchmarkAblationGlobalMean compares feature selection with the
// historical feature map against the global-mean-only baseline, reporting
// how many more features the crude baseline flags (over-selection).
func BenchmarkAblationGlobalMean(b *testing.B) {
	w := world(b)
	trips := w.Test[:40]
	var withMap, globalOnly float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withMap, globalOnly = 0, 0
		for _, trip := range trips {
			sum, err := w.Summarizer.SummarizeK(trip.Raw, 3)
			if err != nil {
				continue
			}
			withMap += float64(len(sum.FeatureKeys()))
			// The baseline summarizer selects against the corpus-wide mean
			// for every transition by pretending no edge is known.
			sumG, err := baselineSummarizer(b, w).SummarizeK(trip.Raw, 3)
			if err != nil {
				continue
			}
			globalOnly += float64(len(sumG.FeatureKeys()))
		}
	}
	b.ReportMetric(globalOnly-withMap, "extra-selections")
}

var (
	baselineOnce sync.Once
	baselineSum  *stmaker.Summarizer
	baselineErr  error
)

// baselineSummarizer trains a summarizer whose historical feature map is
// collapsed to the global mean: every transition carries the same regular
// vector, removing the per-edge knowledge of §V-B.
func baselineSummarizer(b *testing.B, w *experiments.World) *stmaker.Summarizer {
	b.Helper()
	baselineOnce.Do(func() {
		s, err := stmaker.New(stmaker.Config{Graph: w.City.Graph, Landmarks: w.City.Landmarks})
		if err != nil {
			baselineErr = err
			return
		}
		// Retrain on a corpus of identical single-transition trajectories?
		// Simpler and exact: train normally, then flatten the map.
		corpus := make([]*traj.Raw, 0, len(w.Train))
		for _, tr := range w.Train {
			corpus = append(corpus, tr.Raw)
		}
		if _, err := s.Train(corpus); err != nil {
			baselineErr = err
			return
		}
		s.FlattenHistoryForAblation()
		baselineSum = s
	})
	if baselineErr != nil {
		b.Fatal(baselineErr)
	}
	return baselineSum
}

// BenchmarkAblationAnchorSpacing times calibration at three anchor
// spacings and reports the resulting |T|, quantifying the
// granularity/speed trade-off of the calibration substrate.
func BenchmarkAblationAnchorSpacing(b *testing.B) {
	w := world(b)
	raw := w.Test[0].Raw
	for _, spacing := range []float64{0, 50, 200} {
		spacing := spacing
		b.Run(spacingName(spacing), func(b *testing.B) {
			cal := calibrate.New(w.City.Landmarks, calibrate.Options{
				RadiusMeters: 100, MinSpacingMeters: spacing,
			})
			var size int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sym, err := cal.Calibrate(raw)
				if err != nil {
					b.Fatal(err)
				}
				size = sym.Len()
			}
			b.ReportMetric(float64(size), "|T|")
		})
	}
}

func spacingName(s float64) string {
	switch s {
	case 0:
		return "keep-all"
	case 50:
		return "spacing-50m"
	default:
		return "spacing-200m"
	}
}

// BenchmarkCalibrate times the calibration substrate alone.
func BenchmarkCalibrate(b *testing.B) {
	w := world(b)
	raw := w.Test[0].Raw
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Summarizer.Calibrate(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrain times training over the benchmark corpus with the given
// worker count (0 = GOMAXPROCS, the default; 1 = serial baseline).
func benchTrain(b *testing.B, workers int) {
	w := world(b)
	corpus := make([]*traj.Raw, 0, len(w.Train))
	for _, tr := range w.Train {
		corpus = append(corpus, tr.Raw)
	}
	s, err := stmaker.New(stmaker.Config{
		Graph: w.City.Graph, Landmarks: w.City.Landmarks, TrainWorkers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Train(corpus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrain times training with parallel corpus calibration (the
// default: GOMAXPROCS workers). Compare against BenchmarkTrainSerial to
// see the speedup; on a multi-core machine the parallel path wins by
// roughly the core count, since calibration dominates training time.
func BenchmarkTrain(b *testing.B) { benchTrain(b, 0) }

// BenchmarkTrainSerial is the single-worker baseline for BenchmarkTrain.
func BenchmarkTrainSerial(b *testing.B) { benchTrain(b, 1) }

// BenchmarkSummarizeHMMMatching times the kernel with HMM (Viterbi) map
// matching instead of greedy nearest-edge matching.
func BenchmarkSummarizeHMMMatching(b *testing.B) {
	w := world(b)
	s, err := stmaker.New(stmaker.Config{
		Graph: w.City.Graph, Landmarks: w.City.Landmarks, UseHMMMatching: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := make([]*traj.Raw, 0, len(w.Train))
	for _, tr := range w.Train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		b.Fatal(err)
	}
	trips := w.Test
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Summarize(trips[i%len(trips)].Raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdStartTrain measures boot-to-serving the cold way: build a
// summarizer and train it on the full corpus, the path every stmakerd
// instance paid on boot before saved models existed. Compare against
// BenchmarkWarmStartLoadModel — the gap is what -model buys a restart.
func BenchmarkColdStartTrain(b *testing.B) {
	w := world(b)
	corpus := make([]*traj.Raw, 0, len(w.Train))
	for _, tr := range w.Train {
		corpus = append(corpus, tr.Raw)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := stmaker.New(stmaker.Config{Graph: w.City.Graph, Landmarks: w.City.Landmarks})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Train(corpus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStartLoadModel measures boot-to-serving the warm way:
// build a summarizer and load the model saved by a previous training run
// (decode, validate, fingerprint-check, publish), skipping calibration
// and feature extraction entirely — stmakerd -model.
func BenchmarkWarmStartLoadModel(b *testing.B) {
	w := world(b)
	var file bytes.Buffer
	if _, err := w.Summarizer.SaveModel(&file); err != nil {
		b.Fatal(err)
	}
	data := file.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := stmaker.New(stmaker.Config{Graph: w.City.Graph, Landmarks: w.City.Landmarks})
		if err != nil {
			b.Fatal(err)
		}
		m, err := stmaker.ReadModelFrom(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.LoadModel(m); err != nil {
			b.Fatal(err)
		}
	}
}
