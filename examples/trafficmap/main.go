// Traffic overview: the §VI-C application of applying text processing to
// trajectory summaries. The summaries of a rush-hour window are clustered
// with TF-IDF k-means, giving a quick textual overview of what is
// happening on the roads; the inverted index then answers ad-hoc queries.
package main

import (
	"fmt"
	"log"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/textproc"
	"stmaker/internal/traj"
)

func main() {
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, Seed: 27})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 28})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})

	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		log.Fatal(err)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 300, Seed: 29, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		log.Fatal(err)
	}

	// Summaries of the 8:00–9:00 window.
	window := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 80, Seed: 30, FixedHour: 8.5})
	var docs []textproc.Document
	for _, trip := range window {
		sum, err := s.SummarizeK(trip.Raw, 2)
		if err != nil {
			continue
		}
		docs = append(docs, textproc.Document{ID: trip.Raw.ID, Text: sum.Text})
	}
	fmt.Printf("traffic overview, 08:00-09:00 — %d trip summaries\n\n", len(docs))

	ix := textproc.NewIndex(docs)
	cl := ix.Cluster(4, 50)
	sizes := make([]int, 4)
	for _, c := range cl.Assign {
		sizes[c]++
	}
	for c := 0; c < 4; c++ {
		fmt.Printf("cluster %d (%d trips): %v\n", c, sizes[c], cl.TopTerms(c, 6))
	}

	// Ad-hoc queries over the summaries (text search, §VI-C).
	for _, q := range []string{"staying points", "u-turn", "slower"} {
		hitsDocs := ix.Search(q)
		fmt.Printf("\nquery %q: %d summaries", q, len(hitsDocs))
		if len(hitsDocs) > 0 {
			fmt.Printf("; e.g. %s: %s", hitsDocs[0].ID, hitsDocs[0].Text)
		}
		fmt.Println()
	}
}
