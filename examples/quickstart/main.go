// Quickstart: build a simulated world, train STMaker on a historical
// corpus, and summarize one trajectory at three granularities — the
// library equivalent of the paper's Fig. 6 case study.
package main

import (
	"fmt"
	"log"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

func main() {
	// 1. A synthetic city: road network + landmark dataset. In a real
	// deployment these come from a commercial map and a POI database.
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, Seed: 42})

	// 2. Landmark significance from LBSN-style check-ins (§IV-B).
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 43})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})

	// 3. The summarizer, with the paper's default parameters.
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Train on a historical corpus of ordinary traffic.
	train := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 300, Seed: 44, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	stats, err := s.Train(corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d trajectories (%d landmark transitions)\n\n", stats.Calibrated, stats.Transitions)

	// 5. Pick a rush-hour trip with some injected anomalies and summarize
	// it at k = 1, 2, 3 — more detail appears as k grows.
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 40, Seed: 45, FixedHour: 8})
	var trip *simulate.Trip
	for _, tr := range trips {
		if len(tr.Truth) >= 2 {
			trip = tr
			break
		}
	}
	if trip == nil {
		trip = trips[0]
	}
	fmt.Printf("trajectory %s: %d GPS samples, %.1f km, ground truth %v\n\n",
		trip.Raw.ID, len(trip.Raw.Samples), trip.Raw.Length()/1000, eventKinds(trip))
	for k := 1; k <= 3; k++ {
		sum, err := s.SummarizeK(trip.Raw, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d: %s\n\n", k, sum.Text)
	}
}

func eventKinds(trip *simulate.Trip) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range trip.Truth {
		if !seen[e.Kind.String()] {
			seen[e.Kind.String()] = true
			out = append(out, e.Kind.String())
		}
	}
	return out
}
