// Travel diary: the introduction's application of turning a day of travel
// into a shareable diary. All trips of one vehicle are summarized and
// stitched into a timestamped narrative.
package main

import (
	"fmt"
	"log"
	"sort"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

func main() {
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, Seed: 17})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 18})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})

	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		log.Fatal(err)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 300, Seed: 19, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		log.Fatal(err)
	}

	// One taxi's trips over the day: pick the trips of a single object
	// from a generated fleet.
	fleet := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 120, Seed: 20, FixedHour: -1, Taxis: 8})
	byTaxi := make(map[string][]*simulate.Trip)
	for _, tr := range fleet {
		byTaxi[tr.Raw.Object] = append(byTaxi[tr.Raw.Object], tr)
	}
	// The busiest taxi makes the most interesting diary.
	var taxi string
	for id, trips := range byTaxi {
		if taxi == "" || len(trips) > len(byTaxi[taxi]) || (len(trips) == len(byTaxi[taxi]) && id < taxi) {
			taxi = id
		}
	}
	trips := byTaxi[taxi]
	sort.Slice(trips, func(i, j int) bool { return trips[i].Start.Before(trips[j].Start) })

	fmt.Printf("Travel diary for %s — %s, %d trips\n\n", taxi, trips[0].Start.Format("2 January 2006"), len(trips))
	for _, trip := range trips {
		sum, err := s.Summarize(trip.Raw)
		if err != nil {
			continue
		}
		fmt.Printf("%s (%.1f km, %s)\n  %s\n\n",
			trip.Start.Format("15:04"),
			trip.Raw.Length()/1000,
			trip.Raw.Duration().Round(1e9),
			sum.Text)
	}
}
