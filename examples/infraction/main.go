// Infraction reminder: the introduction's application of embedding the
// summarizer in a car's GPS module. A stream of completed trips is
// summarized, and a reminder is emitted only for trips whose summary
// surfaces a driving infraction — a U-turn or an overspeed reading.
package main

import (
	"fmt"
	"log"
	"math"

	"stmaker"
	"stmaker/internal/feature"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/summarize"
	"stmaker/internal/traj"
)

func main() {
	city := simulate.NewCity(simulate.CityOptions{Rows: 8, Cols: 8, Seed: 7})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 8})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})

	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		log.Fatal(err)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 300, Seed: 9, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		log.Fatal(err)
	}

	// The day's trips arrive one by one; check each for infractions.
	day := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 60, Seed: 10, FixedHour: -1})
	var reminders int
	for _, trip := range day {
		sum, err := s.SummarizeK(trip.Raw, 3)
		if err != nil {
			continue
		}
		infractions := detectInfractions(sum)
		if len(infractions) == 0 {
			continue
		}
		reminders++
		fmt.Printf("⚠ %s at %s:\n", trip.Raw.ID, trip.Start.Format("15:04"))
		for _, inf := range infractions {
			fmt.Printf("   - %s\n", inf)
		}
		fmt.Printf("   summary: %s\n\n", sum.Text)
	}
	fmt.Printf("%d of %d trips triggered an infraction reminder\n", reminders, len(day))
}

// detectInfractions inspects the selected features for behaviours worth a
// reminder: any U-turn, or a speed reading well above the usual speed.
func detectInfractions(sum *summarize.Summary) []string {
	var out []string
	for _, p := range sum.Parts {
		for _, f := range p.Features {
			switch f.Key {
			case feature.KeyUTurns:
				if n := len(f.UTurns); n > 0 {
					out = append(out, fmt.Sprintf("%d U-turn(s) between %s and %s", n, p.SourceName, p.DestName))
				}
			case feature.KeySpeed:
				if f.HasRegular && f.Value > f.Regular+15 {
					out = append(out, fmt.Sprintf("overspeed: %.0f km/h (%.0f above usual) between %s and %s",
						f.Value, math.Abs(f.Value-f.Regular), p.SourceName, p.DestName))
				}
			}
		}
	}
	return out
}
