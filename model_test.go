package stmaker

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"stmaker/internal/feature"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

func rawCorpus(trips []*simulate.Trip) []*traj.Raw {
	corpus := make([]*traj.Raw, 0, len(trips))
	for _, tr := range trips {
		corpus = append(corpus, tr.Raw)
	}
	return corpus
}

// summaryFingerprint renders a summary into one comparable string,
// including the numeric feature values, so two summaries compare
// bit-for-bit rather than just textually.
func summaryFingerprint(t *testing.T, s *Summarizer, trip *traj.Raw) string {
	t.Helper()
	sum, err := s.Summarize(trip)
	if err != nil {
		t.Fatal(err)
	}
	return Describe(sum)
}

// TestModelRoundTripByteIdentical is the warm-start correctness
// acceptance test: Save → Load into a fresh summarizer must serve
// byte-identical summaries, and re-saving the loaded model must
// reproduce the file byte for byte.
func TestModelRoundTripByteIdentical(t *testing.T) {
	city, s := newWorld(t, nil)
	trip := eventfulTrip(t, city, 31)
	want := summaryFingerprint(t, s, trip.Raw)

	var file bytes.Buffer
	n, err := s.SaveModel(&file)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(file.Len()) || n == 0 {
		t.Fatalf("SaveModel reported %d bytes, wrote %d", n, file.Len())
	}

	cold, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Trained() {
		t.Fatal("fresh summarizer claims to be trained")
	}
	m, err := ReadModelFrom(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version() != s.Model().Version() {
		t.Errorf("loaded version %d, saved %d", m.Version(), s.Model().Version())
	}
	if m.NumTransitions() != s.Model().NumTransitions() {
		t.Errorf("loaded transitions %d, saved %d", m.NumTransitions(), s.Model().NumTransitions())
	}
	if err := cold.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	if !cold.Trained() {
		t.Fatal("warm-started summarizer not trained")
	}
	if got := summaryFingerprint(t, cold, trip.Raw); got != want {
		t.Errorf("warm-start summary diverged:\n got %q\nwant %q", got, want)
	}

	var file2 bytes.Buffer
	if _, err := cold.SaveModel(&file2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(file.Bytes(), file2.Bytes()) {
		t.Error("save -> load -> save is not byte-identical")
	}
}

// TestRetrainFullReplace pins re-Train semantics: the new corpus fully
// replaces the old knowledge, never merges with it.
func TestRetrainFullReplace(t *testing.T) {
	city, s := newWorld(t, nil)
	small := rawCorpus(simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 25, Seed: 77, FixedHour: -1, Calm: true,
	}))
	stats, err := s.Train(small)
	if err != nil {
		t.Fatal(err)
	}

	// A summarizer that has only ever seen the small corpus is the
	// ground truth for "replaced, not merged".
	fresh, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	freshStats, err := fresh.Train(small)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transitions != freshStats.Transitions {
		t.Errorf("retrained transitions = %d, fresh train = %d (merge leak?)",
			stats.Transitions, freshStats.Transitions)
	}
	if got, want := len(s.Popular().Sequences()), len(fresh.Popular().Sequences()); got != want {
		t.Errorf("retrained popular sequences = %d, fresh train = %d", got, want)
	}

	// Byte-level proof: aside from the version counter, the retrained
	// model must serialize identically to the fresh one.
	reEncode := func(src *Summarizer) []byte {
		var buf bytes.Buffer
		if _, err := src.SaveModel(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := ReadModelFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		m.version = 0
		var out bytes.Buffer
		if _, err := m.WriteTo(&out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(reEncode(s), reEncode(fresh)) {
		t.Error("retrained model differs from fresh-trained model on the same corpus")
	}
}

// TestConcurrentTrainAndSummarize is the hot-swap race regression test:
// repeated re-Trains run while Summarize traffic is in flight on a warm
// summarizer (and its clones), and every request must succeed against a
// complete model. Run under -race, this pins the atomic-publish design.
func TestConcurrentTrainAndSummarize(t *testing.T) {
	city, s := newWorld(t, nil)
	trip := eventfulTrip(t, city, 63)
	retrainCorpus := rawCorpus(simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 20, Seed: 81, FixedHour: -1, Calm: true,
	}))

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stopSummarize := make(chan struct{})
	// Readers: the summarizer itself plus a clone, which shares the same
	// model cell and must observe the retrains too.
	for _, reader := range []*Summarizer{s, s.WithThreshold(0.3)} {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(r *Summarizer) {
				defer wg.Done()
				for {
					select {
					case <-stopSummarize:
						return
					default:
					}
					if _, err := r.Summarize(trip.Raw); err != nil {
						errs <- err
						return
					}
				}
			}(reader)
		}
	}
	var trainWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		trainWG.Add(1)
		go func() {
			defer trainWG.Done()
			for i := 0; i < 3; i++ {
				if _, err := s.Train(retrainCorpus); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	trainWG.Wait()
	close(stopSummarize)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent train/summarize failed: %v", err)
	}
	if got := s.Model().Version(); got < 7 {
		t.Errorf("model version = %d after 6 retrains on version 1", got)
	}
}

// TestLoadModelRejectsMismatch pins the fingerprint check, both ways: a
// stale model missing a feature the summarizer now has, and a model
// carrying a custom feature the summarizer lacks.
func TestLoadModelRejectsMismatch(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, BlockMeters: 500, Seed: 51})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 52})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})
	corpus := rawCorpus(simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 40, Seed: 53, FixedHour: -1, Calm: true,
	}))
	baseCfg := Config{Graph: city.Graph, Landmarks: city.Landmarks}

	trained := func(mut func(*Summarizer) error) *Model {
		t.Helper()
		s, err := New(baseCfg)
		if err != nil {
			t.Fatal(err)
		}
		if mut != nil {
			if err := mut(s); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Train(corpus); err != nil {
			t.Fatal(err)
		}
		// Round-trip through the codec so the rejection covers models
		// loaded from disk, not just in-memory ones.
		var buf bytes.Buffer
		if _, err := s.SaveModel(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := ReadModelFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	defaultModel := trained(nil)
	customModel := trained(func(s *Summarizer) error {
		return s.RegisterFeature(feature.NewSpeedChange(), nil)
	})

	// Stale model: the summarizer has since grown a custom feature.
	s, err := New(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterFeature(feature.NewSpeedChange(), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(defaultModel); !errors.Is(err, ErrModelMismatch) {
		t.Errorf("stale model load err = %v, want ErrModelMismatch", err)
	}
	if s.Trained() {
		t.Error("rejected load still published a model")
	}
	if err := s.LoadModel(customModel); err != nil {
		t.Errorf("matching custom model rejected: %v", err)
	}

	// Extra custom feature in the model, absent from the summarizer.
	s2, err := New(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadModel(customModel); !errors.Is(err, ErrModelMismatch) {
		t.Errorf("extra-feature model load err = %v, want ErrModelMismatch", err)
	}

	// Calibration parameter drift.
	s3, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks, CalibrationRadiusMeters: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.LoadModel(defaultModel); !errors.Is(err, ErrModelMismatch) {
		t.Errorf("calibration-drift model load err = %v, want ErrModelMismatch", err)
	}

	// Nil model and registration-after-load guards.
	if err := s.LoadModel(nil); err == nil {
		t.Error("nil model accepted")
	}
	if err := s.RegisterFeature(dummyFeature{}, nil); err == nil {
		t.Error("RegisterFeature after LoadModel accepted")
	}
}

// TestModelVersionAndSwapMetrics pins the publish bookkeeping: versions
// increase monotonically across Train, FlattenHistoryForAblation and
// LoadModel, and the model_version / model_swaps_total metrics track
// them.
func TestModelVersionAndSwapMetrics(t *testing.T) {
	city, s := newWorld(t, nil)
	if got := s.Model().Version(); got != 1 {
		t.Fatalf("version after first train = %d, want 1", got)
	}
	small := rawCorpus(simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 20, Seed: 91, FixedHour: -1, Calm: true,
	}))
	if _, err := s.Train(small); err != nil {
		t.Fatal(err)
	}
	if got := s.Model().Version(); got != 2 {
		t.Fatalf("version after retrain = %d, want 2", got)
	}
	var buf bytes.Buffer
	if _, err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	s.FlattenHistoryForAblation()
	if got := s.Model().Version(); got != 3 {
		t.Fatalf("version after flatten = %d, want 3", got)
	}
	// Re-loading the version-2 snapshot cannot move the version backwards.
	m, err := ReadModelFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	if got := s.Model().Version(); got != 4 {
		t.Fatalf("version after re-load = %d, want 4", got)
	}
	if got := s.Metrics().Counter(MetricModelSwaps).Value(); got != 4 {
		t.Errorf("model_swaps_total = %d, want 4", got)
	}
	if got := s.Metrics().Counter(MetricModelVersion).Value(); got != 4 { //nolint:stmaker/metricnames -- reading the model_version gauge
		t.Errorf("model_version = %d, want 4", got)
	}

	// A fresh summarizer warm-started from a saved model keeps the saved
	// version: monitoring can tell which knowledge generation is serving.
	cold, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.LoadModel(m); err != nil {
		t.Fatal(err)
	}
	if got := cold.Model().Version(); got != 2 {
		t.Errorf("warm-start version = %d, want saved 2", got)
	}
}

func TestSaveModelRequiresModel(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 4, Cols: 4, Seed: 5})
	s, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.SaveModel(&buf); !errors.Is(err, ErrNotTrained) {
		t.Errorf("SaveModel untrained err = %v, want ErrNotTrained", err)
	}
}

// TestLoadModelFileClassification pins the error taxonomy of the
// on-disk load path: the server maps "no such model" to 404 and
// "model present but unusable" to a 500-class response, so the two
// must stay distinguishable sentinel errors.
func TestLoadModelFileClassification(t *testing.T) {
	city, s := newWorld(t, nil)
	dir := t.TempDir()

	okPath := filepath.Join(dir, "model.stm")
	var buf bytes.Buffer
	if _, err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(okPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	corruptPath := filepath.Join(dir, "corrupt.stm")
	if err := os.WriteFile(corruptPath, []byte("not a model file"), 0o644); err != nil {
		t.Fatal(err)
	}
	truncatedPath := filepath.Join(dir, "truncated.stm")
	if err := os.WriteFile(truncatedPath, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name    string
		path    string
		wantErr error // nil means the load must succeed
	}{
		{"valid model", okPath, nil},
		{"missing file", filepath.Join(dir, "nope.stm"), ErrModelNotFound},
		{"corrupt file", corruptPath, ErrInvalidModel},
		{"truncated file", truncatedPath, ErrInvalidModel},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, err := LoadModelFile(tc.path)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("LoadModelFile(%q) = %v, want success", tc.path, err)
				}
				if m.NumTransitions() != s.Model().NumTransitions() {
					t.Errorf("loaded transitions %d, want %d", m.NumTransitions(), s.Model().NumTransitions())
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("LoadModelFile(%q) err = %v, want %v", tc.path, err, tc.wantErr)
			}
			// The classes must not bleed into each other.
			if errors.Is(err, ErrModelNotFound) && errors.Is(err, ErrInvalidModel) {
				t.Fatalf("error %v matches both sentinels", err)
			}
		})
	}

	// A structurally valid file loaded into an incompatible summarizer is
	// the third failure class: LoadModelFile succeeds, LoadModel refuses.
	m, err := LoadModelFile(okPath)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks, CalibrationRadiusMeters: 123})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadModel(m); !errors.Is(err, ErrModelMismatch) {
		t.Errorf("incompatible LoadModel err = %v, want ErrModelMismatch", err)
	}
}
