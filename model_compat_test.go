package stmaker

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

// v1FixturePath is a pinned model file written by the FormatVersion-1
// codec, before the routing overlay existed (see testdata/gen_model_v1.go
// for provenance). It was trained on exactly the world and corpus
// newWorld builds.
const v1FixturePath = "testdata/model_v1.stm"

// TestV1ModelFixtureServesIdentically is the backward-compatibility
// contract end to end: a pre-overlay model file still loads (overlay
// absent, plain-Dijkstra fallback — never an error) and serves summaries
// byte-identical to a freshly trained model that carries the overlay.
// That last part is the router-equivalence guarantee surfacing at the
// API: which engine answers must be unobservable in the output.
func TestV1ModelFixtureServesIdentically(t *testing.T) {
	city, fresh := newWorld(t, func(c *Config) { c.UseHMMMatching = true })
	if fresh.Model().RoutingOverlay() == nil {
		t.Fatal("freshly trained model carries no routing overlay")
	}

	warm, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks, UseHMMMatching: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadModelFile(v1FixturePath)
	if err != nil {
		t.Fatalf("pre-overlay fixture rejected: %v", err)
	}
	if m.RoutingOverlay() != nil {
		t.Fatal("version-1 file produced an overlay from nowhere")
	}
	if err := warm.LoadModel(m); err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{24, 31, 47, 63} {
		trip := eventfulTrip(t, city, seed)
		want, err := fresh.SummarizeK(trip.Raw, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := warm.SummarizeK(trip.Raw, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != want.Text {
			t.Fatalf("seed %d: v1-model summary diverged\n got: %s\nwant: %s", seed, got.Text, want.Text)
		}
	}

	// A retrain on the warm summarizer builds the overlay it was missing;
	// stats report the build.
	stats := TrainStats{}
	if o := warm.routingOverlay(&stats); o == nil {
		t.Fatal("retrain path failed to build an overlay for a v1-loaded summarizer")
	} else if stats.OverlayBuildSeconds <= 0 {
		t.Fatal("overlay build time not reported")
	}
}

// TestReloadUnderLoadOverlaySwap hammers the model hot-swap while
// summarize traffic is in flight, alternating between a pre-overlay
// model (plain-Dijkstra serving) and an overlay-carrying one (ALT
// serving). Under -race this pins that the router swap inside publish is
// as race-free as the model swap itself, and that every request — no
// matter which side of a swap it lands on — produces the same bytes.
func TestReloadUnderLoadOverlaySwap(t *testing.T) {
	city, s := newWorld(t, func(c *Config) { c.UseHMMMatching = true })
	withOverlay := s.Model()
	if withOverlay.RoutingOverlay() == nil {
		t.Fatal("trained model carries no overlay")
	}
	noOverlay, err := LoadModelFile(v1FixturePath)
	if err != nil {
		t.Fatal(err)
	}
	trip := eventfulTrip(t, city, 63)
	want, err := s.SummarizeK(trip.Raw, 3)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	stop := make(chan struct{})
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				got, err := s.SummarizeK(trip.Raw, 3)
				if err != nil {
					errs <- err
					return
				}
				if got.Text != want.Text {
					errs <- fmt.Errorf("summary diverged mid-swap:\n got: %s\nwant: %s", got.Text, want.Text)
					return
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		m := withOverlay
		if i%2 == 0 {
			m = noOverlay
		}
		if err := s.LoadModel(m); err != nil {
			close(stop)
			t.Fatal(err)
		}
	}
	close(stop)
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestV1FixtureRejectsOnlyGenuineCorruption pins the error taxonomy on
// the old-format file: the pristine fixture loads, and ErrInvalidModel
// appears only when the bytes are actually damaged.
func TestV1FixtureRejectsOnlyGenuineCorruption(t *testing.T) {
	data, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(v1FixturePath); err != nil {
		t.Fatalf("pristine fixture: %v", err)
	}
	dir := t.TempDir()
	write := func(b []byte) string {
		p := dir + "/m.stm"
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x20
	if _, err := LoadModelFile(write(flipped)); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("flipped byte: err = %v, want ErrInvalidModel", err)
	}
	if _, err := LoadModelFile(write(data[:len(data)-7])); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("truncation: err = %v, want ErrInvalidModel", err)
	}
	if _, err := LoadModelFile(dir + "/absent.stm"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("missing file: err = %v, want ErrModelNotFound", err)
	}
}
