# Tier-1 gate: every change must keep `make check` green.
.PHONY: check build vet test bench fuzz-smoke

check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Short randomized smoke of the fuzz targets (~30s total): enough to
# catch shallow regressions on every CI run without a dedicated fuzz
# farm. Run with a larger -fuzztime locally when touching the decoders.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzLoadTrips -fuzztime=15s ./internal/worldio
	go test -run='^$$' -fuzz=FuzzSanitize -fuzztime=15s ./internal/sanitize
