# Tier-1 gate: every change must keep `make check` green.
.PHONY: check build vet test bench

check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...
