# Tier-1 gate: every change must keep `make check` green.
.PHONY: check build vet lint test bench bench-smoke bench-routing fuzz-smoke ingest-soak load-smoke

check: build vet lint test

build:
	go build ./...

vet:
	go vet ./...
	go vet -unsafeptr=true ./...

# Project-specific static analysis: metric naming/doc sync, lat/lng
# argument order, exact float comparison, context discipline, sync.Pool
# pairing, and the dataflow checks — Model immutability, pooled-scratch
# escape, atomic-cell publish discipline, and the error/status taxonomy
# against docs/API.md. See docs/STATIC_ANALYSIS.md.
lint:
	go run ./cmd/stmaker-lint

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that panic, fail
# their setup, or silently rot, without the minutes a real run costs.
# This includes the routing-engine pairs (BenchmarkShortestPathALT,
# BenchmarkHMMMatch100PointsALT, BenchmarkTrainOverlay) so the ALT
# overlay path is exercised on every CI build.
# Run on every CI build; use `make bench` for real measurements.
bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# The Dijkstra-vs-ALT routing comparison that feeds BENCH_routing.json;
# see docs/PERFORMANCE.md "Precomputed routing".
bench-routing:
	go test -run='^$$' -bench='ShortestPath|HMMMatch|TrainOverlay' -benchmem -count=5 ./internal/roadnet/

# Short randomized smoke of the fuzz targets (~30s total): enough to
# catch shallow regressions on every CI run without a dedicated fuzz
# farm. Run with a larger -fuzztime locally when touching the decoders.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzLoadTrips -fuzztime=15s ./internal/worldio
	go test -run='^$$' -fuzz=FuzzSanitize -fuzztime=15s ./internal/sanitize
	go test -run='^$$' -fuzz=FuzzReadModel -fuzztime=15s ./internal/modelio
	go test -run='^$$' -fuzz=FuzzParseManifest -fuzztime=15s ./internal/modelio
	go test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=15s ./internal/ingest
	go test -run='^$$' -fuzz=FuzzIngestNDJSON -fuzztime=15s ./internal/server

# Short sustained-load smoke: drives a synthetic fleet through the real
# HTTP serving path (single + batch endpoints mixed) and fails on any
# 5xx, transport error, or empty run. Real measurements use a longer
# -duration; see docs/PERFORMANCE.md "Sustained throughput".
load-smoke:
	go run ./cmd/stmaker-load -duration 2s -concurrency 2 -batch 4 -assert

# End-to-end ingestion soak: a simulated fleet streamed through the real
# HTTP ingest path with one crash/recovery cycle in the middle, asserting
# zero acknowledged-fix loss and a working model compaction at the end.
# See docs/ROBUSTNESS.md "Ingestion durability".
ingest-soak:
	go run ./cmd/ingest-soak
