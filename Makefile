# Tier-1 gate: every change must keep `make check` green.
.PHONY: check build vet test bench bench-smoke fuzz-smoke

check: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that panic, fail
# their setup, or silently rot, without the minutes a real run costs.
# Run on every CI build; use `make bench` for real measurements.
bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# Short randomized smoke of the fuzz targets (~30s total): enough to
# catch shallow regressions on every CI run without a dedicated fuzz
# farm. Run with a larger -fuzztime locally when touching the decoders.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzLoadTrips -fuzztime=15s ./internal/worldio
	go test -run='^$$' -fuzz=FuzzSanitize -fuzztime=15s ./internal/sanitize
