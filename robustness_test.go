package stmaker

// Robustness integration tests: degraded GPS input through the
// sanitize→calibrate pipeline (Config.Sanitize), context cancellation
// between pipeline stages, and the input-vs-internal error split that
// the HTTP layer's status mapping relies on.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/sanitize"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

// noisyWorld builds a small city plus two summarizers over it — one
// strict, one sanitizing — so tests can compare behaviour on the same
// degraded input.
func noisyWorld(t testing.TB) (*simulate.City, *Summarizer, *Summarizer) {
	t.Helper()
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, BlockMeters: 500, Seed: 61})
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 62})
	city.Landmarks.InferSignificance(200, visits, hits.Options{})
	strict, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	repairing, err := New(Config{Graph: city.Graph, Landmarks: city.Landmarks, Sanitize: &sanitize.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	return city, strict, repairing
}

func calmCorpus(city *simulate.City, n int, seed int64) []*traj.Raw {
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: n, Seed: seed, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(trips))
	for _, tr := range trips {
		corpus = append(corpus, tr.Raw)
	}
	return corpus
}

// Noise kinds injected by corruptTrip, cycling through the degraded
// input real trackers produce.
const (
	noiseShuffled = iota // two timestamps swapped: fails Validate
	noiseDuplicated      // a fix repeated twice at the same instant
	noiseTeleport        // one fix jumps 100 km off-route
	noiseKinds
)

// corruptTrip returns a corrupted copy of r; the input is untouched.
func corruptTrip(r *traj.Raw, kind int) *traj.Raw {
	c := &traj.Raw{ID: r.ID, Object: r.Object, Samples: append([]traj.Sample(nil), r.Samples...)}
	i := len(c.Samples) / 2
	switch kind % noiseKinds {
	case noiseShuffled:
		c.Samples[i].T, c.Samples[i+1].T = c.Samples[i+1].T, c.Samples[i].T
	case noiseDuplicated:
		dup := c.Samples[i]
		c.Samples = append(c.Samples[:i], append([]traj.Sample{dup, dup}, c.Samples[i:]...)...)
	case noiseTeleport:
		c.Samples[i].Pt = geo.Destination(c.Samples[i].Pt, 45, 100_000)
	}
	return c
}

func TestTrainSanitizesNoisyCorpus(t *testing.T) {
	city, strict, repairing := noisyWorld(t)
	corpus := calmCorpus(city, 60, 63)

	// Corrupt every second trip, cycling through the noise kinds.
	noisy := make([]*traj.Raw, len(corpus))
	corrupted := 0
	for i, r := range corpus {
		if i%2 == 0 {
			noisy[i] = corruptTrip(r, i/2)
			corrupted++
		} else {
			noisy[i] = r
		}
	}

	strictStats, err := strict.Train(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if strictStats.Repaired != 0 || !strictStats.Repairs.Clean() {
		t.Errorf("strict summarizer reported repairs: %+v", strictStats)
	}
	// Shuffled trips fail Validate inside Calibrate, so the strict
	// summarizer must have dropped at least those.
	if strictStats.Skipped == 0 {
		t.Error("strict Train skipped nothing on a noisy corpus")
	}

	repairStats, err := repairing.Train(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if repairStats.Calibrated <= strictStats.Calibrated {
		t.Errorf("sanitization did not recover trips: strict %d vs repairing %d calibrated",
			strictStats.Calibrated, repairStats.Calibrated)
	}
	if repairStats.Repaired < corrupted {
		t.Errorf("Repaired = %d, want >= %d", repairStats.Repaired, corrupted)
	}
	rep := repairStats.Repairs
	if rep.Reordered == 0 || rep.DroppedDuplicates == 0 || rep.DroppedOutliers == 0 {
		t.Errorf("repair kinds missing from aggregate: %+v", rep)
	}
	if got := repairing.Metrics().Counter(MetricSanitizeRepairs).Value(); got < int64(corrupted) {
		t.Errorf("%s = %d, want >= %d", MetricSanitizeRepairs, got, corrupted)
	}
}

func TestSummarizeRepairsNoisyTrajectory(t *testing.T) {
	city, strict, repairing := noisyWorld(t)
	corpus := calmCorpus(city, 60, 63)
	if _, err := strict.Train(corpus); err != nil {
		t.Fatal(err)
	}
	if _, err := repairing.Train(corpus); err != nil {
		t.Fatal(err)
	}
	trip := eventfulTrip(t, city, 64).Raw

	for kind := 0; kind < noiseKinds; kind++ {
		noisy := corruptTrip(trip, kind)
		if _, err := repairing.Summarize(noisy); err != nil {
			t.Errorf("kind %d: sanitizing summarizer failed: %v", kind, err)
		}
	}

	// The shuffled trajectory hard-fails without sanitization — and the
	// failure is classified as the caller's fault.
	shuffled := corruptTrip(trip, noiseShuffled)
	_, err := strict.Summarize(shuffled)
	if err == nil {
		t.Fatal("strict summarizer accepted a shuffled trajectory")
	}
	if !IsInputError(err) {
		t.Errorf("shuffled-trajectory error not classified as input error: %v", err)
	}

	// Timestamp sorting restores the exact original trajectory, so the
	// repaired summary matches the clean one verbatim.
	clean, err := repairing.Summarize(trip)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := repairing.Summarize(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Text != repaired.Text {
		t.Errorf("repaired summary diverged:\nclean:    %s\nrepaired: %s", clean.Text, repaired.Text)
	}

	// A sanitizer rejection (nothing usable left) is an input error too.
	dead := &traj.Raw{ID: "dead", Samples: []traj.Sample{
		{Pt: geo.Point{Lat: 200, Lng: 200}, T: time.Now()},
		{Pt: geo.Point{Lat: 200, Lng: 200}, T: time.Now()},
	}}
	if _, err := repairing.Summarize(dead); !IsInputError(err) || !errors.Is(err, sanitize.ErrUnusable) {
		t.Errorf("sanitizer rejection not classified as input error: %v", err)
	}
	if got := repairing.Metrics().Counter(MetricSanitizeRejects).Value(); got == 0 {
		t.Errorf("%s not incremented", MetricSanitizeRejects)
	}
}

func TestSummarizeContextCancellation(t *testing.T) {
	city, _, repairing := noisyWorld(t)
	if _, err := repairing.Train(calmCorpus(city, 60, 63)); err != nil {
		t.Fatal(err)
	}
	trip := eventfulTrip(t, city, 64).Raw

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repairing.SummarizeContext(ctx, trip); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	if _, err := repairing.SummarizeKContext(expired, trip, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired context: err = %v, want context.DeadlineExceeded", err)
	}

	// Cancellation between stages: a context that expires mid-pipeline
	// must abort rather than render. We cannot schedule the expiry on a
	// stage boundary deterministically, but an aggressive deadline on a
	// long trajectory exercises the checkpoints; either outcome (summary
	// or DeadlineExceeded) is legal, anything else is a bug.
	tight, cancel3 := context.WithTimeout(context.Background(), 50*time.Microsecond)
	defer cancel3()
	if _, err := repairing.SummarizeContext(tight, trip); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("tight deadline: unexpected error class: %v", err)
	}
}

func TestErrorClassification(t *testing.T) {
	city, strict, _ := noisyWorld(t)
	trip := eventfulTrip(t, city, 64).Raw

	// Untrained summarizer: server-side state, not the caller's fault.
	_, err := strict.Summarize(trip)
	if !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v, want ErrNotTrained", err)
	}
	if IsInputError(err) {
		t.Error("ErrNotTrained classified as input error")
	}

	if _, err := strict.Train(calmCorpus(city, 40, 65)); err != nil {
		t.Fatal(err)
	}

	// Structurally broken input: the caller's fault.
	short := &traj.Raw{ID: "short", Samples: trip.Samples[:1]}
	_, err = strict.Summarize(short)
	if err == nil || !IsInputError(err) {
		t.Errorf("short-trajectory error not classified as input error: %v", err)
	}

	// An uncalibrated symbolic trajectory is input-shaped as well.
	_, err = strict.SummarizeSymbolic(&traj.Symbolic{ID: "empty"}, 0)
	if !errors.Is(err, traj.ErrNotCalibrated) || !IsInputError(err) {
		t.Errorf("empty symbolic: err = %v, want ErrNotCalibrated and input-classified", err)
	}

	// Wrapping survives another layer, as servers will add context.
	wrapped := fmt.Errorf("handler: %w", err)
	if !IsInputError(wrapped) {
		t.Error("IsInputError lost through wrapping")
	}
}
