package summarize

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"stmaker/internal/feature"
	"stmaker/internal/roadnet"
)

// ClauseRenderer realizes one selected feature as a clause of the partition
// sentence, e.g. "with the speed of 56 km/h which was 14 km/h slower than
// usual". An empty return suppresses the clause.
type ClauseRenderer func(sf SelectedFeature) string

// TemplateSet maps feature keys to clause renderers and assembles the
// sentence templates of Table VI. Custom features register their phrase
// templates here (§VI-B step 3).
type TemplateSet struct {
	clauses map[string]ClauseRenderer
}

// DefaultTemplates returns the paper's phrase templates (Table V) for the
// six default features plus the SpeC extension.
func DefaultTemplates() *TemplateSet {
	ts := &TemplateSet{clauses: make(map[string]ClauseRenderer)}
	ts.clauses[feature.KeyGradeOfRoad] = renderGrade
	ts.clauses[feature.KeyRoadWidth] = renderWidth
	ts.clauses[feature.KeyDirection] = renderDirection
	ts.clauses[feature.KeySpeed] = renderSpeed
	ts.clauses[feature.KeyStayPoints] = renderStays
	ts.clauses[feature.KeyUTurns] = renderUTurns
	ts.clauses[feature.KeySpeedChange] = renderSpeedChanges
	ts.clauses[feature.KeyTurns] = renderTurns
	return ts
}

// RegisterClause installs the phrase template of a custom feature. It
// fails on duplicates, mirroring feature.Registry.Register.
func (ts *TemplateSet) RegisterClause(key string, r ClauseRenderer) error {
	if key == "" || r == nil {
		return fmt.Errorf("summarize: clause must have a key and a renderer")
	}
	if _, dup := ts.clauses[key]; dup {
		return fmt.Errorf("summarize: duplicate clause for feature %q", key)
	}
	ts.clauses[key] = r
	return nil
}

// SetClause installs or replaces the phrase template of a feature.
// Unlike RegisterClause it overwrites silently, which is what a custom
// feature that shadows a built-in template wants.
func (ts *TemplateSet) SetClause(key string, r ClauseRenderer) error {
	if key == "" || r == nil {
		return fmt.Errorf("summarize: clause must have a key and a renderer")
	}
	ts.clauses[key] = r
	return nil
}

// HasClause reports whether a renderer is installed for the feature key.
func (ts *TemplateSet) HasClause(key string) bool {
	_, ok := ts.clauses[key]
	return ok
}

// renderScratch is the reusable realization state: the byte buffer the
// whole summary text is assembled in, the part-boundary marks that slice
// it back into per-partition sentences, and the clause list RenderPart
// accumulates per sentence. Pooled so steady-state serving pays one
// allocation per summary — the final string conversion — instead of a
// builder, a clause slice and a parts slice per request.
type renderScratch struct {
	buf     []byte
	marks   []int
	clauses []string
}

var renderPool = sync.Pool{New: func() any { return new(renderScratch) }}

// RenderPart fills ps.Text from the sentence templates of Table VI:
//
//	The car moved/started from source to destination through road type,
//	with feature template / Then it moved from source to destination
//	smoothly.
func (ts *TemplateSet) RenderPart(ps *PartSummary, first bool) {
	rs := renderPool.Get().(*renderScratch)
	rs.buf = ts.appendPart(rs.buf[:0], rs, ps, first)
	ps.Text = string(rs.buf)
	renderPool.Put(rs)
}

// RenderSummary renders every partition sentence and joins them into the
// final summary text. The sentences are realized into one shared buffer
// and each PartSummary.Text is a slice of the final string, so a
// K-partition summary costs a single string allocation.
func (ts *TemplateSet) RenderSummary(s *Summary) {
	rs := renderPool.Get().(*renderScratch)
	rs.buf, rs.marks = rs.buf[:0], rs.marks[:0]
	for i := range s.Parts {
		if i > 0 {
			rs.buf = append(rs.buf, ' ')
		}
		start := len(rs.buf)
		rs.buf = ts.appendPart(rs.buf, rs, &s.Parts[i], i == 0)
		rs.marks = append(rs.marks, start, len(rs.buf))
	}
	text := string(rs.buf)
	s.Text = text
	for i := range s.Parts {
		s.Parts[i].Text = text[rs.marks[2*i]:rs.marks[2*i+1]]
	}
	renderPool.Put(rs)
}

// appendPart realizes one partition sentence into buf and returns the
// extended buffer. rs supplies the reusable clause list; clause strings
// themselves come from the renderers.
func (ts *TemplateSet) appendPart(buf []byte, rs *renderScratch, ps *PartSummary, first bool) []byte {
	if first {
		buf = append(buf, "The car started from "...)
	} else {
		buf = append(buf, "Then it moved from "...)
	}
	buf = append(buf, displayName(ps.SourceName)...)
	buf = append(buf, " to "...)
	buf = append(buf, displayName(ps.DestName)...)

	// The "through road type" slot: the grade clause supplies it when the
	// grade feature was selected (it carries the historical comparison);
	// otherwise the plain dominant road type fills it.
	clauses := rs.clauses[:0]
	gradeClauseUsed := false
	for _, sf := range ps.Features {
		render, ok := ts.clauses[sf.Key]
		if !ok {
			continue
		}
		clause := render(sf)
		if clause == "" {
			continue
		}
		if sf.Key == feature.KeyGradeOfRoad {
			buf = append(buf, ' ')
			buf = append(buf, clause...)
			gradeClauseUsed = true
			continue
		}
		clauses = append(clauses, clause)
	}
	if !gradeClauseUsed && ps.RoadType != "" {
		buf = append(buf, " through "...)
		buf = append(buf, withRoadName(ps.RoadType, ps.RoadName)...)
	}

	if len(clauses) == 0 && !gradeClauseUsed {
		rs.clauses = clauses
		return append(buf, " smoothly."...)
	}
	for i, c := range clauses {
		if i == 0 {
			buf = append(buf, ", "...)
		} else if i == len(clauses)-1 {
			buf = append(buf, " and "...)
		} else {
			buf = append(buf, ", "...)
		}
		buf = append(buf, c...)
	}
	rs.clauses = clauses[:0]
	return append(buf, '.')
}

// displayNames interns the article-prefixed form of every landmark name
// the corpus mentions. The key set is bounded by the loaded worlds'
// landmark vocabularies, so the cache converges after warm-up and the
// per-summary "the " + name (and ToLower) allocations disappear.
var displayNames sync.Map // string -> string

// displayName article-prefixes a landmark name the way the paper's
// examples do ("the Daoxiang Community").
func displayName(name string) string {
	if name == "" {
		return "an unnamed place"
	}
	if d, ok := displayNames.Load(name); ok {
		return d.(string)
	}
	d := name
	lower := strings.ToLower(name)
	if !strings.HasPrefix(lower, "the ") && !strings.HasPrefix(lower, "a ") && !strings.HasPrefix(lower, "an ") {
		d = "the " + name
	}
	displayNames.Store(name, d)
	return d
}

func withRoadName(roadType, roadName string) string {
	if roadName == "" {
		return roadType
	}
	return roadType + " (" + roadName + ")"
}

// renderGrade: "through given road type (road name) while the most drivers
// choose regular road type" (Table V).
func renderGrade(sf SelectedFeature) string {
	g := roadnet.Grade(math.Round(sf.Value))
	if !g.Valid() {
		return ""
	}
	clause := "through " + withRoadName(g.String(), sf.RoadName)
	if sf.HasRegular {
		if rg := roadnet.Grade(math.Round(sf.Regular)); rg.Valid() && rg != g {
			clause += " while most drivers choose " + rg.String()
		}
	}
	return clause
}

// renderWidth: "through given road width metres wide road while most
// drivers prefer wider/narrower roads" (Table V).
func renderWidth(sf SelectedFeature) string {
	if sf.Value <= 0 {
		return ""
	}
	clause := fmt.Sprintf("through %.0f-metre-wide roads", sf.Value)
	if sf.HasRegular && sf.Regular > 0 {
		if sf.Value < sf.Regular {
			clause += " while most drivers prefer wider roads"
		} else if sf.Value > sf.Regular {
			clause += " while most drivers prefer narrower roads"
		}
	}
	return clause
}

// renderDirection: "through given traffic direction while most drivers
// prefer regular traffic direction" (Table V).
func renderDirection(sf SelectedFeature) string {
	d := roadnet.Direction(math.Round(sf.Value))
	if !d.Valid() {
		return ""
	}
	clause := "along " + d.String()
	if sf.HasRegular {
		if rd := roadnet.Direction(math.Round(sf.Regular)); rd.Valid() && rd != d {
			clause += fmt.Sprintf(" while most drivers prefer %ss", strings.TrimPrefix(rd.String(), "a "))
		}
	}
	return clause
}

// renderSpeed: "with the speed of given speed km/h which was
// |given − regular| km/h faster/slower than usual" (Table V).
func renderSpeed(sf SelectedFeature) string {
	clause := fmt.Sprintf("with the speed of %.0f km/h", sf.Value)
	if sf.HasRegular {
		diff := sf.Value - sf.Regular
		switch {
		case diff >= 1:
			clause += fmt.Sprintf(" which was %.0f km/h faster than usual", diff)
		case diff <= -1:
			clause += fmt.Sprintf(" which was %.0f km/h slower than usual", -diff)
		}
	}
	return clause
}

// renderStays: "with given # stay points stay points (in total for about
// time duration)" (Table V).
func renderStays(sf SelectedFeature) string {
	// Prefer the by-product count, which is exact for the partition; the
	// selected value is a per-segment mean.
	n := len(sf.Stays)
	if n == 0 {
		n = int(math.Round(sf.Value))
	}
	if n <= 0 {
		// Selected because the trip had unusually few stays.
		return "with no stay points though drivers usually stop along this road"
	}
	clause := fmt.Sprintf("with %s staying %s", numberWord(n), plural(n, "point", "points"))
	// §VI-A: feature extraction's by-products — where the stays took place
	// and how long they lasted — enrich the phrase.
	places := dedupedPlaces(sf.StayAt)
	if len(places) > 0 && len(places) <= 2 {
		clause += " near " + joinAnd(places)
	}
	if sf.TotalStay > 0 {
		clause += fmt.Sprintf(" (in total for about %s)", humanDuration(sf.TotalStay))
	}
	return clause
}

// renderUTurns: "with conducting # U-turns U-Turns at places of U-turns"
// (Table V).
func renderUTurns(sf SelectedFeature) string {
	n := len(sf.UTurns)
	if n == 0 {
		n = int(math.Round(sf.Value))
	}
	if n <= 0 {
		return ""
	}
	clause := fmt.Sprintf("with conducting %s %s", numberWord(n), plural(n, "U-turn", "U-turns"))
	places := dedupedPlaces(sf.UTurnAt)
	if len(places) > 0 {
		clause += " at " + joinAnd(places)
	}
	return clause
}

// renderTurns realizes the Turn extension feature.
func renderTurns(sf SelectedFeature) string {
	n := int(math.Round(sf.Value))
	if n <= 0 {
		return ""
	}
	return fmt.Sprintf("with %s %s", numberWord(n), plural(n, "turn", "turns"))
}

// renderSpeedChanges realizes the SpeC extension feature.
func renderSpeedChanges(sf SelectedFeature) string {
	n := int(math.Round(sf.Value))
	if n <= 0 {
		return ""
	}
	return fmt.Sprintf("with %s sharp speed %s", numberWord(n), plural(n, "change", "changes"))
}

// dedupedPlaces turns the raw stay/U-turn location by-products into
// display names, dropping blanks and repeats. Lists are a handful of
// entries at most, so a linear scan beats allocating a set per clause;
// first-mention order is preserved.
func dedupedPlaces(at []string) []string {
	var places []string
outer:
	for i, a := range at {
		if a == "" {
			continue
		}
		for _, prev := range at[:i] {
			if prev == a {
				continue outer
			}
		}
		places = append(places, displayName(a))
	}
	return places
}

// numberWords spells small counts the way the paper's examples do ("two
// staying points", "one U-turn").
var numberWords = [...]string{"zero", "one", "two", "three", "four", "five",
	"six", "seven", "eight", "nine", "ten", "eleven", "twelve"}

func numberWord(n int) string {
	if n >= 0 && n < len(numberWords) {
		return numberWords[n]
	}
	return fmt.Sprintf("%d", n)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func joinAnd(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	}
	return strings.Join(items[:len(items)-1], ", ") + " and " + items[len(items)-1]
}

// humanDuration phrases a duration as the paper's examples do
// ("167 seconds"), switching to minutes for long stays.
func humanDuration(d time.Duration) string {
	secs := int(math.Round(d.Seconds()))
	if secs < 600 {
		return fmt.Sprintf("%d %s", secs, plural(secs, "second", "seconds"))
	}
	mins := int(math.Round(d.Minutes()))
	return fmt.Sprintf("%d %s", mins, plural(mins, "minute", "minutes"))
}
