package summarize

import (
	"sort"
	"time"

	"stmaker/internal/feature"
	"stmaker/internal/history"
	"stmaker/internal/irregular"
	"stmaker/internal/landmark"
	"stmaker/internal/partition"
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
)

// Selector chooses the most irregular features of each partition by
// comparing against historical knowledge (§V).
type Selector struct {
	// Registry and Ctx must match those used for feature extraction.
	Registry *feature.Registry
	Ctx      *feature.Context
	// Popular mines the most popular route between landmarks (§V-A).
	Popular *history.Popular
	// FeatureMap provides regular values per landmark transition (§V-B).
	FeatureMap *history.FeatureMap
	// Landmarks resolves landmark names for by-products.
	Landmarks *landmark.Set
	// Weights are the user-specified feature weights w_f.
	Weights feature.Weights
	// Threshold is η; features with Γf(TP) > η are selected
	// (default irregular.DefaultThreshold).
	Threshold float64
	// GlobalMeanFallback substitutes the corpus-wide feature mean when the
	// historical feature map has no data for a transition. When false,
	// such segments are skipped in the moving-rate computation.
	GlobalMeanFallback bool

	// Per-request scratch, lazily sized on first use and reused across
	// the trajectory's partitions. A Selector is therefore not safe for
	// concurrent use; build one per request (they are cheap).
	descs       []feature.Descriptor
	wvec        []float64
	vals        []float64
	seq         []float64
	tpLandmarks []int
}

// prepare caches the per-request invariants: feature metadata and the
// weight vector, both constant across the trajectory's partitions.
func (sel *Selector) prepare() {
	if sel.descs == nil {
		sel.descs = sel.Registry.Descriptors()
		sel.wvec = sel.Weights.VectorFor(sel.Registry)
	}
}

func (sel *Selector) threshold() float64 {
	if sel.Threshold > 0 {
		return sel.Threshold
	}
	return irregular.DefaultThreshold
}

// SelectForPart computes the irregular rate of every registered feature on
// the partition and returns the selected ones, most irregular first.
// matrix holds the raw (unnormalized) feature vectors of every segment of
// the whole trajectory.
func (sel *Selector) SelectForPart(s *traj.Symbolic, part partition.Part, matrix []feature.Vector) []SelectedFeature {
	sel.prepare()
	descs, wvec := sel.descs, sel.wvec

	// Landmark sequences of the partition and of the popular route
	// between its endpoints.
	tpLandmarks := sel.tpLandmarks[:0]
	for i := part.FirstSeg; i <= part.LastSeg; i++ {
		tpLandmarks = append(tpLandmarks, s.Visits[i].Landmark)
	}
	tpLandmarks = append(tpLandmarks, s.Visits[part.LastSeg+1].Landmark)
	sel.tpLandmarks = tpLandmarks
	var prRoute []int
	if sel.Popular != nil {
		if route, ok := sel.Popular.Route(tpLandmarks[0], tpLandmarks[len(tpLandmarks)-1]); ok {
			prRoute = route
		}
	}

	var selected []SelectedFeature
	for j, d := range descs {
		vals := sel.vals[:0]
		for i := part.FirstSeg; i <= part.LastSeg; i++ {
			vals = append(vals, matrix[i][j])
		}
		sel.vals = vals
		var rate float64
		sf := SelectedFeature{Key: d.Key, Name: d.Name, Class: d.Class, Numeric: d.Numeric}
		switch d.Class {
		case feature.Routing:
			prSeq, prOK := sel.routeFeatureSeq(prRoute, j)
			if !prOK {
				// No historical route to compare against: the routing
				// feature cannot be judged irregular.
				break
			}
			rate = irregular.RoutingRate(vals, prSeq, d.Numeric, wvec[j])
			sf.Regular, sf.HasRegular = aggregate(prSeq, d.Numeric)
		case feature.Moving:
			regular, ok := sel.regularSeq(s, part, j, len(vals))
			if !ok {
				break
			}
			rate = irregular.MovingRate(vals, regular, wvec[j])
			sf.Regular, sf.HasRegular = aggregate(regular, d.Numeric)
		}
		if rate <= sel.threshold() {
			continue
		}
		sf.Rate = rate
		sf.Value, _ = aggregate(vals, d.Numeric)
		sel.attachByProducts(&sf, s, part)
		selected = append(selected, sf)
	}
	sort.SliceStable(selected, func(a, b int) bool { return selected[a].Rate > selected[b].Rate })
	return selected
}

// routeFeatureSeq builds the popular route's feature sequence FPR for
// feature dimension j from the historical feature map.
func (sel *Selector) routeFeatureSeq(prRoute []int, j int) ([]float64, bool) {
	if len(prRoute) < 2 || sel.FeatureMap == nil {
		return nil, false
	}
	seq := sel.seq[:0]
	for i := 1; i < len(prRoute); i++ {
		r, ok := sel.FeatureMap.Regular(prRoute[i-1], prRoute[i])
		if !ok {
			if !sel.GlobalMeanFallback {
				return nil, false
			}
			r = sel.FeatureMap.GlobalMean()
		}
		seq = append(seq, r[j])
	}
	sel.seq = seq
	return seq, true
}

// regularSeq builds the per-segment regular values of feature j for the
// partition from the historical feature map.
func (sel *Selector) regularSeq(s *traj.Symbolic, part partition.Part, j, n int) ([]float64, bool) {
	if sel.FeatureMap == nil {
		return nil, false
	}
	out := sel.seq[:0]
	for i := part.FirstSeg; i <= part.LastSeg; i++ {
		a, b := s.Visits[i].Landmark, s.Visits[i+1].Landmark
		r, ok := sel.FeatureMap.Regular(a, b)
		if !ok {
			if !sel.GlobalMeanFallback {
				return nil, false
			}
			r = sel.FeatureMap.GlobalMean()
		}
		out = append(out, r[j])
	}
	sel.seq = out
	return out, true
}

// aggregate collapses per-segment values into a partition-level value:
// the mean for numeric features, the mode for categorical ones. ok is
// false for empty input.
func aggregate(vals []float64, numeric bool) (v float64, ok bool) {
	if len(vals) == 0 {
		return 0, false
	}
	if numeric {
		var sum float64
		for _, x := range vals {
			sum += x
		}
		return sum / float64(len(vals)), true
	}
	// Mode of category codes. Categorical features draw from single-digit
	// code sets (road grades 1–7, directions 1–2), so a small linear-scan
	// table beats a map allocation on this per-partition hot path; the
	// map remains as overflow for exotic registered features.
	var keys [8]float64
	var cnts [8]int
	distinct := 0
	var overflow map[float64]int
	for _, x := range vals {
		found := false
		for i := 0; i < distinct; i++ {
			//lint:allow floateq -- category codes are exact small integers
			if keys[i] == x {
				cnts[i]++
				found = true
				break
			}
		}
		if found {
			continue
		}
		if distinct < len(keys) {
			keys[distinct], cnts[distinct] = x, 1
			distinct++
			continue
		}
		if overflow == nil {
			overflow = make(map[float64]int)
		}
		overflow[x]++
	}
	best, bestN := 0.0, 0
	for i := 0; i < distinct; i++ {
		if cnts[i] > bestN || (cnts[i] == bestN && keys[i] < best) {
			best, bestN = keys[i], cnts[i]
		}
	}
	for x, n := range overflow {
		if n > bestN || (n == bestN && x < best) {
			best, bestN = x, n
		}
	}
	return best, true
}

// attachByProducts fills the extraction by-products the templates present
// (stay locations and durations, U-turn places, road names — §VI-A).
func (sel *Selector) attachByProducts(sf *SelectedFeature, s *traj.Symbolic, part partition.Part) {
	switch sf.Key {
	case feature.KeyStayPoints:
		sp := stayDetector(sel.Registry)
		for i := part.FirstSeg; i <= part.LastSeg; i++ {
			sf.Stays = append(sf.Stays, sp.Detect(s.Segment(i).RawSamples())...)
		}
		for _, st := range sf.Stays {
			sf.TotalStay += st.Duration
			name := ""
			if sel.Landmarks != nil {
				if lm, ok := sel.Landmarks.Nearest(st.Center, 500); ok {
					name = lm.Name
				}
			}
			sf.StayAt = append(sf.StayAt, name)
		}
	case feature.KeyUTurns:
		ut := uturnDetector(sel.Registry)
		for i := part.FirstSeg; i <= part.LastSeg; i++ {
			sf.UTurns = append(sf.UTurns, ut.Detect(s.Segment(i).RawSamples())...)
		}
		for _, u := range sf.UTurns {
			name := ""
			if sel.Landmarks != nil {
				if lm, ok := sel.Landmarks.Nearest(u.At, 500); ok {
					name = lm.Name
				}
			}
			sf.UTurnAt = append(sf.UTurnAt, name)
		}
	case feature.KeyGradeOfRoad:
		if sel.Ctx != nil {
			sf.RoadName = RoadNameForPart(sel.Ctx, s, part)
		}
	}
}

// stayDetector returns the registered StayPoints extractor (to honour its
// configured thresholds), or a default one.
func stayDetector(reg *feature.Registry) feature.StayPoints {
	if i := reg.IndexOf(feature.KeyStayPoints); i >= 0 {
		if sp, ok := extractorAt(reg, i).(feature.StayPoints); ok {
			return sp
		}
	}
	return feature.NewStayPoints()
}

// uturnDetector returns the registered UTurns extractor, or a default one.
func uturnDetector(reg *feature.Registry) feature.UTurns {
	if i := reg.IndexOf(feature.KeyUTurns); i >= 0 {
		if ut, ok := extractorAt(reg, i).(feature.UTurns); ok {
			return ut
		}
	}
	return feature.NewUTurns()
}

// extractorAt indirects through Descriptors order; the registry does not
// expose extractors directly, so re-extraction uses defaults for the two
// detail-producing features unless type assertion succeeds.
func extractorAt(reg *feature.Registry, i int) feature.Extractor {
	return reg.ExtractorAt(i)
}

// RoadForPart returns the partition's dominant road grade together with
// the most common road name among the edges of that grade, so the
// sentence templates' "road type (road name)" slot is internally
// consistent. ok is false when no segment could be map-matched.
func RoadForPart(ctx *feature.Context, s *traj.Symbolic, part partition.Part) (grade roadnet.Grade, name string, ok bool) {
	// Two passes over the (cached) segment edges: grade codes 1–7 fit a
	// fixed count array, and the name map is only built for the modal
	// grade — this runs per partition on the serving hot path, so the
	// common all-unnamed case must not allocate.
	var grades [8]int
	for i := part.FirstSeg; i <= part.LastSeg; i++ {
		for _, e := range ctx.SegmentEdges(s.Segment(i)) {
			g := e.Grade
			if g < 0 || g > 7 {
				g = 0
			}
			grades[g]++
		}
	}
	modalN := 0
	for g, n := range grades {
		// Ascending iteration: strict > keeps the smallest modal grade.
		if n > modalN {
			grade, modalN = roadnet.Grade(g), n
		}
	}
	if modalN == 0 {
		return 0, "", false
	}
	var names map[string]int
	for i := part.FirstSeg; i <= part.LastSeg; i++ {
		for _, e := range ctx.SegmentEdges(s.Segment(i)) {
			if e.Grade != grade || e.Name == "" {
				continue
			}
			if names == nil {
				names = make(map[string]int)
			}
			names[e.Name]++
		}
	}
	bestN := 0
	for nm, n := range names {
		if n > bestN || (n == bestN && nm < name) {
			name, bestN = nm, n
		}
	}
	return grade, name, true
}

// RoadNameForPart returns only the name component of RoadForPart; it
// remains for callers that already know the grade.
func RoadNameForPart(ctx *feature.Context, s *traj.Symbolic, part partition.Part) string {
	_, name, _ := RoadForPart(ctx, s, part)
	return name
}

// DominantGrade returns the modal road grade of the partition from the
// feature matrix, for the sentence templates' "through road type" slot.
func DominantGrade(reg *feature.Registry, matrix []feature.Vector, part partition.Part) (roadnet.Grade, bool) {
	j := reg.IndexOf(feature.KeyGradeOfRoad)
	if j < 0 {
		return 0, false
	}
	// Grade codes are 1–7 (roadnet.Grade.Valid), so the count fits a
	// fixed array; this runs per partition on the render path.
	var counts [8]int
	for i := part.FirstSeg; i <= part.LastSeg && i < len(matrix); i++ {
		if g := int(matrix[i][j]); g >= 1 && g <= 7 {
			counts[g]++
		}
	}
	best, bestN := 0, 0
	for g, n := range counts {
		// Ascending iteration: strict > keeps the smallest modal grade.
		if n > bestN {
			best, bestN = g, n
		}
	}
	if bestN == 0 {
		return 0, false
	}
	return roadnet.Grade(best), true
}

// TotalDuration sums the durations of the partition's segments.
func TotalDuration(s *traj.Symbolic, part partition.Part) time.Duration {
	var d time.Duration
	for i := part.FirstSeg; i <= part.LastSeg; i++ {
		d += s.Segment(i).Duration()
	}
	return d
}
