// Package summarize turns partitioned trajectories into short text. It
// implements feature selection by irregular rate (§V) and summary
// construction from phrase and sentence templates (§VI-A), including the
// extension hook for custom features (§VI-B).
package summarize

import (
	"time"

	"stmaker/internal/feature"
	"stmaker/internal/partition"
)

// SelectedFeature is one feature chosen for description in a partition,
// together with everything the templates need to realize it.
type SelectedFeature struct {
	// Key and Name identify the feature (e.g. "Spe", "speed").
	Key  string
	Name string
	// Class says whether the feature is routing or moving.
	Class feature.Class
	// Numeric mirrors the feature descriptor.
	Numeric bool
	// Rate is the irregular rate Γf(TP) that got the feature selected.
	Rate float64
	// Value is the partition-level feature value: the mean over segments
	// for numeric features, the mode for categorical ones.
	Value float64
	// Regular is the value's historical counterpart (mean or mode of the
	// regular values), letting templates phrase comparisons such as
	// "14 km/h slower than usual". HasRegular is false when history has
	// no data for the partition's route.
	Regular    float64
	HasRegular bool

	// By-products of feature extraction (§VI-A) consumed by templates.
	Stays     []feature.Stay  // for the stay-points feature
	StayAt    []string        // landmark names near each stay point
	UTurns    []feature.UTurn // for the U-turns feature
	UTurnAt   []string        // landmark names near each U-turn
	RoadName  string          // dominant road name of the partition
	TotalStay time.Duration   // summed stay duration
}

// PartSummary is the summarized form of one trajectory partition.
type PartSummary struct {
	// Part is the segment range.
	Part partition.Part
	// Source and Dest are the landmark ids at the partition ends.
	Source, Dest int
	// SourceName and DestName are their display names.
	SourceName, DestName string
	// RoadType is the dominant grade's display name ("highway"), used by
	// the sentence templates; empty when the partition is unmatched.
	RoadType string
	// RoadName is the dominant road name, empty when unnamed.
	RoadName string
	// Features are the selected features, most irregular first.
	Features []SelectedFeature
	// Text is the rendered sentence for this partition.
	Text string
}

// Summary is the final text summary of a trajectory.
type Summary struct {
	// TrajectoryID identifies the summarized trajectory.
	TrajectoryID string
	// Parts holds one entry per trajectory partition, in travel order.
	Parts []PartSummary
	// Text is the full summary paragraph.
	Text string
}

// FeatureKeys returns the distinct selected feature keys across all
// partitions, in first-appearance order. The experiment harness uses this
// for feature-frequency statistics.
func (s *Summary) FeatureKeys() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range s.Parts {
		for _, f := range p.Features {
			if !seen[f.Key] {
				seen[f.Key] = true
				out = append(out, f.Key)
			}
		}
	}
	return out
}

// MentionsFeature reports whether any partition describes the feature.
func (s *Summary) MentionsFeature(key string) bool {
	for _, p := range s.Parts {
		for _, f := range p.Features {
			if f.Key == key {
				return true
			}
		}
	}
	return false
}

// LandmarkIDs returns the distinct landmark ids mentioned as partition
// endpoints, in order of first appearance.
func (s *Summary) LandmarkIDs() []int {
	seen := make(map[int]bool)
	var out []int
	add := func(id int) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, p := range s.Parts {
		add(p.Source)
		add(p.Dest)
	}
	return out
}
