package summarize

import (
	"strings"
	"testing"
	"time"

	"stmaker/internal/feature"
	"stmaker/internal/geo"
)

func TestDisplayName(t *testing.T) {
	cases := map[string]string{
		"Daoxiang Community": "the Daoxiang Community",
		"the Times Square":   "the Times Square",
		"A Big Mall":         "A Big Mall",
		"":                   "an unnamed place",
	}
	for in, want := range cases {
		if got := displayName(in); got != want {
			t.Errorf("displayName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNumberWordAndPlural(t *testing.T) {
	if numberWord(2) != "two" || numberWord(0) != "zero" || numberWord(15) != "15" {
		t.Error("numberWord wrong")
	}
	if plural(1, "U-turn", "U-turns") != "U-turn" || plural(3, "U-turn", "U-turns") != "U-turns" {
		t.Error("plural wrong")
	}
}

func TestJoinAnd(t *testing.T) {
	if joinAnd(nil) != "" {
		t.Error("empty join")
	}
	if got := joinAnd([]string{"a"}); got != "a" {
		t.Errorf("single join = %q", got)
	}
	if got := joinAnd([]string{"a", "b", "c"}); got != "a, b and c" {
		t.Errorf("triple join = %q", got)
	}
}

func TestHumanDuration(t *testing.T) {
	if got := humanDuration(167 * time.Second); got != "167 seconds" {
		t.Errorf("167s = %q", got)
	}
	if got := humanDuration(1 * time.Second); got != "1 second" {
		t.Errorf("1s = %q", got)
	}
	if got := humanDuration(20 * time.Minute); got != "20 minutes" {
		t.Errorf("20m = %q", got)
	}
}

func TestRenderSpeed(t *testing.T) {
	sf := SelectedFeature{Key: feature.KeySpeed, Value: 56, Regular: 70, HasRegular: true}
	got := renderSpeed(sf)
	if got != "with the speed of 56 km/h which was 14 km/h slower than usual" {
		t.Errorf("slower clause = %q", got)
	}
	sf.Value, sf.Regular = 90, 70
	got = renderSpeed(sf)
	if !strings.Contains(got, "20 km/h faster than usual") {
		t.Errorf("faster clause = %q", got)
	}
	sf.HasRegular = false
	if got := renderSpeed(sf); got != "with the speed of 90 km/h" {
		t.Errorf("no-regular clause = %q", got)
	}
	sf.HasRegular, sf.Regular = true, 90.4
	if got := renderSpeed(sf); strings.Contains(got, "usual") {
		t.Errorf("sub-1 km/h diff should not be phrased: %q", got)
	}
}

func TestRenderGrade(t *testing.T) {
	sf := SelectedFeature{Key: feature.KeyGradeOfRoad, Value: 1, Regular: 3, HasRegular: true, RoadName: "G6"}
	got := renderGrade(sf)
	if got != "through highway (G6) while most drivers choose national road" {
		t.Errorf("grade clause = %q", got)
	}
	sf.HasRegular = false
	sf.RoadName = ""
	if got := renderGrade(sf); got != "through highway" {
		t.Errorf("plain grade = %q", got)
	}
	sf.Value = 0 // unmatched
	if got := renderGrade(sf); got != "" {
		t.Errorf("invalid grade clause = %q", got)
	}
}

func TestRenderWidth(t *testing.T) {
	sf := SelectedFeature{Key: feature.KeyRoadWidth, Value: 7, Regular: 22, HasRegular: true}
	got := renderWidth(sf)
	if got != "through 7-metre-wide roads while most drivers prefer wider roads" {
		t.Errorf("width clause = %q", got)
	}
	sf.Value, sf.Regular = 28, 10
	if got := renderWidth(sf); !strings.Contains(got, "narrower") {
		t.Errorf("narrower clause = %q", got)
	}
	sf.Value = 0
	if got := renderWidth(sf); got != "" {
		t.Errorf("zero width clause = %q", got)
	}
}

func TestRenderDirection(t *testing.T) {
	sf := SelectedFeature{Key: feature.KeyDirection, Value: 2, Regular: 1, HasRegular: true}
	got := renderDirection(sf)
	if got != "along a one-way road while most drivers prefer two-way roads" {
		t.Errorf("direction clause = %q", got)
	}
	sf.Value = 0
	if got := renderDirection(sf); got != "" {
		t.Errorf("invalid direction = %q", got)
	}
}

func TestRenderStays(t *testing.T) {
	sf := SelectedFeature{
		Key:   feature.KeyStayPoints,
		Value: 2,
		Stays: []feature.Stay{
			{Center: geo.Point{}, Duration: 100 * time.Second},
			{Center: geo.Point{}, Duration: 67 * time.Second},
		},
		TotalStay: 167 * time.Second,
	}
	got := renderStays(sf)
	if got != "with two staying points (in total for about 167 seconds)" {
		t.Errorf("stays clause = %q", got)
	}
	none := SelectedFeature{Key: feature.KeyStayPoints, Value: 0}
	if got := renderStays(none); !strings.Contains(got, "no stay points") {
		t.Errorf("no-stays clause = %q", got)
	}
	one := SelectedFeature{Key: feature.KeyStayPoints, Value: 1}
	if got := renderStays(one); !strings.Contains(got, "one staying point") || strings.Contains(got, "points") {
		t.Errorf("one-stay clause = %q", got)
	}
}

func TestRenderUTurns(t *testing.T) {
	sf := SelectedFeature{
		Key:     feature.KeyUTurns,
		Value:   1,
		UTurns:  []feature.UTurn{{At: geo.Point{}}},
		UTurnAt: []string{"Zhichun Road"},
	}
	got := renderUTurns(sf)
	if got != "with conducting one U-turn at the Zhichun Road" {
		t.Errorf("uturn clause = %q", got)
	}
	sf.UTurns = append(sf.UTurns, feature.UTurn{At: geo.Point{}})
	sf.UTurnAt = append(sf.UTurnAt, "Suzhou Street")
	got = renderUTurns(sf)
	if !strings.Contains(got, "two U-turns at the Zhichun Road and the Suzhou Street") {
		t.Errorf("multi uturn clause = %q", got)
	}
	if got := renderUTurns(SelectedFeature{Key: feature.KeyUTurns}); got != "" {
		t.Errorf("zero uturns = %q", got)
	}
}

func TestRenderSpeedChanges(t *testing.T) {
	sf := SelectedFeature{Key: feature.KeySpeedChange, Value: 3}
	if got := renderSpeedChanges(sf); got != "with three sharp speed changes" {
		t.Errorf("spec clause = %q", got)
	}
	if got := renderSpeedChanges(SelectedFeature{}); got != "" {
		t.Errorf("zero spec = %q", got)
	}
}

func TestRenderPartSmoothly(t *testing.T) {
	ts := DefaultTemplates()
	ps := &PartSummary{SourceName: "Suzhou Road", DestName: "Suzhoujie Station"}
	ts.RenderPart(ps, false)
	want := "Then it moved from the Suzhou Road to the Suzhoujie Station smoothly."
	if ps.Text != want {
		t.Errorf("smooth sentence = %q, want %q", ps.Text, want)
	}
}

func TestRenderPartFirstWithFeatures(t *testing.T) {
	ts := DefaultTemplates()
	ps := &PartSummary{
		SourceName: "Daoxiang Community",
		DestName:   "Haidian Hospital",
		RoadType:   "express road",
		Features: []SelectedFeature{
			{Key: feature.KeySpeed, Name: "speed", Numeric: true, Value: 56, Regular: 70, HasRegular: true},
			{Key: feature.KeyStayPoints, Name: "stay points", Value: 2,
				Stays:     []feature.Stay{{Duration: 100 * time.Second}, {Duration: 67 * time.Second}},
				TotalStay: 167 * time.Second},
		},
	}
	ts.RenderPart(ps, true)
	want := "The car started from the Daoxiang Community to the Haidian Hospital through express road, " +
		"with the speed of 56 km/h which was 14 km/h slower than usual and " +
		"with two staying points (in total for about 167 seconds)."
	if ps.Text != want {
		t.Errorf("sentence =\n%q\nwant\n%q", ps.Text, want)
	}
}

func TestRenderPartGradeSuppliesRoadType(t *testing.T) {
	ts := DefaultTemplates()
	ps := &PartSummary{
		SourceName: "A",
		DestName:   "B",
		RoadType:   "highway",
		Features: []SelectedFeature{
			{Key: feature.KeyGradeOfRoad, Value: 1, Regular: 3, HasRegular: true},
		},
	}
	ts.RenderPart(ps, true)
	if strings.Count(ps.Text, "through") != 1 {
		t.Errorf("grade clause should replace the road-type slot: %q", ps.Text)
	}
	if !strings.Contains(ps.Text, "while most drivers choose national road") {
		t.Errorf("missing comparison: %q", ps.Text)
	}
}

func TestRenderSummaryJoinsSentences(t *testing.T) {
	ts := DefaultTemplates()
	s := &Summary{
		TrajectoryID: "t1",
		Parts: []PartSummary{
			{SourceName: "A", DestName: "B"},
			{SourceName: "B", DestName: "C"},
		},
	}
	ts.RenderSummary(s)
	if !strings.HasPrefix(s.Text, "The car started from the A to the B smoothly. Then it moved from the B") {
		t.Errorf("summary = %q", s.Text)
	}
}

func TestRegisterClause(t *testing.T) {
	ts := DefaultTemplates()
	if err := ts.RegisterClause(feature.KeySpeed, renderSpeed); err == nil {
		t.Error("duplicate clause accepted")
	}
	if err := ts.RegisterClause("", renderSpeed); err == nil {
		t.Error("empty key accepted")
	}
	if err := ts.RegisterClause("X", nil); err == nil {
		t.Error("nil renderer accepted")
	}
	if err := ts.RegisterClause("Fuel", func(sf SelectedFeature) string {
		return "with unusually high fuel consumption"
	}); err != nil {
		t.Fatal(err)
	}
	if !ts.HasClause("Fuel") {
		t.Error("registered clause missing")
	}
	ps := &PartSummary{SourceName: "A", DestName: "B",
		Features: []SelectedFeature{{Key: "Fuel", Rate: 1}}}
	ts.RenderPart(ps, true)
	if !strings.Contains(ps.Text, "fuel consumption") {
		t.Errorf("custom clause not rendered: %q", ps.Text)
	}
}

func TestSummaryHelpers(t *testing.T) {
	s := &Summary{Parts: []PartSummary{
		{Source: 1, Dest: 2, Features: []SelectedFeature{{Key: "Spe"}}},
		{Source: 2, Dest: 5, Features: []SelectedFeature{{Key: "Spe"}, {Key: "Stay"}}},
	}}
	keys := s.FeatureKeys()
	if len(keys) != 2 || keys[0] != "Spe" || keys[1] != "Stay" {
		t.Errorf("FeatureKeys = %v", keys)
	}
	if !s.MentionsFeature("Stay") || s.MentionsFeature("GR") {
		t.Error("MentionsFeature wrong")
	}
	ids := s.LandmarkIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 5 {
		t.Errorf("LandmarkIDs = %v", ids)
	}
}

func TestRenderStaysWithPlaces(t *testing.T) {
	sf := SelectedFeature{
		Key:   feature.KeyStayPoints,
		Value: 2,
		Stays: []feature.Stay{
			{Duration: 100 * time.Second}, {Duration: 67 * time.Second},
		},
		StayAt:    []string{"Zhichun Road", "Zhichun Road"},
		TotalStay: 167 * time.Second,
	}
	got := renderStays(sf)
	want := "with two staying points near the Zhichun Road (in total for about 167 seconds)"
	if got != want {
		t.Errorf("clause = %q, want %q", got, want)
	}
	// Too many distinct places: suppress the list to stay concise.
	sf.StayAt = []string{"A", "B", "C"}
	if got := renderStays(sf); strings.Contains(got, "near") {
		t.Errorf("three places should be suppressed: %q", got)
	}
}

func TestRenderTurns(t *testing.T) {
	if got := renderTurns(SelectedFeature{Key: feature.KeyTurns, Value: 4}); got != "with four turns" {
		t.Errorf("turns clause = %q", got)
	}
	if got := renderTurns(SelectedFeature{Key: feature.KeyTurns}); got != "" {
		t.Errorf("zero turns = %q", got)
	}
	if !DefaultTemplates().HasClause(feature.KeyTurns) {
		t.Error("Turn clause not installed by default")
	}
}
