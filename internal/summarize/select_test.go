package summarize

import (
	"math"
	"testing"
	"time"

	"stmaker/internal/feature"
	"stmaker/internal/geo"
	"stmaker/internal/history"
	"stmaker/internal/landmark"
	"stmaker/internal/partition"
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
)

var (
	selBase  = geo.Point{Lat: 39.9, Lng: 116.4}
	selStart = time.Date(2013, 11, 2, 9, 0, 0, 0, time.UTC)
)

// movingRegistry holds only moving features, so no road network is needed.
func movingRegistry(t *testing.T) *feature.Registry {
	t.Helper()
	reg := feature.NewRegistry()
	for _, e := range []feature.Extractor{feature.NewSpeed(), feature.NewStayPoints(), feature.NewUTurns()} {
		if err := reg.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// twoSegTrip builds a two-segment symbolic trajectory travelling east at
// the given speeds (km/h), 1 km per segment, landmarks 0→1→2.
func twoSegTrip(speed1, speed2 float64) *traj.Symbolic {
	r := &traj.Raw{ID: "trip"}
	ts := selStart
	d := 0.0
	appendLeg := func(speed float64, until float64) int {
		step := speed / 3.6 * 5
		for d < until {
			r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, 90, d), T: ts})
			ts = ts.Add(5 * time.Second)
			d += step
		}
		return len(r.Samples) - 1
	}
	appendLeg(speed1, 1000)
	mid := len(r.Samples) - 1
	appendLeg(speed2, 2000)
	r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, 90, 2000), T: ts})
	end := len(r.Samples) - 1
	return &traj.Symbolic{ID: r.ID, Raw: r, Visits: []traj.Visit{
		{Landmark: 0, T: r.Samples[0].T, RawIndex: 0},
		{Landmark: 1, T: r.Samples[mid].T, RawIndex: mid},
		{Landmark: 2, T: r.Samples[end].T, RawIndex: end},
	}}
}

// historyWithSpeeds builds a feature map whose edges 0→1 and 1→2 carry the
// given regular values for the moving registry's three features.
func historyWithSpeeds(speed float64) *history.FeatureMap {
	m := history.NewFeatureMap(3)
	m.Add(0, 1, []float64{speed, 0, 0})
	m.Add(1, 2, []float64{speed, 0, 0})
	return m
}

func TestSelectDeviantSpeed(t *testing.T) {
	reg := movingRegistry(t)
	sel := &Selector{
		Registry:   reg,
		Ctx:        feature.NewContext(nil, nil, nil),
		FeatureMap: historyWithSpeeds(60),
	}
	s := twoSegTrip(30, 30) // half the usual speed
	matrix := reg.ExtractAll(s, sel.Ctx)
	got := sel.SelectForPart(s, partition.Part{FirstSeg: 0, LastSeg: 1}, matrix)
	if len(got) != 1 || got[0].Key != feature.KeySpeed {
		t.Fatalf("selected = %+v, want only Spe", got)
	}
	if math.Abs(got[0].Value-30) > 2 {
		t.Errorf("value = %v, want about 30", got[0].Value)
	}
	if !got[0].HasRegular || math.Abs(got[0].Regular-60) > 1e-9 {
		t.Errorf("regular = %v (has=%v), want 60", got[0].Regular, got[0].HasRegular)
	}
}

func TestSelectNothingWhenRegular(t *testing.T) {
	reg := movingRegistry(t)
	sel := &Selector{
		Registry:   reg,
		Ctx:        feature.NewContext(nil, nil, nil),
		FeatureMap: historyWithSpeeds(60),
	}
	s := twoSegTrip(60, 60)
	matrix := reg.ExtractAll(s, sel.Ctx)
	got := sel.SelectForPart(s, partition.Part{FirstSeg: 0, LastSeg: 1}, matrix)
	if len(got) != 0 {
		t.Fatalf("regular trip selected features: %+v", got)
	}
}

func TestThresholdControlsSelection(t *testing.T) {
	reg := movingRegistry(t)
	mk := func(th float64) *Selector {
		return &Selector{
			Registry:   reg,
			Ctx:        feature.NewContext(nil, nil, nil),
			FeatureMap: historyWithSpeeds(60),
			Threshold:  th,
		}
	}
	s := twoSegTrip(45, 45) // deviation rate = |45-60|/60·... moderate
	matrix := reg.ExtractAll(s, mk(0.2).Ctx)
	loose := mk(0.01).SelectForPart(s, partition.Part{FirstSeg: 0, LastSeg: 1}, matrix)
	strict := mk(0.9).SelectForPart(s, partition.Part{FirstSeg: 0, LastSeg: 1}, matrix)
	if len(loose) == 0 {
		t.Fatal("loose threshold selected nothing")
	}
	if len(strict) != 0 {
		t.Fatalf("strict threshold selected %+v", strict)
	}
}

func TestWeightsBoostSelection(t *testing.T) {
	reg := movingRegistry(t)
	// About 50 vs usual 58: rate ≈ 0.17, below η at weight 1 but well
	// above it at weight 3.
	s := twoSegTrip(50, 50)
	base := &Selector{
		Registry:   reg,
		Ctx:        feature.NewContext(nil, nil, nil),
		FeatureMap: historyWithSpeeds(58),
	}
	matrix := reg.ExtractAll(s, base.Ctx)
	part := partition.Part{FirstSeg: 0, LastSeg: 1}
	if got := base.SelectForPart(s, part, matrix); len(got) != 0 {
		t.Fatalf("weight-1 selection = %+v", got)
	}
	boosted := &Selector{
		Registry:   reg,
		Ctx:        base.Ctx,
		FeatureMap: historyWithSpeeds(58),
		Weights:    feature.Weights{feature.KeySpeed: 3},
	}
	if got := boosted.SelectForPart(s, part, matrix); len(got) != 1 {
		t.Fatalf("weight-3 selection = %+v", got)
	}
}

func TestNoHistoryNoSelection(t *testing.T) {
	reg := movingRegistry(t)
	sel := &Selector{Registry: reg, Ctx: feature.NewContext(nil, nil, nil)}
	s := twoSegTrip(10, 90)
	matrix := reg.ExtractAll(s, sel.Ctx)
	if got := sel.SelectForPart(s, partition.Part{FirstSeg: 0, LastSeg: 1}, matrix); len(got) != 0 {
		t.Fatalf("selection without history = %+v", got)
	}
}

func TestGlobalMeanFallback(t *testing.T) {
	reg := movingRegistry(t)
	// History knows edge 0→1 only; segment 1→2 is novel.
	m := history.NewFeatureMap(3)
	m.Add(0, 1, []float64{60, 0, 0})
	s := twoSegTrip(30, 30)
	matrix := reg.ExtractAll(s, feature.NewContext(nil, nil, nil))
	part := partition.Part{FirstSeg: 0, LastSeg: 1}

	strict := &Selector{Registry: reg, Ctx: feature.NewContext(nil, nil, nil), FeatureMap: m}
	if got := strict.SelectForPart(s, part, matrix); len(got) != 0 {
		t.Fatalf("strict selector should skip partitions with unknown edges, got %+v", got)
	}
	fallback := &Selector{Registry: reg, Ctx: feature.NewContext(nil, nil, nil), FeatureMap: m, GlobalMeanFallback: true}
	if got := fallback.SelectForPart(s, part, matrix); len(got) == 0 {
		t.Fatal("fallback selector should still judge the partition")
	}
}

func TestByProductsAttached(t *testing.T) {
	reg := movingRegistry(t)
	lms := landmark.NewSet([]landmark.Landmark{
		{Name: "Origin", Pt: selBase},
		{Name: "Apex", Pt: geo.Destination(selBase, 90, 800)},
	})
	// Out-and-back trip with a stay at the start: U-turns and stays both
	// deviate from a history of smooth driving.
	r := &traj.Raw{ID: "ub"}
	ts := selStart
	for i := 0; i < 30; i++ { // 150 s stay
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, float64(i*31%360), 4), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	for d := 0.0; d <= 800; d += 50 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	for d := 750.0; d >= 0; d -= 50 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	s := &traj.Symbolic{ID: r.ID, Raw: r, Visits: []traj.Visit{
		{Landmark: 0, T: r.Samples[0].T, RawIndex: 0},
		{Landmark: 1, T: r.Samples[len(r.Samples)-1].T, RawIndex: len(r.Samples) - 1},
	}}
	m := history.NewFeatureMap(3)
	m.Add(0, 1, []float64{40, 0, 0})
	sel := &Selector{
		Registry:   reg,
		Ctx:        feature.NewContext(nil, nil, nil),
		FeatureMap: m,
		Landmarks:  lms,
	}
	matrix := reg.ExtractAll(s, sel.Ctx)
	got := sel.SelectForPart(s, partition.Part{FirstSeg: 0, LastSeg: 0}, matrix)
	var stay, uturn *SelectedFeature
	for i := range got {
		switch got[i].Key {
		case feature.KeyStayPoints:
			stay = &got[i]
		case feature.KeyUTurns:
			uturn = &got[i]
		}
	}
	if stay == nil || len(stay.Stays) == 0 || stay.TotalStay < 100*time.Second {
		t.Fatalf("stay by-products missing: %+v", stay)
	}
	if uturn == nil || len(uturn.UTurns) == 0 {
		t.Fatalf("uturn by-products missing: %+v", uturn)
	}
	if len(uturn.UTurnAt) == 0 || uturn.UTurnAt[0] != "Apex" {
		t.Fatalf("uturn place = %v, want Apex", uturn.UTurnAt)
	}
	// Selected features are sorted by descending rate.
	for i := 1; i < len(got); i++ {
		if got[i].Rate > got[i-1].Rate {
			t.Fatalf("not sorted by rate: %+v", got)
		}
	}
}

func TestRoutingSelectionAgainstPopularRoute(t *testing.T) {
	// World: two parallel roads from A(0) to B(2) — popular via landmark 1
	// on a highway, this trip via landmark 3 on a village road.
	reg := feature.NewRegistry()
	if err := reg.Register(feature.GradeOfRoad{}); err != nil {
		t.Fatal(err)
	}
	// Historical corpus: many trips 0→1→2.
	var corpus []*traj.Symbolic
	mk := func(ids ...int) *traj.Symbolic {
		s := &traj.Symbolic{ID: "h"}
		for i, id := range ids {
			s.Visits = append(s.Visits, traj.Visit{Landmark: id, T: selStart.Add(time.Duration(i) * time.Minute)})
		}
		return s
	}
	for i := 0; i < 5; i++ {
		corpus = append(corpus, mk(0, 1, 2))
	}
	pop := history.BuildPopular(corpus)
	// Feature map: highway (grade 1) on the popular edges, village (6)
	// on the trip's edges.
	m := history.NewFeatureMap(1)
	m.Add(0, 1, []float64{1})
	m.Add(1, 2, []float64{1})
	m.Add(0, 3, []float64{6})
	m.Add(3, 2, []float64{6})

	trip := mk(0, 3, 2)
	matrix := []feature.Vector{{6}, {6}} // this trip's per-segment grades

	sel := &Selector{Registry: reg, Ctx: feature.NewContext(nil, nil, nil), Popular: pop, FeatureMap: m}
	got := sel.SelectForPart(trip, partition.Part{FirstSeg: 0, LastSeg: 1}, matrix)
	if len(got) != 1 || got[0].Key != feature.KeyGradeOfRoad {
		t.Fatalf("selected = %+v, want GR", got)
	}
	if got[0].Value != 6 {
		t.Errorf("value = %v", got[0].Value)
	}
	if !got[0].HasRegular || got[0].Regular != 1 {
		t.Errorf("regular = %v", got[0].Regular)
	}

	// The same trip on the popular route is unremarkable.
	onPopular := mk(0, 1, 2)
	matrix2 := []feature.Vector{{1}, {1}}
	if got := sel.SelectForPart(onPopular, partition.Part{FirstSeg: 0, LastSeg: 1}, matrix2); len(got) != 0 {
		t.Fatalf("popular-route trip selected %+v", got)
	}
}

func TestAggregate(t *testing.T) {
	if _, ok := aggregate(nil, true); ok {
		t.Error("empty aggregate should report not ok")
	}
	if v, _ := aggregate([]float64{10, 20}, true); v != 15 {
		t.Errorf("mean = %v", v)
	}
	if v, _ := aggregate([]float64{1, 2, 2, 3}, false); v != 2 {
		t.Errorf("mode = %v", v)
	}
	// Mode ties break toward the smaller code for determinism.
	if v, _ := aggregate([]float64{2, 1}, false); v != 1 {
		t.Errorf("tie mode = %v", v)
	}
}

func TestDominantGradeAndTotalDuration(t *testing.T) {
	reg := feature.NewRegistry()
	if err := reg.Register(feature.GradeOfRoad{}); err != nil {
		t.Fatal(err)
	}
	matrix := []feature.Vector{{1}, {1}, {6}}
	g, ok := DominantGrade(reg, matrix, partition.Part{FirstSeg: 0, LastSeg: 2})
	if !ok || g != 1 {
		t.Fatalf("grade = %v ok=%v", g, ok)
	}
	if _, ok := DominantGrade(reg, []feature.Vector{{0}}, partition.Part{FirstSeg: 0, LastSeg: 0}); ok {
		t.Error("unmatched matrix should report no grade")
	}
	noGR := feature.NewRegistry()
	if err := noGR.Register(feature.NewSpeed()); err != nil {
		t.Fatal(err)
	}
	if _, ok := DominantGrade(noGR, matrix, partition.Part{FirstSeg: 0, LastSeg: 0}); ok {
		t.Error("registry without GR should report no grade")
	}

	s := twoSegTrip(60, 60)
	d := TotalDuration(s, partition.Part{FirstSeg: 0, LastSeg: 1})
	if d != s.Visits[2].T.Sub(s.Visits[0].T) {
		t.Errorf("duration = %v", d)
	}
}

func TestRoadForPart(t *testing.T) {
	// One highway edge and one village edge; a trip covering mostly the
	// highway must get the highway's name, not the village lane's.
	g := &roadnet.Graph{}
	a := g.AddNode(selBase, true)
	b := g.AddNode(geo.Destination(selBase, 90, 2000), true)
	c := g.AddNode(geo.Destination(selBase, 90, 2400), true)
	if _, err := g.AddEdge(a, b, "G6", roadnet.GradeHighway, 0, roadnet.TwoWay, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, "Lane", roadnet.GradeVillage, 0, roadnet.TwoWay, nil); err != nil {
		t.Fatal(err)
	}
	ctx := feature.NewContext(g, roadnet.NewMatcher(g), nil)

	r := &traj.Raw{ID: "rp"}
	ts := selStart
	for d := 0.0; d <= 2400; d += 100 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	s := &traj.Symbolic{ID: r.ID, Raw: r, Visits: []traj.Visit{
		{Landmark: 0, T: r.Start(), RawIndex: 0},
		{Landmark: 1, T: r.End(), RawIndex: len(r.Samples) - 1},
	}}
	grade, name, ok := RoadForPart(ctx, s, partition.Part{FirstSeg: 0, LastSeg: 0})
	if !ok || grade != roadnet.GradeHighway || name != "G6" {
		t.Fatalf("RoadForPart = %v %q ok=%v", grade, name, ok)
	}

	// Unmatchable trip reports not-ok.
	far := &traj.Raw{ID: "far"}
	p := geo.Destination(selBase, 180, 9000)
	for i := 0; i < 3; i++ {
		far.Samples = append(far.Samples, traj.Sample{Pt: geo.Destination(p, 90, float64(i)*50), T: selStart.Add(time.Duration(i) * 5 * time.Second)})
	}
	fs := &traj.Symbolic{ID: far.ID, Raw: far, Visits: []traj.Visit{
		{Landmark: 0, T: far.Start(), RawIndex: 0},
		{Landmark: 1, T: far.End(), RawIndex: 2},
	}}
	if _, _, ok := RoadForPart(ctx, fs, partition.Part{FirstSeg: 0, LastSeg: 0}); ok {
		t.Fatal("unmatchable partition reported a road")
	}
}

func TestStayPlacesAttached(t *testing.T) {
	reg := movingRegistry(t)
	lms := landmark.NewSet([]landmark.Landmark{
		{Name: "Origin", Pt: selBase},
		{Name: "End", Pt: geo.Destination(selBase, 90, 900)},
	})
	r := &traj.Raw{ID: "sp"}
	ts := selStart
	for i := 0; i < 30; i++ { // 150s stay at the origin
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, float64(i*37%360), 4), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	for d := 0.0; d <= 900; d += 50 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(selBase, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	s := &traj.Symbolic{ID: r.ID, Raw: r, Visits: []traj.Visit{
		{Landmark: 0, T: r.Samples[0].T, RawIndex: 0},
		{Landmark: 1, T: r.Samples[len(r.Samples)-1].T, RawIndex: len(r.Samples) - 1},
	}}
	m := history.NewFeatureMap(3)
	m.Add(0, 1, []float64{40, 0, 0})
	sel := &Selector{Registry: reg, Ctx: feature.NewContext(nil, nil, nil), FeatureMap: m, Landmarks: lms}
	matrix := reg.ExtractAll(s, sel.Ctx)
	got := sel.SelectForPart(s, partition.Part{FirstSeg: 0, LastSeg: 0}, matrix)
	for _, f := range got {
		if f.Key == feature.KeyStayPoints {
			if len(f.StayAt) == 0 || f.StayAt[0] != "Origin" {
				t.Fatalf("stay place = %v, want Origin", f.StayAt)
			}
			return
		}
	}
	t.Fatal("stay feature not selected")
}
