// Package registry turns a directory of per-region model files into one
// routable serving surface: a keyed map of atomic model cells, each
// holding an independently trained Summarizer for one geographic region
// (one city, one road network). It is the piece that lets a single
// stmakerd process serve N cities — the paper's summarizer is trained
// per road network, and covering many networks means many models, not
// one global graph.
//
// Each cell preserves the hot-swap semantics of stmaker.Summarizer:
// readers resolve a region to its summarizer lock-free, a per-region
// reload publishes a replacement model atomically, and requests in
// flight on other regions never notice. Models load lazily on first
// use from a -model-dir layout (see docs/MULTI_REGION.md) and are
// evicted least-recently-used when a configurable byte budget is
// exceeded, so a fleet of hundreds of city models can be fronted by a
// process sized for the hot few.
//
// Request routing is by explicit region key, or — for regions whose
// manifest declares a bounding box — by spatial lookup of a
// trajectory's first fix via internal/spatial.
package registry

import (
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stmaker"
	"stmaker/internal/geo"
	"stmaker/internal/landmark"
	"stmaker/internal/metrics"
	"stmaker/internal/modelio"
	"stmaker/internal/roadnet"
	"stmaker/internal/spatial"
	"stmaker/internal/worldio"
)

// Metric names recorded by the registry. docs/OBSERVABILITY.md documents
// each; keep the two in sync. The Metric*Region* series live in each
// region's own registry (exposed under the region's key in the
// GET /metrics "regions" map); the Metric*Regions* gauges and the
// unknown-region counter live in the top-level registry.
const (
	// MetricRegionLoads counts completed model loads for the region —
	// cold loads from disk, not hot-swap reloads.
	MetricRegionLoads = "region_model_loads_total"
	// MetricRegionLoadFailures counts failed load or reload attempts for
	// the region; the region keeps serving its previous model (reload) or
	// stays unloaded (cold load).
	MetricRegionLoadFailures = "region_model_load_failures_total"
	// MetricRegionEvictions counts times the region's model was evicted
	// to fit the memory budget; the next request pays a cold load.
	MetricRegionEvictions = "region_model_evictions_total"
	// MetricRegionLoadSeconds times each cold load from disk (world +
	// model read, summarizer construction), successful or not.
	MetricRegionLoadSeconds = "region_model_load_seconds"
	// MetricRegionLoadRetries counts cold-load attempts retried after a
	// transient I/O failure (a momentary disk hiccup); deterministic
	// failures — missing, corrupt or mismatched model files — are never
	// retried.
	MetricRegionLoadRetries = "region_model_load_retries_total"
	// MetricRegionOverlayBytes is the resident size of the region's
	// precomputed ALT routing overlay (a gauge, 0 when the serving model
	// carries none — e.g. a pre-overlay model file). Overlay bytes are
	// part of the region's budget charge, so this gauge shows how much of
	// regions_loaded_bytes is routing tables.
	MetricRegionOverlayBytes = "region_overlay_bytes"
	// MetricRegionsDiscovered is the number of regions found at startup
	// (a gauge, constant after Open).
	MetricRegionsDiscovered = "regions_discovered"
	// MetricRegionsLoaded is the number of regions currently holding a
	// loaded model (a gauge).
	MetricRegionsLoaded = "regions_loaded"
	// MetricRegionsLoadedBytes is the total on-disk size of currently
	// loaded regions (a gauge) — the quantity the -model-budget eviction
	// keeps under the configured limit.
	MetricRegionsLoadedBytes = "regions_loaded_bytes"
	// MetricUnknownRegionRequests counts lookups of region keys that do
	// not exist; a growing value means clients are misconfigured.
	MetricUnknownRegionRequests = "region_requests_unknown_total"
)

// ErrUnknownRegion is returned when a request names a region the
// registry has never heard of — no such subdirectory of -model-dir.
// Servers map it to 404; contrast with a known region whose model fails
// to load, which is a 5xx-class condition.
var ErrUnknownRegion = errors.New("registry: unknown region")

// ErrNoRegions is returned by Open when the directory contains no
// region subdirectories at all.
var ErrNoRegions = errors.New("registry: no regions found")

// ErrRegionUnavailable wraps load failures that are neither a missing
// model file nor a corrupt/mismatched one — an unreadable world file, a
// permissions problem. The region exists and may become servable after
// an operator fix, so servers map it to 503 rather than 404 or 500.
var ErrRegionUnavailable = errors.New("registry: region unavailable")

// DefaultRegionName is the implicit region key used by NewStatic, i.e.
// by single-region servers wrapping one summarizer.
const DefaultRegionName = "default"

// spatialCellMeters sizes the routing grid. Region centroids are
// city-scale objects, so a coarse grid keeps the index tiny.
const spatialCellMeters = 50_000

// NewSummarizerFunc builds a region's Summarizer from its loaded world.
// The registry passes the region's own metrics registry so each
// region's pipeline metrics stay separable; implementations must wire
// it into the Config they build.
type NewSummarizerFunc func(g *roadnet.Graph, lms *landmark.Set, mx *metrics.Registry) (*stmaker.Summarizer, error)

// Options configures a Registry.
type Options struct {
	// Logger receives load/evict/reload lines. Nil uses slog.Default().
	Logger *slog.Logger
	// Metrics is the top-level registry for fleet-wide gauges. Nil
	// creates a private one.
	Metrics *metrics.Registry
	// MaxBytes is the memory budget: when the summed on-disk size
	// (world + model files) of loaded regions exceeds it, least-
	// recently-used regions are evicted until it fits again. The budget
	// is soft for a single region — one region larger than the whole
	// budget still loads (with a warning) because refusing it would make
	// the region unservable. 0 means unlimited.
	MaxBytes int64
	// NewSummarizer builds each region's summarizer; nil uses a plain
	// stmaker.Config{Graph, Landmarks, Metrics}. cmd/stmakerd passes a
	// closure carrying its pipeline flags (-no-sanitize, -hmm, ...) so
	// every region runs the same pipeline configuration.
	NewSummarizer NewSummarizerFunc
}

func (o Options) withDefaults() Options {
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	if o.NewSummarizer == nil {
		o.NewSummarizer = func(g *roadnet.Graph, lms *landmark.Set, mx *metrics.Registry) (*stmaker.Summarizer, error) {
			return stmaker.New(stmaker.Config{Graph: g, Landmarks: lms, Metrics: mx})
		}
	}
	return o
}

// cellState is the loaded portion of a cell, swapped in and out as one
// atomic pointer: a nil state means "not loaded". In-flight requests
// holding the summarizer keep serving even if the cell is evicted
// underneath them — the pointer they resolved stays valid.
type cellState struct {
	s *stmaker.Summarizer
	// bytes is the region's on-disk footprint (world + model file), the
	// cost the memory budget accounts it at.
	bytes int64
}

// cell is one region: its discovery-time metadata plus the atomically
// swapped loaded state. Loads are single-flight per cell (mu); state
// transitions (load, evict) happen only under the registry's budget
// lock so byte accounting and the loaded set never diverge. The
// designated publishers — NewStatic, load, evictLocked, reload — are
// the only functions allowed to swap the state pointer; `make lint`
// (atomiccell) rejects a raw .Store/.Swap anywhere else, because a
// bypass would desynchronize the byte accounting from the loaded set.
type cell struct {
	name      string
	dir       string
	worldFile string
	modelFile string
	bbox      *modelio.BBox
	mx        *metrics.Registry

	// pinned cells (the NewStatic wrapper) are never evicted.
	pinned bool

	mu        sync.Mutex // serializes loads of this cell
	state     atomic.Pointer[cellState]
	lastUse   atomic.Int64 // registry clock tick of last resolve
	reloading atomic.Bool  // single-flight guard for TriggerReload
	// loadFailed remembers that the most recent load attempt failed (and
	// no state is serving), so /readyz?verbose=1 can distinguish a
	// region that is merely cold from one that is broken.
	loadFailed atomic.Bool
}

// Registry is the keyed map of region cells. Region resolution and
// summarizer lookup are safe for arbitrary concurrency.
type Registry struct {
	cells map[string]*cell
	names []string // sorted region keys
	opts  Options
	mx    *metrics.Registry
	log   *slog.Logger

	// index maps bounding-box centroids to cells for spatial routing;
	// spatialNames[i] is the region inserted with id i. maxReach is the
	// largest centroid-to-corner distance over all boxes: any box
	// containing a point has its centroid within maxReach of it, so one
	// Within query is a complete candidate set.
	index        *spatial.Index
	spatialNames []string
	maxReach     float64

	// budgetMu guards the byte accounting and all cellState stores, so
	// concurrent loads and evictions agree on what is loaded.
	budgetMu    sync.Mutex
	loadedBytes int64

	// clock is the LRU tick, bumped on every resolve.
	clock atomic.Int64
}

// Open discovers regions under dir and returns a lazy registry: nothing
// is loaded yet. A subdirectory is a region when it contains a
// region.json manifest or a world file under the default name; its
// directory name is its region key and must be a valid region name. A
// manifest that names a different region than its directory is an
// error — it would let two directories claim one key.
func Open(dir string, opts Options) (*Registry, error) {
	opts = opts.withDefaults()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: reading model dir: %w", err)
	}
	r := &Registry{
		cells: make(map[string]*cell),
		opts:  opts,
		mx:    opts.Metrics,
		log:   opts.Logger,
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		sub := filepath.Join(dir, name)
		manifestPath := filepath.Join(sub, modelio.ManifestFile)
		data, err := os.ReadFile(manifestPath)
		var m *modelio.Manifest
		switch {
		case err == nil:
			m, err = modelio.ParseManifest(data)
			if err != nil {
				return nil, fmt.Errorf("registry: region %q: %s: %w", name, modelio.ManifestFile, err)
			}
		case errors.Is(err, os.ErrNotExist):
			// No manifest: the directory is a region iff it carries a
			// world file under the default name. Anything else (logs,
			// backups) is skipped.
			if _, statErr := os.Stat(filepath.Join(sub, modelio.DefaultWorldFile)); statErr != nil {
				continue
			}
			m = &modelio.Manifest{World: modelio.DefaultWorldFile, Model: modelio.DefaultModelFile}
		default:
			return nil, fmt.Errorf("registry: region %q: reading %s: %w", name, modelio.ManifestFile, err)
		}
		if !modelio.ValidRegionName(name) {
			return nil, fmt.Errorf("registry: directory %q is not a valid region name", name)
		}
		if m.Region != "" && m.Region != name {
			return nil, fmt.Errorf("registry: directory %q has manifest claiming region %q", name, m.Region)
		}
		r.cells[name] = &cell{
			name:      name,
			dir:       sub,
			worldFile: filepath.Join(sub, m.World),
			modelFile: filepath.Join(sub, m.Model),
			bbox:      m.BBox,
			mx:        metrics.NewRegistry(),
		}
		r.names = append(r.names, name)
	}
	if len(r.cells) == 0 {
		return nil, fmt.Errorf("%w under %s", ErrNoRegions, dir)
	}
	sort.Strings(r.names)
	r.buildSpatialIndex()
	discovered := r.mx.Counter(MetricRegionsDiscovered) //nolint:stmaker/metricnames -- regions_discovered is a gauge (set once at startup), so the _total counter suffix does not apply
	discovered.Add(int64(len(r.cells)))
	return r, nil
}

// NewStatic wraps one already-constructed summarizer as a single-region
// registry under the given name (usually DefaultRegionName) — the
// backward-compatible path for servers built around a bare -model or an
// in-process Summarizer. The cell is pinned (never evicted) and carries
// no byte cost; readiness tracks the summarizer's own Trained state.
func NewStatic(name string, s *stmaker.Summarizer, opts Options) *Registry {
	opts = opts.withDefaults()
	r := &Registry{
		cells: make(map[string]*cell),
		names: []string{name},
		opts:  opts,
		mx:    opts.Metrics,
		log:   opts.Logger,
	}
	c := &cell{name: name, mx: s.Metrics(), pinned: true}
	c.state.Store(&cellState{s: s})
	r.cells[name] = c
	discovered := r.mx.Counter(MetricRegionsDiscovered) //nolint:stmaker/metricnames -- regions_discovered is a gauge (set once at startup), so the _total counter suffix does not apply
	discovered.Add(1)
	return r
}

// buildSpatialIndex indexes the centroids of bounding-boxed regions for
// Resolve. Regions without a bbox stay reachable by explicit key only.
func (r *Registry) buildSpatialIndex() {
	var refLat float64
	boxed := 0
	for _, name := range r.names {
		if b := r.cells[name].bbox; b != nil {
			lat, _ := b.Center()
			refLat = lat
			boxed++
		}
	}
	if boxed == 0 {
		return
	}
	r.index = spatial.NewIndex(spatialCellMeters, refLat)
	for _, name := range r.names {
		b := r.cells[name].bbox
		if b == nil {
			continue
		}
		clat, clng := b.Center()
		center := geo.Point{Lat: clat, Lng: clng}
		// The farthest point of a box from its centroid is a corner.
		reach := geo.Distance(center, geo.Point{Lat: b.MaxLat, Lng: b.MaxLng})
		if d := geo.Distance(center, geo.Point{Lat: b.MinLat, Lng: b.MinLng}); d > reach {
			reach = d
		}
		if reach > r.maxReach {
			r.maxReach = reach
		}
		r.index.Insert(len(r.spatialNames), center)
		r.spatialNames = append(r.spatialNames, name)
	}
}

// Names returns the sorted region keys.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// Multi reports whether the registry holds more than one region.
func (r *Registry) Multi() bool { return len(r.cells) > 1 }

// DefaultRegion returns the implicit region for requests that carry no
// region key: the sole region when there is exactly one, "" otherwise —
// a multi-region fleet has no safe default, requests must route by key
// or by geometry.
func (r *Registry) DefaultRegion() string {
	if len(r.names) == 1 {
		return r.names[0]
	}
	return ""
}

// Metrics exposes the top-level (fleet-wide) registry.
func (r *Registry) Metrics() *metrics.Registry { return r.mx }

// RegionSnapshots returns each region's own metrics snapshot, keyed by
// region — the "regions" map of GET /metrics in multi-region mode.
func (r *Registry) RegionSnapshots() map[string]metrics.Snapshot {
	out := make(map[string]metrics.Snapshot, len(r.cells))
	for name, c := range r.cells {
		out[name] = c.mx.Snapshot()
	}
	return out
}

// ReadyCount reports how many regions currently hold a trained, serving
// model. Readiness probes gate on it being at least one.
func (r *Registry) ReadyCount() int {
	n := 0
	for _, c := range r.cells {
		if st := c.state.Load(); st != nil && st.s.Trained() {
			n++
		}
	}
	return n
}

// RegionMetrics returns the named region's own metrics registry — the
// persistent per-region registry that survives evictions and reloads
// (the ingestion layer records its counters here so they show under the
// region's key in GET /metrics). It returns nil for unknown regions.
func (r *Registry) RegionMetrics(name string) *metrics.Registry {
	c, ok := r.cells[name]
	if !ok {
		return nil
	}
	return c.mx
}

// RegionStatus is one region's serving state for /readyz?verbose=1.
type RegionStatus struct {
	// Region is the region key.
	Region string `json:"region"`
	// State is "loaded" (model serving), "cold" (not loaded yet, will
	// load lazily) or "failed" (most recent load attempt failed and
	// nothing is serving).
	State string `json:"state"`
	// ModelVersion is the serving model's version, 0 unless loaded.
	ModelVersion uint64 `json:"model_version,omitempty"`
}

// Status reports every region's serving state in key order, so
// operators can see which city is degraded rather than only the
// fleet-level ready count.
func (r *Registry) Status() []RegionStatus {
	out := make([]RegionStatus, 0, len(r.names))
	for _, name := range r.names {
		c := r.cells[name]
		rs := RegionStatus{Region: name, State: "cold"}
		if st := c.state.Load(); st != nil {
			rs.State = "loaded"
			if m := st.s.Model(); m != nil {
				rs.ModelVersion = m.Version()
			}
		} else if c.loadFailed.Load() {
			rs.State = "failed"
		}
		out = append(out, rs)
	}
	return out
}

// Loaded reports whether the region currently holds a loaded model.
func (r *Registry) Loaded(name string) bool {
	c, ok := r.cells[name]
	return ok && c.state.Load() != nil
}

// Resolve routes a point to the region whose bounding box contains it,
// preferring the region whose centroid is nearest when boxes overlap.
// It returns false when no indexed region contains the point.
func (r *Registry) Resolve(p geo.Point) (string, bool) {
	if r.index == nil {
		return "", false
	}
	for _, hit := range r.index.Within(p, r.maxReach) {
		name := r.spatialNames[hit.ID]
		if r.cells[name].bbox.Contains(p.Lat, p.Lng) {
			return name, true
		}
	}
	return "", false
}

// Summarizer resolves a region key to its serving summarizer, loading
// the region's world and model from disk on first use (single-flight
// per region) and touching its LRU stamp. Error classes are the
// server's status map: ErrUnknownRegion for a key that does not exist,
// stmaker.ErrModelNotFound when the region exists but its model file
// does not, stmaker.ErrInvalidModel / stmaker.ErrModelMismatch for a
// model file that exists but cannot serve.
func (r *Registry) Summarizer(name string) (*stmaker.Summarizer, error) {
	c, ok := r.cells[name]
	if !ok {
		r.mx.Counter(MetricUnknownRegionRequests).Inc()
		return nil, fmt.Errorf("%w: %q", ErrUnknownRegion, name)
	}
	c.lastUse.Store(r.clock.Add(1))
	if st := c.state.Load(); st != nil {
		return st.s, nil
	}
	return r.load(c)
}

// load brings a cell's model into memory. The cell lock makes loads
// single-flight; the budget lock scopes the state publish and the
// eviction pass that pays for it.
func (r *Registry) load(c *cell) (*stmaker.Summarizer, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A concurrent load may have won the race while we queued on the lock.
	if st := c.state.Load(); st != nil {
		return st.s, nil
	}
	t0 := time.Now()
	st, err := r.loadWithRetry(c)
	c.mx.Histogram(MetricRegionLoadSeconds).ObserveSince(t0)
	if err != nil {
		c.mx.Counter(MetricRegionLoadFailures).Inc()
		c.loadFailed.Store(true)
		r.log.Error("region load failed", "region", c.name, "error", err)
		// Pass the classified sentinels (model missing / corrupt /
		// mismatched) through for the server's status map; everything
		// else becomes the retriable ErrRegionUnavailable.
		if transientLoadError(err) {
			err = fmt.Errorf("%w: %v", ErrRegionUnavailable, err)
		}
		return nil, fmt.Errorf("registry: region %q: %w", c.name, err)
	}
	c.mx.Counter(MetricRegionLoads).Inc()
	c.loadFailed.Store(false)

	r.budgetMu.Lock()
	c.state.Store(st)
	r.loadedBytes += st.bytes
	r.accountLoadedLocked()
	if max := r.opts.MaxBytes; max > 0 && st.bytes > max {
		r.log.Warn("region alone exceeds the memory budget; loading anyway",
			"region", c.name, "bytes", st.bytes, "budget", max)
	}
	r.evictLocked(c)
	r.budgetMu.Unlock()

	r.log.Info("region loaded",
		"region", c.name,
		"bytes", st.bytes,
		"version", st.s.Model().Version(),
		"duration", time.Since(t0),
	)
	return st.s, nil
}

// Cold-load retry policy: a momentary disk hiccup (NFS blip, contended
// I/O) should not surface as an immediate 503 to the request that paid
// the cold load, so transient failures get a couple of quick retries
// with jittered backoff. Deterministic failures — a missing, corrupt or
// mismatched model file — retry never, because re-reading the same bytes
// cannot help.
const (
	coldLoadAttempts    = 3
	coldLoadBackoffBase = 50 * time.Millisecond
)

// transientLoadError reports whether a load failure is worth retrying:
// anything except the deterministic model-file sentinels.
func transientLoadError(err error) bool {
	return !errors.Is(err, stmaker.ErrModelNotFound) &&
		!errors.Is(err, stmaker.ErrInvalidModel) &&
		!errors.Is(err, stmaker.ErrModelMismatch)
}

// loadWithRetry wraps loadFromDisk in the retry policy, counting each
// retry in region_model_load_retries_total.
func (r *Registry) loadWithRetry(c *cell) (*cellState, error) {
	var st *cellState
	var err error
	for attempt := 1; ; attempt++ {
		st, err = r.loadFromDisk(c)
		if err == nil || attempt >= coldLoadAttempts || !transientLoadError(err) {
			return st, err
		}
		// Exponential backoff with full jitter keeps a burst of cold
		// requests from hammering a struggling disk in lockstep.
		backoff := coldLoadBackoffBase << (attempt - 1)
		backoff += time.Duration(rand.Int64N(int64(backoff)))
		c.mx.Counter(MetricRegionLoadRetries).Inc()
		r.log.Warn("region load failed transiently; retrying",
			"region", c.name, "attempt", attempt, "backoff", backoff, "error", err)
		time.Sleep(backoff)
	}
}

// loadFromDisk reads the region's world, builds its summarizer and
// warm-starts it from the model file. No registry locks are held: disk
// reads and summarizer construction are the slow part and must not
// block other regions.
func (r *Registry) loadFromDisk(c *cell) (*cellState, error) {
	wf, err := os.Open(c.worldFile)
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}
	worldInfo, statErr := wf.Stat()
	graph, lms, err := worldio.LoadWorld(wf)
	wf.Close()
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}
	if statErr != nil {
		return nil, fmt.Errorf("world: %w", statErr)
	}
	s, err := r.opts.NewSummarizer(graph, lms, c.mx)
	if err != nil {
		return nil, err
	}
	m, err := stmaker.LoadModelFile(c.modelFile)
	if err != nil {
		return nil, err
	}
	if err := s.LoadModel(m); err != nil {
		return nil, err
	}
	bytes := worldInfo.Size()
	if mi, err := os.Stat(c.modelFile); err == nil {
		bytes += mi.Size()
	}
	bytes += c.overlayBytes(m)
	return &cellState{s: s, bytes: bytes}, nil
}

// overlayBytes charges the model's precomputed routing overlay at its
// resident table size and refreshes the region's region_overlay_bytes
// gauge. The dense tables dominate a loaded model's memory beyond what
// the on-disk file sizes already approximate, so they are accounted
// explicitly — a budget that ignored them would under-evict exactly the
// regions carrying the most precomputation.
func (c *cell) overlayBytes(m *stmaker.Model) int64 {
	var ob int64
	if o := m.RoutingOverlay(); o != nil {
		ob = o.MemoryBytes()
	}
	g := c.mx.Counter(MetricRegionOverlayBytes) //nolint:stmaker/metricnames -- region_overlay_bytes is a gauge (set to the serving overlay's resident size), so the _total counter suffix does not apply
	g.Add(ob - g.Value())
	return ob
}

// evictLocked evicts least-recently-used unpinned regions (never the
// just-loaded keep cell) until the loaded set fits the budget. Callers
// hold budgetMu. Evicted cells only lose their registry reference:
// requests that already resolved the summarizer finish on it, and the
// memory goes back when they do.
func (r *Registry) evictLocked(keep *cell) {
	max := r.opts.MaxBytes
	if max <= 0 {
		return
	}
	for r.loadedBytes > max {
		var victim *cell
		for _, c := range r.cells {
			if c == keep || c.pinned || c.state.Load() == nil {
				continue
			}
			if victim == nil || c.lastUse.Load() < victim.lastUse.Load() {
				victim = c
			}
		}
		if victim == nil {
			return // nothing evictable: the keep cell alone busts the budget
		}
		st := victim.state.Swap(nil)
		r.loadedBytes -= st.bytes
		victim.mx.Counter(MetricRegionEvictions).Inc()
		og := victim.mx.Counter(MetricRegionOverlayBytes) //nolint:stmaker/metricnames -- region_overlay_bytes is a gauge (zeroed on eviction), so the _total counter suffix does not apply
		og.Add(-og.Value())
		r.accountLoadedLocked()
		r.log.Info("region evicted",
			"region", victim.name, "bytes", st.bytes, "loaded_bytes", r.loadedBytes)
	}
}

// accountLoadedLocked refreshes the fleet gauges; callers hold budgetMu.
func (r *Registry) accountLoadedLocked() {
	loaded := int64(0)
	for _, c := range r.cells {
		if c.state.Load() != nil {
			loaded++
		}
	}
	g := r.mx.Counter(MetricRegionsLoaded) //nolint:stmaker/metricnames -- regions_loaded is a gauge (set to the loaded-region count), so the _total counter suffix does not apply
	g.Add(loaded - g.Value())
	gb := r.mx.Counter(MetricRegionsLoadedBytes) //nolint:stmaker/metricnames -- regions_loaded_bytes is a gauge (set to the loaded byte total), so the _total counter suffix does not apply
	gb.Add(r.loadedBytes - gb.Value())
}

// Preload loads the named regions eagerly, so readiness does not wait
// for the first request. It stops at the first failure.
func (r *Registry) Preload(names []string) error {
	for _, name := range names {
		if _, err := r.Summarizer(name); err != nil {
			return err
		}
	}
	return nil
}

// PreloadAny loads regions in key order until one succeeds — the
// default boot behaviour: prove at least one region servable, leave the
// rest to lazy loading. It returns the loaded region, or an error
// joining every region's failure when none loads.
func (r *Registry) PreloadAny() (string, error) {
	var errs []error
	for _, name := range r.names {
		if _, err := r.Summarizer(name); err == nil {
			return name, nil
		} else {
			errs = append(errs, err)
		}
	}
	return "", errors.Join(errs...)
}

// TriggerReload starts a background reload of one region's model from
// its model file — the multi-region analogue of the single-region
// retrain trigger. Reloads are single-flight per region; a trigger
// while one is running returns started=false. For a loaded region the
// new model is hot-swapped into the serving summarizer (in-flight
// requests on this and every other region are unaffected); a region
// that is not currently loaded gets a plain cold load. A failed reload
// is logged and counted in the region's region_model_load_failures_total
// and the previous model keeps serving.
func (r *Registry) TriggerReload(name, reason string) (started bool, err error) {
	c, ok := r.cells[name]
	if !ok {
		r.mx.Counter(MetricUnknownRegionRequests).Inc()
		return false, fmt.Errorf("%w: %q", ErrUnknownRegion, name)
	}
	if c.pinned {
		return false, fmt.Errorf("registry: region %q has no model file to reload from", name)
	}
	if !c.reloading.CompareAndSwap(false, true) {
		r.log.Warn("region reload already in progress, trigger dropped",
			"region", name, "reason", reason)
		return false, nil
	}
	r.log.Info("region reload starting", "region", name, "reason", reason)
	go func() {
		defer c.reloading.Store(false)
		t0 := time.Now()
		if err := r.reload(c); err != nil {
			c.mx.Counter(MetricRegionLoadFailures).Inc()
			r.log.Error("region reload failed, previous model keeps serving",
				"region", c.name, "reason", reason, "error", err, "duration", time.Since(t0))
			return
		}
		var version uint64
		if st := c.state.Load(); st != nil {
			version = st.s.Model().Version()
		}
		r.log.Info("region reload complete",
			"region", c.name, "reason", reason, "version", version, "duration", time.Since(t0))
	}()
	return true, nil
}

// reload re-reads the region's model file and publishes it. The slow
// disk read happens outside all locks; the publish is the summarizer's
// own atomic swap, so the serving path never blocks on a reload.
func (r *Registry) reload(c *cell) error {
	st := c.state.Load()
	if st == nil {
		_, err := r.load(c)
		return err
	}
	m, err := stmaker.LoadModelFile(c.modelFile)
	if err != nil {
		return err
	}
	if err := st.s.LoadModel(m); err != nil {
		return err
	}
	// The model file may have grown or shrunk, and the new model's
	// routing overlay may differ from the old one's; re-stat the region's
	// files and re-charge the overlay so the budget tracks reality. A
	// stat failure keeps the old cost (the overlay gauge still reflects
	// the new model).
	ob := c.overlayBytes(m)
	newBytes := st.bytes
	wi, werr := os.Stat(c.worldFile)
	mi, merr := os.Stat(c.modelFile)
	if werr == nil && merr == nil {
		newBytes = wi.Size() + mi.Size() + ob
	}
	r.budgetMu.Lock()
	// Skip the re-accounting if the cell was evicted (or re-loaded)
	// between our snapshot and here; whoever changed it owns the books.
	if c.state.Load() == st {
		c.state.Store(&cellState{s: st.s, bytes: newBytes})
		r.loadedBytes += newBytes - st.bytes
		r.accountLoadedLocked()
		r.evictLocked(c)
	}
	r.budgetMu.Unlock()
	return nil
}

// ReloadLoaded triggers a reload of every currently-loaded region — the
// SIGHUP behaviour in multi-region mode. It returns how many reloads
// started.
func (r *Registry) ReloadLoaded(reason string) int {
	n := 0
	for _, name := range r.names {
		if !r.Loaded(name) {
			continue
		}
		if started, err := r.TriggerReload(name, reason); err == nil && started {
			n++
		}
	}
	return n
}
