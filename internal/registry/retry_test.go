package registry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"stmaker"
)

// TestColdLoadRetriesTransientFailures pins the cold-load retry policy:
// a transient I/O failure (here, a world file that momentarily cannot
// be opened) is retried with backoff and counted, and a later attempt
// over a healed disk succeeds without rebuilding the registry.
func TestColdLoadRetriesTransientFailures(t *testing.T) {
	dir := t.TempDir()
	src, regions := twoRegionDir(t)
	copyRegion(t, src, dir, regions[0].name, "flaky")
	worldFile := filepath.Join(dir, "flaky", "world.json")
	world, err := os.ReadFile(worldFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(worldFile); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Summarizer("flaky"); !errors.Is(err, ErrRegionUnavailable) {
		t.Fatalf("Summarizer over missing world = %v, want ErrRegionUnavailable", err)
	}
	// Two retries: three attempts total, the first not counted as a retry.
	if got := r.RegionMetrics("flaky").Counter(MetricRegionLoadRetries).Value(); got != coldLoadAttempts-1 {
		t.Fatalf("%s = %d, want %d", MetricRegionLoadRetries, got, coldLoadAttempts-1)
	}
	if st := statusOf(t, r, "flaky"); st.State != "failed" {
		t.Fatalf("status after failed load = %q, want failed", st.State)
	}

	// The disk heals; the next request pays a fresh cold load and wins.
	if err := os.WriteFile(worldFile, world, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Summarizer("flaky"); err != nil {
		t.Fatalf("Summarizer after heal: %v", err)
	}
	st := statusOf(t, r, "flaky")
	if st.State != "loaded" || st.ModelVersion == 0 {
		t.Fatalf("status after heal = %+v, want loaded with a model version", st)
	}
}

// TestColdLoadDeterministicFailuresNeverRetry pins the other half of
// the policy: a missing or corrupt model file is a deterministic
// failure, so re-reading the same bytes is pointless and the retry
// counter must stay at zero.
func TestColdLoadDeterministicFailuresNeverRetry(t *testing.T) {
	dir := t.TempDir()
	src, regions := twoRegionDir(t)
	copyRegion(t, src, dir, regions[0].name, "corrupt")
	if err := os.WriteFile(filepath.Join(dir, "corrupt", "model.stm"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Summarizer("corrupt"); !errors.Is(err, stmaker.ErrInvalidModel) {
		t.Fatalf("Summarizer over corrupt model = %v, want ErrInvalidModel", err)
	}
	if got := r.RegionMetrics("corrupt").Counter(MetricRegionLoadRetries).Value(); got != 0 {
		t.Fatalf("%s = %d, want 0 (deterministic failures retry never)", MetricRegionLoadRetries, got)
	}
	if st := statusOf(t, r, "corrupt"); st.State != "failed" {
		t.Fatalf("status = %q, want failed", st.State)
	}
}

// TestStatusReportsPerRegionState pins the /readyz?verbose=1 source:
// cold before any load, loaded with a model version after one.
func TestStatusReportsPerRegionState(t *testing.T) {
	dir, regions := twoRegionDir(t)
	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range r.Status() {
		if st.State != "cold" || st.ModelVersion != 0 {
			t.Fatalf("pre-load status = %+v, want cold", st)
		}
	}
	if _, err := r.Summarizer(regions[0].name); err != nil {
		t.Fatal(err)
	}
	st := statusOf(t, r, regions[0].name)
	if st.State != "loaded" || st.ModelVersion == 0 {
		t.Fatalf("post-load status = %+v, want loaded with a version", st)
	}
	if other := statusOf(t, r, regions[1].name); other.State != "cold" {
		t.Fatalf("untouched region status = %+v, want cold", other)
	}
}

func statusOf(t *testing.T, r *Registry, name string) RegionStatus {
	t.Helper()
	for _, st := range r.Status() {
		if st.Region == name {
			return st
		}
	}
	t.Fatalf("region %q missing from Status()", name)
	return RegionStatus{}
}
