package registry

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stmaker"
	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/metrics"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
	"stmaker/internal/worldio"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func sleepMillis(n int) { time.Sleep(time.Duration(n) * time.Millisecond) }

// region is a generated test region: its on-disk directory plus a trip
// inside it and the summary text the training-time summarizer produced
// for that trip — the ground truth a registry-served summarizer must
// reproduce byte for byte.
type region struct {
	name        string
	trip        *traj.Raw
	wantSummary string
	bbox        geo.BBox
}

// originBeijing and originShanghai anchor the two test cities far
// enough apart that their bounding boxes are disjoint and spatial
// routing is unambiguous.
var (
	originBeijing  = geo.Point{Lat: 39.80, Lng: 116.25}
	originShanghai = geo.Point{Lat: 31.10, Lng: 121.20}
)

// buildRegion trains a small city at the given origin and lays its
// world + model down in dir/<name>/ in the -model-dir layout, with a
// region.json carrying the city's bounding box.
func buildRegion(t testing.TB, dir, name string, origin geo.Point, seed int64) region {
	t.Helper()
	city := simulate.NewCity(simulate.CityOptions{
		Rows: 6, Cols: 6, BlockMeters: 500, Origin: origin, Seed: seed,
	})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: seed + 1})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 80, Seed: seed + 2, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		t.Fatal(err)
	}

	sub := filepath.Join(dir, name)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	wf, err := os.Create(filepath.Join(sub, "world.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := worldio.SaveWorld(wf, city.Graph, city.Landmarks); err != nil {
		t.Fatal(err)
	}
	if err := wf.Close(); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Create(filepath.Join(sub, "model.stm"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SaveModel(mf); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}

	// The manifest's bbox is the landmark extent plus a margin, so every
	// trip sample of this city routes here and nowhere else.
	bbox := geo.EmptyBBox()
	for _, lm := range city.Landmarks.All() {
		bbox.Extend(lm.Pt)
	}
	bbox = bbox.Buffer(2000)
	manifest := fmt.Sprintf(
		`{"region":%q,"bbox":{"minLat":%g,"minLng":%g,"maxLat":%g,"maxLng":%g}}`,
		name, bbox.MinLat, bbox.MinLng, bbox.MaxLat, bbox.MaxLng)
	if err := os.WriteFile(filepath.Join(sub, "region.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 5, Seed: seed + 3, FixedHour: 9})
	trip := trips[0].Raw
	sum, err := s.Summarize(trip)
	if err != nil {
		t.Fatal(err)
	}
	return region{name: name, trip: trip, wantSummary: sum.Text, bbox: bbox}
}

// twoRegionDir lays out a -model-dir with two disjoint cities. The
// result is cached per test binary: training two cities is the
// expensive part of every test here.
var (
	twoOnce    sync.Once
	twoDir     string
	twoRegions []region
	twoErr     error
)

func twoRegionDir(t testing.TB) (string, []region) {
	t.Helper()
	twoOnce.Do(func() {
		dir, err := os.MkdirTemp("", "registry-test-*")
		if err != nil {
			twoErr = err
			return
		}
		twoDir = dir
		twoRegions = []region{
			buildRegion(t, dir, "beijing", originBeijing, 101),
			buildRegion(t, dir, "shanghai", originShanghai, 202),
		}
	})
	if twoErr != nil {
		t.Fatal(twoErr)
	}
	return twoDir, twoRegions
}

func TestMain(m *testing.M) {
	code := m.Run()
	if twoDir != "" {
		os.RemoveAll(twoDir)
	}
	os.Exit(code)
}

func testOptions() Options {
	return Options{Logger: discardLogger(), Metrics: metrics.NewRegistry()}
}

// TestOpenRoutesPerRegion is the multi-region acceptance test: one
// registry over a -model-dir of two cities resolves each region key to
// a model that reproduces that region's training-time summaries — the
// two regions produce different summaries for their own trips, proving
// requests hit the right model.
func TestOpenRoutesPerRegion(t *testing.T) {
	dir, regions := twoRegionDir(t)
	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "beijing" || got[1] != "shanghai" {
		t.Fatalf("Names() = %v, want [beijing shanghai]", got)
	}
	if !r.Multi() {
		t.Error("Multi() = false for two regions")
	}
	if r.DefaultRegion() != "" {
		t.Errorf("DefaultRegion() = %q, want empty for two regions", r.DefaultRegion())
	}
	if r.ReadyCount() != 0 {
		t.Errorf("ReadyCount() = %d before any load, want 0", r.ReadyCount())
	}

	texts := make(map[string]string)
	for _, reg := range regions {
		s, err := r.Summarizer(reg.name)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.Summarize(reg.trip)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Text != reg.wantSummary {
			t.Errorf("region %s summary diverged from training-time summary:\n got %q\nwant %q",
				reg.name, sum.Text, reg.wantSummary)
		}
		texts[reg.name] = sum.Text
	}
	if texts["beijing"] == texts["shanghai"] {
		t.Error("both regions produced the same summary — routing is not region-specific")
	}
	if r.ReadyCount() != 2 {
		t.Errorf("ReadyCount() = %d after loading both, want 2", r.ReadyCount())
	}
}

// TestResolveSpatial routes by geometry: each region's own trip starts
// inside its bounding box and must resolve to it.
func TestResolveSpatial(t *testing.T) {
	dir, regions := twoRegionDir(t)
	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range regions {
		name, ok := r.Resolve(reg.trip.Samples[0].Pt)
		if !ok || name != reg.name {
			t.Errorf("Resolve(%v) = %q, %v; want %q", reg.trip.Samples[0].Pt, name, ok, reg.name)
		}
	}
	if name, ok := r.Resolve(geo.Point{Lat: 0, Lng: 0}); ok {
		t.Errorf("Resolve(mid-ocean) = %q, want no region", name)
	}
}

func TestUnknownRegion(t *testing.T) {
	dir, _ := twoRegionDir(t)
	opts := testOptions()
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Summarizer("atlantis"); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("Summarizer(atlantis) err = %v, want ErrUnknownRegion", err)
	}
	if got := opts.Metrics.Counter(MetricUnknownRegionRequests).Value(); got != 1 {
		t.Errorf("unknown-region counter = %d, want 1", got)
	}
}

// TestLoadErrorClasses pins the error taxonomy the server's status map
// depends on: missing model file vs corrupt model file vs missing
// world, all on known regions.
func TestLoadErrorClasses(t *testing.T) {
	dir := t.TempDir()
	src, regions := twoRegionDir(t)
	// A region with a world but no model at all.
	copyRegion(t, src, dir, regions[0].name, "nomodel")
	if err := os.Remove(filepath.Join(dir, "nomodel", "model.stm")); err != nil {
		t.Fatal(err)
	}
	// A region whose model file is garbage.
	copyRegion(t, src, dir, regions[0].name, "corrupt")
	if err := os.WriteFile(filepath.Join(dir, "corrupt", "model.stm"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A region whose world file is unreadable garbage.
	copyRegion(t, src, dir, regions[0].name, "badworld")
	if err := os.WriteFile(filepath.Join(dir, "badworld", "world.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		region  string
		wantErr error
	}{
		{"nomodel", stmaker.ErrModelNotFound},
		{"corrupt", stmaker.ErrInvalidModel},
		{"badworld", ErrRegionUnavailable},
	} {
		if _, err := r.Summarizer(tc.region); !errors.Is(err, tc.wantErr) {
			t.Errorf("Summarizer(%s) err = %v, want %v", tc.region, err, tc.wantErr)
		}
	}
}

// copyRegion clones a region directory under a new name, rewriting the
// manifest's region field to match.
func copyRegion(t testing.TB, srcDir, dstDir, srcName, dstName string) {
	t.Helper()
	sub := filepath.Join(dstDir, dstName)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"world.json", "model.stm"} {
		data, err := os.ReadFile(filepath.Join(srcDir, srcName, f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, f), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The copy keeps no bbox: these synthetic regions must not shadow the
	// originals in spatial routing.
	manifest := fmt.Sprintf(`{"region":%q}`, dstName)
	if err := os.WriteFile(filepath.Join(sub, "region.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionAndColdReload is the budget acceptance test: with a
// budget that fits only one region, loading the second evicts the
// first, and re-loading the evicted region cold from disk reproduces
// its summaries byte-identically.
func TestEvictionAndColdReload(t *testing.T) {
	dir, regions := twoRegionDir(t)
	size := regionBytes(t, dir, regions[0].name)
	if s2 := regionBytes(t, dir, regions[1].name); s2 > size {
		size = s2
	}
	opts := testOptions()
	// Budget: one region fits, two do not.
	opts.MaxBytes = size + size/2
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	s0, err := r.Summarizer(regions[0].name)
	if err != nil {
		t.Fatal(err)
	}
	first0, err := s0.Summarize(regions[0].trip)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Loaded(regions[0].name) {
		t.Fatal("region 0 not loaded after use")
	}

	// Loading region 1 must push region 0 out.
	if _, err := r.Summarizer(regions[1].name); err != nil {
		t.Fatal(err)
	}
	if r.Loaded(regions[0].name) {
		t.Error("region 0 still loaded past the budget")
	}
	if !r.Loaded(regions[1].name) {
		t.Error("region 1 not loaded")
	}

	// The summarizer resolved before the eviction keeps serving: an
	// in-flight request never observes its model vanishing.
	if _, err := s0.Summarize(regions[0].trip); err != nil {
		t.Errorf("evicted-but-held summarizer failed: %v", err)
	}

	// Cold re-load round trip: the evicted region loads again from disk
	// and its summaries are byte-identical to the pre-eviction ones.
	s0again, err := r.Summarizer(regions[0].name)
	if err != nil {
		t.Fatal(err)
	}
	if s0again == s0 {
		t.Error("expected a fresh summarizer after eviction, got the old pointer")
	}
	again, err := s0again.Summarize(regions[0].trip)
	if err != nil {
		t.Fatal(err)
	}
	if again.Text != first0.Text {
		t.Errorf("cold re-load summary diverged:\n got %q\nwant %q", again.Text, first0.Text)
	}
	if r.Loaded(regions[1].name) && r.Loaded(regions[0].name) {
		t.Error("both regions loaded past the budget after round trip")
	}
	evicted := 0
	for _, snap := range r.RegionSnapshots() {
		evicted += int(snap.Counters[MetricRegionEvictions])
	}
	if evicted < 2 {
		t.Errorf("eviction counters sum to %d, want at least 2", evicted)
	}
}

func regionBytes(t testing.TB, dir, name string) int64 {
	t.Helper()
	var total int64
	for _, f := range []string{"world.json", "model.stm"} {
		fi, err := os.Stat(filepath.Join(dir, name, f))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestConcurrentSummarizeAndReload exercises the acceptance scenario
// under -race: sustained summarize traffic on both regions while one
// region's model is reloaded — zero failures anywhere, on the reloading
// region and on the other one.
func TestConcurrentSummarizeAndReload(t *testing.T) {
	dir, regions := twoRegionDir(t)
	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Warm both regions so the loop below measures serving, not loading.
	for _, reg := range regions {
		if _, err := r.Summarizer(reg.name); err != nil {
			t.Fatal(err)
		}
	}

	const workers, iters = 4, 15
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(regions)*iters+1)
	for w := 0; w < workers; w++ {
		for _, reg := range regions {
			wg.Add(1)
			go func(reg region) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					s, err := r.Summarizer(reg.name)
					if err != nil {
						errs <- fmt.Errorf("region %s resolve: %w", reg.name, err)
						return
					}
					sum, err := s.Summarize(reg.trip)
					if err != nil {
						errs <- fmt.Errorf("region %s summarize: %w", reg.name, err)
						return
					}
					if sum.Text != reg.wantSummary {
						errs <- fmt.Errorf("region %s summary changed under reload", reg.name)
						return
					}
				}
			}(reg)
		}
	}
	// Hammer reloads of region 0 while traffic flows on both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := r.TriggerReload(regions[0].name, "test"); err != nil {
				errs <- fmt.Errorf("reload: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Reloads publish the same model file, so summaries stay identical;
	// at least one must have completed and bumped the swap counter.
	waitForReloadIdle(t, r, regions[0].name)
	s, err := r.Summarizer(regions[0].name)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Counter(stmaker.MetricModelSwaps).Value(); got < 2 {
		t.Errorf("model_swaps_total = %d after reloads, want >= 2", got)
	}
}

func waitForReloadIdle(t testing.TB, r *Registry, name string) {
	t.Helper()
	c := r.cells[name]
	for i := 0; i < 1000; i++ {
		if !c.reloading.Load() {
			return
		}
		sleepMillis(5)
	}
	t.Fatal("reload never finished")
}

// TestStaticRegistry covers the single-region wrapper: readiness tracks
// the summarizer's trained state, and the cell is never evictable.
func TestStaticRegistry(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 4, Cols: 4, Seed: 9})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	r := NewStatic(DefaultRegionName, s, testOptions())
	if r.Multi() {
		t.Error("static registry claims Multi")
	}
	if r.DefaultRegion() != DefaultRegionName {
		t.Errorf("DefaultRegion() = %q", r.DefaultRegion())
	}
	if r.ReadyCount() != 0 {
		t.Error("untrained static registry claims ready")
	}
	got, err := r.Summarizer(DefaultRegionName)
	if err != nil || got != s {
		t.Fatalf("Summarizer() = %v, %v; want the wrapped summarizer", got, err)
	}
	if _, err := r.TriggerReload(DefaultRegionName, "test"); err == nil {
		t.Error("static cell accepted a file reload")
	}
}

// TestOpenRejects pins discovery-time validation.
func TestOpenRejects(t *testing.T) {
	t.Run("empty dir", func(t *testing.T) {
		if _, err := Open(t.TempDir(), testOptions()); !errors.Is(err, ErrNoRegions) {
			t.Errorf("err = %v, want ErrNoRegions", err)
		}
	})
	t.Run("manifest region mismatch", func(t *testing.T) {
		dir := t.TempDir()
		sub := filepath.Join(dir, "a")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "region.json"), []byte(`{"region":"b"}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, testOptions()); err == nil {
			t.Error("manifest claiming another region accepted")
		}
	})
	t.Run("invalid dir name", func(t *testing.T) {
		dir := t.TempDir()
		sub := filepath.Join(dir, "Bad.Name")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "region.json"), []byte(`{}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, testOptions()); err == nil {
			t.Error("invalid region directory name accepted")
		}
	})
	t.Run("non-region dirs skipped", func(t *testing.T) {
		src, regions := twoRegionDir(t)
		dir := t.TempDir()
		copyRegion(t, src, dir, regions[0].name, "only")
		// A stray directory without manifest or world file is not a region.
		if err := os.MkdirAll(filepath.Join(dir, "logs"), 0o755); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Names(); len(got) != 1 || got[0] != "only" {
			t.Errorf("Names() = %v, want [only]", got)
		}
		if r.DefaultRegion() != "only" {
			t.Errorf("DefaultRegion() = %q, want the sole region", r.DefaultRegion())
		}
	})
}

// TestPreload covers the boot-time loading helpers.
func TestPreload(t *testing.T) {
	dir, regions := twoRegionDir(t)
	r, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	name, err := r.PreloadAny()
	if err != nil {
		t.Fatal(err)
	}
	if name != regions[0].name {
		t.Errorf("PreloadAny loaded %q, want first region %q", name, regions[0].name)
	}
	if r.ReadyCount() != 1 {
		t.Errorf("ReadyCount = %d after PreloadAny, want 1", r.ReadyCount())
	}
	if err := r.Preload(r.Names()); err != nil {
		t.Fatal(err)
	}
	if r.ReadyCount() != 2 {
		t.Errorf("ReadyCount = %d after Preload(all), want 2", r.ReadyCount())
	}
	if err := r.Preload([]string{"atlantis"}); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("Preload(unknown) err = %v, want ErrUnknownRegion", err)
	}
}
