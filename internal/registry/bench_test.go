package registry

import "testing"

// BenchmarkRegistryLookup measures the serving-path cost of resolving a
// loaded region to its summarizer — the per-request overhead multi-
// region mode adds on top of single-region serving. It must stay a map
// lookup plus an atomic load and an LRU stamp: nanoseconds, no locks.
func BenchmarkRegistryLookup(b *testing.B) {
	dir, regions := twoRegionDir(b)
	r, err := Open(dir, Options{Logger: discardLogger()})
	if err != nil {
		b.Fatal(err)
	}
	for _, reg := range regions {
		if _, err := r.Summarizer(reg.name); err != nil {
			b.Fatal(err)
		}
	}
	name := regions[0].name
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Summarizer(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryResolve measures spatial routing: bounding-box
// lookup of a trajectory's first fix.
func BenchmarkRegistryResolve(b *testing.B) {
	dir, regions := twoRegionDir(b)
	r, err := Open(dir, Options{Logger: discardLogger()})
	if err != nil {
		b.Fatal(err)
	}
	pt := regions[1].trip.Samples[0].Pt
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Resolve(pt); !ok {
			b.Fatal("no region resolved")
		}
	}
}
