package lint

import (
	"go/ast"
	"go/types"
)

// atomiccellCheck guards the model-swap discipline: every publication
// of a *Model (the process-wide cell in Summarizer, the per-region
// cells in internal/registry) goes through a designated publish helper
// that stamps the version, updates the gauges, and holds the right
// locks. A raw .Store/.Swap/.CompareAndSwap on one of those
// atomic.Pointer cells anywhere else bypasses that discipline — the
// swap "works" but versions stop advancing and metrics lie.
type atomiccellCheck struct{}

func (atomiccellCheck) name() string { return "atomiccell" }

// atomicCellTargets names the guarded atomic.Pointer element types and
// the only functions allowed to hit them directly. Package paths match
// by suffix so golden fixtures loaded under short paths participate.
var atomicCellTargets = []struct {
	pkgSuffix string // package declaring the element type
	typeName  string
	allowPkg  string   // package whose functions may Store/Swap directly
	allowFns  []string // the designated publish helpers
}{
	{"stmaker", "Model", "stmaker", []string{"publish"}},
	{"internal/registry", "cellState", "internal/registry", []string{"NewStatic", "load", "evictLocked", "reload"}},
}

func (c atomiccellCheck) pkg(r *reporter, p *Package) {
	for _, fd := range p.Funcs {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			op := sel.Sel.Name
			if op != "Store" && op != "Swap" && op != "CompareAndSwap" {
				return true
			}
			elem := atomicPointerElem(p, sel.X)
			if elem == nil {
				return true
			}
			for _, tgt := range atomicCellTargets {
				if !isNamed(elem, tgt.pkgSuffix, tgt.typeName) {
					continue
				}
				if allowedPublisher(p, fd, tgt.allowPkg, tgt.allowFns) {
					return true
				}
				r.report(p, c.name(), call.Pos(),
					"direct .%s on atomic.Pointer[%s] outside its publish helper(s) %v: route the swap through them so the version/metrics discipline holds",
					op, tgt.typeName, tgt.allowFns)
				return true
			}
			return true
		})
	}
}

func (atomiccellCheck) finish(*reporter) {}

// atomicPointerElem returns the element type T when expr has type
// (*)sync/atomic.Pointer[T], else nil.
func atomicPointerElem(p *Package, expr ast.Expr) types.Type {
	t := p.Info.Types[expr].Type
	n := namedType(t)
	if n == nil {
		return nil
	}
	obj := n.Obj()
	if obj == nil || obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil
	}
	args := n.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	return args.At(0)
}

// allowedPublisher reports whether fd is one of the designated publish
// helpers for a guarded cell.
func allowedPublisher(p *Package, fd *ast.FuncDecl, allowPkg string, allowFns []string) bool {
	if !pkgPathHasSuffix(p.Path, allowPkg) {
		return false
	}
	for _, name := range allowFns {
		if fd.Name.Name == name {
			return true
		}
	}
	return false
}
