package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for conversions, builtins and calls through plain function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// namedType unwraps pointers and aliases down to the *types.Named beneath
// t, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.typeName. pkgPath matches on suffix so module-qualified paths
// ("stmaker/internal/geo") and bare ones ("internal/geo") both work.
func isNamed(t types.Type, pkgPath, typeName string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// recvIsNamed reports whether fn is a method whose receiver (possibly a
// pointer) is the named type pkgPath.typeName.
func recvIsNamed(fn *types.Func, pkgPath, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamed(sig.Recv().Type(), pkgPath, typeName)
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (exact path match; used for stdlib functions like context.Background).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// identWords splits an identifier into lower-cased words at underscores
// and camelCase boundaries: "refLatDeg" -> ["ref", "lat", "deg"].
func identWords(name string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range name {
		switch {
		case r == '_':
			flush()
		case r >= 'A' && r <= 'Z':
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}
