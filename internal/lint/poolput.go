package lint

import (
	"go/ast"
	"go/token"
)

// poolputCheck flags a function that calls sync.Pool.Get but never calls
// Put: the pooled object leaks on every call and the pool degenerates to
// a slow allocator. Functions that hand the object to their caller behind
// an acquire/release pair keep the Get suppressed with a comment naming
// the releasing function — the suppression is the documentation.
type poolputCheck struct{}

func (poolputCheck) name() string { return "poolput" }

func (c poolputCheck) pkg(r *reporter, p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var gets []token.Pos
			hasPut := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || !recvIsNamed(fn, "sync", "Pool") {
					return true
				}
				switch fn.Name() {
				case "Get":
					gets = append(gets, call.Pos())
				case "Put":
					hasPut = true
				}
				return true
			})
			if hasPut {
				continue
			}
			for _, pos := range gets {
				r.report(p, c.name(), pos,
					"sync.Pool.Get with no matching Put on any return path of %s; the pooled object leaks (pair it with Put, or suppress if a release helper owns the Put)", fd.Name.Name)
			}
		}
	}
}

func (poolputCheck) finish(*reporter) {}
