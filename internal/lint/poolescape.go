package lint

import (
	"go/ast"
	"go/types"
)

// poolescapeCheck guards the allocation-diet contract from PR 8: a
// value obtained from sync.Pool.Get — or any slice/map/struct memory it
// backs, tracked through the dataflow layer — must not outlive the
// request that Put it back. In any function that calls Put, a tainted
// value must not be:
//
//   - returned (the caller would read recycled memory),
//   - stored to a heap-reachable location (a package-level variable, or
//     anything reachable from a parameter/receiver),
//   - captured by a goroutine or sent on a channel (the consumer races
//     the Put).
//
// Functions without a Put are out of scope: either they never touch a
// pool, or they are acquire-style helpers whose Get is poolput's
// business (and is suppressed there with a comment naming the paired
// release helper).
type poolescapeCheck struct{}

func (poolescapeCheck) name() string { return "poolescape" }

func (c poolescapeCheck) pkg(r *reporter, p *Package) {
	for _, fd := range p.Funcs {
		if !hasPoolPut(p, fd.Body) {
			continue
		}
		seeds := 0
		fl := newFlow(p, fd.Body, func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			fn := calleeFunc(p, call)
			if fn != nil && fn.Name() == "Get" && recvIsNamed(fn, "sync", "Pool") {
				return true
			}
			return false
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(p, call); fn != nil && fn.Name() == "Get" && recvIsNamed(fn, "sync", "Pool") {
					seeds++
				}
			}
			return true
		})
		if seeds == 0 {
			continue
		}
		c.sinks(r, p, fd, fl)
	}
}

func (poolescapeCheck) finish(*reporter) {}

// hasPoolPut reports whether the body calls sync.Pool.Put anywhere.
func hasPoolPut(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(p, call); fn != nil && fn.Name() == "Put" && recvIsNamed(fn, "sync", "Pool") {
				found = true
			}
		}
		return !found
	})
	return found
}

// sinks walks the function body for escapes of tainted memory. Return
// statements inside nested closures are the closure's own, not the
// function's, so the walk tracks closure depth.
func (c poolescapeCheck) sinks(r *reporter, p *Package, fd *ast.FuncDecl, fl *flow) {
	var walk func(n ast.Node, inClosure bool)
	walk = func(n ast.Node, inClosure bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				walk(st.Body, true)
				return false
			case *ast.ReturnStmt:
				if inClosure {
					return true
				}
				for _, res := range st.Results {
					if fl.taintedExpr(res) && taintableType(p.Info.Types[res].Type) {
						r.report(p, c.name(), res.Pos(),
							"%s returns memory backed by a pooled object that this function Puts back; the caller would read recycled scratch (copy it, or move the Put to a release helper)",
							fd.Name.Name)
					}
				}
			case *ast.GoStmt:
				if fl.taintedExpr(st.Call.Fun) {
					r.report(p, c.name(), st.Call.Pos(),
						"goroutine captures a pooled object that %s Puts back; the goroutine races the Put and reads recycled scratch", fd.Name.Name)
					return true
				}
				for _, a := range st.Call.Args {
					if fl.taintedExpr(a) && taintableType(p.Info.Types[a].Type) {
						r.report(p, c.name(), a.Pos(),
							"goroutine receives memory backed by a pooled object that %s Puts back; the goroutine races the Put and reads recycled scratch", fd.Name.Name)
					}
				}
			case *ast.SendStmt:
				if fl.taintedExpr(st.Value) && taintableType(p.Info.Types[st.Value].Type) {
					r.report(p, c.name(), st.Value.Pos(),
						"channel send of memory backed by a pooled object that %s Puts back; the receiver races the Put and reads recycled scratch", fd.Name.Name)
				}
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					rhs := ast.Expr(nil)
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					} else if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
					if rhs == nil || !fl.taintedExpr(rhs) {
						continue
					}
					if tgt := escapeTarget(p, fd, fl, lhs); tgt != "" {
						r.report(p, c.name(), lhs.Pos(),
							"store of memory backed by a pooled object into %s, which outlives the Put in %s; the reader would see recycled scratch", tgt, fd.Name.Name)
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// escapeTarget classifies an assignment target as heap-reachable from
// outside the function: a package-level variable, or storage rooted at
// a parameter or receiver (which the caller retains). Stores into local
// variables — including fields of locals — are handled by taint
// propagation instead, and stores into already-tainted storage (the
// pooled object's own fields) are the pool's normal reuse pattern.
func escapeTarget(p *Package, fd *ast.FuncDecl, fl *flow, lhs ast.Expr) string {
	root := rootIdentObj(p, lhs)
	v, ok := root.(*types.Var)
	if !ok {
		return ""
	}
	// The tainted-or-local cases are propagation's business, but a
	// package-level variable always escapes — even a plain `global = x`
	// assignment (taint propagation marks it too, which is why this
	// check runs before the local-rebind short-circuit).
	if v.Parent() == p.Types.Scope() {
		return "package-level variable " + v.Name()
	}
	if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
		return "" // local rebind; propagation tracks it
	}
	if fl.taintedObj(v) && !isParamOrRecv(p, fd, v) {
		return "" // store into the pooled object's own (local) storage
	}
	// A parameter or receiver only exposes the store when the written
	// location is reached through shared storage (a pointer, interface,
	// or slice/map element) — writing a field of a value-typed parameter
	// mutates a private copy.
	if isParamOrRecv(p, fd, v) && sharedStorage(p, lhs) {
		return "caller-visible storage rooted at parameter " + v.Name()
	}
	return ""
}

// isParamOrRecv reports whether v is one of fd's parameters or its
// receiver.
func isParamOrRecv(p *Package, fd *ast.FuncDecl, v *types.Var) bool {
	def, _ := p.Info.Defs[fd.Name].(*types.Func)
	if def == nil {
		return false
	}
	sig, _ := def.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	if sig.Recv() == v {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}
