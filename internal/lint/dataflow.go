package lint

import (
	"go/ast"
	"go/types"
)

// This file is the engine's intra-procedural dataflow layer: a small
// taint/alias analysis over one function body, built on go/types only
// (no golang.org/x/tools SSA). A check seeds it with a predicate over
// expressions ("this is a sync.Pool.Get call", "this reads a slice out
// of a Model") and the layer propagates to a fixpoint through the
// aliasing constructs Go actually has: plain and tuple assignments,
// short variable declarations, range loops, selector/index/slice/deref
// steps, address-of, type assertions, composite literals, append, and
// closure capture. Checks then ask taintedExpr at their sinks.
//
// The analysis is deliberately intra-procedural and conservative in
// both directions where it keeps the sweep quiet:
//
//   - A call taints its result only when the callee can plausibly hand
//     back memory reachable from a tainted argument: a method on a
//     tainted receiver, a call passing &tainted (the "FooInto(&buf)"
//     convention of internal/feature), or a bytes/strings function —
//     the stdlib families that return sub-slices of their input. A
//     plain value argument (a slice passed by value to a pure
//     function) does not taint the result; that is what keeps
//     Summarizer.summarizeSymbolic's fresh Summary clean even though
//     the pooled matrix flows through SelectForPart.
//   - Taint only sticks to objects whose type can actually carry a
//     reference (taintableType); an int length read out of a pooled
//     buffer is not an escape.
type flow struct {
	p       *Package
	seed    func(ast.Expr) bool
	tainted map[types.Object]bool
}

// newFlow runs the fixpoint over body and returns the resulting flow.
// seed marks the expressions where taint originates.
func newFlow(p *Package, body ast.Node, seed func(ast.Expr) bool) *flow {
	fl := &flow{p: p, seed: seed, tainted: make(map[types.Object]bool)}
	// Each pass can extend the tainted set by one alias step; iterate to
	// a fixpoint. The iteration cap only guards against a pathological
	// propagation bug — real bodies converge in a handful of passes.
	for i := 0; i < 64; i++ {
		if !fl.propagate(body) {
			break
		}
	}
	return fl
}

// taintedObj reports whether the analysis marked o as aliasing seeded
// memory.
func (fl *flow) taintedObj(o types.Object) bool { return o != nil && fl.tainted[o] }

// taintableType reports whether a value of type t can carry a reference
// to seeded memory: pointers, slices, maps, channels, funcs, non-error
// interfaces, and aggregates containing any of those. Basic types
// (including string — always copied or immutable) cannot.
func taintableType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Interface:
		// error results travel everywhere; tainting them would flag
		// every `return err` in a pooled function.
		return !types.Identical(t, types.Universe.Lookup("error").Type())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if taintableType(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return taintableType(u.Elem())
	}
	return false
}

// aliasPassthrough reports whether fn is a stdlib function known to
// return memory aliasing its arguments (bytes.TrimSuffix and friends).
func aliasPassthrough(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "bytes", "strings":
		return true
	}
	return false
}

// taintedExpr reports whether e evaluates to (or contains a reference
// to) seeded memory under the current tainted set.
func (fl *flow) taintedExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if fl.seed(e) {
		return true
	}
	// A value whose type cannot carry a reference is never tainted, no
	// matter where it was read from: `x := buf[i]` copies a float64 out
	// of seeded memory, it does not alias it. Without this filter an
	// element copy through an index expression would taint its target
	// (taintedExpr(IndexExpr) recurses into the base) and falsely flag
	// scratch buffers that only ever receive scalar copies.
	if tv, ok := fl.p.Info.Types[e]; ok && tv.Type != nil && !taintableType(tv.Type) {
		return false
	}
	switch ex := e.(type) {
	case *ast.Ident:
		if o := fl.p.Info.Uses[ex]; o != nil {
			return fl.tainted[o]
		}
		return fl.tainted[fl.p.Info.Defs[ex]]
	case *ast.ParenExpr:
		return fl.taintedExpr(ex.X)
	case *ast.SelectorExpr:
		// A field read of a tainted value aliases it. A qualified
		// identifier (pkg.Name) roots at a *types.PkgName and is never
		// tainted via X.
		if id, ok := ex.X.(*ast.Ident); ok {
			if _, isPkg := fl.p.Info.Uses[id].(*types.PkgName); isPkg {
				return false
			}
		}
		return fl.taintedExpr(ex.X)
	case *ast.IndexExpr:
		return fl.taintedExpr(ex.X)
	case *ast.SliceExpr:
		return fl.taintedExpr(ex.X)
	case *ast.StarExpr:
		return fl.taintedExpr(ex.X)
	case *ast.UnaryExpr:
		return fl.taintedExpr(ex.X)
	case *ast.TypeAssertExpr:
		return fl.taintedExpr(ex.X)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if fl.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.FuncLit:
		// A closure is tainted if it captures a tainted object: handing
		// the closure around hands the object around.
		captured := false
		ast.Inspect(ex.Body, func(n ast.Node) bool {
			if captured {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && fl.tainted[fl.p.Info.Uses[id]] {
				captured = true
			}
			return !captured
		})
		return captured
	case *ast.CallExpr:
		return fl.taintedCall(ex)
	}
	return false
}

// taintedCall decides whether a call's results alias seeded memory.
func (fl *flow) taintedCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// append(tainted, ...) and append(s, tainted...) both alias.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := fl.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name != "append" {
				return false
			}
			for _, a := range call.Args {
				if fl.taintedExpr(a) {
					return true
				}
			}
			return false
		}
	}
	// Method on a tainted receiver: scratch.input(n), eb.buf.Bytes().
	// (A qualified pkg.Func call roots at a PkgName, which is never
	// tainted, so it falls through harmlessly.)
	if sel, ok := fun.(*ast.SelectorExpr); ok && fl.taintedExpr(sel.X) {
		return true
	}
	fn := calleeFunc(fl.p, call)
	passthrough := aliasPassthrough(fn)
	for _, a := range call.Args {
		if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op.String() == "&" && fl.taintedExpr(u.X) {
			return true // FooInto(&tainted, ...) hands the callee tainted storage
		}
		if passthrough && fl.taintedExpr(a) {
			return true // bytes/strings results sub-slice their input
		}
	}
	return false
}

// rootIdentObj walks selector/index/slice/star/paren steps down to the
// root identifier of an lvalue chain and resolves its object, or nil.
func rootIdentObj(p *Package, e ast.Expr) types.Object {
	for {
		switch ex := e.(type) {
		case *ast.Ident:
			if o := p.Info.Uses[ex]; o != nil {
				return o
			}
			return p.Info.Defs[ex]
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.IndexExpr:
			e = ex.X
		case *ast.SliceExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.ParenExpr:
			e = ex.X
		default:
			return nil
		}
	}
}

// taint marks o tainted if its type can carry a reference, reporting
// whether the set grew.
func (fl *flow) taint(o types.Object) bool {
	if o == nil || fl.tainted[o] || !taintableType(o.Type()) {
		return false
	}
	fl.tainted[o] = true
	return true
}

// taintLHS handles taint arriving at an assignment target: a plain
// identifier becomes tainted itself; a field or element store into a
// local variable taints that variable (resp.Data = matrix makes resp
// carry the alias).
func (fl *flow) taintLHS(lhs ast.Expr) bool {
	switch ex := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if o := fl.p.Info.Defs[ex]; o != nil {
			return fl.taint(o)
		}
		return fl.taint(fl.p.Info.Uses[ex])
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return fl.taint(rootIdentObj(fl.p, lhs))
	}
	return false
}

// propagate runs one pass over the body, reporting whether the tainted
// set grew.
func (fl *flow) propagate(body ast.Node) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				// x, y := call() — taint every target that can carry it.
				if fl.taintedExpr(st.Rhs[0]) {
					for _, lhs := range st.Lhs {
						if fl.taintLHS(lhs) {
							changed = true
						}
					}
				}
				return true
			}
			for i, rhs := range st.Rhs {
				if i < len(st.Lhs) && fl.taintedExpr(rhs) {
					if fl.taintLHS(st.Lhs[i]) {
						changed = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					rhs := ast.Expr(nil)
					if len(vs.Values) == 1 && len(vs.Names) > 1 {
						rhs = vs.Values[0]
					} else if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					if rhs != nil && fl.taintedExpr(rhs) {
						if fl.taint(fl.p.Info.Defs[name]) {
							changed = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			if fl.taintedExpr(st.X) {
				for _, v := range []ast.Expr{st.Key, st.Value} {
					if v == nil {
						continue
					}
					if fl.taintLHS(v) {
						changed = true
					}
				}
			}
		}
		return true
	})
	return changed
}
