package lint

import (
	"go/ast"
	"strings"
)

// ctxruleCheck enforces context discipline on the concurrent serving
// path:
//
//  1. context.Context must be the first parameter of any function that
//     takes one (Go convention; mixed orders make call sites misreadable
//     and defeat grep-based audits of cancellation plumbing).
//  2. internal/* library code must not mint root contexts with
//     context.Background or context.TODO — a root context silently
//     detaches the work from the caller's deadline and cancellation, which
//     is exactly what the summarize-while-scrape path must never do. Root
//     contexts belong in main functions and tests.
type ctxruleCheck struct{}

func (ctxruleCheck) name() string { return "ctxrule" }

func (c ctxruleCheck) pkg(r *reporter, p *Package) {
	internal := strings.Contains(p.Path, "/internal/")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				c.checkParams(r, p, n)
			case *ast.CallExpr:
				if !internal {
					return true
				}
				fn := calleeFunc(p, n)
				if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					r.report(p, c.name(), n.Pos(),
						"context.%s creates a root context inside internal/* library code; accept a context.Context from the caller instead", fn.Name())
				}
			}
			return true
		})
	}
}

func (ctxruleCheck) finish(*reporter) {}

// checkParams flags a context.Context parameter anywhere but first.
func (c ctxruleCheck) checkParams(r *reporter, p *Package, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if idx > 0 && isNamed(p.Info.TypeOf(field.Type), "context", "Context") {
			r.report(p, c.name(), field.Pos(),
				"context.Context must be the first parameter")
		}
		idx += width
	}
}
