package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floateqCheck flags == and != between floating-point operands. After a
// chain of haversines and projections two "equal" coordinates differ in
// the last ulp, so exact comparison is almost always a dormant bug; the
// rare legitimate cases (an exact zero used as an "unset" sentinel, a
// value assigned verbatim and never recomputed) are annotated
// //lint:allow floateq with a justification. Comparisons where both
// operands are compile-time constants are fine: the compiler folds them.
type floateqCheck struct{}

func (floateqCheck) name() string { return "floateq" }

func (c floateqCheck) pkg(r *reporter, p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
				return true
			}
			if p.Info.Types[be.X].Value != nil && p.Info.Types[be.Y].Value != nil {
				return true // constant-folded at compile time
			}
			r.report(p, c.name(), be.OpPos,
				"floating-point %s comparison is exact; compare with a tolerance, or annotate //lint:allow floateq if exact equality is intended", be.Op)
			return true
		})
	}
}

func (floateqCheck) finish(*reporter) {}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
