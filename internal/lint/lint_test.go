package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts `// want "regexp"` annotations from fixture sources.
// The quoted text is a regular expression matched against the message of
// a diagnostic reported on the same line.
var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// golden runs the named checks over one fixture package and verifies the
// diagnostics against the fixture's // want annotations: every want must
// be matched by a diagnostic on its line, and every diagnostic must be
// claimed by a want.
func golden(t *testing.T, dir, importPath string, checks []string, docFile, apiFile string) {
	t.Helper()
	fixture := filepath.Join("testdata", "src", dir)
	pkg, err := LoadDir(fixture, importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", fixture, err)
	}
	opts := Options{Checks: checks}
	if docFile != "" {
		opts.DocPath = filepath.Join(fixture, docFile)
	}
	if apiFile != "" {
		opts.APIDocPath = filepath.Join(fixture, apiFile)
	}
	diags, err := Run([]*Package{pkg}, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	addWants := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(path), i+1)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			addWants(filepath.Join(fixture, e.Name()))
		}
	}

	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, ".go") {
			continue // doc-side diagnostics are asserted in dedicated tests
		}
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Msg) {
				w.matched, claimed = true, true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Check, d.Msg)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func TestMetricNames(t *testing.T) {
	golden(t, "metricnames", "stmaker/internal/lintfixture/metricnames",
		[]string{"metricnames"}, "OBSERVABILITY.md", "")
}

// TestMetricNamesDocGhost covers the doc-side direction of the two-way
// check: names documented in the catalogue but absent from code are
// reported at their catalogue line. Ghost expectations live here rather
// than in // want comments because markdown carries none.
func TestMetricNamesDocGhost(t *testing.T) {
	fixture := filepath.Join("testdata", "src", "metricnames")
	pkg, err := LoadDir(fixture, "stmaker/internal/lintfixture/metricnames")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{
		Checks:  []string{"metricnames"},
		DocPath: filepath.Join(fixture, "OBSERVABILITY.md"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var ghosts []string
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, ".md") {
			ghosts = append(ghosts, d.Msg)
		}
	}
	if len(ghosts) != 1 || !strings.Contains(ghosts[0], `"ghost_metric_total"`) {
		t.Errorf("want exactly one ghost-metric diagnostic for ghost_metric_total, got %q", ghosts)
	}
}

func TestLatLng(t *testing.T) {
	golden(t, "latlng", "stmaker/internal/lintfixture/latlng", []string{"latlng"}, "", "")
}

func TestFloatEq(t *testing.T) {
	golden(t, "floateq", "stmaker/internal/lintfixture/floateq", []string{"floateq"}, "", "")
}

func TestCtxRule(t *testing.T) {
	golden(t, "ctxrule", "stmaker/internal/lintfixture/ctxrule", []string{"ctxrule"}, "", "")
}

// TestCtxRuleOutsideInternal verifies the Background/TODO rule only bites
// internal/* packages: the same fixture loaded under a non-internal
// import path reports no root-context diagnostics (the parameter-order
// rule still applies everywhere, so run only files without those).
func TestCtxRuleOutsideInternal(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ctxok"), "stmaker/lintfixture/ctxok")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"ctxrule"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("non-internal package should be allowed context.Background, got %v", diags)
	}
}

func TestPoolPut(t *testing.T) {
	golden(t, "poolput", "stmaker/internal/lintfixture/poolput", []string{"poolput"}, "", "")
}

// TestModelMut covers the Model-immutability dataflow check: direct and
// nested field writes, element stores, alias chains through locals and
// range loops, map deletes, and pointer-deref overwrites are flagged;
// value-chain copies, builders, and suppressed sites are not.
func TestModelMut(t *testing.T) {
	golden(t, "modelmut", "stmaker", []string{"modelmut"}, "", "")
}

// TestPoolEscape covers pooled-memory escape tracking: returns, global
// stores, goroutine captures, channel sends, and caller-visible stores
// through parameters are flagged, including through bytes.* passthrough
// and struct-field aliasing; copies and scalar reads stay clean.
func TestPoolEscape(t *testing.T) {
	golden(t, "poolescape", "stmaker/internal/lintfixture/poolescape", []string{"poolescape"}, "", "")
}

// TestAtomicCell covers the publish-helper discipline for the
// process-wide atomic.Pointer[Model] cell.
func TestAtomicCell(t *testing.T) {
	golden(t, "atomiccell", "stmaker", []string{"atomiccell"}, "", "")
}

// TestAtomicCellRegistry covers the same discipline for the registry's
// per-region atomic.Pointer[cellState] cells, including the designated
// publishers being exempt.
func TestAtomicCellRegistry(t *testing.T) {
	golden(t, "atomicreg", "stmaker/internal/registry", []string{"atomiccell"}, "", "")
}

// TestStatusMap covers the code-side direction of the error-taxonomy
// check: unmapped sentinels and code-vs-doc status disagreements are
// reported at the errors.Is site; stdlib sentinels and suppressed
// internal sentinels are not.
func TestStatusMap(t *testing.T) {
	golden(t, "statusmap", "stmaker/internal/server", []string{"statusmap"}, "", "API.md")
}

// TestStatusMapDocSide asserts the doc-side diagnostics the golden
// harness filters out: the stale row for ErrGhost (documented, no longer
// mapped) and the multi-status rows for ErrDouble, each reported at its
// markdown line.
func TestStatusMapDocSide(t *testing.T) {
	fixture := filepath.Join("testdata", "src", "statusmap")
	pkg, err := LoadDir(fixture, "stmaker/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{
		Checks:     []string{"statusmap"},
		APIDocPath: filepath.Join(fixture, "API.md"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var docMsgs []string
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, ".md") {
			docMsgs = append(docMsgs, fmt.Sprintf("line %d: %s", d.Pos.Line, d.Msg))
		}
	}
	if len(docMsgs) != 2 {
		t.Fatalf("want exactly 2 doc-side diagnostics, got %d: %q", len(docMsgs), docMsgs)
	}
	var ghost, double bool
	for _, m := range docMsgs {
		if strings.Contains(m, "ErrGhost") && strings.Contains(m, "stale row") {
			ghost = true
		}
		if strings.Contains(m, "ErrDouble") && strings.Contains(m, "multiple statuses") {
			double = true
		}
	}
	if !ghost || !double {
		t.Errorf("want a stale-row diagnostic for ErrGhost and a multi-status diagnostic for ErrDouble, got %q", docMsgs)
	}
}

// TestRepoSweepClean pins the full-repo sweep at zero findings: every
// check over every package of this module, with the real doc catalogues.
// Any future regression against the linted invariants fails here first.
func TestRepoSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, Options{
		Checks:     AllChecks(),
		DocPath:    filepath.Join(root, "docs", "OBSERVABILITY.md"),
		APIDocPath: filepath.Join(root, "docs", "API.md"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("sweep finding: %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Msg)
	}
}

// TestRunUnknownCheck verifies the check-selection error path.
func TestRunUnknownCheck(t *testing.T) {
	if _, err := Run(nil, Options{Checks: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown check name")
	}
}

// TestLoadModule smoke-tests the whole-module loader the binary uses: it
// must load this repository (the linter's own gate) without error.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	for _, want := range []string{"stmaker", "stmaker/internal/geo", "stmaker/internal/lint", "stmaker/cmd/stmaker-lint"} {
		if !byPath[want] {
			t.Errorf("Load missed package %s", want)
		}
	}
}
