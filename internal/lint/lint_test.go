package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts `// want "regexp"` annotations from fixture sources.
// The quoted text is a regular expression matched against the message of
// a diagnostic reported on the same line.
var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// golden runs the named checks over one fixture package and verifies the
// diagnostics against the fixture's // want annotations: every want must
// be matched by a diagnostic on its line, and every diagnostic must be
// claimed by a want.
func golden(t *testing.T, dir, importPath string, checks []string, docFile string) {
	t.Helper()
	fixture := filepath.Join("testdata", "src", dir)
	pkg, err := LoadDir(fixture, importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", fixture, err)
	}
	opts := Options{Checks: checks}
	if docFile != "" {
		opts.DocPath = filepath.Join(fixture, docFile)
	}
	diags, err := Run([]*Package{pkg}, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	addWants := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(path), i+1)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			addWants(filepath.Join(fixture, e.Name()))
		}
	}

	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, ".go") {
			continue // doc-side diagnostics are asserted in dedicated tests
		}
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Msg) {
				w.matched, claimed = true, true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Check, d.Msg)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func TestMetricNames(t *testing.T) {
	golden(t, "metricnames", "stmaker/internal/lintfixture/metricnames",
		[]string{"metricnames"}, "OBSERVABILITY.md")
}

// TestMetricNamesDocGhost covers the doc-side direction of the two-way
// check: names documented in the catalogue but absent from code are
// reported at their catalogue line. Ghost expectations live here rather
// than in // want comments because markdown carries none.
func TestMetricNamesDocGhost(t *testing.T) {
	fixture := filepath.Join("testdata", "src", "metricnames")
	pkg, err := LoadDir(fixture, "stmaker/internal/lintfixture/metricnames")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{
		Checks:  []string{"metricnames"},
		DocPath: filepath.Join(fixture, "OBSERVABILITY.md"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var ghosts []string
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, ".md") {
			ghosts = append(ghosts, d.Msg)
		}
	}
	if len(ghosts) != 1 || !strings.Contains(ghosts[0], `"ghost_metric_total"`) {
		t.Errorf("want exactly one ghost-metric diagnostic for ghost_metric_total, got %q", ghosts)
	}
}

func TestLatLng(t *testing.T) {
	golden(t, "latlng", "stmaker/internal/lintfixture/latlng", []string{"latlng"}, "")
}

func TestFloatEq(t *testing.T) {
	golden(t, "floateq", "stmaker/internal/lintfixture/floateq", []string{"floateq"}, "")
}

func TestCtxRule(t *testing.T) {
	golden(t, "ctxrule", "stmaker/internal/lintfixture/ctxrule", []string{"ctxrule"}, "")
}

// TestCtxRuleOutsideInternal verifies the Background/TODO rule only bites
// internal/* packages: the same fixture loaded under a non-internal
// import path reports no root-context diagnostics (the parameter-order
// rule still applies everywhere, so run only files without those).
func TestCtxRuleOutsideInternal(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ctxok"), "stmaker/lintfixture/ctxok")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, Options{Checks: []string{"ctxrule"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("non-internal package should be allowed context.Background, got %v", diags)
	}
}

func TestPoolPut(t *testing.T) {
	golden(t, "poolput", "stmaker/internal/lintfixture/poolput", []string{"poolput"}, "")
}

// TestRunUnknownCheck verifies the check-selection error path.
func TestRunUnknownCheck(t *testing.T) {
	if _, err := Run(nil, Options{Checks: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown check name")
	}
}

// TestLoadModule smoke-tests the whole-module loader the binary uses: it
// must load this repository (the linter's own gate) without error.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	for _, want := range []string{"stmaker", "stmaker/internal/geo", "stmaker/internal/lint", "stmaker/cmd/stmaker-lint"} {
		if !byPath[want] {
			t.Errorf("Load missed package %s", want)
		}
	}
}
