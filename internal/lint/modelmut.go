package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// modelmutCheck enforces the Model immutability contract behind the
// atomic hot swap (PR 5): once a *stmaker.Model is published through
// Summarizer.publish, every reader may hold it concurrently with no
// lock, so nothing may write a field of Model — or store an element
// into a slice/map reachable from one — anywhere outside the designated
// builders.
//
// The rules, in decreasing order of precedence:
//
//   - Writes inside the allowlisted packages (internal/history,
//     internal/modelio) are legal: they own the model's content types
//     and their construction/synchronization discipline.
//   - Writes to a reachable type other than Model itself are legal
//     inside the package that declares the type (internal/sanitize may
//     assemble its own Report).
//   - A field write through a plain local value chain (m.version = 1
//     where m is a value, not a pointer) is legal everywhere: Go's copy
//     semantics make it a private copy. This is what keeps publish's
//     version stamp and FlattenHistoryForAblation's value-copy rebuild
//     legal without suppressions.
//   - Everything else — a write through a pointer, an element store
//     into a slice/map hanging off a reachable value, delete/clear on a
//     reachable map, and (via the dataflow layer) the same through a
//     local alias like `keys := m.featureKeys; keys[0] = ...` — is a
//     violation.
type modelmutCheck struct {
	pkgs []*Package
}

func (*modelmutCheck) name() string { return "modelmut" }

// modelmutExemptPkgs are the import-path suffixes whose packages own
// model content wholesale: history builds and synchronizes the
// knowledge structures, modelio is the codec.
var modelmutExemptPkgs = []string{"internal/history", "internal/modelio"}

func (c *modelmutCheck) pkg(_ *reporter, p *Package) {
	c.pkgs = append(c.pkgs, p)
}

func (c *modelmutCheck) finish(r *reporter) {
	root := findModelType(c.pkgs)
	if root == nil {
		return // module (or fixture) has no stmaker.Model — nothing to enforce
	}
	reach := reachableNamed(root)
	for _, p := range c.pkgs {
		if pkgPathHasSuffix(p.Path, modelmutExemptPkgs...) {
			continue
		}
		c.sweep(r, p, root, reach)
	}
}

// findModelType locates the named type Model in the module root package
// (import path "stmaker", which is also the path golden fixtures load
// under).
func findModelType(pkgs []*Package) *types.Named {
	for _, p := range pkgs {
		if p.Types.Path() != "stmaker" {
			continue
		}
		if tn, ok := p.Types.Scope().Lookup("Model").(*types.TypeName); ok {
			if n, ok := tn.Type().(*types.Named); ok {
				return n
			}
		}
	}
	return nil
}

// reachableNamed computes the set of module-internal named types
// structurally reachable from root: struct fields, pointer targets,
// slice/array elements, map keys and values. Methods and interfaces do
// not extend the set.
func reachableNamed(root *types.Named) map[*types.TypeName]bool {
	reach := make(map[*types.TypeName]bool)
	var visit func(t types.Type)
	seen := make(map[types.Type]bool)
	visit = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() == nil || !moduleInternal(obj.Pkg().Path()) {
				return // stop at stdlib types (sync.Mutex et al)
			}
			reach[obj] = true
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				visit(u.Field(i).Type())
			}
		case *types.Pointer:
			visit(u.Elem())
		case *types.Slice:
			visit(u.Elem())
		case *types.Array:
			visit(u.Elem())
		case *types.Map:
			visit(u.Key())
			visit(u.Elem())
		case *types.Chan:
			visit(u.Elem())
		}
	}
	visit(root)
	return reach
}

// moduleInternal reports whether an import path belongs to this module.
func moduleInternal(path string) bool {
	return path == "stmaker" || strings.HasPrefix(path, "stmaker/")
}

// pkgPathHasSuffix reports whether path ends in one of the given
// suffixes (so fixtures loaded under short paths match too).
func pkgPathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// sweep walks one package's functions for illegal writes.
func (c *modelmutCheck) sweep(r *reporter, p *Package, root *types.Named, reach map[*types.TypeName]bool) {
	reachable := func(t types.Type) *types.TypeName {
		if n := namedType(t); n != nil && reach[n.Obj()] {
			return n.Obj()
		}
		return nil
	}
	for _, fd := range p.Funcs {
		// Seed the dataflow layer with reads that alias model interiors:
		// a slice/map-typed expression selected or indexed out of a
		// reachable value shares its backing store with the model.
		fl := newFlow(p, fd.Body, func(e ast.Expr) bool {
			switch ex := e.(type) {
			case *ast.SelectorExpr:
				t := p.Info.Types[e].Type
				if t == nil || !sharedBacking(t) {
					return false
				}
				return reachable(p.Info.Types[ex.X].Type) != nil
			}
			return false
		})
		check := func(lhs ast.Expr) {
			if tn, msg := c.illegalWrite(p, fl, lhs, root, reachable); tn != nil {
				r.report(p, c.name(), lhs.Pos(),
					"write %s of published-model type %s.%s outside its builders: the Model behind the atomic hot swap must stay immutable (construct a fresh value and republish instead)",
					msg, tn.Pkg().Name(), tn.Name())
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					check(lhs)
				}
			case *ast.IncDecStmt:
				check(st.X)
			case *ast.CallExpr:
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
					if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "delete" || id.Name == "clear") && len(st.Args) > 0 {
						if tn := chainReachable(p, st.Args[0], reachable); tn != nil || fl.taintedExpr(st.Args[0]) {
							if tn == nil {
								tn = root.Obj()
							}
							r.report(p, c.name(), st.Pos(),
								"%s on a map/slice reachable from published-model type %s.%s outside its builders: the Model behind the atomic hot swap must stay immutable",
								id.Name, tn.Pkg().Name(), tn.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// illegalWrite classifies one assignment target. It returns the
// reachable type being mutated and a description, or nil when the write
// is legal.
func (c *modelmutCheck) illegalWrite(p *Package, fl *flow, lhs ast.Expr, root *types.Named, reachable func(types.Type) *types.TypeName) (*types.TypeName, string) {
	switch ex := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// Field write: illegal when the owning struct is reachable and
		// the base is shared storage (pointer-backed or aliased).
		tn := reachable(p.Info.Types[ex.X].Type)
		if tn == nil {
			return nil, ""
		}
		if !sharedStorage(p, ex.X) && !fl.taintedExpr(ex.X) {
			return nil, "" // private copy on the stack
		}
		if ownerExempt(p, tn, root, ex.X) {
			return nil, "" // the declaring package may assemble its own types
		}
		return tn, "to field " + ex.Sel.Name
	case *ast.IndexExpr:
		// Element store: the backing array/map is shared with the model
		// whenever any step of the chain passes through a reachable
		// type, regardless of value copies along the way.
		if tn := chainReachable(p, ex.X, reachable); tn != nil {
			if ownerExempt(p, tn, root, ex.X) {
				return nil, ""
			}
			if _, isArray := p.Info.Types[ex.X].Type.Underlying().(*types.Array); isArray && !sharedStorage(p, ex.X) {
				return nil, "" // array element in a private copy
			}
			return tn, "into element"
		}
		if fl.taintedExpr(ex.X) {
			// Element store through a local alias of model-backed memory
			// (keys := m.featureKeys; keys[0] = ...): the dataflow layer
			// tracked the alias, so attribute it to the root Model.
			return root.Obj(), "into element of model-aliased memory"
		}
	case *ast.StarExpr:
		if tn := reachable(p.Info.Types[lhs].Type); tn != nil {
			if ownerExempt(p, tn, root, ex.X) {
				return nil, ""
			}
			return tn, "through pointer dereference"
		}
	}
	return nil, ""
}

// ownerExempt reports whether a write to type tn is legal because the
// analyzed package declares tn and is assembling its own value. The
// exemption never applies to Model itself, and never when the write
// chain passes through a Model — `m.stats.Trips++` through a *Model is
// a post-publish mutation no matter who declared TrainStats.
func ownerExempt(p *Package, tn *types.TypeName, root *types.Named, base ast.Expr) bool {
	if tn.Name() == "Model" || tn.Pkg() == nil || !samePkg(tn.Pkg(), p.Types) {
		return false
	}
	return !chainHasType(p, base, root)
}

// chainHasType reports whether any step of an lvalue chain has the
// named type want (possibly behind pointers).
func chainHasType(p *Package, e ast.Expr, want *types.Named) bool {
	for {
		if n := namedType(p.Info.Types[e].Type); n != nil && n.Obj() == want.Obj() {
			return true
		}
		switch ex := e.(type) {
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.IndexExpr:
			e = ex.X
		case *ast.SliceExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.ParenExpr:
			e = ex.X
		default:
			return false
		}
	}
}

// chainReachable walks an lvalue chain (selectors, indexes, slices,
// derefs) and returns the first reachable named type it passes through.
func chainReachable(p *Package, e ast.Expr, reachable func(types.Type) *types.TypeName) *types.TypeName {
	for {
		if tn := reachable(p.Info.Types[e].Type); tn != nil {
			return tn
		}
		switch ex := e.(type) {
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.IndexExpr:
			e = ex.X
		case *ast.SliceExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		case *ast.ParenExpr:
			e = ex.X
		default:
			return nil
		}
	}
}

// sharedStorage reports whether an expression designates memory that
// can be shared beyond the current frame: anything reached through a
// pointer, interface, slice/map element, or function result. A chain of
// plain value variables and fields is private.
func sharedStorage(p *Package, e ast.Expr) bool {
	for {
		if t := p.Info.Types[e].Type; t != nil {
			switch t.Underlying().(type) {
			case *types.Pointer, *types.Interface:
				return true
			}
		}
		switch ex := e.(type) {
		case *ast.Ident:
			return false
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.ParenExpr:
			e = ex.X
		case *ast.IndexExpr:
			// Indexing a slice or map reaches shared backing storage;
			// indexing an array value stays in the copy.
			switch p.Info.Types[ex.X].Type.Underlying().(type) {
			case *types.Array:
				e = ex.X
			default:
				return true
			}
		case *ast.StarExpr:
			return true
		default:
			return true // call results, composite literals, conversions
		}
	}
}

// samePkg reports whether two packages are the same, matching by path
// so fixtures re-loaded under equal paths compare equal.
func samePkg(a *types.Package, b *types.Package) bool {
	return a != nil && b != nil && a.Path() == b.Path()
}

// sharedBacking reports whether a type's values share backing storage
// when copied (slices and maps; strings are immutable).
func sharedBacking(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
