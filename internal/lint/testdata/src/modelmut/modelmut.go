// Package stmaker is a lint fixture: Model immutability cases. It is
// loaded under import path "stmaker" so its Model plays the role of the
// real published model type.
package stmaker

// FeatureMap stands in for history.FeatureMap: map-backed model content.
type FeatureMap struct {
	sums map[string][]float64
}

// TrainStats stands in for the value-typed stats block.
type TrainStats struct {
	Trips int
}

// Overlay stands in for roadnet.Overlay: the precomputed ALT routing
// tables hung off the model (PR 10). The dense rows are shared by every
// reader of the published model, so they join the reachability set.
type Overlay struct {
	landmarks []int
	fwd       [][]float64
	bwd       [][]float64
}

// Model is the root of the reachability set.
type Model struct {
	version     uint64
	featureKeys []string
	stats       TrainStats
	featMap     *FeatureMap
	overlay     *Overlay
}

// publish stamps the version on its private value copy before the swap
// — the designated-publisher pattern, legal without suppression.
func publish(m Model) *Model {
	m.version++
	return &m
}

// flatten rebuilds from a value copy; field writes on the copy are
// plain Go copy semantics, legal.
func flatten(m *Model) Model {
	flat := *m
	flat.featMap = nil
	return flat
}

// mutatePublished is the post-publish Model field write the check exists
// to catch.
func mutatePublished(m *Model) {
	m.version = 7 // want "write to field version"
}

// mutateNested writes a value-typed field through a *Model chain.
func mutateNested(m *Model) {
	m.stats.Trips++ // want "write to field Trips"
}

// elemStore mutates the shared backing array of a model slice.
func elemStore(m *Model) {
	m.featureKeys[0] = "x" // want "write into element"
}

// aliasWrite mutates model memory through a function-local alias; the
// dataflow layer tracks the assignment.
func aliasWrite(m *Model) {
	keys := m.featureKeys
	keys[0] = "x" // want "model-aliased memory"
}

// rangeAlias mutates model memory through a range-loop variable.
func rangeAlias(m *Model) {
	for _, s := range m.featMap.sums {
		s[0] = 1 // want "model-aliased memory"
	}
}

// deleteKey shrinks a model map in place.
func deleteKey(m *Model) {
	delete(m.featMap.sums, "k") // want "delete on a map"
}

// derefOverwrite replaces a published Model through its pointer.
func derefOverwrite(dst, src *Model) {
	*dst = *src // want "through pointer dereference"
}

// overlayCellWrite pokes a routing-table cell behind a published model:
// a served ShortestPath could read the corrupted bound mid-query.
func overlayCellWrite(m *Model) {
	m.overlay.fwd[0][1] = 3 // want "write into element"
}

// overlayRepoint swaps the landmark set on a live overlay.
func overlayRepoint(m *Model) {
	m.overlay.landmarks = nil // want "write to field landmarks"
}

// overlayAlias mutates table memory through a local alias of a row.
func overlayAlias(m *Model) {
	row := m.overlay.bwd[0]
	row[2] = 1 // want "model-aliased memory"
}

// overlayScalarCopy reads table cells into private scratch: a float64
// copied out of model memory carries no alias, so filling (and later
// overwriting) the scratch is legal. This is the ALT engine's
// per-search bound aggregation pattern.
func overlayScalarCopy(m *Model, scratch []float64) {
	row := m.overlay.fwd[0]
	scratch[0] = row[1]
	scratch[1] = m.overlay.bwd[0][2]
	scratch[0] = 0
}

// buildOverlay assembles a fresh overlay that no model points at yet:
// the declaring package filling its own tables is the builder path.
func buildOverlay(k, n int) *Overlay {
	o := &Overlay{landmarks: make([]int, k), fwd: make([][]float64, k)}
	for i := range o.fwd {
		o.fwd[i] = make([]float64, n)
		o.fwd[i][0] = 0
	}
	return o
}

// suppressedWrite carries a justified suppression.
func suppressedWrite(m *Model) {
	m.version = 1 //nolint:stmaker/modelmut -- fixture: documented single-writer migration shim
}

// scratch is not reachable from Model: writes to it are out of scope.
type scratch struct{ buf []float64 }

func unrelated(s *scratch) {
	s.buf[0] = 1
	s.buf = nil
}

// localValue exercises plain value writes: all legal.
func localValue() Model {
	var m Model
	m.version = 1
	m.stats.Trips = 2
	return m
}
