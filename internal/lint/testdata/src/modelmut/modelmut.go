// Package stmaker is a lint fixture: Model immutability cases. It is
// loaded under import path "stmaker" so its Model plays the role of the
// real published model type.
package stmaker

// FeatureMap stands in for history.FeatureMap: map-backed model content.
type FeatureMap struct {
	sums map[string][]float64
}

// TrainStats stands in for the value-typed stats block.
type TrainStats struct {
	Trips int
}

// Model is the root of the reachability set.
type Model struct {
	version     uint64
	featureKeys []string
	stats       TrainStats
	featMap     *FeatureMap
}

// publish stamps the version on its private value copy before the swap
// — the designated-publisher pattern, legal without suppression.
func publish(m Model) *Model {
	m.version++
	return &m
}

// flatten rebuilds from a value copy; field writes on the copy are
// plain Go copy semantics, legal.
func flatten(m *Model) Model {
	flat := *m
	flat.featMap = nil
	return flat
}

// mutatePublished is the post-publish Model field write the check exists
// to catch.
func mutatePublished(m *Model) {
	m.version = 7 // want "write to field version"
}

// mutateNested writes a value-typed field through a *Model chain.
func mutateNested(m *Model) {
	m.stats.Trips++ // want "write to field Trips"
}

// elemStore mutates the shared backing array of a model slice.
func elemStore(m *Model) {
	m.featureKeys[0] = "x" // want "write into element"
}

// aliasWrite mutates model memory through a function-local alias; the
// dataflow layer tracks the assignment.
func aliasWrite(m *Model) {
	keys := m.featureKeys
	keys[0] = "x" // want "model-aliased memory"
}

// rangeAlias mutates model memory through a range-loop variable.
func rangeAlias(m *Model) {
	for _, s := range m.featMap.sums {
		s[0] = 1 // want "model-aliased memory"
	}
}

// deleteKey shrinks a model map in place.
func deleteKey(m *Model) {
	delete(m.featMap.sums, "k") // want "delete on a map"
}

// derefOverwrite replaces a published Model through its pointer.
func derefOverwrite(dst, src *Model) {
	*dst = *src // want "through pointer dereference"
}

// suppressedWrite carries a justified suppression.
func suppressedWrite(m *Model) {
	m.version = 1 //nolint:stmaker/modelmut -- fixture: documented single-writer migration shim
}

// scratch is not reachable from Model: writes to it are out of scope.
type scratch struct{ buf []float64 }

func unrelated(s *scratch) {
	s.buf[0] = 1
	s.buf = nil
}

// localValue exercises plain value writes: all legal.
func localValue() Model {
	var m Model
	m.version = 1
	m.stats.Trips = 2
	return m
}
