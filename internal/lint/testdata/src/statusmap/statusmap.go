// Package server is a lint fixture: sentinel-error/status taxonomy
// cases. Loaded under import path "stmaker/internal/server" so the
// check treats it as the server package.
package server

import (
	"errors"
	"io"
	"net/http"
)

var (
	ErrNotTrained = errors.New("not trained")
	ErrUnknown    = errors.New("unknown region")
	ErrUnmapped   = errors.New("unmapped")
	ErrMismatch   = errors.New("mismatch")
	ErrDouble     = errors.New("double")
	ErrBuffer     = errors.New("buffer full")
	ErrInternal   = errors.New("internal detail")
)

func statusForError(err error) int {
	switch {
	case errors.Is(err, ErrNotTrained):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknown):
		return http.StatusNotFound
	case errors.Is(err, ErrUnmapped): // want "named in no status row"
		return http.StatusTeapot
	case errors.Is(err, ErrMismatch): // want "documents it under 404"
		return http.StatusInternalServerError
	case errors.Is(err, ErrDouble):
		return http.StatusTeapot
	case errors.Is(err, ErrInternal): //nolint:stmaker/statusmap -- fixture: internal-only sentinel, never surfaced to clients
		return http.StatusConflict
	case errors.Is(err, io.ErrUnexpectedEOF): // stdlib sentinel: out of scope
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// handle mirrors the ingest handler's if-shaped mapping.
func handle(err error, fail func(int, string)) {
	if errors.Is(err, ErrBuffer) {
		fail(http.StatusTooManyRequests, "retry later")
	}
}
