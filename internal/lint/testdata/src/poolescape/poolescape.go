// Package poolescape is a lint fixture: escapes of pooled scratch
// memory from functions that Put it back.
package poolescape

import (
	"bytes"
	"sync"
)

type buf struct {
	data []byte
	n    int
}

var pool = sync.Pool{New: func() any { return new(buf) }}

var global []byte

var ch = make(chan []byte, 1)

type resp struct{ Data []byte }

// returned is the acceptance-criteria violation: a returned pooled
// buffer whose Put runs before the caller reads it.
func returned() []byte {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return b.data // want "returns memory backed by a pooled object"
}

// copied returns a fresh copy: clean.
func copied() []byte {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	out := make([]byte, len(b.data))
	copy(out, b.data)
	return out
}

// intLeak returns a scalar read out of the pooled object: scalars
// cannot carry the alias, clean.
func intLeak() int {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return b.n
}

// stored escapes through a package-level variable.
func stored() {
	b := pool.Get().(*buf)
	global = b.data // want "store of memory backed by a pooled object into package-level variable global"
	pool.Put(b)
}

// leaked hands the pooled object to a goroutine that races the Put.
func leaked() {
	b := pool.Get().(*buf)
	go func() { _ = b.data }() // want "goroutine captures a pooled object"
	pool.Put(b)
}

// sent escapes through a channel.
func sent() {
	b := pool.Get().(*buf)
	ch <- b.data // want "channel send of memory backed by a pooled object"
	pool.Put(b)
}

// intoParam escapes through caller-visible storage.
func intoParam(r *resp) {
	b := pool.Get().(*buf)
	r.Data = b.data // want "caller-visible storage rooted at parameter r"
	pool.Put(b)
}

// intoValueParam writes a field of a value-typed parameter: a private
// copy, clean.
func intoValueParam(r resp) {
	b := pool.Get().(*buf)
	r.Data = b.data
	pool.Put(b)
}

// trimmed escapes through a bytes passthrough that sub-slices its
// input.
func trimmed() []byte {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return bytes.TrimSpace(b.data) // want "returns memory backed by a pooled object"
}

// aliased escapes through a struct-field alias and a local copy — the
// dataflow layer tracks both steps.
func aliased() []byte {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	var r resp
	r.Data = b.data
	out := r
	return out.Data // want "returns memory backed by a pooled object"
}

// writeOut uses the pooled buffer before the deferred Put and never
// leaks it: the writeBatchItem pattern, clean.
func writeOut(w interface{ Write([]byte) (int, error) }) {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	_, _ = w.Write(bytes.TrimSpace(b.data))
}

// reset recycles the pooled object's own storage: the normal reuse
// pattern, clean.
func reset() {
	b := pool.Get().(*buf)
	b.data = append(b.data[:0], 'x')
	pool.Put(b)
}

// acquire has no Put: poolput's domain, not poolescape's.
func acquire() *buf {
	return pool.Get().(*buf) //nolint:stmaker/poolput -- fixture: released by callers via release()
}

func release(b *buf) { pool.Put(b) }

// suppressedEscape carries a justified suppression.
func suppressedEscape() []byte {
	b := pool.Get().(*buf)
	defer pool.Put(b)
	return b.data //nolint:stmaker/poolescape -- fixture: documented single-threaded fast path
}
