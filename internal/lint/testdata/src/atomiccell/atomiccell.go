// Package stmaker is a lint fixture: publish discipline for the
// process-wide atomic.Pointer[Model] cell. Loaded under import path
// "stmaker" so Model matches the guarded cell type.
package stmaker

import "sync/atomic"

type Model struct{ version uint64 }

type summarizer struct {
	model *atomic.Pointer[Model]
}

// publish is the designated helper: the raw Store is legal here.
func publish(s *summarizer, m Model) {
	m.version++
	s.model.Store(&m)
}

// hotSwapBypass is the acceptance-criteria violation: a raw .Store on a
// guarded cell outside the publish helper.
func hotSwapBypass(s *summarizer, m *Model) {
	s.model.Store(m) // want "direct .Store on atomic.Pointer"
}

func swapBypass(s *summarizer, m *Model) *Model {
	return s.model.Swap(m) // want "direct .Swap on atomic.Pointer"
}

func casBypass(s *summarizer, m *Model) {
	s.model.CompareAndSwap(nil, m) // want "direct .CompareAndSwap on atomic.Pointer"
}

// loadOK reads the cell: reads are everyone's right.
func loadOK(s *summarizer) *Model {
	return s.model.Load()
}

// suppressedStore carries a justified suppression.
func suppressedStore(s *summarizer, m *Model) {
	s.model.Store(m) //nolint:stmaker/atomiccell -- fixture: documented migration shim with its own version stamp
}

// other cells are not guarded.
type other struct{ n int }

var cell atomic.Pointer[other]

func unrelated(o *other) {
	cell.Store(o)
}
