// Package ctxok is a lint fixture loaded under a non-internal import
// path: minting root contexts is allowed outside internal/* library
// code (main packages, examples).
package ctxok

import "context"

func mintOK() {
	_ = context.Background()
	_ = context.TODO()
}
