// Package metricnames is a lint fixture: positive and negative cases for
// the metricnames check, including both suppression comment forms.
package metricnames

import "stmaker/internal/metrics"

// MetricGood is a documented, well-formed counter name.
const MetricGood = "requests_total"

// MetricGauge is a counter used gauge-style; its missing _total suffix is
// deliberately suppressed below.
const MetricGauge = "in_flight_current"

func use(reg *metrics.Registry, dynamic string) {
	reg.Counter(MetricGood)          // constant, snake_case, _total, documented: clean
	reg.Histogram("latency_seconds") // histograms need no _total suffix
	reg.Counter(dynamic)             // want "must be a compile-time string constant"
	reg.Counter("BadName_total")     // want "is not snake_case"
	reg.Counter("missing_suffix")    // want "must end in _total"
	reg.Counter("undocumented_total") // want "not documented"
	reg.Counter(MetricGauge)          //nolint:stmaker/metricnames -- in-flight gauge, not a monotonic counter
	//nolint:stmaker/metricnames -- grandfathered name, preceding-line suppression form
	reg.Counter("legacy_gauge")
}
