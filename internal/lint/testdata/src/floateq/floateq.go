// Package floateq is a lint fixture: exact float comparison cases.
package floateq

func compare(a, b float64, i, j int) bool {
	if a == b { // want "floating-point == comparison is exact"
		return true
	}
	if a != 0 { // want "floating-point != comparison is exact"
		return false
	}
	var x, y float32
	eq32 := x == y // want "floating-point == comparison is exact"
	if i == j {    // integers: clean
		return eq32
	}
	const c1, c2 = 1.5, 2.5
	constFold := c1 == c2 // both operands constant, folded at compile time: clean
	if a == 1.0 {         //lint:allow floateq -- sentinel value assigned verbatim, never computed
		return constFold
	}
	//lint:allow floateq -- preceding-line suppression form
	if b == 2.0 {
		return true
	}
	return b != a //nolint:stmaker/floateq -- the nolint spelling works for floateq too
}
