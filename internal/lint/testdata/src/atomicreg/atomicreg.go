// Package registry is a lint fixture: publish discipline for the
// per-region atomic.Pointer[cellState] cells. Loaded under import path
// "stmaker/internal/registry" so cellState matches the guarded type and
// the allowlisted function names resolve.
package registry

import "sync/atomic"

type cellState struct{ bytes int64 }

type cell struct {
	state atomic.Pointer[cellState]
}

// The four designated publishers mirror the real registry's.

func NewStatic(c *cell, st *cellState) { c.state.Store(st) }

func load(c *cell, st *cellState) { c.state.Store(st) }

func evictLocked(c *cell) *cellState { return c.state.Swap(nil) }

func reload(c *cell, st *cellState) { c.state.Store(st) }

// rawEvict bypasses the eviction accounting.
func rawEvict(c *cell) {
	c.state.Store(nil) // want "direct .Store on atomic.Pointer"
}
