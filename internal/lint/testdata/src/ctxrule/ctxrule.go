// Package ctxrule is a lint fixture loaded under an internal/ import
// path, so both ctxrule rules apply.
package ctxrule

import "context"

func good(ctx context.Context, n int) {}

func badOrder(n int, ctx context.Context) {} // want "context.Context must be the first parameter"

type worker struct{}

func (worker) run(ctx context.Context, job string) {} // receiver does not count: clean

type doer interface {
	Do(s string, ctx context.Context) // want "context.Context must be the first parameter"
}

var callback func(int, context.Context) // want "context.Context must be the first parameter"

func mint() {
	_ = context.Background() // want "root context inside internal"
	_ = context.TODO()       // want "root context inside internal"
	ctx := context.Background() //nolint:stmaker/ctxrule -- fixture: suppression path
	_ = ctx
}
