// Package poolput is a lint fixture: sync.Pool Get/Put pairing cases.
package poolput

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

func leaky() *[]byte {
	return pool.Get().(*[]byte) // want "no matching Put"
}

func balanced() {
	b := pool.Get().(*[]byte)
	defer pool.Put(b)
	_ = b
}

func deferredClosure() {
	b := pool.Get().(*[]byte)
	defer func() { pool.Put(b) }()
	_ = b
}

func acquire() *[]byte {
	return pool.Get().(*[]byte) //nolint:stmaker/poolput -- released by callers via release()
}

func release(b *[]byte) { pool.Put(b) }

func noPool() {
	var mu sync.Mutex
	mu.Lock() // a non-Pool sync method named neither Get nor Put: clean
	mu.Unlock()
}
