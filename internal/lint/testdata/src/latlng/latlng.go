// Package latlng is a lint fixture: coordinate-order cases for the
// latlng check.
package latlng

import "stmaker/internal/geo"

func dist(lat, lng float64) float64 { return lat + lng }

func noCoords(a, b float64) float64 { return a - b }

type pair struct{ Lat, Lng float64 }

func calls(p pair) {
	var lat, lng float64
	_ = dist(lat, lng) // aligned names: clean
	_ = dist(lng, lat)     // want "plausibly swapped" // want "plausibly swapped"
	_ = dist(p.Lng, p.Lat) // want "plausibly swapped" // want "plausibly swapped"
	_ = dist(p.Lat, p.Lng) // selectors aligned: clean
	_ = dist(0.5, lng)     // literal argument carries no name: clean
	_ = noCoords(lng, lat) // parameters are not coordinates: clean
	_ = dist(lng, lat)     //nolint:stmaker/latlng -- fixture: suppression path

	bad := geo.Point{39.9, 116.4} // want "keyed fields"
	good := geo.Point{Lat: 39.9, Lng: 116.4}
	pts := []geo.Point{{39.9, 116.4}} // want "keyed fields"
	sup := geo.Point{116.4, 39.9}     //nolint:stmaker/latlng -- fixture: suppression path
	_, _, _, _ = bad, good, pts, sup
}
