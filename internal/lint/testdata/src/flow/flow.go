// Package flow is a fixture for the engine-level dataflow tests: each
// function exercises one aliasing construct the layer must track. The
// test seeds taint at calls to source() and asserts which locals end up
// tainted.
package flow

type pair struct {
	data []float64
	n    int
}

func source() []float64 { return nil }

// locals: aliasing through function-local assignments.
func locals() {
	a := source()
	b := a
	c := b[1:]
	d := make([]float64, 1)
	n := len(a)
	_, _, _, _, _ = a, b, c, d, n
}

// fields: aliasing through struct fields — a field store taints the
// struct, a whole-struct copy carries it, a field read recovers it.
func fields() {
	var p pair
	p.data = source()
	q := p
	r := q.data
	var s pair
	t := s.data
	_, _, _, _ = q, r, s, t
}

// ranges: aliasing through range loops over tainted containers.
func ranges() {
	m := map[string][]float64{}
	m2 := map[string][]float64{"x": source()}
	for _, v := range m2 {
		_ = v
	}
	for _, w := range m {
		_ = w
	}
}

// calls: an &arg hands the callee tainted storage; a value arg does not
// taint the result.
func fill(dst *pair)            {}
func pure(in []float64) []float64 { return nil }

func calls() {
	var p pair
	p.data = source()
	var q pair
	fill(&p)
	u := pure(p.data)
	v := p.fetch()
	w := q.fetch()
	_, _, _, _ = q, u, v, w
}

func (p *pair) fetch() []float64 { return p.data }
