package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// statusmapCheck keeps the error taxonomy honest, in the style of
// metricnames: every module sentinel error the server maps (via
// errors.Is in internal/server) must be named in exactly one status row
// of docs/API.md, and every sentinel named in a status row must still
// be mapped by the server. Where the check can read the HTTP status off
// the mapping site (a case/if body returning or passing an
// http.Status* constant), it also cross-checks that the documented row
// carries the same status. An unmapped sentinel is a silent 500; a
// stale doc row promises clients a contract the server no longer
// keeps.
type sentinelRef struct {
	pos    token.Position
	pkg    *Package
	status int // HTTP status the code maps it to; 0 when not derivable
}

type statusmapCheck struct {
	apiPath string
	refs    map[string]*sentinelRef // sentinel name -> first mapping site
}

func (*statusmapCheck) name() string { return "statusmap" }

func (c *statusmapCheck) pkg(_ *reporter, p *Package) {
	if !pkgPathHasSuffix(p.Path, "internal/server") {
		return
	}
	for _, fd := range p.Funcs {
		visited := make(map[*ast.CallExpr]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.SwitchStmt:
				for _, clause := range st.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					status := firstHTTPStatus(p, cc.Body)
					for _, cond := range cc.List {
						c.collect(p, cond, status, visited)
					}
				}
			case *ast.IfStmt:
				c.collect(p, st.Cond, firstHTTPStatus(p, []ast.Stmt{st.Body}), visited)
			}
			return true
		})
		// Any errors.Is reference outside a recognized mapping shape
		// still counts as "the server handles this sentinel" — just
		// without a derivable status.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && !visited[call] {
				c.record(p, call, 0, visited)
			}
			return true
		})
	}
}

// collect records every errors.Is(err, Sentinel) call under expr with
// the given status.
func (c *statusmapCheck) collect(p *Package, expr ast.Expr, status int, visited map[*ast.CallExpr]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.record(p, call, status, visited)
		}
		return true
	})
}

// record notes one errors.Is(err, Sentinel) mapping site when the
// sentinel is a module-internal package-level error variable.
func (c *statusmapCheck) record(p *Package, call *ast.CallExpr, status int, visited map[*ast.CallExpr]bool) {
	fn := calleeFunc(p, call)
	if !isPkgFunc(fn, "errors", "Is") || len(call.Args) != 2 {
		return
	}
	visited[call] = true
	obj := sentinelVar(p, call.Args[1])
	if obj == nil {
		return
	}
	name := obj.Name()
	if ref, ok := c.refs[name]; ok {
		if ref.status == 0 {
			ref.status = status
		}
		return
	}
	c.refs[name] = &sentinelRef{pos: p.Fset.Position(call.Args[1].Pos()), pkg: p, status: status}
}

// sentinelVar resolves expr to a module-internal package-level Err*
// variable, or nil. Stdlib sentinels (context.Canceled, bufio.ErrTooLong)
// are deliberately out of scope: the taxonomy table documents them by
// status class, not by name.
func sentinelVar(p *Package, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch ex := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = ex
	case *ast.SelectorExpr:
		id = ex.Sel
	default:
		return nil
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	// Same module as the server package being analyzed: compare the
	// leading path segment, so fixtures loaded under short paths work
	// and the stdlib never matches.
	if firstSeg(v.Pkg().Path()) != firstSeg(p.Path) {
		return nil
	}
	return v
}

func firstSeg(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// firstHTTPStatus scans statements for the first net/http Status*
// constant — the `return http.StatusX` of statusForError's cases, or
// the `fail(http.StatusX, ...)` of the ingest handler.
func firstHTTPStatus(p *Package, body []ast.Stmt) int {
	status := 0
	for _, st := range body {
		if status != 0 {
			break
		}
		ast.Inspect(st, func(n ast.Node) bool {
			if status != 0 {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			cn, ok := p.Info.Uses[sel.Sel].(*types.Const)
			if !ok || cn.Pkg() == nil || cn.Pkg().Path() != "net/http" || !strings.HasPrefix(cn.Name(), "Status") {
				return true
			}
			if v, exact := constant.Int64Val(cn.Val()); exact && v >= 100 && v <= 599 {
				status = int(v)
			}
			return true
		})
	}
	return status
}

// statusRowRE matches a markdown status-table row: `| 404 Not Found | … |`.
var statusRowRE = regexp.MustCompile(`^\s*\|\s*(\d{3})\b`)

// docSentinelRE extracts backticked sentinel names, optionally
// package-qualified: `stmaker.ErrModelNotFound`, `ErrInvalidModel`.
var docSentinelRE = regexp.MustCompile("`(?:[a-z][a-zA-Z0-9]*\\.)?(Err[A-Z][A-Za-z0-9]*)`")

// docStatusRows parses the API reference and returns, per sentinel
// name, the statuses of the rows naming it with the first line each
// appears on.
func docStatusRows(path string) (map[string]map[int]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rows := make(map[string]map[int]int) // sentinel -> status -> first line
	fenced := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		m := statusRowRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		status, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		for _, sm := range docSentinelRE.FindAllStringSubmatch(line, -1) {
			name := sm[1]
			if rows[name] == nil {
				rows[name] = make(map[int]int)
			}
			if _, ok := rows[name][status]; !ok {
				rows[name][status] = i + 1
			}
		}
	}
	return rows, nil
}

func (c *statusmapCheck) finish(r *reporter) {
	if c.apiPath == "" {
		return
	}
	rows, err := docStatusRows(c.apiPath)
	if err != nil {
		r.reportAt(c.name(), token.Position{Filename: c.apiPath, Line: 1},
			"cannot read API reference: %v", err)
		return
	}
	for name, ref := range c.refs {
		docStatuses := rows[name]
		if len(docStatuses) == 0 {
			if !ref.pkg.suppressed(c.name(), ref.pos) {
				r.reportAt(c.name(), ref.pos,
					"sentinel error %s is mapped by internal/server but named in no status row of %s; document its status so clients can rely on it", name, c.apiPath)
			}
			continue
		}
		if len(docStatuses) > 1 {
			statuses := make([]int, 0, len(docStatuses))
			line := 0
			for s, l := range docStatuses {
				statuses = append(statuses, s)
				if line == 0 || l < line {
					line = l
				}
			}
			sort.Ints(statuses)
			r.reportAt(c.name(), token.Position{Filename: c.apiPath, Line: line},
				"sentinel error %s is documented under multiple statuses %v; the taxonomy maps each sentinel to exactly one", name, statuses)
			continue
		}
		if ref.status != 0 {
			for docStatus := range docStatuses {
				if docStatus != ref.status && !ref.pkg.suppressed(c.name(), ref.pos) {
					r.reportAt(c.name(), ref.pos,
						"internal/server maps %s to HTTP %d but %s documents it under %d", name, ref.status, c.apiPath, docStatus)
				}
			}
		}
	}
	for name, statuses := range rows {
		if _, ok := c.refs[name]; ok {
			continue
		}
		line := 0
		for _, l := range statuses {
			if line == 0 || l < line {
				line = l
			}
		}
		r.reportAt(c.name(), token.Position{Filename: c.apiPath, Line: line},
			"status table documents sentinel %s but internal/server no longer maps it (stale row)", name)
	}
}
