package lint

import (
	"go/ast"
	"go/types"
)

// latlngCheck guards the repo's (lat, lng) coordinate-order convention —
// the classic silent-corruption bug in geo code (results stay plausible,
// just wrong). Two rules:
//
//  1. geo.Point composite literals must use keyed fields, so a reader
//     (and this checker) can see which value is which.
//  2. At call sites of functions with lat/lng-named parameters, an
//     argument whose identifier reads as the opposite coordinate kind
//     ("p.Lng" passed for parameter "lat") is flagged as plausibly
//     swapped.
type latlngCheck struct{}

func (latlngCheck) name() string { return "latlng" }

func (c latlngCheck) pkg(r *reporter, p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				c.checkLit(r, p, n)
			case *ast.CallExpr:
				c.checkCall(r, p, n)
			}
			return true
		})
	}
}

func (latlngCheck) finish(*reporter) {}

func (c latlngCheck) checkLit(r *reporter, p *Package, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 || !isNamed(p.Info.TypeOf(lit), "internal/geo", "Point") {
		return
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		r.report(p, c.name(), lit.Pos(),
			"geo.Point composite literal must use keyed fields (Lat:, Lng:) so coordinate order is explicit")
	}
}

func (c latlngCheck) checkCall(r *reporter, p *Package, call *ast.CallExpr) {
	sig, ok := p.Info.TypeOf(ast.Unparen(call.Fun)).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n-- // the variadic tail has no positional pairing to misread
	}
	for i := 0; i < n && i < len(call.Args); i++ {
		paramKind := coordKind(params.At(i).Name())
		if paramKind == kindNone {
			continue
		}
		argKind := coordKind(argIdentName(call.Args[i]))
		if argKind != kindNone && argKind != paramKind {
			r.report(p, c.name(), call.Args[i].Pos(),
				"argument %q passed for parameter %q: latitude/longitude plausibly swapped",
				argIdentName(call.Args[i]), params.At(i).Name())
		}
	}
}

type coord int

const (
	kindNone coord = iota
	kindLat
	kindLng
)

// coordKind classifies an identifier as latitude-like, longitude-like or
// neither, by whole words ("refLat" is lat-like; "clone" is not
// lng-like). Identifiers mentioning both kinds classify as neither.
func coordKind(name string) coord {
	var isLat, isLng bool
	for _, w := range identWords(name) {
		switch w {
		case "lat", "lats", "latitude", "latitudes":
			isLat = true
		case "lng", "lngs", "lon", "long", "longitude", "longitudes":
			isLng = true
		}
	}
	switch {
	case isLat && !isLng:
		return kindLat
	case isLng && !isLat:
		return kindLng
	default:
		return kindNone
	}
}

// argIdentName extracts the human-readable name an argument expression is
// spelled with: an identifier, a field selector, or "" for anything more
// structured.
func argIdentName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	default:
		return ""
	}
}
