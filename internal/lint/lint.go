// Package lint implements stmaker-lint, the project-specific static
// analyzer behind `make lint`. It is a two-pass engine over the whole
// module, built on the standard library's go/parser + go/types (source
// importer — no golang.org/x/tools dependency, preserving the zero-dep
// module):
//
// Pass 1 parses every package, type-checks them concurrently in
// dependency order, and records per-package facts the checks share —
// the typed AST, the function index, and the suppression table.
// Pass 2 runs the checks, each backed where needed by the lightweight
// intra-procedural dataflow layer in dataflow.go (assignment/alias
// tracking over go/types):
//
//   - metricnames: string literals passed to metrics.Registry.Counter /
//     Histogram must be compile-time snake_case constants, counters must
//     end in _total, and the set of names in code must agree both ways
//     with the catalogue in docs/OBSERVABILITY.md.
//   - latlng: geo.Point composite literals must use keyed fields, and
//     call sites of functions with lat/lng-named parameters are flagged
//     when the argument identifiers look swapped.
//   - floateq: == and != on floating-point operands outside tests.
//   - ctxrule: context.Context must be the first parameter, and
//     internal/* library code must not mint root contexts with
//     context.Background / context.TODO.
//   - poolput: a function that calls sync.Pool.Get but never calls Put
//     leaks the pooled object.
//   - modelmut: no field writes or element stores to stmaker.Model or
//     any type reachable from it outside the builder/codec allowlist —
//     the immutability contract behind the atomic hot swap.
//   - poolescape: a value from sync.Pool.Get (or memory it backs) must
//     not be returned, stored to a heap-reachable location, or captured
//     by a goroutine in a function that Puts it back.
//   - atomiccell: .Store/.Swap/.CompareAndSwap on the model-carrying
//     atomic.Pointer cells only inside the designated publish helpers.
//   - statusmap: two-way sync between sentinel errors referenced in
//     internal/server and the status table in docs/API.md.
//
// Diagnostics can be suppressed with a trailing (or preceding-line)
// comment `//nolint:stmaker/<check>` — or `//lint:allow <check>`, the
// conventional escape hatch for floateq. docs/STATIC_ANALYSIS.md is the
// user-facing guide.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one finding: a position, the check that produced it and a
// human-readable message.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Msg)
}

// Package is one type-checked package ready for analysis, carrying the
// pass-1 facts every check shares: the typed AST, the function index
// and the suppression table.
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Funcs indexes every function declaration with a body, in file
	// order — the unit the dataflow layer analyzes. Built once in pass 1
	// so the per-function checks don't re-walk the declaration lists.
	Funcs []*ast.FuncDecl

	supp map[string]map[int][]string // filename -> line -> suppressed check names ("*" = all)
}

// parsedPkg is a package that has been parsed but not yet type-checked.
type parsedPkg struct {
	dir        string
	importPath string
	files      []*ast.File
}

// loader type-checks the module's packages in dependency order, serving
// module-internal imports from its own results and everything else (the
// standard library) from the stdlib source importer. Load type-checks
// independent packages concurrently; mu guards the built map and srcMu
// serializes the stdlib source importer, which is not safe for
// concurrent use (each stdlib package is still only type-checked once
// and cached, so the serial section shrinks as the warm-up completes).
type loader struct {
	fset     *token.FileSet
	src      types.Importer
	parsed   map[string]*parsedPkg
	built    map[string]*Package
	building map[string]bool
	mu       sync.Mutex
	srcMu    sync.Mutex
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Load parses and type-checks every non-test package under the module
// rooted at root (the directory containing go.mod). testdata, hidden and
// underscore-prefixed directories are skipped, as `go build ./...` does.
func Load(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pp, err := l.parseDir(path, ip)
		if err != nil {
			return err
		}
		if pp != nil {
			l.parsed[ip] = pp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l.buildAll()
}

// buildAll type-checks every parsed package, running independent
// packages concurrently: each package waits only for its module-internal
// imports, so the module's dependency DAG — not its package count —
// bounds the critical path.
func (l *loader) buildAll() ([]*Package, error) {
	paths := make([]string, 0, len(l.parsed))
	for ip := range l.parsed {
		paths = append(paths, ip)
	}
	sort.Strings(paths)

	// Module-internal dependency edges, from the parsed import specs.
	deps := make(map[string][]string, len(paths))
	for _, ip := range paths {
		for _, f := range l.parsed[ip].files {
			for _, imp := range f.Imports {
				dep, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if _, ok := l.parsed[dep]; ok && dep != ip {
					deps[ip] = append(deps[ip], dep)
				}
			}
		}
	}
	// Cycle detection up front: the concurrent scheme below would
	// deadlock on one, and the serial path reports it cleanly.
	for _, ip := range paths {
		if _, err := l.checkCycle(ip, deps, make(map[string]int)); err != nil {
			return nil, err
		}
	}

	type signal struct {
		ch  chan struct{}
		err error
	}
	done := make(map[string]*signal, len(paths))
	for _, ip := range paths {
		done[ip] = &signal{ch: make(chan struct{})}
	}
	var wg sync.WaitGroup
	for _, ip := range paths {
		wg.Add(1)
		go func(ip string) {
			defer wg.Done()
			s := done[ip]
			defer close(s.ch)
			for _, dep := range deps[ip] {
				<-done[dep].ch
				if done[dep].err != nil {
					s.err = fmt.Errorf("lint: not building %s: dependency failed: %w", ip, done[dep].err)
					return
				}
			}
			_, s.err = l.buildOne(ip)
		}(ip)
	}
	wg.Wait()

	pkgs := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		if err := done[ip].err; err != nil {
			return nil, err
		}
		l.mu.Lock()
		p := l.built[ip]
		l.mu.Unlock()
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkCycle DFS-walks the dependency graph (state: 0 unvisited,
// 1 on stack, 2 done) and reports an import cycle as an error.
func (l *loader) checkCycle(ip string, deps map[string][]string, state map[string]int) (bool, error) {
	switch state[ip] {
	case 1:
		return false, fmt.Errorf("lint: import cycle through %s", ip)
	case 2:
		return true, nil
	}
	state[ip] = 1
	for _, dep := range deps[ip] {
		if _, err := l.checkCycle(dep, deps, state); err != nil {
			return false, err
		}
	}
	state[ip] = 2
	return true, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. It exists for the golden-file tests, which check
// fixture packages under testdata that Load deliberately skips.
func LoadDir(dir, importPath string) (*Package, error) {
	l := newLoader()
	pp, err := l.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pp == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	l.parsed[importPath] = pp
	return l.build(importPath)
}

func newLoader() *loader {
	l := &loader{
		fset:     token.NewFileSet(),
		parsed:   make(map[string]*parsedPkg),
		built:    make(map[string]*Package),
		building: make(map[string]bool),
	}
	l.src = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// parseDir parses the non-test Go files of one directory, returning nil
// when the directory holds no Go package.
func (l *loader) parseDir(dir, importPath string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{dir: dir, importPath: importPath}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pp.files = append(pp.files, f)
	}
	if len(pp.files) == 0 {
		return nil, nil
	}
	return pp, nil
}

// build type-checks importPath (and, recursively, its module-internal
// dependencies) exactly once. It is the serial path used by LoadDir;
// buildAll schedules buildOne concurrently instead.
func (l *loader) build(ip string) (*Package, error) {
	if p, ok := l.built[ip]; ok {
		return p, nil
	}
	if l.building[ip] {
		return nil, fmt.Errorf("lint: import cycle through %s", ip)
	}
	l.building[ip] = true
	defer delete(l.building, ip)

	return l.typecheck(ip, importerFunc(func(path string) (*types.Package, error) {
		if _, ok := l.parsed[path]; ok {
			p, err := l.build(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.srcImport(path)
	}))
}

// buildOne type-checks one package whose module-internal dependencies
// have already been built (buildAll guarantees the ordering).
func (l *loader) buildOne(ip string) (*Package, error) {
	return l.typecheck(ip, importerFunc(func(path string) (*types.Package, error) {
		l.mu.Lock()
		p, ok := l.built[path]
		l.mu.Unlock()
		if ok {
			return p.Types, nil
		}
		if _, parsed := l.parsed[path]; parsed {
			return nil, fmt.Errorf("lint: internal error: dependency %s not built before %s", path, ip)
		}
		return l.srcImport(path)
	}))
}

// srcImport serializes access to the stdlib source importer, which
// caches aggressively but is not safe for concurrent use.
func (l *loader) srcImport(path string) (*types.Package, error) {
	l.srcMu.Lock()
	defer l.srcMu.Unlock()
	return l.src.Import(path)
}

// typecheck runs go/types over one parsed package and assembles the
// Package with its pass-1 facts (function index, suppression table).
func (l *loader) typecheck(ip string, imp types.Importer) (*Package, error) {
	pp := l.parsed[ip]
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(ip, l.fset, pp.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", ip, err)
	}
	p := &Package{Path: ip, Fset: l.fset, Files: pp.files, Types: tp, Info: info}
	p.supp = collectSuppressions(l.fset, pp.files)
	for _, f := range pp.files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				p.Funcs = append(p.Funcs, fd)
			}
		}
	}
	l.mu.Lock()
	l.built[ip] = p
	l.mu.Unlock()
	return p, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// nolintRE matches //nolint:stmaker or //nolint:stmaker/check1[,stmaker/check2...],
// optionally followed by an explanatory comment.
var nolintRE = regexp.MustCompile(`^\s*nolint:(stmaker(?:/[a-z]+)?(?:,\s*stmaker(?:/[a-z]+)?)*)(?:\s|$)`)

// allowRE matches //lint:allow check1[ check2...].
var allowRE = regexp.MustCompile(`^\s*lint:allow\s+([a-z ]+)`)

// collectSuppressions scans every comment for suppression directives and
// records the check names suppressed at each (file, line).
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	supp := make(map[string]map[int][]string)
	add := func(pos token.Pos, names []string) {
		position := fset.Position(pos)
		byLine := supp[position.Filename]
		if byLine == nil {
			byLine = make(map[int][]string)
			supp[position.Filename] = byLine
		}
		byLine[position.Line] = append(byLine[position.Line], names...)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if m := nolintRE.FindStringSubmatch(text); m != nil {
					var names []string
					for _, part := range strings.Split(m[1], ",") {
						part = strings.TrimSpace(part)
						if check, ok := strings.CutPrefix(part, "stmaker/"); ok {
							names = append(names, check)
						} else { // bare "nolint:stmaker" silences every check
							names = append(names, "*")
						}
					}
					add(c.Pos(), names)
				} else if m := allowRE.FindStringSubmatch(text); m != nil {
					add(c.Pos(), strings.Fields(m[1]))
				}
			}
		}
	}
	return supp
}

// suppressed reports whether a diagnostic from check at position is
// silenced by a directive on the same line or the line above.
func (p *Package) suppressed(check string, position token.Position) bool {
	byLine := p.supp[position.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, name := range byLine[line] {
			if name == check || name == "*" {
				return true
			}
		}
	}
	return false
}

// reporter accumulates diagnostics, dropping suppressed ones.
type reporter struct {
	diags []Diagnostic
}

// report files a diagnostic for check at pos within p, honouring
// suppression directives.
func (r *reporter) report(p *Package, check string, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(check, position) {
		return
	}
	r.diags = append(r.diags, Diagnostic{Pos: position, Check: check, Msg: fmt.Sprintf(format, args...)})
}

// reportAt files a diagnostic at an arbitrary position (used for findings
// in non-Go files such as the metrics catalogue, where no suppression
// directives apply).
func (r *reporter) reportAt(check string, position token.Position, format string, args ...any) {
	r.diags = append(r.diags, Diagnostic{Pos: position, Check: check, Msg: fmt.Sprintf(format, args...)})
}

// Options configures a Run.
type Options struct {
	// DocPath is the metrics catalogue (docs/OBSERVABILITY.md) checked
	// two-ways against the metric names used in code. Empty disables the
	// documentation cross-check.
	DocPath string
	// APIDocPath is the API reference (docs/API.md) whose status-row
	// tables statusmap checks two-ways against the sentinel errors
	// referenced in internal/server. Empty disables the cross-check.
	APIDocPath string
	// Checks selects a subset of checks by name; nil runs all of them.
	Checks []string
}

// checker is one named analysis. pkg is called once per package; finish
// once after all packages, for cross-package verdicts.
type checker interface {
	name() string
	pkg(r *reporter, p *Package)
	finish(r *reporter)
}

// AllChecks lists every check name, in the order they run.
func AllChecks() []string {
	return []string{"metricnames", "latlng", "floateq", "ctxrule", "poolput",
		"modelmut", "poolescape", "atomiccell", "statusmap"}
}

func newCheckers(opts Options) ([]checker, error) {
	all := map[string]checker{
		"metricnames": &metricNamesCheck{docPath: opts.DocPath, used: make(map[string]metricUse)},
		"latlng":      latlngCheck{},
		"floateq":     floateqCheck{},
		"ctxrule":     ctxruleCheck{},
		"poolput":     poolputCheck{},
		"modelmut":    &modelmutCheck{},
		"poolescape":  poolescapeCheck{},
		"atomiccell":  atomiccellCheck{},
		"statusmap":   &statusmapCheck{apiPath: opts.APIDocPath, refs: make(map[string]*sentinelRef)},
	}
	names := opts.Checks
	if names == nil {
		names = AllChecks()
	}
	cs := make([]checker, 0, len(names))
	for _, n := range names {
		c, ok := all[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", n, strings.Join(AllChecks(), ", "))
		}
		cs = append(cs, c)
	}
	return cs, nil
}

// CheckTiming records one check's wall-clock cost over the whole run,
// surfaced by `stmaker-lint -v`.
type CheckTiming struct {
	Name     string
	Duration time.Duration
}

// Run analyses the packages and returns the surviving diagnostics sorted
// by position.
func Run(pkgs []*Package, opts Options) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, opts)
	return diags, err
}

// RunTimed is Run plus per-check timings. Checks are independent of one
// another, so each runs on its own goroutine with a private reporter;
// the merged diagnostics are position-sorted, which keeps the output
// deterministic regardless of scheduling.
func RunTimed(pkgs []*Package, opts Options) ([]Diagnostic, []CheckTiming, error) {
	cs, err := newCheckers(opts)
	if err != nil {
		return nil, nil, err
	}
	reporters := make([]reporter, len(cs))
	timings := make([]CheckTiming, len(cs))
	var wg sync.WaitGroup
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c checker) {
			defer wg.Done()
			start := time.Now()
			for _, p := range pkgs {
				c.pkg(&reporters[i], p)
			}
			c.finish(&reporters[i])
			timings[i] = CheckTiming{Name: c.name(), Duration: time.Since(start)}
		}(i, c)
	}
	wg.Wait()
	r := &reporter{}
	for i := range reporters {
		r.diags = append(r.diags, reporters[i].diags...)
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i].Pos, r.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return r.diags[i].Check < r.diags[j].Check
	})
	return r.diags, timings, nil
}
