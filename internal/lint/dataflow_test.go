package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"
)

// TestDataflow exercises the taint/alias layer directly on the flow
// fixture: taint seeds at calls to source() and must reach exactly the
// locals that alias the seeded memory — through plain assignments,
// struct-field stores and reads, range loops, and receiver/&arg calls —
// while value copies, fresh allocations, and scalar reads stay clean.
func TestDataflow(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "flow"), "stmaker/internal/lintfixture/flow")
	if err != nil {
		t.Fatal(err)
	}
	seed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "source"
	}

	cases := map[string]map[string]bool{ // func -> local -> expect tainted
		"locals": {"a": true, "b": true, "c": true, "d": false, "n": false},
		"fields": {"p": true, "q": true, "r": true, "s": false, "t": false},
		"ranges": {"m": false, "m2": true, "v": true, "w": false},
		"calls":  {"p": true, "q": false, "u": false, "v": true, "w": false},
	}

	funcs := make(map[string]*ast.FuncDecl)
	for _, fd := range pkg.Funcs {
		funcs[fd.Name.Name] = fd
	}
	for fn, locals := range cases {
		fd := funcs[fn]
		if fd == nil {
			t.Fatalf("fixture function %s not found", fn)
		}
		fl := newFlow(pkg, fd.Body, seed)
		// Resolve each local by its defining identifier in the body.
		objs := make(map[string]types.Object)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if o := pkg.Info.Defs[id]; o != nil {
					objs[id.Name] = o
				}
			}
			return true
		})
		for name, want := range locals {
			o := objs[name]
			if o == nil {
				t.Errorf("%s: local %s not found", fn, name)
				continue
			}
			if got := fl.taintedObj(o); got != want {
				t.Errorf("%s: tainted(%s) = %v, want %v", fn, name, got, want)
			}
		}
	}
}
