package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"regexp"
	"strings"
)

// metricNamesCheck enforces the observability naming contract: every name
// passed to metrics.Registry.Counter / Histogram is a compile-time
// snake_case string constant (so metric cardinality is bounded and
// greppable), counters end in _total, and the set of names used in code
// agrees both ways with the catalogue in docs/OBSERVABILITY.md — a typo
// mints a silent new time series, and a stale doc row is a ghost metric
// dashboards will wait on forever.
// metricUse records where a metric name first appears in code, keeping
// the package so the doc-sync pass can honour suppression directives.
type metricUse struct {
	pos token.Position
	pkg *Package
}

type metricNamesCheck struct {
	docPath string
	used    map[string]metricUse // metric name -> first use in code
}

func (*metricNamesCheck) name() string { return "metricnames" }

// snakeCaseRE is the legal shape of a metric name.
var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func (c *metricNamesCheck) pkg(r *reporter, p *Package) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || (fn.Name() != "Counter" && fn.Name() != "Histogram") ||
				!recvIsNamed(fn, "internal/metrics", "Registry") || len(call.Args) != 1 {
				return true
			}
			arg := call.Args[0]
			tv := p.Info.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				r.report(p, c.name(), arg.Pos(),
					"metric name passed to Registry.%s must be a compile-time string constant (dynamic names make cardinality unbounded and undiscoverable)", fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !snakeCaseRE.MatchString(name) {
				r.report(p, c.name(), arg.Pos(), "metric name %q is not snake_case", name)
				return true
			}
			if fn.Name() == "Counter" && !strings.HasSuffix(name, "_total") {
				r.report(p, c.name(), arg.Pos(), "counter name %q must end in _total", name)
			}
			if _, ok := c.used[name]; !ok {
				c.used[name] = metricUse{pos: p.Fset.Position(arg.Pos()), pkg: p}
			}
			return true
		})
	}
}

func (c *metricNamesCheck) finish(r *reporter) {
	if c.docPath == "" {
		return
	}
	documented, err := docMetricNames(c.docPath)
	if err != nil {
		r.reportAt(c.name(), token.Position{Filename: c.docPath, Line: 1},
			"cannot read metrics catalogue: %v", err)
		return
	}
	for name, use := range c.used {
		if _, ok := documented[name]; !ok && !use.pkg.suppressed(c.name(), use.pos) {
			r.reportAt(c.name(), use.pos,
				"metric %q is used in code but not documented in %s", name, c.docPath)
		}
	}
	for name, line := range documented {
		if _, ok := c.used[name]; !ok {
			r.reportAt(c.name(), token.Position{Filename: c.docPath, Line: line},
				"metric %q is documented but never used in code (ghost metric)", name)
		}
	}
}

// docNameRE extracts backticked snake_case tokens; requiring at least one
// underscore separates metric names from ordinary backticked words
// (`count`, `le`, flag names, file paths) in the catalogue's prose.
var docNameRE = regexp.MustCompile("`([a-z][a-z0-9]*(?:_[a-z0-9]+)+)`")

// docMetricNames parses the catalogue markdown and returns every metric
// name mentioned outside fenced code blocks, with the line it first
// appears on.
func docMetricNames(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	names := make(map[string]int)
	fenced := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		for _, m := range docNameRE.FindAllStringSubmatch(line, -1) {
			if _, ok := names[m[1]]; !ok {
				names[m[1]] = i + 1
			}
		}
	}
	return names, nil
}
