// Package spatial provides a uniform grid index over geographic points for
// fast nearest-neighbour and radius queries. It is the workhorse behind
// map-matching (§III-A), landmark lookup (Def. 2) and trajectory
// calibration (§II-A). The index is immutable once built, so concurrent
// queries — including the parallel corpus calibration in Train — need no
// locking.
package spatial

import (
	"math"
	"sort"

	"stmaker/internal/geo"
)

// cellKey identifies a grid cell by integer row/column.
type cellKey struct {
	row, col int32
}

// Index is a uniform grid over lat/lng space. Items are identified by an
// integer ID and a representative point. The zero value is not usable; use
// NewIndex.
type Index struct {
	cellDeg float64
	cells   map[cellKey][]entry
	size    int
}

type entry struct {
	id int
	pt geo.Point
}

// NewIndex returns an index whose grid cells are approximately cellMeters on
// a side (measured at the given reference latitude). Typical usage is a
// 200–500 m cell for a city-scale dataset.
func NewIndex(cellMeters, refLat float64) *Index {
	if cellMeters <= 0 {
		cellMeters = 250
	}
	// Degrees of latitude per cell; longitude cells use the same degree
	// size, which makes them narrower in metres away from the equator —
	// harmless for the query semantics, which only rely on cells being an
	// over-approximation grid.
	deg := cellMeters / geo.EarthRadiusMeters * 180 / math.Pi
	_ = refLat
	return &Index{cellDeg: deg, cells: make(map[cellKey][]entry)}
}

func (ix *Index) key(p geo.Point) cellKey {
	return cellKey{
		row: int32(math.Floor(p.Lat / ix.cellDeg)),
		col: int32(math.Floor(p.Lng / ix.cellDeg)),
	}
}

// Insert adds an item with the given id at point p. Multiple items may share
// an id; the index does not deduplicate.
func (ix *Index) Insert(id int, p geo.Point) {
	k := ix.key(p)
	ix.cells[k] = append(ix.cells[k], entry{id: id, pt: p})
	ix.size++
}

// Len returns the number of inserted items.
func (ix *Index) Len() int { return ix.size }

// Result is a single query hit.
type Result struct {
	ID       int
	Point    geo.Point
	Distance float64 // metres from the query point
}

// Within returns all items within radius metres of p, sorted by ascending
// distance.
func (ix *Index) Within(p geo.Point, radius float64) []Result {
	if radius < 0 {
		return nil
	}
	var out []Result
	ix.scan(p, radius, func(e entry, d float64) {
		if d <= radius {
			out = append(out, Result{ID: e.id, Point: e.pt, Distance: d})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out
}

// Nearest returns the closest item to p within maxRadius metres and true,
// or a zero Result and false if none exists.
func (ix *Index) Nearest(p geo.Point, maxRadius float64) (Result, bool) {
	best := Result{Distance: math.Inf(1)}
	found := false
	// Expand the search ring until a hit is found or the radius budget is
	// exhausted. Starting small keeps the common case cheap.
	r := ix.cellDeg * geo.EarthRadiusMeters * math.Pi / 180 // one cell in metres
	for r < maxRadius*2 {
		ix.scan(p, r, func(e entry, d float64) {
			if d < best.Distance {
				best = Result{ID: e.id, Point: e.pt, Distance: d}
				found = true
			}
		})
		if found && best.Distance <= r {
			break
		}
		r *= 2
	}
	if !found || best.Distance > maxRadius {
		ix.scan(p, maxRadius, func(e entry, d float64) {
			if d < best.Distance {
				best = Result{ID: e.id, Point: e.pt, Distance: d}
				found = true
			}
		})
	}
	if !found || best.Distance > maxRadius {
		return Result{}, false
	}
	return best, true
}

// scan visits every entry in cells overlapping the radius around p.
func (ix *Index) scan(p geo.Point, radius float64, visit func(entry, float64)) {
	degRadius := radius / geo.EarthRadiusMeters * 180 / math.Pi
	// Longitude degrees shrink with latitude; widen the column span.
	cosLat := math.Cos(p.Lat * math.Pi / 180)
	if cosLat < 0.01 {
		cosLat = 0.01
	}
	rowSpan := int32(math.Ceil(degRadius/ix.cellDeg)) + 1
	colSpan := int32(math.Ceil(degRadius/(ix.cellDeg*cosLat))) + 1
	c := ix.key(p)
	for dr := -rowSpan; dr <= rowSpan; dr++ {
		for dc := -colSpan; dc <= colSpan; dc++ {
			for _, e := range ix.cells[cellKey{row: c.row + dr, col: c.col + dc}] {
				visit(e, geo.Distance(p, e.pt))
			}
		}
	}
}
