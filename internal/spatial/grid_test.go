package spatial

import (
	"math"
	"math/rand"
	"testing"

	"stmaker/internal/geo"
)

var origin = geo.Point{Lat: 39.9, Lng: 116.4}

func TestWithinBasic(t *testing.T) {
	ix := NewIndex(250, origin.Lat)
	pts := []geo.Point{
		origin,
		geo.Destination(origin, 90, 100),
		geo.Destination(origin, 90, 500),
		geo.Destination(origin, 0, 2000),
	}
	for i, p := range pts {
		ix.Insert(i, p)
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.Within(origin, 600)
	if len(got) != 3 {
		t.Fatalf("Within(600) returned %d hits, want 3: %+v", len(got), got)
	}
	// Results are sorted by distance.
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			t.Fatalf("results not sorted: %+v", got)
		}
	}
	if got[0].ID != 0 || got[1].ID != 1 || got[2].ID != 2 {
		t.Fatalf("unexpected ids: %+v", got)
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	ix := NewIndex(250, origin.Lat)
	ix.Insert(1, origin)
	if got := ix.Within(origin, -1); got != nil {
		t.Fatalf("Within(-1) = %v", got)
	}
}

func TestNearest(t *testing.T) {
	ix := NewIndex(250, origin.Lat)
	a := geo.Destination(origin, 45, 300)
	b := geo.Destination(origin, 45, 900)
	ix.Insert(10, a)
	ix.Insert(20, b)

	r, ok := ix.Nearest(origin, 5000)
	if !ok || r.ID != 10 {
		t.Fatalf("Nearest = %+v ok=%v, want id 10", r, ok)
	}
	if math.Abs(r.Distance-300) > 2 {
		t.Fatalf("Nearest distance = %v", r.Distance)
	}

	// Tight radius excludes everything.
	if _, ok := ix.Nearest(origin, 100); ok {
		t.Fatalf("Nearest within 100m should not exist")
	}
}

func TestNearestEmpty(t *testing.T) {
	ix := NewIndex(250, origin.Lat)
	if _, ok := ix.Nearest(origin, 1e6); ok {
		t.Fatal("Nearest on empty index should report none")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex(200, origin.Lat)
	var pts []geo.Point
	for i := 0; i < 500; i++ {
		p := geo.Destination(origin, rng.Float64()*360, rng.Float64()*5000)
		pts = append(pts, p)
		ix.Insert(i, p)
	}
	for trial := 0; trial < 50; trial++ {
		q := geo.Destination(origin, rng.Float64()*360, rng.Float64()*5000)
		bestID, bestD := -1, math.Inf(1)
		for i, p := range pts {
			if d := geo.Distance(q, p); d < bestD {
				bestID, bestD = i, d
			}
		}
		r, ok := ix.Nearest(q, 20000)
		if !ok {
			t.Fatalf("trial %d: no hit", trial)
		}
		if r.ID != bestID && math.Abs(r.Distance-bestD) > 1e-6 {
			t.Fatalf("trial %d: got id %d (%.2fm), want id %d (%.2fm)",
				trial, r.ID, r.Distance, bestID, bestD)
		}
	}
}

func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := NewIndex(300, origin.Lat)
	var pts []geo.Point
	for i := 0; i < 300; i++ {
		p := geo.Destination(origin, rng.Float64()*360, rng.Float64()*4000)
		pts = append(pts, p)
		ix.Insert(i, p)
	}
	for trial := 0; trial < 20; trial++ {
		q := geo.Destination(origin, rng.Float64()*360, rng.Float64()*4000)
		radius := 200 + rng.Float64()*1500
		want := map[int]bool{}
		for i, p := range pts {
			if geo.Distance(q, p) <= radius {
				want[i] = true
			}
		}
		got := ix.Within(q, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d hits, want %d", trial, len(got), len(want))
		}
		for _, r := range got {
			if !want[r.ID] {
				t.Fatalf("trial %d: unexpected hit %d", trial, r.ID)
			}
		}
	}
}

func TestDefaultCellSize(t *testing.T) {
	ix := NewIndex(0, origin.Lat) // falls back to the default
	ix.Insert(1, origin)
	if _, ok := ix.Nearest(origin, 10); !ok {
		t.Fatal("default-cell index should find the inserted point")
	}
}
