package partition

import (
	"math/rand"
	"testing"
)

func benchInput(n int) Input {
	rng := rand.New(rand.NewSource(7))
	in := Input{Features: make([][]float64, n), Significance: make([]float64, n)}
	for i := 0; i < n; i++ {
		in.Features[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		in.Significance[i] = rng.Float64()
	}
	return in
}

func BenchmarkSimilarity(b *testing.B) {
	in := benchInput(2)
	w := []float64{1, 1, 1, 1, 1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Similarity(in.Features[0], in.Features[1], w)
	}
}

func BenchmarkOptimal100(b *testing.B) {
	in := benchInput(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimal(in, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKPartition100x7(b *testing.B) {
	in := benchInput(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KPartition(in, 7, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func FuzzSimilarity(f *testing.F) {
	f.Add(1.0, 0.5, 0.0, 0.9, 0.1, 0.7)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g float64) {
		u := []float64{a, b, c}
		v := []float64{d, e, g}
		s := Similarity(u, v, nil)
		if s < 0 || s > 1 || s != s {
			t.Fatalf("Similarity(%v,%v) = %v out of [0,1]", u, v, s)
		}
	})
}
