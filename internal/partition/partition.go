// Package partition implements STMaker's trajectory partitioning (§IV).
//
// The paper models partitioning as labelling the chain of trajectory
// segments with a conditional random field whose potential function
// (Eq. 2) rewards cutting at significant landmarks and merging similar
// neighbouring segments:
//
//	Φ(Xi, Xi+1) = −S(TSi, TSi+1)  if Xi = Xi+1   (merge)
//	Φ(Xi, Xi+1) = −Ca · li.s      if Xi ≠ Xi+1   (cut)
//
// Maximizing Pr(X|T) minimizes the summed potential, which dynamic
// programming solves exactly on the chain (Eq. 4), including under an
// exact-k partition-count constraint (Algorithm 1).
package partition

import (
	"fmt"
	"math"
)

// DefaultCa is the paper's experimental setting for the landmark
// significance weight Ca (§VII-B).
const DefaultCa = 0.5

// Options configures the partitioner.
type Options struct {
	// Ca is the positive constant weighting landmark significance in the
	// potential function (default DefaultCa).
	Ca float64
	// Weights are the per-feature weights w in registry order; nil means
	// all 1.
	Weights []float64
	// SimilarityFunc overrides the segment-similarity measure used in the
	// potential function; nil means Similarity (the paper's weighted
	// cosine, Eq. 3). L1Similarity is provided as an ablation alternative.
	SimilarityFunc func(u, v, w []float64) float64
}

func (o Options) withDefaults() Options {
	if o.Ca <= 0 {
		o.Ca = DefaultCa
	}
	return o
}

// Similarity is Eq. (3): the weighted cosine similarity of two feature
// vectors mapped into [0, 1]. A nil weight vector means all-ones. Two zero
// vectors are considered identical (similarity 1); a zero vector against a
// non-zero one yields 0.5 (the image of cosine 0).
func Similarity(u, v, w []float64) float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("partition: vector length mismatch %d vs %d", len(u), len(v)))
	}
	// Cosine is invariant to scaling each vector independently; dividing by
	// the max magnitude guards the squared terms against overflow.
	su, sv := maxAbs(u), maxAbs(v)
	if su == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		su = 1
	}
	if sv == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		sv = 1
	}
	var dot, nu, nv float64
	for j := range u {
		wj := 1.0
		if w != nil {
			wj = w[j]
		}
		uj, vj := u[j]/su, v[j]/sv
		dot += wj * uj * vj
		nu += wj * uj * uj
		nv += wj * vj * vj
	}
	switch {
	case nu == 0 && nv == 0: //lint:allow floateq -- zero-vector guard: only exact zero norms need the special case
		return 1
	case nu == 0 || nv == 0: //lint:allow floateq -- zero-vector guard: only exact zero norms need the special case
		return 0.5
	}
	cos := dot / (math.Sqrt(nu) * math.Sqrt(nv))
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return (cos + 1) / 2
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// Input is the partitioning problem: n segments with their normalized
// feature vectors, and the significance of each interior landmark.
type Input struct {
	// Features[i] is segment i's normalized feature vector.
	Features [][]float64
	// Significance[i], for i in 1..n-1, is li.s — the significance of the
	// landmark shared by segments i-1 and i (a potential cut point).
	// Significance[0] is unused.
	Significance []float64
}

// Validate checks the shape invariants of the input.
func (in Input) Validate() error {
	n := len(in.Features)
	if n == 0 {
		return fmt.Errorf("partition: no segments")
	}
	if len(in.Significance) != n {
		return fmt.Errorf("partition: significance length %d, want %d", len(in.Significance), n)
	}
	dims := len(in.Features[0])
	for i, f := range in.Features {
		if len(f) != dims {
			return fmt.Errorf("partition: feature vector %d has %d dims, want %d", i, len(f), dims)
		}
	}
	return nil
}

// Part is one trajectory partition: the inclusive range of segment indices
// it covers.
type Part struct {
	FirstSeg, LastSeg int
}

// Len returns the number of segments in the part.
func (p Part) Len() int { return p.LastSeg - p.FirstSeg + 1 }

// Result is a computed partition.
type Result struct {
	// Parts covers all segments contiguously and disjointly (Def. 5).
	Parts []Part
	// Energy is the minimized total potential Σ Φ (lower is better).
	Energy float64
	// Cuts[i] is true when a boundary lies between segments i-1 and i.
	Cuts []bool
}

// L1Similarity is an ablation alternative to the paper's cosine measure:
// one minus the weighted mean absolute difference of the (normalized)
// feature vectors, clamped to [0, 1].
func L1Similarity(u, v, w []float64) float64 {
	if len(u) != len(v) {
		panic(fmt.Sprintf("partition: vector length mismatch %d vs %d", len(u), len(v)))
	}
	if len(u) == 0 {
		return 1
	}
	var sum, wsum float64
	for j := range u {
		wj := 1.0
		if w != nil {
			wj = w[j]
		}
		d := u[j] - v[j]
		if d < 0 {
			d = -d
		}
		if d > 1 {
			d = 1
		}
		sum += wj * d
		wsum += wj
	}
	if wsum == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		return 1
	}
	s := 1 - sum/wsum
	if s < 0 {
		return 0
	}
	return s
}

// similarities precomputes S(TS_{i-1}, TS_i) for i = 1..n-1.
func similarities(in Input, opts Options) []float64 {
	simFn := opts.SimilarityFunc
	if simFn == nil {
		simFn = Similarity
	}
	n := len(in.Features)
	sims := make([]float64, n)
	for i := 1; i < n; i++ {
		sims[i] = simFn(in.Features[i-1], in.Features[i], opts.Weights)
	}
	return sims
}

// cutsToResult converts a cut mask into parts and computes the energy.
func cutsToResult(in Input, sims []float64, ca float64, cuts []bool) Result {
	n := len(in.Features)
	var parts []Part
	var energy float64
	first := 0
	for i := 1; i < n; i++ {
		if cuts[i] {
			energy -= ca * in.Significance[i]
			parts = append(parts, Part{FirstSeg: first, LastSeg: i - 1})
			first = i
		} else {
			energy -= sims[i]
		}
	}
	parts = append(parts, Part{FirstSeg: first, LastSeg: n - 1})
	return Result{Parts: parts, Energy: energy, Cuts: cuts}
}

// Optimal computes the globally optimal partition under Eq. (4): at every
// interior landmark the cheaper of cutting (−Ca·li.s) and merging
// (−S(TSi−1, TSi)) is chosen. This is the default partition in STMaker.
func Optimal(in Input, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	sims := similarities(in, opts)
	n := len(in.Features)
	cuts := make([]bool, n)
	for i := 1; i < n; i++ {
		// On a chain the two alternatives at each boundary are
		// independent, so the DP reduces to a per-boundary choice.
		cuts[i] = opts.Ca*in.Significance[i] > sims[i]
	}
	return cutsToResult(in, sims, opts.Ca, cuts), nil
}

// KPartition computes the optimal partition into exactly k parts
// (Algorithm 1). The DP state E[i][j] is the best energy of the first i+1
// segments split into j parts:
//
//	E[i][j] = min( E[i-1][j-1] − Ca·li.s,  E[i-1][j] − S(TSi−1, TSi) )
//
// It returns an error when k is out of the feasible range [1, n].
func KPartition(in Input, k int, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	n := len(in.Features)
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("partition: k = %d out of range [1, %d]", k, n)
	}
	opts = opts.withDefaults()
	sims := similarities(in, opts)

	const inf = math.MaxFloat64
	// E[i][j]: best energy for segments 0..i in j parts (j in 1..k).
	E := make([][]float64, n)
	cutChoice := make([][]bool, n)
	for i := range E {
		E[i] = make([]float64, k+1)
		cutChoice[i] = make([]bool, k+1)
		for j := range E[i] {
			E[i][j] = inf
		}
	}
	E[0][1] = 0
	for i := 1; i < n; i++ {
		maxJ := i + 1
		if maxJ > k {
			maxJ = k
		}
		for j := 1; j <= maxJ; j++ {
			best, cut := inf, false
			if E[i-1][j] < inf {
				best = E[i-1][j] - sims[i]
			}
			if j > 1 && E[i-1][j-1] < inf {
				if c := E[i-1][j-1] - opts.Ca*in.Significance[i]; c < best {
					best, cut = c, true
				}
			}
			E[i][j] = best
			cutChoice[i][j] = cut
		}
	}
	if E[n-1][k] >= inf {
		return Result{}, fmt.Errorf("partition: no %d-partition of %d segments", k, n)
	}
	// Reconstruct cut positions.
	cuts := make([]bool, n)
	for i, j := n-1, k; i >= 1; i-- {
		if cutChoice[i][j] {
			cuts[i] = true
			j--
		}
	}
	res := cutsToResult(in, sims, opts.Ca, cuts)
	return res, nil
}

// Energy computes the total potential of an arbitrary cut mask, for
// comparing alternative partitioners (ablations).
func Energy(in Input, cuts []bool, opts Options) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if len(cuts) != len(in.Features) {
		return 0, fmt.Errorf("partition: cuts length %d, want %d", len(cuts), len(in.Features))
	}
	opts = opts.withDefaults()
	sims := similarities(in, opts)
	return cutsToResult(in, sims, opts.Ca, cuts).Energy, nil
}

// GreedyK is a baseline k-partitioner used for ablation: it ranks interior
// boundaries by cut benefit (Ca·li.s − S) and greedily takes the top k−1.
// Because Eq. (2)'s potential is separable per boundary, GreedyK reaches
// the same energy as the DP; it serves as a cross-check and a speed
// comparison point.
func GreedyK(in Input, k int, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	n := len(in.Features)
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("partition: k = %d out of range [1, %d]", k, n)
	}
	opts = opts.withDefaults()
	sims := similarities(in, opts)
	type cand struct {
		i       int
		benefit float64
	}
	cands := make([]cand, 0, n-1)
	for i := 1; i < n; i++ {
		cands = append(cands, cand{i: i, benefit: opts.Ca*in.Significance[i] - sims[i]})
	}
	// Selection sort of the top k−1 by benefit keeps this dependency-free
	// and deterministic (ties broken by position).
	cuts := make([]bool, n)
	for c := 0; c < k-1; c++ {
		best := -1
		for j, cd := range cands {
			if cuts[cd.i] {
				continue
			}
			if best < 0 || cd.benefit > cands[best].benefit ||
				(cd.benefit == cands[best].benefit && cd.i < cands[best].i) { //lint:allow floateq -- greedy tie-break: exact equality picks the earlier boundary
				best = j
			}
		}
		cuts[cands[best].i] = true
	}
	return cutsToResult(in, sims, opts.Ca, cuts), nil
}

// UniformK is the naive ablation baseline: it ignores features and
// significance entirely and cuts the segment chain into k runs of equal
// length. Its energy is generally worse than the optimum, quantifying the
// value of feature-aware partitioning.
func UniformK(in Input, k int, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	n := len(in.Features)
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("partition: k = %d out of range [1, %d]", k, n)
	}
	opts = opts.withDefaults()
	sims := similarities(in, opts)
	cuts := make([]bool, n)
	for c := 1; c < k; c++ {
		cuts[c*n/k] = true
	}
	return cutsToResult(in, sims, opts.Ca, cuts), nil
}
