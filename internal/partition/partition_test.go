package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimilarityBasics(t *testing.T) {
	u := []float64{1, 0, 0}
	if got := Similarity(u, u, nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical vectors: %v", got)
	}
	v := []float64{0, 1, 0}
	if got := Similarity(u, v, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("orthogonal vectors: %v", got)
	}
	zero := []float64{0, 0, 0}
	if got := Similarity(zero, zero, nil); got != 1 {
		t.Errorf("two zero vectors: %v", got)
	}
	if got := Similarity(u, zero, nil); got != 0.5 {
		t.Errorf("one zero vector: %v", got)
	}
}

func TestSimilarityWeighted(t *testing.T) {
	u := []float64{1, 0}
	v := []float64{1, 1}
	// With the second dimension weighted to zero, the vectors look
	// identical.
	if got := Similarity(u, v, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("weighted similarity = %v, want 1", got)
	}
	// Increasing a differing dimension's weight lowers similarity.
	low := Similarity(u, v, []float64{1, 0.5})
	high := Similarity(u, v, []float64{1, 4})
	if high >= low {
		t.Fatalf("higher weight on differing dim should lower similarity: %v vs %v", high, low)
	}
}

func TestSimilarityRangeProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		s := Similarity(a[:], b[:], nil)
		return s >= 0 && s <= 1 && !math.IsNaN(s) &&
			math.Abs(s-Similarity(b[:], a[:], nil)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	Similarity([]float64{1}, []float64{1, 2}, nil)
}

// twoRegimes builds an input with n segments where the first half has
// feature pattern A, the second half pattern B, and only the middle
// landmark is significant.
func twoRegimes(n int) Input {
	in := Input{
		Features:     make([][]float64, n),
		Significance: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		if i < n/2 {
			in.Features[i] = []float64{1, 0, 0}
		} else {
			in.Features[i] = []float64{0, 0, 1}
		}
	}
	in.Significance[n/2] = 1.0
	return in
}

func TestOptimalCutsAtRegimeChange(t *testing.T) {
	// Orthogonal regimes give S=0.5 at the boundary; Ca=1.2 with a
	// max-significance landmark makes cutting there the cheaper choice,
	// while within-regime boundaries (S=1, significance 0) stay merged.
	in := twoRegimes(10)
	res, err := Optimal(in, Options{Ca: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 2 {
		t.Fatalf("parts = %d, want 2 (%+v)", len(res.Parts), res.Parts)
	}
	if res.Parts[0].FirstSeg != 0 || res.Parts[0].LastSeg != 4 ||
		res.Parts[1].FirstSeg != 5 || res.Parts[1].LastSeg != 9 {
		t.Fatalf("parts = %+v", res.Parts)
	}
	if !res.Cuts[5] {
		t.Fatal("cut mask missing regime boundary")
	}
}

func TestOptimalSinglePartWhenHomogeneous(t *testing.T) {
	in := Input{Features: make([][]float64, 6), Significance: make([]float64, 6)}
	for i := range in.Features {
		in.Features[i] = []float64{1, 1}
	}
	// Even significant landmarks don't beat perfect similarity at the
	// default Ca=0.5 (0.5·1 < 1).
	for i := range in.Significance {
		in.Significance[i] = 1
	}
	res, err := Optimal(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 1 {
		t.Fatalf("parts = %+v, want single part", res.Parts)
	}
}

func TestOptimalCaControlsCutting(t *testing.T) {
	in := Input{Features: make([][]float64, 4), Significance: make([]float64, 4)}
	for i := range in.Features {
		in.Features[i] = []float64{1, 1}
	}
	for i := range in.Significance {
		in.Significance[i] = 1
	}
	// With a huge Ca, cutting everywhere wins.
	res, err := Optimal(in, Options{Ca: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 4 {
		t.Fatalf("Ca=10 parts = %d, want 4", len(res.Parts))
	}
}

func TestPartsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		in := Input{Features: make([][]float64, n), Significance: make([]float64, n)}
		for i := 0; i < n; i++ {
			in.Features[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			in.Significance[i] = rng.Float64()
		}
		res, err := Optimal(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkCoverage(t, res, n)
		k := 1 + rng.Intn(n)
		kres, err := KPartition(in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(kres.Parts) != k {
			t.Fatalf("KPartition returned %d parts, want %d", len(kres.Parts), k)
		}
		checkCoverage(t, kres, n)
	}
}

// checkCoverage asserts Def. 5: the parts cover all segments contiguously
// and disjointly.
func checkCoverage(t *testing.T, res Result, n int) {
	t.Helper()
	next := 0
	for _, p := range res.Parts {
		if p.FirstSeg != next {
			t.Fatalf("gap/overlap at segment %d: %+v", next, res.Parts)
		}
		if p.LastSeg < p.FirstSeg {
			t.Fatalf("inverted part %+v", p)
		}
		if p.Len() != p.LastSeg-p.FirstSeg+1 {
			t.Fatalf("Len inconsistent for %+v", p)
		}
		next = p.LastSeg + 1
	}
	if next != n {
		t.Fatalf("parts end at %d, want %d", next, n)
	}
}

func TestKPartitionMatchesEnergyOfBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8) // small enough for brute force
		in := Input{Features: make([][]float64, n), Significance: make([]float64, n)}
		for i := 0; i < n; i++ {
			in.Features[i] = []float64{rng.Float64(), rng.Float64()}
			in.Significance[i] = rng.Float64()
		}
		for k := 1; k <= n; k++ {
			res, err := KPartition(in, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			best := bruteForceK(t, in, k)
			if math.Abs(res.Energy-best) > 1e-9 {
				t.Fatalf("n=%d k=%d: DP energy %v, brute force %v", n, k, res.Energy, best)
			}
		}
	}
}

// bruteForceK enumerates all cut masks with exactly k parts.
func bruteForceK(t *testing.T, in Input, k int) float64 {
	t.Helper()
	n := len(in.Features)
	best := math.Inf(1)
	for mask := 0; mask < 1<<(n-1); mask++ {
		cuts := make([]bool, n)
		parts := 1
		for i := 1; i < n; i++ {
			if mask&(1<<(i-1)) != 0 {
				cuts[i] = true
				parts++
			}
		}
		if parts != k {
			continue
		}
		e, err := Energy(in, cuts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e < best {
			best = e
		}
	}
	return best
}

func TestGreedyKMatchesDPEnergy(t *testing.T) {
	// The potential is separable per boundary, so the greedy top-(k−1)
	// selection must reach the DP optimum exactly.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(15)
		in := Input{Features: make([][]float64, n), Significance: make([]float64, n)}
		for i := 0; i < n; i++ {
			in.Features[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			in.Significance[i] = rng.Float64()
		}
		k := 1 + rng.Intn(n)
		dp, err := KPartition(in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gr, err := GreedyK(in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Energy-gr.Energy) > 1e-9 {
			t.Fatalf("n=%d k=%d: DP %v vs greedy %v", n, k, dp.Energy, gr.Energy)
		}
		if len(gr.Parts) != k {
			t.Fatalf("greedy parts = %d", len(gr.Parts))
		}
	}
}

func TestUniformKNeverBeatsDP(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(15)
		in := Input{Features: make([][]float64, n), Significance: make([]float64, n)}
		for i := 0; i < n; i++ {
			in.Features[i] = []float64{rng.Float64(), rng.Float64()}
			in.Significance[i] = rng.Float64()
		}
		k := 1 + rng.Intn(n)
		dp, err := KPartition(in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		un, err := UniformK(in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(un.Parts) != k {
			t.Fatalf("uniform parts = %d, want %d", len(un.Parts), k)
		}
		if un.Energy < dp.Energy-1e-9 {
			t.Fatalf("uniform beat DP: %v < %v", un.Energy, dp.Energy)
		}
	}
}

func TestKPartitionErrors(t *testing.T) {
	in := twoRegimes(5)
	if _, err := KPartition(in, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KPartition(in, 6, Options{}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KPartition(Input{}, 1, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	bad := Input{Features: [][]float64{{1}, {1, 2}}, Significance: []float64{0, 0}}
	if _, err := KPartition(bad, 1, Options{}); err == nil {
		t.Error("ragged features accepted")
	}
	short := Input{Features: [][]float64{{1}}, Significance: nil}
	if _, err := Optimal(short, Options{}); err == nil {
		t.Error("mismatched significance accepted")
	}
}

func TestKPartitionK1AndKn(t *testing.T) {
	in := twoRegimes(6)
	one, err := KPartition(in, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Parts) != 1 || one.Parts[0].FirstSeg != 0 || one.Parts[0].LastSeg != 5 {
		t.Fatalf("k=1 parts = %+v", one.Parts)
	}
	all, err := KPartition(in, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Parts) != 6 {
		t.Fatalf("k=n parts = %d", len(all.Parts))
	}
	for i, p := range all.Parts {
		if p.FirstSeg != i || p.LastSeg != i {
			t.Fatalf("k=n part %d = %+v", i, p)
		}
	}
}

func TestEnergyValidation(t *testing.T) {
	in := twoRegimes(4)
	if _, err := Energy(in, []bool{true}, Options{}); err == nil {
		t.Error("wrong cuts length accepted")
	}
	e, err := Energy(in, make([]bool, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All-merge energy is −sum of similarities.
	if e >= 0 {
		t.Errorf("all-merge energy = %v, want negative", e)
	}
}

func TestOptimalIsUnconstrainedMinimum(t *testing.T) {
	// Optimal's energy must equal the minimum over all k of KPartition.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		in := Input{Features: make([][]float64, n), Significance: make([]float64, n)}
		for i := 0; i < n; i++ {
			in.Features[i] = []float64{rng.Float64(), rng.Float64()}
			in.Significance[i] = rng.Float64()
		}
		opt, err := Optimal(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for k := 1; k <= n; k++ {
			res, err := KPartition(in, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Energy < best {
				best = res.Energy
			}
		}
		if math.Abs(opt.Energy-best) > 1e-9 {
			t.Fatalf("Optimal %v vs min-k %v", opt.Energy, best)
		}
	}
}

func TestL1Similarity(t *testing.T) {
	u := []float64{1, 0, 0.5}
	if got := L1Similarity(u, u, nil); got != 1 {
		t.Errorf("identical L1 = %v", got)
	}
	if got := L1Similarity([]float64{1, 1}, []float64{0, 0}, nil); got != 0 {
		t.Errorf("opposite L1 = %v", got)
	}
	if got := L1Similarity(nil, nil, nil); got != 1 {
		t.Errorf("empty L1 = %v", got)
	}
	// Weighted: zeroing the differing dimension makes them identical.
	if got := L1Similarity([]float64{1, 0}, []float64{1, 1}, []float64{1, 0}); got != 1 {
		t.Errorf("weighted L1 = %v", got)
	}
	// All-zero weights degrade to similarity 1.
	if got := L1Similarity([]float64{1}, []float64{0}, []float64{0}); got != 1 {
		t.Errorf("zero-weight L1 = %v", got)
	}
	// Values beyond [0,1] are clamped per-dimension.
	if got := L1Similarity([]float64{5}, []float64{0}, nil); got != 0 {
		t.Errorf("clamped L1 = %v", got)
	}
}

func TestL1SimilarityMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	L1Similarity([]float64{1}, []float64{1, 2}, nil)
}

func TestSimilarityFuncOverride(t *testing.T) {
	in := twoRegimes(6)
	cos, err := Optimal(in, Options{Ca: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := Optimal(in, Options{Ca: 1.2, SimilarityFunc: L1Similarity})
	if err != nil {
		t.Fatal(err)
	}
	// Both must find the regime boundary; energies may differ.
	if !cos.Cuts[3] || !l1.Cuts[3] {
		t.Fatalf("regime cut missing: cos=%v l1=%v", cos.Cuts, l1.Cuts)
	}
}

func TestSimilarityRangePropertyL1(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for i := range a {
			a[i] = math.Mod(math.Abs(a[i]), 1)
			b[i] = math.Mod(math.Abs(b[i]), 1)
		}
		s := L1Similarity(a[:], b[:], nil)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
