// Region manifests: the sidecar metadata that turns a directory of
// model files into a routable multi-region fleet. A -model-dir region
// directory may carry a region.json describing the region's name, its
// world/model file names and an optional bounding box used for spatial
// request routing (see internal/registry and docs/MULTI_REGION.md).
//
// Like the model codec, the parser treats its input as untrusted: the
// file crosses machine boundaries and is often hand-written, so every
// field is validated — unknown keys, path traversal in file names,
// out-of-range or inverted bounding boxes all fail with an error
// wrapping ErrInvalidManifest, never a panic.
package modelio

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"
)

// Names every region directory is interpreted with when region.json is
// absent or leaves a field empty.
const (
	// ManifestFile is the per-region sidecar manifest file name.
	ManifestFile = "region.json"
	// DefaultWorldFile is the region's road-network + landmark file
	// (the cmd/trajgen output name).
	DefaultWorldFile = "world.json"
	// DefaultModelFile is the region's trained model file (the
	// conventional -save-model name).
	DefaultModelFile = "model.stm"
)

// maxManifestBytes caps manifest input: a manifest is a handful of
// fields, so anything past this is not one.
const maxManifestBytes = 1 << 20

// ErrInvalidManifest marks any structural failure of a region manifest:
// malformed JSON, unknown fields, an illegal region name, a file name
// that escapes the region directory, or a degenerate bounding box.
var ErrInvalidManifest = errors.New("modelio: invalid region manifest")

// regionNameRE is the legal shape of a region name: it doubles as a
// directory name and a metrics/URL token, so it stays lowercase
// alphanumeric with inner dashes/underscores.
var regionNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// maxRegionNameLen bounds region names; they appear in every log line
// and metric snapshot.
const maxRegionNameLen = 64

// ValidRegionName reports whether name is a legal region key:
// lowercase alphanumeric with inner '-'/'_', at most 64 characters.
func ValidRegionName(name string) bool {
	return len(name) <= maxRegionNameLen && regionNameRE.MatchString(name)
}

// BBox is a geographic bounding box in degrees, min corner to max
// corner. Regions that declare one become spatially routable: a request
// without an explicit region key is routed to the region whose box
// contains the trajectory's first fix.
type BBox struct {
	MinLat float64 `json:"minLat"`
	MinLng float64 `json:"minLng"`
	MaxLat float64 `json:"maxLat"`
	MaxLng float64 `json:"maxLng"`
}

// Contains reports whether the point (lat, lng) lies inside the box,
// borders included.
func (b BBox) Contains(lat, lng float64) bool {
	return lat >= b.MinLat && lat <= b.MaxLat && lng >= b.MinLng && lng <= b.MaxLng
}

// Center returns the box's midpoint as (lat, lng).
func (b BBox) Center() (lat, lng float64) {
	return (b.MinLat + b.MaxLat) / 2, (b.MinLng + b.MaxLng) / 2
}

// validate checks the box is finite, in range and non-degenerate.
func (b BBox) validate() error {
	for _, v := range []float64{b.MinLat, b.MinLng, b.MaxLat, b.MaxLng} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: bbox coordinate is not finite", ErrInvalidManifest)
		}
	}
	if b.MinLat < -90 || b.MaxLat > 90 {
		return fmt.Errorf("%w: bbox latitude outside [-90, 90]", ErrInvalidManifest)
	}
	if b.MinLng < -180 || b.MaxLng > 180 {
		return fmt.Errorf("%w: bbox longitude outside [-180, 180]", ErrInvalidManifest)
	}
	if b.MinLat >= b.MaxLat || b.MinLng >= b.MaxLng {
		return fmt.Errorf("%w: bbox is empty (min corner must be strictly south-west of max)", ErrInvalidManifest)
	}
	return nil
}

// Manifest is one region's sidecar metadata (region.json). Every field
// is optional: the region name defaults to the directory name, the file
// names to DefaultWorldFile/DefaultModelFile, and a region without a
// BBox is reachable only by explicit region key.
type Manifest struct {
	// Region is the region's name. When set it must equal the directory
	// name it lives in (the registry enforces this), preventing two
	// directories from claiming the same key.
	Region string `json:"region,omitempty"`
	// World and Model name the region's world and model files, relative
	// to the region directory; bare file names only.
	World string `json:"world,omitempty"`
	Model string `json:"model,omitempty"`
	// BBox, when non-nil, makes the region spatially routable.
	BBox *BBox `json:"bbox,omitempty"`
}

// ParseManifest decodes and validates a region.json. The input is
// untrusted: unknown fields, oversized input, illegal names, path
// components in file names and malformed bounding boxes all return an
// error wrapping ErrInvalidManifest. Missing file names are filled with
// the defaults, so a returned manifest is ready to use.
func ParseManifest(data []byte) (*Manifest, error) {
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("%w: %d bytes exceeds limit", ErrInvalidManifest, len(data))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidManifest, err)
	}
	// A manifest is one JSON object; trailing content means the file is
	// not what it claims to be.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after manifest object", ErrInvalidManifest)
	}
	if m.Region != "" && !ValidRegionName(m.Region) {
		return nil, fmt.Errorf("%w: region name %q (want lowercase alphanumeric with inner '-'/'_', at most %d chars)",
			ErrInvalidManifest, m.Region, maxRegionNameLen)
	}
	if m.World == "" {
		m.World = DefaultWorldFile
	}
	if m.Model == "" {
		m.Model = DefaultModelFile
	}
	for _, f := range []string{m.World, m.Model} {
		if err := validateFileName(f); err != nil {
			return nil, err
		}
	}
	if m.BBox != nil {
		if err := m.BBox.validate(); err != nil {
			return nil, err
		}
	}
	return &m, nil
}

// validateFileName accepts only a bare file name: anything with path
// separators or traversal components could escape the region directory.
func validateFileName(name string) error {
	if name == "" || len(name) > maxKeyLen ||
		strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("%w: file name %q must be a bare file name inside the region directory", ErrInvalidManifest, name)
	}
	return nil
}
