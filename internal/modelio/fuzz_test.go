package modelio

import (
	"bytes"
	"testing"
)

// FuzzReadModel hammers the binary decoder with arbitrary bytes: whatever
// the input — truncation, flipped bits, absurd lengths, random garbage —
// Read must either return a model or an error, never panic, hang or
// over-allocate. Valid models must round-trip through a re-encode to
// byte-identical output, pinning the determinism contract.
func FuzzReadModel(f *testing.F) {
	var seed bytes.Buffer
	if _, err := Write(&seed, &Model{
		Version:                 3,
		FeatureKeys:             []string{"GR", "Spe"},
		CalibrationRadiusMeters: 100,
		MinAnchorSpacingMeters:  50,
		Stats:                   Stats{Calibrated: 2},
		PopularSeqs:             [][]int{{0, 1}, {1, 0}},
		Categorical:             []bool{true, false},
		Edges: []Edge{{From: 0, To: 1, N: 2, Sums: []float64{8, 50},
			Cats: []CatDim{{Dim: 0, Values: []ValueCount{{Value: 4, Count: 2}}}}}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("STMM"))
	f.Add(seed.Bytes()[:headerSize])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode (the decoder's
		// invariants are a superset of the encoder's) ...
		var out bytes.Buffer
		if _, err := Write(&out, m); err != nil {
			t.Fatalf("decoded model failed to re-encode: %v", err)
		}
		// ... and decode + re-encode must be a fixed point: one more
		// round trip yields the same bytes.
		m2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded model failed to decode: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := Write(&out2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
