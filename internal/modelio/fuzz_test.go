package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

// FuzzReadModel hammers the binary decoder with arbitrary bytes: whatever
// the input — truncation, flipped bits, absurd lengths, random garbage —
// Read must either return a model or an error, never panic, hang or
// over-allocate. Valid models must round-trip through a re-encode to
// byte-identical output, pinning the determinism contract.
func FuzzReadModel(f *testing.F) {
	var seed bytes.Buffer
	if _, err := Write(&seed, &Model{
		Version:                 3,
		FeatureKeys:             []string{"GR", "Spe"},
		CalibrationRadiusMeters: 100,
		MinAnchorSpacingMeters:  50,
		Stats:                   Stats{Calibrated: 2},
		PopularSeqs:             [][]int{{0, 1}, {1, 0}},
		Categorical:             []bool{true, false},
		Edges: []Edge{{From: 0, To: 1, N: 2, Sums: []float64{8, 50},
			Cats: []CatDim{{Dim: 0, Values: []ValueCount{{Value: 4, Count: 2}}}}}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("STMM"))
	f.Add(seed.Bytes()[:headerSize])
	// A format-2 model carrying a routing overlay (with an +Inf
	// unreachable entry), so the fuzzer explores the overlay decoder.
	var ovSeed bytes.Buffer
	if _, err := Write(&ovSeed, &Model{
		Version:     4,
		FeatureKeys: []string{"GR"},
		Categorical: []bool{false},
		Overlay: &Overlay{
			NumNodes:  3,
			Landmarks: []int{1, 0},
			Fwd:       [][]float64{{250, 0, 250}, {0, 250, math.Inf(1)}},
			Bwd:       [][]float64{{250, 0, math.Inf(1)}, {0, 250, 500}},
		},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(ovSeed.Bytes())
	// The same model as a version-1 file: the seed payload minus the
	// absent-overlay flag byte under a version-1 header, exercising the
	// backward-compat arm.
	v2 := seed.Bytes()
	v1payload := v2[headerSize : len(v2)-1]
	v1 := make([]byte, headerSize)
	copy(v1, v2[:headerSize])
	binary.LittleEndian.PutUint16(v1[4:], 1)
	binary.LittleEndian.PutUint64(v1[8:], uint64(len(v1payload)))
	binary.LittleEndian.PutUint32(v1[16:], crc32.Checksum(v1payload, crcTable))
	f.Add(append(v1, v1payload...))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode (the decoder's
		// invariants are a superset of the encoder's) ...
		var out bytes.Buffer
		if _, err := Write(&out, m); err != nil {
			t.Fatalf("decoded model failed to re-encode: %v", err)
		}
		// ... and decode + re-encode must be a fixed point: one more
		// round trip yields the same bytes.
		m2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded model failed to decode: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := Write(&out2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}

// FuzzParseManifest hammers the region-manifest parser: arbitrary bytes
// must yield either a fully-validated manifest or an error wrapping
// ErrInvalidManifest, never a panic. Accepted manifests must satisfy
// every invariant the registry relies on — legal region name, bare file
// names and a non-degenerate bounding box.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"region":"beijing"}`))
	f.Add([]byte(`{"region":"sh-2","world":"w.json","model":"m.stm","bbox":{"minLat":31.0,"minLng":121.0,"maxLat":31.5,"maxLng":121.9}}`))
	f.Add([]byte(`{"bbox":{"minLat":90,"minLng":0,"maxLat":-90,"maxLng":0}}`))
	f.Add([]byte(`{"region":"../evil"}`))
	f.Add([]byte(`{"model":"../../etc/passwd"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidManifest) {
				t.Fatalf("rejection not classified as ErrInvalidManifest: %v", err)
			}
			return
		}
		if m.Region != "" && !ValidRegionName(m.Region) {
			t.Fatalf("accepted illegal region name %q", m.Region)
		}
		for _, name := range []string{m.World, m.Model} {
			if err := validateFileName(name); err != nil {
				t.Fatalf("accepted illegal file name %q", name)
			}
		}
		if m.BBox != nil {
			if err := m.BBox.validate(); err != nil {
				t.Fatalf("accepted invalid bbox: %v", err)
			}
			clat, clng := m.BBox.Center()
			if !m.BBox.Contains(clat, clng) {
				t.Fatal("bbox does not contain its own center")
			}
		}
	})
}
