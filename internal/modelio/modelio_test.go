package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"stmaker/internal/sanitize"
)

// sampleModel is a small but fully-featured model: multiple sequences,
// categorical and numeric dims, multi-edge map with histograms.
func sampleModel() *Model {
	return &Model{
		Version:                 7,
		FeatureKeys:             []string{"GR", "Spe", "Stay"},
		CalibrationRadiusMeters: 100,
		MinAnchorSpacingMeters:  50,
		Stats: Stats{
			Calibrated: 42, Skipped: 3, Repaired: 5,
			Repairs: sanitize.Report{Input: 900, Output: 880, DroppedInvalid: 4, Reordered: 6, DroppedDuplicates: 2, DroppedOutliers: 5, CollapsedJitter: 3},
		},
		PopularSeqs: [][]int{{0, 1, 2}, {0, 2}, {3}},
		Categorical: []bool{true, false, false},
		Edges: []Edge{
			{From: 0, To: 1, N: 3, Sums: []float64{10, 61.5, 1},
				Cats: []CatDim{{Dim: 0, Values: []ValueCount{{Value: 2, Count: 2}, {Value: 6, Count: 1}}}}},
			{From: 1, To: 2, N: 1, Sums: []float64{4, 33.25, 0},
				Cats: []CatDim{{Dim: 0, Values: []ValueCount{{Value: 4, Count: 1}}}}},
		},
	}
}

// sampleOverlay is a tiny but structurally complete routing overlay:
// two landmarks over four nodes with an unreachable (+Inf) pair.
func sampleOverlay() *Overlay {
	inf := math.Inf(1)
	return &Overlay{
		NumNodes:  4,
		Landmarks: []int{2, 0},
		Fwd:       [][]float64{{700, 350, 0, inf}, {0, 350, 700, 1050}},
		Bwd:       [][]float64{{700, 350, 0, 1050}, {0, 350, 700, inf}},
	}
}

// rebuildFile assembles a complete model file around a raw payload with
// the given header version — the hook for crafting old-version and
// hand-corrupted (but CRC-valid) files.
func rebuildFile(version uint16, payload []byte) []byte {
	header := make([]byte, headerSize)
	copy(header, magic[:])
	binary.LittleEndian.PutUint16(header[4:], version)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(payload, crcTable))
	return append(header, payload...)
}

func encode(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := Write(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	m := sampleModel()
	data := encode(t, m)
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, m)
	}
}

func TestOverlayRoundTrip(t *testing.T) {
	m := sampleModel()
	m.Overlay = sampleOverlay()
	got, err := Read(bytes.NewReader(encode(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("overlay round trip diverged:\n got %+v\nwant %+v", got.Overlay, m.Overlay)
	}
	// Landmark order is selection order, not sorted — it must survive
	// verbatim.
	if got.Overlay.Landmarks[0] != 2 || got.Overlay.Landmarks[1] != 0 {
		t.Fatalf("landmark order not preserved: %v", got.Overlay.Landmarks)
	}
}

// TestVersion1FileStillLoads pins backward compatibility at the codec
// layer: a file with a version-1 header and no overlay section decodes to
// the same model with an absent overlay — old files are never rejected
// for being old.
func TestVersion1FileStillLoads(t *testing.T) {
	m := sampleModel()
	v2 := encode(t, m)
	payload := v2[headerSize:]
	// A version-1 payload is the version-2 payload minus the trailing
	// overlay section, which for an overlay-less model is the single 0
	// flag byte.
	if payload[len(payload)-1] != 0 {
		t.Fatal("expected absent-overlay flag as the final payload byte")
	}
	v1 := rebuildFile(1, payload[:len(payload)-1])
	got, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 file rejected: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("version-1 decode diverged:\n got %+v\nwant %+v", got, m)
	}
	// The overlay section is a version-2 construct: the same trailing
	// bytes under a version-1 header are trailing garbage.
	if _, err := Read(bytes.NewReader(rebuildFile(1, payload))); !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("version-1 file with trailing bytes: err = %v, want ErrInvalidModel", err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	a := encode(t, sampleModel())
	// Same content with edges and histogram values shuffled must encode
	// to identical bytes (Write sorts).
	m := sampleModel()
	m.Edges[0], m.Edges[1] = m.Edges[1], m.Edges[0]
	vs := m.Edges[1].Cats[0].Values
	vs[0], vs[1] = vs[1], vs[0]
	b := encode(t, m)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding depends on input order")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	valid := encode(t, sampleModel())
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:10]},
		{"bad magic", append([]byte("XXXX"), valid[4:]...)},
		{"future version", func() []byte {
			d := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(d[4:], 99)
			return d
		}()},
		{"truncated payload", valid[:len(valid)-5]},
		{"trailing garbage declared", func() []byte {
			d := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(d[8:], uint64(len(valid))) // longer than present
			return d
		}()},
		{"absurd length", func() []byte {
			d := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(d[8:], 1<<62)
			return d
		}()},
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewReader(c.data)); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", c.name, err)
		}
	}
	// Every single flipped byte anywhere in the file must be rejected
	// (header fields fail structurally; payload flips trip the CRC).
	for i := range valid {
		d := append([]byte(nil), valid...)
		d[i] ^= 0x40
		if _, err := Read(bytes.NewReader(d)); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		} else if !errors.Is(err, ErrInvalidModel) {
			t.Fatalf("flipped byte %d: err = %v, want ErrInvalidModel", i, err)
		}
	}
}

// TestReadRejectsInvalidPayloads re-checksums hand-corrupted payloads so
// they pass the CRC and exercise the structural validators themselves.
func TestReadRejectsInvalidPayloads(t *testing.T) {
	corrupt := func(name string, mut func(m *Model)) {
		t.Helper()
		m := sampleModel()
		mut(m)
		var buf bytes.Buffer
		if _, err := Write(&buf, m); err != nil {
			return // encoder already rejects it, equally fine
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", name, err)
		}
	}
	corrupt("dims mismatch", func(m *Model) { m.Categorical = []bool{true} })
	corrupt("histogram under-count", func(m *Model) { m.Edges[0].N = 9 })
	corrupt("empty key", func(m *Model) { m.FeatureKeys[0] = "" })
	corrupt("duplicate key", func(m *Model) { m.FeatureKeys[1] = "GR" })
	corrupt("negative id", func(m *Model) { m.PopularSeqs[0][0] = -1 })
	corrupt("histogram on numeric dim", func(m *Model) { m.Edges[0].Cats[0].Dim = 1 })
	corrupt("duplicate edge", func(m *Model) { m.Edges[1] = m.Edges[0] })
	// The encoder does not check landmark uniqueness; the decoder must.
	corrupt("duplicate overlay landmark", func(m *Model) {
		m.Overlay = sampleOverlay()
		m.Overlay.Landmarks[1] = 2
	})

	// Overlay corruptions the encoder refuses to produce: mutate the
	// encoded bytes directly and re-checksum so only the structural
	// validators can object. The overlay section sits at the end of the
	// payload; sampleOverlay's first landmark id (2) is the byte right
	// after the flag + numNodes + count varints.
	m := sampleModel()
	m.Overlay = sampleOverlay()
	valid := encode(t, m)
	payload := append([]byte(nil), valid[headerSize:]...)
	overlayOff := len(payload) - (1 + 1 + 1 + 2 + 2*2*4*8) // flag, numNodes, count, 2 ids, 2x2x4 f64
	if payload[overlayOff] != 1 {
		t.Fatalf("overlay flag not at computed offset (byte = %d)", payload[overlayOff])
	}
	rawCases := map[string]func(p []byte){
		"overlay flag neither 0 nor 1":  func(p []byte) { p[overlayOff] = 7 },
		"overlay landmark out of range": func(p []byte) { p[overlayOff+3] = 9 },
		"overlay NaN distance": func(p []byte) {
			binary.LittleEndian.PutUint64(p[overlayOff+5:], math.Float64bits(math.NaN()))
		},
		"overlay negative distance": func(p []byte) {
			binary.LittleEndian.PutUint64(p[overlayOff+5:], math.Float64bits(-1))
		},
		"overlay truncated tables": func(p []byte) { p[overlayOff+2] = 3 }, // claims 3 landmarks, bytes for 2
	}
	for name, mut := range rawCases {
		p := append([]byte(nil), payload...)
		mut(p)
		if _, err := Read(bytes.NewReader(rebuildFile(FormatVersion, p))); !errors.Is(err, ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", name, err)
		}
	}
}

// TestWriteValidates pins encoder-side strictness: a malformed in-memory
// model must not produce a file at all.
func TestWriteValidates(t *testing.T) {
	cases := map[string]func(m *Model){
		"sums dims":      func(m *Model) { m.Edges[0].Sums = []float64{1} },
		"zero count":     func(m *Model) { m.Edges[0].N = 0 },
		"negative stat":  func(m *Model) { m.Stats.Calibrated = -1 },
		"long key":       func(m *Model) { m.FeatureKeys[0] = strings.Repeat("x", 300) },
		"value over n":   func(m *Model) { m.Edges[1].Cats[0].Values[0].Count = 5 },
		"histogram!=sum": func(m *Model) { m.Edges[0].Cats[0].Values[0].Count = 1 },
		"overlay zero landmarks": func(m *Model) {
			m.Overlay = sampleOverlay()
			m.Overlay.Landmarks = nil
			m.Overlay.Fwd = nil
			m.Overlay.Bwd = nil
		},
		"overlay row length": func(m *Model) {
			m.Overlay = sampleOverlay()
			m.Overlay.Fwd[0] = m.Overlay.Fwd[0][:2]
		},
		"overlay table count": func(m *Model) {
			m.Overlay = sampleOverlay()
			m.Overlay.Bwd = m.Overlay.Bwd[:1]
		},
		"overlay id out of range": func(m *Model) {
			m.Overlay = sampleOverlay()
			m.Overlay.Landmarks[0] = 4
		},
		"overlay NaN": func(m *Model) {
			m.Overlay = sampleOverlay()
			m.Overlay.Bwd[1][1] = math.NaN()
		},
		"overlay negative": func(m *Model) {
			m.Overlay = sampleOverlay()
			m.Overlay.Fwd[1][1] = -3
		},
	}
	for name, mut := range cases {
		m := sampleModel()
		mut(m)
		if _, err := Write(io.Discard, m); err == nil {
			t.Errorf("%s: malformed model encoded without error", name)
		}
	}
}

func TestReadStopsAtModelBoundary(t *testing.T) {
	// Two models back to back: Read must consume exactly one.
	var buf bytes.Buffer
	if _, err := Write(&buf, sampleModel()); err != nil {
		t.Fatal(err)
	}
	second := sampleModel()
	second.Version = 8
	if _, err := Write(&buf, second); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	m1, err := Read(r)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Read(r)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 7 || m2.Version != 8 {
		t.Fatalf("versions = %d, %d", m1.Version, m2.Version)
	}
}

func TestEmptyModelRoundTrips(t *testing.T) {
	m := &Model{Version: 1}
	got, err := Read(bytes.NewReader(encode(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || len(got.Edges) != 0 || len(got.PopularSeqs) != 0 {
		t.Fatalf("got %+v", got)
	}
}
