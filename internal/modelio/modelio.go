// Package modelio is the persistence layer for STMaker's trained
// knowledge: a versioned, checksummed binary codec for the model a
// Summarizer publishes after Train (the §V historical feature map and
// popular-route statistics, plus the registry fingerprint and build
// parameters the knowledge is only valid under).
//
// The format is deliberately dependency-free (stdlib encoding/binary +
// hash/crc32) and deliberately strict on the way in: model files cross
// machine and process boundaries, so Read treats its input as untrusted —
// every length is bounded by the bytes actually present, every structural
// invariant (dimensionality agreement, sorted unique edges, categorical
// histograms that sum to their edge count) is verified, and any violation
// returns an error wrapping ErrInvalidModel rather than panicking or
// over-allocating. Corruption anywhere in the payload is caught by a
// CRC-32C checksum before field decoding even starts.
//
// Layout (all integers little-endian; "uv" is unsigned varint):
//
//	magic "STMM" | u16 format | u16 reserved | u64 payload len | u32 CRC-32C
//	payload:
//	  uv modelVersion
//	  uv #featureKeys, each: uv len + bytes
//	  f64 calibrationRadiusMeters, f64 minAnchorSpacingMeters
//	  stats: uv calibrated, skipped, repaired + 7 uv sanitize-report counts
//	  uv #popularSeqs, each: uv len, then uv landmark ids
//	  uv dims (== #featureKeys), dims × u8 categorical flags
//	  uv #edges (sorted by (from,to), unique), each:
//	    uv from, uv to, uv n, dims × f64 sums,
//	    uv #catDims, each: uv dim (ascending, categorical),
//	      uv #values, each: f64 value (ascending), uv count
//	  [format >= 2] u8 overlayPresent, when 1:
//	    uv numNodes, uv numLandmarks, numLandmarks × uv landmark node id,
//	    numLandmarks × numNodes f64 forward distances (landmark → node),
//	    numLandmarks × numNodes f64 backward distances (node → landmark)
//
// Version 2 added the precomputed ALT routing overlay. Files written by
// version 1 still load — the overlay simply comes back absent, and the
// serving layer falls back to the plain Dijkstra engine. Read never
// rejects a file for being old, only for being malformed.
//
// Encoding is deterministic: Write sorts edges, categorical dimensions
// and histogram values (the overlay's landmark order is meaningful —
// farthest-point selection order — and is preserved as given), so saving
// the same model twice yields identical bytes — which makes "the files
// differ" a meaningful signal.
package modelio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"stmaker/internal/sanitize"
)

// FormatVersion identifies the on-disk binary schema Write produces.
// Read accepts every version from OldestFormatVersion up to this one.
const FormatVersion = 2

// OldestFormatVersion is the oldest on-disk schema Read still accepts:
// version 1 files (pre-overlay) load with an absent overlay.
const OldestFormatVersion = 1

// magic is the file signature ("STMaker Model").
var magic = [4]byte{'S', 'T', 'M', 'M'}

// headerSize is magic + format + reserved + payload length + CRC.
const headerSize = 4 + 2 + 2 + 8 + 4

// Hard caps on untrusted input. They are far above anything a real model
// contains but keep a hostile header from provoking huge allocations.
const (
	maxPayloadBytes = 1 << 30 // 1 GiB
	maxFeatureKeys  = 1 << 12
	maxKeyLen       = 256
	maxLandmarkID   = math.MaxInt32
	maxCount        = math.MaxInt32
	// maxOverlayLandmarks caps the routing overlay's landmark count; real
	// overlays use ~16 (roadnet.DefaultOverlayLandmarks), so anything near
	// this limit is hostile input.
	maxOverlayLandmarks = 1 << 10
)

// ErrInvalidModel marks any structural failure of a model file: bad
// magic, unsupported version, checksum mismatch, truncation, or a payload
// violating the format's invariants. Callers classify with errors.Is.
var ErrInvalidModel = errors.New("modelio: invalid model data")

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64
// and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Model is the codec's neutral view of a trained model — plain data, no
// behaviour — so the persistence layer depends on neither the root
// stmaker package nor internal/history.
type Model struct {
	// Version is the model's publish sequence number at save time.
	Version uint64
	// FeatureKeys fingerprints the feature registry the model was built
	// under, in vector order.
	FeatureKeys []string
	// CalibrationRadiusMeters and MinAnchorSpacingMeters are the
	// calibration parameters the training corpus was rewritten with; a
	// summarizer configured differently must reject the model.
	CalibrationRadiusMeters float64
	MinAnchorSpacingMeters  float64
	// Stats are the corpus statistics of the Train call that built the
	// model.
	Stats Stats
	// PopularSeqs are the corpus landmark sequences, the complete state
	// of the popular-route knowledge.
	PopularSeqs [][]int
	// Categorical flags each feature dimension (mode vs mean
	// aggregation); len == len(FeatureKeys).
	Categorical []bool
	// Edges are the historical feature map's per-transition aggregates.
	Edges []Edge
	// Overlay is the precomputed ALT routing overlay, nil when the model
	// carries none (overlay disabled, or a version-1 file).
	Overlay *Overlay
}

// Overlay is the codec's view of a precomputed ALT routing overlay:
// landmark node ids (in selection order) and their dense forward
// (landmark → node) and backward (node → landmark) distance tables over
// the road graph's NumNodes nodes. Distances are meters; +Inf marks an
// unreachable pair (legitimate on directed graphs).
type Overlay struct {
	NumNodes  int
	Landmarks []int
	Fwd       [][]float64
	Bwd       [][]float64
}

// Stats mirrors the corpus statistics of stmaker.TrainStats (transitions
// are derivable from Edges and not stored).
type Stats struct {
	Calibrated int
	Skipped    int
	Repaired   int
	Repairs    sanitize.Report
}

// Edge is one historical-feature-map transition: n observations with
// per-dimension sums, plus per-categorical-dimension value histograms.
type Edge struct {
	From, To int
	N        int
	Sums     []float64
	Cats     []CatDim
}

// CatDim is the value histogram of one categorical dimension on one edge.
type CatDim struct {
	Dim    int
	Values []ValueCount
}

// ValueCount is one observed categorical value and its frequency.
type ValueCount struct {
	Value float64
	Count int
}

// Write encodes m and writes it to w, returning the bytes written. The
// encoding is deterministic (see the package comment); Write does not
// mutate m.
func Write(w io.Writer, m *Model) (int64, error) {
	payload, err := encodePayload(m)
	if err != nil {
		return 0, err
	}
	header := make([]byte, headerSize)
	copy(header, magic[:])
	binary.LittleEndian.PutUint16(header[4:], FormatVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[16:], crc32.Checksum(payload, crcTable))
	n1, err := w.Write(header)
	if err != nil {
		return int64(n1), err
	}
	n2, err := w.Write(payload)
	return int64(n1) + int64(n2), err
}

// Read decodes a model written by Write. Input is untrusted: any
// structural problem — truncation, flipped bytes, absurd lengths —
// returns an error wrapping ErrInvalidModel; Read never panics and never
// allocates more than the bytes actually supplied (plus small constant
// factors).
func Read(r io.Reader) (*Model, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrInvalidModel, err)
	}
	if !bytes.Equal(header[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrInvalidModel, header[:4])
	}
	version := binary.LittleEndian.Uint16(header[4:])
	if version < OldestFormatVersion || version > FormatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (this build reads %d..%d)",
			ErrInvalidModel, version, OldestFormatVersion, FormatVersion)
	}
	if v := binary.LittleEndian.Uint16(header[6:]); v != 0 {
		return nil, fmt.Errorf("%w: reserved header field is %d, want 0", ErrInvalidModel, v)
	}
	length := binary.LittleEndian.Uint64(header[8:])
	if length > maxPayloadBytes {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrInvalidModel, length)
	}
	// ReadAll grows as bytes actually arrive, so a lying length field
	// cannot force a large allocation from a tiny stream.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrInvalidModel, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrInvalidModel, len(payload), length)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(header[16:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (payload %08x, header %08x)", ErrInvalidModel, got, want)
	}
	return decodePayload(payload, int(version))
}

// --- encoding ---

func encodePayload(m *Model) ([]byte, error) {
	dims := len(m.FeatureKeys)
	if dims > maxFeatureKeys {
		return nil, fmt.Errorf("modelio: %d feature keys exceeds limit", dims)
	}
	if len(m.Categorical) != dims {
		return nil, fmt.Errorf("modelio: %d categorical flags for %d feature keys", len(m.Categorical), dims)
	}
	buf := binary.AppendUvarint(nil, m.Version)
	buf = binary.AppendUvarint(buf, uint64(dims))
	for _, k := range m.FeatureKeys {
		if k == "" || len(k) > maxKeyLen {
			return nil, fmt.Errorf("modelio: feature key %q has invalid length", k)
		}
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	buf = appendF64(buf, m.CalibrationRadiusMeters)
	buf = appendF64(buf, m.MinAnchorSpacingMeters)
	for _, v := range []int{
		m.Stats.Calibrated, m.Stats.Skipped, m.Stats.Repaired,
		m.Stats.Repairs.Input, m.Stats.Repairs.Output,
		m.Stats.Repairs.DroppedInvalid, m.Stats.Repairs.Reordered,
		m.Stats.Repairs.DroppedDuplicates, m.Stats.Repairs.DroppedOutliers,
		m.Stats.Repairs.CollapsedJitter,
	} {
		if v < 0 {
			return nil, fmt.Errorf("modelio: negative corpus statistic %d", v)
		}
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.PopularSeqs)))
	for _, seq := range m.PopularSeqs {
		buf = binary.AppendUvarint(buf, uint64(len(seq)))
		for _, id := range seq {
			if id < 0 || id > maxLandmarkID {
				return nil, fmt.Errorf("modelio: landmark id %d out of range", id)
			}
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(dims))
	for _, c := range m.Categorical {
		if c {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	edges := append([]Edge(nil), m.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		var err error
		if buf, err = appendEdge(buf, e, m.Categorical); err != nil {
			return nil, err
		}
	}
	return appendOverlay(buf, m.Overlay)
}

func appendOverlay(buf []byte, o *Overlay) ([]byte, error) {
	if o == nil {
		return append(buf, 0), nil
	}
	k := len(o.Landmarks)
	if k == 0 || k > maxOverlayLandmarks {
		return nil, fmt.Errorf("modelio: overlay has %d landmarks (want 1..%d)", k, maxOverlayLandmarks)
	}
	if o.NumNodes <= 0 || o.NumNodes > maxLandmarkID {
		return nil, fmt.Errorf("modelio: overlay node count %d out of range", o.NumNodes)
	}
	if len(o.Fwd) != k || len(o.Bwd) != k {
		return nil, fmt.Errorf("modelio: overlay has %d landmarks but %d/%d table rows", k, len(o.Fwd), len(o.Bwd))
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(o.NumNodes))
	buf = binary.AppendUvarint(buf, uint64(k))
	for i, id := range o.Landmarks {
		if id < 0 || id >= o.NumNodes {
			return nil, fmt.Errorf("modelio: overlay landmark %d is node %d, graph has %d nodes", i, id, o.NumNodes)
		}
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	for _, table := range [2][][]float64{o.Fwd, o.Bwd} {
		for i, row := range table {
			if len(row) != o.NumNodes {
				return nil, fmt.Errorf("modelio: overlay table row %d has %d entries, want %d", i, len(row), o.NumNodes)
			}
			for _, v := range row {
				if math.IsNaN(v) || v < 0 {
					return nil, fmt.Errorf("modelio: overlay distance %v invalid", v)
				}
				buf = appendF64(buf, v)
			}
		}
	}
	return buf, nil
}

func appendEdge(buf []byte, e Edge, categorical []bool) ([]byte, error) {
	dims := len(categorical)
	if e.From < 0 || e.From > maxLandmarkID || e.To < 0 || e.To > maxLandmarkID {
		return nil, fmt.Errorf("modelio: edge %d->%d out of range", e.From, e.To)
	}
	if e.N <= 0 || e.N > maxCount {
		return nil, fmt.Errorf("modelio: edge %d->%d has invalid count %d", e.From, e.To, e.N)
	}
	if len(e.Sums) != dims {
		return nil, fmt.Errorf("modelio: edge %d->%d has %d sums, want %d", e.From, e.To, len(e.Sums), dims)
	}
	buf = binary.AppendUvarint(buf, uint64(e.From))
	buf = binary.AppendUvarint(buf, uint64(e.To))
	buf = binary.AppendUvarint(buf, uint64(e.N))
	for _, s := range e.Sums {
		buf = appendF64(buf, s)
	}
	cats := append([]CatDim(nil), e.Cats...)
	sort.Slice(cats, func(i, j int) bool { return cats[i].Dim < cats[j].Dim })
	buf = binary.AppendUvarint(buf, uint64(len(cats)))
	for _, cd := range cats {
		if cd.Dim < 0 || cd.Dim >= dims || !categorical[cd.Dim] {
			return nil, fmt.Errorf("modelio: edge %d->%d histogram on non-categorical dim %d", e.From, e.To, cd.Dim)
		}
		buf = binary.AppendUvarint(buf, uint64(cd.Dim))
		values := append([]ValueCount(nil), cd.Values...)
		sort.Slice(values, func(i, j int) bool { return values[i].Value < values[j].Value })
		total := 0
		buf = binary.AppendUvarint(buf, uint64(len(values)))
		for _, vc := range values {
			if vc.Count <= 0 || vc.Count > e.N {
				return nil, fmt.Errorf("modelio: edge %d->%d dim %d value count %d invalid", e.From, e.To, cd.Dim, vc.Count)
			}
			if math.IsNaN(vc.Value) {
				return nil, fmt.Errorf("modelio: edge %d->%d dim %d has NaN category code", e.From, e.To, cd.Dim)
			}
			total += vc.Count
			buf = appendF64(buf, vc.Value)
			buf = binary.AppendUvarint(buf, uint64(vc.Count))
		}
		if total != e.N {
			return nil, fmt.Errorf("modelio: edge %d->%d dim %d histogram sums to %d, want %d", e.From, e.To, cd.Dim, total, e.N)
		}
	}
	return buf, nil
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// --- decoding ---

// decoder walks the payload with bounds-checked reads; every failure
// wraps ErrInvalidModel with the byte offset for diagnosis.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) fail(format string, args ...any) error {
	return fmt.Errorf("%w: at byte %d: %s", ErrInvalidModel, d.off, fmt.Sprintf(format, args...))
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.fail("bad varint")
	}
	d.off += n
	return v, nil
}

// count reads a collection length and verifies the remaining payload can
// physically hold that many elements of at least minBytes each — the
// guard that makes absurd lengths error instead of over-allocating.
func (d *decoder) count(what string, minBytes int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(d.remaining()/minBytes) {
		return 0, d.fail("%s count %d exceeds remaining %d bytes", what, v, d.remaining())
	}
	return int(v), nil
}

func (d *decoder) f64() (float64, error) {
	if d.remaining() < 8 {
		return 0, d.fail("truncated float")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

func (d *decoder) intField(what string, max uint64) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, d.fail("%s %d exceeds limit %d", what, v, max)
	}
	return int(v), nil
}

func decodePayload(payload []byte, version int) (*Model, error) {
	d := &decoder{buf: payload}
	m := &Model{}
	var err error
	if m.Version, err = d.uvarint(); err != nil {
		return nil, err
	}
	nKeys, err := d.count("feature key", 2)
	if err != nil {
		return nil, err
	}
	if nKeys > maxFeatureKeys {
		return nil, d.fail("%d feature keys exceeds limit", nKeys)
	}
	m.FeatureKeys = make([]string, nKeys)
	seen := make(map[string]bool, nKeys)
	for i := range m.FeatureKeys {
		kl, err := d.intField("key length", maxKeyLen)
		if err != nil {
			return nil, err
		}
		if kl == 0 || kl > d.remaining() {
			return nil, d.fail("key length %d invalid", kl)
		}
		k := string(d.buf[d.off : d.off+kl])
		d.off += kl
		if seen[k] {
			return nil, d.fail("duplicate feature key %q", k)
		}
		seen[k] = true
		m.FeatureKeys[i] = k
	}
	if m.CalibrationRadiusMeters, err = d.f64(); err != nil {
		return nil, err
	}
	if m.MinAnchorSpacingMeters, err = d.f64(); err != nil {
		return nil, err
	}
	for _, dst := range []*int{
		&m.Stats.Calibrated, &m.Stats.Skipped, &m.Stats.Repaired,
		&m.Stats.Repairs.Input, &m.Stats.Repairs.Output,
		&m.Stats.Repairs.DroppedInvalid, &m.Stats.Repairs.Reordered,
		&m.Stats.Repairs.DroppedDuplicates, &m.Stats.Repairs.DroppedOutliers,
		&m.Stats.Repairs.CollapsedJitter,
	} {
		if *dst, err = d.intField("corpus statistic", maxCount); err != nil {
			return nil, err
		}
	}
	nSeqs, err := d.count("sequence", 1)
	if err != nil {
		return nil, err
	}
	m.PopularSeqs = make([][]int, nSeqs)
	for i := range m.PopularSeqs {
		sl, err := d.count("sequence element", 1)
		if err != nil {
			return nil, err
		}
		seq := make([]int, sl)
		for j := range seq {
			if seq[j], err = d.intField("landmark id", maxLandmarkID); err != nil {
				return nil, err
			}
		}
		m.PopularSeqs[i] = seq
	}
	dims, err := d.intField("dims", maxFeatureKeys)
	if err != nil {
		return nil, err
	}
	if dims != nKeys {
		return nil, d.fail("feature map has %d dims, registry fingerprint has %d keys", dims, nKeys)
	}
	if d.remaining() < dims {
		return nil, d.fail("truncated categorical flags")
	}
	m.Categorical = make([]bool, dims)
	for i := range m.Categorical {
		switch d.buf[d.off] {
		case 0:
		case 1:
			m.Categorical[i] = true
		default:
			return nil, d.fail("categorical flag %d is %d, want 0 or 1", i, d.buf[d.off])
		}
		d.off++
	}
	// Each edge carries at least 3 varints + dims floats + 1 varint.
	nEdges, err := d.count("edge", 4+8*dims)
	if err != nil {
		return nil, err
	}
	m.Edges = make([]Edge, 0, nEdges)
	prev := [2]int{-1, -1}
	for i := 0; i < nEdges; i++ {
		e, err := d.edge(dims, m.Categorical)
		if err != nil {
			return nil, err
		}
		cur := [2]int{e.From, e.To}
		if !(prev[0] < cur[0] || (prev[0] == cur[0] && prev[1] < cur[1])) {
			return nil, d.fail("edges not sorted/unique at %d->%d", e.From, e.To)
		}
		prev = cur
		m.Edges = append(m.Edges, e)
	}
	if version >= 2 {
		if m.Overlay, err = d.overlay(); err != nil {
			return nil, err
		}
	}
	if d.remaining() != 0 {
		return nil, d.fail("%d trailing bytes after model", d.remaining())
	}
	return m, nil
}

// overlay decodes the format-2 routing-overlay section. Like the rest of
// the payload it is untrusted: counts are bounded by the bytes actually
// present before any table allocation, landmark ids must be unique and in
// range, and every distance must be a non-negative non-NaN float (+Inf is
// a legitimate unreachability marker).
func (d *decoder) overlay() (*Overlay, error) {
	if d.remaining() < 1 {
		return nil, d.fail("truncated overlay flag")
	}
	present := d.buf[d.off]
	d.off++
	switch present {
	case 0:
		return nil, nil
	case 1:
	default:
		return nil, d.fail("overlay flag is %d, want 0 or 1", present)
	}
	o := &Overlay{}
	var err error
	if o.NumNodes, err = d.intField("overlay node count", maxLandmarkID); err != nil {
		return nil, err
	}
	if o.NumNodes == 0 {
		return nil, d.fail("overlay present but covers zero nodes")
	}
	k, err := d.intField("overlay landmark count", maxOverlayLandmarks)
	if err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, d.fail("overlay present but has zero landmarks")
	}
	// Each landmark costs at least 1 id byte + 16*numNodes table bytes;
	// verify the payload can physically hold the tables before allocating
	// them. Products stay far below int64 overflow (counts are <= 2^31
	// and 2^10).
	if need := k * (1 + 16*o.NumNodes); need > d.remaining() {
		return nil, d.fail("overlay of %d landmarks x %d nodes needs %d bytes, %d remain", k, o.NumNodes, need, d.remaining())
	}
	o.Landmarks = make([]int, k)
	seen := make(map[int]bool, k)
	for i := range o.Landmarks {
		id, err := d.intField("overlay landmark id", uint64(o.NumNodes-1))
		if err != nil {
			return nil, err
		}
		if seen[id] {
			return nil, d.fail("duplicate overlay landmark node %d", id)
		}
		seen[id] = true
		o.Landmarks[i] = id
	}
	for _, dst := range []*[][]float64{&o.Fwd, &o.Bwd} {
		table := make([][]float64, k)
		for i := range table {
			row := make([]float64, o.NumNodes)
			for j := range row {
				v, err := d.f64()
				if err != nil {
					return nil, err
				}
				if math.IsNaN(v) || v < 0 {
					return nil, d.fail("overlay distance %v invalid", v)
				}
				row[j] = v
			}
			table[i] = row
		}
		*dst = table
	}
	return o, nil
}

func (d *decoder) edge(dims int, categorical []bool) (Edge, error) {
	var e Edge
	var err error
	if e.From, err = d.intField("edge from", maxLandmarkID); err != nil {
		return e, err
	}
	if e.To, err = d.intField("edge to", maxLandmarkID); err != nil {
		return e, err
	}
	if e.N, err = d.intField("edge count", maxCount); err != nil {
		return e, err
	}
	if e.N == 0 {
		return e, d.fail("edge %d->%d has zero observations", e.From, e.To)
	}
	e.Sums = make([]float64, dims)
	for j := range e.Sums {
		if e.Sums[j], err = d.f64(); err != nil {
			return e, err
		}
	}
	nCats, err := d.count("categorical histogram", 3)
	if err != nil {
		return e, err
	}
	if nCats > dims {
		return e, d.fail("edge %d->%d has %d histograms for %d dims", e.From, e.To, nCats, dims)
	}
	prevDim := -1
	for c := 0; c < nCats; c++ {
		var cd CatDim
		if cd.Dim, err = d.intField("histogram dim", uint64(dims-1)); err != nil {
			return e, err
		}
		if cd.Dim <= prevDim {
			return e, d.fail("histogram dims not ascending at %d", cd.Dim)
		}
		prevDim = cd.Dim
		if !categorical[cd.Dim] {
			return e, d.fail("histogram on non-categorical dim %d", cd.Dim)
		}
		nVals, err := d.count("histogram value", 9)
		if err != nil {
			return e, err
		}
		total := 0
		prevVal := math.Inf(-1)
		for v := 0; v < nVals; v++ {
			var vc ValueCount
			if vc.Value, err = d.f64(); err != nil {
				return e, err
			}
			if !(vc.Value > prevVal) { //lint:allow floateq -- strict ordering check, not an equality test
				return e, d.fail("histogram values not ascending")
			}
			prevVal = vc.Value
			if vc.Count, err = d.intField("value count", uint64(e.N)); err != nil {
				return e, err
			}
			if vc.Count == 0 {
				return e, d.fail("histogram value with zero count")
			}
			total += vc.Count
			cd.Values = append(cd.Values, vc)
		}
		if total != e.N {
			return e, d.fail("edge %d->%d dim %d histogram sums to %d, want %d", e.From, e.To, cd.Dim, total, e.N)
		}
		e.Cats = append(e.Cats, cd)
	}
	return e, nil
}
