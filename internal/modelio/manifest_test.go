package modelio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestParseManifest is the manifest parser's behavioural table: every
// accepted shape and every rejection class the registry depends on.
func TestParseManifest(t *testing.T) {
	tests := []struct {
		name  string
		input string
		want  *Manifest // nil means parsing must fail with ErrInvalidManifest
	}{
		{
			name:  "empty object fills defaults",
			input: `{}`,
			want:  &Manifest{World: DefaultWorldFile, Model: DefaultModelFile},
		},
		{
			name:  "region only",
			input: `{"region":"beijing"}`,
			want:  &Manifest{Region: "beijing", World: DefaultWorldFile, Model: DefaultModelFile},
		},
		{
			name:  "all fields",
			input: `{"region":"sh-2","world":"w.json","model":"m.stm","bbox":{"minLat":31.0,"minLng":121.0,"maxLat":31.5,"maxLng":121.9}}`,
			want: &Manifest{Region: "sh-2", World: "w.json", Model: "m.stm",
				BBox: &BBox{MinLat: 31.0, MinLng: 121.0, MaxLat: 31.5, MaxLng: 121.9}},
		},
		{name: "not json", input: `not json`},
		{name: "trailing data", input: `{} {}`},
		{name: "unknown field", input: `{"regoin":"typo"}`},
		{name: "uppercase region", input: `{"region":"Beijing"}`},
		{name: "region leading dash", input: `{"region":"-x"}`},
		{name: "region with slash", input: `{"region":"a/b"}`},
		{name: "region too long", input: `{"region":"` + strings.Repeat("a", 65) + `"}`},
		{name: "world path traversal", input: `{"world":"../world.json"}`},
		{name: "model absolute path", input: `{"model":"/etc/passwd"}`},
		{name: "model backslash", input: `{"model":"a\\b"}`},
		{name: "bbox inverted lat", input: `{"bbox":{"minLat":40,"minLng":116,"maxLat":39,"maxLng":117}}`},
		{name: "bbox empty", input: `{"bbox":{"minLat":39,"minLng":116,"maxLat":39,"maxLng":116}}`},
		{name: "bbox lat out of range", input: `{"bbox":{"minLat":-91,"minLng":0,"maxLat":0,"maxLng":1}}`},
		{name: "bbox lng out of range", input: `{"bbox":{"minLat":0,"minLng":0,"maxLat":1,"maxLng":181}}`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseManifest([]byte(tc.input))
			if tc.want == nil {
				if !errors.Is(err, ErrInvalidManifest) {
					t.Fatalf("ParseManifest(%q) err = %v, want ErrInvalidManifest", tc.input, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseManifest(%q) = %v, want success", tc.input, err)
			}
			if got.Region != tc.want.Region || got.World != tc.want.World || got.Model != tc.want.Model {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
			switch {
			case (got.BBox == nil) != (tc.want.BBox == nil):
				t.Errorf("bbox presence: got %v, want %v", got.BBox, tc.want.BBox)
			case got.BBox != nil && *got.BBox != *tc.want.BBox:
				t.Errorf("bbox: got %+v, want %+v", *got.BBox, *tc.want.BBox)
			}
		})
	}
}

func TestParseManifestSizeLimit(t *testing.T) {
	huge := append([]byte(`{"region":"a`), bytes.Repeat([]byte{'a'}, maxManifestBytes)...)
	if _, err := ParseManifest(huge); !errors.Is(err, ErrInvalidManifest) {
		t.Errorf("oversized manifest err = %v, want ErrInvalidManifest", err)
	}
}

func TestBBoxContainsAndCenter(t *testing.T) {
	b := BBox{MinLat: 39.8, MinLng: 116.2, MaxLat: 40.0, MaxLng: 116.6}
	lat, lng := b.Center()
	if !b.Contains(lat, lng) {
		t.Error("bbox does not contain its center")
	}
	if !b.Contains(39.8, 116.2) || !b.Contains(40.0, 116.6) {
		t.Error("bbox borders must be inclusive")
	}
	if b.Contains(39.79, 116.4) || b.Contains(39.9, 116.61) {
		t.Error("bbox contains points outside itself")
	}
}

func TestValidRegionName(t *testing.T) {
	for _, ok := range []string{"a", "beijing", "sh-2", "a_b-c9", "0start"} {
		if !ValidRegionName(ok) {
			t.Errorf("ValidRegionName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "-a", "_a", "A", "a b", "a.b", "a/b", strings.Repeat("x", 65)} {
		if ValidRegionName(bad) {
			t.Errorf("ValidRegionName(%q) = true, want false", bad)
		}
	}
}
