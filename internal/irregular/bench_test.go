package irregular

import (
	"math"
	"math/rand"
	"testing"
)

func benchSeq(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 7
	}
	return out
}

func BenchmarkEditDistance50(b *testing.B) {
	a, c := benchSeq(50, 1), benchSeq(50, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistance(a, c, true)
	}
}

func BenchmarkRoutingRate(b *testing.B) {
	a, c := benchSeq(20, 3), benchSeq(25, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RoutingRate(a, c, true, 1)
	}
}

func BenchmarkMovingRate(b *testing.B) {
	a, c := benchSeq(20, 5), benchSeq(20, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MovingRate(a, c, 1)
	}
}

func FuzzEditDistance(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{1, 5, 3})
	f.Add([]byte{}, []byte{9})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		// Interpret bytes as small categorical codes.
		a := make([]float64, len(ab))
		for i, x := range ab {
			a[i] = float64(x % 8)
		}
		c := make([]float64, len(bb))
		for i, x := range bb {
			c[i] = float64(x % 8)
		}
		d := EditDistance(a, c, false)
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("negative/NaN distance %v", d)
		}
		if d > float64(len(a)+len(c)) {
			t.Fatalf("distance %v exceeds worst-case alignment %d", d, len(a)+len(c))
		}
		if rev := EditDistance(c, a, false); math.Abs(rev-d) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d, rev)
		}
		// Triangle-ish bound vs empty: |len(a)-len(c)| ≤ d.
		if diff := math.Abs(float64(len(a) - len(c))); d < diff-1e-9 {
			t.Fatalf("distance %v below length gap %v", d, diff)
		}
	})
}
