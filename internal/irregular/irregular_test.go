package irregular

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEditDistanceCategorical(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1, 2}, nil, 2},
		{nil, []float64{1}, 1},
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{[]float64{1, 2, 3}, []float64{1, 5, 3}, 1},
		{[]float64{1, 2}, []float64{1, 2, 3}, 1},
		{[]float64{1, 1, 1}, []float64{2, 2, 2}, 3},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b, false); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EditDistance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceNumeric(t *testing.T) {
	// Substitution costs |a−b|.
	got := EditDistance([]float64{0.5}, []float64{0.9}, true)
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("numeric substitution = %v, want 0.4", got)
	}
	// Cheap substitutions chain up.
	got = EditDistance([]float64{0.1, 0.2}, []float64{0.2, 0.3}, true)
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("numeric chain = %v, want 0.2", got)
	}
	// A large numeric gap is still capped by indel cost via the DP
	// (delete+insert = 2 beats substitute 5... substitution |5| vs 2).
	got = EditDistance([]float64{0}, []float64{5}, true)
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("large gap = %v, want 2 (delete+insert)", got)
	}
}

func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		// Clamp to a sane range to keep the test meaningful.
		for i := range a {
			a[i] = math.Mod(a[i], 10)
		}
		for i := range b {
			b[i] = math.Mod(b[i], 10)
		}
		dn := EditDistance(a, b, true)
		dc := EditDistance(a, b, false)
		// Symmetry, non-negativity, bounded by max-cost alignment.
		return dn >= 0 && dc >= 0 &&
			math.Abs(dn-EditDistance(b, a, true)) < 1e-9 &&
			math.Abs(dc-EditDistance(b, a, false)) < 1e-9 &&
			dc <= float64(len(a)+len(b))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceIdentityProperty(t *testing.T) {
	f := func(a []float64) bool {
		return EditDistance(a, a, true) == 0 && EditDistance(a, a, false) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingRateIdenticalRoutes(t *testing.T) {
	seq := []float64{1, 1, 2, 2}
	if got := RoutingRate(seq, seq, false, 1); got != 0 {
		t.Fatalf("identical categorical = %v", got)
	}
	if got := RoutingRate(seq, seq, true, 1); got != 0 {
		t.Fatalf("identical numeric = %v", got)
	}
}

func TestRoutingRateCategoricalDifference(t *testing.T) {
	tp := []float64{1, 1, 1} // highway all the way
	pr := []float64{6, 6, 6} // popular route uses village roads
	got := RoutingRate(tp, pr, false, 1)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("fully different categorical = %v, want 1", got)
	}
}

func TestRoutingRateNumericNormalization(t *testing.T) {
	// Same shape at different scales normalizes to zero distance.
	tp := []float64{10, 20, 30}
	pr := []float64{1, 2, 3}
	if got := RoutingRate(tp, pr, true, 1); math.Abs(got) > 1e-12 {
		t.Fatalf("proportional sequences = %v, want 0", got)
	}
}

func TestRoutingRateLengthMismatch(t *testing.T) {
	tp := []float64{1, 1, 1, 1}
	pr := []float64{1, 1}
	got := RoutingRate(tp, pr, false, 1)
	// Two deletions over max length 4.
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
}

func TestRoutingRateWeightScales(t *testing.T) {
	tp := []float64{1}
	pr := []float64{2}
	r1 := RoutingRate(tp, pr, false, 1)
	r2 := RoutingRate(tp, pr, false, 2)
	if math.Abs(r2-2*r1) > 1e-12 {
		t.Fatalf("weight scaling broken: %v vs %v", r1, r2)
	}
}

func TestRoutingRateEmpty(t *testing.T) {
	if got := RoutingRate(nil, nil, true, 1); got != 0 {
		t.Fatalf("empty sequences = %v", got)
	}
	if got := RoutingRate([]float64{1, 2}, nil, false, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("empty PR = %v, want 1", got)
	}
}

func TestMovingRateRegularBehaviour(t *testing.T) {
	vals := []float64{60, 60}
	if got := MovingRate(vals, vals, 1); got != 0 {
		t.Fatalf("regular behaviour rate = %v", got)
	}
}

func TestMovingRateDeviation(t *testing.T) {
	vals := []float64{30, 30}    // travelling at 30
	regular := []float64{60, 60} // usually 60
	got := MovingRate(vals, regular, 1)
	// The normalization constant is the partition max, 30, so each segment
	// contributes |30/30 − 60/30| = 1.
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("deviation rate = %v, want 1", got)
	}
}

func TestMovingRateZeroValsFallsBackToRegularMax(t *testing.T) {
	vals := []float64{0, 0}    // no U-turns this trip
	regular := []float64{2, 2} // usually 2
	got := MovingRate(vals, regular, 1)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("zero-vals rate = %v, want 1", got)
	}
	if got := MovingRate([]float64{0}, []float64{0}, 1); got != 0 {
		t.Fatalf("all-zero rate = %v", got)
	}
}

func TestMovingRateWeightAndEmpty(t *testing.T) {
	if got := MovingRate(nil, nil, 5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	r1 := MovingRate([]float64{1}, []float64{2}, 1)
	r3 := MovingRate([]float64{1}, []float64{2}, 3)
	if math.Abs(r3-3*r1) > 1e-12 {
		t.Fatalf("weight scaling: %v vs %v", r1, r3)
	}
}

func TestMovingRateMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	MovingRate([]float64{1}, []float64{1, 2}, 1)
}

func TestMovingRateNonNegativeProperty(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		vals := make([]float64, len(pairs))
		reg := make([]float64, len(pairs))
		for i, p := range pairs {
			vals[i] = math.Mod(math.Abs(p[0]), 100)
			reg[i] = math.Mod(math.Abs(p[1]), 100)
		}
		return MovingRate(vals, reg, 1) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
