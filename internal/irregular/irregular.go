// Package irregular implements STMaker's feature interestingness measure
// (§V): the irregular rate Γf(TP) of a feature f on a trajectory
// partition TP, computed against the common behaviour of historical
// trajectories. Only features whose irregular rate exceeds a threshold η
// are described in the summary.
package irregular

import "fmt"

// DefaultThreshold is the paper's experimental setting η = 0.2 for the
// irregular-rate threshold of a selected feature (§VII-B).
const DefaultThreshold = 0.2

// EditDistance computes the edit-distance-like measure d(FTP, FPR) of
// §V-A between two feature-value sequences. Insertions and deletions cost
// 1; substitution costs |a−b| for numeric features (Eq. 6) and 0/1 for
// categorical features (Eq. 7).
func EditDistance(a, b []float64, numeric bool) float64 {
	la, lb := len(a), len(b)
	if la == 0 {
		return float64(lb)
	}
	if lb == 0 {
		return float64(la)
	}
	// DP over the recursion, rows indexed by a, columns by b.
	prev := make([]float64, lb+1)
	cur := make([]float64, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = float64(j)
	}
	for i := 1; i <= la; i++ {
		cur[0] = float64(i)
		for j := 1; j <= lb; j++ {
			sub := prev[j-1] + cost(a[i-1], b[j-1], numeric)
			del := prev[j] + 1
			ins := cur[j-1] + 1
			cur[j] = min3(sub, del, ins)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func cost(x, y float64, numeric bool) float64 {
	if numeric {
		if x > y {
			return x - y
		}
		return y - x
	}
	if x != y { //lint:allow floateq -- operands are categorical codes stored in float64
		return 1
	}
	return 0
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// normalizeSeq divides a sequence by its own maximum absolute value,
// following §V-A's definition of the normalized feature sequence. A zero
// sequence is returned unchanged.
func normalizeSeq(v []float64) []float64 {
	var m float64
	for _, x := range v {
		if a := abs(x); a > m {
			m = a
		}
	}
	out := make([]float64, len(v))
	if m == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		return out
	}
	for i, x := range v {
		out[i] = x / m
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RoutingRate computes Γf(TP) for a routing feature (§V-A): the weighted,
// length-normalized edit distance between the partition's feature sequence
// and the popular route's feature sequence. Numeric sequences are first
// normalized by their own maxima; categorical sequences compare raw
// category codes, since scaling category ids would destroy equality.
func RoutingRate(tpSeq, prSeq []float64, numeric bool, w float64) float64 {
	maxLen := len(tpSeq)
	if len(prSeq) > maxLen {
		maxLen = len(prSeq)
	}
	if maxLen == 0 {
		return 0
	}
	a, b := tpSeq, prSeq
	if numeric {
		a, b = normalizeSeq(tpSeq), normalizeSeq(prSeq)
	}
	return w * EditDistance(a, b, numeric) / float64(maxLen)
}

// MovingRate computes Γf(TP) for a moving feature (§V-B): the weighted
// mean absolute deviation between the partition's per-segment feature
// values and the regular values from the historical feature map, both
// normalized by the partition's maximum feature value. vals and regular
// must be aligned per segment.
func MovingRate(vals, regular []float64, w float64) float64 {
	if len(vals) != len(regular) {
		panic(fmt.Sprintf("irregular: vals length %d, regular length %d", len(vals), len(regular)))
	}
	if len(vals) == 0 {
		return 0
	}
	// §V-B: "the normalization constant is the biggest feature value among
	// all segments of the partition". Fall back to the regular values'
	// maximum when the partition's values are all zero (e.g. zero U-turns
	// on a route that usually has some).
	var m float64
	for _, x := range vals {
		if a := abs(x); a > m {
			m = a
		}
	}
	if m == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		for _, x := range regular {
			if a := abs(x); a > m {
				m = a
			}
		}
	}
	if m == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		return 0
	}
	var sum float64
	for i := range vals {
		sum += abs(vals[i]/m - regular[i]/m)
	}
	return w * sum / float64(len(vals))
}
