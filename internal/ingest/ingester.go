package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"stmaker"
	"stmaker/internal/geo"
	"stmaker/internal/metrics"
	"stmaker/internal/sanitize"
	"stmaker/internal/traj"
)

// Metric names recorded by an Ingester into its region's metrics
// registry. docs/OBSERVABILITY.md documents each; keep the two in sync.
const (
	// MetricFixes counts fixes accepted (WAL-appended and buffered).
	MetricFixes = "ingest_fixes_total"
	// MetricTripsClosed counts trips closed (explicitly or by the
	// per-trip fix limit) and handed to the fold.
	MetricTripsClosed = "ingest_trips_closed_total"
	// MetricTripsRejected counts closed trips the sanitizer or calibrator
	// refused; their fixes leave the buffer but add no knowledge.
	MetricTripsRejected = "ingest_trips_rejected_total"
	// MetricShed counts fixes rejected with 429 because the in-memory
	// trip buffer was full (backpressure).
	MetricShed = "ingest_shed_total"
	// MetricWALBytes is a gauge holding the WAL's on-disk size.
	MetricWALBytes = "ingest_wal_bytes"
	// MetricCompactions counts successful compactions (checkpoint written,
	// model published, covered segments truncated).
	MetricCompactions = "ingest_compactions_total"
	// MetricCompactionFailures counts failed compaction attempts; the
	// previous model and checkpoint stay in effect.
	MetricCompactionFailures = "ingest_compaction_failures_total"
	// MetricReplaySeconds times WAL replay at boot.
	MetricReplaySeconds = "ingest_replay_seconds"
)

// ErrBufferFull is returned by AddFix when the bounded in-memory trip
// buffer is at capacity; servers map it to 429 + Retry-After.
var ErrBufferFull = errors.New("ingest: trip buffer full")

const (
	// checkpointFile is the recovery manifest: JSON {seq, model} written
	// by atomic rename after the model file it names is durable.
	checkpointFile = "CHECKPOINT"
	modelPrefix    = "model-"
	modelExt       = ".stm"

	defaultBufferFixes  = 100_000
	defaultTripFixLimit = 5_000
)

// checkpoint is the on-disk recovery manifest. Records with sequence
// numbers <= Seq are fully represented by the named model file; recovery
// loads the model and replays only what came after.
type checkpoint struct {
	Seq   uint64 `json:"seq"`
	Model string `json:"model"`
}

// IngesterOptions configures one region's ingester. The zero value is
// usable.
type IngesterOptions struct {
	// BufferFixes bounds the total in-memory buffered fixes across open
	// trips (default 100000); beyond it AddFix sheds with ErrBufferFull.
	BufferFixes int
	// TripFixLimit force-closes a trip reaching this many fixes (default
	// 5000), so a client that never sends an end marker cannot pin buffer
	// capacity forever. The limit applies identically during replay, so
	// recovery reconstructs the same closes.
	TripFixLimit int
	// SegmentBytes is the WAL roll threshold (default 4 MiB).
	SegmentBytes int64
	// Sanitize configures trip repair before folding; the zero value
	// applies the default thresholds.
	Sanitize sanitize.Options
	// FS overrides the filesystem (fault injection); nil means the real
	// one.
	FS FS
	// Logger receives recovery and compaction lines; nil means
	// slog.Default().
	Logger *slog.Logger
	// Metrics receives the ingest counters — pass the region's own
	// registry so ingest traffic shows up under the region's key in
	// GET /metrics. Nil creates a private registry.
	Metrics *metrics.Registry
}

// openTrip is the in-memory buffer of one not-yet-closed trip.
type openTrip struct {
	object  string
	samples []traj.Sample
}

// Stats is a point-in-time snapshot of an ingester, for tests and
// operator probes.
type Stats struct {
	OpenTrips     int
	BufferedFixes int
	LastSeq       uint64
	CheckpointSeq uint64
	TripsFolded   int
	Replay        ReplayStats
}

// Ingester is one region's crash-safe ingestion state machine: fixes are
// WAL-appended before they are buffered, closed trips fold into a
// cumulative HistoryAccumulator, and CompactNow freezes the accumulator
// into a published Model plus an on-disk checkpoint that lets the WAL be
// truncated. All mutation is serialized by mu; the expensive half of a
// compaction (model build, persistence) runs outside it.
type Ingester struct {
	dir     string
	fs      FS
	log     *slog.Logger
	resolve func() (*stmaker.Summarizer, error)
	san     *sanitize.Sanitizer
	limit   int
	tripCap int

	cFixes        *metrics.Counter
	cTripsClosed  *metrics.Counter
	cTripsRejects *metrics.Counter
	cShed         *metrics.Counter
	cCompactions  *metrics.Counter
	cCompactFails *metrics.Counter
	gWALBytes     *metrics.Counter

	mu            sync.Mutex
	wal           *WAL
	acc           *stmaker.HistoryAccumulator
	trips         map[string]*openTrip
	buffered      int
	checkpointSeq uint64
	dirty         bool // a trip folded since the last checkpoint
	compacting    bool
	replay        ReplayStats
	tripsFolded   int
}

// NewIngester opens (creating if needed) the region's ingest directory
// and recovers: it loads the checkpoint model when present (falling back
// to the summarizer's currently-published model when the checkpoint is
// missing or unusable), replays WAL records past the checkpoint to
// rebuild open trips and fold closed ones, and publishes the checkpoint
// model so serving reflects the last compaction. Torn or corrupt WAL
// tails are dropped with a logged count — recovery never refuses to
// boot over them.
//
// resolve returns the region's serving summarizer; it is called per
// operation (not captured once) so registry evictions and reloads are
// followed naturally.
func NewIngester(dir string, resolve func() (*stmaker.Summarizer, error), opts IngesterOptions) (*Ingester, error) {
	if opts.FS == nil {
		opts.FS = osFS{}
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.BufferFixes <= 0 {
		opts.BufferFixes = defaultBufferFixes
	}
	if opts.TripFixLimit <= 0 {
		opts.TripFixLimit = defaultTripFixLimit
	}
	mx := opts.Metrics
	ing := &Ingester{
		dir:           dir,
		fs:            opts.FS,
		log:           opts.Logger,
		resolve:       resolve,
		san:           sanitize.New(opts.Sanitize),
		limit:         opts.BufferFixes,
		tripCap:       opts.TripFixLimit,
		cFixes:        mx.Counter(MetricFixes),
		cTripsClosed:  mx.Counter(MetricTripsClosed),
		cTripsRejects: mx.Counter(MetricTripsRejected),
		cShed:         mx.Counter(MetricShed),
		cCompactions:  mx.Counter(MetricCompactions),
		cCompactFails: mx.Counter(MetricCompactionFailures),
		gWALBytes:     mx.Counter(MetricWALBytes), //nolint:stmaker/metricnames -- ingest_wal_bytes is a gauge (set to the WAL's on-disk size), so the _total counter suffix does not apply
		trips:         make(map[string]*openTrip),
	}
	sum, err := resolve()
	if err != nil {
		return nil, fmt.Errorf("ingest: resolve summarizer: %w", err)
	}
	if err := ing.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create dir: %w", err)
	}

	base := sum.Model() // the operator's boot model (may be nil)
	cpModel, cpSeq := ing.loadCheckpoint(sum)
	if cpModel != nil {
		base = cpModel
		ing.checkpointSeq = cpSeq
	}
	ing.acc, err = sum.NewHistoryAccumulator(base)
	if err != nil {
		return nil, fmt.Errorf("ingest: seed accumulator: %w", err)
	}

	t0 := time.Now()
	wal, stats, err := OpenWAL(dir, func(seq uint64, rec Record) error {
		if seq <= ing.checkpointSeq {
			return nil // already represented by the checkpoint model
		}
		ing.applyLocked(sum, rec)
		return nil
	}, WALOptions{SegmentBytes: opts.SegmentBytes, FS: opts.FS, Logger: opts.Logger})
	if err != nil {
		return nil, err
	}
	mx.Histogram(MetricReplaySeconds).ObserveSince(t0)
	ing.wal = wal
	ing.replay = stats
	ing.updateWALGaugeLocked()
	if stats.SkippedEvents > 0 {
		ing.log.Warn("ingest recovery dropped corrupt wal records",
			"dir", dir, "skipped_events", stats.SkippedEvents, "skipped_bytes", stats.SkippedBytes)
	}
	ing.log.Info("ingest recovered",
		"dir", dir,
		"records", stats.Records,
		"segments", stats.Segments,
		"last_seq", stats.LastSeq,
		"checkpoint_seq", ing.checkpointSeq,
		"open_trips", len(ing.trips),
		"trips_folded", ing.tripsFolded,
		"duration", time.Since(t0),
	)

	// Publish the checkpoint model so serving reflects the last
	// compaction instead of the older boot model. Trips folded during
	// replay reach serving at the next compaction.
	if cpModel != nil {
		if err := sum.LoadModel(cpModel); err != nil {
			// Unreachable in practice: NewHistoryAccumulator already ran
			// the same compatibility check.
			ing.log.Error("ingest checkpoint model rejected at publish", "dir", dir, "err", err)
		}
	}
	return ing, nil
}

// loadCheckpoint reads and validates the recovery manifest, returning the
// model it names (nil when absent or unusable) and its sequence. An
// unusable checkpoint — unreadable JSON, missing or corrupt model file,
// configuration mismatch — falls back to full-WAL replay over the boot
// model rather than refusing to boot: the WAL segments still on disk are
// replayed from sequence zero, recovering everything they cover.
func (ing *Ingester) loadCheckpoint(sum *stmaker.Summarizer) (*stmaker.Model, uint64) {
	data, err := ing.fs.ReadFile(filepath.Join(ing.dir, checkpointFile))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			ing.log.Warn("ingest checkpoint unreadable; replaying full wal", "dir", ing.dir, "err", err)
		}
		return nil, 0
	}
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil || cp.Model == "" ||
		cp.Model != filepath.Base(cp.Model) || !strings.HasPrefix(cp.Model, modelPrefix) {
		ing.log.Warn("ingest checkpoint malformed; replaying full wal", "dir", ing.dir, "err", err)
		return nil, 0
	}
	m, err := stmaker.LoadModelFile(filepath.Join(ing.dir, cp.Model))
	if err != nil {
		ing.log.Warn("ingest checkpoint model unusable; replaying full wal",
			"dir", ing.dir, "model", cp.Model, "err", err)
		return nil, 0
	}
	if _, err := sum.NewHistoryAccumulator(m); err != nil {
		ing.log.Warn("ingest checkpoint model mismatches configuration; replaying full wal",
			"dir", ing.dir, "model", cp.Model, "err", err)
		return nil, 0
	}
	return m, cp.Seq
}

// applyLocked applies one record to the in-memory state — the shared
// core of live ingestion and replay. Callers hold mu (or, during
// recovery, have exclusive ownership).
func (ing *Ingester) applyLocked(sum *stmaker.Summarizer, rec Record) {
	switch rec.Kind {
	case KindFix:
		ot := ing.trips[rec.Trip]
		if ot == nil {
			ot = &openTrip{object: rec.Object}
			ing.trips[rec.Trip] = ot
		}
		ot.samples = append(ot.samples, traj.Sample{Pt: rec.Pt, T: rec.T})
		ing.buffered++
		if len(ot.samples) >= ing.tripCap {
			ing.closeLocked(sum, rec.Trip)
		}
	case KindClose:
		if ing.trips[rec.Trip] != nil {
			ing.closeLocked(sum, rec.Trip)
		}
	}
}

// closeLocked removes the trip from the buffer and folds it into the
// cumulative knowledge. Sanitizer and calibrator rejections drop the
// trip with a count — a malformed trip must never poison ingestion.
// Callers hold mu.
func (ing *Ingester) closeLocked(sum *stmaker.Summarizer, trip string) {
	ot := ing.trips[trip]
	delete(ing.trips, trip)
	ing.buffered -= len(ot.samples)
	ing.cTripsClosed.Inc()
	raw := &traj.Raw{ID: trip, Object: ot.object, Samples: ot.samples}
	repaired, _, err := ing.san.Sanitize(raw)
	if err != nil {
		ing.cTripsRejects.Inc()
		ing.log.Debug("ingest trip rejected by sanitizer", "trip", trip, "err", err)
		return
	}
	sym, err := sum.Calibrate(repaired)
	if err != nil {
		ing.cTripsRejects.Inc()
		ing.log.Debug("ingest trip rejected by calibration", "trip", trip, "err", err)
		return
	}
	sum.AccumulateHistory(ing.acc, sym)
	ing.tripsFolded++
	ing.dirty = true
}

// AddFix durably logs one GPS fix and buffers it on its trip. It returns
// ErrBufferFull (429) under backpressure; any other error means the WAL
// is degraded and writes should be refused (503) while reads keep
// serving.
func (ing *Ingester) AddFix(trip, object string, pt geo.Point, t time.Time) error {
	sum, err := ing.resolve()
	if err != nil {
		return err
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.buffered >= ing.limit {
		ing.cShed.Inc()
		return ErrBufferFull
	}
	if _, err := ing.wal.Append(Record{Kind: KindFix, Trip: trip, Object: object, Pt: pt, T: t}); err != nil {
		return err
	}
	ing.cFixes.Inc()
	ing.applyLocked(sum, Record{Kind: KindFix, Trip: trip, Object: object, Pt: pt, T: t})
	return nil
}

// CloseTrip durably logs an end-of-trip marker and folds the trip. A
// close for a trip with no buffered fixes is a no-op (closing is
// idempotent).
func (ing *Ingester) CloseTrip(trip string) error {
	sum, err := ing.resolve()
	if err != nil {
		return err
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.trips[trip] == nil {
		return nil
	}
	if _, err := ing.wal.Append(Record{Kind: KindClose, Trip: trip}); err != nil {
		return err
	}
	ing.applyLocked(sum, Record{Kind: KindClose, Trip: trip})
	return nil
}

// Sync makes everything appended so far durable — the acknowledgement
// barrier the HTTP handler runs before answering 2xx.
func (ing *Ingester) Sync() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.wal.Sync()
}

// CompactNow freezes the cumulative knowledge into a new immutable
// Model, persists it plus a checkpoint manifest, publishes it through
// the region's atomic model cell, and truncates WAL segments the
// checkpoint covers. Only the freeze itself — an accumulator clone, a
// segment roll, and a re-log of buffered open-trip fixes — runs under
// the ingestion lock; the model build and persistence happen alongside
// live traffic.
//
// Failure at any point is contained: the previous model keeps serving,
// the previous checkpoint stays in effect, and the WAL still covers
// everything acknowledged. A compaction with nothing new since the last
// checkpoint is a no-op.
func (ing *Ingester) CompactNow() error {
	sum, err := ing.resolve()
	if err != nil {
		return err
	}
	ing.mu.Lock()
	if ing.compacting || !ing.dirty {
		ing.mu.Unlock()
		return nil
	}
	ing.compacting = true
	// Clone, don't alias: the accumulator keeps mutating under new fixes
	// while the frozen copy becomes (immutable) model state — the same
	// ownership handoff the modelmut lint check guards downstream.
	frozen := ing.acc.Clone()
	barrier := ing.wal.LastSeq()
	err = ing.wal.Roll()
	if err == nil {
		// Re-log buffered open-trip fixes past the barrier: their original
		// records are about to be truncated away with the covered
		// segments, and an open trip is not in the frozen knowledge yet.
		// Replay applies the copies identically (per-trip order is
		// preserved; cross-trip order does not matter).
		for trip, ot := range ing.trips {
			for _, s := range ot.samples {
				if _, aerr := ing.wal.Append(Record{Kind: KindFix, Trip: trip, Object: ot.object, Pt: s.Pt, T: s.T}); aerr != nil {
					err = aerr
					break
				}
			}
			if err != nil {
				break
			}
		}
	}
	ing.dirty = false
	ing.mu.Unlock()
	if err != nil {
		return ing.compactionFailed(fmt.Errorf("ingest: compaction freeze: %w", err))
	}

	model := sum.BuildIncrementalModel(frozen)
	modelName := fmt.Sprintf("%s%016x%s", modelPrefix, barrier, modelExt)
	if err := ing.writeFileAtomic(modelName, func(f File) error {
		_, werr := model.WriteTo(f)
		return werr
	}); err != nil {
		return ing.compactionFailed(fmt.Errorf("ingest: persist compaction model: %w", err))
	}
	// The re-logged fixes must be durable before their originals'
	// segments are deleted, and the model must be durable before the
	// checkpoint names it; the checkpoint rename is the commit point.
	if err := ing.Sync(); err != nil {
		return ing.compactionFailed(fmt.Errorf("ingest: compaction wal sync: %w", err))
	}
	cp, merr := json.Marshal(checkpoint{Seq: barrier, Model: modelName})
	if merr != nil {
		return ing.compactionFailed(fmt.Errorf("ingest: encode checkpoint: %w", merr))
	}
	if err := ing.writeFileAtomic(checkpointFile, func(f File) error {
		_, werr := f.Write(cp)
		return werr
	}); err != nil {
		return ing.compactionFailed(fmt.Errorf("ingest: persist checkpoint: %w", err))
	}
	ing.wal.TruncateThrough(barrier)
	ing.removeStaleModels(modelName)
	if err := sum.LoadModel(model); err != nil {
		return ing.compactionFailed(fmt.Errorf("ingest: publish compaction model: %w", err))
	}

	ing.mu.Lock()
	ing.checkpointSeq = barrier
	ing.compacting = false
	ing.updateWALGaugeLocked()
	ing.mu.Unlock()
	ing.cCompactions.Inc()
	ing.log.Info("ingest compaction published",
		"dir", ing.dir,
		"checkpoint_seq", barrier,
		"trips", frozen.Trips(),
		"transitions", frozen.Transitions(),
		"model", modelName,
	)
	return nil
}

// compactionFailed records a contained compaction failure: the previous
// model and checkpoint stay in effect, and the knowledge stays dirty so
// the next interval retries.
func (ing *Ingester) compactionFailed(err error) error {
	ing.mu.Lock()
	ing.compacting = false
	ing.dirty = true
	ing.mu.Unlock()
	ing.cCompactFails.Inc()
	ing.log.Error("ingest compaction failed; previous model keeps serving", "dir", ing.dir, "err", err)
	return err
}

// writeFileAtomic writes a file durably via temp + fsync + rename.
func (ing *Ingester) writeFileAtomic(name string, write func(File) error) error {
	tmp := filepath.Join(ing.dir, name+".tmp")
	f, err := ing.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return ing.fs.Rename(tmp, filepath.Join(ing.dir, name))
}

// removeStaleModels deletes compaction model files other than the one
// the current checkpoint names. Failures are logged, not fatal: a stale
// model costs disk, and the next compaction retries.
func (ing *Ingester) removeStaleModels(keep string) {
	entries, err := ing.fs.ReadDir(ing.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == keep || !strings.HasPrefix(name, modelPrefix) ||
			!(strings.HasSuffix(name, modelExt) || strings.HasSuffix(name, modelExt+".tmp")) {
			continue
		}
		if rerr := ing.fs.Remove(filepath.Join(ing.dir, name)); rerr != nil {
			ing.log.Warn("ingest failed to remove stale model", "file", name, "err", rerr)
		}
	}
}

// updateWALGaugeLocked refreshes the WAL-size gauge; callers hold mu (or
// have exclusive ownership during recovery).
func (ing *Ingester) updateWALGaugeLocked() {
	ing.gWALBytes.Add(ing.wal.Bytes() - ing.gWALBytes.Value())
}

// Stats snapshots the ingester for tests and probes.
func (ing *Ingester) Stats() Stats {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return Stats{
		OpenTrips:     len(ing.trips),
		BufferedFixes: ing.buffered,
		LastSeq:       ing.wal.LastSeq(),
		CheckpointSeq: ing.checkpointSeq,
		TripsFolded:   ing.tripsFolded,
		Replay:        ing.replay,
	}
}

// Close seals the WAL. Buffered open trips stay on disk in the WAL and
// are rebuilt by the next boot's replay.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.wal.Close()
}
