package ingest

import (
	"testing"
)

// ackState is what the client knows at the last successful Sync: the
// durability barrier the crash-safety contract is stated against.
type ackState struct {
	seq   uint64
	stats Stats
}

// crashWorkload is the deterministic script every crash scenario runs:
// two trips ingested and closed with an acknowledgement barrier after
// each, a compaction, then a third trip left open mid-stream with a
// final barrier. Small segments force rolls throughout. Errors are
// ignored — after the injected kill every write fails, exactly like a
// dead process — and the last successful Sync's state is returned.
func crashWorkload(t *testing.T, ing *Ingester) ackState {
	t.Helper()
	var acked ackState
	sync := func() {
		if ing.Sync() == nil {
			acked = ackState{seq: ing.Stats().LastSeq, stats: ing.Stats()}
		}
	}
	for _, trip := range fixTrips[:2] {
		for _, s := range trip.Samples {
			_ = ing.AddFix(trip.ID, trip.Object, s.Pt, s.T)
		}
		_ = ing.CloseTrip(trip.ID)
		sync()
	}
	_ = ing.CompactNow()
	open := fixTrips[2]
	for _, s := range open.Samples[:len(open.Samples)/2] {
		_ = ing.AddFix(open.ID, open.Object, s.Pt, s.T)
	}
	sync()
	return acked
}

// verifyRecovery boots a clean ingester over the crashed directory and
// checks the contract: recovery never fails, never tears (the injected
// faults fail whole operations, like a kill between syscalls), covers
// every acknowledged record, and reconstructs the live in-memory state.
func verifyRecovery(t *testing.T, dir string, acked ackState, live Stats) {
	t.Helper()
	rec, err := NewIngester(dir, fixed(newSummarizer(t)), IngesterOptions{
		SegmentBytes: 512, Logger: discardLogger(),
	})
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	st := rec.Stats()
	if st.Replay.SkippedEvents != 0 {
		t.Errorf("recovery skipped %d events; clean-cut faults must not tear the log", st.Replay.SkippedEvents)
	}
	// Zero acknowledged loss: everything up to the acknowledged sequence
	// is covered by the checkpoint, the replayed WAL, or both.
	if cover := max(st.LastSeq, st.CheckpointSeq); cover < acked.seq {
		t.Errorf("recovered coverage (wal %d, checkpoint %d) < acknowledged seq %d",
			st.LastSeq, st.CheckpointSeq, acked.seq)
	}
	// Replay is deterministic, so the rebuilt trip buffer matches the
	// live one. BufferedFixes may exceed it when a compaction died after
	// re-logging open trips but before truncating their originals — the
	// duplicates merge into the same trips and the sanitizer drops the
	// repeated timestamps at close time.
	if st.OpenTrips != live.OpenTrips {
		t.Errorf("recovered %d open trips, live had %d", st.OpenTrips, live.OpenTrips)
	}
	if st.BufferedFixes < live.BufferedFixes {
		t.Errorf("recovered %d buffered fixes, live had %d", st.BufferedFixes, live.BufferedFixes)
	}
	// The recovered ingester is fully operational: it can finish the open
	// trips and publish a compaction.
	trip := fixTrips[2]
	for _, s := range trip.Samples[len(trip.Samples)/2:] {
		if err := rec.AddFix(trip.ID, trip.Object, s.Pt, s.T); err != nil {
			t.Fatalf("AddFix after recovery: %v", err)
		}
	}
	if err := rec.CloseTrip(trip.ID); err != nil {
		t.Fatalf("CloseTrip after recovery: %v", err)
	}
	if err := rec.CompactNow(); err != nil {
		t.Fatalf("CompactNow after recovery: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
}

// TestCrashMatrix kills ingestion at each named fault point — append,
// segment roll, and the stages of a compaction — and proves the
// recovery contract at every one. Kill points are derived from a
// recorded dry run of the same workload, so the matrix stays correct
// when the workload or the write path changes shape.
func TestCrashMatrix(t *testing.T) {
	// Dry run: record every filesystem operation of a healthy workload.
	dryFS := &faultFS{inner: osFS{}}
	dry, err := NewIngester(t.TempDir(), fixed(newSummarizer(t)), IngesterOptions{
		SegmentBytes: 512, FS: dryFS, Logger: discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	dryFS.record = true
	crashWorkload(t, dry)
	trace := dryFS.trace

	cases := []struct {
		name       string
		op, substr string
	}{
		{name: "kill-during-append", op: "write", substr: segPrefix},
		{name: "kill-during-segment-roll", op: "rename", substr: openExt},
		{name: "kill-during-compaction-model-write", op: "write", substr: modelExt + ".tmp"},
		{name: "kill-during-compaction-model-sync", op: "sync", substr: modelExt + ".tmp"},
		{name: "kill-during-compaction-checkpoint", op: "rename", substr: checkpointFile + ".tmp"},
		{name: "kill-during-compaction-truncate", op: "remove", substr: sealedExt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			matched := 0
			for _, e := range trace {
				if e.matches(tc.op, tc.substr) {
					matched++
				}
			}
			if matched == 0 {
				t.Fatalf("the workload never performs op %q on %q; the scenario tests nothing", tc.op, tc.substr)
			}
			dir := t.TempDir()
			ffs := &faultFS{inner: osFS{}}
			ing, err := NewIngester(dir, fixed(newSummarizer(t)), IngesterOptions{
				SegmentBytes: 512, FS: ffs, Logger: discardLogger(),
			})
			if err != nil {
				t.Fatal(err)
			}
			// Kill at the midpoint occurrence: past the first barrier for
			// the frequent ops, at the only occurrence for the rare ones.
			ffs.armAfter(matched/2, tc.op, tc.substr)
			acked := crashWorkload(t, ing)
			if acked.seq == 0 {
				t.Fatal("workload acknowledged nothing; the fault fired too early to test anything")
			}
			live := ing.Stats()
			ffs.heal()
			verifyRecovery(t, dir, acked, live)
		})
	}
}

// TestCrashMatrixEveryOperation is the exhaustive sweep: run the
// workload once to count filesystem operations, then kill it at every
// k-th operation (strided to keep the test fast) and prove the recovery
// contract each time. This is the table the targeted cases above are
// rows of — here the table is generated.
func TestCrashMatrixEveryOperation(t *testing.T) {
	// Dry run: count the operations a healthy workload performs.
	dryDir := t.TempDir()
	dryFS := &faultFS{inner: osFS{}}
	dry, err := NewIngester(dryDir, fixed(newSummarizer(t)), IngesterOptions{
		SegmentBytes: 512, FS: dryFS, Logger: discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	setupOps := dryFS.ops
	crashWorkload(t, dry)
	workloadOps := dryFS.ops - setupOps
	if workloadOps < 20 {
		t.Fatalf("workload performed only %d fs operations; the sweep would prove nothing", workloadOps)
	}

	stride := workloadOps / 24
	if stride < 1 {
		stride = 1
	}
	for k := 1; k <= workloadOps; k += stride {
		dir := t.TempDir()
		ffs := &faultFS{inner: osFS{}}
		ing, err := NewIngester(dir, fixed(newSummarizer(t)), IngesterOptions{
			SegmentBytes: 512, FS: ffs, Logger: discardLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ffs.armAfter(k, "", "")
		acked := crashWorkload(t, ing)
		live := ing.Stats()
		ffs.heal()
		before := t.Failed()
		verifyRecovery(t, dir, acked, live)
		if t.Failed() && !before {
			t.Fatalf("contract violated at kill point: operation %d of %d", k, workloadOps)
		}
	}
}
