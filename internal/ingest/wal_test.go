package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stmaker/internal/geo"
)

// testRecord builds a deterministic fix record from an index.
func testRecord(i int) Record {
	return Record{
		Kind:   KindFix,
		Trip:   fmt.Sprintf("trip-%03d", i%7),
		Object: fmt.Sprintf("taxi-%02d", i%3),
		Pt:     geo.Point{Lat: 39.9 + float64(i)*1e-4, Lng: 116.4 - float64(i)*1e-4},
		T:      time.Date(2013, 11, 2, 9, 0, i, 0, time.UTC),
	}
}

// openCollecting opens a WAL that records every replayed (seq, record).
func openCollecting(t *testing.T, dir string, opts WALOptions) (*WAL, ReplayStats, []uint64, []Record) {
	t.Helper()
	var seqs []uint64
	var recs []Record
	opts.Logger = discardLogger()
	w, stats, err := OpenWAL(dir, func(seq uint64, rec Record) error {
		seqs = append(seqs, seq)
		recs = append(recs, rec)
		return nil
	}, opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w, stats, seqs, recs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, _, _, _ := openCollecting(t, dir, WALOptions{})
	const n = 25
	want := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		if i%6 == 5 {
			rec = Record{Kind: KindClose, Trip: rec.Trip}
		}
		seq, err := w.Append(rec)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d assigned seq %d, want %d", i, seq, i+1)
		}
		want = append(want, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, stats, seqs, recs := openCollecting(t, dir, WALOptions{})
	if stats.Records != n || stats.SkippedEvents != 0 || stats.LastSeq != n {
		t.Fatalf("replay stats = %+v, want %d clean records", stats, n)
	}
	for i, rec := range recs {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("replayed seq[%d] = %d, want %d", i, seqs[i], i+1)
		}
		w, g := want[i], rec
		if g.Kind != w.Kind || g.Trip != w.Trip || g.Object != w.Object || !g.T.Equal(w.T) {
			t.Fatalf("replayed record %d = %+v, want %+v", i, g, w)
		}
		if g.Kind == KindFix && (g.Pt.Lat != w.Pt.Lat || g.Pt.Lng != w.Pt.Lng) { //lint:allow floateq -- round-trip must be bit-exact
			t.Fatalf("replayed point %d = %v, want %v", i, g.Pt, w.Pt)
		}
	}
}

func TestWALSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every append rolls into its own sealed segment.
	w, _, _, _ := openCollecting(t, dir, WALOptions{SegmentBytes: 1})
	for i := 0; i < 5; i++ {
		if _, err := w.Append(testRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := countFiles(t, dir, sealedExt); got != 5 {
		t.Fatalf("sealed segments = %d, want 5", got)
	}
	// Truncating through seq 3 deletes the three fully-covered segments.
	if removed := w.TruncateThrough(3); removed != 3 {
		t.Fatalf("TruncateThrough removed %d, want 3", removed)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, stats, seqs, _ := openCollecting(t, dir, WALOptions{SegmentBytes: 1})
	if stats.Records != 2 || stats.LastSeq != 5 {
		t.Fatalf("replay after truncate = %+v, want records 4..5", stats)
	}
	if seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("replayed seqs = %v, want [4 5]", seqs)
	}
}

func TestWALTornTailRepairedOnce(t *testing.T) {
	dir := t.TempDir()
	w, _, _, _ := openCollecting(t, dir, WALOptions{})
	for i := 0; i < 10; i++ {
		if _, err := w.Append(testRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: garbage after the last full frame.
	seg := singleFile(t, dir, sealedExt)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, stats, _, _ := openCollecting(t, dir, WALOptions{})
	if stats.Records != 10 || stats.SkippedEvents != 1 || stats.LastSeq != 10 {
		t.Fatalf("replay over torn tail = %+v, want 10 records, 1 skip", stats)
	}
	// Appends continue from the recovered sequence.
	if seq, err := w2.Append(testRecord(10)); err != nil || seq != 11 {
		t.Fatalf("Append after repair = (%d, %v), want seq 11", seq, err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	// The tail was physically truncated: the next boot sees a clean log.
	_, stats, _, _ = openCollecting(t, dir, WALOptions{})
	if stats.Records != 11 || stats.SkippedEvents != 0 {
		t.Fatalf("second replay = %+v, want 11 clean records", stats)
	}
}

func TestWALCorruptionMidLogSkipsOneSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, _, _ := openCollecting(t, dir, WALOptions{SegmentBytes: 1})
	for i := 0; i < 6; i++ {
		if _, err := w.Append(testRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the third segment (seq 3): its checksum must
	// catch the damage and replay must continue with segment 4.
	seg := filepath.Join(dir, segName(3, sealedExt))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats, seqs, _ := openCollecting(t, dir, WALOptions{SegmentBytes: 1})
	if stats.Records != 5 || stats.SkippedEvents != 1 {
		t.Fatalf("replay = %+v, want 5 records and 1 corruption site", stats)
	}
	wantSeqs := []uint64{1, 2, 4, 5, 6}
	for i, s := range seqs {
		if s != wantSeqs[i] {
			t.Fatalf("replayed seqs = %v, want %v", seqs, wantSeqs)
		}
	}
}

func TestWALStickyFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultFS{inner: osFS{}}
	w, _, _, _ := openCollecting(t, dir, WALOptions{FS: ffs})
	if _, err := w.Append(testRecord(0)); err != nil {
		t.Fatalf("Append before fault: %v", err)
	}
	ffs.failNow("write")
	if _, err := w.Append(testRecord(1)); err == nil {
		t.Fatal("Append during fault succeeded")
	}
	ffs.heal()
	// The failure must stick even though the disk recovered: the caller
	// cannot know what state the file is in.
	if _, err := w.Append(testRecord(2)); err == nil {
		t.Fatal("Append after fault succeeded; WAL failure must be sticky")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync after fault succeeded; WAL failure must be sticky")
	}
}

func TestWALCloseSealsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w, _, _, _ := openCollecting(t, dir, WALOptions{})
	if _, err := w.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := countFiles(t, dir, openExt); got != 0 {
		t.Fatalf("open segments after Close = %d, want 0", got)
	}
	if _, err := w.Append(testRecord(1)); err != ErrWALClosed {
		t.Fatalf("Append after Close = %v, want ErrWALClosed", err)
	}
}

func countFiles(t *testing.T, dir, ext string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ext) {
			n++
		}
	}
	return n
}

func singleFile(t *testing.T, dir, ext string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var match string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ext) {
			if match != "" {
				t.Fatalf("multiple %s files in %s", ext, dir)
			}
			match = filepath.Join(dir, e.Name())
		}
	}
	if match == "" {
		t.Fatalf("no %s file in %s", ext, dir)
	}
	return match
}

// FuzzWALReplay feeds arbitrary bytes to recovery as a WAL segment: no
// input may panic it, refuse to boot, or leave the log unusable for new
// appends.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x13, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef})
	// A genuine frame as a seed: append one record and read the bytes back.
	seed := f.TempDir()
	w, _, err := OpenWAL(seed, func(uint64, Record) error { return nil },
		WALOptions{Logger: discardLogger()})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := w.Append(testRecord(1)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	entries, err := os.ReadDir(seed)
	if err != nil || len(entries) != 1 {
		f.Fatalf("seed segment: %v (%d entries)", err, len(entries))
	}
	frame, err := os.ReadFile(filepath.Join(seed, entries[0].Name()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(append(frame[:len(frame)-1], frame[len(frame)-1]^0x01))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1, openExt)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, stats, err := OpenWAL(dir, func(seq uint64, rec Record) error { return nil },
			WALOptions{Logger: discardLogger()})
		if err != nil {
			t.Fatalf("OpenWAL refused arbitrary segment: %v", err)
		}
		// Whatever survived, the log must accept and recover new appends.
		seq, err := w.Append(testRecord(2))
		if err != nil {
			t.Fatalf("Append after fuzzed replay: %v", err)
		}
		if seq != stats.LastSeq+1 {
			t.Fatalf("append seq %d does not follow recovered last seq %d", seq, stats.LastSeq)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		_, stats2, err := OpenWAL(dir, func(uint64, Record) error { return nil },
			WALOptions{Logger: discardLogger()})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		if stats2.LastSeq != seq {
			t.Fatalf("reopen lost the appended record: last seq %d, want %d", stats2.LastSeq, seq)
		}
	})
}
