package ingest

import (
	"context"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"stmaker"
	"stmaker/internal/registry"
	"stmaker/internal/sanitize"
)

// ServiceOptions configures the multi-region ingestion service.
type ServiceOptions struct {
	// Dir is the ingestion root; each region gets Dir/<region>.
	Dir string
	// CompactInterval is how often Run compacts every region's knowledge
	// into a published model (default 1 minute).
	CompactInterval time.Duration
	// BufferFixes, TripFixLimit, SegmentBytes and Sanitize are passed to
	// every region's IngesterOptions.
	BufferFixes  int
	TripFixLimit int
	SegmentBytes int64
	Sanitize     sanitize.Options
	// FS overrides the filesystem (fault injection); nil means the real
	// one.
	FS FS
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

// Service fronts one Ingester per region, sharing the server's model
// registry: ingesters resolve their summarizer through it per operation,
// so registry evictions and reloads are followed, and compactions
// publish through the same per-region atomic cells /summarize reads.
//
// Regions with an existing ingest directory are recovered eagerly at
// construction (a crashed region must replay before serving resumes);
// other regions get their ingester lazily on first write. A region whose
// recovery fails keeps its WAL on disk and answers writes with the
// recovery error until a later attempt succeeds — reads are unaffected.
type Service struct {
	reg  *registry.Registry
	opts ServiceOptions

	mu        sync.Mutex
	ingesters map[string]*Ingester
}

// NewService builds the service and eagerly recovers every region that
// left an ingest directory behind. Per-region recovery failures are
// logged and deferred (retried on the region's next write), never fatal
// to boot.
func NewService(reg *registry.Registry, opts ServiceOptions) (*Service, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("ingest: ServiceOptions.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = osFS{}
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.CompactInterval <= 0 {
		opts.CompactInterval = time.Minute
	}
	s := &Service{
		reg:       reg,
		opts:      opts,
		ingesters: make(map[string]*Ingester),
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create ingest root: %w", err)
	}
	entries, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: list ingest root: %w", err)
	}
	known := make(map[string]bool)
	for _, name := range reg.Names() {
		known[name] = true
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if !known[name] {
			opts.Logger.Warn("ingest directory for unknown region left untouched", "region", name)
			continue
		}
		if _, err := s.Ingester(name); err != nil {
			opts.Logger.Error("ingest recovery deferred; region refuses writes until it succeeds",
				"region", name, "err", err)
		}
	}
	return s, nil
}

// Ingester returns (creating and recovering on first use) the named
// region's ingester. Unknown regions return registry.ErrUnknownRegion.
func (s *Service) Ingester(name string) (*Ingester, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ing := s.ingesters[name]; ing != nil {
		return ing, nil
	}
	// Resolving validates the region key and loads the region if needed —
	// recovery has to calibrate replayed trips, so the load is due anyway.
	resolve := func() (*stmaker.Summarizer, error) { return s.reg.Summarizer(name) }
	if _, err := resolve(); err != nil {
		return nil, err
	}
	ing, err := NewIngester(filepath.Join(s.opts.Dir, name), resolve, IngesterOptions{
		BufferFixes:  s.opts.BufferFixes,
		TripFixLimit: s.opts.TripFixLimit,
		SegmentBytes: s.opts.SegmentBytes,
		Sanitize:     s.opts.Sanitize,
		FS:           s.opts.FS,
		Logger:       s.opts.Logger,
		Metrics:      s.reg.RegionMetrics(name),
	})
	if err != nil {
		return nil, err
	}
	s.ingesters[name] = ing
	return ing, nil
}

// active snapshots the current ingesters.
func (s *Service) active() map[string]*Ingester {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*Ingester, len(s.ingesters))
	for k, v := range s.ingesters {
		out[k] = v
	}
	return out
}

// CompactAll compacts every active region, returning the first error
// (each failure is already logged and contained per region).
func (s *Service) CompactAll() error {
	var first error
	for name, ing := range s.active() {
		if err := ing.CompactNow(); err != nil && first == nil {
			first = fmt.Errorf("ingest: region %q: %w", name, err)
		}
	}
	return first
}

// Run compacts on the configured interval until ctx is cancelled —
// cmd/stmakerd starts it alongside the HTTP listener.
func (s *Service) Run(ctx context.Context) {
	t := time.NewTicker(s.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = s.CompactAll() // logged and counted per region
		}
	}
}

// Close seals every region's WAL; buffered open trips are rebuilt by the
// next boot's replay.
func (s *Service) Close() error {
	var first error
	for _, ing := range s.active() {
		if err := ing.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
