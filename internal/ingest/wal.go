package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	// sealedExt marks immutable, fully-synced segments.
	sealedExt = ".log"
	// openExt marks the single segment currently being appended to. A
	// roll renames it to sealedExt after a final fsync, so the rename is
	// the durability barrier: a ".log" file never has an unsynced tail
	// written before the roll.
	openExt = ".open"
	// segPrefix + 16 hex digits of the first sequence number in the
	// segment gives lexicographic order == replay order.
	segPrefix = "wal-"

	defaultSegmentBytes = 4 << 20
	// maxRecordBytes bounds one framed payload; anything larger in a
	// length header is corruption, not an allocation request.
	maxRecordBytes = 64 << 10
	// frameHeaderLen is u32 payload length + u32 CRC-32C of the payload.
	frameHeaderLen = 8
)

// castagnoli matches the polynomial used by internal/modelio, so the
// whole on-disk surface of the project shares one checksum discipline.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWALClosed is returned by operations on a closed WAL.
var ErrWALClosed = errors.New("ingest: wal closed")

// WALOptions tunes a WAL. The zero value is usable.
type WALOptions struct {
	// SegmentBytes is the roll threshold (default 4 MiB).
	SegmentBytes int64
	// FS overrides the filesystem (fault-injection tests); nil means the
	// real one.
	FS FS
	// Logger receives replay-repair notices; nil means slog.Default().
	Logger *slog.Logger
}

// ReplayStats reports what recovery found in the log directory.
type ReplayStats struct {
	// Records is the count of valid records replayed.
	Records int
	// SkippedEvents counts corruption sites (each loses one or more
	// trailing records of a segment); torn tails from a crash mid-append
	// are the expected case.
	SkippedEvents int
	// SkippedBytes is the total bytes dropped at those sites.
	SkippedBytes int64
	// Segments is the number of segment files scanned.
	Segments int
	// LastSeq is the highest sequence number recovered (0 if none).
	LastSeq uint64
}

// segment is a sealed, immutable WAL file.
type segment struct {
	name     string // base name, sealedExt
	firstSeq uint64
	lastSeq  uint64
	bytes    int64
}

// WAL is a segmented, checksummed, crash-recoverable append log of
// ingestion Records. Appends go to a single ".open" segment; when it
// passes the roll threshold it is fsynced and atomically renamed to
// ".log" (sealed). Explicit Sync is the caller's durability barrier for
// records acknowledged to clients since the last roll.
//
// Any write or sync failure poisons the WAL: the error sticks and every
// later Append/Sync/Roll returns it, so the caller can degrade writes
// while reads keep serving. A WAL is safe for concurrent use.
type WAL struct {
	dir string
	fs  FS
	log *slog.Logger

	mu            sync.Mutex
	segBytes      int64
	sealed        []segment
	active        File
	activeName    string
	activeFirst   uint64
	activeRecords int
	activeBytes   int64
	lastSeq       uint64
	buf           []byte
	failed        error
	closed        bool
}

// OpenWAL opens (creating if needed) the log directory, replays every
// valid record in sequence order through fn, repairs torn tails by
// physically truncating them, seals any segment left open by a crash,
// and starts a fresh open segment for new appends.
//
// Corruption is never fatal to Open: a bad frame drops the remainder of
// that one segment (counted in ReplayStats and logged) and replay
// continues with the next segment. Only fn returning an error, or I/O
// errors listing/creating files, abort Open.
func OpenWAL(dir string, fn func(seq uint64, rec Record) error, opts WALOptions) (*WAL, ReplayStats, error) {
	w := &WAL{
		dir:      dir,
		fs:       opts.FS,
		log:      opts.Logger,
		segBytes: opts.SegmentBytes,
	}
	if w.fs == nil {
		w.fs = osFS{}
	}
	if w.log == nil {
		w.log = slog.Default()
	}
	if w.segBytes <= 0 {
		w.segBytes = defaultSegmentBytes
	}
	var stats ReplayStats
	if err := w.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("ingest: create wal dir: %w", err)
	}
	names, err := w.listSegments()
	if err != nil {
		return nil, stats, err
	}
	stats.Segments = len(names)
	for i, name := range names {
		last := i == len(names)-1
		if err := w.replaySegment(name, last, fn, &stats); err != nil {
			return nil, stats, err
		}
	}
	stats.LastSeq = w.lastSeq
	if err := w.openActive(); err != nil {
		return nil, stats, err
	}
	return w, stats, nil
}

// listSegments returns segment base names in replay (sequence) order.
func (w *WAL) listSegments() ([]string, error) {
	entries, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: list wal dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		si, oi, _ := parseSegName(names[i])
		sj, oj, _ := parseSegName(names[j])
		if si != sj {
			return si < sj
		}
		return !oi && oj // sealed before open at the same first-seq
	})
	return names, nil
}

// parseSegName extracts the first sequence number from a segment file
// name, reporting whether it is an open segment.
func parseSegName(name string) (firstSeq uint64, open bool, ok bool) {
	rest, found := strings.CutPrefix(name, segPrefix)
	if !found {
		return 0, false, false
	}
	var ext string
	switch {
	case strings.HasSuffix(rest, sealedExt):
		ext = sealedExt
	case strings.HasSuffix(rest, openExt):
		ext = openExt
		open = true
	default:
		return 0, false, false
	}
	hexa := strings.TrimSuffix(rest, ext)
	if len(hexa) != 16 {
		return 0, false, false
	}
	seq, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false, false
	}
	return seq, open, true
}

func segName(firstSeq uint64, ext string) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, ext)
}

// replaySegment replays one segment file. The last segment in the
// directory gets torn-tail repair (physical truncation at the first bad
// frame); earlier segments only skip-and-count, since their tails were
// already repaired on a previous boot or sealed by a clean roll.
// Segments left with zero valid records are deleted; an open segment
// with records is sealed in place.
func (w *WAL) replaySegment(name string, last bool, fn func(uint64, Record) error, stats *ReplayStats) error {
	path := filepath.Join(w.dir, name)
	data, err := w.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("ingest: read wal segment %s: %w", name, err)
	}
	firstSeq, open, _ := parseSegName(name)
	records := 0
	var lastSeq uint64
	off := 0
	for off < len(data) {
		n, seq, rec, derr := decodeFrame(data[off:])
		if derr == nil && seq <= w.lastSeq {
			derr = fmt.Errorf("ingest: sequence %d not after %d", seq, w.lastSeq)
		}
		if derr != nil {
			dropped := int64(len(data) - off)
			stats.SkippedEvents++
			stats.SkippedBytes += dropped
			w.log.Warn("wal: dropping corrupt segment tail",
				"segment", name, "offset", off, "bytes", dropped, "err", derr)
			if last {
				if terr := w.truncateFile(path, int64(off)); terr != nil {
					return fmt.Errorf("ingest: repair torn tail of %s: %w", name, terr)
				}
				data = data[:off]
			}
			break
		}
		if err := fn(seq, rec); err != nil {
			return fmt.Errorf("ingest: replay seq %d: %w", seq, err)
		}
		w.lastSeq = seq
		lastSeq = seq
		records++
		stats.Records++
		off += n
	}
	if records == 0 {
		if err := w.fs.Remove(path); err != nil {
			return fmt.Errorf("ingest: remove empty wal segment %s: %w", name, err)
		}
		return nil
	}
	sealedName := name
	if open {
		sealedName = segName(firstSeq, sealedExt)
		if err := w.fs.Rename(path, filepath.Join(w.dir, sealedName)); err != nil {
			return fmt.Errorf("ingest: seal wal segment %s: %w", name, err)
		}
	}
	w.sealed = append(w.sealed, segment{
		name:     sealedName,
		firstSeq: firstSeq,
		lastSeq:  lastSeq,
		bytes:    int64(len(data)),
	})
	return nil
}

// truncateFile cuts path to size and syncs it.
func (w *WAL) truncateFile(path string, size int64) error {
	f, err := w.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeFrame parses one frame from the head of b, returning the number
// of bytes consumed. Errors mean "corruption or torn tail from here on".
func decodeFrame(b []byte) (n int, seq uint64, rec Record, err error) {
	if len(b) < frameHeaderLen {
		return 0, 0, rec, fmt.Errorf("ingest: torn frame header (%d bytes)", len(b))
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen == 0 || plen > maxRecordBytes {
		return 0, 0, rec, fmt.Errorf("ingest: frame length %d out of range", plen)
	}
	if uint64(len(b)-frameHeaderLen) < uint64(plen) {
		return 0, 0, rec, fmt.Errorf("ingest: torn frame payload (%d of %d bytes)", len(b)-frameHeaderLen, plen)
	}
	payload := b[frameHeaderLen : frameHeaderLen+int(plen)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return 0, 0, rec, fmt.Errorf("ingest: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	seq, v := binary.Uvarint(payload)
	if v <= 0 || seq == 0 {
		return 0, 0, rec, fmt.Errorf("ingest: bad frame sequence varint")
	}
	rec, err = decodeRecord(payload[v:])
	if err != nil {
		return 0, 0, rec, err
	}
	return frameHeaderLen + int(plen), seq, rec, nil
}

// openActive starts a fresh open segment whose first sequence is the
// next to be appended.
func (w *WAL) openActive() error {
	w.activeFirst = w.lastSeq + 1
	w.activeName = segName(w.activeFirst, openExt)
	f, err := w.fs.OpenFile(filepath.Join(w.dir, w.activeName), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: open wal segment %s: %w", w.activeName, err)
	}
	w.active = f
	w.activeRecords = 0
	w.activeBytes = 0
	return nil
}

// Append frames, checksums and writes rec, assigning it the next
// sequence number, and rolls the segment if it passed the threshold.
// The record is durable only after the next Sync, roll or Close. A
// failed append poisons the WAL (sticky error).
func (w *WAL) Append(rec Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.usable(); err != nil {
		return 0, err
	}
	seq := w.lastSeq + 1
	w.buf = w.buf[:0]
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	w.buf = binary.AppendUvarint(w.buf, seq)
	var err error
	w.buf, err = appendRecord(w.buf, rec)
	if err != nil {
		return 0, err // encoding error: caller bug or bad input, not a WAL fault
	}
	payload := w.buf[frameHeaderLen:]
	binary.LittleEndian.PutUint32(w.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.active.Write(w.buf); err != nil {
		w.failed = fmt.Errorf("ingest: wal append: %w", err)
		return 0, w.failed
	}
	w.lastSeq = seq
	w.activeRecords++
	w.activeBytes += int64(len(w.buf))
	if w.activeBytes >= w.segBytes {
		if err := w.roll(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync makes every appended record durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.usable(); err != nil {
		return err
	}
	if err := w.active.Sync(); err != nil {
		w.failed = fmt.Errorf("ingest: wal sync: %w", err)
		return w.failed
	}
	return nil
}

// Roll seals the active segment (fsync + atomic rename) and opens a new
// one. It is a no-op when the active segment is empty, so callers can
// use it freely as a compaction barrier.
func (w *WAL) Roll() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.usable(); err != nil {
		return err
	}
	return w.roll()
}

// roll implements Roll; callers hold w.mu.
func (w *WAL) roll() error {
	if w.activeRecords == 0 {
		return nil
	}
	if err := w.active.Sync(); err != nil {
		w.failed = fmt.Errorf("ingest: wal roll sync: %w", err)
		return w.failed
	}
	if err := w.active.Close(); err != nil {
		w.failed = fmt.Errorf("ingest: wal roll close: %w", err)
		return w.failed
	}
	sealedName := segName(w.activeFirst, sealedExt)
	if err := w.fs.Rename(filepath.Join(w.dir, w.activeName), filepath.Join(w.dir, sealedName)); err != nil {
		w.failed = fmt.Errorf("ingest: wal roll rename: %w", err)
		return w.failed
	}
	w.sealed = append(w.sealed, segment{
		name:     sealedName,
		firstSeq: w.activeFirst,
		lastSeq:  w.lastSeq,
		bytes:    w.activeBytes,
	})
	if err := w.openActive(); err != nil {
		w.failed = err
		return w.failed
	}
	return nil
}

// usable reports the sticky failure or closed state; callers hold w.mu.
func (w *WAL) usable() error {
	if w.closed {
		return ErrWALClosed
	}
	return w.failed
}

// LastSeq returns the highest sequence number appended or recovered.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Bytes returns the total on-disk size of the log (sealed + active).
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.activeBytes
	for _, s := range w.sealed {
		total += s.bytes
	}
	return total
}

// TruncateThrough deletes sealed segments fully covered by a checkpoint
// at seq (every record in them has sequence <= seq). Deletion failures
// are logged and retried implicitly at the next call — leftover segments
// cost disk, not correctness, because replay is idempotent below the
// checkpoint. Returns the number of segments removed.
func (w *WAL) TruncateThrough(seq uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	kept := w.sealed[:0]
	for _, s := range w.sealed {
		if s.lastSeq <= seq {
			if err := w.fs.Remove(filepath.Join(w.dir, s.name)); err != nil {
				w.log.Warn("wal: truncate failed to remove segment", "segment", s.name, "err", err)
				kept = append(kept, s)
				continue
			}
			removed++
			continue
		}
		kept = append(kept, s)
	}
	w.sealed = kept
	return removed
}

// Close syncs and seals the active segment. An empty active segment is
// removed instead of sealed. The WAL rejects all operations afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active == nil {
		return nil
	}
	if w.activeRecords == 0 {
		err := w.active.Close()
		if rerr := w.fs.Remove(filepath.Join(w.dir, w.activeName)); rerr != nil && err == nil {
			err = rerr
		}
		w.active = nil
		return err
	}
	if err := w.active.Sync(); err != nil {
		w.active.Close()
		w.active = nil
		return err
	}
	if err := w.active.Close(); err != nil {
		w.active = nil
		return err
	}
	err := w.fs.Rename(filepath.Join(w.dir, w.activeName), filepath.Join(w.dir, segName(w.activeFirst, sealedExt)))
	w.active = nil
	return err
}
