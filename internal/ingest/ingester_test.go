package ingest

import (
	"errors"
	"io"
	"io/fs"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/metrics"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// errInjected is the fault every injected failure surfaces.
var errInjected = errors.New("injected fault")

// faultFS wraps a real filesystem with switchable fault injection, the
// crash-matrix substrate: arm() makes every matching operation from the
// Nth onward fail, which models a kill at that instant — everything the
// code managed to write before the fault is on disk, nothing after.
type faultFS struct {
	inner FS

	mu        sync.Mutex
	ops       int
	armed     bool
	remaining int    // matching ops still allowed before failures start
	op        string // only this operation fails; "" = all
	substr    string // only paths containing this fail; "" = all

	record bool // when set, every operation is appended to trace
	trace  []opEvent
}

// opEvent is one recorded filesystem operation of a dry run; the crash
// matrix replays the same workload and derives its kill points from it.
type opEvent struct {
	op, path string
}

func (e opEvent) matches(op, substr string) bool {
	return (op == "" || e.op == op) && (substr == "" || strings.Contains(e.path, substr))
}

// armAfter makes every matching operation fail once n more matching
// operations have succeeded (n=0 fails the next one).
func (f *faultFS) armAfter(n int, op, substr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed, f.remaining, f.op, f.substr = true, n, op, substr
}

// failNow makes every matching operation fail from now on.
func (f *faultFS) failNow(op string) { f.armAfter(0, op, "") }

// failPath makes every operation on matching paths fail from now on.
func (f *faultFS) failPath(substr string) { f.armAfter(0, "", substr) }

func (f *faultFS) heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = false
}

// check counts one operation and reports whether it must fail.
func (f *faultFS) check(op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.record {
		f.trace = append(f.trace, opEvent{op: op, path: path})
	}
	if !f.armed || !(opEvent{op: op, path: path}).matches(f.op, f.substr) {
		return nil
	}
	if f.remaining > 0 {
		f.remaining--
		return nil
	}
	return errInjected
}

func (f *faultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.check("open", name); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check("readfile", name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *faultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.check("readdir", name); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.check("rename", oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error {
	if err := f.check("remove", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *faultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.check("mkdir", path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

type faultFile struct {
	File
	fs   *faultFS
	path string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check("write", f.path); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check("sync", f.path); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.check("truncate", f.path); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

// The ingestion fixture: one small trained city shared by every test.
// Each test builds its own Summarizer over the shared world and model,
// so compactions publishing through LoadModel cannot leak across tests.
var (
	fixOnce  sync.Once
	fixCity  *simulate.City
	fixModel *stmaker.Model
	fixTrips []*traj.Raw
	fixErr   error
)

func buildFixture() {
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, BlockMeters: 500, Seed: 21})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 22})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		fixErr = err
		return
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 60, Seed: 23, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		fixErr = err
		return
	}
	live := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 10, Seed: 24, FixedHour: 9})
	for _, tr := range live {
		fixTrips = append(fixTrips, tr.Raw)
	}
	fixCity, fixModel = city, s.Model()
}

// newSummarizer returns a fresh summarizer serving the fixture model.
func newSummarizer(t testing.TB) *stmaker.Summarizer {
	t.Helper()
	fixOnce.Do(buildFixture)
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	s, err := stmaker.New(stmaker.Config{Graph: fixCity.Graph, Landmarks: fixCity.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(fixModel); err != nil {
		t.Fatal(err)
	}
	return s
}

func fixed(s *stmaker.Summarizer) func() (*stmaker.Summarizer, error) {
	return func() (*stmaker.Summarizer, error) { return s, nil }
}

// feedTrip streams one fixture trip into the ingester, optionally
// closing it, failing the test on any error.
func feedTrip(t *testing.T, ing *Ingester, raw *traj.Raw, close bool) {
	t.Helper()
	for _, s := range raw.Samples {
		if err := ing.AddFix(raw.ID, raw.Object, s.Pt, s.T); err != nil {
			t.Fatalf("AddFix(%s): %v", raw.ID, err)
		}
	}
	if close {
		if err := ing.CloseTrip(raw.ID); err != nil {
			t.Fatalf("CloseTrip(%s): %v", raw.ID, err)
		}
	}
}

func TestIngesterRecoveryRebuildsState(t *testing.T) {
	dir := t.TempDir()
	s := newSummarizer(t)
	mx := metrics.NewRegistry()
	ing, err := NewIngester(dir, fixed(s), IngesterOptions{Logger: discardLogger(), Metrics: mx})
	if err != nil {
		t.Fatal(err)
	}
	closed, open := fixTrips[0], fixTrips[1]
	feedTrip(t, ing, closed, true)
	// The open trip stops mid-stream: half its fixes, no end marker.
	half := &traj.Raw{ID: open.ID, Object: open.Object, Samples: open.Samples[:len(open.Samples)/2]}
	feedTrip(t, ing, half, false)
	if err := ing.Sync(); err != nil {
		t.Fatal(err)
	}
	live := ing.Stats()
	if live.TripsFolded != 1 || live.OpenTrips != 1 || live.BufferedFixes != len(half.Samples) {
		t.Fatalf("live stats = %+v, want 1 folded, 1 open with %d fixes", live, len(half.Samples))
	}
	// Crash: the ingester is abandoned without Close, leaving the open
	// segment unsealed.
	rec, err := NewIngester(dir, fixed(newSummarizer(t)), IngesterOptions{Logger: discardLogger()})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	st := rec.Stats()
	if st.Replay.SkippedEvents != 0 {
		t.Fatalf("clean shutdownless recovery skipped %d events", st.Replay.SkippedEvents)
	}
	if st.Replay.Records != len(closed.Samples)+1+len(half.Samples) {
		t.Fatalf("replayed %d records, want %d fixes + 1 close + %d fixes",
			st.Replay.Records, len(closed.Samples), len(half.Samples))
	}
	if st.TripsFolded != live.TripsFolded || st.OpenTrips != live.OpenTrips || st.BufferedFixes != live.BufferedFixes {
		t.Fatalf("recovered stats %+v != live stats %+v", st, live)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIngesterBackpressureSheds(t *testing.T) {
	dir := t.TempDir()
	s := newSummarizer(t)
	mx := metrics.NewRegistry()
	ing, err := NewIngester(dir, fixed(s), IngesterOptions{
		BufferFixes: 3, Logger: discardLogger(), Metrics: mx,
	})
	if err != nil {
		t.Fatal(err)
	}
	trip := fixTrips[0]
	for i := 0; i < 3; i++ {
		if err := ing.AddFix(trip.ID, trip.Object, trip.Samples[i].Pt, trip.Samples[i].T); err != nil {
			t.Fatalf("AddFix %d under capacity: %v", i, err)
		}
	}
	if err := ing.AddFix(trip.ID, trip.Object, trip.Samples[3].Pt, trip.Samples[3].T); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("AddFix over capacity = %v, want ErrBufferFull", err)
	}
	if got := mx.Counter(MetricShed).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricShed, got)
	}
	// Shedding is not a WAL fault: closing the trip drains the buffer and
	// ingestion resumes.
	if err := ing.CloseTrip(trip.ID); err != nil {
		t.Fatal(err)
	}
	if err := ing.AddFix(trip.ID, trip.Object, trip.Samples[4].Pt, trip.Samples[4].T); err != nil {
		t.Fatalf("AddFix after drain: %v", err)
	}
}

func TestIngesterTripFixLimitAutoCloses(t *testing.T) {
	dir := t.TempDir()
	s := newSummarizer(t)
	mx := metrics.NewRegistry()
	ing, err := NewIngester(dir, fixed(s), IngesterOptions{
		TripFixLimit: 4, Logger: discardLogger(), Metrics: mx,
	})
	if err != nil {
		t.Fatal(err)
	}
	trip := fixTrips[0]
	for i := 0; i < 8; i++ {
		if err := ing.AddFix(trip.ID, trip.Object, trip.Samples[i].Pt, trip.Samples[i].T); err != nil {
			t.Fatal(err)
		}
	}
	st := ing.Stats()
	if st.OpenTrips != 0 || st.BufferedFixes != 0 {
		t.Fatalf("stats = %+v, want the capped trip force-closed twice", st)
	}
	if got := mx.Counter(MetricTripsClosed).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2 auto-closes", MetricTripsClosed, got)
	}
	// The cap applies identically during replay: recovery reconstructs
	// the same closes from the same fix stream.
	rec, err := NewIngester(dir, fixed(newSummarizer(t)), IngesterOptions{
		TripFixLimit: 4, Logger: discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := rec.Stats(); st.OpenTrips != 0 || st.BufferedFixes != 0 {
		t.Fatalf("recovered stats = %+v, want the same auto-closes", st)
	}
}

func TestIngesterDegradedWALKeepsReads(t *testing.T) {
	dir := t.TempDir()
	s := newSummarizer(t)
	ffs := &faultFS{inner: osFS{}}
	ing, err := NewIngester(dir, fixed(s), IngesterOptions{FS: ffs, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	trip := fixTrips[0]
	if err := ing.AddFix(trip.ID, trip.Object, trip.Samples[0].Pt, trip.Samples[0].T); err != nil {
		t.Fatal(err)
	}
	ffs.failNow("write")
	if err := ing.AddFix(trip.ID, trip.Object, trip.Samples[1].Pt, trip.Samples[1].T); err == nil {
		t.Fatal("AddFix with failing disk succeeded")
	}
	ffs.heal()
	// Degradation is sticky for writes...
	if err := ing.AddFix(trip.ID, trip.Object, trip.Samples[2].Pt, trip.Samples[2].T); err == nil {
		t.Fatal("AddFix after WAL fault succeeded; degradation must be sticky")
	}
	// ...while reads are untouched: the summarizer still serves.
	if _, err := s.Summarize(fixTrips[1]); err != nil {
		t.Fatalf("Summarize with degraded WAL: %v", err)
	}
}

func TestCompactionPublishesCheckpointAndTruncates(t *testing.T) {
	dir := t.TempDir()
	s := newSummarizer(t)
	mx := metrics.NewRegistry()
	ing, err := NewIngester(dir, fixed(s), IngesterOptions{
		SegmentBytes: 256, Logger: discardLogger(), Metrics: mx,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Model().Version()
	for _, trip := range fixTrips[:3] {
		feedTrip(t, ing, trip, true)
	}
	open := fixTrips[3]
	half := &traj.Raw{ID: open.ID, Object: open.Object, Samples: open.Samples[:5]}
	feedTrip(t, ing, half, false)

	if err := ing.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	st := ing.Stats()
	if st.CheckpointSeq == 0 {
		t.Fatal("compaction left checkpoint seq 0")
	}
	if got := s.Model().Version(); got == before {
		t.Fatal("compaction did not publish a new model version")
	}
	if got := mx.Counter(MetricCompactions).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricCompactions, got)
	}
	// A second compaction with nothing new is a no-op.
	if err := ing.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if got := mx.Counter(MetricCompactions).Value(); got != 1 {
		t.Fatalf("clean compaction ran anyway: %s = %d", MetricCompactions, got)
	}

	// Recovery from the checkpoint: folded trips come from the model, the
	// open trip from the re-logged WAL tail; nothing is re-folded.
	rec, err := NewIngester(dir, fixed(newSummarizer(t)), IngesterOptions{Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	rst := rec.Stats()
	if rst.CheckpointSeq != st.CheckpointSeq {
		t.Fatalf("recovered checkpoint seq %d, want %d", rst.CheckpointSeq, st.CheckpointSeq)
	}
	if rst.TripsFolded != 0 {
		t.Fatalf("recovery re-folded %d checkpointed trips", rst.TripsFolded)
	}
	if rst.OpenTrips != 1 || rst.BufferedFixes != len(half.Samples) {
		t.Fatalf("recovered stats %+v, want the open trip's %d fixes back", rst, len(half.Samples))
	}
}

func TestCompactionFailureKeepsPreviousModel(t *testing.T) {
	dir := t.TempDir()
	s := newSummarizer(t)
	mx := metrics.NewRegistry()
	ffs := &faultFS{inner: osFS{}}
	ing, err := NewIngester(dir, fixed(s), IngesterOptions{FS: ffs, Logger: discardLogger(), Metrics: mx})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Model().Version()
	feedTrip(t, ing, fixTrips[0], true)

	// Fail the compaction model's temp-file write: the freeze has already
	// happened, but the commit point is never reached.
	ffs.failPath(modelExt + ".tmp")
	if err := ing.CompactNow(); err == nil {
		t.Fatal("CompactNow with failing model persist succeeded")
	}
	if got := s.Model().Version(); got != before {
		t.Fatal("failed compaction swapped the serving model")
	}
	if st := ing.Stats(); st.CheckpointSeq != 0 {
		t.Fatal("failed compaction advanced the checkpoint")
	}
	if got := mx.Counter(MetricCompactionFailures).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricCompactionFailures, got)
	}

	// The knowledge stayed dirty: once the disk heals, the next attempt
	// publishes everything.
	ffs.heal()
	if err := ing.CompactNow(); err != nil {
		t.Fatalf("CompactNow after heal: %v", err)
	}
	if got := s.Model().Version(); got == before {
		t.Fatal("healed compaction did not publish")
	}
	if st := ing.Stats(); st.CheckpointSeq == 0 {
		t.Fatal("healed compaction did not advance the checkpoint")
	}
}
