package ingest

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"stmaker/internal/geo"
)

// RecordKind discriminates WAL record payloads.
type RecordKind byte

const (
	// KindFix is one GPS fix of an open trip.
	KindFix RecordKind = 1
	// KindClose is an explicit end-of-trip marker.
	KindClose RecordKind = 2
)

// maxTripIDLen caps the trip and object identifier lengths in a WAL
// record — long enough for any reasonable client key, short enough that
// a hostile or corrupt length field cannot provoke a large allocation.
const maxTripIDLen = 1024

// Record is one durable ingestion event: a GPS fix attributed to a trip,
// or a trip-close marker. Records are what the WAL frames, checksums and
// replays.
type Record struct {
	Kind   RecordKind
	Trip   string
	Object string
	Pt     geo.Point
	T      time.Time
}

// appendRecord encodes r onto buf. Layout (little-endian):
//
//	u8 kind | uv len(trip) + trip
//	fix only: uv len(object) + object | f64 lat | f64 lng | i64 unixNanos
func appendRecord(buf []byte, r Record) ([]byte, error) {
	if r.Kind != KindFix && r.Kind != KindClose {
		return nil, fmt.Errorf("ingest: unknown record kind %d", r.Kind)
	}
	if r.Trip == "" || len(r.Trip) > maxTripIDLen {
		return nil, fmt.Errorf("ingest: trip id length %d out of range (1..%d)", len(r.Trip), maxTripIDLen)
	}
	if len(r.Object) > maxTripIDLen {
		return nil, fmt.Errorf("ingest: object id length %d exceeds %d", len(r.Object), maxTripIDLen)
	}
	buf = append(buf, byte(r.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(r.Trip)))
	buf = append(buf, r.Trip...)
	if r.Kind == KindClose {
		return buf, nil
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Object)))
	buf = append(buf, r.Object...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Pt.Lat))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Pt.Lng))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.T.UnixNano()))
	return buf, nil
}

// decodeRecord parses one record payload. The input is untrusted (it
// comes off disk): every length is bounds-checked and any structural
// problem returns an error — never a panic, never an over-allocation.
// It requires the payload to be exactly consumed.
func decodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) < 1 {
		return r, fmt.Errorf("ingest: empty record")
	}
	r.Kind = RecordKind(b[0])
	b = b[1:]
	trip, b, err := decodeString(b, "trip")
	if err != nil {
		return r, err
	}
	r.Trip = trip
	switch r.Kind {
	case KindClose:
		if len(b) != 0 {
			return r, fmt.Errorf("ingest: %d trailing bytes after close record", len(b))
		}
		return r, nil
	case KindFix:
	default:
		return r, fmt.Errorf("ingest: unknown record kind %d", r.Kind)
	}
	obj, b, err := decodeString(b, "object")
	if err != nil {
		return r, err
	}
	r.Object = obj
	if len(b) != 24 {
		return r, fmt.Errorf("ingest: fix record has %d trailing bytes, want 24", len(b))
	}
	r.Pt = geo.Point{
		Lat: math.Float64frombits(binary.LittleEndian.Uint64(b[0:8])),
		Lng: math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])),
	}
	r.T = time.Unix(0, int64(binary.LittleEndian.Uint64(b[16:24]))).UTC()
	return r, nil
}

// decodeString reads a uvarint-prefixed string, enforcing the identifier
// length cap, and returns the remaining bytes.
func decodeString(b []byte, what string) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return "", nil, fmt.Errorf("ingest: bad %s length varint", what)
	}
	b = b[w:]
	if n > maxTripIDLen || n > uint64(len(b)) {
		return "", nil, fmt.Errorf("ingest: %s length %d out of range (have %d bytes)", what, n, len(b))
	}
	return string(b[:n]), b[n:], nil
}
