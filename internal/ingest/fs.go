// Package ingest is the crash-safe streaming ingestion subsystem: GPS
// fixes arriving over HTTP are appended to a segmented, checksummed
// write-ahead log before they are acknowledged, buffered into open
// trips, folded into the historical knowledge when a trip closes, and
// periodically compacted into a new immutable model published through
// the same atomic cell the /admin/reload path swaps (see
// docs/ROBUSTNESS.md, "Ingestion durability").
//
// The package is built for failure: recovery replays the WAL
// idempotently on boot (torn tail records are dropped and counted, not
// fatal), a WAL-append failure degrades writes to 503 while reads keep
// serving the last good model, backpressure sheds fixes with 429 when
// the in-memory trip buffer is full, and a failed compaction leaves the
// previous model published.
package ingest

import (
	"io"
	"os"
)

// FS is the slice of filesystem the WAL and compactor run on. Production
// code uses the package-level osFS; fault-injection tests substitute a
// wrapper that fails or "kills the process" at a chosen operation, which
// is how the crash matrix in fault_test.go simulates power loss between
// any two syscalls.
type FS interface {
	// OpenFile opens a file with the given flags (the WAL appends with
	// os.O_CREATE|os.O_WRONLY|os.O_APPEND and repairs tails with
	// os.O_RDWR).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads a whole file (replay reads segments this way;
	// segments are bounded by the roll threshold).
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(name string, perm os.FileMode) error
}

// File is the open-file surface the WAL needs.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate cuts the file to the given size (torn-tail repair).
	Truncate(size int64) error
	// Close closes the file.
	Close() error
}

// osFS is the production FS, backed by the os package.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
