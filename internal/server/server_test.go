package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

var (
	setupOnce sync.Once
	srv       *Server
	testTrip  *traj.Raw
	setupErr  error
)

func testServer(t testing.TB) (*Server, *traj.Raw) {
	t.Helper()
	setupOnce.Do(func() {
		city := simulate.NewCity(simulate.CityOptions{Rows: 7, Cols: 7, Seed: 51})
		checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 52})
		city.Landmarks.InferSignificance(200, checkins, hits.Options{})
		s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
		if err != nil {
			setupErr = err
			return
		}
		train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 120, Seed: 53, FixedHour: -1, Calm: true})
		corpus := make([]*traj.Raw, 0, len(train))
		for _, tr := range train {
			corpus = append(corpus, tr.Raw)
		}
		if _, err := s.Train(corpus); err != nil {
			setupErr = err
			return
		}
		srv, setupErr = NewWithOptions(s, Options{Logger: DiscardLogger()})
		if setupErr != nil {
			return
		}
		trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 5, Seed: 54, FixedHour: 9})
		testTrip = trips[0].Raw
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return srv, testTrip
}

func post(t *testing.T, srv *Server, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// TestNewAcceptsUntrainedSummarizer pins the warm-start contract: a
// server may be built before any model is published, but it advertises
// not-ready and answers summarization with 503 until one lands.
func TestNewAcceptsUntrainedSummarizer(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil summarizer accepted")
	}
	city := simulate.NewCity(simulate.CityOptions{Rows: 5, Cols: 5, Seed: 1})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(s)
	if err != nil {
		t.Fatalf("untrained summarizer rejected: %v", err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before model = %d, want 503", rec.Code)
	}
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 30, Seed: 7, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(trips))
	for _, tr := range trips {
		corpus = append(corpus, tr.Raw)
	}
	rec = post(t, srv, "/summarize", SummarizeRequest{Trajectory: corpus[0]})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("summarize before model = %d, want 503", rec.Code)
	}
	if _, err := s.Train(corpus); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("readyz after train = %d, want 200", rec.Code)
	}
}

func TestSummarizeEndpoint(t *testing.T) {
	srv, trip := testServer(t)
	rec := post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp SummarizeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != trip.ID || resp.Text == "" || len(resp.Parts) == 0 {
		t.Fatalf("response = %+v", resp)
	}
}

func TestSummarizeEndpointWithK(t *testing.T) {
	srv, trip := testServer(t)
	rec := post(t, srv, "/summarize?k=2", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SummarizeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(resp.Parts))
	}
	// Body K also works.
	rec = post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip, K: 3})
	var resp3 SummarizeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp3); err != nil {
		t.Fatal(err)
	}
	if len(resp3.Parts) != 3 {
		t.Fatalf("body-k parts = %d, want 3", len(resp3.Parts))
	}
}

func TestSummarizeEndpointErrors(t *testing.T) {
	srv, trip := testServer(t)

	// GET is rejected.
	req := httptest.NewRequest(http.MethodGet, "/summarize", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}

	// Garbage body.
	req = httptest.NewRequest(http.MethodPost, "/summarize", bytes.NewBufferString("{"))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage status = %d", rec.Code)
	}

	// Missing trajectory.
	rec = post(t, srv, "/summarize", SummarizeRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing trajectory status = %d", rec.Code)
	}

	// Invalid k query.
	rec = post(t, srv, "/summarize?k=-3", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad k status = %d", rec.Code)
	}

	// Unsummarizable trajectory (too short).
	short := &traj.Raw{ID: "short", Samples: trip.Samples[:1]}
	rec = post(t, srv, "/summarize", SummarizeRequest{Trajectory: short})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("short trajectory status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SummarizeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("error message missing")
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}
