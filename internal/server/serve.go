package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// ServeOptions configures the http.Server that Serve runs the handler
// under. Every timeout has a production default; zero fields take it,
// negative fields disable that timeout.
type ServeOptions struct {
	// ReadHeaderTimeout bounds reading the request line and headers
	// (default 5s) — the first slow-loris defence.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the whole request including the body
	// (default 30s), so a client trickling a body one byte at a time
	// cannot pin a connection forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response (default 60s). Keep it
	// above the per-request pipeline deadline (Options.RequestTimeout)
	// or responses get cut mid-write.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// between requests (default 120s).
	IdleTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s): in-flight
	// requests get this long to finish before remaining connections are
	// force-closed.
	DrainTimeout time.Duration
}

func (o ServeOptions) withDefaults() ServeOptions {
	def := func(d *time.Duration, v time.Duration) {
		switch {
		case *d == 0:
			*d = v
		case *d < 0:
			*d = 0
		}
	}
	def(&o.ReadHeaderTimeout, 5*time.Second)
	def(&o.ReadTimeout, 30*time.Second)
	def(&o.WriteTimeout, 60*time.Second)
	def(&o.IdleTimeout, 120*time.Second)
	def(&o.DrainTimeout, 10*time.Second)
	return o
}

// ListenAndServe binds addr and calls Serve. It returns when ctx is
// cancelled (after a graceful drain) or the listener fails.
func (srv *Server) ListenAndServe(ctx context.Context, addr string, opts ServeOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return srv.Serve(ctx, l, opts)
}

// Serve runs the server on l under an http.Server with the configured
// connection timeouts until ctx is cancelled — cmd/stmakerd wires ctx to
// SIGINT/SIGTERM. Cancellation starts a graceful drain: /readyz flips to
// 503 so load balancers stop sending work, the listener closes, in-flight
// requests get DrainTimeout to finish, then stragglers are force-closed.
// Serve returns nil after a clean drain and the shutdown error otherwise.
func (srv *Server) Serve(ctx context.Context, l net.Listener, opts ServeOptions) error {
	opts = opts.withDefaults()
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: opts.ReadHeaderTimeout,
		ReadTimeout:       opts.ReadTimeout,
		WriteTimeout:      opts.WriteTimeout,
		IdleTimeout:       opts.IdleTimeout,
		ErrorLog:          slog.NewLogLogger(srv.logger.Handler(), slog.LevelWarn),
	}
	srv.ready.Store(true)
	served := make(chan error, 1)
	go func() { served <- hs.Serve(l) }()

	select {
	case err := <-served:
		// The listener died underneath us; nothing to drain.
		srv.ready.Store(false)
		return err
	case <-ctx.Done():
	}

	srv.ready.Store(false)
	srv.logger.Info("draining", "timeout", opts.DrainTimeout)
	// The serve ctx is already done here; WithoutCancel keeps its values
	// while letting the drain outlive the cancellation.
	drainCtx := context.WithoutCancel(ctx)
	if opts.DrainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, opts.DrainTimeout)
		defer cancel()
	}
	err := hs.Shutdown(drainCtx)
	if err != nil {
		// Drain deadline passed with requests still running: cut them.
		srv.logger.Warn("drain timed out, closing remaining connections", "error", err)
		hs.Close()
	}
	if serveErr := <-served; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return err
}
