package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"stmaker/internal/metrics"
)

// Metric names recorded by the HTTP middleware into the server's
// registry. docs/OBSERVABILITY.md documents each; keep the two in sync.
const (
	// MetricHTTPRequests counts every request received.
	MetricHTTPRequests = "http_requests_total"
	// MetricHTTPInFlight is the number of requests currently being
	// handled (a gauge: incremented on entry, decremented on exit).
	MetricHTTPInFlight = "http_requests_in_flight"
	// MetricHTTPLatency is the request latency histogram across all
	// routes, in seconds.
	MetricHTTPLatency = "http_request_seconds"
	// MetricHTTPResponses1xx..5xx count responses by status class. A
	// status outside 100–599 is attributed to the 5xx counter: the server
	// never emits one, so it can only mean a handler bug.
	MetricHTTPResponses1xx = "http_responses_1xx_total"
	MetricHTTPResponses2xx = "http_responses_2xx_total"
	MetricHTTPResponses3xx = "http_responses_3xx_total"
	MetricHTTPResponses4xx = "http_responses_4xx_total"
	MetricHTTPResponses5xx = "http_responses_5xx_total"
	// MetricHTTPPanics counts handler panics recovered into 500s; any
	// non-zero value is a bug worth paging on, but the process survives.
	MetricHTTPPanics = "panics_recovered_total"
	// MetricHTTPShed counts requests rejected with 503 because the
	// in-flight limit (Options.MaxInFlight) was reached.
	MetricHTTPShed = "http_requests_shed_total"
)

// statusRecorder wraps a ResponseWriter to capture the status code and
// response size for metrics and the request log. A handler that never
// calls WriteHeader implicitly sends 200.
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wroteHeader = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true // implicit 200 on first write
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// observe wraps the mux with the serving-path middleware: it counts the
// request, tracks in-flight load, times the handler, bumps the
// status-class counter and emits one structured log line per request.
func (srv *Server) observe(next http.Handler) http.Handler {
	requests := srv.mx.Counter(MetricHTTPRequests)
	inflight := srv.mx.Counter(MetricHTTPInFlight) //nolint:stmaker/metricnames -- in-flight is a gauge (Inc on entry, Add(-1) on exit), so the _total counter suffix does not apply
	latency := srv.mx.Histogram(MetricHTTPLatency)
	// Resolving the class counters once keeps the hot path free of map
	// lookups and keeps every metric name a compile-time constant.
	byClass := [...]interface{ Inc() }{
		1: srv.mx.Counter(MetricHTTPResponses1xx),
		2: srv.mx.Counter(MetricHTTPResponses2xx),
		3: srv.mx.Counter(MetricHTTPResponses3xx),
		4: srv.mx.Counter(MetricHTTPResponses4xx),
		5: srv.mx.Counter(MetricHTTPResponses5xx),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		requests.Inc()
		inflight.Inc()
		defer inflight.Add(-1)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)

		elapsed := time.Since(t0)
		latency.Observe(elapsed.Seconds())
		class := rec.status / 100
		if class < 1 || class > 5 {
			class = 5 // out-of-range statuses can only be handler bugs
		}
		byClass[class].Inc()
		srv.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int("bytes", rec.bytes),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// recoverPanics converts a handler panic into a 500 so one poisoned
// request — a trajectory that trips a library panic deep in the
// pipeline — cannot take the process down with it. The panic value and
// stack go to the log, MetricHTTPPanics counts the event, and the
// connection gets a JSON 500 unless the handler had already started
// writing. http.ErrAbortHandler is re-raised: it is net/http's own
// abort-this-connection protocol, not a bug.
func (srv *Server) recoverPanics(next http.Handler) http.Handler {
	panics := srv.mx.Counter(MetricHTTPPanics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			panics.Inc()
			srv.logger.Error("panic recovered",
				"panic", fmt.Sprint(p),
				"method", r.Method,
				"path", r.URL.Path,
				"stack", string(debug.Stack()),
			)
			// Best-effort 500: once the handler has written a header the
			// wire is already committed, so only the log records it.
			if rec, ok := w.(*statusRecorder); !ok || !rec.wroteHeader {
				srv.writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// infrastructurePath reports whether the route must stay reachable even
// under load shedding: probes, scrapes, profiling and the operator's
// admin endpoints never compete with summarization for the in-flight
// budget — an overloaded instance must still accept a reload that might
// fix it.
func infrastructurePath(p string) bool {
	return p == "/healthz" || p == "/readyz" || p == "/metrics" ||
		strings.HasPrefix(p, "/debug/pprof/") || strings.HasPrefix(p, "/admin/")
}

// limit is the semaphore-based load shedder: past Options.MaxInFlight
// concurrently-running requests, new work is rejected immediately with
// 503 + Retry-After rather than queued — queueing under overload only
// converts load into latency and memory.
func (srv *Server) limit(next http.Handler) http.Handler {
	if srv.limiter == nil {
		return next
	}
	shed := srv.mx.Counter(MetricHTTPShed)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if infrastructurePath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case srv.limiter <- struct{}{}:
			defer func() { <-srv.limiter }()
			next.ServeHTTP(w, r)
		default:
			shed.Inc()
			w.Header().Set("Retry-After", "1")
			srv.writeError(w, http.StatusServiceUnavailable, "server at capacity, retry later")
		}
	})
}

// handleMetrics serves the JSON snapshot of every registered metric. In
// single-region mode the Summarizer's stage histograms and the
// middleware's request metrics share one registry, so the snapshot is
// flat — the wire shape older dashboards scrape. In multi-region mode
// the top-level counters/histograms carry the fleet-wide series
// (request traffic, regions_loaded, ...) and a "regions" map adds each
// region's own snapshot — its pipeline stages, model_version, load and
// eviction counters — under its region key.
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	top := srv.mx.Snapshot()
	if !srv.reg.Multi() {
		srv.writeJSON(w, top)
		return
	}
	srv.writeJSON(w, multiMetricsResponse{
		Counters:   top.Counters,
		Histograms: top.Histograms,
		Regions:    srv.reg.RegionSnapshots(),
	})
}

// multiMetricsResponse is the GET /metrics shape in multi-region mode:
// the flat single-region fields plus the per-region snapshots.
type multiMetricsResponse struct {
	Counters   map[string]int64                     `json:"counters"`
	Histograms map[string]metrics.HistogramSnapshot `json:"histograms"`
	Regions    map[string]metrics.Snapshot          `json:"regions"`
}
