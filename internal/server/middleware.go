package server

import (
	"log/slog"
	"net/http"
	"time"
)

// Metric names recorded by the HTTP middleware into the server's
// registry. docs/OBSERVABILITY.md documents each; keep the two in sync.
const (
	// MetricHTTPRequests counts every request received.
	MetricHTTPRequests = "http_requests_total"
	// MetricHTTPInFlight is the number of requests currently being
	// handled (a gauge: incremented on entry, decremented on exit).
	MetricHTTPInFlight = "http_requests_in_flight"
	// MetricHTTPLatency is the request latency histogram across all
	// routes, in seconds.
	MetricHTTPLatency = "http_request_seconds"
	// MetricHTTPResponsesPrefix prefixes the per-status-class response
	// counters: http_responses_2xx_total, _4xx_, _5xx_, ...
	MetricHTTPResponsesPrefix = "http_responses_"
)

// statusRecorder wraps a ResponseWriter to capture the status code and
// response size for metrics and the request log. A handler that never
// calls WriteHeader implicitly sends 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// statusClassCounter maps a status code to its class counter name without
// allocating for the common classes.
func statusClassCounter(status int) string {
	switch status / 100 {
	case 2:
		return MetricHTTPResponsesPrefix + "2xx_total"
	case 3:
		return MetricHTTPResponsesPrefix + "3xx_total"
	case 4:
		return MetricHTTPResponsesPrefix + "4xx_total"
	default:
		return MetricHTTPResponsesPrefix + "5xx_total"
	}
}

// observe wraps the mux with the serving-path middleware: it counts the
// request, tracks in-flight load, times the handler, bumps the
// status-class counter and emits one structured log line per request.
func (srv *Server) observe(next http.Handler) http.Handler {
	requests := srv.mx.Counter(MetricHTTPRequests)
	inflight := srv.mx.Counter(MetricHTTPInFlight)
	latency := srv.mx.Histogram(MetricHTTPLatency)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		requests.Inc()
		inflight.Inc()
		defer inflight.Add(-1)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)

		elapsed := time.Since(t0)
		latency.Observe(elapsed.Seconds())
		srv.mx.Counter(statusClassCounter(rec.status)).Inc()
		srv.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int("bytes", rec.bytes),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// handleMetrics serves the JSON snapshot of every registered metric —
// the Summarizer's stage histograms plus the middleware's own request
// metrics, since both live in the same registry.
func (srv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	srv.writeJSON(w, srv.mx.Snapshot())
}
