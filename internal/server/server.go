// Package server exposes a trained Summarizer over HTTP, mirroring the
// online STMaker demo system (Su et al., VLDB 2014): POST a raw trajectory,
// get its summary back. It backs cmd/stmakerd.
//
// Beyond the summarization endpoint the server carries the observability
// and resilience surface of the serving path: every request passes
// through middleware that records count/latency/status metrics, emits
// one structured log line (log/slog), recovers panics into 500s, and
// sheds load past the in-flight limit with 503s; request bodies are
// capped (413), expensive handlers run under a per-request deadline
// (504), GET /metrics serves a JSON snapshot of the shared metrics
// registry, GET /readyz reflects drain state for load balancers, and the
// Go pprof profiling handlers can be mounted opt-in under /debug/pprof/.
// The Serve helper runs the whole thing under an http.Server with
// connection timeouts and graceful shutdown. docs/API.md documents the
// wire format; docs/OBSERVABILITY.md documents every metric name;
// docs/ROBUSTNESS.md documents the failure-mode contract.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stmaker"
	"stmaker/internal/ingest"
	"stmaker/internal/metrics"
	"stmaker/internal/registry"
	"stmaker/internal/traj"
)

// DefaultMaxBodyBytes caps POST /summarize request bodies: 4 MiB holds
// a trajectory of roughly 40k verbose-JSON samples — days of driving at
// typical sampling rates — while keeping a hostile client from staging
// gigabytes in memory.
const DefaultMaxBodyBytes int64 = 4 << 20

// Server handles summarization requests against a region registry — a
// single wrapped Summarizer in the classic single-region mode, or N
// lazily-loaded regional models in multi-region (-model-dir) mode. It
// is safe for concurrent use.
type Server struct {
	// s is the wrapped summarizer in single-region mode; nil in
	// multi-region mode, where every summarizer comes from reg.
	s   *stmaker.Summarizer
	reg *registry.Registry

	mux     *http.ServeMux
	handler http.Handler
	mx      *metrics.Registry
	logger  *slog.Logger
	opts    Options

	// ready gates GET /readyz: true while serving, flipped false when a
	// drain begins so load balancers stop routing here. Readiness also
	// requires a published model — see handleReady.
	ready atomic.Bool
	// reloading makes model reloads single-flight (see TriggerReload).
	reloading atomic.Bool
	// ingest is the streaming-ingestion service (nil unless
	// Options.Ingest was set).
	ingest *ingest.Service
	// limiter is the in-flight semaphore for non-infrastructure routes;
	// nil means unlimited.
	limiter chan struct{}
}

// Options configures the optional parts of the server.
type Options struct {
	// Logger receives one structured line per request. Nil uses
	// slog.Default(); use DiscardLogger() to silence request logging.
	Logger *slog.Logger
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/. Off by default: profiling endpoints expose stack
	// and heap internals and cost CPU while sampling, so they are
	// opt-in (the -pprof flag of cmd/stmakerd).
	EnablePprof bool
	// MaxBodyBytes caps the request body of POST /summarize; an
	// oversized body gets 413. 0 uses DefaultMaxBodyBytes; negative
	// disables the cap. POST /summarize/batch carries many trajectories
	// in one body, so its cap is this value × 16 (see batch.go).
	MaxBodyBytes int64
	// BatchWorkers bounds the worker pool a single POST /summarize/batch
	// request fans its items across. The batch occupies one in-flight
	// slot (MaxInFlight) regardless of its worker count. 0 uses
	// GOMAXPROCS — with one batch in flight that keeps every core busy.
	BatchWorkers int
	// MaxBatchItems caps the items of one batch request; a larger batch
	// is rejected whole with 413. 0 uses DefaultMaxBatchItems; negative
	// disables the cap.
	MaxBatchItems int
	// MaxItemSamples caps one batch item's trajectory samples; an
	// oversized item fails alone (inline per-item error) without
	// failing the batch — the batch-shaped analogue of the single
	// endpoint's body cap. 0 uses DefaultMaxItemSamples; negative
	// disables the cap.
	MaxItemSamples int
	// MaxInFlight bounds concurrently-handled requests on all routes
	// except the infrastructure endpoints (/healthz, /readyz, /metrics,
	// /debug/pprof/). Requests beyond the limit are shed immediately
	// with 503 + Retry-After. 0 means unlimited.
	MaxInFlight int
	// RequestTimeout bounds each summarization: the pipeline checks the
	// deadline between stages and the request fails with 504 when it
	// expires. 0 means no deadline.
	RequestTimeout time.Duration
	// Retrain, when non-nil, rebuilds the summarizer's model from its
	// training source (cmd/stmakerd passes a closure over its corpus,
	// retraining and optionally re-saving the model file). It runs in a
	// background goroutine via TriggerReload — on SIGHUP or
	// POST /admin/reload — and must publish the new model itself (Train
	// does); an error leaves the serving model untouched.
	Retrain func() error
	// EnableAdmin mounts the mutating operational endpoints (currently
	// POST /admin/reload). Off by default: model reloads cost a full
	// retrain, so the endpoint is opt-in (the -admin flag of
	// cmd/stmakerd) and meant to stay behind the operator's network
	// boundary.
	EnableAdmin bool
	// Ingest, when non-nil, mounts POST /ingest: a crash-safe NDJSON
	// streaming endpoint that WAL-appends GPS fixes before acknowledging
	// and folds closed trips into the region's knowledge (see
	// internal/ingest and the -ingest-dir flag of cmd/stmakerd). The
	// server builds the ingest.Service against its own region registry;
	// regions with ingest state on disk are recovered during New. Use
	// Server.Ingest to reach the service (compaction loop, shutdown).
	Ingest *ingest.ServiceOptions
}

func (o Options) withDefaults() Options {
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return o
}

// DiscardLogger returns a logger that drops every record — for tests and
// embedders that do their own request logging.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// New builds a server with default options.
func New(s *stmaker.Summarizer) (*Server, error) {
	return NewWithOptions(s, Options{})
}

// NewWithOptions builds a server. The summarizer's metrics registry is
// shared with the HTTP middleware so one GET /metrics snapshot covers
// both pipeline stages and request traffic. The summarizer need not be
// trained yet: until a model is published (Train or LoadModel),
// GET /readyz answers 503 so load balancers hold traffic, and a
// summarization request that does slip through gets a 503 rather than a
// wrong answer.
func NewWithOptions(s *stmaker.Summarizer, opts Options) (*Server, error) {
	if s == nil {
		return nil, fmt.Errorf("server: summarizer is required")
	}
	opts = opts.withDefaults()
	// The summarizer is wrapped as a pinned single-cell registry under
	// the implicit default region, so the serving path is the same in
	// both modes and a bare -model deployment stays fully supported.
	reg := registry.NewStatic(registry.DefaultRegionName, s, registry.Options{
		Logger:  opts.Logger,
		Metrics: s.Metrics(),
	})
	return newServer(s, reg, opts)
}

// NewMultiRegion builds a server over a multi-region registry (see
// internal/registry and docs/MULTI_REGION.md): requests route to a
// region by explicit key or by the spatial index over region bounding
// boxes, models load lazily, and POST /admin/reload takes a ?region=
// parameter. Options.Retrain is ignored in this mode — reloads re-read
// each region's model file instead of retraining.
func NewMultiRegion(reg *registry.Registry, opts Options) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("server: registry is required")
	}
	opts = opts.withDefaults()
	return newServer(nil, reg, opts)
}

func newServer(s *stmaker.Summarizer, reg *registry.Registry, opts Options) (*Server, error) {
	srv := &Server{
		s:      s,
		reg:    reg,
		mux:    http.NewServeMux(),
		mx:     reg.Metrics(),
		logger: opts.Logger,
		opts:   opts,
	}
	if opts.MaxInFlight > 0 {
		srv.limiter = make(chan struct{}, opts.MaxInFlight)
	}
	srv.ready.Store(true)
	srv.mux.HandleFunc("/summarize", srv.handleSummarize)
	srv.mux.HandleFunc("/summarize/batch", srv.handleBatch)
	if opts.Ingest != nil {
		svc, err := ingest.NewService(reg, *opts.Ingest)
		if err != nil {
			return nil, fmt.Errorf("server: ingest: %w", err)
		}
		srv.ingest = svc
		srv.mux.HandleFunc("/ingest", srv.handleIngest)
	}
	srv.mux.HandleFunc("/healthz", srv.handleHealth)
	srv.mux.HandleFunc("/readyz", srv.handleReady)
	srv.mux.HandleFunc("/metrics", srv.handleMetrics)
	if opts.EnableAdmin {
		srv.mux.HandleFunc("/admin/reload", srv.handleReload)
	}
	if opts.EnablePprof {
		srv.mux.HandleFunc("/debug/pprof/", pprof.Index)
		srv.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		srv.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		srv.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		srv.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Middleware chain, outermost first: observe sees every response
	// (including shed 503s and recovered 500s), recover catches panics
	// from the limiter inward, the limiter sheds before any work starts.
	srv.handler = srv.observe(srv.recoverPanics(srv.limit(srv.mux)))
	return srv, nil
}

// Ingest exposes the streaming-ingestion service, nil unless
// Options.Ingest was set. cmd/stmakerd starts its compaction loop
// (Service.Run) alongside the listener and closes it after drain.
func (srv *Server) Ingest() *ingest.Service { return srv.ingest }

// Handle mounts an additional handler behind the server's full middleware
// chain (metrics, logging, panic recovery, load shedding). It must be
// called before the server starts receiving traffic; embedders use it to
// co-host auxiliary routes with the summarization endpoint.
func (srv *Server) Handle(pattern string, h http.Handler) {
	srv.mux.Handle(pattern, h)
}

// SetReady flips the /readyz state: false makes the endpoint return 503
// so load balancers drain this instance; Serve does this automatically
// on shutdown.
func (srv *Server) SetReady(ready bool) { srv.ready.Store(ready) }

// Metrics exposes the registry backing GET /metrics.
func (srv *Server) Metrics() *metrics.Registry { return srv.mx }

// ServeHTTP implements http.Handler. Every request passes through the
// observation middleware.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.handler.ServeHTTP(w, r)
}

// SummarizeRequest is the POST /summarize body.
type SummarizeRequest struct {
	// Trajectory is the raw trajectory to summarize.
	Trajectory *traj.Raw `json:"trajectory"`
	// K is the partition count; 0 (default) uses the optimal partition.
	// It may also be supplied as the ?k= query parameter.
	K int `json:"k,omitempty"`
	// Region selects which regional model serves the request in
	// multi-region mode. It may also be supplied as the ?region= query
	// parameter (which wins over the body). Empty falls back to the sole
	// region when only one exists, then to spatial routing by the
	// trajectory's first sample against region bounding boxes.
	Region string `json:"region,omitempty"`
}

// SummarizeResponse is the reply.
type SummarizeResponse struct {
	ID   string `json:"id"`
	Text string `json:"text"`
	// Region echoes which regional model produced the summary.
	Region string         `json:"region,omitempty"`
	Parts  []PartResponse `json:"parts"`
	Error  string         `json:"error,omitempty"`
}

// PartResponse is one partition of the summary.
type PartResponse struct {
	Source   string         `json:"source"`
	Dest     string         `json:"dest"`
	RoadType string         `json:"roadType,omitempty"`
	Text     string         `json:"text"`
	Features []FeatureEntry `json:"features,omitempty"`
}

// FeatureEntry is one selected feature.
type FeatureEntry struct {
	Key   string  `json:"key"`
	Rate  float64 `json:"rate"`
	Value float64 `json:"value"`
}

func (srv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReady is the readiness probe: 200 while serving with at least
// one region holding a published model, 503 before the first model
// lands (a warm-starting instance that hasn't finished
// Train/LoadModel, or a multi-region instance that hasn't loaded any
// region yet) and 503 again once a drain has begun (or SetReady(false)
// was called), so load balancers only route work here when it can
// actually be answered.
// With ?verbose=1 the plain-text probe becomes a JSON report carrying
// every region's state (loaded/cold/failed) and serving model version,
// so operators can see which city is degraded; the status code keeps
// the same contract either way. docs/API.md documents the shape.
func (srv *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	draining := !srv.ready.Load()
	ready := !draining && srv.reg.ReadyCount() > 0
	if r.URL.Query().Get("verbose") != "" {
		code := http.StatusOK
		if !ready {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		body := ReadyResponse{Ready: ready, Draining: draining, Regions: srv.reg.Status()}
		if err := json.NewEncoder(w).Encode(body); err != nil {
			srv.logger.Error("readyz encode failed", "error", err)
		}
		return
	}
	switch {
	case draining:
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !ready:
		http.Error(w, "no model published yet", http.StatusServiceUnavailable)
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}
}

// ReadyResponse is the GET /readyz?verbose=1 body.
type ReadyResponse struct {
	Ready    bool                    `json:"ready"`
	Draining bool                    `json:"draining,omitempty"`
	Regions  []registry.RegionStatus `json:"regions"`
}

// statusForError maps a pipeline or region-resolution error to its HTTP
// status: deadline and cancellation are a 504 (the server gave up, not
// the client's data), input-shaped errors (validation, sanitizer
// rejection, calibration) are a 422, a request arriving before any
// model is published is a 503 (the readiness probe already says so;
// retrying elsewhere will succeed), and everything else — partition
// failures — is a 500, because the client's request was fine.
//
// Region-lookup errors extend the map: a region key that does not exist
// is a 404, as is a known region whose model file is missing (the
// client asked for something this deployment does not have — 404s are
// cacheable and do not trip 5xx alerting). A model file that exists but
// is corrupt or mismatched is a 500 (the deployment is broken, not the
// request), and any other load failure — an unreadable world file, say
// — is a 503, since a retry after an operator fix will succeed.
func statusForError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case stmaker.IsInputError(err):
		return http.StatusUnprocessableEntity
	case errors.Is(err, stmaker.ErrNotTrained):
		return http.StatusServiceUnavailable
	case errors.Is(err, registry.ErrUnknownRegion), errors.Is(err, stmaker.ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, stmaker.ErrInvalidModel), errors.Is(err, stmaker.ErrModelMismatch):
		return http.StatusInternalServerError
	case errors.Is(err, registry.ErrRegionUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (srv *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if srv.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, srv.opts.MaxBodyBytes)
	}
	var req SummarizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			srv.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		srv.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if qk := r.URL.Query().Get("k"); qk != "" {
		parsed, err := strconv.Atoi(qk)
		if err != nil || parsed < 0 {
			srv.writeError(w, http.StatusBadRequest, "invalid k")
			return
		}
		req.K = parsed
	}
	resp, code := srv.summarizeOne(r.Context(), &req, r.URL.Query().Get("region"))
	if code != http.StatusOK {
		srv.writeError(w, code, resp.Error)
		return
	}
	srv.writeJSON(w, resp)
}

// summarizeOne resolves the region and runs the pipeline for one
// summarize request. It is the shared core of the single and batch
// endpoints, so a batch item's response is byte-identical to what the
// single endpoint would produce for the same trajectory. queryRegion is
// the ?region= override (always empty for batch items). The returned
// status is http.StatusOK on success; on failure resp carries only the
// error message.
func (srv *Server) summarizeOne(ctx context.Context, req *SummarizeRequest, queryRegion string) (SummarizeResponse, int) {
	if req.Trajectory == nil {
		return SummarizeResponse{Error: "missing trajectory"}, http.StatusBadRequest
	}
	region, s, err := srv.resolveRegion(req, queryRegion)
	if err != nil {
		return SummarizeResponse{Error: err.Error()}, statusForError(err)
	}
	if srv.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, srv.opts.RequestTimeout)
		defer cancel()
	}
	sum, err := s.SummarizeKContext(ctx, req.Trajectory, req.K)
	if err != nil {
		return SummarizeResponse{Error: err.Error()}, statusForError(err)
	}
	resp := SummarizeResponse{ID: sum.TrajectoryID, Text: sum.Text}
	if srv.reg.Multi() {
		resp.Region = region
	}
	resp.Parts = make([]PartResponse, 0, len(sum.Parts))
	for _, p := range sum.Parts {
		pr := PartResponse{
			Source: p.SourceName, Dest: p.DestName,
			RoadType: p.RoadType, Text: p.Text,
		}
		if len(p.Features) > 0 {
			pr.Features = make([]FeatureEntry, 0, len(p.Features))
		}
		for _, f := range p.Features {
			pr.Features = append(pr.Features, FeatureEntry{Key: f.Key, Rate: f.Rate, Value: f.Value})
		}
		resp.Parts = append(resp.Parts, pr)
	}
	return resp, http.StatusOK
}

// resolveRegion picks the regional summarizer serving a request.
// Precedence: the ?region= query parameter, then the body's region
// field, then the sole region when the registry holds exactly one
// (single-region deployments never need a key), then spatial routing of
// the trajectory's first sample against region bounding boxes. A
// request that resolves to no region fails with ErrUnknownRegion (404):
// from the client's point of view "region key that does not exist" and
// "location no region covers" are the same condition — this deployment
// does not serve it.
func (srv *Server) resolveRegion(req *SummarizeRequest, queryRegion string) (string, *stmaker.Summarizer, error) {
	region := req.Region
	if queryRegion != "" {
		region = queryRegion
	}
	if region == "" {
		region = srv.reg.DefaultRegion()
	}
	if region == "" {
		if len(req.Trajectory.Samples) == 0 {
			return "", nil, fmt.Errorf("%w: no region key given and trajectory has no samples to route by",
				registry.ErrUnknownRegion)
		}
		p := req.Trajectory.Samples[0].Pt
		name, ok := srv.reg.Resolve(p)
		if !ok {
			return "", nil, fmt.Errorf("%w: no region key given and no region covers %v",
				registry.ErrUnknownRegion, p)
		}
		region = name
	}
	s, err := srv.reg.Summarizer(region)
	return region, s, err
}

// MetricHTTPEncodeErrors counts response bodies that failed to encode
// or write. By then the status header is out, so the client cannot be
// told; the usual cause is the client hanging up mid-response.
// docs/OBSERVABILITY.md catalogues it.
const MetricHTTPEncodeErrors = "http_encode_errors_total"

// encodeFailed records a response encode/write failure: logged and
// counted, never swallowed. The wire is unrecoverable at this point —
// the header is already out — so observability is all that is left.
func (srv *Server) encodeFailed(err error) {
	srv.logger.Error("response encode failed", "error", err)
	srv.mx.Counter(MetricHTTPEncodeErrors).Inc()
}

// encodeBuf is a pooled response-encoding buffer: one bytes.Buffer with
// a json.Encoder permanently bound to it, so the hot path reuses both
// the encoder machinery and the output bytes instead of allocating a
// fresh encoder plus a growing buffer per response.
type encodeBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	eb := &encodeBuf{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

// encode resets the buffer and encodes v into it (with the encoder's
// trailing newline).
func (eb *encodeBuf) encode(v any) error {
	eb.buf.Reset()
	return eb.enc.Encode(v)
}

// writeJSON encodes v as the response body. Encoding lands in a pooled
// buffer first, so a marshal failure (a handler-bug response shape) is
// caught before any byte reaches the wire and the client gets a clean
// 500 instead of a truncated 200.
func (srv *Server) writeJSON(w http.ResponseWriter, v any) {
	eb := encPool.Get().(*encodeBuf)
	defer encPool.Put(eb)
	if err := eb.encode(v); err != nil {
		srv.encodeFailed(err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(eb.buf.Len()))
	if _, err := w.Write(eb.buf.Bytes()); err != nil {
		srv.encodeFailed(err)
	}
}

func (srv *Server) writeError(w http.ResponseWriter, code int, msg string) {
	eb := encPool.Get().(*encodeBuf)
	defer encPool.Put(eb)
	if err := eb.encode(SummarizeResponse{Error: msg}); err != nil {
		srv.encodeFailed(err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(eb.buf.Len()))
	w.WriteHeader(code)
	if _, err := w.Write(eb.buf.Bytes()); err != nil {
		srv.encodeFailed(err)
	}
}
