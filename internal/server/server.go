// Package server exposes a trained Summarizer over HTTP, mirroring the
// online STMaker demo system (Su et al., VLDB 2014): POST a raw trajectory,
// get its summary back. It backs cmd/stmakerd.
//
// Beyond the summarization endpoint the server carries the observability
// surface of the serving path: every request passes through middleware
// that records count/latency/status metrics and emits one structured log
// line (log/slog), GET /metrics serves a JSON snapshot of the shared
// metrics registry (the Summarizer's per-stage pipeline timers plus the
// HTTP metrics), and the Go pprof profiling handlers can be mounted
// opt-in under /debug/pprof/. docs/API.md documents the wire format;
// docs/OBSERVABILITY.md documents every metric name.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"

	"stmaker"
	"stmaker/internal/metrics"
	"stmaker/internal/traj"
)

// Server handles summarization requests against one trained Summarizer.
// It is safe for concurrent use.
type Server struct {
	s       *stmaker.Summarizer
	mux     *http.ServeMux
	handler http.Handler
	mx      *metrics.Registry
	logger  *slog.Logger
}

// Options configures the optional parts of the server.
type Options struct {
	// Logger receives one structured line per request. Nil uses
	// slog.Default(); use DiscardLogger() to silence request logging.
	Logger *slog.Logger
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/. Off by default: profiling endpoints expose stack
	// and heap internals and cost CPU while sampling, so they are
	// opt-in (the -pprof flag of cmd/stmakerd).
	EnablePprof bool
}

// DiscardLogger returns a logger that drops every record — for tests and
// embedders that do their own request logging.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// New builds a server with default options. The summarizer must already
// be trained.
func New(s *stmaker.Summarizer) (*Server, error) {
	return NewWithOptions(s, Options{})
}

// NewWithOptions builds a server. The summarizer must already be trained;
// its metrics registry is shared with the HTTP middleware so one
// GET /metrics snapshot covers both pipeline stages and request traffic.
func NewWithOptions(s *stmaker.Summarizer, opts Options) (*Server, error) {
	if s == nil || !s.Trained() {
		return nil, fmt.Errorf("server: summarizer must be trained")
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	srv := &Server{
		s:      s,
		mux:    http.NewServeMux(),
		mx:     s.Metrics(),
		logger: logger,
	}
	srv.mux.HandleFunc("/summarize", srv.handleSummarize)
	srv.mux.HandleFunc("/healthz", srv.handleHealth)
	srv.mux.HandleFunc("/metrics", srv.handleMetrics)
	if opts.EnablePprof {
		srv.mux.HandleFunc("/debug/pprof/", pprof.Index)
		srv.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		srv.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		srv.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		srv.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv.handler = srv.observe(srv.mux)
	return srv, nil
}

// Metrics exposes the registry backing GET /metrics.
func (srv *Server) Metrics() *metrics.Registry { return srv.mx }

// ServeHTTP implements http.Handler. Every request passes through the
// observation middleware.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.handler.ServeHTTP(w, r)
}

// SummarizeRequest is the POST /summarize body.
type SummarizeRequest struct {
	// Trajectory is the raw trajectory to summarize.
	Trajectory *traj.Raw `json:"trajectory"`
	// K is the partition count; 0 (default) uses the optimal partition.
	// It may also be supplied as the ?k= query parameter.
	K int `json:"k,omitempty"`
}

// SummarizeResponse is the reply.
type SummarizeResponse struct {
	ID    string         `json:"id"`
	Text  string         `json:"text"`
	Parts []PartResponse `json:"parts"`
	Error string         `json:"error,omitempty"`
}

// PartResponse is one partition of the summary.
type PartResponse struct {
	Source   string         `json:"source"`
	Dest     string         `json:"dest"`
	RoadType string         `json:"roadType,omitempty"`
	Text     string         `json:"text"`
	Features []FeatureEntry `json:"features,omitempty"`
}

// FeatureEntry is one selected feature.
type FeatureEntry struct {
	Key   string  `json:"key"`
	Rate  float64 `json:"rate"`
	Value float64 `json:"value"`
}

func (srv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (srv *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req SummarizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		srv.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Trajectory == nil {
		srv.writeError(w, http.StatusBadRequest, "missing trajectory")
		return
	}
	k := req.K
	if qk := r.URL.Query().Get("k"); qk != "" {
		parsed, err := strconv.Atoi(qk)
		if err != nil || parsed < 0 {
			srv.writeError(w, http.StatusBadRequest, "invalid k")
			return
		}
		k = parsed
	}
	sum, err := srv.s.SummarizeK(req.Trajectory, k)
	if err != nil {
		srv.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := SummarizeResponse{ID: sum.TrajectoryID, Text: sum.Text}
	for _, p := range sum.Parts {
		pr := PartResponse{
			Source: p.SourceName, Dest: p.DestName,
			RoadType: p.RoadType, Text: p.Text,
		}
		for _, f := range p.Features {
			pr.Features = append(pr.Features, FeatureEntry{Key: f.Key, Rate: f.Rate, Value: f.Value})
		}
		resp.Parts = append(resp.Parts, pr)
	}
	srv.writeJSON(w, resp)
}

// writeJSON encodes v as the response body. An encode failure after the
// header is out is unrecoverable wire-wise (typically the client hung
// up), but it must not vanish silently — it is logged.
func (srv *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		srv.logger.Error("response encode failed", "error", err)
	}
}

func (srv *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(SummarizeResponse{Error: msg}); err != nil {
		srv.logger.Error("error-response encode failed", "error", err)
	}
}
