// Package server exposes a trained Summarizer over HTTP, mirroring the
// online STMaker demo system (Su et al., VLDB 2014): POST a raw trajectory,
// get its summary back. It backs cmd/stmakerd.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"stmaker"
	"stmaker/internal/traj"
)

// Server handles summarization requests against one trained Summarizer.
// It is safe for concurrent use.
type Server struct {
	s   *stmaker.Summarizer
	mux *http.ServeMux
}

// New builds a server. The summarizer must already be trained.
func New(s *stmaker.Summarizer) (*Server, error) {
	if s == nil || !s.Trained() {
		return nil, fmt.Errorf("server: summarizer must be trained")
	}
	srv := &Server{s: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("/summarize", srv.handleSummarize)
	srv.mux.HandleFunc("/healthz", srv.handleHealth)
	return srv, nil
}

// ServeHTTP implements http.Handler.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.mux.ServeHTTP(w, r)
}

// SummarizeRequest is the POST /summarize body.
type SummarizeRequest struct {
	// Trajectory is the raw trajectory to summarize.
	Trajectory *traj.Raw `json:"trajectory"`
	// K is the partition count; 0 (default) uses the optimal partition.
	// It may also be supplied as the ?k= query parameter.
	K int `json:"k,omitempty"`
}

// SummarizeResponse is the reply.
type SummarizeResponse struct {
	ID    string         `json:"id"`
	Text  string         `json:"text"`
	Parts []PartResponse `json:"parts"`
	Error string         `json:"error,omitempty"`
}

// PartResponse is one partition of the summary.
type PartResponse struct {
	Source   string         `json:"source"`
	Dest     string         `json:"dest"`
	RoadType string         `json:"roadType,omitempty"`
	Text     string         `json:"text"`
	Features []FeatureEntry `json:"features,omitempty"`
}

// FeatureEntry is one selected feature.
type FeatureEntry struct {
	Key   string  `json:"key"`
	Rate  float64 `json:"rate"`
	Value float64 `json:"value"`
}

func (srv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (srv *Server) handleSummarize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req SummarizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.Trajectory == nil {
		writeError(w, http.StatusBadRequest, "missing trajectory")
		return
	}
	k := req.K
	if qk := r.URL.Query().Get("k"); qk != "" {
		parsed, err := strconv.Atoi(qk)
		if err != nil || parsed < 0 {
			writeError(w, http.StatusBadRequest, "invalid k")
			return
		}
		k = parsed
	}
	sum, err := srv.s.SummarizeK(req.Trajectory, k)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := SummarizeResponse{ID: sum.TrajectoryID, Text: sum.Text}
	for _, p := range sum.Parts {
		pr := PartResponse{
			Source: p.SourceName, Dest: p.DestName,
			RoadType: p.RoadType, Text: p.Text,
		}
		for _, f := range p.Features {
			pr.Features = append(pr.Features, FeatureEntry{Key: f.Key, Rate: f.Rate, Value: f.Value})
		}
		resp.Parts = append(resp.Parts, pr)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// The header is already out; nothing recoverable remains.
		return
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(SummarizeResponse{Error: msg})
}
