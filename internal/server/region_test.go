package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"stmaker"
	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/registry"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
	"stmaker/internal/worldio"
)

// testRegion is one generated region of the multi-region fixture: its
// key, a trip inside it and the training-time summary text for that
// trip.
type testRegion struct {
	name        string
	trip        *traj.Raw
	wantSummary string
}

var (
	multiOnce    sync.Once
	multiDir     string
	multiRegions []testRegion
	multiErr     error
)

// writeTestRegion trains a small city at origin and lays it down as
// dir/<name>/ with world, model and a bbox-bearing manifest.
func writeTestRegion(dir, name string, origin geo.Point, seed int64) (testRegion, error) {
	city := simulate.NewCity(simulate.CityOptions{
		Rows: 6, Cols: 6, BlockMeters: 500, Origin: origin, Seed: seed,
	})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: seed + 1})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		return testRegion{}, err
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: 80, Seed: seed + 2, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		return testRegion{}, err
	}

	sub := filepath.Join(dir, name)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return testRegion{}, err
	}
	wf, err := os.Create(filepath.Join(sub, "world.json"))
	if err != nil {
		return testRegion{}, err
	}
	if err := worldio.SaveWorld(wf, city.Graph, city.Landmarks); err != nil {
		wf.Close()
		return testRegion{}, err
	}
	if err := wf.Close(); err != nil {
		return testRegion{}, err
	}
	mf, err := os.Create(filepath.Join(sub, "model.stm"))
	if err != nil {
		return testRegion{}, err
	}
	if _, err := s.SaveModel(mf); err != nil {
		mf.Close()
		return testRegion{}, err
	}
	if err := mf.Close(); err != nil {
		return testRegion{}, err
	}
	bbox := geo.EmptyBBox()
	for _, lm := range city.Landmarks.All() {
		bbox.Extend(lm.Pt)
	}
	bbox = bbox.Buffer(2000)
	manifest := fmt.Sprintf(
		`{"region":%q,"bbox":{"minLat":%g,"minLng":%g,"maxLat":%g,"maxLng":%g}}`,
		name, bbox.MinLat, bbox.MinLng, bbox.MaxLat, bbox.MaxLng)
	if err := os.WriteFile(filepath.Join(sub, "region.json"), []byte(manifest), 0o644); err != nil {
		return testRegion{}, err
	}

	trip := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 5, Seed: seed + 3, FixedHour: 9})[0].Raw
	sum, err := s.Summarize(trip)
	if err != nil {
		return testRegion{}, err
	}
	return testRegion{name: name, trip: trip, wantSummary: sum.Text}, nil
}

// multiRegionDir builds (once per binary) a -model-dir with two
// disjoint cities and returns it. The directory lives until the test
// binary exits; MkdirTemp under the test binary's TMPDIR is cleaned by
// the harness.
func multiRegionDir(t *testing.T) (string, []testRegion) {
	t.Helper()
	multiOnce.Do(buildMultiRegionFixture)
	if multiErr != nil {
		t.Fatal(multiErr)
	}
	return multiDir, multiRegions
}

// buildMultiRegionFixture is the multiOnce body, split out so fuzz
// targets (which hold a *testing.F, not a *testing.T) can share the
// fixture.
func buildMultiRegionFixture() {
	dir, err := os.MkdirTemp("", "server-region-test-*")
	if err != nil {
		multiErr = err
		return
	}
	multiDir = dir
	bj, err := writeTestRegion(dir, "beijing", geo.Point{Lat: 39.80, Lng: 116.25}, 301)
	if err != nil {
		multiErr = err
		return
	}
	sh, err := writeTestRegion(dir, "shanghai", geo.Point{Lat: 31.10, Lng: 121.20}, 402)
	if err != nil {
		multiErr = err
		return
	}
	multiRegions = []testRegion{bj, sh}
}

// multiServer builds a fresh multi-region server over the shared
// fixture dir — fresh, because tests mutate load state.
func multiServer(t *testing.T, opts Options) (*Server, []testRegion) {
	t.Helper()
	dir, regions := multiRegionDir(t)
	if opts.Logger == nil {
		opts.Logger = DiscardLogger()
	}
	reg, err := registry.Open(dir, registry.Options{Logger: opts.Logger})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewMultiRegion(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, regions
}

// TestMultiRegionRouting is the end-to-end acceptance test: one server
// over a -model-dir of two regions answers each region's requests with
// that region's model — by query key, body key and spatial routing —
// and the two regions demonstrably produce different summaries.
func TestMultiRegionRouting(t *testing.T) {
	srv, regions := multiServer(t, Options{})

	texts := make(map[string]string)
	for _, reg := range regions {
		// Explicit key in the query string.
		rec := post(t, srv, "/summarize?region="+reg.name, SummarizeRequest{Trajectory: reg.trip})
		if rec.Code != http.StatusOK {
			t.Fatalf("region %s query-key summarize = %d: %s", reg.name, rec.Code, rec.Body.String())
		}
		var resp SummarizeResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Region != reg.name {
			t.Errorf("response region = %q, want %q", resp.Region, reg.name)
		}
		if resp.Text != reg.wantSummary {
			t.Errorf("region %s summary diverged from training-time summary:\n got %q\nwant %q",
				reg.name, resp.Text, reg.wantSummary)
		}
		texts[reg.name] = resp.Text

		// Explicit key in the body.
		rec = post(t, srv, "/summarize", SummarizeRequest{Trajectory: reg.trip, Region: reg.name})
		if rec.Code != http.StatusOK {
			t.Errorf("region %s body-key summarize = %d", reg.name, rec.Code)
		}

		// No key at all: spatial routing by the first sample.
		rec = post(t, srv, "/summarize", SummarizeRequest{Trajectory: reg.trip})
		if rec.Code != http.StatusOK {
			t.Fatalf("region %s spatial summarize = %d: %s", reg.name, rec.Code, rec.Body.String())
		}
		resp = SummarizeResponse{}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Region != reg.name {
			t.Errorf("spatial routing resolved %q, want %q", resp.Region, reg.name)
		}
	}
	if texts["beijing"] == texts["shanghai"] {
		t.Error("both regions returned the same summary — requests are not hitting per-region models")
	}
}

// TestMultiRegionStatusCodes pins the region error surface: 404 for an
// unknown key and for a known region whose model file is gone, 500 for
// a corrupt model file, 404 for an unroutable location.
func TestMultiRegionStatusCodes(t *testing.T) {
	srv, regions := multiServer(t, Options{})
	trip := regions[0].trip

	rec := post(t, srv, "/summarize?region=atlantis", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown region = %d, want 404", rec.Code)
	}

	// An unroutable location: no region key, first sample mid-ocean.
	ocean := &traj.Raw{ID: "ocean", Samples: []traj.Sample{
		{Pt: geo.Point{Lat: 0, Lng: 0}}, {Pt: geo.Point{Lat: 0.01, Lng: 0.01}},
	}}
	rec = post(t, srv, "/summarize", SummarizeRequest{Trajectory: ocean})
	if rec.Code != http.StatusNotFound {
		t.Errorf("unroutable location = %d, want 404", rec.Code)
	}

	// A known region with its model file missing → 404; corrupt → 500.
	dir, _ := multiRegionDir(t)
	broken := t.TempDir()
	for _, name := range []string{"gone", "corrupt"} {
		sub := filepath.Join(broken, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		world, err := os.ReadFile(filepath.Join(dir, regions[0].name, "world.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "world.json"), world, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(broken, "corrupt", "model.stm"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(broken, registry.Options{Logger: DiscardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	bsrv, err := NewMultiRegion(reg, Options{Logger: DiscardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	rec = post(t, bsrv, "/summarize?region=gone", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing model file = %d, want 404", rec.Code)
	}
	rec = post(t, bsrv, "/summarize?region=corrupt", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("corrupt model file = %d, want 500", rec.Code)
	}
}

// TestMultiRegionReadiness: /readyz is 503 until the first region
// loads, then 200.
func TestMultiRegionReadiness(t *testing.T) {
	srv, regions := multiServer(t, Options{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz before any region load = %d, want 503", rec.Code)
	}
	if rc := post(t, srv, "/summarize?region="+regions[0].name,
		SummarizeRequest{Trajectory: regions[0].trip}); rc.Code != http.StatusOK {
		t.Fatalf("summarize = %d", rc.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("readyz after region load = %d, want 200", rec.Code)
	}
}

// TestMultiRegionMetricsShape: GET /metrics carries the per-region
// snapshots under "regions" alongside the flat fleet-wide series.
func TestMultiRegionMetricsShape(t *testing.T) {
	srv, regions := multiServer(t, Options{})
	if rc := post(t, srv, "/summarize?region="+regions[0].name,
		SummarizeRequest{Trajectory: regions[0].trip}); rc.Code != http.StatusOK {
		t.Fatalf("summarize = %d", rc.Code)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64                      `json:"counters"`
		Regions  map[string]struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"regions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[registry.MetricRegionsDiscovered] != 2 {
		t.Errorf("regions_discovered = %d, want 2", snap.Counters[registry.MetricRegionsDiscovered])
	}
	if snap.Counters[registry.MetricRegionsLoaded] != 1 {
		t.Errorf("regions_loaded = %d, want 1", snap.Counters[registry.MetricRegionsLoaded])
	}
	loaded := snap.Regions[regions[0].name]
	if loaded.Counters[registry.MetricRegionLoads] != 1 {
		t.Errorf("region %s region_model_loads_total = %d, want 1",
			regions[0].name, loaded.Counters[registry.MetricRegionLoads])
	}
	if loaded.Counters[stmaker.MetricModelVersion] == 0 {
		t.Errorf("region %s model_version missing from per-region snapshot", regions[0].name)
	}
	if _, ok := snap.Regions[regions[1].name]; !ok {
		t.Errorf("unloaded region %s missing from regions map", regions[1].name)
	}
}

// TestRegionReloadUnderLoad is the zero-dropped-requests acceptance
// test at the HTTP layer: sustained traffic on region B while region A
// is reloaded via POST /admin/reload?region=A — every request on both
// regions succeeds throughout.
func TestRegionReloadUnderLoad(t *testing.T) {
	srv, regions := multiServer(t, Options{EnableAdmin: true})
	// Warm both regions.
	for _, reg := range regions {
		if rc := post(t, srv, "/summarize?region="+reg.name,
			SummarizeRequest{Trajectory: reg.trip}); rc.Code != http.StatusOK {
			t.Fatalf("warm-up summarize %s = %d", reg.name, rc.Code)
		}
	}

	const workers, iters = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(regions)*iters)
	for w := 0; w < workers; w++ {
		for _, reg := range regions {
			wg.Add(1)
			go func(reg testRegion) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					rec := post(t, srv, "/summarize?region="+reg.name, SummarizeRequest{Trajectory: reg.trip})
					if rec.Code != http.StatusOK {
						errs <- fmt.Errorf("region %s request failed during reload: %d %s",
							reg.name, rec.Code, rec.Body.String())
						return
					}
					var resp SummarizeResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						errs <- err
						return
					}
					if resp.Text != reg.wantSummary {
						errs <- fmt.Errorf("region %s summary changed during reload", reg.name)
						return
					}
				}
			}(reg)
		}
	}
	// Trigger reloads of region A while the traffic flows. 202 and 409
	// are both fine (409 = previous reload still running); anything else
	// is a failure.
	for i := 0; i < 5; i++ {
		req := httptest.NewRequest(http.MethodPost, "/admin/reload?region="+regions[0].name, nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted && rec.Code != http.StatusConflict {
			t.Errorf("admin reload = %d, want 202 or 409", rec.Code)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRegionReloadValidation pins the admin endpoint's multi-region
// parameter handling.
func TestRegionReloadValidation(t *testing.T) {
	srv, _ := multiServer(t, Options{EnableAdmin: true})
	req := httptest.NewRequest(http.MethodPost, "/admin/reload", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("reload without region = %d, want 400", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/admin/reload?region=atlantis", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("reload unknown region = %d, want 404", rec.Code)
	}
}
