package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stmaker"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

// reloadWorld builds a private trained summarizer — the shared testServer
// must not be retrained under other tests' feet — plus its training
// corpus and a serve-time trip.
func reloadWorld(t *testing.T) (*stmaker.Summarizer, []*traj.Raw, *traj.Raw) {
	t.Helper()
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, Seed: 21})
	s, err := stmaker.New(stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks})
	if err != nil {
		t.Fatal(err)
	}
	fleet := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 60, Seed: 22, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(fleet))
	for _, tr := range fleet {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		t.Fatal(err)
	}
	trip := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 1, Seed: 23, FixedHour: 9})[0].Raw
	return s, corpus, trip
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdminReloadEndpoint(t *testing.T) {
	s, corpus, _ := reloadWorld(t)
	srv, err := NewWithOptions(s, Options{
		Logger:      DiscardLogger(),
		EnableAdmin: true,
		Retrain:     func() error { _, err := s.Train(corpus); return err },
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Model().Version()

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/reload", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/reload = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /admin/reload = %d, body %s", rec.Code, rec.Body.String())
	}
	waitFor(t, "model version bump", func() bool { return s.Model().Version() > v0 })
}

func TestAdminReloadNotMountedByDefault(t *testing.T) {
	s, corpus, _ := reloadWorld(t)
	srv, err := NewWithOptions(s, Options{
		Logger:  DiscardLogger(),
		Retrain: func() error { _, err := s.Train(corpus); return err },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("POST /admin/reload without EnableAdmin = %d, want 404", rec.Code)
	}
}

func TestAdminReloadWithoutRetrainSource(t *testing.T) {
	s, _, _ := reloadWorld(t)
	srv, err := NewWithOptions(s, Options{Logger: DiscardLogger(), EnableAdmin: true})
	if err != nil {
		t.Fatal(err)
	}
	if srv.TriggerReload("test") {
		t.Error("TriggerReload without a retrain source reported a start")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("POST /admin/reload without retrain source = %d, want 501", rec.Code)
	}
}

// TestReloadSingleFlight pins that concurrent reload triggers collapse
// into one rebuild: the second trigger is dropped, and the admin
// endpoint reports the conflict.
func TestReloadSingleFlight(t *testing.T) {
	s, _, _ := reloadWorld(t)
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	srv, err := NewWithOptions(s, Options{
		Logger:      DiscardLogger(),
		EnableAdmin: true,
		Retrain: func() error {
			once.Do(func() { close(started) })
			<-block
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !srv.TriggerReload("test") {
		t.Fatal("first trigger did not start a reload")
	}
	<-started
	if srv.TriggerReload("test") {
		t.Error("second trigger started a concurrent reload")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusConflict {
		t.Errorf("POST /admin/reload during reload = %d, want 409", rec.Code)
	}
	close(block)
	waitFor(t, "reload slot release", func() bool { return !srv.reloading.Load() })
}

// TestReloadFailureKeepsServing pins the failure contract: a rebuild
// error is counted and logged but the previous model keeps serving,
// version unchanged.
func TestReloadFailureKeepsServing(t *testing.T) {
	s, _, trip := reloadWorld(t)
	srv, err := NewWithOptions(s, Options{
		Logger:      DiscardLogger(),
		EnableAdmin: true,
		Retrain:     func() error { return errors.New("corpus store offline") },
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Model().Version()
	if !srv.TriggerReload("test") {
		t.Fatal("trigger did not start a reload")
	}
	failures := srv.Metrics().Counter(MetricModelReloadFailures)
	waitFor(t, "failure counted", func() bool { return failures.Value() == 1 })
	if v := s.Model().Version(); v != v0 {
		t.Errorf("failed reload changed model version %d -> %d", v0, v)
	}
	rec := post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusOK {
		t.Errorf("summarize after failed reload = %d, body %s", rec.Code, rec.Body.String())
	}
}

// TestReloadUnderConcurrentLoad is the hot-swap acceptance test: model
// reloads fire repeatedly while summarize traffic is in flight, and not
// a single request may fail or observe a partially-swapped model.
func TestReloadUnderConcurrentLoad(t *testing.T) {
	s, corpus, trip := reloadWorld(t)
	srv, err := NewWithOptions(s, Options{
		Logger:      DiscardLogger(),
		EnableAdmin: true,
		Retrain:     func() error { _, err := s.Train(corpus); return err },
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Model().Version()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip})
				if rec.Code != http.StatusOK {
					errs <- rec.Body.String()
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		srv.TriggerReload("test")
		select {
		case <-done:
			close(errs)
			for msg := range errs {
				t.Fatalf("request failed during reload: %s", msg)
			}
			waitFor(t, "reload slot release", func() bool { return !srv.reloading.Load() })
			if s.Model().Version() <= v0 {
				t.Error("no reload completed during the test")
			}
			return
		case <-time.After(time.Millisecond):
		}
	}
}
