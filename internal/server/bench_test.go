package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchBody pre-encodes a request body once; the benchmarks measure
// the server, not client-side encoding.
func benchBody(b *testing.B, v any) []byte {
	b.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkServerSummarize measures one POST /summarize through the
// full middleware + handler + pipeline path. allocs/op here is the
// per-request server-side allocation count BENCH_serving.json tracks.
func BenchmarkServerSummarize(b *testing.B) {
	srv, trip := testServer(b)
	body := benchBody(b, SummarizeRequest{Trajectory: trip})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/summarize", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkBatchSummarize measures one 8-item POST /summarize/batch;
// divide by 8 for the per-item cost the batch path amortizes.
func BenchmarkBatchSummarize(b *testing.B) {
	srv, trip := testServer(b)
	items := make([]SummarizeRequest, 8)
	for i := range items {
		items[i] = SummarizeRequest{Trajectory: trip}
	}
	body := benchBody(b, BatchRequest{Items: items})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/summarize/batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
