package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stmaker/internal/traj"
)

// postRaw posts a pre-encoded body, for malformed-payload cases the
// typed post helper cannot express.
func postRaw(t *testing.T, srv *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// TestBatchMatchesSingleByteForByte is the batch-endpoint equivalence
// acceptance criterion: for the same trajectory, a batch array element
// must be byte-identical to the single endpoint's response body.
func TestBatchMatchesSingleByteForByte(t *testing.T) {
	srv, trip := testServer(t)

	single := post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip})
	if single.Code != http.StatusOK {
		t.Fatalf("single = %d, body %s", single.Code, single.Body.String())
	}
	want := bytes.TrimRight(single.Body.Bytes(), "\n")

	batch := post(t, srv, "/summarize/batch", BatchRequest{Items: []SummarizeRequest{
		{Trajectory: trip},
		{Trajectory: trip},
		{Trajectory: trip},
	}})
	if batch.Code != http.StatusOK {
		t.Fatalf("batch = %d, body %s", batch.Code, batch.Body.String())
	}
	if ct := batch.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("batch Content-Type = %q", ct)
	}

	// The response must be a well-formed JSON array whose raw elements
	// equal the single body. Decode to RawMessage to compare the exact
	// bytes, not a re-encoding.
	var elems []json.RawMessage
	if err := json.Unmarshal(batch.Body.Bytes(), &elems); err != nil {
		t.Fatalf("batch body is not a JSON array: %v\n%s", err, batch.Body.String())
	}
	if len(elems) != 3 {
		t.Fatalf("batch returned %d elements, want 3", len(elems))
	}
	for i, e := range elems {
		if !bytes.Equal(e, want) {
			t.Errorf("element %d differs from single response\nbatch:  %s\nsingle: %s", i, e, want)
		}
	}
}

// TestBatchPartialFailure pins the isolation contract: a malformed,
// misrouted or oversized item fails alone with an inline error while
// its neighbours succeed, and the batch itself still answers 200.
func TestBatchPartialFailure(t *testing.T) {
	srv, trip := testServer(t)

	// A structurally-valid trajectory the pipeline must reject: a single
	// sample cannot be calibrated into a route.
	tooShort := &traj.Raw{ID: "stub", Samples: trip.Samples[:1]}

	// An item over the per-item sample cap. The shared testServer uses
	// the default 40000-sample cap, so build a sparse oversized one.
	big := &traj.Raw{ID: "big", Samples: make([]traj.Sample, DefaultMaxItemSamples+1)}
	for i := range big.Samples {
		big.Samples[i] = trip.Samples[i%len(trip.Samples)]
	}

	cases := []struct {
		name    string
		item    SummarizeRequest
		errWant string // substring of the inline error
	}{
		{"missing trajectory", SummarizeRequest{}, "missing trajectory"},
		{"uncalibratable trajectory", SummarizeRequest{Trajectory: tooShort}, ""},
		{"unknown region", SummarizeRequest{Trajectory: trip, Region: "atlantis"}, "atlantis"},
		{"oversized item", SummarizeRequest{Trajectory: big}, "exceeds 40000 samples"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, srv, "/summarize/batch", BatchRequest{Items: []SummarizeRequest{
				{Trajectory: trip},
				tc.item,
				{Trajectory: trip},
			}})
			if rec.Code != http.StatusOK {
				t.Fatalf("batch = %d, want 200 (partial failure must not fail the batch); body %s",
					rec.Code, rec.Body.String())
			}
			var elems []SummarizeResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &elems); err != nil {
				t.Fatalf("bad batch body: %v\n%s", err, rec.Body.String())
			}
			if len(elems) != 3 {
				t.Fatalf("batch returned %d elements, want 3", len(elems))
			}
			for _, i := range []int{0, 2} {
				if elems[i].Error != "" || elems[i].Text == "" {
					t.Errorf("healthy element %d failed: %+v", i, elems[i])
				}
			}
			if elems[1].Error == "" {
				t.Errorf("bad element succeeded: %+v", elems[1])
			}
			if tc.errWant != "" && !strings.Contains(elems[1].Error, tc.errWant) {
				t.Errorf("element error %q does not mention %q", elems[1].Error, tc.errWant)
			}
		})
	}
}

// TestBatchValidation covers the whole-batch refusals: wrong method,
// malformed body, empty batch, over-limit batch.
func TestBatchValidation(t *testing.T) {
	srv, trip := testServer(t)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/summarize/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET batch = %d, want 405", rec.Code)
	}

	if rec := postRaw(t, srv, "/summarize/batch", "{"); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", rec.Code)
	}
	if rec := postRaw(t, srv, "/summarize/batch", `{"items":[]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", rec.Code)
	}

	over := BatchRequest{Items: make([]SummarizeRequest, DefaultMaxBatchItems+1)}
	for i := range over.Items {
		over.Items[i] = SummarizeRequest{Trajectory: trip}
	}
	if rec := post(t, srv, "/summarize/batch", over); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-limit batch = %d, want 413", rec.Code)
	}
}

// TestBatchDefaultsApply pins that batch-level k and region act as
// per-item defaults and that item-level values win.
func TestBatchDefaultsApply(t *testing.T) {
	srv, trip := testServer(t)
	rec := post(t, srv, "/summarize/batch", BatchRequest{
		K: 2,
		Items: []SummarizeRequest{
			{Trajectory: trip},       // inherits k=2
			{Trajectory: trip, K: 3}, // keeps its own k
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d, body %s", rec.Code, rec.Body.String())
	}
	var elems []SummarizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &elems); err != nil {
		t.Fatal(err)
	}
	if got := len(elems[0].Parts); got != 2 {
		t.Errorf("default k: %d parts, want 2", got)
	}
	if got := len(elems[1].Parts); got != 3 {
		t.Errorf("item k: %d parts, want 3", got)
	}
}

// TestMixedTrafficUnderReload is the sustained-serving race test:
// single requests, batches and live model reloads all in flight at
// once, with zero failed requests and zero failed batch items. Run
// with -race this also proves the batch worker pool shares the model
// cell and metrics registry safely.
func TestMixedTrafficUnderReload(t *testing.T) {
	s, corpus, trip := reloadWorld(t)
	srv, err := NewWithOptions(s, Options{
		Logger:      DiscardLogger(),
		EnableAdmin: true,
		Retrain:     func() error { _, err := s.Train(corpus); return err },
	})
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.Model().Version()

	const workers, perWorker, batchSize = 6, 15, 4
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w%2 == 0 {
					rec := post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip})
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("single: %d %s", rec.Code, rec.Body.String())
						return
					}
					continue
				}
				items := make([]SummarizeRequest, batchSize)
				for j := range items {
					items[j] = SummarizeRequest{Trajectory: trip}
				}
				rec := post(t, srv, "/summarize/batch", BatchRequest{Items: items})
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("batch: %d %s", rec.Code, rec.Body.String())
					return
				}
				var elems []SummarizeResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &elems); err != nil {
					errs <- fmt.Sprintf("batch body: %v", err)
					return
				}
				for _, e := range elems {
					if e.Error != "" {
						errs <- fmt.Sprintf("batch item: %s", e.Error)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		srv.TriggerReload("test")
		select {
		case <-done:
			close(errs)
			for msg := range errs {
				t.Fatalf("request failed during reload: %s", msg)
			}
			waitFor(t, "reload slot release", func() bool { return !srv.reloading.Load() })
			if s.Model().Version() <= v0 {
				t.Error("no reload completed during the test")
			}
			return
		case <-time.After(time.Millisecond):
		}
	}
}
