package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/ingest"
	"stmaker/internal/registry"
)

// ingestLine is one NDJSON line of a POST /ingest stream: a GPS fix
// ({trip, lat, lng, t, object?}) or an end-of-trip marker ({trip,
// end:true}). The optional region field on the first line routes the
// whole stream when the ?region= query parameter is absent.
type ingestLine struct {
	Trip   string    `json:"trip"`
	Object string    `json:"object,omitempty"`
	Lat    float64   `json:"lat"`
	Lng    float64   `json:"lng"`
	T      time.Time `json:"t"`
	End    bool      `json:"end,omitempty"`
	Region string    `json:"region,omitempty"`
}

// IngestResponse is the POST /ingest reply. Accepted counts fixes that
// were durably logged and buffered — they survive a crash even when the
// stream later fails, so a client retrying a non-2xx response may
// resend the remainder only.
type IngestResponse struct {
	Region   string `json:"region,omitempty"`
	Accepted int    `json:"accepted"`
	Closed   int    `json:"closed"`
	Error    string `json:"error,omitempty"`
}

// maxIngestLineBytes caps one NDJSON line; a single fix is well under
// 1 KiB, so anything near the cap is a malformed stream.
const maxIngestLineBytes = 64 << 10

// handleIngest streams NDJSON GPS fixes into the region's ingester.
// Every fix is appended to the write-ahead log before it counts as
// accepted, and an fsync barrier runs before any response that reports
// accepted work, so a 2xx (and the accepted count of any error reply)
// is a durability acknowledgement. Backpressure surfaces as 429 +
// Retry-After without blocking other routes; a degraded WAL surfaces as
// 503 while reads keep serving.
func (srv *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if srv.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, srv.opts.MaxBodyBytes)
	}
	var (
		ing     *ingest.Ingester
		resp    IngestResponse
		scanner = bufio.NewScanner(r.Body)
		lineNo  int
	)
	scanner.Buffer(make([]byte, 0, 4096), maxIngestLineBytes)
	// fail acknowledges what was already accepted (fsync barrier) and
	// then reports the failure with its counts.
	fail := func(code int, msg string) {
		if ing != nil && resp.Accepted+resp.Closed > 0 {
			if err := ing.Sync(); err != nil {
				code, msg = http.StatusServiceUnavailable, fmt.Sprintf("ingest degraded: %v", err)
				resp.Accepted, resp.Closed = 0, 0
			}
		}
		resp.Error = msg
		w.Header().Set("Content-Type", "application/json")
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(code)
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			srv.logger.Error("ingest error-response encode failed", "error", err)
		}
	}
	for scanner.Scan() {
		lineNo++
		line := bytes.TrimSpace(scanner.Bytes())
		if len(line) == 0 {
			continue
		}
		var l ingestLine
		if err := json.Unmarshal(line, &l); err != nil {
			fail(http.StatusBadRequest, fmt.Sprintf("line %d: %v", lineNo, err))
			return
		}
		if l.Trip == "" {
			fail(http.StatusBadRequest, fmt.Sprintf("line %d: missing trip", lineNo))
			return
		}
		if ing == nil {
			region, i, err := srv.resolveIngester(&l, r)
			if err != nil {
				fail(statusForError(err), err.Error())
				return
			}
			resp.Region, ing = region, i
		}
		if l.End {
			if err := ing.CloseTrip(l.Trip); err != nil {
				fail(http.StatusServiceUnavailable, fmt.Sprintf("ingest degraded: %v", err))
				return
			}
			resp.Closed++
			continue
		}
		if l.T.IsZero() {
			fail(http.StatusBadRequest, fmt.Sprintf("line %d: missing t", lineNo))
			return
		}
		err := ing.AddFix(l.Trip, l.Object, geo.Point{Lat: l.Lat, Lng: l.Lng}, l.T)
		switch {
		case errors.Is(err, ingest.ErrBufferFull):
			fail(http.StatusTooManyRequests, "trip buffer full, retry later")
			return
		case err != nil:
			fail(http.StatusServiceUnavailable, fmt.Sprintf("ingest degraded: %v", err))
			return
		}
		resp.Accepted++
	}
	if err := scanner.Err(); err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			fail(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes; chunk the stream into smaller requests", tooBig.Limit))
		case errors.Is(err, bufio.ErrTooLong):
			fail(http.StatusBadRequest, fmt.Sprintf("line %d exceeds %d bytes", lineNo+1, maxIngestLineBytes))
		default:
			fail(http.StatusBadRequest, fmt.Sprintf("reading stream: %v", err))
		}
		return
	}
	if ing != nil && resp.Accepted+resp.Closed > 0 {
		// The acknowledgement barrier: nothing is reported accepted until
		// it is on stable storage.
		if err := ing.Sync(); err != nil {
			resp.Accepted, resp.Closed = 0, 0
			fail(http.StatusServiceUnavailable, fmt.Sprintf("ingest degraded: %v", err))
			return
		}
	}
	srv.writeJSON(w, resp)
}

// resolveIngester routes an ingest stream to a region ingester with the
// same precedence as summarize routing: ?region= query parameter, then
// the first line's region field, then the sole region, then spatial
// routing by the first fix's coordinates.
func (srv *Server) resolveIngester(first *ingestLine, r *http.Request) (string, *ingest.Ingester, error) {
	region := first.Region
	if q := r.URL.Query().Get("region"); q != "" {
		region = q
	}
	if region == "" {
		region = srv.reg.DefaultRegion()
	}
	if region == "" {
		p := geo.Point{Lat: first.Lat, Lng: first.Lng}
		name, ok := srv.reg.Resolve(p)
		if !ok {
			return "", nil, fmt.Errorf("%w: no region key given and no region covers %v",
				registry.ErrUnknownRegion, p)
		}
		region = name
	}
	ing, err := srv.ingest.Ingester(region)
	return region, ing, err
}
