package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"stmaker"
	"stmaker/internal/hits"
	"stmaker/internal/metrics"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

// scrape GETs /metrics and decodes the snapshot.
func scrape(t *testing.T, srv *Server) metrics.Snapshot {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(rec.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestMetricsEndpointShape drives traffic through the server and checks
// the /metrics snapshot exposes the documented request metrics and the
// Summarizer's per-stage latency histograms (docs/OBSERVABILITY.md).
func TestMetricsEndpointShape(t *testing.T) {
	srv, trip := testServer(t)
	before := scrape(t, srv)

	rec := post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip})
	if rec.Code != http.StatusOK {
		t.Fatalf("summarize status = %d", rec.Code)
	}
	snap := scrape(t, srv)

	if got := snap.Counters[MetricHTTPRequests]; got <= before.Counters[MetricHTTPRequests] {
		t.Errorf("%s = %d, want > %d", MetricHTTPRequests, got, before.Counters[MetricHTTPRequests])
	}
	// The scrape itself is in flight while the snapshot is taken.
	if got := snap.Counters[MetricHTTPInFlight]; got != 1 {
		t.Errorf("%s = %d, want 1 (the scrape)", MetricHTTPInFlight, got)
	}
	lat := snap.Histograms[MetricHTTPLatency]
	if lat.Count == 0 || lat.Sum <= 0 {
		t.Errorf("%s = %+v, want observations", MetricHTTPLatency, lat)
	}
	for _, name := range []string{
		stmaker.MetricStageCalibrate, stmaker.MetricStageExtract,
		stmaker.MetricStagePartition, stmaker.MetricStageSelect,
		stmaker.MetricStageRender, stmaker.MetricSummarize,
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("stage histogram %s missing from /metrics", name)
		}
	}
	if snap.Counters[stmaker.MetricSummaries] == 0 {
		t.Errorf("%s missing after successful summarize", stmaker.MetricSummaries)
	}

	// POST is rejected.
	rec = post(t, srv, "/metrics", struct{}{})
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d", rec.Code)
	}
}

// TestMiddlewareStatusRecording checks the per-status-class response
// counters move with the handler outcomes.
func TestMiddlewareStatusRecording(t *testing.T) {
	srv, trip := testServer(t)
	before := scrape(t, srv)

	// One 2xx.
	if rec := post(t, srv, "/summarize", SummarizeRequest{Trajectory: trip}); rec.Code != http.StatusOK {
		t.Fatalf("summarize status = %d", rec.Code)
	}
	// One 4xx (missing trajectory).
	if rec := post(t, srv, "/summarize", SummarizeRequest{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad request status = %d", rec.Code)
	}
	after := scrape(t, srv)

	// The before/after scrapes themselves add 2xx responses: the delta
	// must cover the summarize success plus the first scrape.
	d2xx := after.Counters[MetricHTTPResponses2xx] - before.Counters[MetricHTTPResponses2xx]
	if d2xx < 2 {
		t.Errorf("2xx delta = %d, want >= 2", d2xx)
	}
	d4xx := after.Counters[MetricHTTPResponses4xx] - before.Counters[MetricHTTPResponses4xx]
	if d4xx != 1 {
		t.Errorf("4xx delta = %d, want 1", d4xx)
	}
}

// TestConcurrentSummarizeWhileScraping races summarization traffic
// against /metrics scrapes; run under -race it proves a scrape never
// torn-reads or blocks the serving path.
func TestConcurrentSummarizeWhileScraping(t *testing.T) {
	srv, trip := testServer(t)
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(SummarizeRequest{Trajectory: trip}); err != nil {
		t.Fatal(err)
	}
	payload := body.Bytes()

	const workers, rounds = 4, 8
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := httptest.NewRequest(http.MethodPost, "/summarize", bytes.NewReader(payload))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- rec.Body.String()
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- rec.Body.String()
				}
				var snap metrics.Snapshot
				if err := json.NewDecoder(rec.Body).Decode(&snap); err != nil {
					errs <- err.Error()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	snap := scrape(t, srv)
	if snap.Counters[stmaker.MetricSummaries] < workers*rounds {
		t.Errorf("%s = %d, want >= %d",
			stmaker.MetricSummaries, snap.Counters[stmaker.MetricSummaries], workers*rounds)
	}
}

// TestMetricsExposeSPCacheCounters checks that a summarizer configured for
// HMM matching surfaces its shared shortest-path cache counters through
// GET /metrics (docs/OBSERVABILITY.md).
func TestMetricsExposeSPCacheCounters(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 6, Cols: 6, Seed: 71})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 72})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})
	s, err := stmaker.New(stmaker.Config{
		Graph:          city.Graph,
		Landmarks:      city.Landmarks,
		UseHMMMatching: true,
		SPCacheEntries: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 60, Seed: 73, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		t.Fatal(err)
	}
	hmmSrv, err := NewWithOptions(s, Options{Logger: DiscardLogger()})
	if err != nil {
		t.Fatal(err)
	}

	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 3, Seed: 74, FixedHour: 9})
	for _, tr := range trips {
		if rec := post(t, hmmSrv, "/summarize", SummarizeRequest{Trajectory: tr.Raw}); rec.Code != http.StatusOK {
			t.Fatalf("summarize status = %d: %s", rec.Code, rec.Body.String())
		}
	}

	snap := scrape(t, hmmSrv)
	for _, name := range []string{
		stmaker.MetricSPCacheHits,
		stmaker.MetricSPCacheMisses,
		stmaker.MetricSPCacheEvictions,
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s missing from /metrics", name)
		}
	}
	if snap.Counters[stmaker.MetricSPCacheMisses] == 0 {
		t.Errorf("%s = 0 after HMM-matched summaries", stmaker.MetricSPCacheMisses)
	}
}

// TestPprofOptIn checks the profiling handlers are absent by default and
// present with Options.EnablePprof.
func TestPprofOptIn(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof served without opt-in: status = %d", rec.Code)
	}

	on, err := NewWithOptions(srv.s, Options{Logger: DiscardLogger(), EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index status = %d with opt-in", rec.Code)
	}
}

// TestRequestLogLine checks the middleware emits one structured log line
// per request with the documented attributes.
func TestRequestLogLine(t *testing.T) {
	srv, _ := testServer(t)
	var buf bytes.Buffer
	logged, err := NewWithOptions(srv.s, Options{
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	logged.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var line struct {
		Msg    string `json:"msg"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if line.Msg != "request" || line.Method != http.MethodGet || line.Path != "/healthz" || line.Status != http.StatusOK {
		t.Errorf("log line = %+v", line)
	}
}
