package server

// Fault-injection tests for the resilience layer: every failure mode the
// server promises to contain — pipeline panics, oversized bodies,
// overload, pipeline deadlines, slow-loris clients, shutdown under load —
// is driven end to end here. docs/ROBUSTNESS.md documents the contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"stmaker"
	"stmaker/internal/feature"
	"stmaker/internal/geo"
	"stmaker/internal/hits"
	"stmaker/internal/sanitize"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

// panicExtractor is the injected pipeline fault: it panics while
// extracting features for any trajectory whose ID is "boom", simulating
// a library panic deep inside SummarizeSymbolic.
type panicExtractor struct{}

func (panicExtractor) Descriptor() feature.Descriptor {
	return feature.Descriptor{Key: "Boom", Name: "boom", Class: feature.Moving, Numeric: true}
}

func (panicExtractor) Extract(seg traj.Segment, _ *feature.Context) float64 {
	if seg.Traj != nil && seg.Traj.ID == "boom" {
		panic("boom: injected extractor failure")
	}
	return 0
}

// hardenedServer builds an isolated world, summarizer and server so each
// fault-injection test reads its own metrics registry. pre runs against
// the summarizer before training (e.g. to register the panic extractor).
func hardenedServer(t testing.TB, cfgMut func(*stmaker.Config), pre func(*stmaker.Summarizer), opts Options) (*Server, *traj.Raw) {
	t.Helper()
	city := simulate.NewCity(simulate.CityOptions{Rows: 5, Cols: 5, Seed: 71})
	checkins := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{Seed: 72})
	city.Landmarks.InferSignificance(200, checkins, hits.Options{})
	cfg := stmaker.Config{Graph: city.Graph, Landmarks: city.Landmarks}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	s, err := stmaker.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pre != nil {
		pre(s)
	}
	train := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 60, Seed: 73, FixedHour: -1, Calm: true})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}
	if _, err := s.Train(corpus); err != nil {
		t.Fatal(err)
	}
	if opts.Logger == nil {
		opts.Logger = DiscardLogger()
	}
	srv, err := NewWithOptions(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	trips := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 5, Seed: 74, FixedHour: 9})
	return srv, trips[0].Raw
}

func do(srv *Server, method, path string, body io.Reader) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func summarizeBody(t testing.TB, trip *traj.Raw) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(SummarizeRequest{Trajectory: trip}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestPanicRecoveredAndProcessSurvives(t *testing.T) {
	srv, trip := hardenedServer(t, nil, func(s *stmaker.Summarizer) {
		if err := s.RegisterFeature(panicExtractor{}, nil); err != nil {
			t.Fatal(err)
		}
	}, Options{})

	bomb := &traj.Raw{ID: "boom", Object: trip.Object, Samples: trip.Samples}
	rec := do(srv, http.MethodPost, "/summarize", summarizeBody(t, bomb))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status = %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	var resp SummarizeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil || resp.Error == "" {
		t.Errorf("500 body not a JSON error response: %v / %+v", err, resp)
	}

	// The process is still alive and the very next requests succeed.
	if rec := do(srv, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz after panic: %d", rec.Code)
	}
	if rec := do(srv, http.MethodPost, "/summarize", summarizeBody(t, trip)); rec.Code != http.StatusOK {
		t.Errorf("summarize after panic: %d (%s)", rec.Code, rec.Body.String())
	}

	snap := srv.Metrics().Snapshot()
	if got := snap.Counters[MetricHTTPPanics]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricHTTPPanics, got)
	}
	if got := snap.Counters[MetricHTTPResponses5xx]; got < 1 {
		t.Errorf("5xx counter = %d, want >= 1", got)
	}
}

func TestOversizedBodyRejected413(t *testing.T) {
	srv, _ := hardenedServer(t, nil, nil, Options{}) // default 4 MiB cap

	// A 10 MB body must be rejected without being buffered whole.
	huge := io.MultiReader(
		strings.NewReader(`{"trajectory":{"id":"`),
		strings.NewReader(strings.Repeat("a", 10<<20)),
		strings.NewReader(`"}}`),
	)
	rec := do(srv, http.MethodPost, "/summarize", huge)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	var resp SummarizeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil || resp.Error == "" {
		t.Errorf("413 body not a JSON error response: %v / %+v", err, resp)
	}
}

func TestMaxInFlightShedsWith503(t *testing.T) {
	srv, trip := hardenedServer(t, nil, nil, Options{MaxInFlight: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	srv.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	firstDone := make(chan int)
	go func() {
		rec := do(srv, http.MethodGet, "/slow", nil)
		firstDone <- rec.Code
	}()
	<-entered // the single in-flight slot is now held

	rec := do(srv, http.MethodPost, "/summarize", summarizeBody(t, trip))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	// Infrastructure endpoints never compete for the budget.
	if rec := do(srv, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz shed under load: %d", rec.Code)
	}
	if rec := do(srv, http.MethodGet, "/metrics", nil); rec.Code != http.StatusOK {
		t.Errorf("metrics shed under load: %d", rec.Code)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d", code)
	}
	// With the slot free again, traffic flows.
	if rec := do(srv, http.MethodPost, "/summarize", summarizeBody(t, trip)); rec.Code != http.StatusOK {
		t.Errorf("post-release summarize: %d (%s)", rec.Code, rec.Body.String())
	}
	if got := srv.Metrics().Snapshot().Counters[MetricHTTPShed]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricHTTPShed, got)
	}
}

func TestRequestDeadlineYields504(t *testing.T) {
	// A deadline the pipeline cannot possibly meet: the first
	// between-stages checkpoint aborts the request.
	srv, trip := hardenedServer(t, nil, nil, Options{RequestTimeout: time.Nanosecond})
	rec := do(srv, http.MethodPost, "/summarize", summarizeBody(t, trip))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	var resp SummarizeResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil || !strings.Contains(resp.Error, "deadline") {
		t.Errorf("504 body = %+v, want deadline error", resp)
	}
}

func TestSanitizeRepairsThroughServer(t *testing.T) {
	srv, trip := hardenedServer(t, func(cfg *stmaker.Config) {
		cfg.Sanitize = &sanitize.Options{}
	}, nil, Options{})

	// Corrupt the trip: swap two timestamps and add a teleport spike —
	// input that hard-fails a strict server (see TestSummarizeEndpointErrors).
	noisy := &traj.Raw{ID: trip.ID, Object: trip.Object, Samples: append([]traj.Sample(nil), trip.Samples...)}
	i := len(noisy.Samples) / 2
	noisy.Samples[i].T, noisy.Samples[i+1].T = noisy.Samples[i+1].T, noisy.Samples[i].T
	noisy.Samples[1].Pt = geo.Destination(noisy.Samples[1].Pt, 45, 100_000)

	rec := do(srv, http.MethodPost, "/summarize", summarizeBody(t, noisy))
	if rec.Code != http.StatusOK {
		t.Fatalf("sanitizing server rejected repairable input: %d (%s)", rec.Code, rec.Body.String())
	}
	snap := srv.Metrics().Snapshot()
	if got := snap.Counters[stmaker.MetricSanitizeRepairs]; got == 0 {
		t.Errorf("%s = 0 after repair", stmaker.MetricSanitizeRepairs)
	}

	// The same corrupted trip on the strict shared server is the
	// caller's fault: 422, not 500.
	strict, _ := testServer(t)
	rec = post(t, strict, "/summarize", SummarizeRequest{Trajectory: noisy})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("strict server: status = %d, want 422 (%s)", rec.Code, rec.Body.String())
	}
}

func TestReadyzAndMethodChecks(t *testing.T) {
	srv, _ := hardenedServer(t, nil, nil, Options{})
	if rec := do(srv, http.MethodGet, "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", rec.Code)
	}
	srv.SetReady(false)
	if rec := do(srv, http.MethodGet, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", rec.Code)
	}
	srv.SetReady(true)

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if rec := do(srv, http.MethodPost, path, nil); rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, rec.Code)
		}
	}
}

func TestStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{stmaker.ErrNotTrained, http.StatusServiceUnavailable},
		{errors.New("partition: no 3-partition of 2 segments"), http.StatusInternalServerError},
		{fmt.Errorf("%w: calibrate failed", stmaker.ErrInvalidInput), http.StatusUnprocessableEntity},
		{fmt.Errorf("wrapped again: %w", fmt.Errorf("%w: x", stmaker.ErrInvalidInput)), http.StatusUnprocessableEntity},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{fmt.Errorf("stage: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
	}
	for _, c := range cases {
		if got := statusForError(c.err); got != c.want {
			t.Errorf("statusForError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// serveOnLoopback starts srv.Serve on a fresh loopback listener and
// returns the base URL, the cancel that triggers the drain, and the
// channel carrying Serve's return value.
func serveOnLoopback(t *testing.T, srv *Server, ctx context.Context, opts ServeOptions) (string, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l, opts) }()
	return "http://" + l.Addr().String(), served
}

func TestSIGTERMDrainsInFlightRequests(t *testing.T) {
	srv, _ := hardenedServer(t, nil, nil, Options{})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprintln(w, "survived the drain")
	}))

	// The same wiring cmd/stmakerd uses: SIGTERM cancels the serve
	// context, which starts the graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, served := serveOnLoopback(t, srv, ctx, ServeOptions{DrainTimeout: 10 * time.Second})

	inFlight := make(chan error, 1)
	var body string
	go func() {
		resp, err := http.Get(base + "/slow")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			body = string(b)
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
		}
		inFlight <- err
	}()
	<-entered // request is in the handler

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The drain must flip readiness so load balancers stop routing here.
	deadline := time.After(5 * time.Second)
	for {
		if rec := do(srv, http.MethodGet, "/readyz", nil); rec.Code == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("readyz never flipped to 503 after SIGTERM")
		case <-time.After(10 * time.Millisecond):
		}
	}

	// The in-flight request is still running; let it finish and assert
	// it completed normally despite the shutdown.
	close(release)
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if !strings.Contains(body, "survived") {
		t.Errorf("in-flight body = %q", body)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// New connections are refused once the listener is down.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestSlowLorisCutByReadTimeout(t *testing.T) {
	srv, _ := hardenedServer(t, nil, nil, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, served := serveOnLoopback(t, srv, ctx, ServeOptions{
		ReadHeaderTimeout: 150 * time.Millisecond,
		ReadTimeout:       300 * time.Millisecond,
		DrainTimeout:      2 * time.Second,
	})

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send an incomplete request and then trickle: a well-behaved server
	// must cut the connection instead of pinning a goroutine forever.
	if _, err := conn.Write([]byte("POST /summarize HTTP/1.1\r\nHost: loris\r\nContent-Length: 1000000\r\n\r\n{")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	start := time.Now()
	for {
		_, err = conn.Read(buf)
		if err != nil {
			break // server closed on us: the desired outcome
		}
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("connection still open 5s into a slow-loris attack")
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("connection lingered %v before the timeout cut it", elapsed)
	}

	cancel()
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}
