package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
)

// Batch summarization: POST /summarize/batch accepts many trajectories
// in one request, decodes them once, fans the items out across a
// bounded worker pool — every item shares the process-wide SP-cache
// working set and pooled pipeline scratch — and streams a JSON array of
// per-item responses in input order. One bad trajectory fails only its
// own slot: its array element carries the same error body the single
// endpoint would have produced, while the neighbouring items succeed.
// docs/API.md documents the wire format.

const (
	// DefaultMaxBatchItems caps the items of one batch request
	// (Options.MaxBatchItems): enough for a whole fleet snapshot while
	// bounding the per-request fan-out state.
	DefaultMaxBatchItems = 1024
	// DefaultMaxItemSamples caps one batch item's trajectory samples
	// (Options.MaxItemSamples): roughly what the single endpoint's
	// 4 MiB body cap holds for one verbose-JSON trajectory, so a batch
	// cannot smuggle in an item the single endpoint would have 413'd.
	DefaultMaxItemSamples = 40000
	// batchBodyFactor scales Options.MaxBodyBytes for the batch
	// endpoint's body cap: a batch legitimately carries many
	// trajectories, but still must not let one client stage unbounded
	// memory.
	batchBodyFactor = 16
)

// Metric names recorded by the batch endpoint. docs/OBSERVABILITY.md
// documents each; keep the two in sync.
const (
	// MetricBatchItems counts batch items processed, success or failure.
	MetricBatchItems = "batch_items_total"
	// MetricBatchItemErrors counts batch items that failed (their array
	// element carries an error body); the batch itself still answers 200.
	MetricBatchItemErrors = "batch_item_errors_total"
)

// BatchRequest is the POST /summarize/batch body: the items to
// summarize plus optional batch-wide defaults.
type BatchRequest struct {
	// Items are the per-trajectory requests, answered in order.
	Items []SummarizeRequest `json:"items"`
	// K is the default partition count for items that leave k unset.
	K int `json:"k,omitempty"`
	// Region is the default region key for items that leave region
	// unset (multi-region mode).
	Region string `json:"region,omitempty"`
}

func (srv *Server) maxBatchItems() int {
	switch {
	case srv.opts.MaxBatchItems > 0:
		return srv.opts.MaxBatchItems
	case srv.opts.MaxBatchItems < 0:
		return int(^uint(0) >> 1)
	default:
		return DefaultMaxBatchItems
	}
}

func (srv *Server) maxItemSamples() int {
	switch {
	case srv.opts.MaxItemSamples > 0:
		return srv.opts.MaxItemSamples
	case srv.opts.MaxItemSamples < 0:
		return 0
	default:
		return DefaultMaxItemSamples
	}
}

func (srv *Server) batchWorkers() int {
	if srv.opts.BatchWorkers > 0 {
		return srv.opts.BatchWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// handleBatch is POST /summarize/batch. The whole batch occupies one
// in-flight slot of the load shedder; parallelism inside the batch is
// bounded by Options.BatchWorkers. The response is a JSON array with
// exactly one element per item, streamed in input order as items
// complete, so the client starts reading while the tail of the batch is
// still being computed.
func (srv *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if srv.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, srv.opts.MaxBodyBytes*batchBodyFactor)
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			srv.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		srv.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Items) == 0 {
		srv.writeError(w, http.StatusBadRequest, "empty batch: items is required")
		return
	}
	if max := srv.maxBatchItems(); len(req.Items) > max {
		srv.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d items exceeds the %d-item limit", len(req.Items), max))
		return
	}
	srv.runBatch(r.Context(), w, &req)
}

// runBatch fans the items across the worker pool and streams the
// response array. Items are computed greedily in index order but
// complete out of order; the writer goroutine is the request handler
// itself, emitting element i as soon as it is ready so transfer
// overlaps compute. A client disconnect cancels ctx, which the
// per-item pipelines observe between stages, so abandoned batches
// drain quickly instead of running to completion.
func (srv *Server) runBatch(ctx context.Context, w http.ResponseWriter, req *BatchRequest) {
	items := req.Items
	n := len(items)
	results := make([]SummarizeResponse, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	workers := srv.batchWorkers()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	for wk := 0; wk < workers; wk++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = srv.batchItem(ctx, &items[i], req.K, req.Region)
				close(ready[i])
			}
		}()
	}

	itemsTotal := srv.mx.Counter(MetricBatchItems)
	itemErrors := srv.mx.Counter(MetricBatchItemErrors)
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write([]byte("[")); err != nil {
		srv.encodeFailed(err)
		// The wire is gone; keep draining ready so the workers finish
		// against the cancelled ctx without blocking on anything.
	}
	for i := 0; i < n; i++ {
		<-ready[i]
		itemsTotal.Inc()
		if results[i].Error != "" {
			itemErrors.Inc()
		}
		if i > 0 {
			if _, err := w.Write([]byte(",")); err != nil {
				srv.encodeFailed(err)
				continue
			}
		}
		srv.writeBatchItem(w, &results[i])
	}
	if _, err := w.Write([]byte("]\n")); err != nil {
		srv.encodeFailed(err)
	}
}

// writeBatchItem encodes one array element through the pooled encode
// buffer. Element bytes are exactly the single endpoint's response body
// (minus its trailing newline) for the same trajectory —
// TestBatchMatchesSingleByteForByte pins this.
func (srv *Server) writeBatchItem(w http.ResponseWriter, resp *SummarizeResponse) {
	eb := encPool.Get().(*encodeBuf)
	defer encPool.Put(eb)
	data := []byte(`{"id":"","text":"","parts":null,"error":"response encoding failed"}`)
	if err := eb.encode(resp); err != nil {
		// Unreachable for this response shape, but an array element must
		// still be emitted to keep the response well-formed.
		srv.encodeFailed(err)
	} else {
		data = bytes.TrimSuffix(eb.buf.Bytes(), []byte("\n"))
	}
	if _, err := w.Write(data); err != nil {
		srv.encodeFailed(err)
	}
}

// batchItem applies the batch-wide defaults and runs one item through
// the shared single-request core. An oversized item is refused inline —
// the batch analogue of the single endpoint's 413 — without touching
// its neighbours.
func (srv *Server) batchItem(ctx context.Context, item *SummarizeRequest, defK int, defRegion string) SummarizeResponse {
	if item.K == 0 {
		item.K = defK
	}
	if item.Region == "" {
		item.Region = defRegion
	}
	if max := srv.maxItemSamples(); max > 0 && item.Trajectory != nil && len(item.Trajectory.Samples) > max {
		return SummarizeResponse{Error: fmt.Sprintf("item trajectory exceeds %d samples", max)}
	}
	resp, _ := srv.summarizeOne(ctx, item, "")
	return resp
}
