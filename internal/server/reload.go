package server

import (
	"fmt"
	"net/http"
	"time"
)

// Metric names for the live model-reload path. docs/OBSERVABILITY.md
// documents each; keep the two in sync. (The model_version gauge and
// model_swaps_total counter live in the stmaker package, where the swap
// happens.)
const (
	// MetricModelBuild times each model rebuild attempt (the Options.Retrain
	// callback), successful or not, in seconds.
	MetricModelBuild = "model_build_seconds"
	// MetricModelReloadFailures counts rebuild attempts that failed; the
	// previous model keeps serving, so any non-zero value means the
	// instance is running on stale knowledge.
	MetricModelReloadFailures = "model_reload_failures_total"
)

// TriggerReload starts a background model rebuild via Options.Retrain and
// returns whether one was started. Reloads are single-flight: a trigger
// while a rebuild is already running is dropped (with a log line), since
// queueing retrains of the same corpus only duplicates work. The rebuild
// runs entirely off the serving path — requests keep hitting the current
// model, and only a successful rebuild publishes a replacement. A failed
// rebuild is logged, counted in model_reload_failures_total, and changes
// nothing else. reason tags the log lines ("sighup", "admin", ...).
func (srv *Server) TriggerReload(reason string) bool {
	if srv.opts.Retrain == nil {
		srv.logger.Warn("model reload requested but no retrain source configured", "reason", reason)
		return false
	}
	if !srv.reloading.CompareAndSwap(false, true) {
		srv.logger.Warn("model reload already in progress, trigger dropped", "reason", reason)
		return false
	}
	srv.logger.Info("model reload starting", "reason", reason)
	go func() {
		defer srv.reloading.Store(false)
		t0 := time.Now()
		err := srv.opts.Retrain()
		srv.mx.Histogram(MetricModelBuild).ObserveSince(t0)
		if err != nil {
			srv.mx.Counter(MetricModelReloadFailures).Inc()
			srv.logger.Error("model reload failed, previous model keeps serving",
				"reason", reason, "error", err, "duration", time.Since(t0))
			return
		}
		var version uint64
		if m := srv.s.Model(); m != nil {
			version = m.Version()
		}
		srv.logger.Info("model reload complete",
			"reason", reason, "version", version, "duration", time.Since(t0))
	}()
	return true
}

// handleReload is POST /admin/reload (mounted only with
// Options.EnableAdmin): it triggers a background model rebuild and
// returns immediately — 202 when one was started, 409 when one is
// already running. In single-region mode it runs the same retrain as
// SIGHUP (501 when the server has no retrain source); in multi-region
// mode the mandatory ?region= parameter names the region whose model
// file is re-read and hot-swapped (400 without it, 404 for an unknown
// region). Requests in flight — on the named region and on every other
// — keep serving the models they already resolved. Progress is
// observable via model_version / model_swaps_total /
// model_reload_failures_total (single-region) or the per-region series
// (multi-region) on GET /metrics.
func (srv *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if srv.reg.Multi() {
		srv.handleRegionReload(w, r)
		return
	}
	if srv.opts.Retrain == nil {
		http.Error(w, "no retrain source configured", http.StatusNotImplemented)
		return
	}
	// A region parameter on a single-region server must still make
	// sense: anything but the one region it serves is a 404.
	if q := r.URL.Query().Get("region"); q != "" && q != srv.reg.DefaultRegion() {
		http.Error(w, fmt.Sprintf("unknown region %q", q), http.StatusNotFound)
		return
	}
	if !srv.TriggerReload("admin") {
		http.Error(w, "reload already in progress", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "reload started")
}

// handleRegionReload is the multi-region arm of POST /admin/reload.
func (srv *Server) handleRegionReload(w http.ResponseWriter, r *http.Request) {
	region := r.URL.Query().Get("region")
	if region == "" {
		http.Error(w, "region parameter required on a multi-region server", http.StatusBadRequest)
		return
	}
	started, err := srv.reg.TriggerReload(region, "admin")
	if err != nil {
		http.Error(w, err.Error(), statusForError(err))
		return
	}
	if !started {
		http.Error(w, "reload already in progress", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "reload of region %q started\n", region)
}
