package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"stmaker/internal/ingest"
	"stmaker/internal/registry"
	"stmaker/internal/traj"
)

// ingestServer builds a multi-region server with POST /ingest enabled
// over a per-test ingest directory.
func ingestServer(t *testing.T, svcOpts ingest.ServiceOptions) (*Server, []testRegion) {
	t.Helper()
	svcOpts.Dir = t.TempDir()
	if svcOpts.Logger == nil {
		svcOpts.Logger = DiscardLogger()
	}
	return multiServer(t, Options{Ingest: &svcOpts})
}

// ndjson renders a trip's samples (optionally capped) as ingest lines,
// with an end marker when closed.
func ndjson(t *testing.T, trip *traj.Raw, n int, closed bool) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if n <= 0 || n > len(trip.Samples) {
		n = len(trip.Samples)
	}
	for _, s := range trip.Samples[:n] {
		err := enc.Encode(map[string]any{
			"trip": trip.ID, "object": trip.Object,
			"lat": s.Pt.Lat, "lng": s.Pt.Lng, "t": s.T,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if closed {
		if err := enc.Encode(map[string]any{"trip": trip.ID, "end": true}); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

func postIngest(t *testing.T, srv *Server, path string, body *bytes.Buffer) (*httptest.ResponseRecorder, IngestResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, body)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("ingest response %d is not JSON: %v: %s", rec.Code, err, rec.Body.String())
	}
	return rec, resp
}

func TestIngestEndToEnd(t *testing.T) {
	srv, regions := ingestServer(t, ingest.ServiceOptions{})
	reg := regions[0]
	rec, resp := postIngest(t, srv, "/ingest?region="+reg.name, ndjson(t, reg.trip, 0, true))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Region != reg.name || resp.Accepted != len(reg.trip.Samples) || resp.Closed != 1 {
		t.Fatalf("ingest response = %+v, want %d accepted, 1 closed in %s",
			resp, len(reg.trip.Samples), reg.name)
	}
	// Spatial routing: no region key anywhere, the first fix's
	// coordinates land in the second region's bbox.
	other := regions[1]
	rec, resp = postIngest(t, srv, "/ingest", ndjson(t, other.trip, 4, false))
	if rec.Code != http.StatusOK || resp.Region != other.name {
		t.Fatalf("spatially-routed ingest = %d region %q, want 200 in %s",
			rec.Code, resp.Region, other.name)
	}
	// Summaries keep flowing after ingestion.
	if rc := post(t, srv, "/summarize?region="+reg.name, SummarizeRequest{Trajectory: reg.trip}); rc.Code != http.StatusOK {
		t.Fatalf("summarize after ingest = %d", rc.Code)
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	srv, regions := ingestServer(t, ingest.ServiceOptions{})
	reg := regions[0]
	routed := "/ingest?region=" + reg.name
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", routed, "{not json}\n", http.StatusBadRequest},
		{"missing trip", routed, `{"lat":1,"lng":2,"t":"2013-11-02T09:00:00Z"}` + "\n", http.StatusBadRequest},
		{"missing timestamp", routed, `{"trip":"x","lat":1,"lng":2}` + "\n", http.StatusBadRequest},
		{"oversized line", routed, `{"trip":"` + strings.Repeat("x", 70<<10) + `"}` + "\n", http.StatusBadRequest},
		{"unknown region", "/ingest", `{"trip":"x","region":"atlantis","lat":1,"lng":2,"t":"2013-11-02T09:00:00Z"}` + "\n", http.StatusNotFound},
		{"uncovered point", "/ingest", `{"trip":"x","lat":1,"lng":2,"t":"2013-11-02T09:00:00Z"}` + "\n", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, resp := postIngest(t, srv, tc.path, bytes.NewBufferString(tc.body))
			if rec.Code != tc.want {
				t.Fatalf("status = %d, want %d (%s)", rec.Code, tc.want, rec.Body.String())
			}
			if resp.Error == "" {
				t.Fatal("error response carries no error message")
			}
		})
	}
	// Method discipline.
	req := httptest.NewRequest(http.MethodGet, "/ingest", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest = %d, want 405", rec.Code)
	}
	// A stream that fails mid-way still acknowledges the prefix.
	good := ndjson(t, reg.trip, 5, false)
	good.WriteString("{broken\n")
	rec2, resp := postIngest(t, srv, "/ingest?region="+reg.name, good)
	if rec2.Code != http.StatusBadRequest || resp.Accepted != 5 {
		t.Fatalf("mid-stream failure = %d accepted %d, want 400 with 5 acknowledged", rec2.Code, resp.Accepted)
	}
}

// TestIngestBackpressure is the shed-without-blocking proof: a full
// trip buffer answers 429 + Retry-After, the shed counter advances, and
// /summarize on the same server keeps answering 200 throughout.
func TestIngestBackpressure(t *testing.T) {
	srv, regions := ingestServer(t, ingest.ServiceOptions{BufferFixes: 8})
	reg := regions[0]
	rec, resp := postIngest(t, srv, "/ingest?region="+reg.name, ndjson(t, reg.trip, 0, false))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity ingest = %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The 8 fixes under capacity were durably acknowledged before the shed.
	if resp.Accepted != 8 {
		t.Fatalf("accepted %d fixes before shedding, want 8", resp.Accepted)
	}
	var mrec struct {
		Regions map[string]struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"regions"`
	}
	mr := httptest.NewRecorder()
	srv.ServeHTTP(mr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if err := json.Unmarshal(mr.Body.Bytes(), &mrec); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if got := mrec.Regions[reg.name].Counters[ingest.MetricShed]; got < 1 {
		t.Fatalf("%s = %d after shed, want >= 1", ingest.MetricShed, got)
	}
	// Backpressure on ingest never blocks reads.
	for i := 0; i < 3; i++ {
		if rc := post(t, srv, "/summarize?region="+reg.name, SummarizeRequest{Trajectory: reg.trip}); rc.Code != http.StatusOK {
			t.Fatalf("summarize during backpressure = %d", rc.Code)
		}
	}
}

// TestIngestCompactionUnderLoad is the acceptance test for live
// publication: compactions hot-swap new models while summarize traffic
// flows, and not one request fails.
func TestIngestCompactionUnderLoad(t *testing.T) {
	srv, regions := ingestServer(t, ingest.ServiceOptions{})
	reg := regions[0]
	rec, _ := postIngest(t, srv, "/ingest?region="+reg.name, ndjson(t, reg.trip, 0, true))
	if rec.Code != http.StatusOK {
		t.Fatalf("seed ingest = %d", rec.Code)
	}

	const workers, iters = 4, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rc := post(t, srv, "/summarize?region="+reg.name, SummarizeRequest{Trajectory: reg.trip})
				if rc.Code != http.StatusOK {
					errs <- fmt.Errorf("summarize during compaction = %d: %s", rc.Code, rc.Body.String())
					return
				}
			}
		}()
	}
	// Interleave compactions with the read traffic; later rounds are
	// no-ops (nothing new) and must stay harmless.
	for i := 0; i < 5; i++ {
		if err := srv.Ingest().CompactAll(); err != nil {
			t.Errorf("CompactAll: %v", err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestReadyzVerbose(t *testing.T) {
	srv, regions := ingestServer(t, ingest.ServiceOptions{})
	// Warm one region so the fleet is ready.
	if rc := post(t, srv, "/summarize?region="+regions[0].name, SummarizeRequest{Trajectory: regions[0].trip}); rc.Code != http.StatusOK {
		t.Fatalf("warm-up = %d", rc.Code)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz?verbose=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz verbose = %d: %s", rec.Code, rec.Body.String())
	}
	var resp ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Ready || len(resp.Regions) != len(regions) {
		t.Fatalf("verbose readyz = %+v, want ready with %d regions", resp, len(regions))
	}
	states := make(map[string]registry.RegionStatus)
	for _, st := range resp.Regions {
		states[st.Region] = st
	}
	if st := states[regions[0].name]; st.State != "loaded" || st.ModelVersion == 0 {
		t.Fatalf("warmed region status = %+v, want loaded with a version", st)
	}
	if st := states[regions[1].name]; st.State != "cold" {
		t.Fatalf("cold region status = %+v, want cold", st)
	}
	// The plain probe keeps its historical shape.
	prec := httptest.NewRecorder()
	srv.ServeHTTP(prec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if prec.Code != http.StatusOK || !strings.HasPrefix(prec.Body.String(), "ok") {
		t.Fatalf("plain readyz = %d %q, want 200 ok", prec.Code, prec.Body.String())
	}
}

// FuzzIngestNDJSON throws arbitrary bytes at POST /ingest: the handler
// must always answer a well-formed JSON response with a contract status
// and leave the server serving.
func FuzzIngestNDJSON(f *testing.F) {
	multiOnce.Do(buildMultiRegionFixture)
	if multiErr != nil {
		f.Fatal(multiErr)
	}
	reg, err := registry.Open(multiDir, registry.Options{Logger: DiscardLogger()})
	if err != nil {
		f.Fatal(err)
	}
	srv, err := NewMultiRegion(reg, Options{
		Logger: DiscardLogger(),
		Ingest: &ingest.ServiceOptions{
			Dir: f.TempDir(), BufferFixes: 256, TripFixLimit: 16, Logger: DiscardLogger(),
		},
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"trip":"a","lat":39.8,"lng":116.25,"t":"2013-11-02T09:00:00Z"}` + "\n"))
	f.Add([]byte(`{"trip":"a","end":true}` + "\n"))
	f.Add([]byte(`{"trip":"a","region":"atlantis","lat":1,"lng":2,"t":"2013-11-02T09:00:00Z"}` + "\n"))
	f.Add([]byte(`{"trip":"a"` + "\n" + `{"trip":"b","end":true}` + "\n"))
	f.Add([]byte(`{"trip":"` + strings.Repeat("x", 2000) + `","end":true}` + "\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, 0x01})

	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusNotFound:              true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
		http.StatusServiceUnavailable:    true,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/ingest?region=beijing", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if !allowed[rec.Code] {
			t.Fatalf("ingest answered %d outside the contract: %s", rec.Code, rec.Body.String())
		}
		var resp IngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("ingest %d response is not IngestResponse JSON: %v: %q", rec.Code, err, rec.Body.String())
		}
		// Whatever the stream did, the server must still serve probes.
		hrec := httptest.NewRecorder()
		srv.ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if hrec.Code != http.StatusOK {
			t.Fatalf("healthz after fuzzed ingest = %d", hrec.Code)
		}
	})
}
