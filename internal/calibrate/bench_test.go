package calibrate

import (
	"testing"
)

func BenchmarkCalibrate(b *testing.B) {
	set := lineSet(21, 200) // landmarks every 200m over 4km
	cal := New(set, Options{RadiusMeters: 80})
	r := sampleRoute(45, 5, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cal.Calibrate(r); err != nil {
			b.Fatal(err)
		}
	}
}
