// Package calibrate rewrites raw trajectories into landmark-based symbolic
// trajectories (§II-A), following the anchor-based calibration approach the
// paper adopts from Su et al. (SIGMOD 2013): landmarks act as anchor
// points, and every landmark the raw trajectory passes within a given
// radius is inserted as a visit at its interpolated passing time.
//
// Calibration makes summarization independent of the sampling strategy:
// two trajectories sampled differently from the same route calibrate to
// the same symbolic trajectory.
package calibrate

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/landmark"
	"stmaker/internal/traj"
)

// ErrTooFewAnchors is returned when a raw trajectory passes fewer than two
// landmarks and therefore yields no usable symbolic trajectory.
var ErrTooFewAnchors = errors.New("calibrate: trajectory passes fewer than 2 landmarks")

// Options configures the calibrator.
type Options struct {
	// RadiusMeters is the maximum distance at which a landmark is
	// considered passed by the trajectory (default 100).
	RadiusMeters float64
	// MinSpacingMeters drops an anchor when it follows the previous kept
	// anchor by less than this along-route distance; 0 keeps all anchors.
	MinSpacingMeters float64
	// RevisitGapMeters is the minimum along-route separation for two
	// passes of the same landmark to count as distinct visits (a loop),
	// rather than duplicate detections of one pass (default 3× radius).
	RevisitGapMeters float64
}

func (o Options) withDefaults() Options {
	if o.RadiusMeters <= 0 {
		o.RadiusMeters = 100
	}
	if o.RevisitGapMeters <= 0 {
		o.RevisitGapMeters = 3 * o.RadiusMeters
	}
	return o
}

// Calibrator converts raw trajectories to symbolic trajectories against a
// fixed landmark set.
type Calibrator struct {
	set  *landmark.Set
	opts Options
}

// New returns a calibrator over the given landmark set.
func New(set *landmark.Set, opts Options) *Calibrator {
	return &Calibrator{set: set, opts: opts.withDefaults()}
}

// anchor is a candidate landmark passage.
type anchor struct {
	landmarkID int
	along      float64 // metres from trajectory start
	dist       float64 // landmark-to-trajectory distance
	t          time.Time
	rawIndex   int
}

// Calibrate rewrites a raw trajectory into a symbolic trajectory. The
// returned trajectory has Raw set to r. It returns ErrTooFewAnchors when
// fewer than two landmark visits are found.
func (c *Calibrator) Calibrate(r *traj.Raw) (*traj.Symbolic, error) {
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}

	anchors := c.collectAnchors(r)
	anchors = dedupeAnchors(anchors, c.opts.RevisitGapMeters)
	anchors = enforceSpacing(anchors, c.opts.MinSpacingMeters)
	if len(anchors) < 2 {
		return nil, ErrTooFewAnchors
	}

	s := &traj.Symbolic{ID: r.ID, Raw: r}
	for _, a := range anchors {
		s.Visits = append(s.Visits, traj.Visit{Landmark: a.landmarkID, T: a.t, RawIndex: a.rawIndex})
	}
	return s, nil
}

// collectAnchors finds, for every raw polyline segment, the landmarks
// within the calibration radius, and records each hit with its along-route
// position and interpolated passing time.
func (c *Calibrator) collectAnchors(r *traj.Raw) []anchor {
	var anchors []anchor
	var walked float64
	for i := 0; i+1 < len(r.Samples); i++ {
		a, b := r.Samples[i], r.Samples[i+1]
		segLen := geo.Distance(a.Pt, b.Pt)
		// Landmarks within radius of any point of the segment lie within
		// radius + segLen/2 of its midpoint.
		searchR := c.opts.RadiusMeters + segLen/2
		for _, lm := range c.set.Within(geo.Midpoint(a.Pt, b.Pt), searchR) {
			d, t := geo.PointSegmentDistance(lm.Pt, a.Pt, b.Pt)
			if d > c.opts.RadiusMeters {
				continue
			}
			passT := a.T
			if dt := b.T.Sub(a.T); dt > 0 {
				passT = a.T.Add(time.Duration(float64(dt) * t))
			}
			anchors = append(anchors, anchor{
				landmarkID: lm.ID,
				along:      walked + segLen*t,
				dist:       d,
				t:          passT,
				rawIndex:   i,
			})
		}
		walked += segLen
	}
	sort.Slice(anchors, func(i, j int) bool {
		if anchors[i].along != anchors[j].along { //lint:allow floateq -- sort comparator: exact tie-break on equal keys is intended
			return anchors[i].along < anchors[j].along
		}
		return anchors[i].landmarkID < anchors[j].landmarkID
	})
	return anchors
}

// dedupeAnchors merges repeated detections of the same landmark whose
// along-route positions are within revisitGap, keeping the closest
// detection of each pass. Distinct passes (loops) survive.
func dedupeAnchors(anchors []anchor, revisitGap float64) []anchor {
	// Group by landmark, then split each group into passes.
	byLm := make(map[int][]anchor)
	for _, a := range anchors {
		byLm[a.landmarkID] = append(byLm[a.landmarkID], a)
	}
	var out []anchor
	for _, group := range byLm {
		// group is in along order (stable from the pre-sorted input per
		// landmark since map grouping preserves slice order).
		start := 0
		for i := 1; i <= len(group); i++ {
			if i == len(group) || group[i].along-group[i-1].along > revisitGap {
				// [start, i) is one pass; keep the min-distance anchor.
				best := group[start]
				for _, a := range group[start+1 : i] {
					if a.dist < best.dist {
						best = a
					}
				}
				out = append(out, best)
				start = i
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].along != out[j].along { //lint:allow floateq -- sort comparator: exact tie-break on equal keys is intended
			return out[i].along < out[j].along
		}
		return out[i].landmarkID < out[j].landmarkID
	})
	// Finally drop immediate duplicates (same landmark twice in a row).
	var final []anchor
	for _, a := range out {
		if len(final) > 0 && final[len(final)-1].landmarkID == a.landmarkID {
			continue
		}
		final = append(final, a)
	}
	return final
}

// enforceSpacing drops anchors closer along the route than minSpacing to
// the previously kept anchor. The first and last anchors are always kept
// so the trajectory endpoints remain anchored.
func enforceSpacing(anchors []anchor, minSpacing float64) []anchor {
	if minSpacing <= 0 || len(anchors) <= 2 {
		return anchors
	}
	out := []anchor{anchors[0]}
	for i := 1; i < len(anchors)-1; i++ {
		if anchors[i].along-out[len(out)-1].along >= minSpacing {
			out = append(out, anchors[i])
		}
	}
	last := anchors[len(anchors)-1]
	if last.along-out[len(out)-1].along < minSpacing && len(out) > 1 {
		// Replace the final kept interior anchor to make room for the end.
		out = out[:len(out)-1]
	}
	out = append(out, last)
	return out
}
