package calibrate

import (
	"testing"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/landmark"
	"stmaker/internal/traj"
)

var (
	base  = geo.Point{Lat: 39.9, Lng: 116.4}
	start = time.Date(2013, 11, 2, 9, 17, 56, 0, time.UTC)
)

// lineSet places landmarks every spacing metres heading east from base.
func lineSet(n int, spacing float64) *landmark.Set {
	lms := make([]landmark.Landmark, n)
	for i := range lms {
		lms[i] = landmark.Landmark{
			Name: string(rune('A' + i)),
			Pt:   geo.Destination(base, 90, float64(i)*spacing),
		}
	}
	return landmark.NewSet(lms)
}

// sampleRoute produces a raw trajectory along the east line at speed
// (km/h), sampled every intervalSec, covering dist metres.
func sampleRoute(speedKmh float64, intervalSec float64, dist float64) *traj.Raw {
	r := &traj.Raw{ID: "r"}
	step := speedKmh / 3.6 * intervalSec
	for d, i := 0.0, 0; d <= dist; d, i = d+step, i+1 {
		r.Samples = append(r.Samples, traj.Sample{
			Pt: geo.Destination(base, 90, d),
			T:  start.Add(time.Duration(float64(i) * intervalSec * float64(time.Second))),
		})
	}
	return r
}

func TestCalibrateBasic(t *testing.T) {
	set := lineSet(5, 500) // A..E every 500m
	cal := New(set, Options{RadiusMeters: 80})
	r := sampleRoute(40, 5, 2000)
	s, err := cal.Calibrate(r)
	if err != nil {
		t.Fatal(err)
	}
	ids := s.LandmarkIDs()
	if len(ids) != 5 {
		t.Fatalf("landmarks = %v, want 5 visits", ids)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("landmark order = %v", ids)
		}
	}
	// Visit times increase and lie within the trajectory window.
	for i, v := range s.Visits {
		if i > 0 && !v.T.After(s.Visits[i-1].T) {
			t.Fatalf("visit times not increasing: %v", s.Visits)
		}
		if v.T.Before(r.Start()) || v.T.After(r.End()) {
			t.Fatalf("visit %d time %v outside trajectory window", i, v.T)
		}
	}
	if s.Raw != r {
		t.Fatal("Raw not attached")
	}
}

func TestSamplingInvariance(t *testing.T) {
	// The central motivation of §II-A: different sampling strategies of the
	// same route must calibrate to the same symbolic trajectory.
	set := lineSet(6, 400)
	cal := New(set, Options{RadiusMeters: 60})
	dense := sampleRoute(40, 1, 2000)   // sample every second
	sparse := sampleRoute(40, 20, 2000) // sample every 20 seconds
	s1, err := cal.Calibrate(dense)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cal.Calibrate(sparse)
	if err != nil {
		t.Fatal(err)
	}
	ids1, ids2 := s1.LandmarkIDs(), s2.LandmarkIDs()
	if len(ids1) != len(ids2) {
		t.Fatalf("different landmark counts: %v vs %v", ids1, ids2)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("different sequences: %v vs %v", ids1, ids2)
		}
	}
}

func TestTooFewAnchors(t *testing.T) {
	set := lineSet(1, 500)
	cal := New(set, Options{RadiusMeters: 50})
	r := sampleRoute(40, 5, 600)
	if _, err := cal.Calibrate(r); err != ErrTooFewAnchors {
		t.Fatalf("err = %v, want ErrTooFewAnchors", err)
	}
}

func TestInvalidRawRejected(t *testing.T) {
	set := lineSet(3, 500)
	cal := New(set, Options{})
	bad := &traj.Raw{ID: "bad", Samples: []traj.Sample{{Pt: base, T: start}}}
	if _, err := cal.Calibrate(bad); err == nil {
		t.Fatal("invalid raw accepted")
	}
}

func TestFarLandmarksIgnored(t *testing.T) {
	lms := []landmark.Landmark{
		{Name: "near1", Pt: base},
		{Name: "near2", Pt: geo.Destination(base, 90, 1000)},
		{Name: "far", Pt: geo.Destination(geo.Destination(base, 90, 500), 0, 400)}, // 400m off-route
	}
	set := landmark.NewSet(lms)
	cal := New(set, Options{RadiusMeters: 100})
	r := sampleRoute(40, 5, 1000)
	s, err := cal.Calibrate(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.LandmarkIDs() {
		if set.Get(id).Name == "far" {
			t.Fatal("off-route landmark anchored")
		}
	}
}

func TestLoopProducesRepeatVisit(t *testing.T) {
	// Out-and-back route: A ... B ... A. The far pass of A must be a
	// distinct second visit.
	set := lineSet(2, 1000) // A at 0, B at 1000
	cal := New(set, Options{RadiusMeters: 80})
	r := &traj.Raw{ID: "loop"}
	step := 50.0
	ts := start
	for d := 0.0; d <= 1000; d += step {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	for d := 950.0; d >= 0; d -= step {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	s, err := cal.Calibrate(r)
	if err != nil {
		t.Fatal(err)
	}
	ids := s.LandmarkIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 0 {
		t.Fatalf("loop visits = %v, want [0 1 0]", ids)
	}
}

func TestMinSpacingDropsDenseAnchors(t *testing.T) {
	set := lineSet(11, 100) // landmarks every 100m over 1km
	r := sampleRoute(40, 2, 1000)

	all, err := New(set, Options{RadiusMeters: 40}).Calibrate(r)
	if err != nil {
		t.Fatal(err)
	}
	spaced, err := New(set, Options{RadiusMeters: 40, MinSpacingMeters: 250}).Calibrate(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(spaced.Visits) >= len(all.Visits) {
		t.Fatalf("spacing had no effect: %d vs %d", len(spaced.Visits), len(all.Visits))
	}
	// Endpoints are preserved.
	if spaced.Visits[0].Landmark != all.Visits[0].Landmark {
		t.Fatal("first anchor lost")
	}
	if spaced.Visits[len(spaced.Visits)-1].Landmark != all.Visits[len(all.Visits)-1].Landmark {
		t.Fatal("last anchor lost")
	}
}

func TestPassingTimeInterpolated(t *testing.T) {
	// A single landmark midway between two samples: its visit time should
	// be midway between the sample timestamps.
	lms := []landmark.Landmark{
		{Name: "start", Pt: base},
		{Name: "mid", Pt: geo.Destination(base, 90, 150)},
	}
	set := landmark.NewSet(lms)
	r := &traj.Raw{ID: "t", Samples: []traj.Sample{
		{Pt: base, T: start},
		{Pt: geo.Destination(base, 90, 300), T: start.Add(30 * time.Second)},
	}}
	s, err := New(set, Options{RadiusMeters: 30}).Calibrate(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Visits) != 2 {
		t.Fatalf("visits = %d", len(s.Visits))
	}
	got := s.Visits[1].T.Sub(start)
	if got < 14*time.Second || got > 16*time.Second {
		t.Fatalf("interpolated pass time offset = %v, want about 15s", got)
	}
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.RadiusMeters != 100 || o.RevisitGapMeters != 300 {
		t.Fatalf("defaults = %+v", o)
	}
}
