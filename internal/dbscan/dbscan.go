// Package dbscan implements the DBSCAN density-based clustering algorithm
// of Ester, Kriegel, Sander and Xu (KDD 1996). STMaker uses it to cluster a
// raw POI dataset into landmark clusters, exactly as the paper's experiment
// setup does (§VII-A).
package dbscan

import (
	"stmaker/internal/geo"
	"stmaker/internal/spatial"
)

// Noise is the cluster label assigned to points that belong to no cluster.
const Noise = -1

// Result holds the output of a clustering run.
type Result struct {
	// Labels[i] is the cluster id of input point i, or Noise.
	Labels []int
	// NumClusters is the number of clusters found (cluster ids are
	// 0..NumClusters-1).
	NumClusters int
}

// Cluster runs DBSCAN over the points with the given eps radius (metres)
// and minPts density threshold. A point is a core point if at least minPts
// points (including itself) lie within eps of it.
func Cluster(points []geo.Point, eps float64, minPts int) Result {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 || eps <= 0 || minPts <= 0 {
		return Result{Labels: labels}
	}

	refLat := points[0].Lat
	ix := spatial.NewIndex(eps, refLat)
	for i, p := range points {
		ix.Insert(i, p)
	}
	neighbours := func(i int) []int {
		hits := ix.Within(points[i], eps)
		ids := make([]int, len(hits))
		for k, h := range hits {
			ids[k] = h.ID
		}
		return ids
	}

	visited := make([]bool, n)
	next := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		seeds := neighbours(i)
		if len(seeds) < minPts {
			continue // noise (may be claimed as a border point later)
		}
		cid := next
		next++
		labels[i] = cid
		// Expand the cluster breadth-first from the seed set.
		for k := 0; k < len(seeds); k++ {
			j := seeds[k]
			if labels[j] == Noise {
				labels[j] = cid
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			more := neighbours(j)
			if len(more) >= minPts {
				seeds = append(seeds, more...)
			}
		}
	}
	return Result{Labels: labels, NumClusters: next}
}

// Centroids returns the geometric centre of each cluster in the result.
// Noise points are ignored. The returned slice has length NumClusters.
func Centroids(points []geo.Point, r Result) []geo.Point {
	sumLat := make([]float64, r.NumClusters)
	sumLng := make([]float64, r.NumClusters)
	count := make([]int, r.NumClusters)
	for i, lbl := range r.Labels {
		if lbl == Noise {
			continue
		}
		sumLat[lbl] += points[i].Lat
		sumLng[lbl] += points[i].Lng
		count[lbl]++
	}
	out := make([]geo.Point, r.NumClusters)
	for c := 0; c < r.NumClusters; c++ {
		if count[c] > 0 {
			out[c] = geo.Point{Lat: sumLat[c] / float64(count[c]), Lng: sumLng[c] / float64(count[c])}
		}
	}
	return out
}

// ClusterSizes returns the number of points in each cluster.
func ClusterSizes(r Result) []int {
	sizes := make([]int, r.NumClusters)
	for _, lbl := range r.Labels {
		if lbl != Noise {
			sizes[lbl]++
		}
	}
	return sizes
}
