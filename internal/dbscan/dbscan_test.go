package dbscan

import (
	"math/rand"
	"testing"

	"stmaker/internal/geo"
)

var base = geo.Point{Lat: 39.9, Lng: 116.4}

// blob generates n points scattered within radius metres of centre.
func blob(rng *rand.Rand, centre geo.Point, n int, radius float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Destination(centre, rng.Float64()*360, rng.Float64()*radius)
	}
	return pts
}

func TestTwoBlobsAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c1 := base
	c2 := geo.Destination(base, 90, 5000)
	var pts []geo.Point
	pts = append(pts, blob(rng, c1, 40, 100)...)
	pts = append(pts, blob(rng, c2, 40, 100)...)
	lone := geo.Destination(base, 0, 20000)
	pts = append(pts, lone)

	r := Cluster(pts, 150, 5)
	if r.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", r.NumClusters)
	}
	if r.Labels[len(pts)-1] != Noise {
		t.Fatalf("lone point label = %d, want Noise", r.Labels[len(pts)-1])
	}
	// All blob-1 points share a label distinct from blob-2's.
	l1 := r.Labels[0]
	for i := 0; i < 40; i++ {
		if r.Labels[i] != l1 {
			t.Fatalf("blob1 point %d label = %d, want %d", i, r.Labels[i], l1)
		}
	}
	l2 := r.Labels[40]
	if l2 == l1 {
		t.Fatalf("blobs merged")
	}
	for i := 40; i < 80; i++ {
		if r.Labels[i] != l2 {
			t.Fatalf("blob2 point %d label = %d, want %d", i, r.Labels[i], l2)
		}
	}
}

func TestCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := blob(rng, base, 50, 80)
	r := Cluster(pts, 200, 3)
	if r.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", r.NumClusters)
	}
	cents := Centroids(pts, r)
	if len(cents) != 1 {
		t.Fatalf("Centroids len = %d", len(cents))
	}
	if d := geo.Distance(cents[0], base); d > 50 {
		t.Fatalf("centroid %v is %vm from blob centre", cents[0], d)
	}
	sizes := ClusterSizes(r)
	if sizes[0] != 50 {
		t.Fatalf("cluster size = %d, want 50", sizes[0])
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	r := Cluster(nil, 100, 3)
	if r.NumClusters != 0 || len(r.Labels) != 0 {
		t.Fatalf("empty input: %+v", r)
	}
	pts := []geo.Point{base}
	r = Cluster(pts, 0, 3) // eps <= 0: everything is noise
	if r.NumClusters != 0 || r.Labels[0] != Noise {
		t.Fatalf("eps=0: %+v", r)
	}
	r = Cluster(pts, 100, 0) // minPts <= 0: everything is noise
	if r.NumClusters != 0 {
		t.Fatalf("minPts=0: %+v", r)
	}
}

func TestSinglePointMinPtsOne(t *testing.T) {
	pts := []geo.Point{base}
	r := Cluster(pts, 100, 1)
	if r.NumClusters != 1 || r.Labels[0] != 0 {
		t.Fatalf("single point minPts=1: %+v", r)
	}
}

func TestBorderPointsJoinCluster(t *testing.T) {
	// A dense core with one border point reachable from the core but not
	// itself dense.
	var pts []geo.Point
	for i := 0; i < 6; i++ {
		pts = append(pts, geo.Destination(base, float64(i)*60, 10))
	}
	border := geo.Destination(base, 0, 90) // within 100m of the core only
	pts = append(pts, border)
	r := Cluster(pts, 100, 5)
	if r.NumClusters != 1 {
		t.Fatalf("NumClusters = %d, want 1", r.NumClusters)
	}
	if r.Labels[len(pts)-1] == Noise {
		t.Fatalf("border point should be claimed by the cluster")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := append(blob(rng, base, 30, 100), blob(rng, geo.Destination(base, 45, 3000), 30, 100)...)
	r1 := Cluster(pts, 150, 4)
	r2 := Cluster(pts, 150, 4)
	if r1.NumClusters != r2.NumClusters {
		t.Fatalf("nondeterministic cluster count")
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatalf("nondeterministic label at %d", i)
		}
	}
}
