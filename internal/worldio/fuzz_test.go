package worldio

import (
	"bytes"
	"testing"
)

// FuzzLoadTrips asserts the trip decoder's contract on arbitrary bytes:
// it never panics, and every trajectory it returns without error passes
// Validate — garbage on the wire becomes an error, never a poisoned
// corpus handed to Train.
func FuzzLoadTrips(f *testing.F) {
	seeds := []string{
		`{"version":1,"trips":[{"id":"a","samples":[{"pt":{"Lat":39.9,"Lng":116.3},"t":"2013-11-02T06:00:00Z"},{"pt":{"Lat":39.91,"Lng":116.31},"t":"2013-11-02T06:05:00Z"}]}]}`,
		`{"version":1,"trips":[]}`,
		`{"version":1,"trips":[null]}`,
		`{"version":1,"trips":[{"id":"short","samples":[]}]}`,
		`{"version":2,"trips":[]}`,
		`{"version":1,"trips":[{"id":"bad","samples":[{"pt":{"Lat":999,"Lng":999},"t":"2013-11-02T06:00:00Z"},{"pt":{"Lat":0,"Lng":0},"t":"2013-11-02T06:00:01Z"}]}]}`,
		`{"version":1,"trips":[{"id":"rev","samples":[{"pt":{"Lat":1,"Lng":1},"t":"2013-11-02T06:05:00Z"},{"pt":{"Lat":1,"Lng":1},"t":"2013-11-02T06:00:00Z"}]}]}`,
		`{`,
		``,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		trips, err := LoadTrips(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, tr := range trips {
			if err := tr.Validate(); err != nil {
				t.Fatalf("LoadTrips returned invalid trip %d without error: %v\ninput: %s", i, err, data)
			}
		}
	})
}
