// Package worldio persists and restores the external semantic inputs of
// STMaker (§II: the road network and the landmark dataset) and raw
// trajectory corpora (Def. 1), as JSON. It is the storage layer behind
// cmd/trajgen, cmd/stmaker and cmd/stmakerd, letting a generated world be
// reused across runs and served over HTTP; docs/API.md documents the trip
// JSON shape as it appears on the wire.
package worldio

import (
	"encoding/json"
	"fmt"
	"io"

	"stmaker/internal/geo"
	"stmaker/internal/landmark"
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
)

// FormatVersion identifies the on-disk schema.
const FormatVersion = 1

// worldFile is the serialized world.
type worldFile struct {
	Version   int            `json:"version"`
	Nodes     []nodeJSON     `json:"nodes"`
	Edges     []edgeJSON     `json:"edges"`
	Landmarks []landmarkJSON `json:"landmarks"`
}

type nodeJSON struct {
	Lat          float64 `json:"lat"`
	Lng          float64 `json:"lng"`
	TurningPoint bool    `json:"turningPoint,omitempty"`
}

type edgeJSON struct {
	From      int          `json:"from"`
	To        int          `json:"to"`
	Name      string       `json:"name,omitempty"`
	Grade     int          `json:"grade"`
	Width     float64      `json:"width"`
	Direction int          `json:"direction"`
	Speed     float64      `json:"speedKmh,omitempty"`
	Geometry  [][2]float64 `json:"geometry,omitempty"`
}

type landmarkJSON struct {
	Name         string  `json:"name"`
	Lat          float64 `json:"lat"`
	Lng          float64 `json:"lng"`
	Kind         int     `json:"kind"`
	Significance float64 `json:"significance"`
}

// SaveWorld writes the road network and landmark set as JSON.
func SaveWorld(w io.Writer, g *roadnet.Graph, lms *landmark.Set) error {
	wf := worldFile{Version: FormatVersion}
	for _, n := range g.Nodes() {
		wf.Nodes = append(wf.Nodes, nodeJSON{Lat: n.Pt.Lat, Lng: n.Pt.Lng, TurningPoint: n.TurningPoint})
	}
	for i := range g.Edges() {
		e := g.Edge(roadnet.EdgeID(i))
		ej := edgeJSON{
			From: int(e.From), To: int(e.To), Name: e.Name,
			Grade: int(e.Grade), Width: e.Width, Direction: int(e.Direction),
			Speed: e.SpeedLimitKmh,
		}
		for _, p := range e.Geometry {
			ej.Geometry = append(ej.Geometry, [2]float64{p.Lat, p.Lng})
		}
		wf.Edges = append(wf.Edges, ej)
	}
	for _, lm := range lms.All() {
		wf.Landmarks = append(wf.Landmarks, landmarkJSON{
			Name: lm.Name, Lat: lm.Pt.Lat, Lng: lm.Pt.Lng,
			Kind: int(lm.Kind), Significance: lm.Significance,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wf)
}

// LoadWorld reads a world written by SaveWorld.
func LoadWorld(r io.Reader) (*roadnet.Graph, *landmark.Set, error) {
	var wf worldFile
	if err := json.NewDecoder(r).Decode(&wf); err != nil {
		return nil, nil, fmt.Errorf("worldio: decode world: %w", err)
	}
	if wf.Version != FormatVersion {
		return nil, nil, fmt.Errorf("worldio: unsupported world version %d", wf.Version)
	}
	g := &roadnet.Graph{}
	for _, n := range wf.Nodes {
		g.AddNode(geo.Point{Lat: n.Lat, Lng: n.Lng}, n.TurningPoint)
	}
	for i, e := range wf.Edges {
		var geom geo.Polyline
		for _, p := range e.Geometry {
			geom = append(geom, geo.Point{Lat: p[0], Lng: p[1]})
		}
		id, err := g.AddEdge(roadnet.NodeID(e.From), roadnet.NodeID(e.To), e.Name,
			roadnet.Grade(e.Grade), e.Width, roadnet.Direction(e.Direction), geom)
		if err != nil {
			return nil, nil, fmt.Errorf("worldio: edge %d: %w", i, err)
		}
		g.Edge(id).SpeedLimitKmh = e.Speed
	}
	lms := make([]landmark.Landmark, 0, len(wf.Landmarks))
	for _, lm := range wf.Landmarks {
		lms = append(lms, landmark.Landmark{
			Name: lm.Name, Pt: geo.Point{Lat: lm.Lat, Lng: lm.Lng},
			Kind: landmark.Kind(lm.Kind), Significance: lm.Significance,
		})
	}
	return g, landmark.NewSet(lms), nil
}

// tripsFile is the serialized trajectory dataset.
type tripsFile struct {
	Version int         `json:"version"`
	Trips   []*traj.Raw `json:"trips"`
}

// SaveTrips writes raw trajectories as JSON.
func SaveTrips(w io.Writer, trips []*traj.Raw) error {
	return json.NewEncoder(w).Encode(tripsFile{Version: FormatVersion, Trips: trips})
}

// LoadTrips reads trajectories written by SaveTrips, validating each.
func LoadTrips(r io.Reader) ([]*traj.Raw, error) {
	var tf tripsFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, fmt.Errorf("worldio: decode trips: %w", err)
	}
	if tf.Version != FormatVersion {
		return nil, fmt.Errorf("worldio: unsupported trips version %d", tf.Version)
	}
	for i, t := range tf.Trips {
		if t == nil {
			return nil, fmt.Errorf("worldio: trip %d is null", i)
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("worldio: %w", err)
		}
	}
	return tf.Trips, nil
}
