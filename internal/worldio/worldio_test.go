package worldio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

func TestWorldRoundTrip(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 5, Cols: 5, Seed: 3})
	city.Landmarks.SetSignificance(0, 0.77)

	var buf bytes.Buffer
	if err := SaveWorld(&buf, city.Graph, city.Landmarks); err != nil {
		t.Fatal(err)
	}
	g, lms, err := LoadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != city.Graph.NumNodes() || g.NumEdges() != city.Graph.NumEdges() {
		t.Fatalf("graph shape: %d/%d nodes, %d/%d edges",
			g.NumNodes(), city.Graph.NumNodes(), g.NumEdges(), city.Graph.NumEdges())
	}
	if lms.Len() != city.Landmarks.Len() {
		t.Fatalf("landmarks: %d vs %d", lms.Len(), city.Landmarks.Len())
	}
	if lms.Get(0).Significance != 0.77 {
		t.Fatalf("significance lost: %v", lms.Get(0).Significance)
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edges()[i], city.Graph.Edges()[i]
		if a.Name != b.Name || a.Grade != b.Grade || a.Direction != b.Direction || a.Width != b.Width {
			t.Fatalf("edge %d attrs differ", i)
		}
		if len(a.Geometry) != len(b.Geometry) {
			t.Fatalf("edge %d geometry differs", i)
		}
	}
	for i := 0; i < lms.Len(); i++ {
		a, b := lms.Get(i), city.Landmarks.Get(i)
		if a.Name != b.Name || a.Kind != b.Kind || geo.Distance(a.Pt, b.Pt) > 0.01 {
			t.Fatalf("landmark %d differs", i)
		}
	}
}

func TestTripsRoundTrip(t *testing.T) {
	city := simulate.NewCity(simulate.CityOptions{Rows: 5, Cols: 5, Seed: 3})
	fleet := simulate.GenerateFleet(city, simulate.FleetOptions{NumTrips: 5, Seed: 4, FixedHour: 10})
	raws := make([]*traj.Raw, len(fleet))
	for i, tr := range fleet {
		raws[i] = tr.Raw
	}
	var buf bytes.Buffer
	if err := SaveTrips(&buf, raws); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrips(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(raws) {
		t.Fatalf("trips = %d, want %d", len(got), len(raws))
	}
	for i := range got {
		if got[i].ID != raws[i].ID || len(got[i].Samples) != len(raws[i].Samples) {
			t.Fatalf("trip %d differs", i)
		}
		if !got[i].Samples[0].T.Equal(raws[i].Samples[0].T) {
			t.Fatalf("trip %d timestamps differ", i)
		}
	}
}

func TestLoadWorldErrors(t *testing.T) {
	if _, _, err := LoadWorld(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := LoadWorld(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("future version accepted")
	}
	// An edge referencing a missing node fails.
	bad := `{"version":1,"nodes":[{"lat":1,"lng":1}],"edges":[{"from":0,"to":5,"grade":1,"width":10,"direction":1}]}`
	if _, _, err := LoadWorld(strings.NewReader(bad)); err == nil {
		t.Error("dangling edge accepted")
	}
}

func TestLoadTripsErrors(t *testing.T) {
	if _, err := LoadTrips(strings.NewReader("{")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadTrips(strings.NewReader(`{"version":2,"trips":[]}`)); err == nil {
		t.Error("future version accepted")
	}
	// Invalid trajectory (single sample) is rejected on load.
	one := &traj.Raw{ID: "x", Samples: []traj.Sample{{Pt: geo.Point{Lat: 1, Lng: 1}, T: time.Now()}}}
	var buf bytes.Buffer
	if err := SaveTrips(&buf, []*traj.Raw{one}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrips(&buf); err == nil {
		t.Error("invalid trajectory accepted")
	}
}
