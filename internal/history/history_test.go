package history

import (
	"fmt"
	"math"
	"testing"
	"time"

	"stmaker/internal/feature"
	"stmaker/internal/geo"
	"stmaker/internal/traj"
)

// sym builds a symbolic trajectory over the given landmark sequence with no
// raw backing (sufficient for route mining).
func sym(ids ...int) *traj.Symbolic {
	s := &traj.Symbolic{ID: "h"}
	t0 := time.Date(2013, 11, 2, 9, 0, 0, 0, time.UTC)
	for i, id := range ids {
		s.Visits = append(s.Visits, traj.Visit{Landmark: id, T: t0.Add(time.Duration(i) * time.Minute), RawIndex: i})
	}
	return s
}

func TestPopularRoutePrefersFrequentPath(t *testing.T) {
	// 0→1→3 travelled 8 times, 0→2→3 travelled 2 times.
	var corpus []*traj.Symbolic
	for i := 0; i < 8; i++ {
		corpus = append(corpus, sym(0, 1, 3))
	}
	for i := 0; i < 2; i++ {
		corpus = append(corpus, sym(0, 2, 3))
	}
	p := BuildPopular(corpus)
	route, ok := p.Route(0, 3)
	if !ok {
		t.Fatal("route not found")
	}
	want := []int{0, 1, 3}
	if len(route) != 3 || route[0] != want[0] || route[1] != want[1] || route[2] != want[2] {
		t.Fatalf("route = %v, want %v", route, want)
	}
	if p.TransitionCount(0, 1) != 8 || p.TransitionCount(0, 2) != 2 {
		t.Fatalf("counts: %d, %d", p.TransitionCount(0, 1), p.TransitionCount(0, 2))
	}
}

func TestPopularRouteMultiHop(t *testing.T) {
	corpus := []*traj.Symbolic{
		sym(0, 1), sym(1, 2), sym(2, 3),
	}
	p := BuildPopular(corpus)
	route, ok := p.Route(0, 3)
	if !ok {
		t.Fatal("multi-hop route not found")
	}
	if len(route) != 4 {
		t.Fatalf("route = %v", route)
	}
}

func TestPopularRouteUnreachable(t *testing.T) {
	p := BuildPopular([]*traj.Symbolic{sym(0, 1)})
	if _, ok := p.Route(1, 0); ok {
		t.Fatal("reverse route should be unreachable")
	}
	if _, ok := p.Route(5, 6); ok {
		t.Fatal("unknown landmarks should be unreachable")
	}
}

func TestPopularRouteSameLandmark(t *testing.T) {
	p := BuildPopular(nil)
	route, ok := p.Route(4, 4)
	if !ok || len(route) != 1 || route[0] != 4 {
		t.Fatalf("self route = %v ok=%v", route, ok)
	}
}

func TestPopularIgnoresSelfLoops(t *testing.T) {
	p := BuildPopular([]*traj.Symbolic{sym(0, 0, 1)})
	if p.TransitionCount(0, 0) != 0 {
		t.Fatal("self transition should be ignored")
	}
	if p.TransitionCount(0, 1) != 1 {
		t.Fatal("real transition lost")
	}
}

func TestPopularityBeatsHopCount(t *testing.T) {
	// Direct 0→3 exists but is rare (1 visit out of 11 leaving 0); the
	// detour 0→1→3 is near-certain at every hop. The max-likelihood route
	// takes the detour: -log(10/11)-log(1) < -log(1/11).
	var corpus []*traj.Symbolic
	corpus = append(corpus, sym(0, 3))
	for i := 0; i < 10; i++ {
		corpus = append(corpus, sym(0, 1, 3))
	}
	p := BuildPopular(corpus)
	route, _ := p.Route(0, 3)
	if len(route) != 3 || route[1] != 1 {
		t.Fatalf("route = %v, want detour through 1", route)
	}
}

func TestFeatureMapRegular(t *testing.T) {
	m := NewFeatureMap(2)
	m.Add(0, 1, []float64{10, 1})
	m.Add(0, 1, []float64{20, 3})
	m.Add(1, 2, []float64{50, 0})
	if m.Dims() != 2 || m.NumEdges() != 2 {
		t.Fatalf("dims=%d edges=%d", m.Dims(), m.NumEdges())
	}
	r, ok := m.Regular(0, 1)
	if !ok || math.Abs(r[0]-15) > 1e-9 || math.Abs(r[1]-2) > 1e-9 {
		t.Fatalf("regular = %v ok=%v", r, ok)
	}
	if !m.HasEdge(1, 2) || m.HasEdge(2, 1) {
		t.Fatal("HasEdge wrong")
	}
	if _, ok := m.Regular(9, 9); ok {
		t.Fatal("unknown edge should have no regular value")
	}
	// Wrong dimensionality is ignored.
	m.Add(0, 1, []float64{1})
	r2, _ := m.Regular(0, 1)
	if math.Abs(r2[0]-15) > 1e-9 {
		t.Fatal("bad-dims Add should be ignored")
	}
}

func TestFeatureMapGlobalMean(t *testing.T) {
	m := NewFeatureMap(1)
	m.Add(0, 1, []float64{10})
	m.Add(0, 1, []float64{20})
	m.Add(1, 2, []float64{60})
	mean := m.GlobalMean()
	if math.Abs(mean[0]-30) > 1e-9 {
		t.Fatalf("global mean = %v, want 30", mean)
	}
	empty := NewFeatureMap(3)
	for _, x := range empty.GlobalMean() {
		if x != 0 {
			t.Fatal("empty global mean should be zero")
		}
	}
}

func TestBuildFeatureMapFromCorpus(t *testing.T) {
	// Registry with only the speed feature so no road network is needed.
	reg := feature.NewRegistry()
	if err := reg.Register(feature.NewSpeed()); err != nil {
		t.Fatal(err)
	}
	base := geo.Point{Lat: 39.9, Lng: 116.4}
	t0 := time.Date(2013, 11, 2, 9, 0, 0, 0, time.UTC)
	mk := func(speedKmh float64) *traj.Symbolic {
		r := &traj.Raw{ID: "x"}
		step := speedKmh / 3.6 * 10
		for i := 0; i < 5; i++ {
			r.Samples = append(r.Samples, traj.Sample{
				Pt: geo.Destination(base, 90, float64(i)*step),
				T:  t0.Add(time.Duration(i*10) * time.Second),
			})
		}
		return &traj.Symbolic{ID: "x", Raw: r, Visits: []traj.Visit{
			{Landmark: 0, T: r.Start(), RawIndex: 0},
			{Landmark: 1, T: r.End(), RawIndex: 4},
		}}
	}
	corpus := []*traj.Symbolic{mk(30), mk(60)}
	ctx := feature.NewContext(nil, nil, nil)
	m := BuildFeatureMap(corpus, reg, ctx)
	r, ok := m.Regular(0, 1)
	if !ok {
		t.Fatal("edge 0→1 missing")
	}
	if math.Abs(r[0]-45) > 2 {
		t.Fatalf("regular speed = %v, want about 45", r[0])
	}
}

func TestCategoricalAggregation(t *testing.T) {
	m := NewFeatureMap(2)
	m.MarkCategorical(0)
	// Grades 2,2,3 on one edge: mode 2; mean of dim 1 = 20.
	m.Add(0, 1, []float64{2, 10})
	m.Add(0, 1, []float64{2, 20})
	m.Add(0, 1, []float64{3, 30})
	r, ok := m.Regular(0, 1)
	if !ok {
		t.Fatal("edge missing")
	}
	if r[0] != 2 {
		t.Fatalf("categorical regular = %v, want mode 2", r[0])
	}
	if math.Abs(r[1]-20) > 1e-9 {
		t.Fatalf("numeric regular = %v, want mean 20", r[1])
	}
	// Global regular: categorical dim is the corpus-wide mode.
	m.Add(1, 2, []float64{3, 0})
	m.Add(1, 2, []float64{3, 0})
	g := m.GlobalMean()
	if g[0] != 3 && g[0] != 2 {
		t.Fatalf("global categorical = %v, want a real category", g[0])
	}
	// With counts 2×grade-2, 3×grade-3, the mode is 3.
	if g[0] != 3 {
		t.Fatalf("global mode = %v, want 3", g[0])
	}
}

func TestFlattened(t *testing.T) {
	m := NewFeatureMap(2)
	m.MarkCategorical(0)
	m.Add(0, 1, []float64{2, 10})
	m.Add(1, 2, []float64{6, 50})
	flat := m.Flattened()
	if flat.NumEdges() != 2 {
		t.Fatalf("flattened edges = %d", flat.NumEdges())
	}
	r01, _ := flat.Regular(0, 1)
	r12, _ := flat.Regular(1, 2)
	for j := range r01 {
		if r01[j] != r12[j] {
			t.Fatalf("flattened regulars differ: %v vs %v", r01, r12)
		}
	}
	if math.Abs(r01[1]-30) > 1e-9 {
		t.Fatalf("flattened numeric = %v, want corpus mean 30", r01[1])
	}
	if r01[0] != 2 && r01[0] != 6 {
		t.Fatalf("flattened categorical = %v, want a real category", r01[0])
	}
	// The original map is untouched.
	orig, _ := m.Regular(0, 1)
	if orig[1] != 10 {
		t.Fatal("Flattened mutated the source map")
	}
}

func TestRouteCaching(t *testing.T) {
	p := BuildPopular([]*traj.Symbolic{sym(0, 1, 2), sym(0, 1, 2)})
	r1, ok1 := p.Route(0, 2)
	r2, ok2 := p.Route(0, 2)
	if !ok1 || !ok2 || len(r1) != len(r2) {
		t.Fatalf("cached route differs: %v vs %v", r1, r2)
	}
	// Negative results are cached too.
	if _, ok := p.Route(2, 0); ok {
		t.Fatal("reverse should be unreachable")
	}
	if _, ok := p.Route(2, 0); ok {
		t.Fatal("cached reverse should stay unreachable")
	}
}

func TestFrequentSubroutePrefersShorterOnTies(t *testing.T) {
	// One observation each of 0→1→3 and 0→3: tie on frequency, the
	// shorter route wins.
	p := BuildPopular([]*traj.Symbolic{sym(0, 1, 3), sym(5, 0, 3, 6)})
	route, ok := p.Route(0, 3)
	if !ok || len(route) != 2 {
		t.Fatalf("route = %v, want the direct pair", route)
	}
}

// TestPopularSequencesRoundTrip proves the sequences are the complete
// state of the popular-route knowledge: rebuilding from them answers
// every route identically — the contract model persistence relies on.
func TestPopularSequencesRoundTrip(t *testing.T) {
	p := BuildPopular([]*traj.Symbolic{sym(0, 1, 2, 3), sym(0, 2, 3), sym(0, 2, 3), sym(4, 0)})
	seqs := p.Sequences()
	q := BuildPopularFromSequences(seqs)
	// Mutating the exported sequences must not touch either knowledge.
	seqs[0][0] = 99
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			pr, pok := p.Route(a, b)
			qr, qok := q.Route(a, b)
			if pok != qok {
				t.Fatalf("route %d->%d: ok %v vs %v", a, b, pok, qok)
			}
			if fmt.Sprint(pr) != fmt.Sprint(qr) {
				t.Fatalf("route %d->%d: %v vs %v", a, b, pr, qr)
			}
			if p.TransitionCount(a, b) != q.TransitionCount(a, b) {
				t.Fatalf("transition count %d->%d differs", a, b)
			}
		}
	}
}

// TestFeatureMapAggregateRoundTrip proves exporting every edge aggregate
// and re-adding it to an empty map reproduces Regular and GlobalMean
// bit-for-bit (sums are transported, not recomputed).
func TestFeatureMapAggregateRoundTrip(t *testing.T) {
	m := NewFeatureMap(2)
	m.MarkCategorical(0)
	m.Add(0, 1, []float64{2, 10.5})
	m.Add(0, 1, []float64{2, 11.25})
	m.Add(0, 1, []float64{6, 1.0 / 3.0})
	m.Add(1, 2, []float64{4, 7})

	out := NewFeatureMap(m.Dims())
	for j, c := range m.CategoricalDims() {
		if c {
			out.MarkCategorical(j)
		}
	}
	for _, e := range m.EdgesSorted() {
		n, sums, cats, ok := m.Aggregate(e[0], e[1])
		if !ok {
			t.Fatalf("edge %v vanished", e)
		}
		if err := out.AddAggregate(e[0], e[1], n, sums, cats); err != nil {
			t.Fatal(err)
		}
	}
	if out.NumEdges() != m.NumEdges() {
		t.Fatalf("edges = %d, want %d", out.NumEdges(), m.NumEdges())
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		want, _ := m.Regular(e[0], e[1])
		got, ok := out.Regular(e[0], e[1])
		if !ok {
			t.Fatalf("edge %v missing after round trip", e)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("edge %v dim %d: %v != %v", e, j, got[j], want[j])
			}
		}
	}
	gw, gg := m.GlobalMean(), out.GlobalMean()
	for j := range gw {
		if gw[j] != gg[j] {
			t.Fatalf("global mean dim %d: %v != %v", j, gg[j], gw[j])
		}
	}
}

// TestAddAggregateRejectsMismatch pins the strictness of the load path.
func TestAddAggregateRejectsMismatch(t *testing.T) {
	m := NewFeatureMap(2)
	if err := m.AddAggregate(0, 1, 1, []float64{1}, nil); err == nil {
		t.Error("wrong dims accepted")
	}
	if err := m.AddAggregate(0, 1, 0, []float64{1, 2}, nil); err == nil {
		t.Error("zero count accepted")
	}
	if err := m.AddAggregate(0, 1, 1, []float64{1, 2}, make([]map[float64]int, 3)); err == nil {
		t.Error("wrong cats dims accepted")
	}
	if m.NumEdges() != 0 {
		t.Error("failed AddAggregate mutated the map")
	}
}
