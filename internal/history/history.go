// Package history distils a corpus of historical symbolic trajectories
// into the two knowledge structures STMaker's feature selection needs
// (§V): the most popular route between two landmarks (mined in the spirit
// of Chen, Shen and Zhou, ICDE 2011), and the historical feature map — a
// directed landmark graph whose edges carry the regular (average) value of
// each moving feature.
package history

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"stmaker/internal/feature"
	"stmaker/internal/traj"
)

// Popular mines popular routes from the training corpus, in the spirit of
// Chen, Shen and Zhou (ICDE 2011). The most popular route from a to b is
// the most frequently observed contiguous landmark subroute from a to b
// across the corpus; when a→b was never observed contiguously, it falls
// back to the maximum-likelihood landmark path under first-order
// transition probabilities (Dijkstra over −log-probability costs).
type Popular struct {
	counts    map[[2]int]int // transitions a→b observed
	outCounts map[int]int    // transitions leaving a
	adj       map[int][]int  // successors of a

	seqs [][]int          // landmark sequences of the corpus
	occ  map[int][]occRef // positions of each landmark

	mu    sync.Mutex
	cache map[[2]int][]int
}

type occRef struct {
	seq, pos int
}

// BuildPopular accumulates transition statistics and the subroute index
// from the corpus.
func BuildPopular(corpus []*traj.Symbolic) *Popular {
	seqs := make([][]int, 0, len(corpus))
	for _, s := range corpus {
		seqs = append(seqs, s.LandmarkIDs())
	}
	return BuildPopularFromSequences(seqs)
}

// BuildPopularFromSequences rebuilds the popular-route knowledge from the
// corpus landmark sequences alone — the serialization-friendly core of
// BuildPopular. Every derived structure (transition counts, adjacency,
// the occurrence index) is a deterministic function of the sequences, so
// a Popular round-trips through Sequences and back with identical routes.
// The sequences are copied; the caller keeps ownership of seqs.
func BuildPopularFromSequences(seqs [][]int) *Popular {
	p := &Popular{
		counts:    make(map[[2]int]int),
		outCounts: make(map[int]int),
		adj:       make(map[int][]int),
		occ:       make(map[int][]occRef),
		cache:     make(map[[2]int][]int),
	}
	for _, ids := range seqs {
		ids = append([]int(nil), ids...)
		si := len(p.seqs)
		p.seqs = append(p.seqs, ids)
		for i, id := range ids {
			p.occ[id] = append(p.occ[id], occRef{seq: si, pos: i})
		}
		for i := 1; i < len(ids); i++ {
			a, b := ids[i-1], ids[i]
			if a == b {
				continue
			}
			key := [2]int{a, b}
			if p.counts[key] == 0 {
				p.adj[a] = append(p.adj[a], b)
			}
			p.counts[key]++
			p.outCounts[a]++
		}
	}
	return p
}

// Sequences returns a deep copy of the corpus landmark sequences the
// knowledge was built from — the minimal state needed to reconstruct the
// Popular via BuildPopularFromSequences (model persistence).
func (p *Popular) Sequences() [][]int {
	out := make([][]int, len(p.seqs))
	for i, s := range p.seqs {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// TransitionCount returns how many times a→b was observed.
func (p *Popular) TransitionCount(a, b int) int {
	return p.counts[[2]int{a, b}]
}

// routeItem is a priority-queue element for the max-likelihood search.
type routeItem struct {
	node int
	cost float64
	idx  int
}

type routePQ []*routeItem

func (q routePQ) Len() int            { return len(q) }
func (q routePQ) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q routePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *routePQ) Push(x interface{}) { it := x.(*routeItem); it.idx = len(*q); *q = append(*q, it) }
func (q *routePQ) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	old[len(old)-1] = nil
	*q = old[:len(old)-1]
	return it
}

// Route returns the most popular landmark path from a to b (inclusive of
// both endpoints), or false when b is not reachable from a in the corpus.
// Results are cached; the method is safe for concurrent use.
func (p *Popular) Route(a, b int) ([]int, bool) {
	if a == b {
		return []int{a}, true
	}
	key := [2]int{a, b}
	p.mu.Lock()
	if cached, ok := p.cache[key]; ok {
		p.mu.Unlock()
		return cached, cached != nil
	}
	p.mu.Unlock()

	route, ok := p.computeRoute(a, b)
	p.mu.Lock()
	if ok {
		p.cache[key] = route
	} else {
		p.cache[key] = nil
	}
	p.mu.Unlock()
	return route, ok
}

// computeRoute first mines the most frequent observed subroute, then falls
// back to the max-likelihood transition path.
func (p *Popular) computeRoute(a, b int) ([]int, bool) {
	if route := p.frequentSubroute(a, b); route != nil {
		return route, true
	}
	return p.likelihoodRoute(a, b)
}

// frequentSubroute scans every corpus occurrence of a, extracts the
// shortest contiguous continuation reaching b within that trajectory, and
// returns the most frequent such subroute (ties: shorter first, then
// lexicographically smaller, for determinism). Nil when never observed.
func (p *Popular) frequentSubroute(a, b int) []int {
	counts := make(map[string]int)
	routes := make(map[string][]int)
	for _, ref := range p.occ[a] {
		seq := p.seqs[ref.seq]
		for j := ref.pos + 1; j < len(seq); j++ {
			if seq[j] != b {
				continue
			}
			sub := seq[ref.pos : j+1]
			k := routeKey(sub)
			counts[k]++
			if _, seen := routes[k]; !seen {
				routes[k] = append([]int(nil), sub...)
			}
			break // take the first (shortest-span) reach of b per occurrence
		}
	}
	var bestKey string
	best := -1
	for k, n := range counts {
		switch {
		case n > best,
			n == best && len(routes[k]) < len(routes[bestKey]),
			n == best && len(routes[k]) == len(routes[bestKey]) && k < bestKey:
			best, bestKey = n, k
		}
	}
	if best < 0 {
		return nil
	}
	return routes[bestKey]
}

func routeKey(ids []int) string {
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(id))
		sb.WriteByte(',')
	}
	return sb.String()
}

// likelihoodRoute is the fallback Dijkstra over −log transition
// probabilities.
func (p *Popular) likelihoodRoute(a, b int) ([]int, bool) {
	dist := map[int]float64{a: 0}
	prev := map[int]int{}
	done := map[int]bool{}
	q := &routePQ{}
	heap.Init(q)
	heap.Push(q, &routeItem{node: a, cost: 0})
	for q.Len() > 0 {
		cur := heap.Pop(q).(*routeItem)
		u := cur.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == b {
			break
		}
		total := p.outCounts[u]
		if total == 0 {
			continue
		}
		for _, v := range p.adj[u] {
			if done[v] {
				continue
			}
			prob := float64(p.counts[[2]int{u, v}]) / float64(total)
			// prob ≤ 1 so the edge cost is non-negative; Dijkstra applies.
			cost := dist[u] - math.Log(prob)
			if old, seen := dist[v]; !seen || cost < old {
				dist[v] = cost
				prev[v] = u
				heap.Push(q, &routeItem{node: v, cost: cost})
			}
		}
	}
	if !done[b] {
		return nil, false
	}
	var rev []int
	for at := b; at != a; at = prev[at] {
		rev = append(rev, at)
	}
	rev = append(rev, a)
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, true
}

// FeatureMap is the historical feature map of §V-B: a directed graph over
// landmarks where each edge (li, lj) — present when some training
// trajectory travelled li→lj directly — is annotated with the average
// value r of every feature on that transition.
type FeatureMap struct {
	dims        int
	categorical []bool
	sums        map[[2]int][]float64
	// catCounts[key][j] is the per-value histogram of categorical
	// dimension j on the transition; nil for numeric dimensions.
	catCounts map[[2]int][]map[float64]int
	n         map[[2]int]int
}

// BuildFeatureMap extracts every feature of every segment of the corpus
// and aggregates per landmark transition. The registry and context must
// match those used at summarization time. Numeric features aggregate by
// mean; categorical features (per the registry's descriptors) by mode —
// averaging category codes would produce values that match no real
// category and poison the edit-distance comparison.
func BuildFeatureMap(corpus []*traj.Symbolic, reg *feature.Registry, ctx *feature.Context) *FeatureMap {
	m := NewFeatureMap(reg.Len())
	for j, d := range reg.Descriptors() {
		if !d.Numeric {
			m.MarkCategorical(j)
		}
	}
	for _, s := range corpus {
		for _, seg := range s.Segments() {
			v := reg.Extract(seg, ctx)
			m.Add(seg.From.Landmark, seg.To.Landmark, v)
		}
	}
	return m
}

// NewFeatureMap returns an empty map for dims features (all numeric), for
// incremental construction.
func NewFeatureMap(dims int) *FeatureMap {
	return &FeatureMap{
		dims:        dims,
		categorical: make([]bool, dims),
		sums:        make(map[[2]int][]float64),
		catCounts:   make(map[[2]int][]map[float64]int),
		n:           make(map[[2]int]int),
	}
}

// MarkCategorical declares dimension j categorical: its regular value is
// the modal observed value rather than the mean. Must be called before
// any Add.
func (m *FeatureMap) MarkCategorical(j int) { m.categorical[j] = true }

// Dims returns the feature dimensionality.
func (m *FeatureMap) Dims() int { return m.dims }

// Add records one observed feature vector for the transition a→b.
func (m *FeatureMap) Add(a, b int, v []float64) {
	if len(v) != m.dims {
		return
	}
	key := [2]int{a, b}
	s := m.sums[key]
	if s == nil {
		s = make([]float64, m.dims)
		m.sums[key] = s
	}
	for j, x := range v {
		s[j] += x
	}
	var counts []map[float64]int
	for j, x := range v {
		if !m.categorical[j] {
			continue
		}
		if counts == nil {
			counts = m.catCounts[key]
			if counts == nil {
				counts = make([]map[float64]int, m.dims)
				m.catCounts[key] = counts
			}
		}
		if counts[j] == nil {
			counts[j] = make(map[float64]int)
		}
		counts[j][x]++
	}
	m.n[key]++
}

// Regular returns the regular feature vector r of the transition a→b —
// per-dimension mean (numeric) or mode (categorical) — or false when the
// corpus never travelled it.
func (m *FeatureMap) Regular(a, b int) ([]float64, bool) {
	key := [2]int{a, b}
	n := m.n[key]
	if n == 0 {
		return nil, false
	}
	out := make([]float64, m.dims)
	counts := m.catCounts[key]
	for j, s := range m.sums[key] {
		if m.categorical[j] && counts != nil && counts[j] != nil {
			best, bestN := 0.0, 0
			for val, c := range counts[j] {
				if c > bestN || (c == bestN && val < best) {
					best, bestN = val, c
				}
			}
			out[j] = best
			continue
		}
		out[j] = s / float64(n)
	}
	return out, true
}

// Flattened returns a copy of the map covering the same transitions but
// carrying the global regular vector on every one — the crude baseline the
// ablation benches compare the per-edge map against.
func (m *FeatureMap) Flattened() *FeatureMap {
	g := m.GlobalMean()
	out := NewFeatureMap(m.dims)
	copy(out.categorical, m.categorical)
	for key := range m.n {
		out.Add(key[0], key[1], g)
	}
	return out
}

// HasEdge reports whether the corpus ever travelled a→b directly.
func (m *FeatureMap) HasEdge(a, b int) bool { return m.n[[2]int{a, b}] > 0 }

// NumEdges returns the number of annotated transitions.
func (m *FeatureMap) NumEdges() int { return len(m.n) }

// CategoricalDims returns a copy of the per-dimension categorical flags.
func (m *FeatureMap) CategoricalDims() []bool {
	return append([]bool(nil), m.categorical...)
}

// EdgesSorted returns every annotated transition ordered by (from, to) —
// a deterministic iteration order for serialization, so saving the same
// map twice yields identical bytes.
func (m *FeatureMap) EdgesSorted() [][2]int {
	out := make([][2]int, 0, len(m.n))
	for key := range m.n {
		out = append(out, key)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Aggregate exposes the raw accumulated state of the transition a→b —
// observation count, per-dimension sums and per-categorical-dimension
// value histograms — for serialization. Everything returned is a copy;
// ok is false when the corpus never travelled the transition. Feeding the
// same values to AddAggregate on an empty map with the same categorical
// flags reproduces Regular bit-for-bit, because sums are transported
// rather than recomputed.
func (m *FeatureMap) Aggregate(a, b int) (n int, sums []float64, cats []map[float64]int, ok bool) {
	key := [2]int{a, b}
	n = m.n[key]
	if n == 0 {
		return 0, nil, nil, false
	}
	sums = append([]float64(nil), m.sums[key]...)
	if src := m.catCounts[key]; src != nil {
		cats = make([]map[float64]int, m.dims)
		for j, counts := range src {
			if counts == nil {
				continue
			}
			cats[j] = make(map[float64]int, len(counts))
			for v, c := range counts {
				cats[j][v] = c
			}
		}
	}
	return n, sums, cats, true
}

// AddAggregate merges a previously exported aggregate back into the map
// (model deserialization): n observations whose per-dimension sums are
// sums and whose categorical histograms are cats (nil when no dimension
// is categorical; entries for numeric dimensions are ignored). Inputs are
// copied. It returns an error instead of silently dropping mismatched
// dimensionality, since a load path must not half-apply a model.
func (m *FeatureMap) AddAggregate(a, b int, n int, sums []float64, cats []map[float64]int) error {
	if len(sums) != m.dims {
		return fmt.Errorf("history: aggregate has %d dims, map has %d", len(sums), m.dims)
	}
	if n <= 0 {
		return fmt.Errorf("history: aggregate for %d->%d has non-positive count %d", a, b, n)
	}
	if cats != nil && len(cats) != m.dims {
		return fmt.Errorf("history: aggregate categorical histograms have %d dims, map has %d", len(cats), m.dims)
	}
	key := [2]int{a, b}
	s := m.sums[key]
	if s == nil {
		s = make([]float64, m.dims)
		m.sums[key] = s
	}
	for j, x := range sums {
		s[j] += x
	}
	for j := range m.categorical {
		if !m.categorical[j] || cats == nil || cats[j] == nil {
			continue
		}
		counts := m.catCounts[key]
		if counts == nil {
			counts = make([]map[float64]int, m.dims)
			m.catCounts[key] = counts
		}
		if counts[j] == nil {
			counts[j] = make(map[float64]int, len(cats[j]))
		}
		for v, c := range cats[j] {
			counts[j][v] += c
		}
	}
	m.n[key] += n
	return nil
}

// Clone returns a deep copy of the map: mutating either copy afterwards
// (Add, AddAggregate) never disturbs the other. It is the freeze step of
// incremental ingestion — the live cumulative map keeps absorbing trips
// while a clone of it is built into an immutable published Model.
func (m *FeatureMap) Clone() *FeatureMap {
	out := NewFeatureMap(m.dims)
	copy(out.categorical, m.categorical)
	for key, s := range m.sums {
		out.sums[key] = append([]float64(nil), s...)
	}
	for key, cats := range m.catCounts {
		cc := make([]map[float64]int, m.dims)
		for j, counts := range cats {
			if counts == nil {
				continue
			}
			c2 := make(map[float64]int, len(counts))
			for v, c := range counts {
				c2[v] = c
			}
			cc[j] = c2
		}
		out.catCounts[key] = cc
	}
	for key, n := range m.n {
		out.n[key] = n
	}
	return out
}

// GlobalMean returns the corpus-wide regular value of every feature — the
// mean for numeric dimensions and the mode for categorical ones. It is
// the substitution value for transitions the corpus never travelled, and
// the crude baseline the ablation benches compare the per-edge map
// against.
func (m *FeatureMap) GlobalMean() []float64 {
	out := make([]float64, m.dims)
	var total int
	catTotals := make([]map[float64]int, m.dims)
	for key, s := range m.sums {
		for j, x := range s {
			out[j] += x
		}
		total += m.n[key]
		for j, counts := range m.catCounts[key] {
			if counts == nil {
				continue
			}
			if catTotals[j] == nil {
				catTotals[j] = make(map[float64]int)
			}
			for val, c := range counts {
				catTotals[j][val] += c
			}
		}
	}
	if total > 0 {
		for j := range out {
			out[j] /= float64(total)
		}
	}
	for j := range out {
		if !m.categorical[j] || catTotals[j] == nil {
			continue
		}
		best, bestN := 0.0, 0
		for val, c := range catTotals[j] {
			if c > bestN || (c == bestN && val < best) {
				best, bestN = val, c
			}
		}
		out[j] = best
	}
	return out
}
