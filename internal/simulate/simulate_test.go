package simulate

import (
	"math/rand"
	"testing"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/landmark"
	"stmaker/internal/roadnet"
)

func smallCity(t *testing.T) *City {
	t.Helper()
	return NewCity(CityOptions{Rows: 6, Cols: 6, BlockMeters: 500, Seed: 7})
}

func TestNewCityStructure(t *testing.T) {
	c := smallCity(t)
	if c.Graph.NumNodes() != 36 {
		t.Fatalf("nodes = %d, want 36", c.Graph.NumNodes())
	}
	// 6 rows × 5 + 6 cols × 5 = 60 street segments.
	if c.Graph.NumEdges() != 60 {
		t.Fatalf("edges = %d, want 60", c.Graph.NumEdges())
	}
	grades := make(map[roadnet.Grade]int)
	oneWay := 0
	for _, e := range c.Graph.Edges() {
		grades[e.Grade]++
		if e.Direction == roadnet.OneWay {
			oneWay++
		}
		if e.Name == "" {
			t.Fatal("unnamed road")
		}
	}
	if grades[roadnet.GradeHighway] == 0 || grades[roadnet.GradeExpress] == 0 || grades[roadnet.GradeVillage] == 0 {
		t.Fatalf("grade mix missing levels: %v", grades)
	}
	if oneWay == 0 {
		t.Fatal("no one-way streets generated")
	}
	if c.Landmarks.Len() <= 36 {
		t.Fatalf("landmarks = %d, want intersections plus POI clusters", c.Landmarks.Len())
	}
	if c.Rows() != 6 || c.Cols() != 6 {
		t.Fatal("dims wrong")
	}
}

func TestCityConnectivity(t *testing.T) {
	c := smallCity(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		a, b := c.RandomNode(rng), c.RandomNode(rng)
		if a == b {
			continue
		}
		if _, err := c.Graph.ShortestPath(a, b, roadnet.ByTravelTime); err != nil {
			t.Fatalf("city not strongly connected: %d→%d: %v", a, b, err)
		}
	}
}

func TestCityDeterministic(t *testing.T) {
	a := NewCity(CityOptions{Rows: 5, Cols: 5, Seed: 11})
	b := NewCity(CityOptions{Rows: 5, Cols: 5, Seed: 11})
	if a.Graph.NumEdges() != b.Graph.NumEdges() || a.Landmarks.Len() != b.Landmarks.Len() {
		t.Fatal("same seed produced different cities")
	}
	for i := range a.Graph.Edges() {
		ea, eb := a.Graph.Edge(roadnet.EdgeID(i)), b.Graph.Edge(roadnet.EdgeID(i))
		if ea.Direction != eb.Direction || ea.Grade != eb.Grade {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestNoOneWayOptOut(t *testing.T) {
	c := NewCity(CityOptions{Rows: 5, Cols: 5, Seed: 2, OneWayFraction: -1})
	for _, e := range c.Graph.Edges() {
		if e.Direction == roadnet.OneWay {
			t.Fatal("one-way street despite opt-out")
		}
	}
}

func TestCongestionModelShape(t *testing.T) {
	if !(CongestionFactor(8) < CongestionFactor(12) && CongestionFactor(12) < CongestionFactor(2)) {
		t.Fatal("congestion ordering wrong: rush < day < night expected")
	}
	if !(StayProbability(8) > StayProbability(12) && StayProbability(12) > StayProbability(2)) {
		t.Fatal("stay probability ordering wrong")
	}
	if OverspeedProbability(23) <= OverspeedProbability(8) {
		t.Fatal("overspeed should peak at night")
	}
	if CongestionFactor(-16) != CongestionFactor(8) || CongestionFactor(32) != CongestionFactor(8) {
		t.Fatal("hour normalization wrong")
	}
}

func TestGenerateFleetBasics(t *testing.T) {
	c := smallCity(t)
	trips := GenerateFleet(c, FleetOptions{NumTrips: 30, Seed: 5, FixedHour: -1})
	if len(trips) < 25 {
		t.Fatalf("trips generated = %d, want most of 30", len(trips))
	}
	for _, tr := range trips {
		if err := tr.Raw.Validate(); err != nil {
			t.Fatalf("invalid trajectory %s: %v", tr.Raw.ID, err)
		}
		if len(tr.Path) < 2 {
			t.Fatalf("trip %s path too short", tr.Raw.ID)
		}
		if tr.Raw.Duration() <= 0 {
			t.Fatalf("trip %s has no duration", tr.Raw.ID)
		}
		// Samples stay within a buffered city bounding box.
		box := geo.EmptyBBox()
		for _, n := range c.Graph.Nodes() {
			box.Extend(n.Pt)
		}
		box = box.Buffer(500)
		for _, s := range tr.Raw.Samples {
			if !box.Contains(s.Pt) {
				t.Fatalf("trip %s leaves the city: %v", tr.Raw.ID, s.Pt)
			}
		}
	}
}

func TestFleetDeterministic(t *testing.T) {
	c := smallCity(t)
	a := GenerateFleet(c, FleetOptions{NumTrips: 10, Seed: 9, FixedHour: -1})
	b := GenerateFleet(c, FleetOptions{NumTrips: 10, Seed: 9, FixedHour: -1})
	if len(a) != len(b) {
		t.Fatal("nondeterministic trip count")
	}
	for i := range a {
		if len(a[i].Raw.Samples) != len(b[i].Raw.Samples) {
			t.Fatalf("trip %d sample counts differ", i)
		}
		if len(a[i].Truth) != len(b[i].Truth) {
			t.Fatalf("trip %d truths differ", i)
		}
	}
}

func TestCalmFleetHasNoEvents(t *testing.T) {
	c := smallCity(t)
	trips := GenerateFleet(c, FleetOptions{NumTrips: 20, Seed: 4, Calm: true, FixedHour: -1})
	for _, tr := range trips {
		if len(tr.Truth) != 0 {
			t.Fatalf("calm trip has events: %+v", tr.Truth)
		}
	}
}

func TestRushHourSlowerThanNight(t *testing.T) {
	c := smallCity(t)
	rush := GenerateFleet(c, FleetOptions{NumTrips: 40, Seed: 6, FixedHour: 8, Calm: true})
	night := GenerateFleet(c, FleetOptions{NumTrips: 40, Seed: 6, FixedHour: 2, Calm: true})
	avg := func(trips []*Trip) float64 {
		var sum float64
		for _, tr := range trips {
			sum += tr.Raw.AverageSpeedKmh()
		}
		return sum / float64(len(trips))
	}
	if avg(rush) >= avg(night)*0.8 {
		t.Fatalf("rush avg %.1f should be well below night avg %.1f", avg(rush), avg(night))
	}
}

func TestEventInjectionAppears(t *testing.T) {
	c := smallCity(t)
	trips := GenerateFleet(c, FleetOptions{NumTrips: 150, Seed: 8, FixedHour: 8})
	counts := make(map[EventKind]int)
	for _, tr := range trips {
		for _, e := range tr.Truth {
			counts[e.Kind]++
		}
	}
	for _, kind := range []EventKind{EventStay, EventDetour} {
		if counts[kind] == 0 {
			t.Fatalf("no %v events in 150 rush-hour trips", kind)
		}
	}
	// U-turn legs require long edges; with 500m blocks they occur but may
	// be rarer.
	if counts[EventUTurn]+counts[EventOverspeed] == 0 {
		t.Fatal("no u-turn or overspeed events at all")
	}
	if !trips[0].HasEvent(EventStay) && !trips[0].HasEvent(EventDetour) &&
		!trips[0].HasEvent(EventUTurn) && !trips[0].HasEvent(EventOverspeed) {
		// Not all trips must have events; just exercise HasEvent.
		_ = trips[0].HasEvent(EventCongestion)
	}
}

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EventStay: "stay", EventUTurn: "u-turn", EventDetour: "detour",
		EventOverspeed: "overspeed", EventCongestion: "congestion",
		EventKind(99): "event-99",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestGenerateCheckinsZipf(t *testing.T) {
	c := smallCity(t)
	visits := GenerateCheckins(c.Landmarks, CheckinOptions{Seed: 3})
	if len(visits) == 0 {
		t.Fatal("no visits")
	}
	counts := make(map[int]int)
	for _, v := range visits {
		if v.Landmark < 0 || v.Landmark >= c.Landmarks.Len() {
			t.Fatalf("visit out of range: %+v", v)
		}
		counts[v.Landmark]++
	}
	// Long tail: the most-visited landmark should dominate the median.
	maxN := 0
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < len(visits)/10 {
		t.Fatalf("no popularity head: max count %d of %d visits", maxN, len(visits))
	}
}

func TestGenerateCheckinsEmptySet(t *testing.T) {
	if got := GenerateCheckins(landmark.NewSet(nil), CheckinOptions{}); got != nil {
		t.Fatalf("empty set visits = %v", got)
	}
}

func TestSubPolyline(t *testing.T) {
	base := geo.Point{Lat: 39.9, Lng: 116.4}
	pl := geo.Polyline{base, geo.Destination(base, 90, 1000)}
	mid := subPolyline(pl, 200, 700)
	if got := mid.Length(); got < 490 || got > 510 {
		t.Fatalf("subPolyline length = %v, want about 500", got)
	}
	// Swapped bounds behave identically.
	swapped := subPolyline(pl, 700, 200)
	if got := swapped.Length(); got < 490 || got > 510 {
		t.Fatalf("swapped length = %v", got)
	}
	rev := reverse(mid)
	if rev[0] != mid[len(mid)-1] || rev[len(rev)-1] != mid[0] {
		t.Fatal("reverse endpoints wrong")
	}
}

func TestTripTimestampsMonotonic(t *testing.T) {
	c := smallCity(t)
	trips := GenerateFleet(c, FleetOptions{NumTrips: 20, Seed: 12, FixedHour: 8})
	for _, tr := range trips {
		for i := 1; i < len(tr.Raw.Samples); i++ {
			if tr.Raw.Samples[i].T.Before(tr.Raw.Samples[i-1].T) {
				t.Fatalf("trip %s timestamps decrease", tr.Raw.ID)
			}
		}
		if tr.Start.IsZero() {
			t.Fatal("start missing")
		}
		if tr.Raw.Duration() < 30*time.Second {
			t.Fatalf("trip %s implausibly short: %v", tr.Raw.ID, tr.Raw.Duration())
		}
	}
}

func TestCityOptionDefaultsAndNodeAt(t *testing.T) {
	c := NewCity(CityOptions{}) // all defaults
	if c.Rows() != 12 || c.Cols() != 12 {
		t.Fatalf("default grid = %dx%d", c.Rows(), c.Cols())
	}
	if got := c.NodeAt(0, 0); c.Graph.Node(got).Pt != c.Graph.Node(0).Pt {
		t.Fatal("NodeAt(0,0) mismatch")
	}
	if got := c.NodeAt(2, 3); int(got) != 2*12+3 {
		t.Fatalf("NodeAt(2,3) = %d", got)
	}
	// Clamped one-way fraction.
	over := NewCity(CityOptions{Rows: 4, Cols: 4, Seed: 2, OneWayFraction: 5})
	if over.Graph.NumEdges() == 0 {
		t.Fatal("clamped city empty")
	}
}

func TestFleetOptionDefaults(t *testing.T) {
	o := FleetOptions{}.withDefaults()
	if o.NumTrips != 200 || o.Taxis != 40 || o.MinHops != 6 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	if o.SampleInterval != 5*time.Second {
		t.Fatalf("sample interval = %v", o.SampleInterval)
	}
	if o.StartDay.IsZero() {
		t.Fatal("start day unset")
	}
}
