package simulate

import (
	"math/rand"

	"stmaker/internal/hits"
	"stmaker/internal/landmark"
)

// CheckinOptions configures the LBSN check-in generator.
type CheckinOptions struct {
	// Travellers is the number of distinct users (default 200).
	Travellers int
	// Visits is the total number of check-ins (default 20× landmarks).
	Visits int
	// ZipfS is the skew of landmark popularity (default 1.2); larger means
	// a heavier head.
	ZipfS float64
	// Seed drives all randomness (default 1).
	Seed int64
}

func (o CheckinOptions) withDefaults(numLandmarks int) CheckinOptions {
	if o.Travellers <= 0 {
		o.Travellers = 200
	}
	if o.Visits <= 0 {
		o.Visits = 20 * numLandmarks
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// GenerateCheckins produces traveller→landmark visits with Zipf-distributed
// landmark popularity, standing in for the paper's LBSN check-in records.
// POI landmarks are favoured over turning points by a popularity permutation
// that puts POIs first.
func GenerateCheckins(set *landmark.Set, opts CheckinOptions) []hits.Visit {
	n := set.Len()
	if n == 0 {
		return nil
	}
	opts = opts.withDefaults(n)
	rng := rand.New(rand.NewSource(opts.Seed))

	// Rank landmarks: POIs first (shuffled), then turning points
	// (shuffled). The Zipf head then lands mostly on POIs, mirroring how
	// check-ins concentrate on real points of interest.
	var pois, turns []int
	for _, lm := range set.All() {
		if lm.Kind == landmark.KindPOI {
			pois = append(pois, lm.ID)
		} else {
			turns = append(turns, lm.ID)
		}
	}
	rng.Shuffle(len(pois), func(i, j int) { pois[i], pois[j] = pois[j], pois[i] })
	rng.Shuffle(len(turns), func(i, j int) { turns[i], turns[j] = turns[j], turns[i] })
	ranked := append(append([]int{}, pois...), turns...)

	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(n-1))
	visits := make([]hits.Visit, 0, opts.Visits)
	for i := 0; i < opts.Visits; i++ {
		visits = append(visits, hits.Visit{
			Traveller: rng.Intn(opts.Travellers),
			Landmark:  ranked[int(zipf.Uint64())],
		})
	}
	return visits
}
