package simulate

// The traffic model drives the time-of-day contrasts the paper's Fig. 8
// measures: rush hours are congested (slow speeds, frequent stops), the
// rest of the daytime is busy, and nights are free-flowing. All rates are
// per simulated trip and reused by the fleet generator.

// CongestionFactor multiplies free-flow speed for the given hour of day
// (fractional hours allowed). Rush hours 7–9 and 17–19 are most congested;
// nights flow freely.
func CongestionFactor(hour float64) float64 {
	h := normalizeHour(hour)
	switch {
	case h >= 7 && h < 9, h >= 17 && h < 19:
		return 0.45
	case h >= 6 && h < 7, h >= 9 && h < 17, h >= 19 && h < 21:
		return 0.72
	default:
		return 1.0
	}
}

// StayProbability is the chance of a dwell (traffic light queue, short
// stop) when passing an intersection at the given hour.
func StayProbability(hour float64) float64 {
	h := normalizeHour(hour)
	switch {
	case h >= 7 && h < 9, h >= 17 && h < 19:
		return 0.30
	case h >= 6 && h < 21:
		return 0.15
	default:
		return 0.03
	}
}

// DetourProbability is the chance a trip leaves the popular (fastest)
// route, higher in congestion when drivers dodge traffic.
func DetourProbability(hour float64) float64 {
	h := normalizeHour(hour)
	switch {
	case h >= 7 && h < 9, h >= 17 && h < 19:
		return 0.55
	case h >= 6 && h < 21:
		return 0.30
	default:
		return 0.10
	}
}

// UTurnProbability is the chance a trip contains a U-turn, slightly higher
// in the busy hours (missed turns, blocked streets).
func UTurnProbability(hour float64) float64 {
	h := normalizeHour(hour)
	switch {
	case h >= 7 && h < 9, h >= 17 && h < 19:
		return 0.16
	case h >= 6 && h < 21:
		return 0.09
	default:
		return 0.03
	}
}

// OverspeedProbability is the chance of an overspeed burst on some edge,
// higher at night on empty roads.
func OverspeedProbability(hour float64) float64 {
	h := normalizeHour(hour)
	switch {
	case h >= 21 || h < 6:
		return 0.10
	case h >= 7 && h < 9, h >= 17 && h < 19:
		return 0.02
	default:
		return 0.05
	}
}

func normalizeHour(h float64) float64 {
	for h < 0 {
		h += 24
	}
	for h >= 24 {
		h -= 24
	}
	return h
}
