package simulate

import (
	"fmt"
	"math/rand"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
)

// EventKind labels a ground-truth anomaly injected into a simulated trip.
type EventKind int

// The injected event kinds. The user-study surrogate grades summaries
// against these.
const (
	EventStay EventKind = iota
	EventUTurn
	EventDetour
	EventOverspeed
	EventCongestion
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStay:
		return "stay"
	case EventUTurn:
		return "u-turn"
	case EventDetour:
		return "detour"
	case EventOverspeed:
		return "overspeed"
	case EventCongestion:
		return "congestion"
	default:
		return fmt.Sprintf("event-%d", int(k))
	}
}

// Event is one injected ground-truth anomaly.
type Event struct {
	Kind     EventKind
	At       geo.Point
	T        time.Time
	Duration time.Duration
}

// Trip is a simulated taxi trip: the raw trajectory plus its ground truth.
type Trip struct {
	Raw   *traj.Raw
	Truth []Event
	// Path is the node sequence the trip was generated along.
	Path []roadnet.NodeID
	// Start is the departure time.
	Start time.Time
}

// HasEvent reports whether the trip's ground truth contains the kind.
func (t *Trip) HasEvent(kind EventKind) bool {
	for _, e := range t.Truth {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// FleetOptions configures the taxi-fleet generator.
type FleetOptions struct {
	// NumTrips is the number of trips to generate (default 200).
	NumTrips int
	// Taxis is the fleet size trips are attributed to (default 40).
	Taxis int
	// StartDay anchors departure times (default 2013-11-02 00:00 UTC, the
	// collection period of the paper's dataset).
	StartDay time.Time
	// FixedHour pins every departure to the given hour of day when >= 0;
	// -1 (default via zero value handling below: use -1 explicitly)
	// spreads departures over 24 hours.
	FixedHour float64
	// SampleInterval is the GPS sampling period (default 5s).
	SampleInterval time.Duration
	// MinHops is the minimum number of intersections per trip (default 6).
	MinHops int
	// Seed drives all randomness (default 1).
	Seed int64
	// Calm disables all anomaly injection (stays, U-turns, detours,
	// overspeed), producing regular traffic — useful for training corpora
	// that should capture common behaviour only.
	Calm bool
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.NumTrips <= 0 {
		o.NumTrips = 200
	}
	if o.Taxis <= 0 {
		o.Taxis = 40
	}
	if o.StartDay.IsZero() {
		o.StartDay = time.Date(2013, 11, 2, 0, 0, 0, 0, time.UTC)
		// A zero FixedHour together with a zero StartDay means the caller
		// set nothing: spread over the day.
	}
	if o.SampleInterval <= 0 {
		o.SampleInterval = 5 * time.Second
	}
	if o.MinHops <= 1 {
		o.MinHops = 6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// GenerateFleet simulates opts.NumTrips taxi trips over the city.
func GenerateFleet(city *City, opts FleetOptions) []*Trip {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	trips := make([]*Trip, 0, opts.NumTrips)
	for i := 0; i < opts.NumTrips; i++ {
		hour := opts.FixedHour
		if hour < 0 {
			hour = rng.Float64() * 24
		}
		start := opts.StartDay.Add(time.Duration(hour * float64(time.Hour)))
		trip := generateTrip(city, rng, tripParams{
			id:             fmt.Sprintf("trip-%05d", i),
			taxi:           fmt.Sprintf("taxi-%03d", rng.Intn(opts.Taxis)),
			start:          start,
			hour:           hour,
			sampleInterval: opts.SampleInterval,
			minHops:        opts.MinHops,
			calm:           opts.Calm,
		})
		if trip != nil {
			trips = append(trips, trip)
		}
	}
	return trips
}

type tripParams struct {
	id, taxi       string
	start          time.Time
	hour           float64
	sampleInterval time.Duration
	minHops        int
	calm           bool
}

// leg is a contiguous piece of motion (or dwell) at a constant speed.
type leg struct {
	geom     geo.Polyline
	speedKmh float64
	dwell    time.Duration // when > 0, geom is a single stationary point
}

// generateTrip builds one trip; it returns nil when no acceptable path is
// found (rare on a connected grid).
func generateTrip(city *City, rng *rand.Rand, p tripParams) *Trip {
	// Route choice: every trip applies mild per-trip route-preference
	// noise to the travel-time weights, so trips take near-fastest routes
	// while spreading over equal-cost alternatives and covering the
	// network the way a large fleet does. Corridor-level route
	// irregularity comes from detouring drivers below.
	lo, span := 0.85, 0.3
	pref := make([]float64, city.Graph.NumEdges())
	for i := range pref {
		pref[i] = lo + rng.Float64()*span
	}
	// Detouring drivers (rat-runners dodging congested arterials) divert
	// to side streets for the whole trip — a corridor-level deviation from
	// the popular route, which routes along the high-grade roads.
	detour := !p.calm && rng.Float64() < DetourProbability(p.hour)
	weight := func(e *roadnet.Edge, rev bool) float64 {
		w := roadnet.ByTravelTime(e, rev) * pref[e.ID]
		if detour && e.Grade <= roadnet.GradeNational {
			w *= 2.2
		}
		return w
	}
	path := pickPath(city, rng, p.minHops, weight)
	if path == nil {
		return nil
	}

	trip := &Trip{Start: p.start}
	var legs []leg

	if detour {
		mid := len(path.Steps) / 2
		trip.Truth = append(trip.Truth, Event{
			Kind: EventDetour,
			At:   city.Graph.Node(path.Steps[mid].From).Pt,
			T:    p.start,
		})
	}

	congestion := CongestionFactor(p.hour)
	uturnPlanned := !p.calm && rng.Float64() < UTurnProbability(p.hour)
	uturnStep := -1
	if uturnPlanned && len(path.Steps) > 1 {
		uturnStep = 1 + rng.Intn(len(path.Steps)-1)
	}
	overspeedStep := -1
	if !p.calm && rng.Float64() < OverspeedProbability(p.hour) {
		overspeedStep = rng.Intn(len(path.Steps))
	}

	elapsedGuess := p.start
	for si, step := range path.Steps {
		geom := roadnet.EdgeGeometry(step.Edge, step.Reverse)
		speed := step.Edge.SpeedLimit() * congestion * (0.85 + rng.Float64()*0.3)
		if si == overspeedStep {
			speed = step.Edge.SpeedLimit() * (1.35 + rng.Float64()*0.25)
			trip.Truth = append(trip.Truth, Event{
				Kind: EventOverspeed,
				At:   geom.PointAt(geom.Length() / 2),
				T:    elapsedGuess,
			})
		}
		if si == uturnStep {
			legs = append(legs, uturnLegs(geom, speed, trip, elapsedGuess)...)
		} else {
			legs = append(legs, leg{geom: geom, speedKmh: speed})
		}
		elapsedGuess = elapsedGuess.Add(time.Duration(geom.Length() / (speed / 3.6) * float64(time.Second)))

		// Dwell at the intersection after the edge.
		if !p.calm && rng.Float64() < StayProbability(p.hour) {
			dwell := time.Duration(60+rng.Intn(180)) * time.Second
			at := geom[len(geom)-1]
			legs = append(legs, leg{geom: geo.Polyline{at}, dwell: dwell})
			trip.Truth = append(trip.Truth, Event{
				Kind: EventStay, At: at, T: elapsedGuess, Duration: dwell,
			})
			elapsedGuess = elapsedGuess.Add(dwell)
		}
	}

	raw := driveLegs(p.id, p.taxi, p.start, legs, p.sampleInterval, rng)
	if len(raw.Samples) < 2 {
		return nil
	}
	trip.Raw = raw
	trip.Path = path.NodeIDs(path.Steps[0].From)
	return trip
}

// pickPath selects random endpoints (biased toward activity centres) and
// routes between them under the given weight, retrying until the path has
// enough hops.
func pickPath(city *City, rng *rand.Rand, minHops int, weight roadnet.WeightFunc) *roadnet.Path {
	for attempt := 0; attempt < 10; attempt++ {
		src := pickEndpoint(city, rng)
		dst := pickEndpoint(city, rng)
		if src == dst {
			continue
		}
		path, err := city.Graph.ShortestPath(src, dst, weight)
		if err != nil || len(path.Steps) < minHops {
			continue
		}
		return path
	}
	return nil
}

// pickEndpoint returns a random intersection, half the time snapped to the
// one nearest a random activity centre.
func pickEndpoint(city *City, rng *rand.Rand) roadnet.NodeID {
	if len(city.Centers) > 0 && rng.Float64() < 0.5 {
		centre := city.Centers[rng.Intn(len(city.Centers))]
		if id, ok := city.Graph.NearestNode(centre); ok {
			return id
		}
	}
	return city.RandomNode(rng)
}

// uturnLegs splits an edge traversal into forward, reverse and resume legs
// around a U-turn, and records the event.
func uturnLegs(geom geo.Polyline, speed float64, trip *Trip, at time.Time) []leg {
	length := geom.Length()
	if length < 300 {
		return []leg{{geom: geom, speedKmh: speed}}
	}
	turnAt := length * 0.6
	back := 120.0
	fwd := subPolyline(geom, 0, turnAt)
	rev := reverse(subPolyline(geom, turnAt-back, turnAt))
	resume := subPolyline(geom, turnAt-back, length)
	trip.Truth = append(trip.Truth, Event{
		Kind: EventUTurn,
		At:   geom.PointAt(turnAt),
		T:    at,
	})
	return []leg{
		{geom: fwd, speedKmh: speed},
		{geom: rev, speedKmh: speed * 0.8},
		{geom: resume, speedKmh: speed},
	}
}

// subPolyline extracts the piece of pl between the two along-distances.
func subPolyline(pl geo.Polyline, from, to float64) geo.Polyline {
	if to < from {
		from, to = to, from
	}
	out := geo.Polyline{pl.PointAt(from)}
	var walked float64
	for i := 1; i < len(pl); i++ {
		walked += geo.Distance(pl[i-1], pl[i])
		if walked > from && walked < to {
			out = append(out, pl[i])
		}
	}
	out = append(out, pl.PointAt(to))
	return out
}

func reverse(pl geo.Polyline) geo.Polyline {
	out := make(geo.Polyline, len(pl))
	for i, p := range pl {
		out[len(out)-1-i] = p
	}
	return out
}

// driveLegs walks the legs at one-second resolution and emits a GPS sample
// every sampleInterval, with a metre or two of position jitter.
func driveLegs(id, taxi string, start time.Time, legs []leg, sampleInterval time.Duration, rng *rand.Rand) *traj.Raw {
	raw := &traj.Raw{ID: id, Object: taxi}
	now := start
	nextSample := start
	emit := func(p geo.Point, t time.Time) {
		jittered := geo.Destination(p, rng.Float64()*360, rng.Float64()*2)
		raw.Samples = append(raw.Samples, traj.Sample{Pt: jittered, T: t})
	}
	for _, lg := range legs {
		if lg.dwell > 0 {
			end := now.Add(lg.dwell)
			for !now.After(end) {
				if !now.Before(nextSample) {
					emit(lg.geom[0], now)
					nextSample = now.Add(sampleInterval)
				}
				now = now.Add(time.Second)
			}
			continue
		}
		length := lg.geom.Length()
		if length == 0 || lg.speedKmh <= 0 { //lint:allow floateq -- degenerate zero-length geometry guard
			continue
		}
		mps := lg.speedKmh / 3.6
		for travelled := 0.0; travelled < length; travelled += mps {
			if !now.Before(nextSample) {
				emit(lg.geom.PointAt(travelled), now)
				nextSample = now.Add(sampleInterval)
			}
			now = now.Add(time.Second)
		}
	}
	// Always close with the final position.
	if len(legs) > 0 {
		last := legs[len(legs)-1]
		emit(last.geom[len(last.geom)-1], now)
	}
	return raw
}
