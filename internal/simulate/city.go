// Package simulate generates the synthetic substitutes for the paper's
// proprietary inputs (§VII-A): a graded city road network standing in for
// the commercial Beijing map, a taxi fleet with a time-of-day traffic model
// standing in for the real taxi trajectories, and LBSN-style check-ins for
// landmark-significance inference. Every generator is deterministic given
// its seed.
package simulate

import (
	"fmt"
	"math/rand"

	"stmaker/internal/geo"
	"stmaker/internal/landmark"
	"stmaker/internal/roadnet"
)

// CityOptions configures the synthetic city generator.
type CityOptions struct {
	// Rows and Cols set the street grid size (default 12×12 intersections).
	Rows, Cols int
	// BlockMeters is the spacing between grid streets (default 500).
	BlockMeters float64
	// Origin anchors the city's south-west corner (default central Beijing).
	Origin geo.Point
	// OneWayFraction is the fraction of local streets made one-way
	// (default 0.1).
	OneWayFraction float64
	// POIsPerCenter and ActivityCenters size the POI dataset (defaults 40
	// and max(4, Rows·Cols/12)).
	POIsPerCenter   int
	ActivityCenters int
	// Seed drives all randomness (default 1).
	Seed int64
}

func (o CityOptions) withDefaults() CityOptions {
	if o.Rows <= 1 {
		o.Rows = 12
	}
	if o.Cols <= 1 {
		o.Cols = 12
	}
	if o.BlockMeters <= 0 {
		o.BlockMeters = 500
	}
	if o.Origin == (geo.Point{}) {
		o.Origin = geo.Point{Lat: 39.80, Lng: 116.25}
	}
	switch {
	case o.OneWayFraction < 0:
		o.OneWayFraction = 0 // negative opts out of one-way streets entirely
	case o.OneWayFraction == 0: //lint:allow floateq -- zero means unset: negative opts out, exact zero takes the default
		o.OneWayFraction = 0.1
	case o.OneWayFraction > 1:
		o.OneWayFraction = 1
	}
	if o.POIsPerCenter <= 0 {
		o.POIsPerCenter = 40
	}
	if o.ActivityCenters <= 0 {
		o.ActivityCenters = maxInt(4, o.Rows*o.Cols/12)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// City is a generated world: the road network, its landmark set and a
// ready-made matcher.
type City struct {
	Graph     *roadnet.Graph
	Landmarks *landmark.Set
	Matcher   *roadnet.Matcher
	// Centers are the activity centres POIs cluster around; the fleet
	// biases trip endpoints toward them.
	Centers []geo.Point
	// nodeAt[r][c] is the grid intersection node.
	nodeAt [][]roadnet.NodeID
	opts   CityOptions
}

// NewCity generates a city: a street grid with two crossing express
// arterials, a highway ring along the border, graded side streets, a
// share of one-way roads, and POI clusters around activity centres.
func NewCity(opts CityOptions) *City {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := &roadnet.Graph{}

	nodeAt := make([][]roadnet.NodeID, opts.Rows)
	for r := 0; r < opts.Rows; r++ {
		nodeAt[r] = make([]roadnet.NodeID, opts.Cols)
		for c := 0; c < opts.Cols; c++ {
			p := geo.Destination(geo.Destination(opts.Origin, 90, float64(c)*opts.BlockMeters), 0, float64(r)*opts.BlockMeters)
			nodeAt[r][c] = g.AddNode(p, true)
		}
	}

	midR, midC := opts.Rows/2, opts.Cols/2
	addEdge := func(a, b roadnet.NodeID, name string, grade roadnet.Grade, dir roadnet.Direction) {
		if _, err := g.AddEdge(a, b, name, grade, 0, dir, nil); err != nil {
			panic(fmt.Sprintf("simulate: city edge: %v", err)) // unreachable by construction
		}
	}
	// classify returns the grade and name of the street along a row or
	// column: the border ring is a highway, the two central arterials are
	// express roads, every third street is a national road, and the rest
	// alternate between provincial streets and village lanes.
	classify := func(isRow bool, idx, maxIdx int) (roadnet.Grade, string) {
		kind := "Street"
		if !isRow {
			kind = "Avenue"
		}
		switch {
		case idx == 0 || idx == maxIdx:
			return roadnet.GradeHighway, fmt.Sprintf("Ring %s %d", kind, idx)
		case (isRow && idx == midR) || (!isRow && idx == midC):
			return roadnet.GradeExpress, fmt.Sprintf("Central %s", kind)
		case idx%3 == 0:
			return roadnet.GradeNational, fmt.Sprintf("National %s %d", kind, idx)
		case idx%2 == 0:
			return roadnet.GradeProvincial, fmt.Sprintf("%s %d", kind, idx)
		default:
			return roadnet.GradeVillage, fmt.Sprintf("%s Lane %d", kind, idx)
		}
	}

	for r := 0; r < opts.Rows; r++ {
		grade, name := classify(true, r, opts.Rows-1)
		for c := 0; c+1 < opts.Cols; c++ {
			dir := roadnet.TwoWay
			if grade >= roadnet.GradeProvincial && rng.Float64() < opts.OneWayFraction {
				dir = roadnet.OneWay
			}
			addEdge(nodeAt[r][c], nodeAt[r][c+1], name, grade, dir)
		}
	}
	for c := 0; c < opts.Cols; c++ {
		grade, name := classify(false, c, opts.Cols-1)
		for r := 0; r+1 < opts.Rows; r++ {
			dir := roadnet.TwoWay
			if grade >= roadnet.GradeProvincial && rng.Float64() < opts.OneWayFraction {
				dir = roadnet.OneWay
			}
			addEdge(nodeAt[r][c], nodeAt[r+1][c], name, grade, dir)
		}
	}

	// POI clusters around activity centres, heavier near the city centre.
	centerNames := []string{"Hospital", "University", "Shopping Mall", "Railway Station",
		"Park", "Stadium", "Museum", "Tech Campus", "Market", "Temple",
		"Convention Center", "Library", "Theatre", "Zoo", "Harbor", "Gardens"}
	var centers []geo.Point
	var pois []landmark.POI
	for i := 0; i < opts.ActivityCenters; i++ {
		r := rng.Intn(opts.Rows)
		c := rng.Intn(opts.Cols)
		centre := g.Node(nodeAt[r][c]).Pt
		centers = append(centers, centre)
		name := fmt.Sprintf("%s %d", centerNames[i%len(centerNames)], i/len(centerNames)+1)
		for k := 0; k < opts.POIsPerCenter; k++ {
			pois = append(pois, landmark.POI{
				Name: name,
				Pt:   geo.Destination(centre, rng.Float64()*360, rng.Float64()*80),
			})
		}
	}

	// Turning-point landmarks from the intersections, plus a mid-block
	// landmark on every street. The paper's Beijing landmark set is dense
	// (32k turning points + 17k POI clusters), so consecutive landmarks
	// bound a single piece of one road; mid-block landmarks give the
	// synthetic city the same property.
	var tps []landmark.Landmark
	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			tps = append(tps, landmark.Landmark{
				Name: fmt.Sprintf("Corner %d-%d", r, c),
				Pt:   g.Node(nodeAt[r][c]).Pt,
			})
		}
	}
	for i := range g.Edges() {
		e := g.Edge(roadnet.EdgeID(i))
		tps = append(tps, landmark.Landmark{
			Name: fmt.Sprintf("%s block %d", e.Name, i),
			Pt:   e.Geometry.PointAt(e.Length() / 2),
		})
	}
	lms := landmark.Build(tps, pois, landmark.BuildOptions{ClusterEpsMeters: 120, ClusterMinPts: 3})

	return &City{
		Graph:     g,
		Landmarks: lms,
		Matcher:   roadnet.NewMatcher(g),
		Centers:   centers,
		nodeAt:    nodeAt,
		opts:      opts,
	}
}

// NodeAt returns the intersection node at grid position (row, col).
func (c *City) NodeAt(row, col int) roadnet.NodeID { return c.nodeAt[row][col] }

// Rows returns the grid row count.
func (c *City) Rows() int { return c.opts.Rows }

// Cols returns the grid column count.
func (c *City) Cols() int { return c.opts.Cols }

// RandomNode returns a uniformly random intersection.
func (c *City) RandomNode(rng *rand.Rand) roadnet.NodeID {
	return c.nodeAt[rng.Intn(c.opts.Rows)][rng.Intn(c.opts.Cols)]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
