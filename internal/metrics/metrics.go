// Package metrics is the dependency-free observability substrate behind
// the serving path: named counters and latency histograms collected in a
// Registry and exported as a JSON snapshot by the HTTP service's
// GET /metrics endpoint (see docs/OBSERVABILITY.md for the catalogue of
// metric names and the pipeline stage — paper §II-A calibration, §III
// feature extraction, §IV partitioning, §V selection, §VI realization —
// each one measures).
//
// All hot-path operations (Counter.Add, Histogram.Observe) are lock-free
// via sync/atomic, so instrumented code may be called from any number of
// goroutines; a mutex guards only metric registration, which happens once
// per name. Snapshot is safe to call concurrently with observation — it
// reads the same atomics — so a scrape never blocks a summarization.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-growing (or explicitly adjusted) integer
// metric. The zero value is ready to use. In-flight gauges are counters
// adjusted with Add(±1).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which may be negative, for gauge-style usage).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// DefaultLatencyBuckets are the histogram upper bounds used for every
// latency histogram in the registry: exponential, doubling from 100µs to
// ~209s, 22 buckets. Observations above the last bound land in the
// implicit +Inf bucket.
var DefaultLatencyBuckets = func() []float64 {
	bounds := make([]float64, 22)
	b := 100e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Histogram accumulates float64 observations (seconds, for latency use)
// into fixed exponential buckets. All methods are lock-free and safe for
// concurrent use.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf bucket appended
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds-scale fixed point: sum * 1e9
	min     atomic.Int64 // fixed point; math.MaxInt64 when empty
	max     atomic.Int64 // fixed point
}

// fixedPointScale converts seconds to the integer fixed-point stored in
// the sum/min/max atomics (nanosecond resolution).
const fixedPointScale = 1e9

// NewHistogram builds a histogram with the given upper bounds (sorted
// ascending; nil uses DefaultLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value (in seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	fp := int64(v * fixedPointScale)
	h.sum.Add(fp)
	for {
		old := h.min.Load()
		if fp >= old || h.min.CompareAndSwap(old, fp) {
			break
		}
	}
	for {
		old := h.max.Load()
		if fp <= old || h.max.CompareAndSwap(old, fp) {
			break
		}
	}
}

// ObserveSince records the elapsed seconds since t0. The idiomatic stage
// timer is:
//
//	defer h.ObserveSince(time.Now())
//
// (the deferred argument is evaluated at defer time, the observation at
// return time).
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Bucket is one cumulative histogram bucket in a snapshot: Count
// observations were ≤ LE seconds.
type Bucket struct {
	LE    float64 `json:"le"` // upper bound, seconds; +Inf omitted (it equals Count)
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time read of a histogram. Quantiles are
// estimated by linear interpolation within the bucket containing the
// target rank, so they carry bucket-resolution error (a factor ≤ 2 with
// the default doubling bounds).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`            // seconds
	Mean  float64 `json:"mean,omitempty"` // seconds
	Min   float64 `json:"min,omitempty"`  // seconds
	Max   float64 `json:"max,omitempty"`  // seconds
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
	// Buckets holds the non-empty cumulative buckets only, keeping
	// /metrics responses compact.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot reads the histogram. It is safe concurrently with Observe;
// under concurrent writes the counts are a consistent-enough view (each
// atomic is read once, buckets first).
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.Sum = float64(h.sum.Load()) / fixedPointScale
	s.Mean = s.Sum / float64(total)
	s.Min = float64(h.min.Load()) / fixedPointScale
	s.Max = float64(h.max.Load()) / fixedPointScale
	var cum int64
	for i, c := range counts {
		cum += c
		if c != 0 && i < len(h.bounds) {
			s.Buckets = append(s.Buckets, Bucket{LE: h.bounds[i], Count: cum})
		}
	}
	s.P50 = h.quantile(counts, total, 0.50)
	s.P90 = h.quantile(counts, total, 0.90)
	s.P99 = h.quantile(counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts by linear
// interpolation inside the target bucket, clamped to the observed
// min/max so tiny samples do not report impossible values.
func (h *Histogram) quantile(counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		max := float64(h.max.Load()) / fixedPointScale
		hi := max
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		frac := (rank - prev) / float64(c)
		v := lo + (hi-lo)*frac
		min := float64(h.min.Load()) / fixedPointScale
		return math.Min(math.Max(v, min), max)
	}
	return float64(h.max.Load()) / fixedPointScale
}

// Registry is a named collection of counters and histograms. Counter and
// Histogram are get-or-create, so instrumented code needs no registration
// ceremony and scrapers see every metric that has ever been touched.
// Counters and histograms occupy separate namespaces: registering the
// same name first as a counter and then as a histogram yields two
// independent metrics, and a Snapshot reports both (one under Counters,
// one under Histograms). Consumers that flatten a snapshot into a single
// keyspace must therefore avoid reusing names across kinds —
// stmaker-lint's metricnames check enforces naming conventions that keep
// the two disjoint (counters end in _total, histograms in _seconds).
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the histogram registered under name with the default
// latency buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(nil)
	r.histograms[name] = h
	return h
}

// Snapshot is the JSON shape served by GET /metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every registered metric. Safe concurrently with all
// observation paths.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
