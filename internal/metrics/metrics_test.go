package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	h := NewHistogram(nil)
	for _, v := range []float64{0.001, 0.002, 0.004, 0.100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if math.Abs(s.Sum-0.107) > 1e-6 {
		t.Errorf("Sum = %g, want 0.107", s.Sum)
	}
	if math.Abs(s.Mean-0.107/4) > 1e-6 {
		t.Errorf("Mean = %g", s.Mean)
	}
	if math.Abs(s.Min-0.001) > 1e-6 || math.Abs(s.Max-0.100) > 1e-6 {
		t.Errorf("Min/Max = %g/%g, want 0.001/0.100", s.Min, s.Max)
	}
	if len(s.Buckets) == 0 {
		t.Fatal("no buckets in snapshot")
	}
	// Buckets are cumulative and end at the total count.
	last := s.Buckets[len(s.Buckets)-1]
	if last.Count != 4 {
		t.Errorf("last cumulative bucket = %d, want 4", last.Count)
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count || s.Buckets[i].LE <= s.Buckets[i-1].LE {
			t.Errorf("buckets not cumulative/sorted: %+v", s.Buckets)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 1000 observations spread 1ms..100ms uniformly.
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 + 0.099*float64(i)/999)
	}
	s := h.Snapshot()
	// Bucket interpolation is coarse (doubling bounds): allow 2× error.
	checks := []struct {
		name      string
		got, want float64
	}{
		{"p50", s.P50, 0.050},
		{"p90", s.P90, 0.090},
		{"p99", s.P99, 0.099},
	}
	for _, c := range checks {
		if c.got < c.want/2 || c.got > c.want*2 {
			t.Errorf("%s = %g, want within 2x of %g", c.name, c.got, c.want)
		}
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
	if s.P99 > s.Max || s.P50 < s.Min {
		t.Errorf("quantiles outside [min, max]: %+v", s)
	}
}

func TestHistogramAboveLastBound(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.002})
	h.Observe(5) // lands in the implicit +Inf bucket
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.Max-5) > 1e-6 {
		t.Errorf("Max = %g, want 5", s.Max)
	}
	if s.P99 > s.Max {
		t.Errorf("P99 = %g exceeds Max = %g", s.P99, s.Max)
	}
}

func TestObserveSince(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Sum < 0.009 {
		t.Fatalf("snapshot = %+v, want one ~10ms observation", s)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
	r.Counter("a").Inc()
	r.Histogram("h").Observe(0.5)
	s := r.Snapshot()
	if s.Counters["a"] != 1 {
		t.Errorf("snapshot counter = %d", s.Counters["a"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("snapshot histogram = %+v", s.Histograms["h"])
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	r.Histogram("latency_seconds").Observe(0.003)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["requests_total"] != 7 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Histograms["latency_seconds"].Count != 1 {
		t.Errorf("decoded = %+v", decoded)
	}
}

// TestConcurrentObserveAndSnapshot exercises the lock-free paths under the
// race detector: writers on counters and histograms racing a scraper.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	const writers, n = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				r.Counter("ops_total").Inc()
				r.Histogram("op_seconds").Observe(float64(seed*i%97) * 1e-4)
			}
		}(w + 1)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := r.Snapshot()
	if s.Counters["ops_total"] != writers*n {
		t.Errorf("ops_total = %d, want %d", s.Counters["ops_total"], writers*n)
	}
	if s.Histograms["op_seconds"].Count != writers*n {
		t.Errorf("op_seconds count = %d, want %d", s.Histograms["op_seconds"].Count, writers*n)
	}
}

// TestRegistryNameCollisionAcrossKinds pins down the registry's behaviour
// when one name is registered as both a counter and a histogram: the two
// kinds live in separate namespaces, so both metrics exist independently
// and a snapshot reports each under its own section. This is intentional —
// see the Registry doc comment — and the naming conventions enforced by
// stmaker-lint (_total vs _seconds suffixes) keep real metric sets from
// ever colliding across kinds.
func TestRegistryNameCollisionAcrossKinds(t *testing.T) {
	r := NewRegistry()
	const name = "collision_probe_total"

	c := r.Counter(name)
	c.Inc()
	h := r.Histogram(name) // same name, different kind: a distinct metric
	h.Observe(0.25)

	// Re-fetching by name returns the same instances (no cross-kind clobber).
	if r.Counter(name) != c {
		t.Fatalf("Counter(%q) no longer returns the original counter after Histogram(%q)", name, name)
	}
	if r.Histogram(name) != h {
		t.Fatalf("Histogram(%q) did not return the histogram registered under the same name", name)
	}

	snap := r.Snapshot()
	if got := snap.Counters[name]; got != 1 {
		t.Fatalf("snapshot counter %q = %d, want 1", name, got)
	}
	hs, ok := snap.Histograms[name]
	if !ok {
		t.Fatalf("snapshot is missing histogram %q", name)
	}
	if hs.Count != 1 {
		t.Fatalf("snapshot histogram %q count = %d, want 1", name, hs.Count)
	}
}
