// Package hits implements a HITS-like algorithm (Kleinberg's hubs and
// authorities) over a bipartite visit graph, following the use in STMaker
// (§IV-B, citing Zheng et al., WWW 2009): travellers are modelled as
// authorities, landmarks as hubs, and check-ins/visits as hyperlinks. The
// converged hub score of a landmark is its significance.
package hits

import "math"

// Visit records that a traveller visited a landmark. Multiplicity matters:
// repeated visits strengthen the link.
type Visit struct {
	Traveller int
	Landmark  int
}

// Options configures the power iteration.
type Options struct {
	// MaxIterations bounds the number of power iterations (default 50).
	MaxIterations int
	// Tolerance stops iteration once the L1 change of the hub vector drops
	// below it (default 1e-9).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// Scores holds the converged scores. Both vectors are L1-normalized
// (entries sum to 1) unless the corresponding side is empty.
type Scores struct {
	// LandmarkHub[l] is the significance of landmark l.
	LandmarkHub []float64
	// TravellerAuthority[t] is the authority of traveller t.
	TravellerAuthority []float64
	// Iterations is the number of power iterations performed.
	Iterations int
}

// Run computes hub scores for numLandmarks landmarks and authority scores
// for numTravellers travellers from the visit multiset. Visits referencing
// out-of-range ids are ignored.
func Run(numTravellers, numLandmarks int, visits []Visit, opts Options) Scores {
	opts = opts.withDefaults()
	hub := make([]float64, numLandmarks)
	auth := make([]float64, numTravellers)
	if numLandmarks == 0 || numTravellers == 0 {
		return Scores{LandmarkHub: hub, TravellerAuthority: auth}
	}

	// Adjacency with multiplicity: edge weight = visit count.
	type edge struct {
		t, l int
		w    float64
	}
	weights := make(map[[2]int]float64)
	for _, v := range visits {
		if v.Traveller < 0 || v.Traveller >= numTravellers ||
			v.Landmark < 0 || v.Landmark >= numLandmarks {
			continue
		}
		weights[[2]int{v.Traveller, v.Landmark}]++
	}
	edges := make([]edge, 0, len(weights))
	for k, w := range weights {
		edges = append(edges, edge{t: k[0], l: k[1], w: w})
	}

	for i := range hub {
		hub[i] = 1.0 / float64(numLandmarks)
	}
	for i := range auth {
		auth[i] = 1.0 / float64(numTravellers)
	}

	prev := make([]float64, numLandmarks)
	iters := 0
	for iter := 0; iter < opts.MaxIterations; iter++ {
		iters = iter + 1
		// Authority update: a(t) = sum over visited landmarks of h(l).
		for i := range auth {
			auth[i] = 0
		}
		for _, e := range edges {
			auth[e.t] += e.w * hub[e.l]
		}
		normalizeL1(auth)

		// Hub update: h(l) = sum over visiting travellers of a(t).
		copy(prev, hub)
		for i := range hub {
			hub[i] = 0
		}
		for _, e := range edges {
			hub[e.l] += e.w * auth[e.t]
		}
		normalizeL1(hub)

		var delta float64
		for i := range hub {
			delta += math.Abs(hub[i] - prev[i])
		}
		if delta < opts.Tolerance {
			break
		}
	}
	return Scores{LandmarkHub: hub, TravellerAuthority: auth, Iterations: iters}
}

// normalizeL1 scales v so its entries sum to 1; a zero vector is left as is.
func normalizeL1(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum == 0 { //lint:allow floateq -- division-by-zero guard: only exact zero is unsafe
		return
	}
	for i := range v {
		v[i] /= sum
	}
}
