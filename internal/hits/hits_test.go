package hits

import (
	"math"
	"math/rand"
	"testing"
)

func TestPopularLandmarkScoresHighest(t *testing.T) {
	// Landmark 0 is visited by everyone, landmark 1 by half, landmark 2 by one.
	var visits []Visit
	for tr := 0; tr < 10; tr++ {
		visits = append(visits, Visit{Traveller: tr, Landmark: 0})
		if tr < 5 {
			visits = append(visits, Visit{Traveller: tr, Landmark: 1})
		}
	}
	visits = append(visits, Visit{Traveller: 0, Landmark: 2})

	s := Run(10, 3, visits, Options{})
	if !(s.LandmarkHub[0] > s.LandmarkHub[1] && s.LandmarkHub[1] > s.LandmarkHub[2]) {
		t.Fatalf("hub order wrong: %v", s.LandmarkHub)
	}
}

func TestScoresSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var visits []Visit
	for i := 0; i < 500; i++ {
		visits = append(visits, Visit{Traveller: rng.Intn(20), Landmark: rng.Intn(30)})
	}
	s := Run(20, 30, visits, Options{})
	var hubSum, authSum float64
	for _, x := range s.LandmarkHub {
		if x < 0 {
			t.Fatalf("negative hub score %v", x)
		}
		hubSum += x
	}
	for _, x := range s.TravellerAuthority {
		if x < 0 {
			t.Fatalf("negative authority score %v", x)
		}
		authSum += x
	}
	if math.Abs(hubSum-1) > 1e-9 || math.Abs(authSum-1) > 1e-9 {
		t.Fatalf("sums: hub=%v auth=%v", hubSum, authSum)
	}
}

func TestMultiplicityStrengthensLink(t *testing.T) {
	// Same single traveller; landmark 0 visited 10 times, landmark 1 once.
	var visits []Visit
	for i := 0; i < 10; i++ {
		visits = append(visits, Visit{Traveller: 0, Landmark: 0})
	}
	visits = append(visits, Visit{Traveller: 0, Landmark: 1})
	s := Run(1, 2, visits, Options{})
	if s.LandmarkHub[0] <= s.LandmarkHub[1] {
		t.Fatalf("multiplicity ignored: %v", s.LandmarkHub)
	}
}

func TestEmptyInputs(t *testing.T) {
	s := Run(0, 0, nil, Options{})
	if len(s.LandmarkHub) != 0 || len(s.TravellerAuthority) != 0 {
		t.Fatalf("empty: %+v", s)
	}
	s = Run(3, 4, nil, Options{})
	for _, x := range s.LandmarkHub {
		if x != 0 {
			// With no visits the hub vector stays at whatever normalization
			// produces; it must at least be finite and non-negative.
			if x < 0 || math.IsNaN(x) {
				t.Fatalf("bad score %v", x)
			}
		}
	}
}

func TestOutOfRangeVisitsIgnored(t *testing.T) {
	visits := []Visit{
		{Traveller: 0, Landmark: 0},
		{Traveller: -1, Landmark: 0},
		{Traveller: 0, Landmark: 99},
		{Traveller: 99, Landmark: 0},
	}
	s := Run(1, 1, visits, Options{})
	if math.Abs(s.LandmarkHub[0]-1) > 1e-9 {
		t.Fatalf("hub = %v, want 1", s.LandmarkHub[0])
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	visits := []Visit{{Traveller: 0, Landmark: 0}, {Traveller: 1, Landmark: 1}}
	s := Run(2, 2, visits, Options{MaxIterations: 1000, Tolerance: 1e-12})
	if s.Iterations >= 1000 {
		t.Fatalf("did not converge early: %d iterations", s.Iterations)
	}
}

func TestSymmetricGraphGivesEqualScores(t *testing.T) {
	// Two disconnected identical components must score identically.
	visits := []Visit{
		{Traveller: 0, Landmark: 0},
		{Traveller: 1, Landmark: 1},
	}
	s := Run(2, 2, visits, Options{})
	if math.Abs(s.LandmarkHub[0]-s.LandmarkHub[1]) > 1e-9 {
		t.Fatalf("asymmetric scores on symmetric graph: %v", s.LandmarkHub)
	}
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIterations != 50 || o.Tolerance != 1e-9 {
		t.Fatalf("defaults = %+v", o)
	}
}
