package feature

import (
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/traj"
)

// Speed extracts the average speed in km/h of a segment, computed on the
// sample-based trajectory as §III-B prescribes.
type Speed struct{}

// NewSpeed returns the speed extractor.
func NewSpeed() Speed { return Speed{} }

// Descriptor implements Extractor.
func (Speed) Descriptor() Descriptor {
	return Descriptor{Key: KeySpeed, Name: "speed", Class: Moving, Numeric: true}
}

// Extract implements Extractor.
func (Speed) Extract(seg traj.Segment, _ *Context) float64 {
	samples := seg.RawSamples()
	if len(samples) < 2 {
		return 0
	}
	elapsed := samples[len(samples)-1].T.Sub(samples[0].T).Seconds()
	if elapsed <= 0 {
		return 0
	}
	var dist float64
	for i := 1; i < len(samples); i++ {
		dist += geo.Distance(samples[i-1].Pt, samples[i].Pt)
	}
	return dist / elapsed * 3.6
}

// Stay is one detected stay point: a place where the moving object stayed
// within a small radius for a long time (§III-B). It is a by-product of
// StayPoints extraction consumed by the summary templates.
type Stay struct {
	Center   geo.Point
	Start    time.Time
	Duration time.Duration
}

// StayPoints counts the stay points of a segment.
type StayPoints struct {
	// MaxRadiusMeters is the maximum roaming radius of a stay (default 50).
	MaxRadiusMeters float64
	// MinDuration is the minimum dwell time of a stay (default 60s).
	MinDuration time.Duration
}

// NewStayPoints returns a StayPoints extractor with the default thresholds.
func NewStayPoints() StayPoints {
	return StayPoints{MaxRadiusMeters: 50, MinDuration: 60 * time.Second}
}

// Descriptor implements Extractor.
func (StayPoints) Descriptor() Descriptor {
	return Descriptor{Key: KeyStayPoints, Name: "stay points", Class: Moving, Numeric: true}
}

// Extract implements Extractor: the number of stay points of the segment.
func (sp StayPoints) Extract(seg traj.Segment, _ *Context) float64 {
	return float64(len(sp.Detect(seg.RawSamples())))
}

// Detect returns the stay points of a sample sequence, in time order.
func (sp StayPoints) Detect(samples []traj.Sample) []Stay {
	maxR := sp.MaxRadiusMeters
	if maxR <= 0 {
		maxR = 50
	}
	minD := sp.MinDuration
	if minD <= 0 {
		minD = 60 * time.Second
	}
	var stays []Stay
	i := 0
	for i < len(samples) {
		// Grow the window [i, j] while every sample stays within maxR of
		// the window's anchor sample i.
		j := i
		for j+1 < len(samples) && geo.Distance(samples[i].Pt, samples[j+1].Pt) <= maxR {
			j++
		}
		if dwell := samples[j].T.Sub(samples[i].T); j > i && dwell >= minD {
			// Centroid of the window.
			var lat, lng float64
			for k := i; k <= j; k++ {
				lat += samples[k].Pt.Lat
				lng += samples[k].Pt.Lng
			}
			n := float64(j - i + 1)
			stays = append(stays, Stay{
				Center:   geo.Point{Lat: lat / n, Lng: lng / n},
				Start:    samples[i].T,
				Duration: dwell,
			})
			i = j + 1
			continue
		}
		i++
	}
	return stays
}

// UTurn is one detected sharp directional reversal, a by-product of UTurns
// extraction consumed by the summary templates ("at places of U-turns").
type UTurn struct {
	At geo.Point
	T  time.Time
}

// UTurns counts the U-turns of a segment (§III-B): sharp directional
// changes of the moving object.
type UTurns struct {
	// MinHeadingChangeDeg is the heading reversal threshold (default 150).
	MinHeadingChangeDeg float64
	// MinLegMeters is the minimum movement before and after the turn for
	// headings to be trustworthy (default 20).
	MinLegMeters float64
}

// NewUTurns returns a UTurns extractor with the default thresholds.
func NewUTurns() UTurns {
	return UTurns{MinHeadingChangeDeg: 150, MinLegMeters: 20}
}

// Descriptor implements Extractor.
func (UTurns) Descriptor() Descriptor {
	return Descriptor{Key: KeyUTurns, Name: "U-turns", Class: Moving, Numeric: true}
}

// Extract implements Extractor: the number of U-turns of the segment.
func (ut UTurns) Extract(seg traj.Segment, _ *Context) float64 {
	return float64(len(ut.Detect(seg.RawSamples())))
}

// Detect returns the U-turns of a sample sequence, in time order.
func (ut UTurns) Detect(samples []traj.Sample) []UTurn {
	minTurn := ut.MinHeadingChangeDeg
	if minTurn <= 0 {
		minTurn = 150
	}
	minLeg := ut.MinLegMeters
	if minLeg <= 0 {
		minLeg = 20
	}
	// Build movement legs: hops of at least minLeg metres so headings are
	// meaningful even with jittery, dense sampling.
	type leg struct {
		heading float64
		end     traj.Sample
	}
	var legs []leg
	last := 0
	for i := 1; i < len(samples); i++ {
		if geo.Distance(samples[last].Pt, samples[i].Pt) >= minLeg {
			legs = append(legs, leg{
				heading: geo.Bearing(samples[last].Pt, samples[i].Pt),
				end:     samples[i],
			})
			last = i
		}
	}
	var turns []UTurn
	for i := 1; i < len(legs); i++ {
		if geo.AngleDiff(legs[i-1].heading, legs[i].heading) >= minTurn {
			// The reversal happened around the end of the previous leg.
			turns = append(turns, UTurn{At: legs[i-1].end.Pt, T: legs[i-1].end.T})
		}
	}
	return turns
}

// SpeedChange counts sharp speed changes — accelerations or decelerations
// exceeding a threshold between consecutive sampling intervals. It is the
// "SpeC" extension feature that Fig. 10(b) adds to the default six,
// registered through the §VI-B extension mechanism.
type SpeedChange struct {
	// MinDeltaKmh is the speed jump that counts as sharp (default 25).
	MinDeltaKmh float64
}

// NewSpeedChange returns a SpeedChange extractor with the default
// threshold.
func NewSpeedChange() SpeedChange { return SpeedChange{MinDeltaKmh: 25} }

// Descriptor implements Extractor.
func (SpeedChange) Descriptor() Descriptor {
	return Descriptor{Key: KeySpeedChange, Name: "sharp speed changes", Class: Moving, Numeric: true}
}

// Extract implements Extractor: the number of sharp speed changes.
func (sc SpeedChange) Extract(seg traj.Segment, _ *Context) float64 {
	minDelta := sc.MinDeltaKmh
	if minDelta <= 0 {
		minDelta = 25
	}
	samples := seg.RawSamples()
	if len(samples) < 3 {
		return 0
	}
	speeds := make([]float64, 0, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		dt := samples[i].T.Sub(samples[i-1].T).Seconds()
		if dt <= 0 {
			continue
		}
		speeds = append(speeds, geo.Distance(samples[i-1].Pt, samples[i].Pt)/dt*3.6)
	}
	var count float64
	for i := 1; i < len(speeds); i++ {
		if d := speeds[i] - speeds[i-1]; d >= minDelta || d <= -minDelta {
			count++
		}
	}
	return count
}

// Turns counts ordinary turns — heading changes sharp enough to be a
// corner but short of a U-turn reversal. It is not one of the paper's six
// default features; it ships as a ready-made §VI-B extension (register it
// with Registry.Register) and exercises the same leg-based heading
// machinery as UTurns.
type Turns struct {
	// MinHeadingChangeDeg and MaxHeadingChangeDeg bound what counts as a
	// turn (defaults 60 and 150; at 150 and above UTurns takes over).
	MinHeadingChangeDeg float64
	MaxHeadingChangeDeg float64
	// MinLegMeters is the minimum movement before and after the turn
	// (default 20).
	MinLegMeters float64
}

// NewTurns returns a Turns extractor with the default thresholds.
func NewTurns() Turns {
	return Turns{MinHeadingChangeDeg: 60, MaxHeadingChangeDeg: 150, MinLegMeters: 20}
}

// KeyTurns is the Turns extension feature key.
const KeyTurns = "Turn"

// Descriptor implements Extractor.
func (Turns) Descriptor() Descriptor {
	return Descriptor{Key: KeyTurns, Name: "turns", Class: Moving, Numeric: true}
}

// Extract implements Extractor: the number of turns of the segment.
func (tn Turns) Extract(seg traj.Segment, _ *Context) float64 {
	minTurn := tn.MinHeadingChangeDeg
	if minTurn <= 0 {
		minTurn = 60
	}
	maxTurn := tn.MaxHeadingChangeDeg
	if maxTurn <= 0 {
		maxTurn = 150
	}
	minLeg := tn.MinLegMeters
	if minLeg <= 0 {
		minLeg = 20
	}
	samples := seg.RawSamples()
	var headings []float64
	last := 0
	for i := 1; i < len(samples); i++ {
		if geo.Distance(samples[last].Pt, samples[i].Pt) >= minLeg {
			headings = append(headings, geo.Bearing(samples[last].Pt, samples[i].Pt))
			last = i
		}
	}
	var count float64
	for i := 1; i < len(headings); i++ {
		if d := geo.AngleDiff(headings[i-1], headings[i]); d >= minTurn && d < maxTurn {
			count++
		}
	}
	return count
}
