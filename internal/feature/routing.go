package feature

import (
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
)

// GradeOfRoad extracts the dominant road grade of a segment (Table III).
// The value is the categorical grade code 1–7; 0 when the segment cannot
// be matched to the road network.
type GradeOfRoad struct{}

// Descriptor implements Extractor.
func (GradeOfRoad) Descriptor() Descriptor {
	return Descriptor{Key: KeyGradeOfRoad, Name: "grade of road", Class: Routing, Numeric: false}
}

// Extract implements Extractor: the modal grade of the matched edges.
// Grades are the closed code set 1–7 (roadnet.Grade.Valid), so the
// count fits a fixed array — this runs once per segment per request
// and must not allocate.
func (GradeOfRoad) Extract(seg traj.Segment, ctx *Context) float64 {
	edges := ctx.SegmentEdges(seg)
	if len(edges) == 0 {
		return 0
	}
	var counts [8]int
	for _, e := range edges {
		g := e.Grade
		if g < 0 || g > 7 {
			g = 0 // out-of-range grades cannot enter a valid graph
		}
		counts[g]++
	}
	best, bestN := 0, 0
	for g, n := range counts {
		// Ascending iteration: strict > keeps the smallest modal grade.
		if n > bestN {
			best, bestN = g, n
		}
	}
	return float64(best)
}

// RoadWidth extracts the mean width in metres of the roads the segment
// travels on (Table III). Zero when unmatched.
type RoadWidth struct{}

// Descriptor implements Extractor.
func (RoadWidth) Descriptor() Descriptor {
	return Descriptor{Key: KeyRoadWidth, Name: "road width", Class: Routing, Numeric: true}
}

// Extract implements Extractor.
func (RoadWidth) Extract(seg traj.Segment, ctx *Context) float64 {
	edges := ctx.SegmentEdges(seg)
	if len(edges) == 0 {
		return 0
	}
	var sum float64
	for _, e := range edges {
		sum += e.Width
	}
	return sum / float64(len(edges))
}

// TrafficDirection extracts the dominant traffic direction of the segment
// (Table III): 1 (two-way) or 2 (one-way); 0 when unmatched.
type TrafficDirection struct{}

// Descriptor implements Extractor.
func (TrafficDirection) Descriptor() Descriptor {
	return Descriptor{Key: KeyDirection, Name: "traffic direction", Class: Routing, Numeric: false}
}

// Extract implements Extractor.
func (TrafficDirection) Extract(seg traj.Segment, ctx *Context) float64 {
	edges := ctx.SegmentEdges(seg)
	if len(edges) == 0 {
		return 0
	}
	oneWay, twoWay := 0, 0
	for _, e := range edges {
		if e.Direction == roadnet.OneWay {
			oneWay++
		} else {
			twoWay++
		}
	}
	if oneWay > twoWay {
		return float64(roadnet.OneWay)
	}
	return float64(roadnet.TwoWay)
}

// DominantRoadName returns the most frequently matched road name of the
// segment, used by templates ("through highway (G6)"). Empty when the
// segment is unmatched or the roads are unnamed.
func DominantRoadName(seg traj.Segment, ctx *Context) string {
	edges := ctx.SegmentEdges(seg)
	counts := make(map[string]int)
	for _, e := range edges {
		if e.Name != "" {
			counts[e.Name]++
		}
	}
	best, bestN := "", 0
	for name, n := range counts {
		if n > bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	return best
}
