// Package feature implements STMaker's feature extraction (§III): routing
// features describing where the moving object travels (grade of road, road
// width, traffic direction) and moving features describing how it travels
// (speed, number of stay points, number of U-turns, plus the sharp
// speed-change extension). New features can be registered at runtime, as
// §VI-B describes.
package feature

import (
	"fmt"
	"sync"

	"stmaker/internal/geo"
	"stmaker/internal/landmark"
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
)

// Class is the paper's two-way feature taxonomy.
type Class int

const (
	// Routing features describe where the object travels (§III-A).
	Routing Class = iota
	// Moving features describe how the object travels (§III-B).
	Moving
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Moving {
		return "moving"
	}
	return "routing"
}

// Canonical feature keys used across the library and in the experiments
// (matching the abbreviations in §VII-B: GR, RW, TD, Spe, Stay, U-turn,
// and the SpeC extension of Fig. 10(b)).
const (
	KeyGradeOfRoad = "GR"
	KeyRoadWidth   = "RW"
	KeyDirection   = "TD"
	KeySpeed       = "Spe"
	KeyStayPoints  = "Stay"
	KeyUTurns      = "U-turn"
	KeySpeedChange = "SpeC"
)

// Descriptor is feature metadata.
type Descriptor struct {
	// Key is the short unique identifier (e.g. "GR").
	Key string
	// Name is the human-readable name (e.g. "grade of road").
	Name string
	// Class says whether the feature is routing or moving.
	Class Class
	// Numeric is true for numeric features; false for categorical features
	// whose values are category codes (Table III/IV's Numeric column).
	Numeric bool
}

// Extractor computes one feature's value on a trajectory segment. Moving
// features read the raw samples behind the segment; routing features read
// the road network through the Context.
type Extractor interface {
	Descriptor() Descriptor
	// Extract returns the feature value of the segment. Categorical
	// features return their category code as a float64.
	Extract(seg traj.Segment, ctx *Context) float64
}

// Context carries the external semantic resources extractors may consult,
// plus a per-segment map-matching cache shared by the routing extractors.
// The cache is synchronized, so one Context may serve concurrent
// extraction.
type Context struct {
	Graph     *roadnet.Graph
	Matcher   *roadnet.Matcher
	Landmarks *landmark.Set

	// HMM, when set, replaces greedy per-sample nearest-edge matching with
	// joint Viterbi decoding over each segment's samples — slower but
	// robust to GPS noise near parallel roads.
	HMM *roadnet.HMMMatcher

	// MatchRadiusMeters bounds the sample-to-edge matching distance
	// (default 150).
	MatchRadiusMeters float64

	mu        sync.Mutex
	edgeCache map[*traj.Symbolic][]segEdges
}

// segEdges is one segment's cached match result. done distinguishes
// "matched, nothing found" from "never matched".
type segEdges struct {
	edges []*roadnet.Edge
	done  bool
}

// NewContext builds a context over the given map resources.
func NewContext(g *roadnet.Graph, m *roadnet.Matcher, lms *landmark.Set) *Context {
	return &Context{
		Graph:             g,
		Matcher:           m,
		Landmarks:         lms,
		MatchRadiusMeters: 150,
		edgeCache:         make(map[*traj.Symbolic][]segEdges),
	}
}

// SegmentEdges map-matches each raw sample of the segment to its nearest
// road edge and returns the per-sample edges (skipping unmatched samples).
// Results are cached per (trajectory, segment); the trajectory's whole
// entry is dropped by ReleaseEdges when its request finishes, so a
// long-lived serving Context does not accumulate one entry per
// trajectory it ever saw.
func (ctx *Context) SegmentEdges(seg traj.Segment) []*roadnet.Edge {
	if ctx.Matcher == nil {
		return nil
	}
	ctx.mu.Lock()
	row := ctx.edgeCache[seg.Traj]
	if seg.Index < len(row) && row[seg.Index].done {
		edges := row[seg.Index].edges
		ctx.mu.Unlock()
		return edges
	}
	ctx.mu.Unlock()
	var edges []*roadnet.Edge
	if ctx.HMM != nil {
		samples := seg.RawSamples()
		pts := make([]geo.Point, len(samples))
		for i, s := range samples {
			pts[i] = s.Pt
		}
		for _, m := range ctx.HMM.MatchPoints(pts) {
			if m != nil {
				edges = append(edges, m.Edge)
			}
		}
	} else {
		for _, s := range seg.RawSamples() {
			if m, ok := ctx.Matcher.NearestEdge(s.Pt, ctx.MatchRadiusMeters); ok {
				edges = append(edges, m.Edge)
			}
		}
	}
	ctx.mu.Lock()
	if ctx.edgeCache == nil {
		ctx.edgeCache = make(map[*traj.Symbolic][]segEdges)
	}
	row = ctx.edgeCache[seg.Traj]
	if len(row) <= seg.Index {
		grown := make([]segEdges, seg.Traj.NumSegments())
		copy(grown, row)
		row = grown
	}
	row[seg.Index] = segEdges{edges: edges, done: true}
	ctx.edgeCache[seg.Traj] = row
	ctx.mu.Unlock()
	return edges
}

// ReleaseEdges drops the trajectory's cached match results. Callers
// that are done with a trajectory (a finished summarize request, a
// trained-on corpus trajectory) release it so the shared Context's
// cache stays bounded by the number of trajectories in flight; a
// release is never unsafe, because a later lookup just re-matches.
func (ctx *Context) ReleaseEdges(s *traj.Symbolic) {
	ctx.mu.Lock()
	delete(ctx.edgeCache, s)
	ctx.mu.Unlock()
}

// Registry is an ordered collection of extractors. Order is significant:
// feature vectors are laid out in registration order.
type Registry struct {
	extractors []Extractor
	byKey      map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]int)}
}

// NewDefaultRegistry returns a registry holding the paper's six features
// in the order GR, RW, TD, Spe, Stay, U-turn.
func NewDefaultRegistry() *Registry {
	r := NewRegistry()
	for _, e := range []Extractor{
		GradeOfRoad{}, RoadWidth{}, TrafficDirection{},
		NewSpeed(), NewStayPoints(), NewUTurns(),
	} {
		if err := r.Register(e); err != nil {
			panic(err) // unreachable: fixed distinct keys
		}
	}
	return r
}

// Register appends an extractor (§VI-B: extension with new features). It
// fails if the key is already registered.
func (r *Registry) Register(e Extractor) error {
	key := e.Descriptor().Key
	if key == "" {
		return fmt.Errorf("feature: extractor has empty key")
	}
	if _, dup := r.byKey[key]; dup {
		return fmt.Errorf("feature: duplicate feature key %q", key)
	}
	r.byKey[key] = len(r.extractors)
	r.extractors = append(r.extractors, e)
	return nil
}

// Len returns the number of registered features, |F|.
func (r *Registry) Len() int { return len(r.extractors) }

// Descriptors returns feature metadata in vector order.
func (r *Registry) Descriptors() []Descriptor {
	out := make([]Descriptor, len(r.extractors))
	for i, e := range r.extractors {
		out[i] = e.Descriptor()
	}
	return out
}

// ExtractorAt returns the extractor at vector position i. It panics when i
// is out of range, as with slice indexing.
func (r *Registry) ExtractorAt(i int) Extractor { return r.extractors[i] }

// IndexOf returns the vector position of the feature with the given key,
// or -1 when unknown.
func (r *Registry) IndexOf(key string) int {
	if i, ok := r.byKey[key]; ok {
		return i
	}
	return -1
}

// Vector is a segment's feature values in registry order.
type Vector []float64

// Extract computes the full feature vector of a segment.
func (r *Registry) Extract(seg traj.Segment, ctx *Context) Vector {
	v := make(Vector, len(r.extractors))
	for i, e := range r.extractors {
		v[i] = e.Extract(seg, ctx)
	}
	return v
}

// ExtractAll computes the feature matrix of a symbolic trajectory: one
// vector per segment.
func (r *Registry) ExtractAll(s *traj.Symbolic, ctx *Context) []Vector {
	out := make([]Vector, s.NumSegments())
	for i := range out {
		out[i] = r.Extract(s.Segment(i), ctx)
	}
	return out
}

// MatrixBuf is reusable backing storage for a feature matrix: the rows
// are windows over one flat value slice, so an n-segment extraction
// costs zero allocations once the buffer has grown to the workload's
// trajectory size. A MatrixBuf serves one matrix at a time — reusing it
// invalidates the previously returned rows — and is not safe for
// concurrent use; the pipeline pools one per in-flight request, so
// nothing backed by the buffer may outlive the request (`make lint`
// poolescape tracks the aliases).
type MatrixBuf struct {
	rows []Vector
	flat []float64
}

// Matrix returns an n×dims matrix backed by the buffer.
func (b *MatrixBuf) Matrix(n, dims int) []Vector {
	if cap(b.flat) < n*dims {
		b.flat = make([]float64, n*dims)
	}
	flat := b.flat[:n*dims:n*dims]
	if cap(b.rows) < n {
		b.rows = make([]Vector, n)
	}
	rows := b.rows[:n]
	for i := range rows {
		rows[i] = flat[i*dims : (i+1)*dims : (i+1)*dims]
	}
	b.flat, b.rows = flat, rows
	return rows
}

// ExtractAllInto is ExtractAll against pooled backing storage: the
// returned matrix is valid until the buffer's next use.
func (r *Registry) ExtractAllInto(buf *MatrixBuf, s *traj.Symbolic, ctx *Context) []Vector {
	out := buf.Matrix(s.NumSegments(), len(r.extractors))
	for i := range out {
		seg := s.Segment(i)
		for j, e := range r.extractors {
			out[i][j] = e.Extract(seg, ctx)
		}
	}
	return out
}

// NormalizeByMax returns a copy of the matrix with each feature dimension
// divided by its maximum absolute value across the matrix (§IV-B: "the
// normalizing constant of f is the biggest feature value among all the
// trajectory segments of T"). All-zero dimensions stay zero.
func NormalizeByMax(matrix []Vector) []Vector {
	if len(matrix) == 0 {
		return nil
	}
	dims := len(matrix[0])
	maxAbs := make([]float64, dims)
	for _, v := range matrix {
		for j, x := range v {
			if a := abs(x); a > maxAbs[j] {
				maxAbs[j] = a
			}
		}
	}
	out := make([]Vector, len(matrix))
	for i, v := range matrix {
		nv := make(Vector, dims)
		for j, x := range v {
			if maxAbs[j] > 0 {
				nv[j] = x / maxAbs[j]
			}
		}
		out[i] = nv
	}
	return out
}

// NormalizeByMaxInto is NormalizeByMax against pooled backing storage:
// the returned matrix is valid until the buffer's next use. maxAbs
// scratch rides in the same buffer's spare row header slot, so the
// call allocates nothing once the buffer has grown.
func NormalizeByMaxInto(buf *MatrixBuf, matrix []Vector) []Vector {
	if len(matrix) == 0 {
		return nil
	}
	dims := len(matrix[0])
	// One extra row holds the per-dimension maxima.
	rows := buf.Matrix(len(matrix)+1, dims)
	out, maxAbs := rows[:len(matrix)], rows[len(matrix)]
	for j := range maxAbs {
		maxAbs[j] = 0
	}
	for _, v := range matrix {
		for j, x := range v {
			if a := abs(x); a > maxAbs[j] {
				maxAbs[j] = a
			}
		}
	}
	for i, v := range matrix {
		for j, x := range v {
			if maxAbs[j] > 0 {
				out[i][j] = x / maxAbs[j]
			} else {
				out[i][j] = 0
			}
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Weights maps feature keys to user-specified weights w_f (§IV-B). Missing
// keys default to 1.
type Weights map[string]float64

// VectorFor lays the weights out in the registry's vector order.
func (w Weights) VectorFor(r *Registry) []float64 {
	out := make([]float64, r.Len())
	for i, d := range r.Descriptors() {
		out[i] = 1
		if w != nil {
			if v, ok := w[d.Key]; ok && v >= 0 {
				out[i] = v
			}
		}
	}
	return out
}
