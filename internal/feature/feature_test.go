package feature

import (
	"math"
	"testing"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/roadnet"
	"stmaker/internal/traj"
)

var (
	base  = geo.Point{Lat: 39.9, Lng: 116.4}
	start = time.Date(2013, 11, 2, 9, 0, 0, 0, time.UTC)
)

// testWorld builds a two-road network: a 2km highway "G6" heading east from
// base, then a 1km one-way village road "Hutong" continuing east.
func testWorld(t *testing.T) (*roadnet.Graph, *Context) {
	t.Helper()
	g := &roadnet.Graph{}
	a := g.AddNode(base, true)
	b := g.AddNode(geo.Destination(base, 90, 2000), true)
	c := g.AddNode(geo.Destination(base, 90, 3000), true)
	if _, err := g.AddEdge(a, b, "G6", roadnet.GradeHighway, 28, roadnet.TwoWay, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, "Hutong", roadnet.GradeVillage, 7, roadnet.OneWay, nil); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(g, roadnet.NewMatcher(g), nil)
	return g, ctx
}

// drive produces a raw trajectory from startDist to endDist metres along
// the east axis at speed km/h with 5-second sampling.
func drive(speedKmh, startDist, endDist float64) *traj.Raw {
	r := &traj.Raw{ID: "f"}
	step := speedKmh / 3.6 * 5
	ts := start
	for d := startDist; d <= endDist; d += step {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	return r
}

// wholeSegment wraps a raw trajectory as a single-segment symbolic
// trajectory.
func wholeSegment(r *traj.Raw) traj.Segment {
	s := &traj.Symbolic{
		ID:  r.ID,
		Raw: r,
		Visits: []traj.Visit{
			{Landmark: 0, T: r.Start(), RawIndex: 0},
			{Landmark: 1, T: r.End(), RawIndex: len(r.Samples) - 1},
		},
	}
	return s.Segment(0)
}

func TestDefaultRegistry(t *testing.T) {
	r := NewDefaultRegistry()
	if r.Len() != 6 {
		t.Fatalf("Len = %d, want 6", r.Len())
	}
	wantKeys := []string{KeyGradeOfRoad, KeyRoadWidth, KeyDirection, KeySpeed, KeyStayPoints, KeyUTurns}
	for i, d := range r.Descriptors() {
		if d.Key != wantKeys[i] {
			t.Fatalf("descriptor %d key = %q, want %q", i, d.Key, wantKeys[i])
		}
		if i < 3 && d.Class != Routing {
			t.Errorf("%s should be routing", d.Key)
		}
		if i >= 3 && d.Class != Moving {
			t.Errorf("%s should be moving", d.Key)
		}
	}
	if r.IndexOf(KeySpeed) != 3 || r.IndexOf("nope") != -1 {
		t.Fatal("IndexOf wrong")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewDefaultRegistry()
	if err := r.Register(NewSpeed()); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := r.Register(badExtractor{}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := r.Register(NewSpeedChange()); err != nil {
		t.Fatalf("SpeC registration failed: %v", err)
	}
	if r.Len() != 7 {
		t.Fatalf("Len after extension = %d", r.Len())
	}
}

type badExtractor struct{}

func (badExtractor) Descriptor() Descriptor                 { return Descriptor{} }
func (badExtractor) Extract(traj.Segment, *Context) float64 { return 0 }

func TestRoutingExtraction(t *testing.T) {
	_, ctx := testWorld(t)
	// Drive only on the highway portion.
	seg := wholeSegment(drive(60, 100, 1900))
	if got := (GradeOfRoad{}).Extract(seg, ctx); got != float64(roadnet.GradeHighway) {
		t.Errorf("grade = %v, want 1", got)
	}
	if got := (RoadWidth{}).Extract(seg, ctx); math.Abs(got-28) > 0.01 {
		t.Errorf("width = %v, want 28", got)
	}
	if got := (TrafficDirection{}).Extract(seg, ctx); got != float64(roadnet.TwoWay) {
		t.Errorf("direction = %v, want two-way", got)
	}
	if got := DominantRoadName(seg, ctx); got != "G6" {
		t.Errorf("road name = %q, want G6", got)
	}

	// Drive only on the village road.
	seg2 := wholeSegment(drive(30, 2100, 2900))
	if got := (GradeOfRoad{}).Extract(seg2, ctx); got != float64(roadnet.GradeVillage) {
		t.Errorf("grade = %v, want 6", got)
	}
	if got := (TrafficDirection{}).Extract(seg2, ctx); got != float64(roadnet.OneWay) {
		t.Errorf("direction = %v, want one-way", got)
	}
	if got := DominantRoadName(seg2, ctx); got != "Hutong" {
		t.Errorf("road name = %q", got)
	}
}

func TestRoutingUnmatched(t *testing.T) {
	_, ctx := testWorld(t)
	// Trajectory far south of the network.
	r := &traj.Raw{ID: "far"}
	p := geo.Destination(base, 180, 5000)
	for i := 0; i < 5; i++ {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(p, 90, float64(i)*50), T: start.Add(time.Duration(i) * 5 * time.Second)})
	}
	seg := wholeSegment(r)
	if got := (GradeOfRoad{}).Extract(seg, ctx); got != 0 {
		t.Errorf("unmatched grade = %v", got)
	}
	if got := (RoadWidth{}).Extract(seg, ctx); got != 0 {
		t.Errorf("unmatched width = %v", got)
	}
	if got := (TrafficDirection{}).Extract(seg, ctx); got != 0 {
		t.Errorf("unmatched direction = %v", got)
	}
	if got := DominantRoadName(seg, ctx); got != "" {
		t.Errorf("unmatched name = %q", got)
	}
}

func TestSegmentEdgesCached(t *testing.T) {
	_, ctx := testWorld(t)
	seg := wholeSegment(drive(60, 100, 900))
	e1 := ctx.SegmentEdges(seg)
	e2 := ctx.SegmentEdges(seg)
	if len(e1) == 0 || len(e1) != len(e2) {
		t.Fatalf("cache mismatch: %d vs %d", len(e1), len(e2))
	}
	if &e1[0] != &e2[0] {
		t.Fatal("second call should return the cached slice")
	}
}

func TestSpeedExtraction(t *testing.T) {
	seg := wholeSegment(drive(72, 0, 1000))
	got := NewSpeed().Extract(seg, nil)
	if math.Abs(got-72) > 1 {
		t.Fatalf("speed = %v, want about 72", got)
	}
}

func TestSpeedDegenerate(t *testing.T) {
	r := &traj.Raw{ID: "x", Samples: []traj.Sample{
		{Pt: base, T: start}, {Pt: base, T: start},
	}}
	if got := NewSpeed().Extract(wholeSegment(r), nil); got != 0 {
		t.Fatalf("zero-duration speed = %v", got)
	}
}

func TestStayPointDetection(t *testing.T) {
	// 500m drive, then 120 seconds stationary, then 500m more.
	r := drive(36, 0, 500) // 10 m/s, 5s sampling
	stayAt := r.Samples[len(r.Samples)-1]
	ts := stayAt.T
	for i := 0; i < 24; i++ { // 120s of jitter within 10m
		ts = ts.Add(5 * time.Second)
		r.Samples = append(r.Samples, traj.Sample{
			Pt: geo.Destination(stayAt.Pt, float64(i*37%360), 5),
			T:  ts,
		})
	}
	for d := 0.0; d <= 500; d += 50 {
		ts = ts.Add(5 * time.Second)
		r.Samples = append(r.Samples, traj.Sample{
			Pt: geo.Destination(stayAt.Pt, 90, d+50),
			T:  ts,
		})
	}
	sp := NewStayPoints()
	stays := sp.Detect(r.Samples)
	if len(stays) != 1 {
		t.Fatalf("stays = %d, want 1", len(stays))
	}
	if stays[0].Duration < 115*time.Second {
		t.Fatalf("stay duration = %v", stays[0].Duration)
	}
	if d := geo.Distance(stays[0].Center, stayAt.Pt); d > 20 {
		t.Fatalf("stay centre %v is %vm from the stop", stays[0].Center, d)
	}
	if got := sp.Extract(wholeSegment(r), nil); got != 1 {
		t.Fatalf("Extract = %v", got)
	}
}

func TestNoStayOnSteadyDrive(t *testing.T) {
	seg := wholeSegment(drive(60, 0, 2000))
	if got := NewStayPoints().Extract(seg, nil); got != 0 {
		t.Fatalf("steady drive stays = %v", got)
	}
}

func TestUTurnDetection(t *testing.T) {
	// Drive 500m east then back west: exactly one U-turn near the apex.
	r := &traj.Raw{ID: "u"}
	ts := start
	for d := 0.0; d <= 500; d += 50 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	for d := 450.0; d >= 0; d -= 50 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	ut := NewUTurns()
	turns := ut.Detect(r.Samples)
	if len(turns) != 1 {
		t.Fatalf("turns = %d, want 1", len(turns))
	}
	apex := geo.Destination(base, 90, 500)
	if d := geo.Distance(turns[0].At, apex); d > 120 {
		t.Fatalf("turn detected %vm from apex", d)
	}
	if got := ut.Extract(wholeSegment(r), nil); got != 1 {
		t.Fatalf("Extract = %v", got)
	}
}

func TestNoUTurnOnStraightDrive(t *testing.T) {
	seg := wholeSegment(drive(60, 0, 2000))
	if got := NewUTurns().Extract(seg, nil); got != 0 {
		t.Fatalf("straight drive U-turns = %v", got)
	}
}

func TestSpeedChange(t *testing.T) {
	// 60 km/h then an abrupt drop to 10 km/h: one sharp change.
	r := &traj.Raw{ID: "sc"}
	ts := start
	d := 0.0
	for i := 0; i < 10; i++ {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		d += 60 / 3.6 * 5
		ts = ts.Add(5 * time.Second)
	}
	for i := 0; i < 10; i++ {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		d += 10 / 3.6 * 5
		ts = ts.Add(5 * time.Second)
	}
	got := NewSpeedChange().Extract(wholeSegment(r), nil)
	if got != 1 {
		t.Fatalf("sharp changes = %v, want 1", got)
	}
	if got := NewSpeedChange().Extract(wholeSegment(drive(60, 0, 1500)), nil); got != 0 {
		t.Fatalf("steady drive changes = %v", got)
	}
}

func TestExtractAllAndNormalize(t *testing.T) {
	_, ctx := testWorld(t)
	r := drive(60, 100, 2900)
	s := &traj.Symbolic{ID: r.ID, Raw: r, Visits: []traj.Visit{
		{Landmark: 0, T: r.Start(), RawIndex: 0},
		{Landmark: 1, T: r.Samples[len(r.Samples)/2].T, RawIndex: len(r.Samples) / 2},
		{Landmark: 2, T: r.End(), RawIndex: len(r.Samples) - 1},
	}}
	reg := NewDefaultRegistry()
	matrix := reg.ExtractAll(s, ctx)
	if len(matrix) != 2 || len(matrix[0]) != 6 {
		t.Fatalf("matrix shape = %dx%d", len(matrix), len(matrix[0]))
	}
	norm := NormalizeByMax(matrix)
	for j := 0; j < 6; j++ {
		maxV := 0.0
		for i := range norm {
			v := norm[i][j]
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("normalized value out of range: %v", v)
			}
			if v > maxV {
				maxV = v
			}
		}
		// Columns with any nonzero raw value normalize their max to 1.
		rawMax := math.Max(matrix[0][j], matrix[1][j])
		if rawMax > 0 && math.Abs(maxV-1) > 1e-9 {
			t.Fatalf("dimension %d max = %v, want 1", j, maxV)
		}
	}
	if NormalizeByMax(nil) != nil {
		t.Fatal("NormalizeByMax(nil) should be nil")
	}
}

func TestWeightsVector(t *testing.T) {
	reg := NewDefaultRegistry()
	w := Weights{KeySpeed: 2.5, KeyUTurns: 0, "unknown": 9}
	v := w.VectorFor(reg)
	if v[reg.IndexOf(KeySpeed)] != 2.5 {
		t.Errorf("speed weight = %v", v[reg.IndexOf(KeySpeed)])
	}
	if v[reg.IndexOf(KeyUTurns)] != 0 {
		t.Errorf("explicit zero weight = %v", v[reg.IndexOf(KeyUTurns)])
	}
	if v[reg.IndexOf(KeyGradeOfRoad)] != 1 {
		t.Errorf("default weight = %v", v[reg.IndexOf(KeyGradeOfRoad)])
	}
	var nilW Weights
	for _, x := range nilW.VectorFor(reg) {
		if x != 1 {
			t.Fatal("nil weights should default to 1")
		}
	}
}

func TestClassString(t *testing.T) {
	if Routing.String() != "routing" || Moving.String() != "moving" {
		t.Fatal("class strings wrong")
	}
}

func TestTurnsExtraction(t *testing.T) {
	// An L-shaped route: east 500m then north 500m — exactly one 90° turn,
	// zero U-turns.
	r := &traj.Raw{ID: "L"}
	ts := start
	for d := 0.0; d <= 500; d += 50 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(base, 90, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	corner := geo.Destination(base, 90, 500)
	for d := 50.0; d <= 500; d += 50 {
		r.Samples = append(r.Samples, traj.Sample{Pt: geo.Destination(corner, 0, d), T: ts})
		ts = ts.Add(5 * time.Second)
	}
	seg := wholeSegment(r)
	if got := NewTurns().Extract(seg, nil); got != 1 {
		t.Fatalf("turns = %v, want 1", got)
	}
	if got := NewUTurns().Extract(seg, nil); got != 0 {
		t.Fatalf("L-shape should have no U-turn, got %v", got)
	}
	// A straight drive has no turns.
	if got := NewTurns().Extract(wholeSegment(drive(60, 0, 1000)), nil); got != 0 {
		t.Fatalf("straight turns = %v", got)
	}
	// Registration through the §VI-B mechanism.
	reg := NewDefaultRegistry()
	if err := reg.Register(NewTurns()); err != nil {
		t.Fatal(err)
	}
	if reg.IndexOf(KeyTurns) != 6 {
		t.Fatalf("Turns index = %d", reg.IndexOf(KeyTurns))
	}
}
