package geo

import "math"

// Polyline is an ordered sequence of points describing a path.
type Polyline []Point

// Length returns the total great-circle length of the polyline in metres.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += Distance(pl[i-1], pl[i])
	}
	return total
}

// BBox returns the bounding box of the polyline. The box of an empty
// polyline is EmptyBBox.
func (pl Polyline) BBox() BBox {
	b := EmptyBBox()
	for _, p := range pl {
		b.Extend(p)
	}
	return b
}

// PointAt returns the point located dist metres from the start of the
// polyline, measured along the line. Distances beyond the ends clamp to the
// endpoints. An empty polyline returns the zero Point.
func (pl Polyline) PointAt(dist float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if dist <= 0 {
		return pl[0]
	}
	var walked float64
	for i := 1; i < len(pl); i++ {
		seg := Distance(pl[i-1], pl[i])
		if walked+seg >= dist {
			if seg == 0 { //lint:allow floateq -- degenerate zero-length segment guard
				return pl[i]
			}
			t := (dist - walked) / seg
			return Interpolate(pl[i-1], pl[i], t)
		}
		walked += seg
	}
	return pl[len(pl)-1]
}

// NearestPoint returns the minimum distance in metres from p to the
// polyline, the index i of the segment (pl[i], pl[i+1]) realising that
// minimum, and the fraction along that segment. A polyline with fewer than
// two points is treated as the single point pl[0] (segment index 0, t 0);
// an empty polyline returns +Inf.
func (pl Polyline) NearestPoint(p Point) (dist float64, segIdx int, t float64) {
	switch len(pl) {
	case 0:
		return math.Inf(1), 0, 0
	case 1:
		return Distance(p, pl[0]), 0, 0
	}
	dist = math.Inf(1)
	for i := 0; i < len(pl)-1; i++ {
		d, tt := PointSegmentDistance(p, pl[i], pl[i+1])
		if d < dist {
			dist, segIdx, t = d, i, tt
		}
	}
	return dist, segIdx, t
}

// DistanceAlong returns the distance in metres from the start of the
// polyline to the point identified by segment index and fraction (as
// returned by NearestPoint).
func (pl Polyline) DistanceAlong(segIdx int, t float64) float64 {
	var d float64
	for i := 0; i < segIdx && i < len(pl)-1; i++ {
		d += Distance(pl[i], pl[i+1])
	}
	if segIdx < len(pl)-1 {
		d += Distance(pl[segIdx], pl[segIdx+1]) * t
	}
	return d
}

// Resample returns a copy of the polyline resampled at a fixed spacing in
// metres, always retaining the original endpoints. A spacing <= 0 returns a
// copy of the input.
func (pl Polyline) Resample(spacing float64) Polyline {
	if len(pl) < 2 || spacing <= 0 {
		out := make(Polyline, len(pl))
		copy(out, pl)
		return out
	}
	total := pl.Length()
	if total == 0 { //lint:allow floateq -- degenerate zero-length polyline guard
		return Polyline{pl[0], pl[len(pl)-1]}
	}
	out := Polyline{pl[0]}
	// The epsilon keeps accumulated floating-point error in total from
	// emitting a sample coincident with the final endpoint.
	for d := spacing; d < total-1e-6; d += spacing {
		out = append(out, pl.PointAt(d))
	}
	out = append(out, pl[len(pl)-1])
	return out
}

// Concat joins polylines end to end, dropping a duplicated join point when
// one polyline ends where the next begins.
func Concat(lines ...Polyline) Polyline {
	var out Polyline
	for _, ln := range lines {
		if len(ln) == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == ln[0] {
			out = append(out, ln[1:]...)
		} else {
			out = append(out, ln...)
		}
	}
	return out
}
