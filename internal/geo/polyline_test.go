package geo

import (
	"math"
	"testing"
)

// eastLine builds a polyline heading east from a fixed origin with the given
// per-segment lengths in metres.
func eastLine(segs ...float64) Polyline {
	p := Point{Lat: 39.9, Lng: 116.4}
	pl := Polyline{p}
	for _, s := range segs {
		p = Destination(p, 90, s)
		pl = append(pl, p)
	}
	return pl
}

func TestPolylineLength(t *testing.T) {
	pl := eastLine(100, 200, 300)
	if got := pl.Length(); !near(got, 600, 1) {
		t.Fatalf("Length = %v, want about 600", got)
	}
	if got := (Polyline{}).Length(); got != 0 {
		t.Fatalf("empty Length = %v", got)
	}
	if got := (Polyline{{Lat: 1, Lng: 1}}).Length(); got != 0 {
		t.Fatalf("single point Length = %v", got)
	}
}

func TestPolylinePointAt(t *testing.T) {
	pl := eastLine(100, 100)
	start := pl.PointAt(-5)
	if start != pl[0] {
		t.Errorf("PointAt(-5) = %v, want start", start)
	}
	end := pl.PointAt(1e9)
	if end != pl[2] {
		t.Errorf("PointAt(big) = %v, want end", end)
	}
	mid := pl.PointAt(100)
	if d := Distance(mid, pl[1]); d > 1 {
		t.Errorf("PointAt(100) is %vm from the middle vertex", d)
	}
	q := pl.PointAt(50)
	if d := Distance(pl[0], q); !near(d, 50, 1) {
		t.Errorf("PointAt(50): distance from start = %v", d)
	}
}

func TestPolylinePointAtEmpty(t *testing.T) {
	if got := (Polyline{}).PointAt(10); got != (Point{}) {
		t.Fatalf("empty PointAt = %v", got)
	}
}

func TestPolylineNearestPoint(t *testing.T) {
	pl := eastLine(1000, 1000)
	// 100 m north of the midpoint of the second segment.
	target := Destination(pl.PointAt(1500), 0, 100)
	d, seg, tt := pl.NearestPoint(target)
	if !near(d, 100, 2) || seg != 1 || !near(tt, 0.5, 0.05) {
		t.Fatalf("NearestPoint: d=%v seg=%d t=%v", d, seg, tt)
	}
	along := pl.DistanceAlong(seg, tt)
	if !near(along, 1500, 10) {
		t.Fatalf("DistanceAlong = %v, want about 1500", along)
	}
}

func TestPolylineNearestPointDegenerate(t *testing.T) {
	d, _, _ := (Polyline{}).NearestPoint(Point{})
	if !math.IsInf(d, 1) {
		t.Fatalf("empty NearestPoint d = %v, want +Inf", d)
	}
	one := Polyline{{Lat: 39.9, Lng: 116.4}}
	p := Destination(one[0], 90, 250)
	d, seg, tt := one.NearestPoint(p)
	if !near(d, 250, 1) || seg != 0 || tt != 0 {
		t.Fatalf("single point NearestPoint: d=%v seg=%d t=%v", d, seg, tt)
	}
}

func TestPolylineResample(t *testing.T) {
	pl := eastLine(100, 100, 100)
	rs := pl.Resample(50)
	if rs[0] != pl[0] || rs[len(rs)-1] != pl[len(pl)-1] {
		t.Fatalf("Resample must keep endpoints")
	}
	// 300m at 50m spacing: points at 0,50,...,250 plus the endpoint = 7.
	if len(rs) != 7 {
		t.Fatalf("Resample count = %d, want 7", len(rs))
	}
	for i := 1; i < len(rs)-1; i++ {
		d := Distance(rs[i-1], rs[i])
		if !near(d, 50, 1) {
			t.Errorf("gap %d = %v, want about 50", i, d)
		}
	}
}

func TestPolylineResampleEdgeCases(t *testing.T) {
	pl := eastLine(100)
	if got := pl.Resample(0); len(got) != len(pl) {
		t.Errorf("spacing 0 should copy input")
	}
	same := Polyline{{Lat: 1, Lng: 1}, {Lat: 1, Lng: 1}}
	rs := same.Resample(10)
	if len(rs) != 2 {
		t.Errorf("zero-length polyline resample = %v", rs)
	}
}

func TestConcat(t *testing.T) {
	a := eastLine(100)
	b := Polyline{a[len(a)-1], Destination(a[len(a)-1], 90, 100)}
	joined := Concat(a, b)
	if len(joined) != 3 {
		t.Fatalf("Concat shared endpoint: len = %d, want 3", len(joined))
	}
	c := Polyline{{Lat: 50, Lng: 50}}
	joined2 := Concat(a, c)
	if len(joined2) != 3 {
		t.Fatalf("Concat disjoint: len = %d, want 3", len(joined2))
	}
	if got := Concat(); len(got) != 0 {
		t.Fatalf("Concat() = %v", got)
	}
	if got := Concat(Polyline{}, a, Polyline{}); len(got) != len(a) {
		t.Fatalf("Concat with empties: len = %d", len(got))
	}
}

func TestPolylineBBox(t *testing.T) {
	pl := Polyline{{Lat: 1, Lng: 2}, {Lat: 3, Lng: -1}}
	b := pl.BBox()
	if b.MinLat != 1 || b.MaxLat != 3 || b.MinLng != -1 || b.MaxLng != 2 {
		t.Fatalf("BBox = %+v", b)
	}
}
