package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// near reports whether a and b differ by at most tol.
func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistanceZero(t *testing.T) {
	p := Point{Lat: 39.9, Lng: 116.4}
	if d := Distance(p, p); d != 0 {
		t.Fatalf("Distance(p,p) = %v, want 0", d)
	}
}

func TestDistanceKnown(t *testing.T) {
	// One degree of latitude is about 111.19 km on the sphere we use.
	a := Point{Lat: 39.0, Lng: 116.0}
	b := Point{Lat: 40.0, Lng: 116.0}
	d := Distance(a, b)
	want := 2 * math.Pi * EarthRadiusMeters / 360
	if !near(d, want, 1) {
		t.Fatalf("Distance one degree lat = %v, want about %v", d, want)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	a := Point{Lat: 39.9042, Lng: 116.4074}
	b := Point{Lat: 39.9139, Lng: 116.3917}
	if d1, d2 := Distance(a, b), Distance(b, a); !near(d1, d2, 1e-9) {
		t.Fatalf("Distance not symmetric: %v vs %v", d1, d2)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(aLat, aLng, bLat, bLng, cLat, cLng float64) bool {
		a := Point{Lat: clampLat(aLat), Lng: clampLng(aLng)}
		b := Point{Lat: clampLat(bLat), Lng: clampLng(bLng)}
		c := Point{Lat: clampLat(cLat), Lng: clampLng(cLng)}
		ab, bc, ac := Distance(a, b), Distance(b, c), Distance(a, c)
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampLat(v float64) float64 { return math.Mod(math.Abs(v), 80) } // keep away from poles
func clampLng(v float64) float64 { return math.Mod(math.Abs(v), 170) }

func TestBearingCardinal(t *testing.T) {
	origin := Point{Lat: 39.9, Lng: 116.4}
	cases := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lat: 40.0, Lng: 116.4}, 0},
		{"south", Point{Lat: 39.8, Lng: 116.4}, 180},
		{"east", Point{Lat: 39.9, Lng: 116.5}, 90},
		{"west", Point{Lat: 39.9, Lng: 116.3}, 270},
	}
	for _, c := range cases {
		got := Bearing(origin, c.to)
		if AngleDiff(got, c.want) > 0.2 {
			t.Errorf("Bearing %s = %v, want about %v", c.name, got, c.want)
		}
	}
}

func TestBearingSelf(t *testing.T) {
	p := Point{Lat: 1, Lng: 2}
	if b := Bearing(p, p); b != 0 {
		t.Fatalf("Bearing(p,p) = %v, want 0", b)
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, 180, 180},
		{10, 350, 20},
		{350, 10, 20},
		{90, 270, 180},
		{45, 46, 1},
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); !near(got, c.want, 1e-9) {
			t.Errorf("AngleDiff(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleDiffProperties(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 360), math.Mod(b, 360)
		d := AngleDiff(a, b)
		return d >= 0 && d <= 180 && near(d, AngleDiff(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	p := Point{Lat: 39.9, Lng: 116.4}
	for _, brg := range []float64{0, 45, 90, 135, 180, 225, 270, 315} {
		for _, dist := range []float64{10, 100, 1000, 10000} {
			q := Destination(p, brg, dist)
			got := Distance(p, q)
			if !near(got, dist, dist*1e-6+0.01) {
				t.Errorf("Destination(%v, %v): distance = %v, want %v", brg, dist, got, dist)
			}
			gotBrg := Bearing(p, q)
			if AngleDiff(gotBrg, brg) > 0.01 {
				t.Errorf("Destination(%v, %v): bearing = %v", brg, dist, gotBrg)
			}
		}
	}
}

func TestDestinationZeroDistance(t *testing.T) {
	p := Point{Lat: 39.9, Lng: 116.4}
	if q := Destination(p, 123, 0); q != p {
		t.Fatalf("Destination with 0 dist = %v, want %v", q, p)
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a := Point{Lat: 10, Lng: 20}
	b := Point{Lat: 30, Lng: 40}
	if got := Interpolate(a, b, 0); got != a {
		t.Errorf("Interpolate t=0 = %v, want %v", got, a)
	}
	if got := Interpolate(a, b, 1); got != b {
		t.Errorf("Interpolate t=1 = %v, want %v", got, b)
	}
	mid := Interpolate(a, b, 0.5)
	if !near(mid.Lat, 20, 1e-9) || !near(mid.Lng, 30, 1e-9) {
		t.Errorf("Interpolate t=0.5 = %v", mid)
	}
	if m := Midpoint(a, b); m != mid {
		t.Errorf("Midpoint = %v, want %v", m, mid)
	}
}

func TestPointSegmentDistance(t *testing.T) {
	a := Point{Lat: 39.9, Lng: 116.4}
	b := Destination(a, 90, 1000) // 1 km east

	// Point on the segment midway: zero distance, t = 0.5.
	mid := Destination(a, 90, 500)
	d, tt := PointSegmentDistance(mid, a, b)
	if d > 0.5 || !near(tt, 0.5, 0.01) {
		t.Errorf("midpoint: d=%v t=%v", d, tt)
	}

	// Point 100 m north of the midpoint: distance about 100, t about 0.5.
	off := Destination(mid, 0, 100)
	d, tt = PointSegmentDistance(off, a, b)
	if !near(d, 100, 1) || !near(tt, 0.5, 0.01) {
		t.Errorf("offset: d=%v t=%v", d, tt)
	}

	// Point before the start clamps to t=0.
	before := Destination(a, 270, 200)
	d, tt = PointSegmentDistance(before, a, b)
	if !near(d, 200, 1) || tt != 0 {
		t.Errorf("before: d=%v t=%v", d, tt)
	}

	// Point past the end clamps to t=1.
	after := Destination(b, 90, 300)
	d, tt = PointSegmentDistance(after, a, b)
	if !near(d, 300, 1) || tt != 1 {
		t.Errorf("after: d=%v t=%v", d, tt)
	}
}

func TestPointSegmentDistanceDegenerate(t *testing.T) {
	a := Point{Lat: 39.9, Lng: 116.4}
	p := Destination(a, 0, 50)
	d, tt := PointSegmentDistance(p, a, a)
	if !near(d, 50, 1) || tt != 0 {
		t.Fatalf("degenerate segment: d=%v t=%v", d, tt)
	}
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	pts := []Point{{Lat: 1, Lng: 2}, {Lat: -1, Lng: 5}, {Lat: 3, Lng: -2}}
	for _, p := range pts {
		b.Extend(p)
	}
	if b.MinLat != -1 || b.MaxLat != 3 || b.MinLng != -2 || b.MaxLng != 5 {
		t.Fatalf("bbox = %+v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bbox should contain %v", p)
		}
	}
	if b.Contains(Point{Lat: 10, Lng: 0}) {
		t.Errorf("bbox should not contain far point")
	}
	c := b.Center()
	if !near(c.Lat, 1, 1e-9) || !near(c.Lng, 1.5, 1e-9) {
		t.Errorf("center = %v", c)
	}
}

func TestBBoxBuffer(t *testing.T) {
	b := EmptyBBox()
	b.Extend(Point{Lat: 39.9, Lng: 116.4})
	grown := b.Buffer(1000)
	outside := Destination(Point{Lat: 39.9, Lng: 116.4}, 0, 900)
	if !grown.Contains(outside) {
		t.Fatalf("buffered box should contain point 900m away")
	}
	far := Destination(Point{Lat: 39.9, Lng: 116.4}, 0, 2000)
	if grown.Contains(far) {
		t.Fatalf("buffered box should not contain point 2km away")
	}
}

func TestPointValid(t *testing.T) {
	if !(Point{Lat: 0, Lng: 0}).Valid() {
		t.Error("origin should be valid")
	}
	if (Point{Lat: 91, Lng: 0}).Valid() {
		t.Error("lat 91 should be invalid")
	}
	if (Point{Lat: 0, Lng: -181}).Valid() {
		t.Error("lng -181 should be invalid")
	}
	if (Point{Lat: math.NaN(), Lng: 0}).Valid() {
		t.Error("NaN lat should be invalid")
	}
}

func TestPointString(t *testing.T) {
	s := Point{Lat: 39.9042, Lng: 116.4074}.String()
	if s != "(39.904200, 116.407400)" {
		t.Fatalf("String = %q", s)
	}
}

func TestDestinationCrossesAntimeridian(t *testing.T) {
	p := Point{Lat: 10, Lng: 179.9}
	q := Destination(p, 90, 50000) // 50 km east crosses the antimeridian
	if q.Lng > 180 || q.Lng < -180 {
		t.Fatalf("longitude not normalized: %v", q)
	}
	if q.Lng > 0 {
		t.Fatalf("expected a negative (wrapped) longitude, got %v", q.Lng)
	}
	if d := Distance(p, q); math.Abs(d-50000) > 100 {
		t.Fatalf("wrapped distance = %v", d)
	}
}

func TestNormalizeLng(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want float64
	}{
		{"in range", 116.4, 116.4},
		{"zero", 0, 0},
		{"boundary +180", 180, 180},
		{"boundary -180", -180, -180},
		{"wrap east", 190, -170},
		{"wrap west", -190, 170},
		{"full turn", 360, 0},
		{"full turn negative", -360, 0},
		{"many turns", 360*3 + 45, 45},
		{"many negative turns", -360*5 - 45, -45},
		{"extreme positive", 1e18, math.Mod(1e18, 360)},
		{"extreme negative", -1e18, math.Mod(-1e18, 360)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := normalizeLng(tc.in)
			if got < -180 || got > 180 {
				t.Fatalf("normalizeLng(%v) = %v, outside [-180, 180]", tc.in, got)
			}
			// Allow an extra wrap for the extreme cases where math.Mod of the
			// expected value itself may sit outside (-180, 180].
			want := tc.want
			if want > 180 {
				want -= 360
			} else if want < -180 {
				want += 360
			}
			if !near(got, want, 1e-9) {
				t.Fatalf("normalizeLng(%v) = %v, want %v", tc.in, got, want)
			}
		})
	}
}

func TestNormalizeLngNonFinite(t *testing.T) {
	if got := normalizeLng(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("normalizeLng(NaN) = %v, want NaN", got)
	}
	if got := normalizeLng(math.Inf(1)); !math.IsInf(got, 1) {
		t.Fatalf("normalizeLng(+Inf) = %v, want +Inf", got)
	}
	if got := normalizeLng(math.Inf(-1)); !math.IsInf(got, -1) {
		t.Fatalf("normalizeLng(-Inf) = %v, want -Inf", got)
	}
}

func TestNormalizeLngQuick(t *testing.T) {
	inRange := func(lng float64) bool {
		if math.IsNaN(lng) || math.IsInf(lng, 0) {
			return true
		}
		got := normalizeLng(lng)
		return got >= -180 && got <= 180
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Fatal(err)
	}
}
