// Package geo provides geodesic primitives used throughout the STMaker
// library: points, great-circle distances, bearings, interpolation and
// distances between points and segments. They underpin the trajectory
// model's sample geometry (Def. 1), the calibration radius test (§II-A)
// and the moving-feature computations — speed, stay points, U-turn
// bearing changes (§III-B).
//
// Latitudes and longitudes are in decimal degrees; distances are in metres;
// bearings are in degrees clockwise from north in [0, 360).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by all great-circle
// computations in this package.
const EarthRadiusMeters = 6371000.0

// Point is a geographic location in decimal degrees.
type Point struct {
	Lat float64
	Lng float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lng)
}

// Valid reports whether the point lies within the legal latitude/longitude
// ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// Distance returns the haversine great-circle distance between a and b in
// metres.
func Distance(a, b Point) float64 {
	if a == b {
		return 0
	}
	lat1, lat2 := deg2rad(a.Lat), deg2rad(b.Lat)
	dLat := lat2 - lat1
	dLng := deg2rad(b.Lng - a.Lng)
	sinLat := math.Sin(dLat / 2)
	sinLng := math.Sin(dLng / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLng*sinLng
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// clockwise from north, in [0, 360). The bearing from a point to itself is 0.
func Bearing(a, b Point) float64 {
	if a == b {
		return 0
	}
	lat1, lat2 := deg2rad(a.Lat), deg2rad(b.Lat)
	dLng := deg2rad(b.Lng - a.Lng)
	y := math.Sin(dLng) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLng)
	brg := rad2deg(math.Atan2(y, x))
	return math.Mod(brg+360, 360)
}

// AngleDiff returns the absolute angular difference between two bearings in
// degrees, always in [0, 180].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// Destination returns the point reached by travelling dist metres from p on
// the given initial bearing (degrees clockwise from north).
func Destination(p Point, bearingDeg, dist float64) Point {
	if dist == 0 { //lint:allow floateq -- exact zero is a fast path, not a tolerance check
		return p
	}
	ang := dist / EarthRadiusMeters
	brg := deg2rad(bearingDeg)
	lat1 := deg2rad(p.Lat)
	lng1 := deg2rad(p.Lng)
	sinLat2 := math.Sin(lat1)*math.Cos(ang) + math.Cos(lat1)*math.Sin(ang)*math.Cos(brg)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(brg) * math.Sin(ang) * math.Cos(lat1)
	x := math.Cos(ang) - math.Sin(lat1)*sinLat2
	lng2 := lng1 + math.Atan2(y, x)
	return Point{Lat: rad2deg(lat2), Lng: normalizeLng(rad2deg(lng2))}
}

// normalizeLng wraps a longitude into [-180, 180]. math.Mod keeps it O(1)
// for arbitrarily large inputs (the loop it replaces ran one iteration per
// 360° of excess — effectively forever for inputs like 1e18). Values that
// are already in range, including the -180 boundary, pass through
// unchanged; NaN and ±Inf are returned as-is since no wrap is meaningful.
func normalizeLng(lng float64) float64 {
	if math.IsNaN(lng) || math.IsInf(lng, 0) {
		return lng
	}
	lng = math.Mod(lng, 360)
	switch {
	case lng > 180:
		lng -= 360
	case lng < -180:
		lng += 360
	}
	return lng
}

// Interpolate returns the point a fraction t of the way from a to b, with
// t=0 yielding a and t=1 yielding b. Interpolation is linear in lat/lng,
// which is accurate at the city scales STMaker works with.
func Interpolate(a, b Point, t float64) Point {
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*t,
		Lng: a.Lng + (b.Lng-a.Lng)*t,
	}
}

// Midpoint returns the midpoint between a and b.
func Midpoint(a, b Point) Point { return Interpolate(a, b, 0.5) }

// PointSegmentDistance returns the minimum distance in metres from p to the
// segment ab, together with the fraction t in [0,1] of the projection of p
// onto ab (0 at a, 1 at b).
//
// The computation projects to a local planar approximation around the
// segment, which is accurate for city-scale segments.
func PointSegmentDistance(p, a, b Point) (dist, t float64) {
	// Convert to local planar coordinates (metres) centred at a.
	cosLat := math.Cos(deg2rad(a.Lat))
	toXY := func(q Point) (x, y float64) {
		x = deg2rad(q.Lng-a.Lng) * cosLat * EarthRadiusMeters
		y = deg2rad(q.Lat-a.Lat) * EarthRadiusMeters
		return
	}
	px, py := toXY(p)
	bx, by := toXY(b)
	segLen2 := bx*bx + by*by
	if segLen2 == 0 { //lint:allow floateq -- degenerate zero-length segment guard
		return Distance(p, a), 0
	}
	t = (px*bx + py*by) / segLen2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	cx, cy := bx*t, by*t
	dx, dy := px-cx, py-cy
	return math.Sqrt(dx*dx + dy*dy), t
}

// BBox is an axis-aligned geographic bounding box.
type BBox struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
}

// EmptyBBox returns a bounding box that contains nothing; extending it with
// any point yields a box containing exactly that point.
func EmptyBBox() BBox {
	return BBox{
		MinLat: math.Inf(1), MinLng: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLng: math.Inf(-1),
	}
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lng < b.MinLng {
		b.MinLng = p.Lng
	}
	if p.Lng > b.MaxLng {
		b.MaxLng = p.Lng
	}
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lng >= b.MinLng && p.Lng <= b.MaxLng
}

// Buffer returns a copy of the box grown by approximately meters on every
// side.
func (b BBox) Buffer(meters float64) BBox {
	dLat := rad2deg(meters / EarthRadiusMeters)
	midLat := deg2rad((b.MinLat + b.MaxLat) / 2)
	cos := math.Cos(midLat)
	if cos < 1e-9 {
		cos = 1e-9
	}
	dLng := rad2deg(meters / (EarthRadiusMeters * cos))
	return BBox{
		MinLat: b.MinLat - dLat, MaxLat: b.MaxLat + dLat,
		MinLng: b.MinLng - dLng, MaxLng: b.MaxLng + dLng,
	}
}

// Center returns the centre point of the box.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lng: (b.MinLng + b.MaxLng) / 2}
}
