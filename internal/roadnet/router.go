package roadnet

import "reflect"

// Router is the pluggable shortest-path engine behind the HMM matcher's
// transition scoring and the public routing API. Two implementations
// exist: the bounded Dijkstra the package always had (NewDijkstraRouter)
// and a goal-directed ALT engine over a precomputed landmark overlay
// (NewALTRouter). Every implementation is exact — for the same graph and
// weight function, all routers return bit-identical distances — so
// swapping routers mid-request is safe and the summaries a serving path
// produces never depend on which engine answered.
//
// Implementations live in this package (the interface has unexported
// methods): the hot paths need allocation-free into-variants and
// admissible lower bounds that only make sense over package internals.
type Router interface {
	// ShortestPath computes the minimum-cost path from src to dst under
	// the weight function; see Graph.ShortestPath. The returned Cost is
	// bit-identical across implementations; among equal-cost paths the
	// step sequence may differ.
	ShortestPath(src, dst NodeID, weight WeightFunc) (*Path, error)
	// DistancesFrom computes bounded multi-target distances; see
	// Graph.DistancesFrom. Results are bit-identical across
	// implementations.
	DistancesFrom(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc) []float64

	// distancesFromInto is DistancesFrom writing into a caller-provided
	// slice, the allocation-free variant the HMM fast path uses.
	distancesFromInto(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc, out []float64)
	// provablyBeyond reports whether the engine certifies that the
	// ByDistance shortest-path distance from u to t exceeds budget. A
	// certificate is never wrong — the true (and the computed) distance
	// really is beyond the budget — so a caller may skip any search whose
	// budget is certified exceeded; false only means "no certificate",
	// never "reachable". Engines without precomputed bounds always
	// return false.
	provablyBeyond(u, t NodeID, budget float64) bool
}

// dijkstraRouter is the bounded-Dijkstra engine: a stateless view over
// the graph's own search methods, kept as the equivalence reference for
// every other engine.
type dijkstraRouter struct{ g *Graph }

// NewDijkstraRouter returns the plain bounded-Dijkstra routing engine
// over g — no precomputation, exact answers, the baseline every other
// Router is measured and verified against.
func NewDijkstraRouter(g *Graph) Router { return dijkstraRouter{g: g} }

func (r dijkstraRouter) ShortestPath(src, dst NodeID, weight WeightFunc) (*Path, error) {
	return r.g.ShortestPath(src, dst, weight)
}

func (r dijkstraRouter) DistancesFrom(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc) []float64 {
	return r.g.DistancesFrom(src, targets, maxCost, weight)
}

func (r dijkstraRouter) distancesFromInto(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc, out []float64) {
	r.g.distancesFrom(src, targets, maxCost, weight, out)
}

func (r dijkstraRouter) provablyBeyond(u, t NodeID, budget float64) bool { return false }

// byDistancePC is the code pointer of ByDistance, used to recognize the
// one weight function the ALT overlay's tables are valid for. Captured
// once; the per-call check is a single reflect.ValueOf.Pointer.
var byDistancePC = reflect.ValueOf(ByDistance).Pointer()

// isByDistance reports whether weight is the ByDistance metric (nil
// defaults to it, matching Graph.ShortestPath and Graph.DistancesFrom).
func isByDistance(weight WeightFunc) bool {
	return weight == nil || reflect.ValueOf(weight).Pointer() == byDistancePC
}
