package roadnet

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"stmaker/internal/geo"
)

// This file implements the ALT routing engine (A*, Landmarks,
// Triangle-inequality; Goldberg & Harrelson, SODA 2005): a small set of
// far-apart landmark nodes is chosen once per graph, the shortest-path
// distance between every landmark and every node is precomputed in both
// directions, and the triangle inequality turns those tables into an
// admissible lower bound on any node-to-node distance,
//
//	d(u, t) >= d(ℓ, t) − d(ℓ, u)   (forward table)
//	d(u, t) >= d(u, ℓ) − d(t, ℓ)   (backward table)
//
// maximized over all landmarks ℓ. The bound drives goal-directed A* for
// point-to-point queries and prunes the frontier of bounded multi-target
// searches: a node whose tentative distance plus lower bound already
// exceeds the search budget cannot lie on any in-budget path and is
// never pushed.
//
// Exactness under floating point. The repo's serving guarantee is that
// every routing engine returns bit-identical distances (summaries are
// compared byte-for-byte against the naive reference), so the bound is
// never trusted to the last ulp: every comparison deflates it by
// altSlackMeters, a margin about a thousand times larger than the worst
// accumulated rounding error of city-scale distance sums, and about
// eight orders of magnitude below any physically meaningful distance.
// Pruning therefore only ever removes provably-out-of-budget nodes, and
// the A* heuristic stays admissible, so both query kinds compute exactly
// the minimum floating-point path cost — the same value Dijkstra
// computes. The tables are valid only for the ByDistance metric; any
// other weight function transparently falls back to plain Dijkstra.

// DefaultOverlayLandmarks is the landmark count BuildOverlay uses when
// OverlayOptions.Landmarks is zero. Sixteen is the classic ALT sweet
// spot: enough geometric diversity for tight bounds, small enough that
// evaluating the bound stays a handful of nanoseconds.
const DefaultOverlayLandmarks = 16

// altSlackMeters deflates every lower-bound comparison so floating-point
// rounding in the precomputed tables can never turn "provably too far"
// into a wrong answer. Distance sums over city-scale graphs accumulate
// at most ~1e-8 m of error; one micrometre of slack gives three orders
// of magnitude of margin while being far below GPS noise.
const altSlackMeters = 1e-6

// Overlay is the precomputed ALT state of one graph: the landmark nodes
// and the dense landmark-to-node distance tables in both directions
// (both are needed on directed graphs — one-way streets make d(ℓ, v)
// and d(v, ℓ) differ). An Overlay is immutable once built; it hangs off
// the trained stmaker.Model, so the modelmut lint extends the Model
// immutability invariant to everything in here.
type Overlay struct {
	landmarks []NodeID
	numNodes  int
	fwd       [][]float64 // fwd[i][v] = shortest ByDistance cost landmark i → v
	bwd       [][]float64 // bwd[i][v] = shortest ByDistance cost v → landmark i
	// Node-major mirrors of the tables (fwdT[v*k+i] == fwd[i][v]):
	// evaluating the bound at a node reads all landmarks, so the query
	// path wants one contiguous k-run per node, not k scattered rows.
	// The landmark-major rows above stay the serialization layout.
	fwdT []float64
	bwdT []float64
}

// buildTransposed fills the node-major table mirrors; the last step of
// both constructors.
func (o *Overlay) buildTransposed() {
	k := len(o.landmarks)
	if k == 0 || o.numNodes == 0 {
		return
	}
	o.fwdT = make([]float64, k*o.numNodes)
	o.bwdT = make([]float64, k*o.numNodes)
	for i := 0; i < k; i++ {
		fr, br := o.fwd[i], o.bwd[i]
		for v := 0; v < o.numNodes; v++ {
			o.fwdT[v*k+i] = fr[v]
			o.bwdT[v*k+i] = br[v]
		}
	}
}

// OverlayOptions configures BuildOverlay.
type OverlayOptions struct {
	// Landmarks is the number of landmark nodes to select (0 uses
	// DefaultOverlayLandmarks; clamped to the node count).
	Landmarks int
	// Workers bounds the goroutines running the per-landmark Dijkstras
	// (0 uses GOMAXPROCS).
	Workers int
}

// BuildOverlay selects far-apart landmark nodes and precomputes their
// forward and backward distance tables, one full Dijkstra per landmark
// per direction, run in parallel across Workers goroutines. Selection
// and tables are deterministic for a given graph. An empty graph yields
// an overlay with no landmarks, which routes identically to plain
// Dijkstra.
func BuildOverlay(g *Graph, opts OverlayOptions) *Overlay {
	n := g.NumNodes()
	k := opts.Landmarks
	if k <= 0 {
		k = DefaultOverlayLandmarks
	}
	if k > n {
		k = n
	}
	o := &Overlay{numNodes: n, landmarks: selectLandmarks(g, k)}
	k = len(o.landmarks)
	o.fwd = make([][]float64, k)
	o.bwd = make([][]float64, k)
	if k == 0 {
		return o
	}
	rev := reverseAdjacency(g)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 2*k {
		workers = 2 * k
	}
	// 2k independent row tasks: rows 0..k-1 are forward tables, k..2k-1
	// backward.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= 2*k {
					return
				}
				if i < k {
					o.fwd[i] = landmarkRow(g, nil, o.landmarks[i])
				} else {
					o.bwd[i-k] = landmarkRow(g, rev, o.landmarks[i-k])
				}
			}
		}()
	}
	wg.Wait()
	o.buildTransposed()
	return o
}

// selectLandmarks picks k far-apart nodes by greedy farthest-point
// selection on great-circle distance: the first landmark is the node
// farthest from the node centroid (the graph's geometric rim), each
// subsequent one maximizes the distance to its nearest chosen landmark.
// Geometric selection is metric-cheap, deterministic (ties break to the
// lowest node id) and robust on disconnected graphs, where graph-distance
// selection would see +Inf everywhere.
func selectLandmarks(g *Graph, k int) []NodeID {
	n := g.NumNodes()
	if k <= 0 || n == 0 {
		return nil
	}
	var centroid geo.Point
	for _, nd := range g.nodes {
		centroid.Lat += nd.Pt.Lat
		centroid.Lng += nd.Pt.Lng
	}
	centroid.Lat /= float64(n)
	centroid.Lng /= float64(n)

	best, bestD := NodeID(0), -1.0
	for v, nd := range g.nodes {
		if d := geo.Distance(nd.Pt, centroid); d > bestD {
			best, bestD = NodeID(v), d
		}
	}
	chosen := []NodeID{best}
	minDist := make([]float64, n)
	for v := range minDist {
		minDist[v] = geo.Distance(g.nodes[v].Pt, g.nodes[best].Pt)
	}
	for len(chosen) < k {
		next, nextD := NodeID(-1), -1.0
		for v := 0; v < n; v++ {
			if minDist[v] > nextD {
				next, nextD = NodeID(v), minDist[v]
			}
		}
		if next < 0 || nextD <= 0 {
			break // every remaining node is co-located with a landmark
		}
		chosen = append(chosen, next)
		for v := 0; v < n; v++ {
			if d := geo.Distance(g.nodes[v].Pt, g.nodes[next].Pt); d < minDist[v] {
				minDist[v] = d
			}
		}
	}
	return chosen
}

// revArc is one arc of the reversed graph: traversing it from its
// (reversed) tail reaches node to at the stored edge's ByDistance cost.
type revArc struct {
	to      NodeID
	edge    EdgeID
	reverse bool
}

// reverseAdjacency builds the incoming-arc lists needed for backward
// Dijkstras (the graph itself stores only outgoing arcs).
func reverseAdjacency(g *Graph) [][]revArc {
	rev := make([][]revArc, len(g.nodes))
	for u, arcs := range g.out {
		for _, a := range arcs {
			e := &g.edges[a.edge]
			v := e.To
			if a.reverse {
				v = e.From
			}
			rev[v] = append(rev[v], revArc{to: NodeID(u), edge: a.edge, reverse: a.reverse})
		}
	}
	return rev
}

// landmarkRow runs one unbounded ByDistance Dijkstra from src and
// returns the full distance row (+Inf for unreachable nodes). A nil rev
// searches the forward graph; otherwise the reversed one, yielding
// node-to-landmark distances.
func landmarkRow(g *Graph, rev [][]revArc, src NodeID) []float64 {
	n := len(g.nodes)
	row := make([]float64, n)
	s := acquireSearch(n)
	defer releaseSearch(s)
	s.reach(src, 0, pred{})
	for len(s.heap) > 0 {
		cur := s.heap.pop()
		u := cur.node
		if s.settled[u] == s.gen {
			continue
		}
		s.settled[u] = s.gen
		du := s.dist[u]
		if rev == nil {
			for _, a := range g.out[u] {
				e := &g.edges[a.edge]
				v := e.To
				if a.reverse {
					v = e.From
				}
				if s.settled[v] == s.gen {
					continue
				}
				w := ByDistance(e, a.reverse)
				if w < 0 {
					w = 0
				}
				s.reach(v, du+w, pred{node: u, arc: a, ok: true})
			}
		} else {
			for _, a := range rev[u] {
				v := a.to
				if s.settled[v] == s.gen {
					continue
				}
				e := &g.edges[a.edge]
				w := ByDistance(e, a.reverse)
				if w < 0 {
					w = 0
				}
				s.reach(v, du+w, pred{node: u, ok: true})
			}
		}
	}
	for v := range row {
		row[v] = s.distTo(NodeID(v))
	}
	return row
}

// NumLandmarks returns the number of landmark nodes in the overlay.
func (o *Overlay) NumLandmarks() int { return len(o.landmarks) }

// NumNodes returns the node count of the graph the overlay was built
// for; an overlay only routes over a graph with exactly this many nodes.
func (o *Overlay) NumNodes() int { return o.numNodes }

// LandmarkNodes returns a copy of the landmark node ids, in selection
// order.
func (o *Overlay) LandmarkNodes() []NodeID { return append([]NodeID(nil), o.landmarks...) }

// Tables exposes the internal forward and backward distance tables for
// serialization. Callers must treat both as read-only: the overlay is
// immutable once built (the modelmut lint enforces this for everything
// reachable from a published Model).
func (o *Overlay) Tables() (fwd, bwd [][]float64) { return o.fwd, o.bwd }

// MemoryBytes estimates the resident size of the overlay: the dense
// distance tables dominate at 32 bytes per landmark per node — 16 for
// the landmark-major serialization rows, 16 for the node-major query
// mirrors.
func (o *Overlay) MemoryBytes() int64 {
	k := int64(len(o.landmarks))
	return 32*k*int64(o.numNodes) + // fwd + bwd rows and their transposed mirrors
		8*k + // landmark ids
		(2*24+8)*k + 96 // slice headers and struct overhead
}

// NewOverlayFromTables reconstructs an overlay from serialized tables
// (see Tables), validating every structural invariant so a model file is
// never trusted: row lengths must match numNodes, landmark ids must be
// unique and in range, distances must be non-negative and non-NaN
// (+Inf marks unreachable nodes), and each landmark must be at distance
// zero from itself in both tables. The slices are retained, not copied;
// the caller must not reuse them.
func NewOverlayFromTables(landmarks []NodeID, numNodes int, fwd, bwd [][]float64) (*Overlay, error) {
	if numNodes < 0 {
		return nil, fmt.Errorf("roadnet: overlay node count %d negative", numNodes)
	}
	if len(fwd) != len(landmarks) || len(bwd) != len(landmarks) {
		return nil, fmt.Errorf("roadnet: overlay has %d landmarks but %d forward / %d backward rows",
			len(landmarks), len(fwd), len(bwd))
	}
	seen := make(map[NodeID]bool, len(landmarks))
	for i, l := range landmarks {
		if int(l) < 0 || int(l) >= numNodes {
			return nil, fmt.Errorf("roadnet: overlay landmark %d is node %d, out of range [0,%d)", i, l, numNodes)
		}
		if seen[l] {
			return nil, fmt.Errorf("roadnet: overlay landmark node %d duplicated", l)
		}
		seen[l] = true
		for name, row := range map[string][]float64{"forward": fwd[i], "backward": bwd[i]} {
			if len(row) != numNodes {
				return nil, fmt.Errorf("roadnet: overlay %s row %d has %d entries, want %d", name, i, len(row), numNodes)
			}
			for v, d := range row {
				if math.IsNaN(d) || d < 0 {
					return nil, fmt.Errorf("roadnet: overlay %s row %d entry %d is %v", name, i, v, d)
				}
			}
			if row[l] != 0 { //lint:allow floateq -- structural invariant: a landmark is at exactly distance 0 from itself
				return nil, fmt.Errorf("roadnet: overlay %s row %d has self-distance %v, want 0", name, i, row[l])
			}
		}
	}
	o := &Overlay{
		landmarks: append([]NodeID(nil), landmarks...),
		numNodes:  numNodes,
		fwd:       fwd,
		bwd:       bwd,
	}
	o.buildTransposed()
	return o, nil
}

// lowerBound is the raw triangle-inequality bound on the ByDistance
// distance from u to t, maximized over landmarks. +Inf is a proof of
// unreachability (e.g. a landmark reaches u but not t). The value may
// overestimate the true bound by floating-point rounding; comparisons
// must deflate it by altSlackMeters.
func (o *Overlay) lowerBound(u, t NodeID) float64 {
	k := len(o.landmarks)
	fu, ft := o.fwdT[int(u)*k:][:k], o.fwdT[int(t)*k:][:k]
	bu, bt := o.bwdT[int(u)*k:][:k], o.bwdT[int(t)*k:][:k]
	lb := 0.0
	for i := 0; i < k; i++ {
		// Inf arithmetic does the right thing in every case: Inf−finite
		// is a valid +Inf bound, finite−Inf is −Inf (discarded), and
		// Inf−Inf is NaN, which fails the > test and is discarded.
		if d := ft[i] - fu[i]; d > lb {
			lb = d
		}
		if d := bu[i] - bt[i]; d > lb {
			lb = d
		}
	}
	return lb
}

// altRouter is the ALT engine: goal-directed A* for point-to-point
// queries and lower-bound-pruned bounded Dijkstra for multi-target
// queries, falling back to the plain engine for non-ByDistance weights.
type altRouter struct {
	g *Graph
	o *Overlay
	// gate is the multi-target engagement threshold: a bounded search
	// whose budget is below it explores so few nodes that the per-search
	// landmark aggregates cost more than the pruning saves, so it runs on
	// the plain engine. Computed once from the graph's mean edge cost.
	gate float64
}

// gateEdgeSpan is the search radius, in mean-edge-cost units, below
// which landmark pruning cannot pay for its per-search setup. A bounded
// region grows roughly quadratically with the radius, so densely
// sampled trajectories (budget of a few edges) stay on the plain
// engine while decimated ones (tens of edges) get pruned.
const gateEdgeSpan = 24

// NewALTRouter returns a Router answering ByDistance queries with the
// precomputed overlay. When the overlay is nil, empty, or was built for
// a graph with a different node count, the plain Dijkstra engine is
// returned instead — an overlay mismatch must never produce wrong
// routes, and all engines are exact, so falling back is always safe.
func NewALTRouter(g *Graph, o *Overlay) Router {
	if o == nil || len(o.landmarks) == 0 || o.numNodes != g.NumNodes() {
		return dijkstraRouter{g: g}
	}
	var sum float64
	for i := range g.edges {
		sum += ByDistance(&g.edges[i], false)
	}
	var mean float64
	if len(g.edges) > 0 {
		mean = sum / float64(len(g.edges))
	}
	return altRouter{g: g, o: o, gate: gateEdgeSpan * mean}
}

func (r altRouter) provablyBeyond(u, t NodeID, budget float64) bool {
	if budget <= r.gate {
		// Below the gate a bounded search is tiny: evaluating the bound
		// for every candidate pair costs more than the searches it could
		// skip. Declining to certify is always safe.
		return false
	}
	n := r.o.numNodes
	if int(u) < 0 || int(u) >= n || int(t) < 0 || int(t) >= n {
		return false
	}
	k := len(r.o.landmarks)
	fu, ft := r.o.fwdT[int(u)*k:][:k], r.o.fwdT[int(t)*k:][:k]
	bu, bt := r.o.bwdT[int(u)*k:][:k], r.o.bwdT[int(t)*k:][:k]
	for i := 0; i < k; i++ {
		// First landmark certifying the distance beyond the (slack-
		// inflated) budget wins; NaN diffs from Inf−Inf fail the test.
		if d := ft[i] - fu[i]; d-altSlackMeters > budget {
			return true
		}
		if d := bu[i] - bt[i]; d-altSlackMeters > budget {
			return true
		}
	}
	return false
}

// ShortestPath is goal-directed A*: the frontier is ordered by tentative
// distance plus the landmark lower bound to dst, so the search expands
// toward the destination instead of in every direction. The deflated
// bound is admissible but (at the last ulp) not necessarily consistent,
// so a settled node whose distance later improves is reopened — a
// label-correcting A* that terminates at the first pop of dst with
// exactly the minimum floating-point path cost, bit-identical to
// Dijkstra's.
func (r altRouter) ShortestPath(src, dst NodeID, weight WeightFunc) (*Path, error) {
	if !isByDistance(weight) {
		return r.g.ShortestPath(src, dst, weight)
	}
	g, o := r.g, r.o
	n := len(g.nodes)
	if int(src) < 0 || int(src) >= n || int(dst) < 0 || int(dst) >= n {
		return nil, ErrNoPath
	}
	if src == dst {
		return &Path{}, nil
	}
	h := func(v NodeID) float64 {
		lb := o.lowerBound(v, dst) - altSlackMeters
		if lb < 0 {
			return 0
		}
		return lb
	}
	if math.IsInf(h(src), 1) {
		return nil, ErrNoPath // a landmark proves dst unreachable from src
	}

	s := acquireSearch(n)
	defer releaseSearch(s)
	s.dist[src] = 0
	s.prev[src] = pred{}
	s.stamp[src] = s.gen
	s.heap.push(heapEntry{node: src, dist: h(src)})
	for len(s.heap) > 0 {
		cur := s.heap.pop()
		u := cur.node
		if s.settled[u] == s.gen {
			continue // stale duplicate, or settled before a reopening push
		}
		s.settled[u] = s.gen
		if u == dst {
			break
		}
		du := s.dist[u]
		for _, a := range g.out[u] {
			e := &g.edges[a.edge]
			v := e.To
			if a.reverse {
				v = e.From
			}
			w := ByDistance(e, a.reverse)
			if w < 0 {
				w = 0
			}
			nd := du + w
			if s.stamp[v] == s.gen && nd >= s.dist[v] {
				continue
			}
			hv := h(v)
			if math.IsInf(hv, 1) {
				continue // v provably cannot reach dst
			}
			s.dist[v] = nd
			s.prev[v] = pred{node: u, arc: a, ok: true}
			s.stamp[v] = s.gen
			if s.settled[v] == s.gen {
				s.settled[v] = s.gen - 1 // reopen: the settled distance just improved
			}
			s.heap.push(heapEntry{node: v, dist: nd + hv})
		}
	}

	if math.IsInf(s.distTo(dst), 1) {
		return nil, ErrNoPath
	}
	cost := s.dist[dst]
	var rev []PathStep
	for at := dst; at != src; {
		p := s.prev[at]
		if !p.ok {
			return nil, ErrNoPath
		}
		e := &g.edges[p.arc.edge]
		rev = append(rev, PathStep{Edge: e, Reverse: p.arc.reverse, From: p.node, To: at})
		at = p.node
	}
	steps := make([]PathStep, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return &Path{Steps: steps, Cost: cost}, nil
}

func (r altRouter) DistancesFrom(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc) []float64 {
	out := make([]float64, len(targets))
	r.distancesFromInto(src, targets, maxCost, weight, out)
	return out
}

// maxActiveLandmarks bounds how many landmarks a multi-target search
// evaluates per settled node. Landmarks whose bound is strong at the
// source stay strong across the (bounded) search region, so a small
// source-selected subset keeps nearly all the pruning power at a
// quarter of the per-node cost — the classic active-landmark refinement
// of ALT.
const maxActiveLandmarks = 4

// altScratch holds the per-search landmark aggregates of a multi-target
// query; pooled so the hot path allocates nothing.
type altScratch struct {
	minFwd []float64 // minFwd[i] = min over targets t of fwd[i][t]
	maxBwd []float64 // maxBwd[i] = max over targets t of bwd[i][t]
	active []int     // landmark indices with the strongest bound at src
}

var altScratchPool = sync.Pool{New: func() any { return &altScratch{} }}

// distancesFromInto is the bounded multi-target search with landmark
// pruning. The structure mirrors Graph.distancesFrom exactly — same
// frontier order, same early exits — plus one extra filter: a relaxation
// whose tentative distance plus the lower bound to the nearest target
// provably exceeds maxCost is never pushed. Aggregating the per-target
// bounds once per search (min over forward rows, max over backward rows)
// makes the per-push bound a single pass over the landmarks.
func (r altRouter) distancesFromInto(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc, out []float64) {
	if !isByDistance(weight) || maxCost <= 0 || math.IsInf(maxCost, 1) || maxCost <= r.gate {
		// No bound to prune against (foreign metric or unbounded), or a
		// budget too small for pruning to pay its setup: identical to the
		// plain engine — all engines are exact, so the gate is invisible
		// in the output.
		r.g.distancesFrom(src, targets, maxCost, weight, out)
		return
	}
	for i := range out {
		out[i] = math.Inf(1)
	}
	g, o := r.g, r.o
	n := len(g.nodes)
	if int(src) < 0 || int(src) >= n || len(targets) == 0 {
		return
	}

	k := len(o.landmarks)
	sc := altScratchPool.Get().(*altScratch) //nolint:stmaker/poolput -- the deferred Put below owns the release
	defer altScratchPool.Put(sc)
	if cap(sc.minFwd) < k {
		sc.minFwd = make([]float64, k)
		sc.maxBwd = make([]float64, k)
	}
	sc.minFwd = sc.minFwd[:k]
	sc.maxBwd = sc.maxBwd[:k]
	for i := 0; i < k; i++ {
		sc.minFwd[i] = math.Inf(1)
		sc.maxBwd[i] = math.Inf(-1)
	}
	anyTarget := false
	for _, t := range targets {
		if int(t) < 0 || int(t) >= n {
			continue
		}
		anyTarget = true
		ft, bt := o.fwdT[int(t)*k:][:k], o.bwdT[int(t)*k:][:k]
		for i := 0; i < k; i++ {
			if ft[i] < sc.minFwd[i] {
				sc.minFwd[i] = ft[i]
			}
			if bt[i] > sc.maxBwd[i] {
				sc.maxBwd[i] = bt[i]
			}
		}
	}
	if !anyTarget {
		return
	}
	// The one-off source check uses every landmark — maximum power for a
	// single evaluation.
	fs, bs := o.fwdT[int(src)*k:][:k], o.bwdT[int(src)*k:][:k]
	srcLB := 0.0
	for i := 0; i < k; i++ {
		if d := sc.minFwd[i] - fs[i]; d > srcLB {
			srcLB = d
		}
		if d := bs[i] - sc.maxBwd[i]; d > srcLB {
			srcLB = d
		}
	}
	if srcLB-altSlackMeters > maxCost {
		return // every target is provably beyond the bound
	}
	// Per-node evaluations use only the landmarks that bound best at the
	// source (NaN scores from Inf−Inf sort last and are only picked when
	// nothing better exists; lbSet discards their diffs anyway).
	sc.active = sc.active[:0]
	for len(sc.active) < maxActiveLandmarks && len(sc.active) < k {
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < k; i++ {
			picked := false
			for _, a := range sc.active {
				if a == i {
					picked = true
					break
				}
			}
			if picked {
				continue
			}
			score := sc.minFwd[i] - fs[i]
			if d := bs[i] - sc.maxBwd[i]; d > score {
				score = d
			}
			if best < 0 || score > bestScore {
				best, bestScore = i, score
			}
		}
		sc.active = append(sc.active, best)
	}
	// lbSet lower-bounds the distance from v to the nearest target over
	// the active landmark subset (any subset stays admissible).
	lbSet := func(v NodeID) float64 {
		fv, bv := o.fwdT[int(v)*k:][:k], o.bwdT[int(v)*k:][:k]
		lb := 0.0
		for _, i := range sc.active {
			if d := sc.minFwd[i] - fv[i]; d > lb {
				lb = d
			}
			if d := bv[i] - sc.maxBwd[i]; d > lb {
				lb = d
			}
		}
		return lb
	}

	s := acquireSearch(n)
	defer releaseSearch(s)
	pending := 0
	for _, t := range targets {
		if int(t) < 0 || int(t) >= n {
			continue
		}
		if s.target[t] != s.gen {
			s.target[t] = s.gen
			pending++
		}
	}

	s.reach(src, 0, pred{})
	for len(s.heap) > 0 {
		cur := s.heap.pop()
		if cur.dist > maxCost {
			break
		}
		u := cur.node
		if s.settled[u] == s.gen {
			continue
		}
		s.settled[u] = s.gen
		if s.target[u] == s.gen {
			s.target[u] = s.gen - 1
			pending--
			if pending == 0 {
				break
			}
		}
		du := s.dist[u]
		if du+lbSet(u)-altSlackMeters > maxCost {
			// No path through u reaches any target within the budget, so
			// none of u's relaxations can matter: every target distance the
			// search records is a settled exact distance ≤ maxCost, and a
			// shortest path to one of those cannot pass through u. Pruning
			// at settle time instead of push time evaluates the bound once
			// per settled node rather than once per relaxation.
			continue
		}
		for _, a := range g.out[u] {
			e := &g.edges[a.edge]
			v := e.To
			if a.reverse {
				v = e.From
			}
			if s.settled[v] == s.gen {
				continue
			}
			w := ByDistance(e, a.reverse)
			if w < 0 {
				w = 0
			}
			s.reach(v, du+w, pred{node: u, arc: a, ok: true})
		}
	}

	for i, t := range targets {
		if int(t) < 0 || int(t) >= n {
			continue
		}
		out[i] = s.distTo(t)
	}
}
