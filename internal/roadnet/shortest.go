package roadnet

import (
	"container/heap"
	"math"
)

// WeightFunc assigns a non-negative traversal cost to an arc. The reverse
// flag is true when a two-way edge is traversed against its stored
// orientation.
type WeightFunc func(e *Edge, reverse bool) float64

// ByDistance weights arcs by length in metres.
func ByDistance(e *Edge, _ bool) float64 { return e.Length() }

// ByTravelTime weights arcs by free-flow travel time in seconds.
func ByTravelTime(e *Edge, _ bool) float64 { return e.TravelTimeSeconds() }

// PathStep is one arc of a computed path.
type PathStep struct {
	Edge    *Edge
	Reverse bool
	From    NodeID
	To      NodeID
}

// Path is a sequence of arcs from a source to a destination node.
type Path struct {
	Steps []PathStep
	Cost  float64
}

// NodeIDs returns the node sequence of the path including both endpoints.
// A nil path returns nil; an empty path (source == destination) returns the
// single node.
func (p *Path) NodeIDs(source NodeID) []NodeID {
	out := []NodeID{source}
	for _, s := range p.Steps {
		out = append(out, s.To)
	}
	return out
}

// priority queue for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x interface{}) { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPath computes the minimum-cost path from src to dst under the
// given weight function using Dijkstra's algorithm. It returns ErrNoPath if
// dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID, weight WeightFunc) (*Path, error) {
	if weight == nil {
		weight = ByDistance
	}
	n := len(g.nodes)
	if int(src) < 0 || int(src) >= n || int(dst) < 0 || int(dst) >= n {
		return nil, ErrNoPath
	}
	if src == dst {
		return &Path{}, nil
	}

	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	type pred struct {
		node NodeID
		arc  arc
		ok   bool
	}
	prev := make([]pred, n)
	dist[src] = 0

	q := &pq{}
	heap.Init(q)
	items := make(map[NodeID]*pqItem, n)
	start := &pqItem{node: src, dist: 0}
	heap.Push(q, start)
	items[src] = start

	done := make([]bool, n)
	for q.Len() > 0 {
		cur := heap.Pop(q).(*pqItem)
		u := cur.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, a := range g.out[u] {
			e := &g.edges[a.edge]
			v := e.To
			if a.reverse {
				v = e.From
			}
			if done[v] {
				continue
			}
			w := weight(e, a.reverse)
			if w < 0 {
				w = 0
			}
			nd := dist[u] + w
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = pred{node: u, arc: a, ok: true}
				if it, exists := items[v]; exists && it.idx >= 0 && it.idx < q.Len() && (*q)[it.idx] == it {
					it.dist = nd
					heap.Fix(q, it.idx)
				} else {
					it := &pqItem{node: v, dist: nd}
					heap.Push(q, it)
					items[v] = it
				}
			}
		}
	}

	if math.IsInf(dist[dst], 1) {
		return nil, ErrNoPath
	}
	// Reconstruct.
	var rev []PathStep
	for at := dst; at != src; {
		p := prev[at]
		if !p.ok {
			return nil, ErrNoPath
		}
		e := &g.edges[p.arc.edge]
		rev = append(rev, PathStep{Edge: e, Reverse: p.arc.reverse, From: p.node, To: at})
		at = p.node
	}
	steps := make([]PathStep, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return &Path{Steps: steps, Cost: dist[dst]}, nil
}
