package roadnet

import (
	"math"
)

// WeightFunc assigns a non-negative traversal cost to an arc. The reverse
// flag is true when a two-way edge is traversed against its stored
// orientation.
type WeightFunc func(e *Edge, reverse bool) float64

// ByDistance weights arcs by length in metres.
func ByDistance(e *Edge, _ bool) float64 { return e.Length() }

// ByTravelTime weights arcs by free-flow travel time in seconds.
func ByTravelTime(e *Edge, _ bool) float64 { return e.TravelTimeSeconds() }

// PathStep is one arc of a computed path.
type PathStep struct {
	Edge    *Edge
	Reverse bool
	From    NodeID
	To      NodeID
}

// Path is a sequence of arcs from a source to a destination node.
type Path struct {
	Steps []PathStep
	Cost  float64
}

// NodeIDs returns the node sequence of the path including both endpoints.
// A nil path returns nil; an empty path (source == destination) returns the
// single node.
func (p *Path) NodeIDs(source NodeID) []NodeID {
	out := []NodeID{source}
	for _, s := range p.Steps {
		out = append(out, s.To)
	}
	return out
}

// ShortestPath computes the minimum-cost path from src to dst under the
// given weight function using Dijkstra's algorithm over pooled search state
// (see searchstate.go). It returns ErrNoPath if dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID, weight WeightFunc) (*Path, error) {
	if weight == nil {
		weight = ByDistance
	}
	n := len(g.nodes)
	if int(src) < 0 || int(src) >= n || int(dst) < 0 || int(dst) >= n {
		return nil, ErrNoPath
	}
	if src == dst {
		return &Path{}, nil
	}

	s := acquireSearch(n)
	defer releaseSearch(s)
	s.reach(src, 0, pred{})
	for len(s.heap) > 0 {
		cur := s.heap.pop()
		u := cur.node
		if s.settled[u] == s.gen {
			continue // stale duplicate from lazy insertion
		}
		s.settled[u] = s.gen
		if u == dst {
			break
		}
		du := s.dist[u]
		for _, a := range g.out[u] {
			e := &g.edges[a.edge]
			v := e.To
			if a.reverse {
				v = e.From
			}
			if s.settled[v] == s.gen {
				continue
			}
			w := weight(e, a.reverse)
			if w < 0 {
				w = 0
			}
			s.reach(v, du+w, pred{node: u, arc: a, ok: true})
		}
	}

	if math.IsInf(s.distTo(dst), 1) {
		return nil, ErrNoPath
	}
	cost := s.dist[dst]
	// Reconstruct.
	var rev []PathStep
	for at := dst; at != src; {
		p := s.prev[at]
		if !p.ok {
			return nil, ErrNoPath
		}
		e := &g.edges[p.arc.edge]
		rev = append(rev, PathStep{Edge: e, Reverse: p.arc.reverse, From: p.node, To: at})
		at = p.node
	}
	steps := make([]PathStep, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return &Path{Steps: steps, Cost: cost}, nil
}
