package roadnet

import (
	"math"
	"math/rand"
	"testing"
)

// TestDistancesFromMatchesShortestPath is the multi-target search's core
// property: every unbounded result equals the point-to-point Dijkstra's
// cost exactly (bit-for-bit — the fast path's equivalence guarantee leans
// on this).
func TestDistancesFromMatchesShortestPath(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng, 6, 250)
		for trial := 0; trial < 10; trial++ {
			src := NodeID(rng.Intn(g.NumNodes()))
			targets := make([]NodeID, 0, 8)
			for i := 0; i < 8; i++ {
				targets = append(targets, NodeID(rng.Intn(g.NumNodes())))
			}
			targets = append(targets, src, targets[0]) // duplicates and self
			got := g.DistancesFrom(src, targets, 0, ByDistance)
			for i, dst := range targets {
				path, err := g.ShortestPath(src, dst, ByDistance)
				if err != nil {
					if !math.IsInf(got[i], 1) {
						t.Fatalf("seed %d: %d->%d: got %v, want unreachable", seed, src, dst, got[i])
					}
					continue
				}
				if math.Float64bits(got[i]) != math.Float64bits(path.Cost) {
					t.Fatalf("seed %d: %d->%d: got %v, want %v", seed, src, dst, got[i], path.Cost)
				}
			}
		}
	}
}

// TestDistancesFromBounded checks the early-termination contract: finite
// results are exact and within the bound; +Inf results really are beyond
// it.
func TestDistancesFromBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGrid(rng, 8, 300)
	src := NodeID(0)
	targets := make([]NodeID, g.NumNodes())
	for i := range targets {
		targets[i] = NodeID(i)
	}
	const bound = 1200.0
	got := g.DistancesFrom(src, targets, bound, ByDistance)
	sawFinite, sawInf := false, false
	for i, dst := range targets {
		path, err := g.ShortestPath(src, dst, ByDistance)
		if math.IsInf(got[i], 1) {
			sawInf = true
			if err == nil && path.Cost <= bound {
				t.Fatalf("%d->%d reported unreached but cost %v <= bound", src, dst, path.Cost)
			}
			continue
		}
		sawFinite = true
		if got[i] > bound {
			t.Fatalf("%d->%d: finite result %v beyond bound %v", src, dst, got[i], bound)
		}
		if err != nil || math.Float64bits(got[i]) != math.Float64bits(path.Cost) {
			t.Fatalf("%d->%d: bounded result %v, want exact %v (err %v)", src, dst, got[i], path, err)
		}
	}
	if !sawFinite || !sawInf {
		t.Fatalf("bound %v did not split the grid (finite=%v inf=%v)", bound, sawFinite, sawInf)
	}
}

func TestDistancesFromEdgeCases(t *testing.T) {
	g := buildGrid(t, 3, 400)

	// Empty targets.
	if got := g.DistancesFrom(0, nil, 0, nil); len(got) != 0 {
		t.Fatalf("empty targets = %v", got)
	}
	// Out-of-range source: all +Inf.
	got := g.DistancesFrom(-1, []NodeID{0, 1}, 0, nil)
	for i, d := range got {
		if !math.IsInf(d, 1) {
			t.Fatalf("out-of-range src target %d = %v", i, d)
		}
	}
	// Out-of-range targets stay +Inf; valid ones resolve.
	got = g.DistancesFrom(0, []NodeID{-5, 1, NodeID(g.NumNodes() + 3)}, 0, nil)
	if !math.IsInf(got[0], 1) || !math.IsInf(got[2], 1) {
		t.Fatalf("out-of-range targets = %v", got)
	}
	if math.IsInf(got[1], 1) {
		t.Fatalf("valid target unresolved: %v", got)
	}
	// Source as its own target: zero.
	if got := g.DistancesFrom(4, []NodeID{4}, 0, nil); got[0] != 0 {
		t.Fatalf("self distance = %v", got)
	}
	// Nil weight defaults to ByDistance, as in ShortestPath.
	a := g.DistancesFrom(0, []NodeID{8}, 0, nil)
	path, err := g.ShortestPath(0, 8, ByDistance)
	if err != nil || a[0] != path.Cost {
		t.Fatalf("nil-weight distance %v, want %v", a[0], path)
	}
}

// TestShortestPathPooledStateReuse runs many searches back to back so
// pooled, epoch-stamped state is reused across different sources and
// graphs; any stale-slot bug would surface as a wrong cost.
func TestShortestPathPooledStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	small := buildGrid(t, 3, 400)
	big := randomGrid(rng, 7, 200)
	for i := 0; i < 200; i++ {
		// Alternate graph sizes so the pooled arrays shrink/grow their
		// valid region between calls.
		if i%2 == 0 {
			src := NodeID(rng.Intn(big.NumNodes()))
			dst := NodeID(rng.Intn(big.NumNodes()))
			p1, err1 := big.ShortestPath(src, dst, ByDistance)
			p2, err2 := big.ShortestPath(src, dst, ByDistance)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("iteration %d: inconsistent reachability", i)
			}
			if err1 == nil && math.Float64bits(p1.Cost) != math.Float64bits(p2.Cost) {
				t.Fatalf("iteration %d: costs diverge %v vs %v", i, p1.Cost, p2.Cost)
			}
		} else {
			if _, err := small.ShortestPath(0, 8, ByTravelTime); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
}
