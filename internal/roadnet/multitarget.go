package roadnet

import (
	"math"
)

// DistancesFrom computes shortest-path distances from src to every node in
// targets with a single bounded Dijkstra search, instead of one
// point-to-point search per target. The result is parallel to targets;
// entry i is +Inf when targets[i] was not settled within the bound.
//
// maxCost bounds the search: the frontier is abandoned as soon as its
// minimum tentative distance exceeds maxCost, so a finite result d always
// satisfies d <= maxCost and is the exact shortest distance (a bounded
// search that settles a node has found its true minimum). maxCost <= 0 or
// +Inf disables the bound. The search also stops early once every distinct
// in-range target is settled, whichever comes first.
//
// Out-of-range src or targets yield +Inf entries. Duplicate targets are
// fine. DistancesFrom allocates only the result slice; the O(nodes) search
// state is pooled (see searchstate.go), so it is safe and cheap to call
// from many goroutines.
func (g *Graph) DistancesFrom(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc) []float64 {
	out := make([]float64, len(targets))
	g.distancesFrom(src, targets, maxCost, weight, out)
	return out
}

// distancesFrom is DistancesFrom writing into a caller-provided slice
// (len(out) must equal len(targets)) so hot paths can avoid the result
// allocation.
func (g *Graph) distancesFrom(src NodeID, targets []NodeID, maxCost float64, weight WeightFunc, out []float64) {
	for i := range out {
		out[i] = math.Inf(1)
	}
	n := len(g.nodes)
	if int(src) < 0 || int(src) >= n || len(targets) == 0 {
		return
	}
	if weight == nil {
		weight = ByDistance
	}
	if maxCost <= 0 {
		maxCost = math.Inf(1)
	}

	s := acquireSearch(n)
	defer releaseSearch(s)

	// Mark the distinct in-range targets so the search can stop as soon as
	// the last one settles.
	pending := 0
	for _, t := range targets {
		if int(t) < 0 || int(t) >= n {
			continue
		}
		if s.target[t] != s.gen {
			s.target[t] = s.gen
			pending++
		}
	}
	if pending == 0 {
		return
	}

	s.reach(src, 0, pred{})
	for len(s.heap) > 0 {
		cur := s.heap.pop()
		if cur.dist > maxCost {
			break // frontier minimum beyond the bound: nothing left to settle
		}
		u := cur.node
		if s.settled[u] == s.gen {
			continue // stale duplicate from lazy insertion
		}
		s.settled[u] = s.gen
		if s.target[u] == s.gen {
			s.target[u] = s.gen - 1 // consume the mark
			pending--
			if pending == 0 {
				break
			}
		}
		du := s.dist[u]
		for _, a := range g.out[u] {
			e := &g.edges[a.edge]
			v := e.To
			if a.reverse {
				v = e.From
			}
			if s.settled[v] == s.gen {
				continue
			}
			w := weight(e, a.reverse)
			if w < 0 {
				w = 0
			}
			s.reach(v, du+w, pred{node: u, arc: a, ok: true})
		}
	}

	for i, t := range targets {
		if int(t) < 0 || int(t) >= n {
			continue
		}
		out[i] = s.distTo(t)
	}
}
