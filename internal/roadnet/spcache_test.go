package roadnet

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"stmaker/internal/metrics"
)

func TestSPCacheStoreLookup(t *testing.T) {
	c := NewSPCache(SPCacheOptions{Capacity: 128})
	if _, ok := c.Lookup(1, 2, 100); ok {
		t.Fatal("empty cache hit")
	}
	c.Store(1, 2, 42.5, 0)
	d, ok := c.Lookup(1, 2, 100)
	if !ok || d != 42.5 {
		t.Fatalf("lookup = %v, %v", d, ok)
	}
	// Direction matters: (2,1) is a different pair.
	if _, ok := c.Lookup(2, 1, 100); ok {
		t.Fatal("reverse pair should miss")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSPCacheUnreachedBoundSemantics(t *testing.T) {
	c := NewSPCache(SPCacheOptions{Capacity: 128})
	inf := math.Inf(1)
	c.Store(3, 4, inf, 500) // unreached within 500

	// A lookup needing less (or equal) bound is answered: still unreached.
	if d, ok := c.Lookup(3, 4, 400); !ok || !math.IsInf(d, 1) {
		t.Fatalf("narrow-bound lookup = %v, %v", d, ok)
	}
	// A lookup needing a larger bound must re-search.
	if _, ok := c.Lookup(3, 4, 600); ok {
		t.Fatal("wide-bound lookup should miss")
	}
	// Storing a wider unreached marker widens the valid range.
	c.Store(3, 4, inf, 800)
	if d, ok := c.Lookup(3, 4, 600); !ok || !math.IsInf(d, 1) {
		t.Fatalf("widened lookup = %v, %v", d, ok)
	}
	// A narrower marker must not shrink it back.
	c.Store(3, 4, inf, 100)
	if _, ok := c.Lookup(3, 4, 600); !ok {
		t.Fatal("narrower marker shrank the bound")
	}
	// An exact distance replaces the marker for good.
	c.Store(3, 4, 950, 0)
	if d, ok := c.Lookup(3, 4, 600); !ok || d != 950 {
		t.Fatalf("exact overwrite lookup = %v, %v", d, ok)
	}
	// ... and a later unreached marker must not clobber the exact value.
	c.Store(3, 4, inf, 2000)
	if d, ok := c.Lookup(3, 4, 600); !ok || d != 950 {
		t.Fatalf("marker clobbered exact value: %v, %v", d, ok)
	}
}

func TestSPCacheEvictsAtCapacity(t *testing.T) {
	c := NewSPCache(SPCacheOptions{Capacity: 32})
	for i := 0; i < 500; i++ {
		c.Store(NodeID(i), NodeID(i+1), float64(i), 0)
	}
	s := c.Stats()
	if s.Entries > 32 {
		t.Fatalf("cache grew past capacity: %+v", s)
	}
	if s.Evictions < 500-32 {
		t.Fatalf("expected ~%d evictions, got %+v", 500-32, s)
	}
}

func TestSPShardLRUOrder(t *testing.T) {
	var sh spShard
	sh.init(2)
	sh.insert(1, 10, 0)
	sh.insert(2, 20, 0)
	// Touch key 1 so key 2 becomes the LRU victim.
	sh.moveToFront(sh.entries[1])
	if evicted := sh.insert(3, 30, 0); !evicted {
		t.Fatal("insert at capacity should evict")
	}
	if _, ok := sh.entries[2]; ok {
		t.Fatal("LRU victim (key 2) survived")
	}
	if sh.entries[1] == nil || sh.entries[3] == nil {
		t.Fatalf("expected keys 1 and 3 to remain, have %d entries", len(sh.entries))
	}
}

func TestSPCacheNilSafe(t *testing.T) {
	var c *SPCache
	if _, ok := c.Lookup(1, 2, 100); ok {
		t.Fatal("nil cache hit")
	}
	c.Store(1, 2, 3, 0) // must not panic
	if s := c.Stats(); s != (SPCacheStats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
}

func TestSPCacheWiredCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewSPCache(SPCacheOptions{
		Capacity:  64,
		Hits:      reg.Counter("hits"),
		Misses:    reg.Counter("misses"),
		Evictions: reg.Counter("evictions"),
	})
	c.Lookup(1, 2, 10) // miss
	c.Store(1, 2, 5, 0)
	c.Lookup(1, 2, 10) // hit
	snap := reg.Snapshot()
	if snap.Counters["hits"] != 1 || snap.Counters["misses"] != 1 {
		t.Fatalf("registry counters = %+v", snap.Counters)
	}
}

func TestSPCacheConcurrentSmoke(t *testing.T) {
	c := NewSPCache(SPCacheOptions{Capacity: 256})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				src := NodeID(rng.Intn(64))
				dst := NodeID(rng.Intn(64))
				if d, ok := c.Lookup(src, dst, 1000); ok && !math.IsInf(d, 1) {
					// Values are keyed deterministically, so a hit must
					// carry the key's value even under churn.
					if want := float64(src)*1000 + float64(dst); d != want {
						panic("corrupt cache value")
					}
				}
				c.Store(src, dst, float64(src)*1000+float64(dst), 0)
			}
		}(int64(w))
	}
	wg.Wait()
	if s := c.Stats(); s.Entries > 256 {
		t.Fatalf("cache exceeded capacity under concurrency: %+v", s)
	}
}
