package roadnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"stmaker/internal/geo"
)

// requireSameDistances fails unless the two distance slices are bitwise
// identical (+Inf included).
func requireSameDistances(t *testing.T, want, got []float64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: entry %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestALTMatchesDijkstraOnRandomGrids is the ALT engine's core exactness
// property: across randomized grids (random grades, one-way sprinkles),
// random sources, target sets and bounds, both the bounded multi-target
// search and point-to-point ShortestPath must return costs bit-identical
// to plain Dijkstra — the guarantee that lets the serving path swap
// engines without changing a single summary byte.
func TestALTMatchesDijkstraOnRandomGrids(t *testing.T) {
	for seed := int64(100); seed < 108; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 5 + rng.Intn(5)
			spacing := 120 + rng.Float64()*180
			g := randomGrid(rng, n, spacing)
			dij := NewDijkstraRouter(g)
			alt := NewALTRouter(g, BuildOverlay(g, OverlayOptions{Landmarks: 1 + rng.Intn(8)}))
			if _, ok := alt.(altRouter); !ok {
				t.Fatalf("expected an ALT engine, got %T", alt)
			}
			nodes := g.NumNodes()
			for trial := 0; trial < 40; trial++ {
				src := NodeID(rng.Intn(nodes))
				dst := NodeID(rng.Intn(nodes))
				wantP, wantErr := dij.ShortestPath(src, dst, ByDistance)
				gotP, gotErr := alt.ShortestPath(src, dst, ByDistance)
				if (wantErr != nil) != (gotErr != nil) {
					t.Fatalf("trial %d: ShortestPath(%d,%d) err %v != %v", trial, src, dst, gotErr, wantErr)
				}
				if wantErr == nil && math.Float64bits(wantP.Cost) != math.Float64bits(gotP.Cost) {
					t.Fatalf("trial %d: ShortestPath(%d,%d) cost %v, want %v", trial, src, dst, gotP.Cost, wantP.Cost)
				}

				targets := make([]NodeID, 1+rng.Intn(8))
				for i := range targets {
					targets[i] = NodeID(rng.Intn(nodes))
				}
				// Sweep bound regimes: tight (prunes almost everything),
				// medium, loose, and unbounded.
				for _, maxCost := range []float64{spacing * 0.5, spacing * float64(n) * 0.7, spacing * float64(n) * 3, 0} {
					want := dij.DistancesFrom(src, targets, maxCost, ByDistance)
					got := alt.DistancesFrom(src, targets, maxCost, ByDistance)
					requireSameDistances(t, want, got,
						fmt.Sprintf("trial %d DistancesFrom(%d, %v, %g)", trial, src, targets, maxCost))
				}
			}
		})
	}
}

// TestALTDisconnectedComponents pins both query kinds on a graph with two
// disconnected components: cross-component answers must be ErrNoPath /
// +Inf from both engines (the overlay proves unreachability outright).
func TestALTDisconnectedComponents(t *testing.T) {
	g := &Graph{}
	// Component A: a 3-node chain. Component B: a 2-node chain 5km away.
	a0 := g.AddNode(testOrigin, false)
	a1 := g.AddNode(geo.Destination(testOrigin, 90, 400), false)
	a2 := g.AddNode(geo.Destination(testOrigin, 90, 800), false)
	bBase := geo.Destination(testOrigin, 0, 5000)
	b0 := g.AddNode(bBase, false)
	b1 := g.AddNode(geo.Destination(bBase, 90, 400), false)
	for _, e := range [][2]NodeID{{a0, a1}, {a1, a2}, {b0, b1}} {
		if _, err := g.AddEdge(e[0], e[1], "r", GradeProvincial, 0, TwoWay, nil); err != nil {
			t.Fatal(err)
		}
	}
	dij := NewDijkstraRouter(g)
	alt := NewALTRouter(g, BuildOverlay(g, OverlayOptions{Landmarks: 4}))
	if _, err := alt.ShortestPath(a0, b1, ByDistance); err == nil {
		t.Fatal("expected ErrNoPath across components")
	}
	want := dij.DistancesFrom(a0, []NodeID{a2, b0, b1}, 10000, ByDistance)
	got := alt.DistancesFrom(a0, []NodeID{a2, b0, b1}, 10000, ByDistance)
	requireSameDistances(t, want, got, "cross-component")
	if !math.IsInf(got[1], 1) || !math.IsInf(got[2], 1) {
		t.Fatalf("expected +Inf to the far component, got %v", got)
	}
}

// TestALTForeignWeightFallsBack pins the metric guard: the overlay tables
// are ByDistance-only, so a ByTravelTime query must route through plain
// Dijkstra and agree with it exactly.
func TestALTForeignWeightFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGrid(rng, 6, 200)
	dij := NewDijkstraRouter(g)
	alt := NewALTRouter(g, BuildOverlay(g, OverlayOptions{}))
	for trial := 0; trial < 20; trial++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		wantP, wantErr := dij.ShortestPath(src, dst, ByTravelTime)
		gotP, gotErr := alt.ShortestPath(src, dst, ByTravelTime)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("err mismatch: %v vs %v", gotErr, wantErr)
		}
		if wantErr == nil && math.Float64bits(wantP.Cost) != math.Float64bits(gotP.Cost) {
			t.Fatalf("ByTravelTime cost %v, want %v", gotP.Cost, wantP.Cost)
		}
		want := dij.DistancesFrom(src, []NodeID{dst}, 5000, ByTravelTime)
		got := alt.DistancesFrom(src, []NodeID{dst}, 5000, ByTravelTime)
		requireSameDistances(t, want, got, "ByTravelTime distances")
	}
}

// TestALTRouterDegradedOverlays pins the safety fallbacks of NewALTRouter:
// a nil, empty, or wrong-graph overlay must yield the plain engine rather
// than an engine that could answer wrongly.
func TestALTRouterDegradedOverlays(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGrid(rng, 5, 200)
	small := randomGrid(rng, 3, 200)
	for name, o := range map[string]*Overlay{
		"nil":      nil,
		"empty":    {},
		"mismatch": BuildOverlay(small, OverlayOptions{}),
	} {
		if _, ok := NewALTRouter(g, o).(dijkstraRouter); !ok {
			t.Fatalf("%s overlay: expected Dijkstra fallback", name)
		}
	}
	if _, ok := NewALTRouter(g, BuildOverlay(g, OverlayOptions{})).(altRouter); !ok {
		t.Fatal("matching overlay: expected ALT engine")
	}
}

// TestOverlayLowerBoundAdmissible checks the certified-bound contract the
// HMM prefilter relies on: the raw triangle-inequality bound never
// exceeds the true distance by more than the slack, and provablyBeyond
// never certifies a reachable-within-budget pair as beyond it. The
// router is built with a zero gate so every trial exercises the
// certification path rather than the small-search opt-out.
func TestOverlayLowerBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGrid(rng, 7, 180)
	dij := NewDijkstraRouter(g)
	o := BuildOverlay(g, OverlayOptions{})
	alt := altRouter{g: g, o: o}
	for trial := 0; trial < 200; trial++ {
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		lb := o.lowerBound(u, v)
		p, err := dij.ShortestPath(u, v, ByDistance)
		if err != nil {
			continue // unreachable: any bound (including +Inf) is admissible
		}
		if lb-altSlackMeters > p.Cost {
			t.Fatalf("lowerBound(%d,%d) = %v exceeds true distance %v", u, v, lb, p.Cost)
		}
		if alt.provablyBeyond(u, v, p.Cost) {
			t.Fatalf("provablyBeyond(%d,%d, %v) certified the exact distance as beyond budget", u, v, p.Cost)
		}
	}
}

// TestOverlayBuildDeterministic pins that two builds over the same graph
// select the same landmarks and compute bit-identical tables — the
// property that keeps model files deterministic.
func TestOverlayBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGrid(rng, 6, 220)
	a := BuildOverlay(g, OverlayOptions{Workers: 1})
	b := BuildOverlay(g, OverlayOptions{Workers: 8})
	if fmt.Sprint(a.LandmarkNodes()) != fmt.Sprint(b.LandmarkNodes()) {
		t.Fatalf("landmark selection differs: %v vs %v", a.LandmarkNodes(), b.LandmarkNodes())
	}
	af, ab := a.Tables()
	bf, bb := b.Tables()
	for i := range af {
		requireSameDistances(t, af[i], bf[i], fmt.Sprintf("fwd row %d", i))
		requireSameDistances(t, ab[i], bb[i], fmt.Sprintf("bwd row %d", i))
	}
}

// TestOverlayDirectedTables pins that the backward table really is the
// reverse-graph distance: on a one-way chain, d(ℓ, v) and d(v, ℓ) must
// disagree in exactly the way the arrows dictate.
func TestOverlayDirectedTables(t *testing.T) {
	g := &Graph{}
	n0 := g.AddNode(testOrigin, false)
	n1 := g.AddNode(geo.Destination(testOrigin, 90, 300), false)
	n2 := g.AddNode(geo.Destination(testOrigin, 90, 600), false)
	for _, e := range [][2]NodeID{{n0, n1}, {n1, n2}} {
		if _, err := g.AddEdge(e[0], e[1], "ow", GradeProvincial, 0, OneWay, nil); err != nil {
			t.Fatal(err)
		}
	}
	o := BuildOverlay(g, OverlayOptions{Landmarks: 3})
	fwd, bwd := o.Tables()
	for i, l := range o.LandmarkNodes() {
		for v := 0; v < g.NumNodes(); v++ {
			wantFwd := math.Inf(1)
			if p, err := g.ShortestPath(l, NodeID(v), ByDistance); err == nil {
				wantFwd = p.Cost
			}
			wantBwd := math.Inf(1)
			if p, err := g.ShortestPath(NodeID(v), l, ByDistance); err == nil {
				wantBwd = p.Cost
			}
			if math.Float64bits(fwd[i][v]) != math.Float64bits(wantFwd) {
				t.Fatalf("fwd[%d][%d] = %v, want %v", i, v, fwd[i][v], wantFwd)
			}
			if math.Float64bits(bwd[i][v]) != math.Float64bits(wantBwd) {
				t.Fatalf("bwd[%d][%d] = %v, want %v", i, v, bwd[i][v], wantBwd)
			}
		}
	}
}

// TestNewOverlayFromTablesValidation walks the structural failure modes a
// hostile or corrupted model file could present.
func TestNewOverlayFromTablesValidation(t *testing.T) {
	good := func() ([]NodeID, int, [][]float64, [][]float64) {
		return []NodeID{0, 2}, 3,
			[][]float64{{0, 1, 2}, {2, 1, 0}},
			[][]float64{{0, 1, 2}, {2, 1, 0}}
	}
	if _, err := NewOverlayFromTables(good()); err != nil {
		t.Fatalf("valid tables rejected: %v", err)
	}
	cases := map[string]func() ([]NodeID, int, [][]float64, [][]float64){
		"landmark out of range": func() ([]NodeID, int, [][]float64, [][]float64) {
			l, n, f, b := good()
			l[1] = 9
			return l, n, f, b
		},
		"duplicate landmark": func() ([]NodeID, int, [][]float64, [][]float64) {
			l, n, f, b := good()
			l[1] = 0
			b[1][0] = 0
			f[1][0] = 0
			return l, n, f, b
		},
		"row too short": func() ([]NodeID, int, [][]float64, [][]float64) {
			l, n, f, b := good()
			f[0] = f[0][:2]
			return l, n, f, b
		},
		"row count mismatch": func() ([]NodeID, int, [][]float64, [][]float64) {
			l, n, f, b := good()
			return l, n, f[:1], b
		},
		"NaN distance": func() ([]NodeID, int, [][]float64, [][]float64) {
			l, n, f, b := good()
			f[0][1] = math.NaN()
			return l, n, f, b
		},
		"negative distance": func() ([]NodeID, int, [][]float64, [][]float64) {
			l, n, f, b := good()
			b[1][0] = -1
			return l, n, f, b
		},
		"nonzero self-distance": func() ([]NodeID, int, [][]float64, [][]float64) {
			l, n, f, b := good()
			f[0][0] = 5
			return l, n, f, b
		},
	}
	for name, mk := range cases {
		if _, err := NewOverlayFromTables(mk()); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestHMMALTMatchesNaiveAcrossSamplingRates is the decimated-sampling
// equivalence matrix: at every sampling rate — including the sparse
// regimes where the transition bound stretches and the ALT prefilter
// prunes hardest — the ALT-backed fast path must reproduce the naive
// reference byte for byte, cold cache and warm.
func TestHMMALTMatchesNaiveAcrossSamplingRates(t *testing.T) {
	for seed := int64(200); seed < 204; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 6 + rng.Intn(3)
			g := randomGrid(rng, n, 150+rng.Float64()*100)
			alt := NewALTRouter(g, BuildOverlay(g, OverlayOptions{}))
			naive := newNaiveHMMMatcher(g, HMMOptions{})
			dense := randomWalkPoints(rng, g, 120)
			for _, factor := range []int{1, 2, 4, 8} {
				pts := make([]geo.Point, 0, len(dense)/factor+1)
				for i := 0; i < len(dense); i += factor {
					pts = append(pts, dense[i])
				}
				want := naive.MatchPoints(pts)

				fast := NewHMMMatcher(g, HMMOptions{Cache: NewSPCache(SPCacheOptions{Capacity: 4096})})
				fast.SetRouter(alt)
				cold := fast.MatchPoints(pts)
				requireSameMatches(t, want, cold, fmt.Sprintf("factor %d cold", factor))
				warm := fast.MatchPoints(pts)
				requireSameMatches(t, want, warm, fmt.Sprintf("factor %d warm", factor))
			}
		})
	}
}

// TestHMMRouterSwapMidStream swaps engines between decodes of the same
// matcher (what a model publish does to a serving summarizer) and pins
// that the output never changes.
func TestHMMRouterSwapMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGrid(rng, 6, 200)
	h := NewHMMMatcher(g, HMMOptions{Cache: NewSPCache(SPCacheOptions{Capacity: 2048})})
	pts := randomWalkPoints(rng, g, 60)
	want := h.MatchPoints(pts)
	h.SetRouter(NewALTRouter(g, BuildOverlay(g, OverlayOptions{})))
	requireSameMatches(t, want, h.MatchPoints(pts), "after ALT swap")
	h.SetRouter(nil) // back to plain Dijkstra
	requireSameMatches(t, want, h.MatchPoints(pts), "after fallback swap")
}

// FuzzALTEquivalence fuzzes the exactness property over generated grids,
// endpoints and bounds; run by make fuzz-smoke.
func FuzzALTEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(17), 900.0)
	f.Add(int64(2), uint8(0), uint8(24), 120.0)
	f.Add(int64(3), uint8(24), uint8(0), 1e9)
	f.Fuzz(func(t *testing.T, seed int64, a, b uint8, maxCost float64) {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng, 5, 150+rng.Float64()*150)
		dij := NewDijkstraRouter(g)
		alt := NewALTRouter(g, BuildOverlay(g, OverlayOptions{Landmarks: 1 + int(a%8)}))
		src := NodeID(int(a) % g.NumNodes())
		dst := NodeID(int(b) % g.NumNodes())
		if math.IsNaN(maxCost) {
			maxCost = 0
		}
		wantP, wantErr := dij.ShortestPath(src, dst, ByDistance)
		gotP, gotErr := alt.ShortestPath(src, dst, ByDistance)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("ShortestPath err %v != %v", gotErr, wantErr)
		}
		if wantErr == nil && math.Float64bits(wantP.Cost) != math.Float64bits(gotP.Cost) {
			t.Fatalf("ShortestPath cost %v != %v", gotP.Cost, wantP.Cost)
		}
		targets := []NodeID{dst, src, NodeID(int(a+b) % g.NumNodes())}
		want := dij.DistancesFrom(src, targets, maxCost, ByDistance)
		got := alt.DistancesFrom(src, targets, maxCost, ByDistance)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("DistancesFrom[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
}
