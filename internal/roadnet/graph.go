package roadnet

import (
	"errors"
	"fmt"

	"stmaker/internal/geo"
)

// ErrNoPath is returned by ShortestPath when the destination is unreachable.
var ErrNoPath = errors.New("roadnet: no path between nodes")

// Graph is a road network. The zero value is an empty, usable graph.
type Graph struct {
	nodes []Node
	edges []Edge
	// out[n] lists traversable arcs leaving node n: the edge and whether it
	// is traversed in reverse (possible only on two-way edges).
	out [][]arc
}

type arc struct {
	edge    EdgeID
	reverse bool
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of stored edges (a two-way edge counts once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node at point p and returns its id.
func (g *Graph) AddNode(p geo.Point, turningPoint bool) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Pt: p, TurningPoint: turningPoint})
	g.out = append(g.out, nil)
	return id
}

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Nodes returns the node slice. Callers must not mutate it.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edge returns a pointer to the edge with the given id. Callers must not
// mutate it.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// Edges returns the edge slice. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge adds a road segment between existing nodes. If geometry is empty
// it defaults to the straight line between the endpoints; otherwise it must
// start and end at the endpoints' locations. Returns the new edge's id.
func (g *Graph) AddEdge(from, to NodeID, name string, grade Grade, width float64, dir Direction, geometry geo.Polyline) (EdgeID, error) {
	if int(from) < 0 || int(from) >= len(g.nodes) || int(to) < 0 || int(to) >= len(g.nodes) {
		return 0, fmt.Errorf("roadnet: AddEdge: node out of range (from=%d, to=%d, n=%d)", from, to, len(g.nodes))
	}
	if !grade.Valid() {
		return 0, fmt.Errorf("roadnet: AddEdge: invalid grade %d", grade)
	}
	if !dir.Valid() {
		return 0, fmt.Errorf("roadnet: AddEdge: invalid direction %d", dir)
	}
	if width <= 0 {
		width = grade.TypicalWidthMeters()
	}
	if len(geometry) == 0 {
		geometry = geo.Polyline{g.nodes[from].Pt, g.nodes[to].Pt}
	}
	id := EdgeID(len(g.edges))
	e := Edge{
		ID: id, From: from, To: to, Name: name,
		Grade: grade, Width: width, Direction: dir,
		Geometry: geometry,
	}
	e.length = geometry.Length()
	g.edges = append(g.edges, e)
	g.out[from] = append(g.out[from], arc{edge: id})
	if dir == TwoWay {
		g.out[to] = append(g.out[to], arc{edge: id, reverse: true})
	}
	return id, nil
}

// Neighbor describes one traversable arc out of a node.
type Neighbor struct {
	Edge *Edge
	// To is the node reached by traversing the arc.
	To NodeID
	// Reverse is true when a two-way edge is traversed To→From.
	Reverse bool
}

// Neighbors returns the traversable arcs leaving node n.
func (g *Graph) Neighbors(n NodeID) []Neighbor {
	arcs := g.out[n]
	out := make([]Neighbor, len(arcs))
	for i, a := range arcs {
		e := &g.edges[a.edge]
		to := e.To
		if a.reverse {
			to = e.From
		}
		out[i] = Neighbor{Edge: e, To: to, Reverse: a.reverse}
	}
	return out
}

// EdgeBetween returns the first edge traversable from a to b directly, or
// nil if none exists.
func (g *Graph) EdgeBetween(a, b NodeID) *Edge {
	for _, arc := range g.out[a] {
		e := &g.edges[arc.edge]
		to := e.To
		if arc.reverse {
			to = e.From
		}
		if to == b {
			return e
		}
	}
	return nil
}

// EdgeGeometry returns the edge geometry oriented in the direction of
// travel (From→To normally, To→From when reverse is set).
func EdgeGeometry(e *Edge, reverse bool) geo.Polyline {
	if !reverse {
		out := make(geo.Polyline, len(e.Geometry))
		copy(out, e.Geometry)
		return out
	}
	out := make(geo.Polyline, len(e.Geometry))
	for i, p := range e.Geometry {
		out[len(out)-1-i] = p
	}
	return out
}
