package roadnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"stmaker/internal/geo"
)

// randomGrid builds an n×n grid graph with randomized grades, widths, and
// a sprinkle of one-way edges, for property testing the fast-path matcher
// against the naive reference.
func randomGrid(rng *rand.Rand, n int, spacing float64) *Graph {
	g := &Graph{}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			p := geo.Destination(geo.Destination(testOrigin, 90, float64(c)*spacing), 0, float64(r)*spacing)
			g.AddNode(p, rng.Intn(4) == 0)
		}
	}
	grades := []Grade{GradeExpress, GradeNational, GradeProvincial, GradeCountry}
	addEdge := func(from, to NodeID, name string) {
		grade := grades[rng.Intn(len(grades))]
		dir := TwoWay
		// Keep one-way edges rare so detours stay short relative to the
		// fast path's search bound; the grid remains strongly connected
		// through the two-way majority.
		if rng.Intn(12) == 0 {
			dir = OneWay
		}
		if _, err := g.AddEdge(from, to, name, grade, 0, dir, nil); err != nil {
			panic(err)
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			id := NodeID(r*n + c)
			if c+1 < n {
				addEdge(id, id+1, fmt.Sprintf("h%d-%d", r, c))
			}
			if r+1 < n {
				addEdge(id, NodeID((r+1)*n+c), fmt.Sprintf("v%d-%d", r, c))
			}
		}
	}
	return g
}

// randomWalkPoints emits GPS points along a random drive over the graph,
// with up to 15m of noise and the occasional far-off outlier to exercise
// chain restarts.
func randomWalkPoints(rng *rand.Rand, g *Graph, numPoints int) []geo.Point {
	cur := NodeID(rng.Intn(g.NumNodes()))
	pts := make([]geo.Point, 0, numPoints)
	for len(pts) < numPoints {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			cur = NodeID(rng.Intn(g.NumNodes()))
			continue
		}
		nb := nbrs[rng.Intn(len(nbrs))]
		geom := EdgeGeometry(nb.Edge, nb.Reverse)
		length := geom.Length()
		for d := 0.0; d < length && len(pts) < numPoints; d += 35 + rng.Float64()*30 {
			if rng.Intn(50) == 0 {
				// Outlier far off the network: both matchers must leave it
				// unmatched and restart the Viterbi chain after it.
				pts = append(pts, geo.Destination(testOrigin, 200, 50000))
				continue
			}
			p := geom.PointAt(d)
			pts = append(pts, geo.Destination(p, rng.Float64()*360, rng.Float64()*15))
		}
		cur = nb.To
	}
	return pts
}

// requireSameMatches fails unless the two match slices are byte-identical:
// same nil pattern, same edges, and bit-equal Distance/Along floats.
func requireSameMatches(t *testing.T, want, got []*Match, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if (w == nil) != (g == nil) {
			t.Fatalf("%s: point %d nil mismatch (want nil=%v, got nil=%v)", label, i, w == nil, g == nil)
		}
		if w == nil {
			continue
		}
		if w.Edge.ID != g.Edge.ID {
			t.Fatalf("%s: point %d edge %d != %d", label, i, g.Edge.ID, w.Edge.ID)
		}
		if math.Float64bits(w.Distance) != math.Float64bits(g.Distance) {
			t.Fatalf("%s: point %d Distance %v != %v", label, i, g.Distance, w.Distance)
		}
		if math.Float64bits(w.Along) != math.Float64bits(g.Along) {
			t.Fatalf("%s: point %d Along %v != %v", label, i, g.Along, w.Along)
		}
	}
}

// TestHMMFastMatchesNaiveReference is the fast path's equivalence
// property: across randomized grid graphs and trajectories, the optimized
// matcher (bounded multi-target searches, pooled state, shared distance
// cache) must produce byte-identical output to the pre-optimization
// reference, both with a cold and a warm cache.
func TestHMMFastMatchesNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 6 + rng.Intn(4)
			spacing := 150 + rng.Float64()*100
			g := randomGrid(rng, n, spacing)
			cache := NewSPCache(SPCacheOptions{Capacity: 4096})
			fast := NewHMMMatcher(g, HMMOptions{Cache: cache})
			naive := newNaiveHMMMatcher(g, HMMOptions{})
			for trial := 0; trial < 3; trial++ {
				pts := randomWalkPoints(rng, g, 60)
				want := naive.MatchPoints(pts)
				cold := fast.MatchPoints(pts)
				requireSameMatches(t, want, cold, fmt.Sprintf("trial %d cold", trial))
				warm := fast.MatchPoints(pts)
				requireSameMatches(t, want, warm, fmt.Sprintf("trial %d warm", trial))
			}
			if s := cache.Stats(); s.Hits == 0 || s.Misses == 0 {
				t.Fatalf("cache never exercised: %+v", s)
			}
		})
	}
}

// TestHMMFastNoCacheMatchesNaive pins the cache-free fast path (SPCache
// disabled, as with Config.SPCacheEntries < 0) to the same equivalence.
func TestHMMFastNoCacheMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGrid(rng, 7, 200)
	fast := NewHMMMatcher(g, HMMOptions{}) // nil cache
	naive := newNaiveHMMMatcher(g, HMMOptions{})
	pts := randomWalkPoints(rng, g, 80)
	requireSameMatches(t, naive.MatchPoints(pts), fast.MatchPoints(pts), "no-cache")
}

// TestHMMSharedCacheConcurrent hammers one matcher whose SPCache is shared
// by many goroutines: results must stay deterministic (equal to the serial
// decode) while hits, misses and evictions accumulate. Run under -race by
// make check.
func TestHMMSharedCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGrid(rng, 8, 180)
	// A deliberately tiny cache forces constant eviction churn alongside
	// concurrent hits — the worst case for the sharded LRU.
	cache := NewSPCache(SPCacheOptions{Capacity: 64})
	h := NewHMMMatcher(g, HMMOptions{Cache: cache})

	const goroutines = 8
	trajs := make([][]geo.Point, goroutines)
	golden := make([][]*Match, goroutines)
	for i := range trajs {
		trajs[i] = randomWalkPoints(rng, g, 50)
		golden[i] = h.MatchPoints(trajs[i])
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				got := h.MatchPoints(trajs[i])
				for j := range got {
					w, g := golden[i][j], got[j]
					if (w == nil) != (g == nil) ||
						(w != nil && (w.Edge.ID != g.Edge.ID ||
							math.Float64bits(w.Along) != math.Float64bits(g.Along))) {
						errs <- fmt.Sprintf("goroutine %d round %d: point %d diverged", i, round, j)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	s := cache.Stats()
	if s.Hits == 0 || s.Misses == 0 || s.Evictions == 0 {
		t.Fatalf("expected hits, misses and evictions on a tiny shared cache: %+v", s)
	}
	if s.Entries > 64 {
		t.Fatalf("cache exceeded its capacity: %+v", s)
	}
}

// TestHMMDisconnectedFallbackUsesMatchPoints pins the naive reference's
// repaired disconnected-graph fallback: the distance must be measured
// between the actual matched positions, not the edges' first geometry
// vertices.
func TestHMMDisconnectedFallbackUsesMatchPoints(t *testing.T) {
	g := &Graph{}
	// Two disjoint east-west roads, the second starting 1km east and 80m
	// north of the first one's end.
	a0 := g.AddNode(testOrigin, false)
	a1 := g.AddNode(geo.Destination(testOrigin, 90, 1000), false)
	b0start := geo.Destination(geo.Destination(testOrigin, 90, 2000), 0, 80)
	b0 := g.AddNode(b0start, false)
	b1 := g.AddNode(geo.Destination(b0start, 90, 1000), false)
	ea, err := g.AddEdge(a0, a1, "a", GradeProvincial, 0, TwoWay, nil)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := g.AddEdge(b0, b1, "b", GradeProvincial, 0, TwoWay, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := newNaiveHMMMatcher(g, HMMOptions{})
	a := Match{Edge: g.Edge(ea), Along: 900}
	b := Match{Edge: g.Edge(eb), Along: 200}
	got := h.networkDistance(a, b)
	want := geo.Distance(a.Point(), b.Point())
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("fallback distance = %v, want match-point distance %v", got, want)
	}
	// The old (buggy) fallback measured first-geometry-vertex distance,
	// which is off by hundreds of metres here.
	buggy := geo.Distance(a.Edge.Geometry[0], b.Edge.Geometry[0])
	if math.Abs(got-buggy) < 100 {
		t.Fatalf("fallback still looks like the first-vertex bug: got %v, buggy %v", got, buggy)
	}
}

// TestCandidateEdgesDedupesWithoutMap guards the small-slice dedupe: a
// point near many samples of the same long edge must yield the edge once.
func TestCandidateEdgesDedupesWithoutMap(t *testing.T) {
	g := &Graph{}
	n0 := g.AddNode(testOrigin, false)
	n1 := g.AddNode(geo.Destination(testOrigin, 90, 3000), false)
	if _, err := g.AddEdge(n0, n1, "long", GradeProvincial, 0, TwoWay, nil); err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g)
	p := geo.Destination(geo.Destination(testOrigin, 90, 1500), 0, 10)
	cands := m.candidateEdges(p, 150, 10)
	if len(cands) != 1 {
		t.Fatalf("expected 1 deduped candidate, got %d", len(cands))
	}
}
