package roadnet

import (
	"math"

	"stmaker/internal/geo"
	"stmaker/internal/spatial"
)

// Matcher map-matches GPS points to the nearest road segment. It samples
// each edge's geometry into a spatial grid index once at construction.
type Matcher struct {
	g  *Graph
	ix *spatial.Index
}

// matchSampleSpacing is the spacing at which edge geometries are sampled
// into the index. Candidate edges are then verified with exact
// point-to-polyline distance, so the spacing only affects recall radius.
const matchSampleSpacing = 60.0

// NewMatcher builds a matcher for the graph.
func NewMatcher(g *Graph) *Matcher {
	refLat := 0.0
	if g.NumNodes() > 0 {
		refLat = g.Node(0).Pt.Lat
	}
	ix := spatial.NewIndex(matchSampleSpacing*2, refLat)
	for i := range g.Edges() {
		e := g.Edge(EdgeID(i))
		for _, p := range e.Geometry.Resample(matchSampleSpacing) {
			ix.Insert(i, p)
		}
	}
	return &Matcher{g: g, ix: ix}
}

// Match describes a GPS point matched onto an edge.
type Match struct {
	Edge *Edge
	// Distance is the point-to-edge distance in metres.
	Distance float64
	// Along is the distance in metres from the edge's From endpoint to the
	// projection of the point onto the edge geometry.
	Along float64
}

// Point returns the matched position on the edge: the projection of the
// GPS sample onto the edge geometry, Along metres from the From endpoint.
func (m Match) Point() geo.Point { return m.Edge.Geometry.PointAt(m.Along) }

// NearestEdge returns the edge closest to p within maxDist metres. The
// boolean is false when no edge qualifies.
func (m *Matcher) NearestEdge(p geo.Point, maxDist float64) (Match, bool) {
	hits := m.ix.Within(p, maxDist+matchSampleSpacing)
	best := Match{Distance: math.Inf(1)}
	// Small-slice dedupe, as in candidateEdges: this runs per sample on
	// the greedy matching path.
	var seenArr [16]int
	seen := seenArr[:0]
	for _, h := range hits {
		dup := false
		for _, id := range seen {
			if id == h.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, h.ID)
		e := m.g.Edge(EdgeID(h.ID))
		d, seg, t := e.Geometry.NearestPoint(p)
		if d < best.Distance {
			best = Match{Edge: e, Distance: d, Along: e.Geometry.DistanceAlong(seg, t)}
		}
	}
	if best.Edge == nil || best.Distance > maxDist {
		return Match{}, false
	}
	return best, true
}

// NearestNode returns the graph node closest to p, or false when the graph
// is empty. It is a linear scan intended for path endpoints, not per-sample
// matching.
func (g *Graph) NearestNode(p geo.Point) (NodeID, bool) {
	best := NodeID(-1)
	bestD := math.Inf(1)
	for _, n := range g.nodes {
		if d := geo.Distance(p, n.Pt); d < bestD {
			best, bestD = n.ID, d
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
