package roadnet

import (
	"math"
	"testing"

	"stmaker/internal/geo"
)

var testOrigin = geo.Point{Lat: 39.9, Lng: 116.4}

// buildGrid creates an n x n grid graph with spacing metres between
// neighbouring nodes, all edges two-way provincial roads. Node (r,c) has id
// r*n+c; horizontal and vertical edges connect neighbours.
func buildGrid(t *testing.T, n int, spacing float64) *Graph {
	t.Helper()
	g := &Graph{}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			p := geo.Destination(geo.Destination(testOrigin, 90, float64(c)*spacing), 0, float64(r)*spacing)
			g.AddNode(p, true)
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			id := NodeID(r*n + c)
			if c+1 < n {
				if _, err := g.AddEdge(id, id+1, "h", GradeProvincial, 0, TwoWay, nil); err != nil {
					t.Fatal(err)
				}
			}
			if r+1 < n {
				if _, err := g.AddEdge(id, NodeID((r+1)*n+c), "v", GradeProvincial, 0, TwoWay, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(testOrigin, false)
	b := g.AddNode(geo.Destination(testOrigin, 90, 100), false)
	if _, err := g.AddEdge(a, 99, "x", GradeHighway, 10, TwoWay, nil); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := g.AddEdge(a, b, "x", Grade(0), 10, TwoWay, nil); err == nil {
		t.Error("invalid grade accepted")
	}
	if _, err := g.AddEdge(a, b, "x", GradeHighway, 10, Direction(5), nil); err == nil {
		t.Error("invalid direction accepted")
	}
	id, err := g.AddEdge(a, b, "x", GradeHighway, 0, TwoWay, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edge(id)
	if e.Width != GradeHighway.TypicalWidthMeters() {
		t.Errorf("default width = %v", e.Width)
	}
	if math.Abs(e.Length()-100) > 1 {
		t.Errorf("edge length = %v, want about 100", e.Length())
	}
	if len(e.Geometry) != 2 {
		t.Errorf("default geometry = %v", e.Geometry)
	}
}

func TestShortestPathGrid(t *testing.T) {
	g := buildGrid(t, 3, 500)
	// From corner (0,0)=0 to corner (2,2)=8: 4 edges of 500m = 2000m.
	p, err := g.ShortestPath(0, 8, ByDistance)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Cost-2000) > 5 {
		t.Fatalf("cost = %v, want about 2000", p.Cost)
	}
	if len(p.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(p.Steps))
	}
	ids := p.NodeIDs(0)
	if ids[0] != 0 || ids[len(ids)-1] != 8 {
		t.Fatalf("node ids = %v", ids)
	}
	// Consecutive steps chain.
	for i, s := range p.Steps {
		if i > 0 && p.Steps[i-1].To != s.From {
			t.Fatalf("steps do not chain at %d", i)
		}
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := buildGrid(t, 2, 100)
	p, err := g.ShortestPath(1, 1, nil)
	if err != nil || len(p.Steps) != 0 || p.Cost != 0 {
		t.Fatalf("same-node path: %+v err=%v", p, err)
	}
	ids := p.NodeIDs(1)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("NodeIDs = %v", ids)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(testOrigin, false)
	b := g.AddNode(geo.Destination(testOrigin, 90, 100), false)
	if _, err := g.ShortestPath(a, b, nil); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	if _, err := g.ShortestPath(-1, b, nil); err != ErrNoPath {
		t.Fatalf("out-of-range err = %v", err)
	}
}

func TestOneWayRestriction(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(testOrigin, false)
	b := g.AddNode(geo.Destination(testOrigin, 90, 100), false)
	if _, err := g.AddEdge(a, b, "ow", GradeExpress, 10, OneWay, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPath(a, b, nil); err != nil {
		t.Fatalf("forward one-way: %v", err)
	}
	if _, err := g.ShortestPath(b, a, nil); err != ErrNoPath {
		t.Fatalf("reverse one-way should be unreachable, got %v", err)
	}
}

func TestTwoWayReverseTraversal(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(testOrigin, false)
	b := g.AddNode(geo.Destination(testOrigin, 90, 100), false)
	g.AddEdge(a, b, "tw", GradeExpress, 10, TwoWay, nil)
	p, err := g.ShortestPath(b, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Steps[0].Reverse {
		t.Fatal("reverse traversal not flagged")
	}
	geom := EdgeGeometry(p.Steps[0].Edge, true)
	if geom[0] != g.Node(b).Pt || geom[len(geom)-1] != g.Node(a).Pt {
		t.Fatalf("reversed geometry wrong: %v", geom)
	}
}

func TestByTravelTimePrefersFastRoad(t *testing.T) {
	// Two routes a→b: a direct village road (400m) and a longer highway
	// detour (600m via c). Travel time should prefer the highway.
	g := &Graph{}
	a := g.AddNode(testOrigin, false)
	b := g.AddNode(geo.Destination(testOrigin, 90, 400), false)
	c := g.AddNode(geo.Destination(testOrigin, 45, 300), false)
	slow, _ := g.AddEdge(a, b, "village", GradeVillage, 0, TwoWay, nil)
	g.AddEdge(a, c, "hw1", GradeHighway, 0, TwoWay, nil)
	g.AddEdge(c, b, "hw2", GradeHighway, 0, TwoWay, nil)

	pd, err := g.ShortestPath(a, b, ByDistance)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Steps) != 1 || pd.Steps[0].Edge.ID != slow {
		t.Fatalf("distance route should take the direct road")
	}
	pt, err := g.ShortestPath(a, b, ByTravelTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Steps) != 2 {
		t.Fatalf("time route should take the highway detour, got %d steps", len(pt.Steps))
	}
}

func TestEdgeBetween(t *testing.T) {
	g := buildGrid(t, 2, 100)
	if e := g.EdgeBetween(0, 1); e == nil {
		t.Fatal("expected edge 0-1")
	}
	if e := g.EdgeBetween(1, 0); e == nil {
		t.Fatal("expected reverse edge 1-0 (two-way)")
	}
	if e := g.EdgeBetween(0, 3); e != nil {
		t.Fatal("no direct edge 0-3 expected")
	}
}

func TestNeighbors(t *testing.T) {
	g := buildGrid(t, 3, 100)
	// Centre node 4 has 4 neighbours.
	nbrs := g.Neighbors(4)
	if len(nbrs) != 4 {
		t.Fatalf("centre neighbours = %d, want 4", len(nbrs))
	}
	seen := map[NodeID]bool{}
	for _, nb := range nbrs {
		seen[nb.To] = true
	}
	for _, want := range []NodeID{1, 3, 5, 7} {
		if !seen[want] {
			t.Errorf("missing neighbour %d", want)
		}
	}
}

func TestMatcher(t *testing.T) {
	g := buildGrid(t, 3, 500)
	m := NewMatcher(g)
	// A point 30m north of the midpoint of the bottom edge 0-1.
	mid := geo.Midpoint(g.Node(0).Pt, g.Node(1).Pt)
	q := geo.Destination(mid, 0, 30)
	match, ok := m.NearestEdge(q, 100)
	if !ok {
		t.Fatal("no match found")
	}
	if match.Edge.From != 0 || match.Edge.To != 1 {
		t.Fatalf("matched edge %d-%d", match.Edge.From, match.Edge.To)
	}
	if math.Abs(match.Distance-30) > 2 {
		t.Fatalf("match distance = %v", match.Distance)
	}
	if math.Abs(match.Along-250) > 10 {
		t.Fatalf("match along = %v, want about 250", match.Along)
	}

	// Far away: no match.
	far := geo.Destination(testOrigin, 180, 5000)
	if _, ok := m.NearestEdge(far, 100); ok {
		t.Fatal("unexpected match far from network")
	}
}

func TestNearestNode(t *testing.T) {
	g := buildGrid(t, 2, 1000)
	q := geo.Destination(g.Node(3).Pt, 45, 40)
	id, ok := g.NearestNode(q)
	if !ok || id != 3 {
		t.Fatalf("NearestNode = %d ok=%v, want 3", id, ok)
	}
	empty := &Graph{}
	if _, ok := empty.NearestNode(q); ok {
		t.Fatal("empty graph should have no nearest node")
	}
}

func TestGradeAndDirectionStrings(t *testing.T) {
	if GradeHighway.String() != "highway" || GradeFeeder.String() != "feeder road" {
		t.Error("grade names wrong")
	}
	if Grade(99).String() != "grade-99 road" {
		t.Errorf("unknown grade string = %q", Grade(99).String())
	}
	if !GradeHighway.Valid() || Grade(0).Valid() || Grade(8).Valid() {
		t.Error("grade validity wrong")
	}
	if OneWay.String() != "a one-way road" || TwoWay.String() != "a two-way road" {
		t.Error("direction names wrong")
	}
	if !OneWay.Valid() || Direction(0).Valid() {
		t.Error("direction validity wrong")
	}
}

func TestSpeedAndWidthMonotonic(t *testing.T) {
	for g := GradeHighway; g < GradeFeeder; g++ {
		if g.TypicalSpeedKmh() <= (g + 1).TypicalSpeedKmh() {
			t.Errorf("speed not decreasing at grade %d", g)
		}
		if g.TypicalWidthMeters() <= (g + 1).TypicalWidthMeters() {
			t.Errorf("width not decreasing at grade %d", g)
		}
	}
}

func TestEdgeSpeedLimitOverride(t *testing.T) {
	e := Edge{Grade: GradeHighway}
	if e.SpeedLimit() != 100 {
		t.Errorf("default speed = %v", e.SpeedLimit())
	}
	e.SpeedLimitKmh = 60
	if e.SpeedLimit() != 60 {
		t.Errorf("override speed = %v", e.SpeedLimit())
	}
	e.length = 1000
	want := 1000 / (60 / 3.6)
	if math.Abs(e.TravelTimeSeconds()-want) > 1e-9 {
		t.Errorf("travel time = %v, want %v", e.TravelTimeSeconds(), want)
	}
}
