package roadnet

import (
	"math"
	"sync"
)

// This file holds the pooled, epoch-stamped scratch state behind every
// Dijkstra search in the package (ShortestPath and DistancesFrom). The
// serving path runs thousands of searches per request, so the per-search
// O(nodes) allocations of the naive implementation — dist/prev/done arrays
// plus a heap-item map — dominated both time and garbage. Instead:
//
//   - Arrays are pooled in a sync.Pool and grown to the largest graph they
//     have served; they are never cleared between searches.
//   - Validity is tracked with generation counters ("epochs"): a slot is
//     meaningful only when its stamp equals the state's current generation,
//     so resetting the whole state is a single counter increment.
//   - The priority queue is a lazy-insertion binary heap of plain values:
//     improving a node pushes a duplicate entry instead of doing
//     decrease-key bookkeeping, and stale entries are skipped on pop (the
//     node is already settled by the time they surface).

// heapEntry is one frontier entry: a node and the tentative distance it was
// pushed with. Duplicates for the same node are allowed; all but the one
// matching the node's final distance are stale by pop time.
type heapEntry struct {
	node NodeID
	dist float64
}

// distHeap is a binary min-heap of heapEntry ordered by dist. It is a
// value-slice heap with inlined sift routines, avoiding the interface
// boxing of container/heap.
type distHeap []heapEntry

func (h *distHeap) push(e heapEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].dist <= q[i].dist {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *distHeap) pop() heapEntry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r].dist < q[l].dist {
			least = r
		}
		if q[i].dist <= q[least].dist {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// pred records how a node was reached, for path reconstruction.
type pred struct {
	node NodeID
	arc  arc
	ok   bool
}

// searchState is the reusable scratch of one Dijkstra search. All slices
// are indexed by NodeID and sized to the largest graph the state has
// served; slots are valid only when their stamp equals gen.
type searchState struct {
	dist    []float64
	prev    []pred
	stamp   []uint32 // dist/prev valid iff stamp[v] == gen
	settled []uint32 // v settled (final dist) iff settled[v] == gen
	target  []uint32 // v is a pending search target iff target[v] == gen
	gen     uint32
	heap    distHeap
}

// searchPool recycles searchState values across searches and goroutines.
var searchPool = sync.Pool{New: func() any { return &searchState{} }}

// acquireSearch returns a state ready for a fresh search over a graph of n
// nodes: arrays at least n long and a new generation with an empty heap.
func acquireSearch(n int) *searchState {
	s := searchPool.Get().(*searchState) //nolint:stmaker/poolput -- releaseSearch owns the Put; every caller defers it
	if len(s.dist) < n {
		s.dist = make([]float64, n)
		s.prev = make([]pred, n)
		s.stamp = make([]uint32, n)
		s.settled = make([]uint32, n)
		s.target = make([]uint32, n)
		s.gen = 0
	}
	s.gen++
	if s.gen == 0 {
		// Generation counter wrapped: stale stamps from 4 billion searches
		// ago would read as current, so clear them once and restart at 1.
		for i := range s.stamp {
			s.stamp[i], s.settled[i], s.target[i] = 0, 0, 0
		}
		s.gen = 1
	}
	s.heap = s.heap[:0]
	return s
}

// releaseSearch returns the state to the pool.
func releaseSearch(s *searchState) { searchPool.Put(s) }

// reach records tentative distance d to v via p and pushes a frontier
// entry. It reports whether the relaxation improved v.
func (s *searchState) reach(v NodeID, d float64, p pred) bool {
	if s.stamp[v] == s.gen && d >= s.dist[v] {
		return false
	}
	s.dist[v] = d
	s.prev[v] = p
	s.stamp[v] = s.gen
	s.heap.push(heapEntry{node: v, dist: d})
	return true
}

// distTo returns the final distance of a settled node, or +Inf when the
// search never settled it.
func (s *searchState) distTo(v NodeID) float64 {
	if s.settled[v] == s.gen {
		return s.dist[v]
	}
	return math.Inf(1)
}
