package roadnet

import (
	"math/rand"
	"testing"

	"stmaker/internal/geo"
)

// benchGrid builds a grid graph without the testing.T plumbing.
func benchGrid(n int, spacing float64) *Graph {
	g := &Graph{}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			p := geo.Destination(geo.Destination(testOrigin, 90, float64(c)*spacing), 0, float64(r)*spacing)
			g.AddNode(p, true)
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			id := NodeID(r*n + c)
			if c+1 < n {
				if _, err := g.AddEdge(id, id+1, "h", GradeProvincial, 0, TwoWay, nil); err != nil {
					panic(err)
				}
			}
			if r+1 < n {
				if _, err := g.AddEdge(id, NodeID((r+1)*n+c), "v", GradeProvincial, 0, TwoWay, nil); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func BenchmarkShortestPath20x20(b *testing.B) {
	g := benchGrid(20, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPath(0, NodeID(g.NumNodes()-1), ByTravelTime); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortestPathDijkstra is the cold point-to-point baseline under
// the ByDistance metric (the metric the ALT overlay accelerates), for a
// like-for-like comparison with BenchmarkShortestPathALT.
func BenchmarkShortestPathDijkstra(b *testing.B) {
	g := benchGrid(20, 400)
	r := NewDijkstraRouter(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ShortestPath(0, NodeID(g.NumNodes()-1), ByDistance); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortestPathALT runs the same cold query through goal-directed
// A* over a precomputed landmark overlay.
func BenchmarkShortestPathALT(b *testing.B) {
	g := benchGrid(20, 400)
	r := NewALTRouter(g, BuildOverlay(g, OverlayOptions{}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ShortestPath(0, NodeID(g.NumNodes()-1), ByDistance); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainOverlay measures the one-time overlay precomputation Train
// performs: landmark selection plus two full Dijkstras per landmark.
func BenchmarkTrainOverlay(b *testing.B) {
	g := benchGrid(20, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o := BuildOverlay(g, OverlayOptions{}); o.NumLandmarks() == 0 {
			b.Fatal("empty overlay")
		}
	}
}

func BenchmarkNearestEdge(b *testing.B) {
	g := benchGrid(20, 400)
	m := NewMatcher(g)
	rng := rand.New(rand.NewSource(9))
	pts := make([]geo.Point, 256)
	for i := range pts {
		pts[i] = geo.Destination(testOrigin, rng.Float64()*90, rng.Float64()*7000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NearestEdge(pts[i%len(pts)], 150)
	}
}

func benchTrajectory(n int) []geo.Point {
	rng := rand.New(rand.NewSource(11))
	pts := make([]geo.Point, n)
	for i := range pts {
		base := geo.Destination(testOrigin, 90, float64(i)*30)
		pts[i] = geo.Destination(base, rng.Float64()*360, rng.Float64()*15)
	}
	return pts
}

func BenchmarkHMMMatch100Points(b *testing.B) {
	g := benchGrid(10, 400)
	h := NewHMMMatcher(g, HMMOptions{})
	pts := benchTrajectory(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchPoints(pts)
	}
}

// BenchmarkHMMMatch100PointsALT is the cold-cache decode with the ALT
// engine behind transition scoring — the serving configuration once a
// model with a precomputed overlay is published.
func BenchmarkHMMMatch100PointsALT(b *testing.B) {
	g := benchGrid(10, 400)
	h := NewHMMMatcher(g, HMMOptions{})
	h.SetRouter(NewALTRouter(g, BuildOverlay(g, OverlayOptions{})))
	pts := benchTrajectory(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchPoints(pts)
	}
}

// benchSparseTrajectory decimates the benchmark trajectory to every
// factor-th point: the low-sampling-rate regime where straight-line gaps
// stretch the transition bound and bounded searches degrade worst.
func benchSparseTrajectory(n, factor int) []geo.Point {
	pts := benchTrajectory(n)
	out := pts[:0]
	for i := 0; i < len(pts); i += factor {
		out = append(out, pts[i])
	}
	return out
}

// BenchmarkHMMMatchSparse decodes a 4x-decimated trajectory with the
// plain Dijkstra engine.
func BenchmarkHMMMatchSparse(b *testing.B) {
	g := benchGrid(10, 400)
	h := NewHMMMatcher(g, HMMOptions{})
	pts := benchSparseTrajectory(400, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchPoints(pts)
	}
}

// BenchmarkHMMMatchSparseALT decodes the same sparse trajectory with the
// ALT engine pruning the widened transition searches.
func BenchmarkHMMMatchSparseALT(b *testing.B) {
	g := benchGrid(10, 400)
	h := NewHMMMatcher(g, HMMOptions{})
	h.SetRouter(NewALTRouter(g, BuildOverlay(g, OverlayOptions{})))
	pts := benchSparseTrajectory(400, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchPoints(pts)
	}
}

// BenchmarkHMMMatch100PointsNaive measures the pre-optimization reference
// decode (point-to-point Dijkstras per candidate pair) on the same input,
// for a like-for-like fast-vs-naive comparison.
func BenchmarkHMMMatch100PointsNaive(b *testing.B) {
	g := benchGrid(10, 400)
	h := newNaiveHMMMatcher(g, HMMOptions{})
	pts := benchTrajectory(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchPoints(pts)
	}
}

// BenchmarkHMMMatch100PointsCached adds a warm shared SPCache, the
// serving-path configuration of the Summarizer.
func BenchmarkHMMMatch100PointsCached(b *testing.B) {
	g := benchGrid(10, 400)
	h := NewHMMMatcher(g, HMMOptions{Cache: NewSPCache(SPCacheOptions{})})
	pts := benchTrajectory(100)
	h.MatchPoints(pts) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchPoints(pts)
	}
}

// benchStepCandidates yields two consecutive candidate sets the way a
// Viterbi step sees them, for the networkDistance benchmarks below.
func benchStepCandidates(h *HMMMatcher) (prev, next []candidate, straight float64) {
	pa := geo.Destination(geo.Destination(testOrigin, 90, 390), 0, 12)
	pb := geo.Destination(geo.Destination(testOrigin, 90, 455), 0, 9)
	return h.candidates(pa), h.candidates(pb), geo.Distance(pa, pb)
}

// BenchmarkNetworkDistanceNaive scores one full Viterbi transition step
// (every prev×next candidate pair) with point-to-point Dijkstras, the
// pre-optimization code path.
func BenchmarkNetworkDistanceNaive(b *testing.B) {
	g := benchGrid(10, 400)
	h := newNaiveHMMMatcher(g, HMMOptions{})
	prev, next, _ := benchStepCandidates(h)
	if len(prev) == 0 || len(next) == 0 {
		b.Fatal("no candidates")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range prev {
			for _, c := range next {
				h.networkDistance(a.match, c.match)
			}
		}
	}
}

// BenchmarkNetworkDistanceFast scores the same transition step through the
// bounded multi-target table build plus table lookups.
func BenchmarkNetworkDistanceFast(b *testing.B) {
	g := benchGrid(10, 400)
	h := NewHMMMatcher(g, HMMOptions{})
	prev, next, straight := benchStepCandidates(h)
	if len(prev) == 0 || len(next) == 0 {
		b.Fatal("no candidates")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := acquireStepScratch()
		h.buildStepTable(h.Router(), sc, prev, next, straight)
		for _, a := range prev {
			for _, c := range next {
				h.networkDistanceFast(sc, a.match, c.match)
			}
		}
		releaseStepScratch(sc)
	}
}
