package roadnet

import (
	"math/rand"
	"testing"

	"stmaker/internal/geo"
)

// benchGrid builds a grid graph without the testing.T plumbing.
func benchGrid(n int, spacing float64) *Graph {
	g := &Graph{}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			p := geo.Destination(geo.Destination(testOrigin, 90, float64(c)*spacing), 0, float64(r)*spacing)
			g.AddNode(p, true)
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			id := NodeID(r*n + c)
			if c+1 < n {
				if _, err := g.AddEdge(id, id+1, "h", GradeProvincial, 0, TwoWay, nil); err != nil {
					panic(err)
				}
			}
			if r+1 < n {
				if _, err := g.AddEdge(id, NodeID((r+1)*n+c), "v", GradeProvincial, 0, TwoWay, nil); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func BenchmarkShortestPath20x20(b *testing.B) {
	g := benchGrid(20, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPath(0, NodeID(g.NumNodes()-1), ByTravelTime); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestEdge(b *testing.B) {
	g := benchGrid(20, 400)
	m := NewMatcher(g)
	rng := rand.New(rand.NewSource(9))
	pts := make([]geo.Point, 256)
	for i := range pts {
		pts[i] = geo.Destination(testOrigin, rng.Float64()*90, rng.Float64()*7000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NearestEdge(pts[i%len(pts)], 150)
	}
}

func BenchmarkHMMMatch100Points(b *testing.B) {
	g := benchGrid(10, 400)
	h := NewHMMMatcher(g, HMMOptions{})
	rng := rand.New(rand.NewSource(11))
	pts := make([]geo.Point, 100)
	for i := range pts {
		base := geo.Destination(testOrigin, 90, float64(i)*30)
		pts[i] = geo.Destination(base, rng.Float64()*360, rng.Float64()*15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchPoints(pts)
	}
}
