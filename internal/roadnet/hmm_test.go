package roadnet

import (
	"math/rand"
	"testing"

	"stmaker/internal/geo"
)

// parallelRoads builds two parallel east-west roads 60m apart plus a
// connector, to exercise the HMM's ability to stay on one road despite
// noisy samples that are sometimes nearer the other.
func parallelRoads(t *testing.T) (*Graph, EdgeID, EdgeID) {
	t.Helper()
	g := &Graph{}
	a0 := g.AddNode(testOrigin, false)
	a1 := g.AddNode(geo.Destination(testOrigin, 90, 2000), false)
	north := geo.Destination(testOrigin, 0, 60)
	b0 := g.AddNode(north, false)
	b1 := g.AddNode(geo.Destination(north, 90, 2000), false)
	south, err := g.AddEdge(a0, a1, "South Rd", GradeProvincial, 0, TwoWay, nil)
	if err != nil {
		t.Fatal(err)
	}
	northE, err := g.AddEdge(b0, b1, "North Rd", GradeProvincial, 0, TwoWay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a0, b0, "Link", GradeFeeder, 0, TwoWay, nil); err != nil {
		t.Fatal(err)
	}
	return g, south, northE
}

func TestHMMStaysOnOneRoad(t *testing.T) {
	g, south, _ := parallelRoads(t)
	h := NewHMMMatcher(g, HMMOptions{})
	rng := rand.New(rand.NewSource(3))

	// Drive along the south road with 20m of noise: about a third of the
	// noisy points are nearer the north road, but the joint decoding
	// should keep (almost) everything on the south road.
	var pts []geo.Point
	for d := 0.0; d <= 2000; d += 50 {
		p := geo.Destination(testOrigin, 90, d)
		pts = append(pts, geo.Destination(p, rng.Float64()*360, rng.Float64()*20))
	}
	matches := h.MatchPoints(pts)
	var onSouth, matched int
	for _, m := range matches {
		if m == nil {
			continue
		}
		matched++
		if m.Edge.ID == south {
			onSouth++
		}
	}
	if matched < len(pts)*9/10 {
		t.Fatalf("matched only %d/%d points", matched, len(pts))
	}
	if onSouth < matched*9/10 {
		t.Fatalf("HMM flip-flopped: %d/%d on the travelled road", onSouth, matched)
	}

	// The greedy nearest-edge matcher, by contrast, must flip to the north
	// road for points whose noise pushed them past the midline; verify the
	// HMM strictly improves on it.
	m := NewMatcher(g)
	greedySouth := 0
	for _, p := range pts {
		if match, ok := m.NearestEdge(p, 150); ok && match.Edge.ID == south {
			greedySouth++
		}
	}
	if onSouth < greedySouth {
		t.Fatalf("HMM (%d) should not be worse than greedy (%d)", onSouth, greedySouth)
	}
}

func TestHMMAlongIsMonotonic(t *testing.T) {
	g, south, _ := parallelRoads(t)
	h := NewHMMMatcher(g, HMMOptions{})
	var pts []geo.Point
	for d := 100.0; d <= 1900; d += 100 {
		pts = append(pts, geo.Destination(testOrigin, 90, d))
	}
	matches := h.MatchPoints(pts)
	var lastAlong float64 = -1
	for i, m := range matches {
		if m == nil || m.Edge.ID != south {
			t.Fatalf("point %d not matched to the travelled road", i)
		}
		if m.Along < lastAlong-1 {
			t.Fatalf("along positions not monotone at %d: %v then %v", i, lastAlong, m.Along)
		}
		lastAlong = m.Along
	}
}

func TestHMMGapRestartsChain(t *testing.T) {
	g, south, _ := parallelRoads(t)
	h := NewHMMMatcher(g, HMMOptions{CandidateRadiusMeters: 100})
	pts := []geo.Point{
		geo.Destination(testOrigin, 90, 100),
		geo.Destination(testOrigin, 180, 5000), // far off the network
		geo.Destination(testOrigin, 90, 300),
	}
	matches := h.MatchPoints(pts)
	if matches[0] == nil || matches[0].Edge.ID != south {
		t.Fatal("first point unmatched")
	}
	if matches[1] != nil {
		t.Fatal("off-network point should be unmatched")
	}
	if matches[2] == nil || matches[2].Edge.ID != south {
		t.Fatal("chain did not restart after the gap")
	}
}

func TestHMMEmptyInput(t *testing.T) {
	g, _, _ := parallelRoads(t)
	h := NewHMMMatcher(g, HMMOptions{})
	if got := h.MatchPoints(nil); len(got) != 0 {
		t.Fatalf("empty input matches = %v", got)
	}
}

func TestHMMNetworkDistanceSameEdge(t *testing.T) {
	g, south, _ := parallelRoads(t)
	h := NewHMMMatcher(g, HMMOptions{})
	e := g.Edge(south)
	a := Match{Edge: e, Along: 100}
	b := Match{Edge: e, Along: 350}
	if d := h.networkDistance(a, b); d != 250 {
		t.Fatalf("same-edge distance = %v", d)
	}
}

func TestHMMOptionsDefaults(t *testing.T) {
	o := HMMOptions{}.withDefaults()
	if o.SigmaMeters != 15 || o.BetaMeters != 50 || o.CandidateRadiusMeters != 120 || o.MaxCandidates != 4 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestCandidateEdgesOrderedAndCapped(t *testing.T) {
	g, south, northE := parallelRoads(t)
	m := NewMatcher(g)
	// A point 20m north of the south road: south is nearer than north.
	p := geo.Destination(geo.Destination(testOrigin, 90, 1000), 0, 20)
	cands := m.candidateEdges(p, 150, 10)
	if len(cands) < 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].Edge.ID != south || cands[1].Edge.ID != northE {
		t.Fatalf("candidate order wrong: %v then %v", cands[0].Edge.ID, cands[1].Edge.ID)
	}
	if got := m.candidateEdges(p, 150, 1); len(got) != 1 {
		t.Fatalf("cap ignored: %d", len(got))
	}
}
