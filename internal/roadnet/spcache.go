package roadnet

import (
	"math"
	"sync"

	"stmaker/internal/metrics"
)

// SPCache is a concurrency-safe sharded LRU cache of node-to-node shortest
// path distances, shared across requests by the serving path: every HMM
// Viterbi step reuses the transition distances of any earlier step — or any
// concurrent request — that touched the same candidate nodes, which on real
// road networks happens constantly (trajectories overlap and candidates
// repeat along a road).
//
// Two kinds of entries are stored per (src, dst) pair:
//
//   - An exact distance d: valid forever (graphs are immutable once
//     served), because a bounded search that settles a node has found its
//     true shortest distance.
//   - An "unreached within bound b" marker: valid for any lookup whose
//     bound is <= b; a lookup needing a larger bound is a miss and
//     re-searches.
//
// The cache is sharded to keep lock contention negligible under concurrent
// Summarize calls; each shard is an independent mutex-guarded LRU list.
// A nil *SPCache is valid and never hits, so callers need no branching.
type SPCache struct {
	shards []spShard
	mask   uint64

	hits      *metrics.Counter
	misses    *metrics.Counter
	evictions *metrics.Counter
}

// DefaultSPCacheEntries is the capacity used when SPCacheOptions.Capacity
// is zero: at 24 bytes an entry plus map overhead this is a few MiB, sized
// for city-scale candidate-node working sets.
const DefaultSPCacheEntries = 1 << 16

// spCacheShards is the shard count (power of two). 16 shards keep
// contention negligible for the request concurrencies stmakerd allows.
const spCacheShards = 16

// SPCacheOptions configures NewSPCache. Counter fields may be nil; the
// cache then keeps private counters, still readable through Stats.
type SPCacheOptions struct {
	// Capacity is the total entry budget across shards (0 uses
	// DefaultSPCacheEntries; minimum one entry per shard).
	Capacity int
	// Hits, Misses and Evictions, when non-nil, are incremented on the
	// corresponding cache events — pass counters from a metrics.Registry to
	// expose roadnet_sp_cache_{hits,misses,evictions}_total.
	Hits, Misses, Evictions *metrics.Counter
}

// NewSPCache builds an SPCache.
func NewSPCache(opts SPCacheOptions) *SPCache {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultSPCacheEntries
	}
	perShard := (capacity + spCacheShards - 1) / spCacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &SPCache{
		shards:    make([]spShard, spCacheShards),
		mask:      spCacheShards - 1,
		hits:      opts.Hits,
		misses:    opts.Misses,
		evictions: opts.Evictions,
	}
	if c.hits == nil {
		c.hits = &metrics.Counter{}
	}
	if c.misses == nil {
		c.misses = &metrics.Counter{}
	}
	if c.evictions == nil {
		c.evictions = &metrics.Counter{}
	}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	return c
}

// SPCacheStats is a point-in-time read of the cache counters and size.
type SPCacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// Stats reads the counters and current entry count.
func (c *SPCache) Stats() SPCacheStats {
	if c == nil {
		return SPCacheStats{}
	}
	s := SPCacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// spKey packs a (src, dst) node pair into one map key.
type spKey uint64

func makeSPKey(src, dst NodeID) spKey {
	return spKey(uint64(uint32(src))<<32 | uint64(uint32(dst)))
}

// shardOf picks the shard of a key via Fibonacci hashing, so pairs that
// share a source still spread across shards.
func (c *SPCache) shardOf(k spKey) *spShard {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return &c.shards[(h>>48)&c.mask]
}

// Lookup returns the cached shortest distance from src to dst, if the
// cache can answer for the given search bound. On a hit, dist is either
// the exact distance (possibly greater than bound — callers enforce their
// own bound) or +Inf, meaning "known unreached within a bound >= bound".
// A nil cache always misses without counting.
func (c *SPCache) Lookup(src, dst NodeID, bound float64) (dist float64, ok bool) {
	if c == nil {
		return 0, false
	}
	k := makeSPKey(src, dst)
	sh := c.shardOf(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil || (math.IsInf(e.dist, 1) && e.bound < bound) {
		sh.mu.Unlock()
		c.misses.Inc()
		return 0, false
	}
	sh.moveToFront(e)
	dist = e.dist
	sh.mu.Unlock()
	c.hits.Inc()
	return dist, true
}

// Store records the outcome of a bounded search for the (src, dst) pair:
// dist is the exact shortest distance when finite, or +Inf meaning the
// search's bound was exhausted without settling dst. Exact distances
// always overwrite; an unreached marker only widens a previous marker's
// bound, never replaces an exact distance.
func (c *SPCache) Store(src, dst NodeID, dist, bound float64) {
	if c == nil {
		return
	}
	k := makeSPKey(src, dst)
	sh := c.shardOf(k)
	sh.mu.Lock()
	if e := sh.entries[k]; e != nil {
		if math.IsInf(dist, 1) {
			if math.IsInf(e.dist, 1) && bound > e.bound {
				e.bound = bound
			}
		} else {
			e.dist, e.bound = dist, 0
		}
		sh.moveToFront(e)
		sh.mu.Unlock()
		return
	}
	evicted := sh.insert(k, dist, bound)
	sh.mu.Unlock()
	if evicted {
		c.evictions.Inc()
	}
}

// spEntry is one cache slot, intrusively linked into its shard's LRU list.
type spEntry struct {
	key        spKey
	dist       float64 // exact distance, or +Inf (unreached within bound)
	bound      float64 // bound of an unreached marker; 0 for exact entries
	prev, next *spEntry
}

// spShard is one LRU segment: a map for lookup plus a circular
// doubly-linked list with a sentinel head ordered most- to
// least-recently-used.
type spShard struct {
	mu      sync.Mutex
	entries map[spKey]*spEntry
	head    spEntry // sentinel: head.next is MRU, head.prev is LRU
	cap     int
}

func (sh *spShard) init(capacity int) {
	sh.entries = make(map[spKey]*spEntry, capacity)
	sh.head.prev = &sh.head
	sh.head.next = &sh.head
	sh.cap = capacity
}

func (sh *spShard) moveToFront(e *spEntry) {
	if sh.head.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	sh.pushFront(e)
}

func (sh *spShard) pushFront(e *spEntry) {
	e.prev = &sh.head
	e.next = sh.head.next
	e.next.prev = e
	sh.head.next = e
}

// insert adds a new entry, reusing the evicted LRU slot when at capacity.
// It reports whether an eviction happened.
func (sh *spShard) insert(k spKey, dist, bound float64) bool {
	var e *spEntry
	evicted := false
	if len(sh.entries) >= sh.cap {
		e = sh.head.prev // LRU victim
		e.prev.next = &sh.head
		sh.head.prev = e.prev
		delete(sh.entries, e.key)
		evicted = true
	} else {
		e = &spEntry{}
	}
	e.key, e.dist, e.bound = k, dist, bound
	sh.entries[k] = e
	sh.pushFront(e)
	return evicted
}
