// Package roadnet models the digital road map STMaker consumes: a directed
// multigraph of intersections and road segments annotated with the paper's
// three routing attributes (grade of road, road width, traffic direction),
// plus shortest-path search and GPS-point map-matching.
package roadnet

import (
	"fmt"

	"stmaker/internal/geo"
)

// Grade is the paper's seven-level road classification (§III-A). Smaller
// values mean higher transportation capacity.
type Grade int

// The seven grades of road from Table III's description.
const (
	GradeHighway    Grade = 1
	GradeExpress    Grade = 2
	GradeNational   Grade = 3
	GradeProvincial Grade = 4
	GradeCountry    Grade = 5
	GradeVillage    Grade = 6
	GradeFeeder     Grade = 7
)

var gradeNames = map[Grade]string{
	GradeHighway:    "highway",
	GradeExpress:    "express road",
	GradeNational:   "national road",
	GradeProvincial: "provincial road",
	GradeCountry:    "country road",
	GradeVillage:    "village road",
	GradeFeeder:     "feeder road",
}

// String returns the human-readable grade name used in summaries.
func (g Grade) String() string {
	if s, ok := gradeNames[g]; ok {
		return s
	}
	return fmt.Sprintf("grade-%d road", int(g))
}

// Valid reports whether g is one of the seven defined grades.
func (g Grade) Valid() bool { return g >= GradeHighway && g <= GradeFeeder }

// TypicalSpeedKmh returns a free-flow design speed for the grade, used by
// the traffic simulator and as a fallback speed limit.
func (g Grade) TypicalSpeedKmh() float64 {
	switch g {
	case GradeHighway:
		return 100
	case GradeExpress:
		return 80
	case GradeNational:
		return 70
	case GradeProvincial:
		return 60
	case GradeCountry:
		return 50
	case GradeVillage:
		return 40
	default:
		return 30
	}
}

// TypicalWidthMeters returns a representative carriageway width for the
// grade, used when generating synthetic maps.
func (g Grade) TypicalWidthMeters() float64 {
	switch g {
	case GradeHighway:
		return 28
	case GradeExpress:
		return 22
	case GradeNational:
		return 16
	case GradeProvincial:
		return 13
	case GradeCountry:
		return 10
	case GradeVillage:
		return 7
	default:
		return 5
	}
}

// Direction is the paper's traffic-direction attribute: 1 (two-way road) or
// 2 (one-way road).
type Direction int

const (
	// TwoWay allows travel in both directions.
	TwoWay Direction = 1
	// OneWay allows travel only from the edge's From node to its To node.
	OneWay Direction = 2
)

// String returns the phrase used in summary templates.
func (d Direction) String() string {
	if d == OneWay {
		return "a one-way road"
	}
	return "a two-way road"
}

// Valid reports whether d is a defined direction value.
func (d Direction) Valid() bool { return d == TwoWay || d == OneWay }

// NodeID identifies a node within one Graph.
type NodeID int

// EdgeID identifies an edge within one Graph.
type EdgeID int

// Node is a road-network vertex: an intersection or a shape point.
type Node struct {
	ID NodeID
	Pt geo.Point
	// TurningPoint marks nodes where the road geometry turns sharply;
	// these become landmarks (Def. 2).
	TurningPoint bool
}

// Edge is a directed road segment with the paper's routing attributes.
// A TwoWay edge is traversable in both directions but stored once.
type Edge struct {
	ID        EdgeID
	From, To  NodeID
	Name      string
	Grade     Grade
	Width     float64 // metres
	Direction Direction
	// Geometry is the shape of the segment from From to To. It always
	// starts at From's point and ends at To's point.
	Geometry geo.Polyline
	// SpeedLimitKmh is the legal speed; zero means use the grade default.
	SpeedLimitKmh float64

	length float64 // cached geometry length
}

// Length returns the segment length in metres.
func (e *Edge) Length() float64 { return e.length }

// SpeedLimit returns the effective speed limit in km/h.
func (e *Edge) SpeedLimit() float64 {
	if e.SpeedLimitKmh > 0 {
		return e.SpeedLimitKmh
	}
	return e.Grade.TypicalSpeedKmh()
}

// TravelTimeSeconds returns the free-flow traversal time of the edge.
func (e *Edge) TravelTimeSeconds() float64 {
	v := e.SpeedLimit() / 3.6 // m/s
	if v <= 0 {
		v = 1
	}
	return e.length / v
}
