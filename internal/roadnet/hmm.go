package roadnet

import (
	"math"
	"sync"
	"sync/atomic"

	"stmaker/internal/geo"
)

// HMMOptions configures the hidden-Markov-model map matcher, which follows
// Newson & Krumm (SIGSPATIAL 2009) — the map-matching approach the paper's
// related-work section points to for trajectory annotation. States are
// candidate edges per GPS sample; emissions score perpendicular distance,
// transitions score the agreement between network distance and
// great-circle distance; Viterbi decodes the most likely edge sequence.
type HMMOptions struct {
	// SigmaMeters is the GPS noise standard deviation (default 15).
	SigmaMeters float64
	// BetaMeters scales the transition penalty for route/great-circle
	// disagreement (default 50).
	BetaMeters float64
	// CandidateRadiusMeters bounds the per-sample candidate search
	// (default 120).
	CandidateRadiusMeters float64
	// MaxCandidates caps candidates per sample (default 4).
	MaxCandidates int
	// Cache, when non-nil, shares node-to-node shortest-path distances
	// across MatchPoints calls (and across goroutines — the cache is
	// concurrency-safe). Transition distances repeat heavily between
	// requests whose trajectories overlap, so serving paths should pass a
	// process-wide cache; see SPCache.
	Cache *SPCache
}

func (o HMMOptions) withDefaults() HMMOptions {
	if o.SigmaMeters <= 0 {
		o.SigmaMeters = 15
	}
	if o.BetaMeters <= 0 {
		o.BetaMeters = 50
	}
	if o.CandidateRadiusMeters <= 0 {
		o.CandidateRadiusMeters = 120
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4
	}
	return o
}

// transitionBoundBetas bounds the per-step shortest-path searches of the
// fast transition path: routes longer than straight + transitionBoundBetas
// × Beta are not searched for, since their transition log-probability is
// below -transitionBoundBetas (e⁻³⁰ relative likelihood) and cannot
// plausibly win the Viterbi maximisation. Pairs beyond the bound are
// floored at exactly that penalty.
const transitionBoundBetas = 30

// HMMMatcher decodes the most likely edge sequence of a GPS point series.
// It is safe for concurrent MatchPoints calls: per-call scratch is pooled
// and the optional distance cache is concurrency-safe.
type HMMMatcher struct {
	g     *Graph
	m     *Matcher
	opts  HMMOptions
	cache *SPCache

	// rt holds the routing engine behind transition scoring, swappable at
	// runtime (SetRouter): a model publish installs an ALT engine over the
	// model's precomputed overlay, and a model without one falls back to
	// plain Dijkstra. Every engine returns bit-identical distances, so a
	// swap during an in-flight decode is harmless.
	rt atomic.Pointer[routerCell]

	// naive switches transition scoring to the pre-optimization reference
	// implementation (one point-to-point Dijkstra per endpoint combination
	// per candidate pair). Kept for equivalence tests and benchmarks.
	naive bool
}

// routerCell boxes the Router interface value so the engine can live
// behind an atomic.Pointer (which needs one concrete type).
type routerCell struct{ r Router }

// NewHMMMatcher builds an HMM matcher over the graph, routing with plain
// bounded Dijkstra until SetRouter installs another engine.
func NewHMMMatcher(g *Graph, opts HMMOptions) *HMMMatcher {
	h := &HMMMatcher{g: g, m: NewMatcher(g), opts: opts.withDefaults(), cache: opts.Cache}
	h.rt.Store(&routerCell{r: NewDijkstraRouter(g)})
	return h
}

// SetRouter atomically installs the routing engine behind transition
// scoring; nil restores the plain Dijkstra engine. Safe to call while
// MatchPoints traffic is in flight: each decode run snapshots the engine
// once, and all engines are exact, so concurrent decodes produce the
// same matches whichever engine they snapshotted.
func (h *HMMMatcher) SetRouter(r Router) {
	if r == nil {
		r = NewDijkstraRouter(h.g)
	}
	h.rt.Store(&routerCell{r: r})
}

// Router returns the engine currently behind transition scoring.
func (h *HMMMatcher) Router() Router { return h.rt.Load().r }

// newNaiveHMMMatcher builds a matcher whose transitions use the
// pre-optimization per-pair searches — the reference implementation that
// the fast path must reproduce byte for byte (see hmm_equiv_test.go).
func newNaiveHMMMatcher(g *Graph, opts HMMOptions) *HMMMatcher {
	h := NewHMMMatcher(g, opts)
	h.naive = true
	h.cache = nil
	return h
}

// candidate is one per-sample state.
type candidate struct {
	match    Match
	emission float64 // log emission probability
}

// MatchPoints returns, for each input point, the matched edge under the
// maximum-likelihood joint assignment, or nil entries where no candidate
// was within range. A break in candidates restarts the chain, as Newson &
// Krumm prescribe for gaps.
func (h *HMMMatcher) MatchPoints(points []geo.Point) []*Match {
	out := make([]*Match, len(points))
	start := 0
	for start < len(points) {
		end := h.decodeRun(points, start, out)
		if end == start {
			start++ // unmatchable point: leave nil, move on
			continue
		}
		start = end
	}
	return out
}

// decodeRun Viterbi-decodes the maximal run of consecutive points with
// candidates beginning at start, fills the output, and returns the index
// one past the run. It returns start when the first point has no
// candidates.
func (h *HMMMatcher) decodeRun(points []geo.Point, start int, out []*Match) int {
	cands := h.candidates(points[start])
	if len(cands) == 0 {
		return start
	}
	// Viterbi state: best log-prob to each current candidate, with
	// backpointers per step.
	type step struct {
		cands []candidate
		back  []int
	}
	steps := []step{{cands: cands, back: make([]int, len(cands))}}
	probs := make([]float64, len(cands))
	for i, c := range cands {
		probs[i] = c.emission
		steps[0].back[i] = -1
	}

	var sc *stepScratch
	var rt Router
	if !h.naive {
		sc = acquireStepScratch()
		defer releaseStepScratch(sc)
		// One engine snapshot per decode run: a concurrent SetRouter never
		// mixes engines within a run (and would be harmless if it did —
		// engines are exact).
		rt = h.rt.Load().r
	}

	end := start + 1
	for ; end < len(points); end++ {
		next := h.candidates(points[end])
		if len(next) == 0 {
			break
		}
		prev := steps[len(steps)-1]
		straight := geo.Distance(points[end-1], points[end])
		if sc != nil {
			// Fast path: one bounded multi-target search per distinct
			// candidate endpoint node (≤ 2·MaxCandidates, cache misses
			// only) replaces the naive 4 × |prev| × |next| point-to-point
			// searches of this step.
			h.buildStepTable(rt, sc, prev.cands, next, straight)
		}
		nextProbs := make([]float64, len(next))
		back := make([]int, len(next))
		for j, nc := range next {
			best, bestFrom := math.Inf(-1), -1
			for i, pc := range prev.cands {
				var trans float64
				if sc != nil {
					trans = h.transitionFast(sc, pc.match, nc.match, straight)
				} else {
					trans = h.transition(pc.match, nc.match, straight)
				}
				if p := probs[i] + trans; p > best {
					best, bestFrom = p, i
				}
			}
			nextProbs[j] = best + nc.emission
			back[j] = bestFrom
		}
		steps = append(steps, step{cands: next, back: back})
		probs = nextProbs
	}

	// Backtrace from the best final state.
	bestJ := 0
	for j := range probs {
		if probs[j] > probs[bestJ] {
			bestJ = j
		}
	}
	for s := len(steps) - 1; s >= 0; s-- {
		m := steps[s].cands[bestJ].match
		out[start+s] = &m
		bestJ = steps[s].back[bestJ]
	}
	return end
}

// candidates returns the scored candidate edges of one point.
func (h *HMMMatcher) candidates(p geo.Point) []candidate {
	hits := h.m.candidateEdges(p, h.opts.CandidateRadiusMeters, h.opts.MaxCandidates)
	out := make([]candidate, 0, len(hits))
	for _, m := range hits {
		// log of the Gaussian emission N(0, sigma) at distance d.
		z := m.Distance / h.opts.SigmaMeters
		out = append(out, candidate{match: m, emission: -0.5 * z * z})
	}
	return out
}

// transition returns the log transition probability between consecutive
// candidates: an exponential penalty on |network distance − straight-line
// distance| (Newson & Krumm's key observation that correct matches make
// the two nearly equal). This is the naive-path scorer; the serving path
// uses transitionFast over a per-step distance table.
func (h *HMMMatcher) transition(a, b Match, straight float64) float64 {
	network := h.networkDistance(a, b)
	diff := math.Abs(network - straight)
	return -diff / h.opts.BetaMeters
}

// networkDistance approximates driving distance between two on-edge
// positions: along-edge when both lie on the same edge, otherwise the
// best combination of residual edge distance plus a node-level shortest
// path between the edges' endpoints. It launches up to four full
// point-to-point searches; kept as the reference implementation for the
// fast path (networkDistanceFast).
func (h *HMMMatcher) networkDistance(a, b Match) float64 {
	if a.Edge.ID == b.Edge.ID {
		return math.Abs(a.Along - b.Along)
	}
	best := math.Inf(1)
	for _, fromEnd := range [2]struct {
		node NodeID
		cost float64
	}{
		{a.Edge.From, a.Along},
		{a.Edge.To, a.Edge.Length() - a.Along},
	} {
		for _, toEnd := range [2]struct {
			node NodeID
			cost float64
		}{
			{b.Edge.From, b.Along},
			{b.Edge.To, b.Edge.Length() - b.Along},
		} {
			var mid float64
			if fromEnd.node != toEnd.node {
				path, err := h.g.ShortestPath(fromEnd.node, toEnd.node, ByDistance)
				if err != nil {
					continue
				}
				mid = path.Cost
			}
			if total := fromEnd.cost + mid + toEnd.cost; total < best {
				best = total
			}
		}
	}
	if math.IsInf(best, 1) {
		// Disconnected in the directed graph: fall back to the straight
		// line between the actual matched positions on each edge, so the
		// transition is scored by how far apart the match points really
		// are — merely very unlikely, not impossible.
		return geo.Distance(a.Point(), b.Point())
	}
	return best
}

// stepScratch is the reusable per-step transition distance table of the
// fast path: the distinct candidate endpoint nodes of the previous and
// next Viterbi step, and one row of bounded shortest-path distances per
// source node. Pooled so steady-state decoding allocates nothing here.
type stepScratch struct {
	maxCost float64
	srcs    []NodeID    // distinct endpoint nodes of the previous step's candidates
	tgts    []NodeID    // distinct endpoint nodes of the next step's candidates
	rows    [][]float64 // rows[si][ti] = dist(srcs[si], tgts[ti]); +Inf beyond bound
	rowBuf  []float64   // backing storage for rows

	// search scratch for cache misses
	missTgts []NodeID
	missIdx  []int
	missOut  []float64
}

var stepScratchPool = sync.Pool{New: func() any { return &stepScratch{} }}

func acquireStepScratch() *stepScratch { return stepScratchPool.Get().(*stepScratch) } //nolint:stmaker/poolput -- releaseStepScratch owns the Put; every caller defers it

func releaseStepScratch(sc *stepScratch) { stepScratchPool.Put(sc) }

// appendNodeDedup appends n unless already present (candidate endpoint
// lists hold at most 2·MaxCandidates nodes, so a linear scan wins over any
// set structure).
func appendNodeDedup(list []NodeID, n NodeID) []NodeID {
	for _, x := range list {
		if x == n {
			return list
		}
	}
	return append(list, n)
}

// buildStepTable fills sc with the transition distances of one Viterbi
// step: for every distinct endpoint node of the previous candidates, the
// bounded shortest-path distance to every distinct endpoint node of the
// next candidates. Distances come from the shared cache when possible;
// the misses of each source node are resolved with a single bounded
// multi-target search.
func (h *HMMMatcher) buildStepTable(rt Router, sc *stepScratch, prev, next []candidate, straight float64) {
	sc.maxCost = straight + transitionBoundBetas*h.opts.BetaMeters
	sc.srcs = sc.srcs[:0]
	sc.tgts = sc.tgts[:0]
	for _, c := range prev {
		sc.srcs = appendNodeDedup(sc.srcs, c.match.Edge.From)
		sc.srcs = appendNodeDedup(sc.srcs, c.match.Edge.To)
	}
	for _, c := range next {
		sc.tgts = appendNodeDedup(sc.tgts, c.match.Edge.From)
		sc.tgts = appendNodeDedup(sc.tgts, c.match.Edge.To)
	}
	nt := len(sc.tgts)
	need := len(sc.srcs) * nt
	if cap(sc.rowBuf) < need {
		sc.rowBuf = make([]float64, need)
	}
	sc.rowBuf = sc.rowBuf[:need]
	sc.rows = sc.rows[:0]
	for si, src := range sc.srcs {
		row := sc.rowBuf[si*nt : (si+1)*nt]
		sc.rows = append(sc.rows, row)
		h.fillRow(rt, sc, src, row)
	}
}

// fillRow resolves one source node's distances to every target: cache
// first, then the router's certified lower bound — a pair the overlay
// proves is beyond the step bound needs no search at all, which is where
// sparse (low-sampling-rate) trajectories win big, since their large
// straight-line gaps force exactly the long-range searches that degrade
// worst — and finally one bounded multi-target search over the remaining
// misses, whose results are written back to the cache.
func (h *HMMMatcher) fillRow(rt Router, sc *stepScratch, src NodeID, row []float64) {
	sc.missTgts = sc.missTgts[:0]
	sc.missIdx = sc.missIdx[:0]
	for ti, t := range sc.tgts {
		if src == t {
			row[ti] = 0
			continue
		}
		if d, ok := h.cache.Lookup(src, t, sc.maxCost); ok {
			// A cached exact distance beyond the bound reads as unreached,
			// keeping warm- and cold-cache decodes identical.
			if d > sc.maxCost {
				d = math.Inf(1)
			}
			row[ti] = d
			continue
		}
		if rt.provablyBeyond(src, t, sc.maxCost) {
			// Provably unreached within the bound: exactly what the search
			// would conclude, recorded in the cache the same way.
			row[ti] = math.Inf(1)
			h.cache.Store(src, t, math.Inf(1), sc.maxCost)
			continue
		}
		sc.missTgts = append(sc.missTgts, t)
		sc.missIdx = append(sc.missIdx, ti)
	}
	if len(sc.missTgts) == 0 {
		return
	}
	if cap(sc.missOut) < len(sc.missTgts) {
		sc.missOut = make([]float64, len(sc.missTgts))
	}
	out := sc.missOut[:len(sc.missTgts)]
	rt.distancesFromInto(src, sc.missTgts, sc.maxCost, ByDistance, out)
	for i, ti := range sc.missIdx {
		h.cache.Store(src, sc.missTgts[i], out[i], sc.maxCost)
		row[ti] = out[i]
	}
}

// dist looks a pair up in the step table. Both nodes are guaranteed
// present by construction; +Inf is returned defensively otherwise.
func (sc *stepScratch) dist(src, dst NodeID) float64 {
	si := -1
	for i, s := range sc.srcs {
		if s == src {
			si = i
			break
		}
	}
	if si < 0 {
		return math.Inf(1)
	}
	for i, t := range sc.tgts {
		if t == dst {
			return sc.rows[si][i]
		}
	}
	return math.Inf(1)
}

// transitionFast is transition over the step's precomputed distance table.
func (h *HMMMatcher) transitionFast(sc *stepScratch, a, b Match, straight float64) float64 {
	network := h.networkDistanceFast(sc, a, b)
	diff := math.Abs(network - straight)
	return -diff / h.opts.BetaMeters
}

// networkDistanceFast is networkDistance reading the node-level shortest
// paths from the step table instead of searching per pair. Pairs whose
// best route exceeds the step bound (or that are disconnected) are floored
// at the bound, i.e. a log-probability of exactly -transitionBoundBetas.
func (h *HMMMatcher) networkDistanceFast(sc *stepScratch, a, b Match) float64 {
	if a.Edge.ID == b.Edge.ID {
		return math.Abs(a.Along - b.Along)
	}
	best := math.Inf(1)
	for _, fromEnd := range [2]struct {
		node NodeID
		cost float64
	}{
		{a.Edge.From, a.Along},
		{a.Edge.To, a.Edge.Length() - a.Along},
	} {
		for _, toEnd := range [2]struct {
			node NodeID
			cost float64
		}{
			{b.Edge.From, b.Along},
			{b.Edge.To, b.Edge.Length() - b.Along},
		} {
			var mid float64
			if fromEnd.node != toEnd.node {
				mid = sc.dist(fromEnd.node, toEnd.node)
			}
			if total := fromEnd.cost + mid + toEnd.cost; total < best {
				best = total
			}
		}
	}
	if math.IsInf(best, 1) {
		return sc.maxCost
	}
	return best
}

// candidateEdges returns up to max distinct edges within radius of p,
// nearest first.
func (m *Matcher) candidateEdges(p geo.Point, radius float64, max int) []Match {
	hits := m.ix.Within(p, radius+matchSampleSpacing)
	// Dedupe with a small stack-backed slice: candidate lists are a
	// handful of edges, and this runs once per GPS sample on the serving
	// path, so a per-call map allocation is pure overhead.
	var seenArr [16]int
	seen := seenArr[:0]
	var out []Match
	for _, h := range hits {
		dup := false
		for _, id := range seen {
			if id == h.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, h.ID)
		e := m.g.Edge(EdgeID(h.ID))
		d, seg, t := e.Geometry.NearestPoint(p)
		if d > radius {
			continue
		}
		out = append(out, Match{Edge: e, Distance: d, Along: e.Geometry.DistanceAlong(seg, t)})
	}
	// Insertion sort by distance (candidate lists are tiny).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Distance < out[j-1].Distance; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}
