package roadnet

import (
	"math"

	"stmaker/internal/geo"
)

// HMMOptions configures the hidden-Markov-model map matcher, which follows
// Newson & Krumm (SIGSPATIAL 2009) — the map-matching approach the paper's
// related-work section points to for trajectory annotation. States are
// candidate edges per GPS sample; emissions score perpendicular distance,
// transitions score the agreement between network distance and
// great-circle distance; Viterbi decodes the most likely edge sequence.
type HMMOptions struct {
	// SigmaMeters is the GPS noise standard deviation (default 15).
	SigmaMeters float64
	// BetaMeters scales the transition penalty for route/great-circle
	// disagreement (default 50).
	BetaMeters float64
	// CandidateRadiusMeters bounds the per-sample candidate search
	// (default 120).
	CandidateRadiusMeters float64
	// MaxCandidates caps candidates per sample (default 4).
	MaxCandidates int
}

func (o HMMOptions) withDefaults() HMMOptions {
	if o.SigmaMeters <= 0 {
		o.SigmaMeters = 15
	}
	if o.BetaMeters <= 0 {
		o.BetaMeters = 50
	}
	if o.CandidateRadiusMeters <= 0 {
		o.CandidateRadiusMeters = 120
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4
	}
	return o
}

// HMMMatcher decodes the most likely edge sequence of a GPS point series.
type HMMMatcher struct {
	g    *Graph
	m    *Matcher
	opts HMMOptions
}

// NewHMMMatcher builds an HMM matcher over the graph.
func NewHMMMatcher(g *Graph, opts HMMOptions) *HMMMatcher {
	return &HMMMatcher{g: g, m: NewMatcher(g), opts: opts.withDefaults()}
}

// candidate is one per-sample state.
type candidate struct {
	match    Match
	emission float64 // log emission probability
}

// MatchPoints returns, for each input point, the matched edge under the
// maximum-likelihood joint assignment, or nil entries where no candidate
// was within range. A break in candidates restarts the chain, as Newson &
// Krumm prescribe for gaps.
func (h *HMMMatcher) MatchPoints(points []geo.Point) []*Match {
	out := make([]*Match, len(points))
	start := 0
	for start < len(points) {
		end := h.decodeRun(points, start, out)
		if end == start {
			start++ // unmatchable point: leave nil, move on
			continue
		}
		start = end
	}
	return out
}

// decodeRun Viterbi-decodes the maximal run of consecutive points with
// candidates beginning at start, fills the output, and returns the index
// one past the run. It returns start when the first point has no
// candidates.
func (h *HMMMatcher) decodeRun(points []geo.Point, start int, out []*Match) int {
	cands := h.candidates(points[start])
	if len(cands) == 0 {
		return start
	}
	// Viterbi state: best log-prob to each current candidate, with
	// backpointers per step.
	type step struct {
		cands []candidate
		back  []int
	}
	steps := []step{{cands: cands, back: make([]int, len(cands))}}
	probs := make([]float64, len(cands))
	for i, c := range cands {
		probs[i] = c.emission
		steps[0].back[i] = -1
	}

	end := start + 1
	for ; end < len(points); end++ {
		next := h.candidates(points[end])
		if len(next) == 0 {
			break
		}
		prev := steps[len(steps)-1]
		straight := geo.Distance(points[end-1], points[end])
		nextProbs := make([]float64, len(next))
		back := make([]int, len(next))
		for j, nc := range next {
			best, bestFrom := math.Inf(-1), -1
			for i, pc := range prev.cands {
				trans := h.transition(pc.match, nc.match, straight)
				if p := probs[i] + trans; p > best {
					best, bestFrom = p, i
				}
			}
			nextProbs[j] = best + nc.emission
			back[j] = bestFrom
		}
		steps = append(steps, step{cands: next, back: back})
		probs = nextProbs
	}

	// Backtrace from the best final state.
	bestJ := 0
	for j := range probs {
		if probs[j] > probs[bestJ] {
			bestJ = j
		}
	}
	for s := len(steps) - 1; s >= 0; s-- {
		m := steps[s].cands[bestJ].match
		out[start+s] = &m
		bestJ = steps[s].back[bestJ]
	}
	return end
}

// candidates returns the scored candidate edges of one point.
func (h *HMMMatcher) candidates(p geo.Point) []candidate {
	hits := h.m.candidateEdges(p, h.opts.CandidateRadiusMeters, h.opts.MaxCandidates)
	out := make([]candidate, 0, len(hits))
	for _, m := range hits {
		// log of the Gaussian emission N(0, sigma) at distance d.
		z := m.Distance / h.opts.SigmaMeters
		out = append(out, candidate{match: m, emission: -0.5 * z * z})
	}
	return out
}

// transition returns the log transition probability between consecutive
// candidates: an exponential penalty on |network distance − straight-line
// distance| (Newson & Krumm's key observation that correct matches make
// the two nearly equal).
func (h *HMMMatcher) transition(a, b Match, straight float64) float64 {
	network := h.networkDistance(a, b)
	diff := math.Abs(network - straight)
	return -diff / h.opts.BetaMeters
}

// networkDistance approximates driving distance between two on-edge
// positions: along-edge when both lie on the same edge, otherwise the
// best combination of residual edge distance plus a node-level shortest
// path between the edges' endpoints.
func (h *HMMMatcher) networkDistance(a, b Match) float64 {
	if a.Edge.ID == b.Edge.ID {
		return math.Abs(a.Along - b.Along)
	}
	best := math.Inf(1)
	for _, fromEnd := range [2]struct {
		node NodeID
		cost float64
	}{
		{a.Edge.From, a.Along},
		{a.Edge.To, a.Edge.Length() - a.Along},
	} {
		for _, toEnd := range [2]struct {
			node NodeID
			cost float64
		}{
			{b.Edge.From, b.Along},
			{b.Edge.To, b.Edge.Length() - b.Along},
		} {
			var mid float64
			if fromEnd.node != toEnd.node {
				path, err := h.g.ShortestPath(fromEnd.node, toEnd.node, ByDistance)
				if err != nil {
					continue
				}
				mid = path.Cost
			}
			if total := fromEnd.cost + mid + toEnd.cost; total < best {
				best = total
			}
		}
	}
	if math.IsInf(best, 1) {
		// Disconnected in the directed graph: fall back to the straight
		// line so the transition is merely very unlikely, not impossible.
		return geo.Distance(a.Edge.Geometry[0], b.Edge.Geometry[0])
	}
	return best
}

// candidateEdges returns up to max distinct edges within radius of p,
// nearest first.
func (m *Matcher) candidateEdges(p geo.Point, radius float64, max int) []Match {
	hits := m.ix.Within(p, radius+matchSampleSpacing)
	seen := make(map[int]bool)
	var out []Match
	for _, h := range hits {
		if seen[h.ID] {
			continue
		}
		seen[h.ID] = true
		e := m.g.Edge(EdgeID(h.ID))
		d, seg, t := e.Geometry.NearestPoint(p)
		if d > radius {
			continue
		}
		out = append(out, Match{Edge: e, Distance: d, Along: e.Geometry.DistanceAlong(seg, t)})
	}
	// Insertion sort by distance (candidate lists are tiny).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Distance < out[j-1].Distance; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}
