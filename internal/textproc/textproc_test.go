package textproc

import (
	"testing"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("The car moved from the Daoxiang Community to the Haidian Hospital, with two staying points.")
	want := []string{"daoxiang", "community", "haidian", "hospital", "two", "staying", "points"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizeKeepsHyphensAndNumbers(t *testing.T) {
	toks := Tokenize("one U-turn at 56 km/h")
	found := map[string]bool{}
	for _, tok := range toks {
		found[tok] = true
	}
	if !found["u-turn"] || !found["56"] {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty tokens = %v", got)
	}
	if got := Tokenize("the a an"); len(got) != 0 {
		t.Fatalf("stop-word-only tokens = %v", got)
	}
}

func docs() []Document {
	return []Document{
		{ID: "1", Text: "The car moved slowly with two staying points near the Hospital."},
		{ID: "2", Text: "The car moved with one U-turn at the Central Avenue."},
		{ID: "3", Text: "The car moved smoothly along the Ring Street."},
		{ID: "4", Text: "The car moved slowly with three staying points near the Hospital."},
		{ID: "5", Text: "Heavy congestion: slow speed and many staying points near the Hospital."},
	}
}

func TestSearch(t *testing.T) {
	ix := NewIndex(docs())
	if ix.Len() != 5 {
		t.Fatalf("Len = %d", ix.Len())
	}
	hits := ix.Search("staying points")
	if len(hits) != 3 {
		t.Fatalf("hits = %d: %+v", len(hits), hits)
	}
	for _, h := range hits {
		if h.ID == "2" || h.ID == "3" {
			t.Fatalf("unexpected hit %s", h.ID)
		}
	}
	if got := ix.Search("u-turn"); len(got) != 1 || got[0].ID != "2" {
		t.Fatalf("u-turn hits = %+v", got)
	}
	if got := ix.Search("nonexistent"); got != nil {
		t.Fatalf("miss hits = %+v", got)
	}
	if got := ix.Search(""); got != nil {
		t.Fatalf("empty query hits = %+v", got)
	}
	// Conjunctive semantics: both tokens must appear.
	if got := ix.Search("smoothly hospital"); got != nil {
		t.Fatalf("conjunctive miss = %+v", got)
	}
}

func TestSearchRanking(t *testing.T) {
	ix := NewIndex([]Document{
		{ID: "weak", Text: "slow once"},
		{ID: "strong", Text: "slow slow slow everywhere"},
	})
	hits := ix.Search("slow")
	if len(hits) != 2 || hits[0].ID != "strong" {
		t.Fatalf("ranking = %+v", hits)
	}
}

func TestClusterSeparatesTopics(t *testing.T) {
	ix := NewIndex(docs())
	cl := ix.Cluster(3, 50)
	if len(cl.Assign) != 5 {
		t.Fatalf("assign = %v", cl.Assign)
	}
	// The near-duplicate "staying points near the Hospital" docs (0, 3)
	// must share a cluster; with three clusters available, the smooth
	// Ring Street doc (2) and the U-turn doc (1) must sit outside it.
	if cl.Assign[0] != cl.Assign[3] {
		t.Errorf("similar docs split: %v", cl.Assign)
	}
	if cl.Assign[0] == cl.Assign[2] || cl.Assign[0] == cl.Assign[1] {
		t.Errorf("dissimilar docs merged: %v", cl.Assign)
	}
	// Top terms of the staying cluster should surface the topic.
	terms := cl.TopTerms(cl.Assign[0], 5)
	foundTopic := false
	for _, term := range terms {
		if term == "staying" || term == "hospital" || term == "points" {
			foundTopic = true
		}
	}
	if !foundTopic {
		t.Errorf("top terms = %v", terms)
	}
}

func TestClusterEdgeCases(t *testing.T) {
	empty := NewIndex(nil)
	if cl := empty.Cluster(3, 10); len(cl.Assign) != 0 {
		t.Fatalf("empty clustering = %+v", cl)
	}
	ix := NewIndex(docs())
	one := ix.Cluster(0, 10) // k clamps to 1
	for _, c := range one.Assign {
		if c != 0 {
			t.Fatalf("k=1 assign = %v", one.Assign)
		}
	}
	many := ix.Cluster(99, 10) // k clamps to n
	if len(many.Centroids) != 5 {
		t.Fatalf("clamped centroids = %d", len(many.Centroids))
	}
}

func TestClusterDeterministic(t *testing.T) {
	ix := NewIndex(docs())
	a := ix.Cluster(2, 50)
	b := ix.Cluster(2, 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("nondeterministic clustering")
		}
	}
}

func TestCategorize(t *testing.T) {
	ix := NewIndex(docs())
	cl := ix.Cluster(2, 50)
	c := cl.Categorize(ix, "many staying points near the Hospital again")
	if c != cl.Assign[0] {
		t.Fatalf("categorized into %d, want the staying cluster %d", c, cl.Assign[0])
	}
	if (&Clustering{}).Categorize(ix, "x") != -1 {
		t.Fatal("empty clustering should return -1")
	}
}

func TestTopTermsBounds(t *testing.T) {
	ix := NewIndex(docs())
	cl := ix.Cluster(2, 50)
	if got := cl.TopTerms(-1, 3); got != nil {
		t.Fatalf("bad cluster terms = %v", got)
	}
	if got := cl.TopTerms(0, 0); got != nil {
		t.Fatalf("zero m terms = %v", got)
	}
	all := cl.TopTerms(0, 9999)
	if len(all) == 0 {
		t.Fatal("no terms at all")
	}
}

func TestVectorizeConsistentWithSearchScores(t *testing.T) {
	ix := NewIndex(docs())
	vocab := ix.Vocabulary()
	v := ix.Vectorize(0, vocab)
	if len(v) != len(vocab) {
		t.Fatalf("vector dims = %d, vocab = %d", len(v), len(vocab))
	}
	var nonzero int
	for _, x := range v {
		if x < 0 {
			t.Fatal("negative tf-idf")
		}
		if x > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all-zero vector")
	}
}
