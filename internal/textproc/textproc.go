// Package textproc applies classic text processing to trajectory
// summaries, realizing §VI-C's observation that once trajectories are
// summarized as text, mature text techniques apply directly: an inverted
// index for summary search, TF-IDF vectorization, k-means clustering (for
// quick traffic overviews of a region/time window) and a nearest-centroid
// categorizer.
package textproc

import (
	"math"
	"sort"
	"strings"
)

// Tokenize lower-cases the text and splits it into word tokens, dropping
// punctuation and a small stop-word list of template glue words.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if !stopWords[tok] {
			tokens = append(tokens, tok)
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stopWords are template glue that carries no discriminative content.
var stopWords = map[string]bool{
	"the": true, "a": true, "an": true, "it": true, "of": true, "to": true,
	"from": true, "then": true, "and": true, "with": true, "was": true,
	"which": true, "while": true, "in": true, "for": true, "at": true,
	"car": true, "moved": true, "started": true, "through": true,
}

// Document is an indexed summary.
type Document struct {
	ID   string
	Text string
}

// Index is an inverted index over summary documents.
type Index struct {
	docs     []Document
	postings map[string][]int // token → doc ordinals
	freqs    []map[string]int // per-doc token counts
}

// NewIndex builds an index over the documents.
func NewIndex(docs []Document) *Index {
	ix := &Index{docs: docs, postings: make(map[string][]int)}
	for i, d := range docs {
		counts := make(map[string]int)
		for _, tok := range Tokenize(d.Text) {
			counts[tok]++
		}
		ix.freqs = append(ix.freqs, counts)
		for tok := range counts {
			ix.postings[tok] = append(ix.postings[tok], i)
		}
	}
	return ix
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Search returns the documents containing every query token, ranked by
// summed TF-IDF of the query tokens.
func (ix *Index) Search(query string) []Document {
	tokens := Tokenize(query)
	if len(tokens) == 0 {
		return nil
	}
	// Intersect postings.
	cand := map[int]bool{}
	for i, tok := range tokens {
		docs := ix.postings[tok]
		if len(docs) == 0 {
			return nil
		}
		if i == 0 {
			for _, d := range docs {
				cand[d] = true
			}
			continue
		}
		next := map[int]bool{}
		for _, d := range docs {
			if cand[d] {
				next[d] = true
			}
		}
		cand = next
		if len(cand) == 0 {
			return nil
		}
	}
	type scored struct {
		doc   int
		score float64
	}
	var hits []scored
	for d := range cand {
		var score float64
		for _, tok := range tokens {
			score += ix.tfidf(d, tok)
		}
		hits = append(hits, scored{doc: d, score: score})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].score != hits[j].score { //lint:allow floateq -- sort comparator: exact tie-break on equal keys is intended
			return hits[i].score > hits[j].score
		}
		return hits[i].doc < hits[j].doc
	})
	out := make([]Document, len(hits))
	for i, h := range hits {
		out[i] = ix.docs[h.doc]
	}
	return out
}

// tfidf scores token tok in document d.
func (ix *Index) tfidf(d int, tok string) float64 {
	n := ix.freqs[d][tok]
	if n == 0 {
		return 0
	}
	tf := float64(n)
	df := float64(len(ix.postings[tok]))
	idf := math.Log(float64(len(ix.docs)+1)/(df+1)) + 1
	return tf * idf
}

// Vocabulary returns the indexed tokens in sorted order.
func (ix *Index) Vocabulary() []string {
	out := make([]string, 0, len(ix.postings))
	for tok := range ix.postings {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// Vectorize returns the TF-IDF vector of document ordinal d over the given
// vocabulary.
func (ix *Index) Vectorize(d int, vocab []string) []float64 {
	out := make([]float64, len(vocab))
	for j, tok := range vocab {
		out[j] = ix.tfidf(d, tok)
	}
	return out
}

// Clustering is the result of k-means over summary vectors.
type Clustering struct {
	// Assign[i] is the cluster of document i.
	Assign []int
	// Centroids are the cluster centres in TF-IDF space.
	Centroids [][]float64
	// Vocab is the vocabulary the vectors are expressed over.
	Vocab []string
	// Iterations is the number of k-means iterations performed.
	Iterations int
}

// Cluster runs deterministic k-means (documents seeded round-robin) over
// the indexed documents. k is clamped to [1, len(docs)].
func (ix *Index) Cluster(k, maxIter int) *Clustering {
	n := len(ix.docs)
	if n == 0 {
		return &Clustering{}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	vocab := ix.Vocabulary()
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = ix.Vectorize(i, vocab)
	}
	// Deterministic farthest-first seeding: the first seed is document 0,
	// each further seed is the document farthest from its nearest seed.
	seeds := []int{0}
	for len(seeds) < k {
		best, bestD := -1, -1.0
		for i := range vecs {
			nearest := math.Inf(1)
			for _, s := range seeds {
				if d := sqDist(vecs[i], vecs[s]); d < nearest {
					nearest = d
				}
			}
			if nearest > bestD {
				best, bestD = i, nearest
			}
		}
		seeds = append(seeds, best)
	}
	assign := make([]int, n)
	for i := range assign {
		bestC, bestD := 0, math.Inf(1)
		for c, s := range seeds {
			if d := sqDist(vecs[i], vecs[s]); d < bestD {
				bestC, bestD = c, d
			}
		}
		assign[i] = bestC
	}
	centroids := make([][]float64, k)
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			centroids[c] = make([]float64, len(vocab))
		}
		for i, c := range assign {
			counts[c]++
			for j, x := range vecs[i] {
				centroids[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] > 0 {
				for j := range centroids[c] {
					centroids[c][j] /= float64(counts[c])
				}
			}
		}
		// Reassign.
		changed := false
		for i := range vecs {
			best, bestD := assign[i], math.Inf(1)
			for c := range centroids {
				if d := sqDist(vecs[i], centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return &Clustering{Assign: assign, Centroids: centroids, Vocab: vocab, Iterations: iters}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// TopTerms returns the m highest-weight vocabulary terms of cluster c —
// the quick "what is happening in this cluster" view of §VI-C.
func (cl *Clustering) TopTerms(c, m int) []string {
	if c < 0 || c >= len(cl.Centroids) || m <= 0 {
		return nil
	}
	type tw struct {
		term string
		w    float64
	}
	terms := make([]tw, len(cl.Vocab))
	for j, t := range cl.Vocab {
		terms[j] = tw{term: t, w: cl.Centroids[c][j]}
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].w != terms[j].w { //lint:allow floateq -- sort comparator: exact tie-break on equal keys is intended
			return terms[i].w > terms[j].w
		}
		return terms[i].term < terms[j].term
	})
	if m > len(terms) {
		m = len(terms)
	}
	out := make([]string, 0, m)
	for _, t := range terms[:m] {
		if t.w > 0 {
			out = append(out, t.term)
		}
	}
	return out
}

// Categorize assigns a new text to the nearest cluster centroid, the
// §VI-C text-categorization application. It returns -1 for an empty
// clustering.
func (cl *Clustering) Categorize(ix *Index, text string) int {
	if len(cl.Centroids) == 0 {
		return -1
	}
	counts := make(map[string]int)
	for _, tok := range Tokenize(text) {
		counts[tok]++
	}
	vec := make([]float64, len(cl.Vocab))
	for j, tok := range cl.Vocab {
		n := counts[tok]
		if n == 0 {
			continue
		}
		df := float64(len(ix.postings[tok]))
		vec[j] = float64(n) * (math.Log(float64(len(ix.docs)+1)/(df+1)) + 1)
	}
	best, bestD := 0, math.Inf(1)
	for c := range cl.Centroids {
		if d := sqDist(vec, cl.Centroids[c]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
