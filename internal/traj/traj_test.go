package traj

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"stmaker/internal/geo"
)

var t0 = time.Date(2013, 11, 2, 9, 0, 0, 0, time.UTC)

// eastRaw builds a raw trajectory moving east at the given speed (km/h),
// one sample every intervalSec seconds, n samples total.
func eastRaw(speedKmh float64, intervalSec, n int) *Raw {
	r := &Raw{ID: "t"}
	p := geo.Point{Lat: 39.9, Lng: 116.4}
	step := speedKmh / 3.6 * float64(intervalSec)
	for i := 0; i < n; i++ {
		r.Samples = append(r.Samples, Sample{Pt: p, T: t0.Add(time.Duration(i*intervalSec) * time.Second)})
		p = geo.Destination(p, 90, step)
	}
	return r
}

func TestValidate(t *testing.T) {
	good := eastRaw(40, 5, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trajectory rejected: %v", err)
	}
	short := &Raw{ID: "s", Samples: good.Samples[:1]}
	if err := short.Validate(); err == nil {
		t.Error("single-sample trajectory accepted")
	}
	bad := eastRaw(40, 5, 3)
	bad.Samples[1].Pt.Lat = 200
	if err := bad.Validate(); err == nil {
		t.Error("invalid point accepted")
	}
	rev := eastRaw(40, 5, 3)
	rev.Samples[2].T = t0.Add(-time.Hour)
	if err := rev.Validate(); err == nil {
		t.Error("decreasing timestamps accepted")
	}
	zero := eastRaw(40, 5, 3)
	zero.Samples[0].T = time.Time{}
	if err := zero.Validate(); err == nil {
		t.Error("zero timestamp accepted")
	}
}

func TestDurationLengthSpeed(t *testing.T) {
	r := eastRaw(36, 10, 7) // 36 km/h = 10 m/s, 6 intervals of 10s = 600 m, 60 s
	if got := r.Duration(); got != 60*time.Second {
		t.Fatalf("Duration = %v", got)
	}
	if got := r.Length(); math.Abs(got-600) > 2 {
		t.Fatalf("Length = %v, want about 600", got)
	}
	if got := r.AverageSpeedKmh(); math.Abs(got-36) > 0.5 {
		t.Fatalf("AverageSpeedKmh = %v, want about 36", got)
	}
}

func TestEmptyRawAccessors(t *testing.T) {
	r := &Raw{}
	if !r.Start().IsZero() || !r.End().IsZero() {
		t.Error("empty Start/End should be zero")
	}
	if r.Duration() != 0 || r.Length() != 0 || r.AverageSpeedKmh() != 0 {
		t.Error("empty metrics should be zero")
	}
}

func TestSpeedBetween(t *testing.T) {
	r := eastRaw(36, 10, 7)
	if got := r.SpeedBetween(0, 3); math.Abs(got-36) > 0.5 {
		t.Fatalf("SpeedBetween(0,3) = %v", got)
	}
	if got := r.SpeedBetween(3, 3); got != 0 {
		t.Fatalf("SpeedBetween(i,i) = %v", got)
	}
	if got := r.SpeedBetween(-1, 2); got != 0 {
		t.Fatalf("SpeedBetween(-1,2) = %v", got)
	}
	if got := r.SpeedBetween(0, 99); got != 0 {
		t.Fatalf("SpeedBetween(0,99) = %v", got)
	}
}

func makeSymbolic(t *testing.T) *Symbolic {
	t.Helper()
	r := eastRaw(36, 10, 11) // samples 0..10
	return &Symbolic{
		ID:  r.ID,
		Raw: r,
		Visits: []Visit{
			{Landmark: 5, T: r.Samples[0].T, RawIndex: 0},
			{Landmark: 9, T: r.Samples[4].T, RawIndex: 4},
			{Landmark: 2, T: r.Samples[10].T, RawIndex: 10},
		},
	}
}

func TestSymbolicSegments(t *testing.T) {
	s := makeSymbolic(t)
	if s.Len() != 3 || s.NumSegments() != 2 {
		t.Fatalf("Len=%d NumSegments=%d", s.Len(), s.NumSegments())
	}
	segs := s.Segments()
	if len(segs) != 2 {
		t.Fatalf("Segments len = %d", len(segs))
	}
	if segs[0].From.Landmark != 5 || segs[0].To.Landmark != 9 {
		t.Fatalf("segment 0 endpoints: %+v", segs[0])
	}
	if segs[1].Index != 1 {
		t.Fatalf("segment 1 index = %d", segs[1].Index)
	}
	if d := segs[0].Duration(); d != 40*time.Second {
		t.Fatalf("segment 0 duration = %v", d)
	}
	ids := s.LandmarkIDs()
	if len(ids) != 3 || ids[0] != 5 || ids[1] != 9 || ids[2] != 2 {
		t.Fatalf("LandmarkIDs = %v", ids)
	}
}

func TestSegmentRawSamples(t *testing.T) {
	s := makeSymbolic(t)
	sg := s.Segment(0)
	got := sg.RawSamples()
	if len(got) != 5 { // raw indices 0..4 inclusive
		t.Fatalf("RawSamples len = %d, want 5", len(got))
	}
	if got[0] != s.Raw.Samples[0] || got[4] != s.Raw.Samples[4] {
		t.Fatal("RawSamples boundary mismatch")
	}

	// Clamping out-of-range raw indices.
	s.Visits[1].RawIndex = 999
	if got := s.Segment(0).RawSamples(); len(got) != 11 {
		t.Fatalf("clamped RawSamples len = %d, want 11", len(got))
	}

	// Detached raw.
	s.Raw = nil
	if got := s.Segment(0).RawSamples(); got != nil {
		t.Fatalf("detached RawSamples = %v", got)
	}
}

func TestSegmentPanicsOutOfRange(t *testing.T) {
	s := makeSymbolic(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Segment out of range should panic")
		}
	}()
	s.Segment(2)
}

func TestNumSegmentsUncalibrated(t *testing.T) {
	s := &Symbolic{Visits: []Visit{{Landmark: 1}}}
	if s.NumSegments() != 0 {
		t.Fatalf("NumSegments = %d", s.NumSegments())
	}
}

func TestRawJSONRoundTrip(t *testing.T) {
	r := eastRaw(40, 5, 4)
	r.Object = "taxi-1"
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Raw
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != r.ID || back.Object != r.Object || len(back.Samples) != len(r.Samples) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	for i := range back.Samples {
		if !back.Samples[i].T.Equal(r.Samples[i].T) || back.Samples[i].Pt != r.Samples[i].Pt {
			t.Fatalf("sample %d differs", i)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}
