// Package traj defines the trajectory model of the paper: raw trajectories
// (Def. 1) as timestamped GPS samples, and symbolic trajectories (Def. 3)
// as timestamped landmark visits, together with trajectory segments
// (Def. 4) connecting consecutive landmarks.
package traj

import (
	"errors"
	"fmt"
	"time"

	"stmaker/internal/geo"
)

// Sample is a single GPS fix: a location and its timestamp.
type Sample struct {
	Pt geo.Point `json:"pt"`
	T  time.Time `json:"t"`
}

// Raw is a raw trajectory: a finite sequence of timestamped locations
// sampled from the original route of a moving object (Def. 1).
type Raw struct {
	// ID identifies the trajectory within a dataset.
	ID string `json:"id"`
	// Object identifies the moving object (e.g. a taxi).
	Object string `json:"object,omitempty"`
	// Samples are ordered by non-decreasing timestamp.
	Samples []Sample `json:"samples"`
}

// Validate checks structural invariants: at least two samples, valid
// coordinates and non-decreasing timestamps. A nil trajectory is invalid,
// not a panic — decoded JSON (worldio, the HTTP server) can produce one.
func (r *Raw) Validate() error {
	if r == nil {
		return errors.New("traj: nil trajectory")
	}
	if len(r.Samples) < 2 {
		return fmt.Errorf("traj: trajectory %q has %d samples, need at least 2", r.ID, len(r.Samples))
	}
	for i, s := range r.Samples {
		if !s.Pt.Valid() {
			return fmt.Errorf("traj: trajectory %q sample %d has invalid point %v", r.ID, i, s.Pt)
		}
		if s.T.IsZero() {
			return fmt.Errorf("traj: trajectory %q sample %d has zero timestamp", r.ID, i)
		}
		if i > 0 && s.T.Before(r.Samples[i-1].T) {
			return fmt.Errorf("traj: trajectory %q timestamps decrease at sample %d", r.ID, i)
		}
	}
	return nil
}

// Start returns the first sample's timestamp (zero if empty).
func (r *Raw) Start() time.Time {
	if len(r.Samples) == 0 {
		return time.Time{}
	}
	return r.Samples[0].T
}

// End returns the last sample's timestamp (zero if empty).
func (r *Raw) End() time.Time {
	if len(r.Samples) == 0 {
		return time.Time{}
	}
	return r.Samples[len(r.Samples)-1].T
}

// Duration returns the elapsed time between the first and last sample.
func (r *Raw) Duration() time.Duration { return r.End().Sub(r.Start()) }

// Polyline returns the spatial path of the trajectory.
func (r *Raw) Polyline() geo.Polyline {
	pl := make(geo.Polyline, len(r.Samples))
	for i, s := range r.Samples {
		pl[i] = s.Pt
	}
	return pl
}

// Length returns the travelled distance in metres.
func (r *Raw) Length() float64 { return r.Polyline().Length() }

// AverageSpeedKmh returns the overall average speed. Zero-duration
// trajectories report 0.
func (r *Raw) AverageSpeedKmh() float64 {
	d := r.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return r.Length() / d * 3.6
}

// SpeedBetween returns the average speed in km/h between samples i and j
// (i < j). Zero elapsed time reports 0.
func (r *Raw) SpeedBetween(i, j int) float64 {
	if i < 0 || j >= len(r.Samples) || i >= j {
		return 0
	}
	elapsed := r.Samples[j].T.Sub(r.Samples[i].T).Seconds()
	if elapsed <= 0 {
		return 0
	}
	var dist float64
	for k := i + 1; k <= j; k++ {
		dist += geo.Distance(r.Samples[k-1].Pt, r.Samples[k].Pt)
	}
	return dist / elapsed * 3.6
}

// ErrNotCalibrated is returned when an operation requires a symbolic
// trajectory with at least two landmark visits.
var ErrNotCalibrated = errors.New("traj: symbolic trajectory has fewer than 2 landmark visits")

// Visit is one landmark passage of a symbolic trajectory.
type Visit struct {
	// Landmark is the landmark id (index into the landmark set).
	Landmark int `json:"landmark"`
	// T is the (possibly interpolated) time the object passed the landmark.
	T time.Time `json:"t"`
	// RawIndex is the index of the raw sample at or immediately before the
	// passage; it lets feature extractors recover the sample subsequence of
	// each segment.
	RawIndex int `json:"rawIndex"`
}

// Symbolic is a landmark-based (symbolic) trajectory (Def. 3): the sequence
// of landmarks the calibrated trajectory passes, with timestamps.
type Symbolic struct {
	// ID matches the source raw trajectory's ID.
	ID string `json:"id"`
	// Raw is the source trajectory; feature extraction reads its samples.
	Raw *Raw `json:"-"`
	// Visits is ordered by time.
	Visits []Visit `json:"visits"`
}

// Len returns |T|, the number of landmarks of the symbolic trajectory.
func (s *Symbolic) Len() int { return len(s.Visits) }

// NumSegments returns |T|−1 (zero when not calibrated).
func (s *Symbolic) NumSegments() int {
	if len(s.Visits) < 2 {
		return 0
	}
	return len(s.Visits) - 1
}

// Segment is a trajectory segment (Def. 4): the sub-trajectory connecting
// two consecutive landmarks.
type Segment struct {
	// Index is the segment's position i (connecting visit i and i+1).
	Index int
	// From and To are the consecutive landmark visits.
	From, To Visit
	// Traj is the owning symbolic trajectory.
	Traj *Symbolic
}

// Segment returns segment i (0-based). It panics if i is out of range, as
// with slice indexing.
func (s *Symbolic) Segment(i int) Segment {
	if i < 0 || i >= s.NumSegments() {
		panic(fmt.Sprintf("traj: segment index %d out of range [0,%d)", i, s.NumSegments()))
	}
	return Segment{Index: i, From: s.Visits[i], To: s.Visits[i+1], Traj: s}
}

// Segments returns all segments in order.
func (s *Symbolic) Segments() []Segment {
	out := make([]Segment, s.NumSegments())
	for i := range out {
		out[i] = s.Segment(i)
	}
	return out
}

// Duration returns the elapsed time of the segment.
func (sg Segment) Duration() time.Duration { return sg.To.T.Sub(sg.From.T) }

// RawSamples returns the raw samples spanned by the segment (inclusive of
// the boundary samples). It returns nil when the symbolic trajectory has no
// raw source attached.
func (sg Segment) RawSamples() []Sample {
	if sg.Traj == nil || sg.Traj.Raw == nil {
		return nil
	}
	lo, hi := sg.From.RawIndex, sg.To.RawIndex
	n := len(sg.Traj.Raw.Samples)
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	if lo > hi {
		return nil
	}
	return sg.Traj.Raw.Samples[lo : hi+1]
}

// LandmarkIDs returns the landmark sequence of the symbolic trajectory.
func (s *Symbolic) LandmarkIDs() []int {
	out := make([]int, len(s.Visits))
	for i, v := range s.Visits {
		out[i] = v.Landmark
	}
	return out
}
