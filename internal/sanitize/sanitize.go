// Package sanitize repairs degraded raw trajectories before calibration.
//
// The paper assumes calibration absorbs GPS noise (§II-A), but deployed
// trackers emit worse than noise: NaN or out-of-range fixes, duplicated
// points, out-of-order timestamps, teleport outliers from multipath or
// cold-start fixes, and dense jitter while the vehicle is parked. Feeding
// such input to the pipeline either hard-fails validation or distorts the
// moving features (an implied 10 000 km/h spike dominates max-normalized
// speed). Following the noise-repair-as-preprocessing stance of the
// low-sampling-rate map-matching literature, this package rewrites a
// traj.Raw into the cleanest trajectory consistent with its plausible
// fixes, and reports exactly what it changed so callers can distinguish
// "repaired" from "rejected".
//
// The repair pipeline, in order:
//
//  1. drop structurally invalid samples (invalid lat/lng, zero time);
//  2. restore timestamp order with a stable sort;
//  3. drop duplicate fixes (same timestamp as the previously kept sample);
//  4. drop teleport outliers whose implied speed from the last kept
//     sample exceeds MaxSpeedKmh;
//  5. collapse zero-movement jitter runs to their first and last sample
//     (preserving dwell endpoints, so stay-point detection still works).
//
// The output always satisfies traj.Raw.Validate (FuzzSanitize asserts
// this); when fewer than two samples survive, Sanitize rejects the
// trajectory with an error wrapping ErrUnusable instead.
package sanitize

import (
	"errors"
	"fmt"
	"sort"

	"stmaker/internal/geo"
	"stmaker/internal/traj"
)

// ErrUnusable is wrapped by Sanitize when fewer than two samples survive
// repair — the trajectory is rejected, not repaired.
var ErrUnusable = errors.New("sanitize: fewer than 2 usable samples remain")

// Default thresholds. They are deliberately loose: sanitization should
// remove the physically impossible, not second-guess unusual-but-real
// driving (which is exactly what STMaker wants to describe).
const (
	// DefaultMaxSpeedKmh is the implied-speed threshold above which a
	// fix counts as a teleport outlier. 300 km/h is beyond any road
	// vehicle yet below the step a multipath jump produces.
	DefaultMaxSpeedKmh = 300
	// DefaultJitterEpsilonMeters bounds the roaming radius of a
	// zero-movement run; well under typical GPS accuracy so only true
	// parked-antenna jitter collapses, never slow driving.
	DefaultJitterEpsilonMeters = 2
	// teleportAnchorResetAfter bounds the damage of a bad anchor: after
	// this many consecutive teleport drops the current sample is
	// accepted as the new anchor (the anchor, not the stream, was
	// probably the outlier).
	teleportAnchorResetAfter = 3
)

// Options configures a Sanitizer. The zero value applies every repair at
// the default thresholds; set a threshold negative to disable that
// repair.
type Options struct {
	// MaxSpeedKmh is the teleport threshold: a sample whose implied
	// speed from the last kept sample exceeds it is dropped. 0 uses
	// DefaultMaxSpeedKmh; negative disables outlier removal.
	MaxSpeedKmh float64
	// JitterEpsilonMeters is the roaming radius of a zero-movement run;
	// interior samples of a run are collapsed away. 0 uses
	// DefaultJitterEpsilonMeters; negative disables jitter collapse.
	JitterEpsilonMeters float64
}

func (o Options) withDefaults() Options {
	if o.MaxSpeedKmh == 0 { //lint:allow floateq -- zero means unset: callers opt out with a negative value
		o.MaxSpeedKmh = DefaultMaxSpeedKmh
	}
	if o.JitterEpsilonMeters == 0 { //lint:allow floateq -- zero means unset: callers opt out with a negative value
		o.JitterEpsilonMeters = DefaultJitterEpsilonMeters
	}
	return o
}

// Report counts the repairs applied to one trajectory (or, via Merge,
// to a corpus). A zero report means the input was already clean.
type Report struct {
	// Input and Output are the sample counts before and after repair.
	Input  int `json:"input"`
	Output int `json:"output"`

	// DroppedInvalid counts samples with invalid coordinates (NaN,
	// out-of-range) or a zero timestamp.
	DroppedInvalid int `json:"droppedInvalid,omitempty"`
	// Reordered counts samples whose timestamp decreased relative to
	// their predecessor before the stable sort restored order.
	Reordered int `json:"reordered,omitempty"`
	// DroppedDuplicates counts samples sharing a timestamp with the
	// previously kept sample.
	DroppedDuplicates int `json:"droppedDuplicates,omitempty"`
	// DroppedOutliers counts teleport samples removed by the
	// implied-speed threshold.
	DroppedOutliers int `json:"droppedOutliers,omitempty"`
	// CollapsedJitter counts interior samples removed from
	// zero-movement runs.
	CollapsedJitter int `json:"collapsedJitter,omitempty"`
}

// Repairs returns the total number of repairs applied.
func (r Report) Repairs() int {
	return r.DroppedInvalid + r.Reordered + r.DroppedDuplicates +
		r.DroppedOutliers + r.CollapsedJitter
}

// Clean reports whether no repair was needed.
func (r Report) Clean() bool { return r.Repairs() == 0 }

// Merge accumulates another report into this one (for corpus-level
// aggregation, e.g. stmaker.TrainStats).
func (r *Report) Merge(o Report) {
	r.Input += o.Input
	r.Output += o.Output
	r.DroppedInvalid += o.DroppedInvalid
	r.Reordered += o.Reordered
	r.DroppedDuplicates += o.DroppedDuplicates
	r.DroppedOutliers += o.DroppedOutliers
	r.CollapsedJitter += o.CollapsedJitter
}

// String summarizes the non-zero repair counts, for logs.
func (r Report) String() string {
	return fmt.Sprintf("sanitize: %d->%d samples (invalid %d, reordered %d, duplicate %d, outlier %d, jitter %d)",
		r.Input, r.Output, r.DroppedInvalid, r.Reordered, r.DroppedDuplicates, r.DroppedOutliers, r.CollapsedJitter)
}

// Sanitizer repairs raw trajectories. It is stateless per call and safe
// for concurrent use.
type Sanitizer struct {
	opts Options
}

// New returns a Sanitizer with the given options.
func New(opts Options) *Sanitizer {
	return &Sanitizer{opts: opts.withDefaults()}
}

// Sanitize returns a repaired copy of r together with the repair report.
// The input is never mutated. When fewer than two samples survive, it
// returns a nil trajectory and an error wrapping ErrUnusable; the report
// is still populated so callers can see why the trajectory died.
func (s *Sanitizer) Sanitize(r *traj.Raw) (*traj.Raw, Report, error) {
	var rep Report
	if r == nil {
		return nil, rep, fmt.Errorf("%w (nil trajectory)", ErrUnusable)
	}
	rep.Input = len(r.Samples)

	kept := s.dropInvalid(r.Samples, &rep)
	kept = s.restoreOrder(kept, &rep)
	kept = s.dropDuplicates(kept, &rep)
	kept = s.dropTeleports(kept, &rep)
	kept = s.collapseJitter(kept, &rep)

	rep.Output = len(kept)
	if len(kept) < 2 {
		return nil, rep, fmt.Errorf("%w (trajectory %q: %d of %d samples usable)",
			ErrUnusable, r.ID, len(kept), rep.Input)
	}
	out := &traj.Raw{ID: r.ID, Object: r.Object, Samples: kept}
	return out, rep, nil
}

// dropInvalid copies the valid samples; the copy also guarantees the
// later in-place passes never touch the caller's slice.
func (s *Sanitizer) dropInvalid(in []traj.Sample, rep *Report) []traj.Sample {
	out := make([]traj.Sample, 0, len(in))
	for _, sm := range in {
		if !sm.Pt.Valid() || sm.T.IsZero() {
			rep.DroppedInvalid++
			continue
		}
		out = append(out, sm)
	}
	return out
}

// restoreOrder stable-sorts by timestamp when any sample is out of
// order, counting the inversions it repairs. The stable sort keeps the
// original order of equal timestamps, so duplicate dropping stays
// deterministic.
func (s *Sanitizer) restoreOrder(in []traj.Sample, rep *Report) []traj.Sample {
	outOfOrder := 0
	for i := 1; i < len(in); i++ {
		if in[i].T.Before(in[i-1].T) {
			outOfOrder++
		}
	}
	if outOfOrder == 0 {
		return in
	}
	rep.Reordered = outOfOrder
	sort.SliceStable(in, func(i, j int) bool { return in[i].T.Before(in[j].T) })
	return in
}

// dropDuplicates keeps the first fix of each timestamp. After the sort,
// equal timestamps are adjacent, so one forward pass suffices; the
// result has strictly increasing timestamps, which also protects the
// speed computations downstream from zero-dt divisions.
func (s *Sanitizer) dropDuplicates(in []traj.Sample, rep *Report) []traj.Sample {
	if len(in) == 0 {
		return in
	}
	out := in[:1]
	for _, sm := range in[1:] {
		if sm.T.Equal(out[len(out)-1].T) {
			rep.DroppedDuplicates++
			continue
		}
		out = append(out, sm)
	}
	return out
}

// dropTeleports removes samples whose implied speed from the last kept
// sample exceeds the threshold. A run of teleportAnchorResetAfter
// consecutive drops resets the anchor to the current sample: when
// everything after a fix looks like a teleport, the fix — not the
// stream — was the outlier.
func (s *Sanitizer) dropTeleports(in []traj.Sample, rep *Report) []traj.Sample {
	if s.opts.MaxSpeedKmh < 0 || len(in) == 0 {
		return in
	}
	out := in[:1]
	consecutive := 0
	for _, sm := range in[1:] {
		prev := out[len(out)-1]
		dt := sm.T.Sub(prev.T).Seconds()
		speedKmh := geo.Distance(prev.Pt, sm.Pt) / dt * 3.6 // dt > 0 after dedupe
		if speedKmh > s.opts.MaxSpeedKmh {
			consecutive++
			rep.DroppedOutliers++
			if consecutive >= teleportAnchorResetAfter {
				// Trust the stream over the anchor: replace it.
				out[len(out)-1] = sm
				consecutive = 0
			}
			continue
		}
		consecutive = 0
		out = append(out, sm)
	}
	return out
}

// collapseJitter removes the interior samples of runs that never leave a
// JitterEpsilonMeters radius of the run's first sample. The run's first
// and last samples survive, preserving the dwell duration that
// stay-point detection (§III-B) reads.
func (s *Sanitizer) collapseJitter(in []traj.Sample, rep *Report) []traj.Sample {
	if s.opts.JitterEpsilonMeters < 0 || len(in) < 3 {
		return in
	}
	out := in[:0]
	i := 0
	for i < len(in) {
		j := i + 1
		for j < len(in) && geo.Distance(in[i].Pt, in[j].Pt) <= s.opts.JitterEpsilonMeters {
			j++
		}
		// [i, j) is one run; keep its endpoints.
		out = append(out, in[i])
		if j-i > 1 {
			out = append(out, in[j-1])
			rep.CollapsedJitter += j - i - 2
		}
		i = j
	}
	return out
}
