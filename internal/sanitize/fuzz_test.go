package sanitize

import (
	"encoding/json"
	"testing"

	"stmaker/internal/traj"
)

// FuzzSanitize asserts the sanitizer's core contract on arbitrary
// trajectories: it never panics, and whatever it returns either passes
// traj.Raw.Validate or is an explicit rejection error — never a
// half-repaired trajectory.
func FuzzSanitize(f *testing.F) {
	seeds := []string{
		`{"id":"clean","samples":[{"pt":{"Lat":39.9,"Lng":116.3},"t":"2013-11-02T06:00:00Z"},{"pt":{"Lat":39.91,"Lng":116.31},"t":"2013-11-02T06:05:00Z"}]}`,
		`{"id":"dup","samples":[{"pt":{"Lat":1,"Lng":1},"t":"2013-11-02T06:00:00Z"},{"pt":{"Lat":1,"Lng":1},"t":"2013-11-02T06:00:00Z"},{"pt":{"Lat":1.001,"Lng":1},"t":"2013-11-02T06:01:00Z"}]}`,
		`{"id":"shuffled","samples":[{"pt":{"Lat":1,"Lng":1},"t":"2013-11-02T06:05:00Z"},{"pt":{"Lat":1.001,"Lng":1},"t":"2013-11-02T06:00:00Z"}]}`,
		`{"id":"teleport","samples":[{"pt":{"Lat":1,"Lng":1},"t":"2013-11-02T06:00:00Z"},{"pt":{"Lat":45,"Lng":90},"t":"2013-11-02T06:00:01Z"},{"pt":{"Lat":1.0001,"Lng":1},"t":"2013-11-02T06:00:02Z"}]}`,
		`{"id":"bad","samples":[{"pt":{"Lat":999,"Lng":-999},"t":"0001-01-01T00:00:00Z"}]}`,
		`{}`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	san := New(Options{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var r traj.Raw
		if err := json.Unmarshal(data, &r); err != nil {
			return // not a trajectory; decoding robustness is FuzzLoadTrips' job
		}
		out, rep, err := san.Sanitize(&r)
		if err != nil {
			if out != nil {
				t.Fatalf("error with non-nil output: %v", err)
			}
			return
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("sanitized output fails Validate: %v\nreport: %+v\ninput: %s", err, rep, data)
		}
		if rep.Output != len(out.Samples) || rep.Input != len(r.Samples) {
			t.Fatalf("report counts inconsistent: %+v vs %d->%d", rep, len(r.Samples), len(out.Samples))
		}
	})
}
