package sanitize

import (
	"errors"
	"math"
	"testing"
	"time"

	"stmaker/internal/geo"
	"stmaker/internal/traj"
)

var t0 = time.Date(2013, 11, 2, 6, 0, 0, 0, time.UTC)

// mkTraj builds a straight eastbound trajectory with one sample every
// step seconds, spaced spacing metres apart — comfortably under any
// speed threshold at the defaults (100 m / 10 s = 36 km/h).
func mkTraj(n int) *traj.Raw {
	r := &traj.Raw{ID: "clean"}
	pt := geo.Point{Lat: 39.9, Lng: 116.3}
	for i := 0; i < n; i++ {
		r.Samples = append(r.Samples, traj.Sample{Pt: pt, T: t0.Add(time.Duration(i) * 10 * time.Second)})
		pt = geo.Destination(pt, 90, 100)
	}
	return r
}

func sanitize(t *testing.T, r *traj.Raw) (*traj.Raw, Report) {
	t.Helper()
	out, rep, err := New(Options{}).Sanitize(r)
	if err != nil {
		t.Fatalf("Sanitize: %v", err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("sanitized output fails Validate: %v", err)
	}
	return out, rep
}

func TestCleanTrajectoryUntouched(t *testing.T) {
	in := mkTraj(10)
	out, rep := sanitize(t, in)
	if !rep.Clean() {
		t.Errorf("clean input reported repairs: %+v", rep)
	}
	if len(out.Samples) != 10 || rep.Input != 10 || rep.Output != 10 {
		t.Errorf("out = %d samples, report = %+v", len(out.Samples), rep)
	}
}

func TestDropsInvalidSamples(t *testing.T) {
	in := mkTraj(6)
	in.Samples[1].Pt = geo.Point{Lat: math.NaN(), Lng: 116.3}
	in.Samples[2].Pt = geo.Point{Lat: 91, Lng: 200}
	in.Samples[3].T = time.Time{}
	out, rep := sanitize(t, in)
	if rep.DroppedInvalid != 3 {
		t.Errorf("DroppedInvalid = %d, want 3: %+v", rep.DroppedInvalid, rep)
	}
	if len(out.Samples) != 3 {
		t.Errorf("kept %d samples, want 3", len(out.Samples))
	}
}

func TestRestoresTimestampOrder(t *testing.T) {
	in := mkTraj(6)
	// Swap two adjacent timestamps: one inversion.
	in.Samples[2], in.Samples[3] = in.Samples[3], in.Samples[2]
	if in.Validate() == nil {
		t.Fatal("shuffled input unexpectedly valid")
	}
	out, rep := sanitize(t, in)
	if rep.Reordered == 0 {
		t.Errorf("Reordered = 0, want > 0")
	}
	for i := 1; i < len(out.Samples); i++ {
		if out.Samples[i].T.Before(out.Samples[i-1].T) {
			t.Fatalf("output still out of order at %d", i)
		}
	}
}

func TestDropsDuplicateFixes(t *testing.T) {
	in := mkTraj(5)
	dup := in.Samples[2]
	in.Samples = append(in.Samples[:3], append([]traj.Sample{dup, dup}, in.Samples[3:]...)...)
	out, rep := sanitize(t, in)
	if rep.DroppedDuplicates != 2 {
		t.Errorf("DroppedDuplicates = %d, want 2: %+v", rep.DroppedDuplicates, rep)
	}
	if len(out.Samples) != 5 {
		t.Errorf("kept %d samples, want 5", len(out.Samples))
	}
}

func TestDropsTeleportOutlier(t *testing.T) {
	in := mkTraj(8)
	// One fix jumps ~50 km off-route and back: two impossible hops.
	in.Samples[4].Pt = geo.Destination(in.Samples[4].Pt, 0, 50_000)
	out, rep := sanitize(t, in)
	if rep.DroppedOutliers != 1 {
		t.Errorf("DroppedOutliers = %d, want 1: %+v", rep.DroppedOutliers, rep)
	}
	if len(out.Samples) != 7 {
		t.Errorf("kept %d samples, want 7", len(out.Samples))
	}
	for _, sm := range out.Samples {
		if geo.Distance(sm.Pt, in.Samples[0].Pt) > 10_000 {
			t.Fatalf("teleport sample survived: %v", sm.Pt)
		}
	}
}

func TestTeleportAnchorReset(t *testing.T) {
	// A bogus first fix followed by a consistent distant track: the
	// anchor reset must recover the track instead of dropping it all.
	in := mkTraj(12)
	in.Samples[0].Pt = geo.Destination(in.Samples[0].Pt, 180, 500_000)
	out, rep := sanitize(t, in)
	if len(out.Samples) < 8 {
		t.Fatalf("anchor reset failed: only %d samples kept (%+v)", len(out.Samples), rep)
	}
	if got := geo.Distance(out.Samples[0].Pt, in.Samples[1].Pt); got > 5_000 {
		t.Errorf("output still anchored to the bogus fix (%.0f m away)", got)
	}
}

func TestCollapsesJitter(t *testing.T) {
	in := mkTraj(4)
	// Insert a parked episode: 6 fixes roaming < 1 m over a minute.
	base := in.Samples[1]
	var parked []traj.Sample
	for i := 0; i < 6; i++ {
		parked = append(parked, traj.Sample{
			Pt: geo.Destination(base.Pt, float64(i*60), 0.5),
			T:  base.T.Add(time.Duration(i+1) * time.Second),
		})
	}
	rest := append([]traj.Sample(nil), in.Samples[2:]...)
	for i := range rest {
		rest[i].T = rest[i].T.Add(time.Minute)
	}
	in.Samples = append(in.Samples[:2], append(parked, rest...)...)
	out, rep := sanitize(t, in)
	if rep.CollapsedJitter == 0 {
		t.Errorf("CollapsedJitter = 0, want > 0: %+v", rep)
	}
	// The run endpoints survive, so the dwell duration is preserved.
	if len(out.Samples) >= rep.Input {
		t.Errorf("nothing collapsed: %d of %d", len(out.Samples), rep.Input)
	}
}

func TestRejectsUnusableTrajectory(t *testing.T) {
	in := &traj.Raw{ID: "dead", Samples: []traj.Sample{
		{Pt: geo.Point{Lat: math.NaN()}, T: t0},
		{Pt: geo.Point{Lat: 200}, T: t0},
	}}
	out, rep, err := New(Options{}).Sanitize(in)
	if !errors.Is(err, ErrUnusable) {
		t.Fatalf("err = %v, want ErrUnusable", err)
	}
	if out != nil {
		t.Error("rejected trajectory returned non-nil output")
	}
	if rep.DroppedInvalid != 2 {
		t.Errorf("report not populated on rejection: %+v", rep)
	}
	if _, _, err := New(Options{}).Sanitize(nil); !errors.Is(err, ErrUnusable) {
		t.Errorf("nil trajectory: err = %v, want ErrUnusable", err)
	}
}

func TestInputNeverMutated(t *testing.T) {
	in := mkTraj(8)
	in.Samples[3], in.Samples[5] = in.Samples[5], in.Samples[3] // out of order
	in.Samples[6].Pt = geo.Point{Lat: 95} // invalid (and, unlike NaN, comparable)
	snapshot := append([]traj.Sample(nil), in.Samples...)
	if _, _, err := New(Options{}).Sanitize(in); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if in.Samples[i] != snapshot[i] {
			t.Fatalf("input sample %d mutated", i)
		}
	}
}

func TestDisabledRepairs(t *testing.T) {
	s := New(Options{MaxSpeedKmh: -1, JitterEpsilonMeters: -1})
	in := mkTraj(8)
	in.Samples[4].Pt = geo.Destination(in.Samples[4].Pt, 0, 50_000)
	out, rep, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedOutliers != 0 || len(out.Samples) != 8 {
		t.Errorf("disabled outlier removal still dropped: %+v", rep)
	}
}

func TestReportMerge(t *testing.T) {
	a := Report{Input: 10, Output: 8, DroppedInvalid: 1, DroppedOutliers: 1}
	b := Report{Input: 5, Output: 5, Reordered: 2}
	a.Merge(b)
	if a.Input != 15 || a.Output != 13 || a.Repairs() != 4 {
		t.Errorf("merged = %+v", a)
	}
	if a.Clean() {
		t.Error("merged report with repairs claims clean")
	}
}
