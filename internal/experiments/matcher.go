package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"stmaker/internal/geo"
	"stmaker/internal/roadnet"
)

// MatcherAccuracyResult compares the two map-matching substrates — greedy
// nearest-edge and HMM (Viterbi) — against the simulator's ground-truth
// paths under additional GPS noise. It validates the substrate choice the
// routing features depend on.
type MatcherAccuracyResult struct {
	Trips       int
	NoiseMeters float64
	// GreedyAccuracy and HMMAccuracy are the fractions of samples matched
	// to an edge of the trip's true path.
	GreedyAccuracy float64
	HMMAccuracy    float64
}

// MatcherAccuracy re-noises the first n test trips' samples by
// noiseMeters and measures both matchers' accuracy against the trips'
// ground-truth edge sets.
func MatcherAccuracy(w *World, n int, noiseMeters float64) (*MatcherAccuracyResult, error) {
	trips := sampleTrips(w.Test, n)
	if len(trips) == 0 {
		return nil, fmt.Errorf("experiments: no trips to match")
	}
	if noiseMeters < 0 {
		noiseMeters = 0
	}
	g := w.City.Graph
	greedy := w.City.Matcher
	hmm := roadnet.NewHMMMatcher(g, roadnet.HMMOptions{})
	rng := rand.New(rand.NewSource(w.Opts.Seed + 99))

	var totalSamples, greedyHits, hmmHits int
	for _, trip := range trips {
		truth := pathEdgeSet(g, trip.Path)
		if len(truth) == 0 {
			continue
		}
		pts := make([]geo.Point, len(trip.Raw.Samples))
		for i, s := range trip.Raw.Samples {
			pts[i] = geo.Destination(s.Pt, rng.Float64()*360, rng.Float64()*noiseMeters)
		}
		totalSamples += len(pts)
		for _, p := range pts {
			if m, ok := greedy.NearestEdge(p, 150); ok && truth[m.Edge.ID] {
				greedyHits++
			}
		}
		for _, m := range hmm.MatchPoints(pts) {
			if m != nil && truth[m.Edge.ID] {
				hmmHits++
			}
		}
	}
	if totalSamples == 0 {
		return nil, fmt.Errorf("experiments: no samples matched")
	}
	return &MatcherAccuracyResult{
		Trips:          len(trips),
		NoiseMeters:    noiseMeters,
		GreedyAccuracy: float64(greedyHits) / float64(totalSamples),
		HMMAccuracy:    float64(hmmHits) / float64(totalSamples),
	}, nil
}

// pathEdgeSet collects the edge ids along a node path.
func pathEdgeSet(g *roadnet.Graph, path []roadnet.NodeID) map[roadnet.EdgeID]bool {
	out := make(map[roadnet.EdgeID]bool)
	for i := 1; i < len(path); i++ {
		if e := g.EdgeBetween(path[i-1], path[i]); e != nil {
			out[e.ID] = true
		}
	}
	return out
}

// Format writes the comparison rows.
func (r *MatcherAccuracyResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Map-matching accuracy (substrate validation) — %d trips, +%.0f m noise\n", r.Trips, r.NoiseMeters)
	fmt.Fprintf(out, "  greedy nearest-edge: %5.1f%%\n", r.GreedyAccuracy*100)
	fmt.Fprintf(out, "  HMM (Viterbi):       %5.1f%%\n", r.HMMAccuracy*100)
}
