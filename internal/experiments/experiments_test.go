package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"stmaker/internal/feature"
)

var (
	worldOnce sync.Once
	sharedW   *World
	worldErr  error
)

// testWorld returns a shared small world; building it once keeps the
// experiment tests fast.
func testWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		sharedW, worldErr = NewWorld(Options{
			CityRows: 8, CityCols: 8, TrainTrips: 150, TestTrips: 240, Seed: 5,
		})
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return sharedW
}

func TestNewWorld(t *testing.T) {
	w := testWorld(t)
	if !w.Summarizer.Trained() {
		t.Fatal("summarizer untrained")
	}
	if len(w.Train) == 0 || len(w.Test) == 0 {
		t.Fatal("empty trip sets")
	}
	keys := w.FeatureKeys()
	if len(keys) != 6 || keys[3] != feature.KeySpeed {
		t.Fatalf("feature keys = %v", keys)
	}
}

func TestCaseStudy(t *testing.T) {
	w := testWorld(t)
	res, err := CaseStudy(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SummariesByK) != 3 {
		t.Fatalf("summaries = %d", len(res.SummariesByK))
	}
	if len(res.Events) == 0 {
		t.Fatal("chosen trip has no ground truth")
	}
	for k := 1; k <= 3; k++ {
		if res.SummariesByK[k] == "" {
			t.Fatalf("k=%d summary empty", k)
		}
	}
	// Finer granularity should not shorten the description.
	if len(res.SummariesByK[3]) < len(res.SummariesByK[1])/2 {
		t.Fatalf("k=3 summary much shorter than k=1:\n%s\n%s",
			res.SummariesByK[3], res.SummariesByK[1])
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "k=2") {
		t.Fatalf("Format output missing rows: %s", buf.String())
	}
}

func TestCompressionStudy(t *testing.T) {
	w := testWorld(t)
	res, err := CompressionStudy(w, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trips == 0 {
		t.Fatal("no trips")
	}
	if res.Ratio < 10 {
		t.Fatalf("compression ratio = %.1f, want the order-of-magnitude saving the paper claims", res.Ratio)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "compression ratio") {
		t.Fatal("Format missing ratio row")
	}
}

func TestFeatureFrequencyByTime(t *testing.T) {
	w := testWorld(t)
	res, err := FeatureFrequencyByTime(w)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for b := 0; b < 12; b++ {
		total += res.Count[b]
		for j := range res.Keys {
			if res.FF[b][j] < 0 || res.FF[b][j] > 1 {
				t.Fatalf("FF out of range: bucket %d key %s = %v", b, res.Keys[j], res.FF[b][j])
			}
		}
	}
	if total < len(w.Test)/2 {
		t.Fatalf("only %d/%d trips summarized", total, len(w.Test))
	}
	// The paper's headline contrast: daytime FF conspicuously above night
	// for the speed and stay features.
	for _, key := range []string{feature.KeySpeed, feature.KeyStayPoints} {
		day, night := res.DaytimeVsNight(key)
		if day <= night {
			t.Errorf("%s: day FF %.3f should exceed night FF %.3f", key, day, night)
		}
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "06:00-08:00") {
		t.Fatal("Format missing bucket rows")
	}
}

func TestLandmarkUsageBySignificance(t *testing.T) {
	w := testWorld(t)
	res, err := LandmarkUsageBySignificance(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mentions == 0 {
		t.Fatal("no landmark mentions")
	}
	var sum float64
	for _, u := range res.Usage {
		sum += u
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("usage fractions sum to %v", sum)
	}
	// Fig. 9's long tail: the top decile dominates, and the top 30%
	// accounts for a clear majority of mentions.
	maxD := 0
	for d := 1; d < 10; d++ {
		if res.Usage[d] > res.Usage[maxD] {
			maxD = d
		}
	}
	if maxD != 0 {
		t.Errorf("decile %d dominates instead of the top decile: %v", maxD, res.Usage)
	}
	if top3 := res.Usage[0] + res.Usage[1] + res.Usage[2]; top3 < 0.4 {
		t.Errorf("top-30%% usage = %.2f, want a clear majority share", top3)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "top   0- 10%") {
		t.Fatalf("Format rows missing: %s", buf.String())
	}
}

func TestFeatureWeightSweep(t *testing.T) {
	w := testWorld(t)
	res, err := FeatureWeightSweep(w, []float64{0.5, 1, 2, 4}, 80)
	if err != nil {
		t.Fatal(err)
	}
	spe := res.ColumnFF(feature.KeySpeed)
	if len(spe) != 4 {
		t.Fatalf("sweep rows = %d", len(spe))
	}
	// Fig. 10(a): FF of Spe rises with its weight.
	if !(spe[len(spe)-1] > spe[0]) {
		t.Errorf("Spe FF should rise with weight: %v", spe)
	}
	if res.ColumnFF("nope") != nil {
		t.Error("unknown column should be nil")
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "w(Spe)") {
		t.Fatal("Format header missing")
	}
}

func TestPartitionSizeSweep(t *testing.T) {
	w := testWorld(t)
	res, err := PartitionSizeSweep(w, []int{1, 3, 5, 7}, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 10(b)'s reproducible shape (see EXPERIMENTS.md): moving-feature
	// FF rises strongly with k, while routing-feature FF stops growing and
	// tails off once k passes the mid-range — per-summary FF is a union
	// bound over partitions, so the early rows rise for both classes, but
	// only moving features keep climbing.
	descs := w.Summarizer.Registry().Descriptors()
	classSum := func(row []float64, class feature.Class) float64 {
		var s float64
		for j, d := range descs {
			if d.Class == class {
				s += row[j]
			}
		}
		return s
	}
	moveFirst := classSum(res.FF[0], feature.Moving)
	moveLast := classSum(res.FF[len(res.FF)-1], feature.Moving)
	if moveLast <= moveFirst {
		t.Errorf("moving FF should rise with k: %v -> %v", moveFirst, moveLast)
	}
	routePrev := classSum(res.FF[len(res.FF)-2], feature.Routing)
	routeLast := classSum(res.FF[len(res.FF)-1], feature.Routing)
	if routeLast > routePrev+0.1 {
		t.Errorf("routing FF should plateau in the tail: %v -> %v", routePrev, routeLast)
	}
}

func TestUserStudy(t *testing.T) {
	w := testWorld(t)
	res, err := UserStudy(w, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("nothing graded")
	}
	var n int
	for _, c := range res.Counts {
		n += c
	}
	if n != res.Total {
		t.Fatalf("counts %v do not sum to total %d", res.Counts, res.Total)
	}
	// Fig. 11's shape: a clear majority of summaries give an intuitive
	// view (levels 3 and 4).
	if res.FractionAtLeast(3) < 0.6 {
		t.Errorf("levels 3+4 = %.2f, want a clear majority", res.FractionAtLeast(3))
	}
	if res.Fraction(4) < 0.3 {
		t.Errorf("level 4 = %.2f, want the modal grade region", res.Fraction(4))
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "level 4") {
		t.Fatal("Format rows missing")
	}
}

func TestTimingExperiments(t *testing.T) {
	w := testWorld(t)
	bySize, err := TimingByTrajectorySize(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySize.Buckets) == 0 {
		t.Fatal("no size buckets")
	}
	for i, ms := range bySize.MeanMs {
		if ms <= 0 {
			t.Fatalf("bucket %d mean = %v", i, ms)
		}
	}
	// Buckets are sorted by |T|.
	for i := 1; i < len(bySize.Buckets); i++ {
		if bySize.Buckets[i] < bySize.Buckets[i-1] {
			t.Fatal("buckets unsorted")
		}
	}

	byK, err := TimingByPartitionSize(w, []int{1, 4, 7}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(byK.MeanMs) != 3 {
		t.Fatalf("byK rows = %d", len(byK.MeanMs))
	}
	for _, ms := range byK.MeanMs {
		if ms <= 0 {
			t.Fatal("non-positive timing")
		}
	}
	var buf bytes.Buffer
	bySize.Format(&buf)
	byK.Format(&buf)
	if !strings.Contains(buf.String(), "Fig. 12a") || !strings.Contains(buf.String(), "Fig. 12b") {
		t.Fatal("Format output missing")
	}
}

func TestFFHelper(t *testing.T) {
	if FF(nil, feature.KeySpeed) != 0 {
		t.Fatal("empty FF should be 0")
	}
}

func TestMatcherAccuracy(t *testing.T) {
	w := testWorld(t)
	res, err := MatcherAccuracy(w, 30, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyAccuracy <= 0.5 || res.HMMAccuracy <= 0.5 {
		t.Fatalf("accuracies implausibly low: greedy=%.2f hmm=%.2f", res.GreedyAccuracy, res.HMMAccuracy)
	}
	// The joint decoder should not lose to the greedy matcher under noise.
	if res.HMMAccuracy < res.GreedyAccuracy-0.02 {
		t.Fatalf("HMM (%.3f) worse than greedy (%.3f)", res.HMMAccuracy, res.GreedyAccuracy)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "HMM") {
		t.Fatal("Format missing rows")
	}
	if _, err := MatcherAccuracy(w, 0, -5); err != nil {
		t.Fatalf("defaulted args should work: %v", err)
	}
}

func TestWorldWithSpeC(t *testing.T) {
	w, err := NewWorld(Options{CityRows: 6, CityCols: 6, TrainTrips: 60, TestTrips: 30, Seed: 9, IncludeSpeC: true})
	if err != nil {
		t.Fatal(err)
	}
	keys := w.FeatureKeys()
	if len(keys) != 7 || keys[6] != feature.KeySpeedChange {
		t.Fatalf("keys = %v, want SpeC appended", keys)
	}
	// The seven-feature pipeline still summarizes.
	if _, err := w.Summarizer.Summarize(w.Test[0].Raw); err != nil {
		t.Fatalf("7-feature summarize: %v", err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.CityRows != 10 || o.CityCols != 10 || o.TrainTrips != 400 || o.TestTrips != 600 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestUserStudyFractionBounds(t *testing.T) {
	r := &UserStudyResult{Counts: [4]int{1, 2, 3, 4}, Total: 10}
	if r.Fraction(0) != 0 || r.Fraction(5) != 0 {
		t.Fatal("out-of-range grades should be 0")
	}
	if r.Fraction(4) != 0.4 || r.FractionAtLeast(1) != 1 {
		t.Fatalf("fractions wrong: %v %v", r.Fraction(4), r.FractionAtLeast(1))
	}
	empty := &UserStudyResult{}
	if empty.Fraction(4) != 0 || empty.FractionAtLeast(3) != 0 {
		t.Fatal("empty result fractions should be 0")
	}
}
