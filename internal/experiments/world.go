// Package experiments regenerates every evaluation result of the paper
// (§VII): the case study of Fig. 6, the data-volume comparison behind
// Fig. 7, the feature-frequency-by-time study of Fig. 8, the landmark
// usage study of Fig. 9, the parameter sweeps of Fig. 10, the user study
// of Fig. 11 (with a deterministic surrogate reader) and the timing study
// of Fig. 12. Each experiment returns a typed result with a Format method
// that prints the same rows/series the paper reports.
package experiments

import (
	"fmt"

	"stmaker"
	"stmaker/internal/feature"
	"stmaker/internal/hits"
	"stmaker/internal/simulate"
	"stmaker/internal/traj"
)

// Options scales the experimental world. The defaults run every experiment
// in seconds; the paper-scale settings (50,000 training trajectories) are
// reachable by raising TrainTrips/TestTrips.
type Options struct {
	// CityRows/CityCols size the synthetic city (default 10×10).
	CityRows, CityCols int
	// TrainTrips is the training corpus size (default 400).
	TrainTrips int
	// TestTrips is the evaluation set size (default 600).
	TestTrips int
	// Seed drives all randomness (default 1).
	Seed int64
	// Weights/K/Threshold override the summarizer defaults when non-zero.
	Weights   map[string]float64
	K         int
	Threshold float64
	// IncludeSpeC registers the sharp-speed-change extension feature
	// before training, matching Fig. 10(b)'s seven-feature setup.
	IncludeSpeC bool
}

func (o Options) withDefaults() Options {
	if o.CityRows <= 0 {
		o.CityRows = 10
	}
	if o.CityCols <= 0 {
		o.CityCols = 10
	}
	if o.TrainTrips <= 0 {
		o.TrainTrips = 400
	}
	if o.TestTrips <= 0 {
		o.TestTrips = 600
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// World is the shared experimental setup: a city, a trained summarizer and
// the train/test trip split, mirroring §VII-A's experiment setup.
type World struct {
	Opts       Options
	City       *simulate.City
	Summarizer *stmaker.Summarizer
	Train      []*simulate.Trip
	Test       []*simulate.Trip
}

// NewWorld builds the world: generates the city and check-ins, infers
// landmark significance, simulates the fleet and trains the summarizer on
// the training split.
func NewWorld(opts Options) (*World, error) {
	opts = opts.withDefaults()
	city := simulate.NewCity(simulate.CityOptions{
		Rows: opts.CityRows, Cols: opts.CityCols, BlockMeters: 500, Seed: opts.Seed,
	})

	cfg := stmaker.Config{
		Graph:     city.Graph,
		Landmarks: city.Landmarks,
		K:         opts.K,
		Threshold: opts.Threshold,
	}
	if opts.Weights != nil {
		cfg.Weights = opts.Weights
	}
	s, err := stmaker.New(cfg)
	if err != nil {
		return nil, err
	}
	if opts.IncludeSpeC {
		if err := s.RegisterFeature(feature.NewSpeedChange(), nil); err != nil {
			return nil, err
		}
	}

	// Training corpus: calm traffic spread over the day, capturing common
	// behaviour (including congestion via the shared traffic model).
	train := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: opts.TrainTrips, Seed: opts.Seed + 2, FixedHour: -1, Calm: true,
	})
	corpus := make([]*traj.Raw, 0, len(train))
	for _, tr := range train {
		corpus = append(corpus, tr.Raw)
	}

	// Landmark significance (§IV-B): the paper infers it from LBSN
	// check-ins *and* the car trajectories of the target city. Combine the
	// synthetic check-ins with the training fleet's landmark visits
	// (trip endpoints weighted as pickups/dropoffs) before running HITS.
	const checkinTravellers = 200
	visits := simulate.GenerateCheckins(city.Landmarks, simulate.CheckinOptions{
		Travellers: checkinTravellers, Seed: opts.Seed + 1,
	})
	maxTraveller := checkinTravellers
	for i, tr := range train {
		sym, err := s.Calibrate(tr.Raw)
		if err != nil {
			continue
		}
		traveller := checkinTravellers + i
		if traveller >= maxTraveller {
			maxTraveller = traveller + 1
		}
		ids := sym.LandmarkIDs()
		for _, id := range ids {
			visits = append(visits, hits.Visit{Traveller: traveller, Landmark: id})
		}
		// Endpoints count double: they are the pickup/dropoff places.
		visits = append(visits,
			hits.Visit{Traveller: traveller, Landmark: ids[0]},
			hits.Visit{Traveller: traveller, Landmark: ids[len(ids)-1]})
	}
	city.Landmarks.InferSignificance(maxTraveller, visits, hits.Options{})

	stats, err := s.Train(corpus)
	if err != nil {
		return nil, fmt.Errorf("experiments: training failed: %w", err)
	}
	if stats.Calibrated == 0 {
		return nil, fmt.Errorf("experiments: no training trajectory calibrated")
	}

	// Test set: full traffic with anomalies, spread over the day.
	test := simulate.GenerateFleet(city, simulate.FleetOptions{
		NumTrips: opts.TestTrips, Seed: opts.Seed + 3, FixedHour: -1,
	})

	return &World{Opts: opts, City: city, Summarizer: s, Train: train, Test: test}, nil
}

// FeatureKeys returns the summarizer's feature keys in registry order.
func (w *World) FeatureKeys() []string {
	descs := w.Summarizer.Registry().Descriptors()
	keys := make([]string, len(descs))
	for i, d := range descs {
		keys[i] = d.Key
	}
	return keys
}
