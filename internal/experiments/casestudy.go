package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"stmaker/internal/simulate"
)

// CaseStudyResult reproduces Fig. 6: one trajectory summarized at several
// granularities, showing more detail as k grows.
type CaseStudyResult struct {
	TripID string
	// Events are the ground-truth anomaly kinds of the chosen trip.
	Events []string
	// SummariesByK maps k → summary text.
	SummariesByK map[int]string
}

// CaseStudy picks the most eventful test trip and summarizes it at
// k = 1..maxK (Fig. 6 uses 1..3).
func CaseStudy(w *World, maxK int) (*CaseStudyResult, error) {
	if maxK < 1 {
		maxK = 3
	}
	trip := mostEventfulTrip(w.Test)
	if trip == nil {
		return nil, fmt.Errorf("experiments: no eventful trip in the test set")
	}
	res := &CaseStudyResult{TripID: trip.Raw.ID, SummariesByK: make(map[int]string)}
	seen := map[string]bool{}
	for _, e := range trip.Truth {
		if !seen[e.Kind.String()] {
			seen[e.Kind.String()] = true
			res.Events = append(res.Events, e.Kind.String())
		}
	}
	sort.Strings(res.Events)
	for k := 1; k <= maxK; k++ {
		sum, err := w.Summarizer.SummarizeK(trip.Raw, k)
		if err != nil {
			return nil, err
		}
		res.SummariesByK[k] = sum.Text
	}
	return res, nil
}

// mostEventfulTrip returns the trip with the most distinct event kinds
// (ties broken by total event count, then by id for determinism).
func mostEventfulTrip(trips []*simulate.Trip) *simulate.Trip {
	var best *simulate.Trip
	bestKinds, bestTotal := -1, -1
	for _, tr := range trips {
		kinds := map[simulate.EventKind]bool{}
		for _, e := range tr.Truth {
			kinds[e.Kind] = true
		}
		if len(kinds) > bestKinds || (len(kinds) == bestKinds && len(tr.Truth) > bestTotal) {
			best, bestKinds, bestTotal = tr, len(kinds), len(tr.Truth)
		}
	}
	return best
}

// Format writes the case study in the layout of Fig. 6.
func (r *CaseStudyResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Case study (Fig. 6) — trip %s, ground truth: %v\n", r.TripID, r.Events)
	ks := make([]int, 0, len(r.SummariesByK))
	for k := range r.SummariesByK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Fprintf(out, "  k=%d: %s\n", k, r.SummariesByK[k])
	}
}

// CompressionResult quantifies the data-volume claim behind Fig. 7 and the
// introduction: summaries are far smaller than raw trajectories.
type CompressionResult struct {
	Trips           int
	AvgRawBytes     float64
	AvgSummaryBytes float64
	Ratio           float64 // raw / summary
}

// CompressionStudy summarizes up to n test trips and compares the
// JSON-encoded raw size with the summary text size.
func CompressionStudy(w *World, n int) (*CompressionResult, error) {
	if n <= 0 || n > len(w.Test) {
		n = len(w.Test)
	}
	var rawBytes, sumBytes float64
	count := 0
	for _, trip := range w.Test[:n] {
		sum, err := w.Summarizer.Summarize(trip.Raw)
		if err != nil {
			continue
		}
		enc, err := json.Marshal(trip.Raw)
		if err != nil {
			return nil, err
		}
		rawBytes += float64(len(enc))
		sumBytes += float64(len(sum.Text))
		count++
	}
	if count == 0 {
		return nil, fmt.Errorf("experiments: no trip could be summarized")
	}
	res := &CompressionResult{
		Trips:           count,
		AvgRawBytes:     rawBytes / float64(count),
		AvgSummaryBytes: sumBytes / float64(count),
	}
	if res.AvgSummaryBytes > 0 {
		res.Ratio = res.AvgRawBytes / res.AvgSummaryBytes
	}
	return res, nil
}

// Format writes the compression rows.
func (r *CompressionResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Data volume (Fig. 7 / intro) — %d trips\n", r.Trips)
	fmt.Fprintf(out, "  avg raw trajectory: %8.0f bytes\n", r.AvgRawBytes)
	fmt.Fprintf(out, "  avg summary text:   %8.0f bytes\n", r.AvgSummaryBytes)
	fmt.Fprintf(out, "  compression ratio:  %8.1fx\n", r.Ratio)
}
