package experiments

import (
	"fmt"
	"io"

	"stmaker/internal/feature"
	"stmaker/internal/simulate"
	"stmaker/internal/summarize"
)

// The paper's Fig. 11 asked thirty human volunteers to grade 450 summaries
// into four understanding levels. Humans are not reproducible offline, so
// this file implements a deterministic surrogate reader that applies the
// paper's four level definitions mechanically, grading each summary
// against the simulator's ground truth:
//
//	level 1 — no idea of the trajectory
//	level 2 — a little idea of where OR how the object travelled
//	level 3 — idea of where AND how, but the summary could be improved
//	level 4 — knows clearly where and how; well presented
//
// "Where" is judged by the summary naming real landmarks along the route
// in travel order; "how" by its coverage of the injected ground-truth
// events without hallucinating behaviour that never happened.

// Grade is a surrogate-reader understanding level, 1..4.
type Grade int

// UserStudyResult reproduces Fig. 11's distribution.
type UserStudyResult struct {
	// Counts[g-1] is the number of summaries graded g.
	Counts [4]int
	// Total is the number of graded summaries.
	Total int
}

// Fraction returns the share of summaries at the given grade.
func (r *UserStudyResult) Fraction(g Grade) float64 {
	if r.Total == 0 || g < 1 || g > 4 {
		return 0
	}
	return float64(r.Counts[g-1]) / float64(r.Total)
}

// FractionAtLeast returns the share of summaries graded g or better.
func (r *UserStudyResult) FractionAtLeast(g Grade) float64 {
	var n int
	for gg := g; gg <= 4; gg++ {
		n += r.Counts[gg-1]
	}
	if r.Total == 0 {
		return 0
	}
	return float64(n) / float64(r.Total)
}

// UserStudy grades up to n test-set summaries (the paper used 450). The
// summaries are generated at k=3, the granularity of the paper's own
// presentation examples (Fig. 6).
func UserStudy(w *World, n int) (*UserStudyResult, error) {
	trips := sampleTrips(w.Test, n)
	res := &UserStudyResult{}
	for _, trip := range trips {
		sum, err := w.Summarizer.SummarizeK(trip.Raw, 3)
		if err != nil {
			// An unsummarizable trajectory gives the reader nothing:
			// level 1.
			res.Counts[0]++
			res.Total++
			continue
		}
		g := GradeSummary(w, trip, sum)
		res.Counts[g-1]++
		res.Total++
	}
	return res, nil
}

// GradeSummary applies the surrogate rubric to one summary.
func GradeSummary(w *World, trip *simulate.Trip, sum *summarize.Summary) Grade {
	whereOK := judgeWhere(w, trip, sum)
	coverage, hallucinated := judgeHow(trip, sum)

	switch {
	case whereOK && coverage >= 0.75 && !hallucinated:
		return 4
	case whereOK && coverage >= 0.5:
		return 3
	case whereOK || coverage >= 0.25:
		return 2
	default:
		return 1
	}
}

// judgeWhere checks that the summary names at least two landmarks, that
// they lie near the travelled route, and that consecutive partitions chain
// source→destination.
func judgeWhere(w *World, trip *simulate.Trip, sum *summarize.Summary) bool {
	if len(sum.Parts) == 0 {
		return false
	}
	ids := sum.LandmarkIDs()
	if len(ids) < 2 {
		return false
	}
	route := trip.Raw.Polyline()
	for _, id := range ids {
		lm := w.City.Landmarks.Get(id)
		if d, _, _ := route.NearestPoint(lm.Pt); d > 300 {
			return false
		}
	}
	for i := 1; i < len(sum.Parts); i++ {
		if sum.Parts[i-1].Dest != sum.Parts[i].Source {
			return false
		}
	}
	return true
}

// eventFeatures maps each injected event kind to the feature keys that
// legitimately describe it.
var eventFeatures = map[simulate.EventKind][]string{
	simulate.EventStay:       {feature.KeyStayPoints},
	simulate.EventUTurn:      {feature.KeyUTurns},
	simulate.EventOverspeed:  {feature.KeySpeed, feature.KeySpeedChange},
	simulate.EventCongestion: {feature.KeySpeed},
	simulate.EventDetour:     {feature.KeyGradeOfRoad, feature.KeyRoadWidth, feature.KeyDirection},
}

// judgeHow returns the fraction of distinct ground-truth event kinds the
// summary covers, and whether the summary hallucinates: mentions stays or
// U-turns on a trip whose ground truth has neither.
func judgeHow(trip *simulate.Trip, sum *summarize.Summary) (coverage float64, hallucinated bool) {
	kinds := map[simulate.EventKind]bool{}
	for _, e := range trip.Truth {
		kinds[e.Kind] = true
	}
	if len(kinds) == 0 {
		// A calm trip is fully understood when the summary doesn't invent
		// dramatic behaviour.
		if sum.MentionsFeature(feature.KeyStayPoints) || sum.MentionsFeature(feature.KeyUTurns) {
			return 1, true
		}
		return 1, false
	}
	var covered int
	for kind := range kinds {
		for _, key := range eventFeatures[kind] {
			if sum.MentionsFeature(key) {
				covered++
				break
			}
		}
	}
	coverage = float64(covered) / float64(len(kinds))

	// Hallucination: concrete countable events claimed without ground
	// truth. Speed deviations are not counted here because congestion is
	// ambient rather than injected per trip.
	if !kinds[simulate.EventStay] && sum.MentionsFeature(feature.KeyStayPoints) {
		hallucinated = true
	}
	if !kinds[simulate.EventUTurn] && sum.MentionsFeature(feature.KeyUTurns) {
		hallucinated = true
	}
	return coverage, hallucinated
}

// Format writes the Fig. 11 distribution.
func (r *UserStudyResult) Format(out io.Writer) {
	fmt.Fprintf(out, "Surrogate user study (Fig. 11) — %d summaries\n", r.Total)
	for g := Grade(1); g <= 4; g++ {
		fmt.Fprintf(out, "  level %d: %5.1f%% (%d)\n", g, r.Fraction(g)*100, r.Counts[g-1])
	}
	fmt.Fprintf(out, "  level 3+4 (intuitive view): %.1f%%\n", r.FractionAtLeast(3)*100)
}
